/**
 * @file
 * BlockPool: the page/block state of one page-size pool inside a plane.
 *
 * A pool owns a fixed set of blocks that all share one physical page
 * size. Pages are tracked at 4KB-unit granularity so that multi-unit
 * pages (8KB in the HPS scheme) can be partially invalidated: when a
 * 4KB overwrite hits one half of an 8KB page, only that unit becomes
 * stale while the sibling unit stays readable.
 *
 * The pool implements the mechanics (write pointers, validity, erase
 * counts, free lists); policy (when to GC, which victim) lives in the
 * ftl module.
 *
 * Addressing is strongly typed (core/units.hh): logical units are
 * flash::Lpn (= units::UnitAddr), physical pages are flash::Ppn
 * (= units::PageNo), blocks are flash::BlockId. The only raw integer
 * in the interface is the *slot* — the 0..unitsPerPage-1 position of a
 * 4KB unit inside one physical page — which never leaves the pool's
 * own domain.
 */

#ifndef EMMCSIM_FLASH_POOL_HH
#define EMMCSIM_FLASH_POOL_HH

#include <cstdint>
#include <vector>

#include "core/binio.hh"
#include "core/units.hh"
#include "flash/geometry.hh"

namespace emmcsim::flash {

/** Logical page number of a 4KB mapping unit; kNoLpn when unmapped. */
using Lpn = units::UnitAddr;
constexpr Lpn kNoLpn = units::kNoUnit;

/** Physical page number within a pool: block * pagesPerBlock + page. */
using Ppn = units::PageNo;

/** Block index within one plane-pool. */
using BlockId = units::BlockId;

/** Page/block state for one pool of one plane. */
class BlockPool
{
  public:
    /**
     * @param cfg             Pool configuration (page size, block count).
     * @param pages_per_block Pages per block (Geometry::pagesPerBlock).
     */
    BlockPool(const PoolConfig &cfg, std::uint32_t pages_per_block);

    /** @name Static shape. @{ */
    std::uint32_t pageBytes() const { return pageBytes_; }
    std::uint32_t unitsPerPage() const { return unitsPerPage_; }
    std::uint32_t blockCount() const { return blocks_; }
    std::uint32_t pagesPerBlock() const { return pagesPerBlock_; }
    std::uint64_t pageCount() const;
    /** @} */

    /** @name Allocation. @{ */

    /** @return true when another page can be programmed. */
    bool hasFreePage() const;

    /** Number of fully erased blocks on the free list. */
    std::uint32_t freeBlockCount() const { return freeCount_; }

    /** Total unprogrammed pages (active block remainder + free blocks). */
    std::uint64_t freePageCount() const;

    /**
     * Take the next programmable page. Opens a new active block (the
     * free block with the lowest erase count — the paper's "simple
     * wear-leveling" of Implication 4) when the current one fills.
     * Panics when no free page exists; callers must GC first.
     *
     * @return The physical page number that the caller must program.
     */
    Ppn allocatePage();

    /** Block currently being filled, or -1 when none is open. */
    std::int32_t activeBlock() const { return active_; }
    /** @} */

    /** @name Unit state. @{ */

    /** Record that @p slot of page @p ppn now holds @p lpn (valid). */
    void setUnit(Ppn ppn, std::uint32_t slot, Lpn lpn);

    /** Mark @p slot of @p ppn stale. No-op counters stay consistent. */
    void invalidateUnit(Ppn ppn, std::uint32_t slot);

    /** @return lpn stored in the slot, or kNoLpn when never written. */
    Lpn lpnAt(Ppn ppn, std::uint32_t slot) const;

    /** @return true when the slot holds live data. */
    bool unitValid(Ppn ppn, std::uint32_t slot) const;

    /** Valid units remaining in page @p ppn. */
    std::uint32_t validUnitsInPage(Ppn ppn) const;
    /** @} */

    /** @name Block state. @{ */

    /** Valid units remaining in block @p b. */
    std::uint32_t validUnitsInBlock(BlockId b) const;

    /** Pages programmed so far in block @p b. */
    std::uint32_t writtenPages(BlockId b) const;

    /** @return true when every page of @p b has been programmed. */
    bool blockFull(BlockId b) const;

    /** Erase cycles block @p b has seen. */
    std::uint32_t eraseCount(BlockId b) const;

    /**
     * Age of block @p b: page-allocations elapsed since it was last
     * programmed. Cost-benefit GC victim selection favours old blocks
     * (their remaining valid data is cold and worth relocating).
     */
    std::uint64_t blockAge(BlockId b) const;

    /**
     * Erase block @p b: clears all unit state and returns the block to
     * the free list. Panics if live units remain (callers relocate
     * valid data first) or if the block is the active block.
     */
    void eraseBlock(BlockId b);
    /** @} */

    /** @name Reliability state (bad-block handling). @{ */

    /**
     * Flag @p b suspect after a program-status failure. Suspect blocks
     * stay readable (their already-programmed pages are intact) but
     * must not be reused: the GC scrub path relocates their survivors
     * and retires them instead of erasing.
     */
    void markSuspect(BlockId b);

    /** @return true when @p b carries the suspect flag. */
    bool blockSuspect(BlockId b) const;

    /**
     * Seal @p b: advance its write pointer to the end so no further
     * page lands in it (the block reads as "full"). Used after a
     * program failure on a partially-written block; if @p b is the
     * active block, the pool is left with no active block and the next
     * allocation opens a fresh one.
     */
    void sealBlock(BlockId b);

    /**
     * Retire @p b permanently (grown bad block): clears all unit state
     * like an erase but never returns the block to the free list — it
     * no longer counts toward free space and can never be allocated.
     * Panics if live units remain or the block is active or free.
     */
    void retireBlock(BlockId b);

    /** @return true when @p b has been retired. */
    bool blockRetired(BlockId b) const;

    /** Number of retired (grown bad) blocks in this pool. */
    std::uint32_t retiredBlockCount() const { return retiredCount_; }
    /** @} */

    /** @name Sudden-power-off state (DESIGN.md §13). @{ */

    /**
     * Stamp page @p ppn with a monotonically increasing write sequence.
     * Models the sequence number the FTL writes into the page's
     * out-of-band spare area together with the lpns; recovery uses it
     * to order multiple physical copies of the same logical unit.
     */
    void stampPageSeq(Ppn ppn, std::uint64_t seq);

    /** OOB sequence stamp of page @p ppn (0 = never stamped). */
    std::uint64_t pageSeq(Ppn ppn) const;

    /**
     * Model a program torn by power loss: the page keeps its write-
     * pointer slot (it was physically started) but its contents are
     * garbage — lpns revert to kNoLpn, the seq stamp and all valid
     * bits clear. Recovery's OOB scan skips it like an unwritten page.
     */
    void tearPage(Ppn ppn);

    /** Pages destroyed mid-program by power loss, cumulative. */
    std::uint64_t tornPages() const { return tornPages_; }

    /**
     * Drop all validity state ahead of an OOB recovery scan: the valid
     * bitmap is controller RAM and did not survive the power cut. The
     * on-flash lpns/seq stamps and per-block write pointers remain.
     */
    void beginRecoveryScan();

    /** Re-mark @p slot of @p ppn live (recovery scan winner). */
    void revalidateUnit(Ppn ppn, std::uint32_t slot);

    /**
     * Seal the active block (if any). After a power cut the FTL cannot
     * trust partially-programmed blocks for further appends, so
     * recovery closes them and starts fresh ones.
     */
    void sealOpenBlocks();
    /** @} */

    /** @name Snapshot image (core/binio.hh). @{ */
    void save(core::BinWriter &w) const;

    /**
     * Restore from @p r. Geometry must match the constructed shape;
     * mismatch marks the reader failed and leaves the pool unusable.
     */
    void load(core::BinReader &r);
    /** @} */

    /** @name Pool-wide statistics. @{ */
    std::uint64_t totalErases() const { return totalErases_; }
    std::uint64_t totalProgrammedPages() const { return programmed_; }
    std::uint64_t validUnitCount() const { return validUnits_; }
    /** Spread between max and min per-block erase counts. */
    std::uint32_t eraseSpread() const;
    /** @} */

    /** @name Audit support and test hooks. @{ */

    /** @return true when block @p b sits erased on the free list. */
    bool blockFree(BlockId b) const;

    /**
     * Test hook: overwrite one slot's raw state (stored lpn + valid
     * bit) without maintaining any counter, planting exactly the kind
     * of silent corruption the check/ subsystem must detect. Never
     * call outside tests.
     */
    void corruptUnitForTest(Ppn ppn, std::uint32_t slot, Lpn lpn,
                            bool valid);

    /** Test hook: skew the pool-wide valid-unit counter. */
    void corruptValidUnitsForTest(std::int64_t delta);

    /** Test hook: skew the free-block counter. */
    void corruptFreeCountForTest(std::int64_t delta);

    /** Test hook: raw retired flag without any state cleanup. */
    void corruptRetiredForTest(BlockId b, bool retired);
    /** @} */

  private:
    /** Pop the free block with the lowest erase count. */
    std::uint32_t takeFreeBlock();

    /** Flat lpns_/valid_ index of @p ppn (audited domain exit). */
    std::size_t
    pageIndex(Ppn ppn) const
    {
        return static_cast<std::size_t>(ppn.value());
    }

    /** Internal block index of @p b (audited domain exit). */
    std::uint32_t
    blockIndex(BlockId b) const
    {
        return b.value();
    }

    std::uint32_t pageBytes_;
    std::uint32_t unitsPerPage_;
    std::uint32_t blocks_;
    std::uint32_t pagesPerBlock_;

    /** lpn per (page, slot); flat, kNoLpn when unwritten/erased. */
    std::vector<Lpn> lpns_;
    /** valid bitmask per page (bit u = slot u live). */
    std::vector<std::uint8_t> valid_;
    /** OOB write-sequence stamp per page (0 = unstamped). */
    std::vector<std::uint64_t> pageSeq_;
    /** write pointer per block (pages programmed so far). */
    std::vector<std::uint32_t> writePtr_;
    /** live units per block. */
    std::vector<std::uint32_t> blockValid_;
    /** erase cycles per block. */
    std::vector<std::uint32_t> eraseCnt_;
    /** allocation sequence number of the last program per block. */
    std::vector<std::uint64_t> lastWriteSeq_;
    /** global allocation sequence counter. */
    std::uint64_t allocSeq_ = 0;
    /** true when the block is erased and on the free list. */
    std::vector<bool> isFree_;
    /** true after a program failure; await scrub + retirement. */
    std::vector<bool> suspect_;
    /** true for grown bad blocks; never allocated again. */
    std::vector<bool> retired_;

    std::uint32_t freeCount_ = 0;
    std::uint32_t retiredCount_ = 0;
    std::int32_t active_ = -1;

    std::uint64_t totalErases_ = 0;
    std::uint64_t programmed_ = 0;
    std::uint64_t validUnits_ = 0;
    std::uint64_t tornPages_ = 0;
};

} // namespace emmcsim::flash

#endif // EMMCSIM_FLASH_POOL_HH
