#include "flash/timing.hh"

#include <cmath>

namespace emmcsim::flash {

sim::Time
Timing::transferTime(std::uint64_t bytes) const
{
    double ns = static_cast<double>(bytes) / (channelMBps * 1e6) * 1e9;
    return static_cast<sim::Time>(std::llround(ns));
}

PageTiming
Timing::page4k()
{
    return PageTiming{sim::microseconds(160), sim::microseconds(1385)};
}

PageTiming
Timing::page8k()
{
    return PageTiming{sim::microseconds(244), sim::microseconds(1491)};
}

PageTiming
Timing::page4kSlcMode()
{
    return PageTiming{sim::microseconds(45), sim::microseconds(400)};
}

} // namespace emmcsim::flash
