/**
 * @file
 * NAND and bus timing parameters.
 *
 * Per-pool array latencies come straight from the paper's Table V
 * (which in turn cites Micron MLC datasheets): 4KB pages read in 160us
 * and program in 1385us; 8KB pages read in 244us and program in
 * 1491us; block erase takes 3.8ms for both.
 */

#ifndef EMMCSIM_FLASH_TIMING_HH
#define EMMCSIM_FLASH_TIMING_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace emmcsim::flash {

/** Array-operation latencies for one page-size pool. */
struct PageTiming
{
    sim::Time readLatency = sim::microseconds(160);
    sim::Time programLatency = sim::microseconds(1385);
};

/** Timing of the whole flash subsystem. */
struct Timing
{
    /** Per-pool array latencies, parallel to Geometry::pools. */
    std::vector<PageTiming> pools;

    /** Block erase latency (Table V: 3800 us). */
    sim::Time eraseLatency = sim::microseconds(3800);

    /**
     * Per-channel bus bandwidth in MB/s. eMMC 4.51 (HS200) tops out
     * around 200 MB/s for the host interface; the internal flash
     * channels are modelled at the same order.
     */
    double channelMBps = 200.0;

    /**
     * Fixed command/address/status overhead charged on the channel for
     * every page operation. This is what makes many small page ops
     * slower than few large ones even when the bus is not saturated.
     */
    sim::Time pageCmdOverhead = sim::microseconds(25);

    /** Time to shuttle @p bytes across one channel (excl. overhead). */
    sim::Time transferTime(std::uint64_t bytes) const;

    /** Table V 4KB-page timing preset. */
    static PageTiming page4k();
    /** Table V 8KB-page timing preset. */
    static PageTiming page8k();
    /**
     * 4KB page of an MLC block operated in SLC mode (Implication 5):
     * only the fast pages are used, giving SLC-like latencies at half
     * the density. Values follow typical MLC-as-SLC datasheets.
     */
    static PageTiming page4kSlcMode();
};

} // namespace emmcsim::flash

#endif // EMMCSIM_FLASH_TIMING_HH
