#include "flash/plane.hh"

namespace emmcsim::flash {

Plane::Plane(const Geometry &g)
{
    pools_.reserve(g.pools.size());
    for (std::size_t i = 0; i < g.pools.size(); ++i)
        pools_.emplace_back(g.pools[i], g.poolPagesPerBlock(i));
}

} // namespace emmcsim::flash
