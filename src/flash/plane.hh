/**
 * @file
 * Plane: the block pools of one flash plane.
 *
 * In a conventional device a plane holds a single pool; in the HPS
 * device every plane holds a 4KB-page pool and an 8KB-page pool
 * (Fig 10 of the paper).
 */

#ifndef EMMCSIM_FLASH_PLANE_HH
#define EMMCSIM_FLASH_PLANE_HH

#include <cstdint>
#include <vector>

#include "flash/geometry.hh"
#include "flash/pool.hh"

namespace emmcsim::flash {

/** The per-plane container of block pools. */
class Plane
{
  public:
    /** Build all pools described by @p g for one plane. */
    explicit Plane(const Geometry &g);

    /** Number of pools (page-size classes). */
    std::size_t poolCount() const { return pools_.size(); }

    /** Mutable access to pool @p i. */
    BlockPool &pool(std::size_t i) { return pools_.at(i); }

    /** Read-only access to pool @p i. */
    const BlockPool &pool(std::size_t i) const { return pools_.at(i); }

  private:
    std::vector<BlockPool> pools_;
};

} // namespace emmcsim::flash

#endif // EMMCSIM_FLASH_PLANE_HH
