#include "flash/geometry.hh"

#include "sim/logging.hh"

namespace emmcsim::flash {

std::uint32_t
PoolConfig::unitsPerPage() const
{
    return pageBytes / static_cast<std::uint32_t>(sim::kUnitBytes);
}

std::uint32_t
Geometry::planeCount() const
{
    return channels * chipsPerChannel * diesPerChip * planesPerDie;
}

std::uint32_t
Geometry::dieCount() const
{
    return channels * chipsPerChannel * diesPerChip;
}

units::Bytes
Geometry::capacityBytes() const
{
    units::Bytes per_plane{0};
    for (std::size_t i = 0; i < pools.size(); ++i) {
        per_plane += blockBytes(i) * pools[i].blocksPerPlane;
    }
    return per_plane * planeCount();
}

std::uint32_t
Geometry::poolPagesPerBlock(std::size_t pool) const
{
    const auto &p = pools.at(pool);
    return p.pagesPerBlockOverride != 0 ? p.pagesPerBlockOverride
                                        : pagesPerBlock;
}

std::uint64_t
Geometry::capacityUnits() const
{
    return units::bytesToUnits(capacityBytes());
}

units::Bytes
Geometry::blockBytes(std::size_t pool) const
{
    return units::Bytes{pools.at(pool).pageBytes} *
           poolPagesPerBlock(pool);
}

void
Geometry::validate() const
{
    if (channels == 0 || chipsPerChannel == 0 || diesPerChip == 0 ||
        planesPerDie == 0 || pagesPerBlock == 0) {
        sim::fatal("geometry: all hierarchy dimensions must be positive");
    }
    if (pools.empty())
        sim::fatal("geometry: at least one block pool is required");
    for (const auto &p : pools) {
        if (p.pageBytes == 0 || p.pageBytes % sim::kUnitBytes != 0)
            sim::fatal("geometry: page size must be a multiple of 4KB");
        if (p.blocksPerPlane == 0)
            sim::fatal("geometry: pool with zero blocks");
    }
}

std::uint32_t
planeLinear(const Geometry &g, const PageAddr &a)
{
    return ((a.channel * g.chipsPerChannel + a.chip) * g.diesPerChip +
            a.die) * g.planesPerDie + a.plane;
}

std::uint32_t
dieLinear(const Geometry &g, const PageAddr &a)
{
    return (a.channel * g.chipsPerChannel + a.chip) * g.diesPerChip + a.die;
}

PageAddr
addrFromPlaneLinear(const Geometry &g, std::uint32_t plane_linear)
{
    EMMCSIM_ASSERT(plane_linear < g.planeCount(),
                   "plane index out of range");
    PageAddr a;
    a.plane = plane_linear % g.planesPerDie;
    std::uint32_t rest = plane_linear / g.planesPerDie;
    a.die = rest % g.diesPerChip;
    rest /= g.diesPerChip;
    a.chip = rest % g.chipsPerChannel;
    a.channel = rest / g.chipsPerChannel;
    return a;
}

} // namespace emmcsim::flash
