/**
 * @file
 * Flash array geometry: channel x chip x die x plane x block x page.
 *
 * A plane owns one or more block *pools*; all blocks in a pool share a
 * page size. A conventional device (4PS / 8PS in the paper's Table V)
 * has a single pool per plane; the HPS device has two (512 blocks of
 * 4KB pages + 256 blocks of 8KB pages), mirroring Fig 10.
 */

#ifndef EMMCSIM_FLASH_GEOMETRY_HH
#define EMMCSIM_FLASH_GEOMETRY_HH

#include <cstdint>
#include <vector>

#include "core/units.hh"
#include "sim/types.hh"

namespace emmcsim::flash {

/** One block pool inside a plane: a page size and a block budget. */
struct PoolConfig
{
    /** Physical page size in bytes (multiple of the 4KB unit). */
    std::uint32_t pageBytes = 4096;
    /** Number of blocks of this page size per plane. */
    std::uint32_t blocksPerPlane = 0;
    /**
     * Pages per block for this pool; 0 inherits the geometry-wide
     * value. MLC blocks operated in SLC mode (Implication 5) expose
     * half the pages of the same physical block.
     */
    std::uint32_t pagesPerBlockOverride = 0;

    /** 4KB mapping units per physical page. */
    std::uint32_t unitsPerPage() const;
};

/** Static description of the whole flash array. */
struct Geometry
{
    std::uint32_t channels = 2;
    std::uint32_t chipsPerChannel = 1;
    std::uint32_t diesPerChip = 2;
    std::uint32_t planesPerDie = 2;
    std::uint32_t pagesPerBlock = 1024;
    /** Block pools per plane (>= 1). */
    std::vector<PoolConfig> pools;

    /** Total number of planes in the array. */
    std::uint32_t planeCount() const;
    /** Total number of dies in the array. */
    std::uint32_t dieCount() const;
    /** Raw capacity across all planes and pools. */
    units::Bytes capacityBytes() const;
    /** Raw capacity in 4KB units. */
    std::uint64_t capacityUnits() const;
    /** Size of one block of pool @p pool. */
    units::Bytes blockBytes(std::size_t pool) const;
    /** Pages per block of pool @p pool (override-aware). */
    std::uint32_t poolPagesPerBlock(std::size_t pool) const;

    /** Validate invariants; calls sim::fatal on bad configuration. */
    void validate() const;
};

/**
 * Physical page address.
 *
 * Identifies a page by its position in the hierarchy plus the pool it
 * lives in. Multi-unit pages (8KB and larger) are addressed at page
 * granularity; the mapping layer tracks which 4KB unit inside the page
 * a logical unit occupies.
 */
struct PageAddr
{
    std::uint32_t channel = 0;
    std::uint32_t chip = 0;
    std::uint32_t die = 0;
    std::uint32_t plane = 0;
    std::uint32_t pool = 0;
    std::uint32_t block = 0;
    std::uint32_t page = 0;

    bool operator==(const PageAddr &o) const = default;
};

/** Linear plane index of @p a within @p g (row-major hierarchy order). */
std::uint32_t planeLinear(const Geometry &g, const PageAddr &a);

/** Linear die index of @p a within @p g. */
std::uint32_t dieLinear(const Geometry &g, const PageAddr &a);

/** Rebuild the hierarchical fields of a PageAddr from a linear plane. */
PageAddr addrFromPlaneLinear(const Geometry &g, std::uint32_t plane_linear);

} // namespace emmcsim::flash

#endif // EMMCSIM_FLASH_GEOMETRY_HH
