#include "flash/pool.hh"

#include <algorithm>
#include <limits>

#include "sim/logging.hh"

namespace emmcsim::flash {

BlockPool::BlockPool(const PoolConfig &cfg, std::uint32_t pages_per_block)
    : pageBytes_(cfg.pageBytes),
      unitsPerPage_(cfg.unitsPerPage()),
      blocks_(cfg.blocksPerPlane),
      pagesPerBlock_(pages_per_block)
{
    EMMCSIM_ASSERT(unitsPerPage_ >= 1 && unitsPerPage_ <= 8,
                   "units per page out of supported range");
    const std::uint64_t pages = pageCount();
    lpns_.assign(pages * unitsPerPage_, kNoLpn);
    valid_.assign(pages, 0);
    writePtr_.assign(blocks_, 0);
    blockValid_.assign(blocks_, 0);
    eraseCnt_.assign(blocks_, 0);
    lastWriteSeq_.assign(blocks_, 0);
    isFree_.assign(blocks_, true);
    suspect_.assign(blocks_, false);
    retired_.assign(blocks_, false);
    freeCount_ = blocks_;
}

std::uint64_t
BlockPool::pageCount() const
{
    return static_cast<std::uint64_t>(blocks_) * pagesPerBlock_;
}

bool
BlockPool::hasFreePage() const
{
    if (active_ >= 0 && writePtr_[active_] < pagesPerBlock_)
        return true;
    return freeCount_ > 0;
}

std::uint64_t
BlockPool::freePageCount() const
{
    std::uint64_t n = static_cast<std::uint64_t>(freeCount_) *
                      pagesPerBlock_;
    if (active_ >= 0)
        n += pagesPerBlock_ - writePtr_[active_];
    return n;
}

std::uint32_t
BlockPool::takeFreeBlock()
{
    EMMCSIM_ASSERT(freeCount_ > 0, "takeFreeBlock on empty free list");
    std::uint32_t best = 0;
    std::uint32_t best_erase = std::numeric_limits<std::uint32_t>::max();
    bool found = false;
    for (std::uint32_t b = 0; b < blocks_; ++b) {
        if (isFree_[b] && eraseCnt_[b] < best_erase) {
            best = b;
            best_erase = eraseCnt_[b];
            found = true;
        }
    }
    EMMCSIM_ASSERT(found, "free count disagrees with free flags");
    isFree_[best] = false;
    --freeCount_;
    return best;
}

Ppn
BlockPool::allocatePage()
{
    if (active_ < 0 || writePtr_[active_] >= pagesPerBlock_) {
        EMMCSIM_ASSERT(freeCount_ > 0,
                       "allocatePage with no free blocks; GC required");
        active_ = static_cast<std::int32_t>(takeFreeBlock());
    }
    std::uint32_t page = writePtr_[active_]++;
    ++programmed_;
    lastWriteSeq_[active_] = ++allocSeq_;
    return static_cast<Ppn>(active_) * pagesPerBlock_ + page;
}

void
BlockPool::setUnit(Ppn ppn, std::uint32_t unit, Lpn lpn)
{
    EMMCSIM_ASSERT(ppn < pageCount() && unit < unitsPerPage_,
                   "setUnit out of range");
    EMMCSIM_ASSERT(lpn >= 0, "setUnit with invalid lpn");
    std::uint8_t bit = static_cast<std::uint8_t>(1u << unit);
    EMMCSIM_ASSERT(!(valid_[ppn] & bit), "setUnit on already-valid unit");
    lpns_[ppn * unitsPerPage_ + unit] = lpn;
    valid_[ppn] |= bit;
    ++blockValid_[ppn / pagesPerBlock_];
    ++validUnits_;
}

void
BlockPool::invalidateUnit(Ppn ppn, std::uint32_t unit)
{
    EMMCSIM_ASSERT(ppn < pageCount() && unit < unitsPerPage_,
                   "invalidateUnit out of range");
    std::uint8_t bit = static_cast<std::uint8_t>(1u << unit);
    EMMCSIM_ASSERT(valid_[ppn] & bit, "invalidateUnit on stale unit");
    valid_[ppn] &= static_cast<std::uint8_t>(~bit);
    std::uint32_t b = static_cast<std::uint32_t>(ppn / pagesPerBlock_);
    EMMCSIM_ASSERT(blockValid_[b] > 0, "block valid underflow");
    --blockValid_[b];
    --validUnits_;
}

Lpn
BlockPool::lpnAt(Ppn ppn, std::uint32_t unit) const
{
    EMMCSIM_ASSERT(ppn < pageCount() && unit < unitsPerPage_,
                   "lpnAt out of range");
    return lpns_[ppn * unitsPerPage_ + unit];
}

bool
BlockPool::unitValid(Ppn ppn, std::uint32_t unit) const
{
    EMMCSIM_ASSERT(ppn < pageCount() && unit < unitsPerPage_,
                   "unitValid out of range");
    return (valid_[ppn] >> unit) & 1u;
}

std::uint32_t
BlockPool::validUnitsInPage(Ppn ppn) const
{
    EMMCSIM_ASSERT(ppn < pageCount(), "validUnitsInPage out of range");
    return static_cast<std::uint32_t>(__builtin_popcount(valid_[ppn]));
}

std::uint32_t
BlockPool::validUnitsInBlock(std::uint32_t b) const
{
    EMMCSIM_ASSERT(b < blocks_, "validUnitsInBlock out of range");
    return blockValid_[b];
}

std::uint32_t
BlockPool::writtenPages(std::uint32_t b) const
{
    EMMCSIM_ASSERT(b < blocks_, "writtenPages out of range");
    return writePtr_[b];
}

bool
BlockPool::blockFull(std::uint32_t b) const
{
    return writtenPages(b) >= pagesPerBlock_;
}

std::uint32_t
BlockPool::eraseCount(std::uint32_t b) const
{
    EMMCSIM_ASSERT(b < blocks_, "eraseCount out of range");
    return eraseCnt_[b];
}

std::uint64_t
BlockPool::blockAge(std::uint32_t b) const
{
    EMMCSIM_ASSERT(b < blocks_, "blockAge out of range");
    return allocSeq_ - lastWriteSeq_[b];
}

void
BlockPool::eraseBlock(std::uint32_t b)
{
    EMMCSIM_ASSERT(b < blocks_, "eraseBlock out of range");
    EMMCSIM_ASSERT(!isFree_[b], "eraseBlock on free block");
    EMMCSIM_ASSERT(!retired_[b], "eraseBlock on retired block");
    EMMCSIM_ASSERT(blockValid_[b] == 0,
                   "eraseBlock with live units; relocate first");
    EMMCSIM_ASSERT(active_ != static_cast<std::int32_t>(b),
                   "eraseBlock on the active block");
    Ppn first = static_cast<Ppn>(b) * pagesPerBlock_;
    std::fill(lpns_.begin() +
                  static_cast<std::ptrdiff_t>(first * unitsPerPage_),
              lpns_.begin() + static_cast<std::ptrdiff_t>(
                  (first + pagesPerBlock_) * unitsPerPage_),
              kNoLpn);
    std::fill(valid_.begin() + static_cast<std::ptrdiff_t>(first),
              valid_.begin() +
                  static_cast<std::ptrdiff_t>(first + pagesPerBlock_),
              std::uint8_t{0});
    writePtr_[b] = 0;
    ++eraseCnt_[b];
    ++totalErases_;
    isFree_[b] = true;
    ++freeCount_;
}

void
BlockPool::markSuspect(std::uint32_t b)
{
    EMMCSIM_ASSERT(b < blocks_, "markSuspect out of range");
    EMMCSIM_ASSERT(!retired_[b], "markSuspect on retired block");
    EMMCSIM_ASSERT(!isFree_[b], "markSuspect on free block");
    suspect_[b] = true;
}

bool
BlockPool::blockSuspect(std::uint32_t b) const
{
    EMMCSIM_ASSERT(b < blocks_, "blockSuspect out of range");
    return suspect_[b];
}

void
BlockPool::sealBlock(std::uint32_t b)
{
    EMMCSIM_ASSERT(b < blocks_, "sealBlock out of range");
    EMMCSIM_ASSERT(!isFree_[b], "sealBlock on free block");
    EMMCSIM_ASSERT(!retired_[b], "sealBlock on retired block");
    writePtr_[b] = pagesPerBlock_;
    if (active_ == static_cast<std::int32_t>(b))
        active_ = -1;
}

void
BlockPool::retireBlock(std::uint32_t b)
{
    EMMCSIM_ASSERT(b < blocks_, "retireBlock out of range");
    EMMCSIM_ASSERT(!isFree_[b], "retireBlock on free block");
    EMMCSIM_ASSERT(!retired_[b], "retireBlock on retired block");
    EMMCSIM_ASSERT(blockValid_[b] == 0,
                   "retireBlock with live units; relocate first");
    EMMCSIM_ASSERT(active_ != static_cast<std::int32_t>(b),
                   "retireBlock on the active block");
    Ppn first = static_cast<Ppn>(b) * pagesPerBlock_;
    std::fill(lpns_.begin() +
                  static_cast<std::ptrdiff_t>(first * unitsPerPage_),
              lpns_.begin() + static_cast<std::ptrdiff_t>(
                  (first + pagesPerBlock_) * unitsPerPage_),
              kNoLpn);
    std::fill(valid_.begin() + static_cast<std::ptrdiff_t>(first),
              valid_.begin() +
                  static_cast<std::ptrdiff_t>(first + pagesPerBlock_),
              std::uint8_t{0});
    // The write pointer stays at the end: a retired block is "full" of
    // nothing, keeping it out of every allocation and victim scan.
    writePtr_[b] = pagesPerBlock_;
    suspect_[b] = false;
    retired_[b] = true;
    ++retiredCount_;
}

bool
BlockPool::blockRetired(std::uint32_t b) const
{
    EMMCSIM_ASSERT(b < blocks_, "blockRetired out of range");
    return retired_[b];
}

std::uint32_t
BlockPool::eraseSpread() const
{
    auto [mn, mx] = std::minmax_element(eraseCnt_.begin(), eraseCnt_.end());
    return *mx - *mn;
}

bool
BlockPool::blockFree(std::uint32_t b) const
{
    EMMCSIM_ASSERT(b < blocks_, "blockFree out of range");
    return isFree_[b];
}

void
BlockPool::corruptUnitForTest(Ppn ppn, std::uint32_t unit, Lpn lpn,
                              bool valid)
{
    EMMCSIM_ASSERT(ppn < pageCount() && unit < unitsPerPage_,
                   "corruptUnitForTest out of range");
    lpns_[ppn * unitsPerPage_ + unit] = lpn;
    std::uint8_t bit = static_cast<std::uint8_t>(1u << unit);
    if (valid)
        valid_[ppn] |= bit;
    else
        valid_[ppn] &= static_cast<std::uint8_t>(~bit);
}

void
BlockPool::corruptValidUnitsForTest(std::int64_t delta)
{
    validUnits_ = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(validUnits_) + delta);
}

void
BlockPool::corruptFreeCountForTest(std::int64_t delta)
{
    freeCount_ = static_cast<std::uint32_t>(
        static_cast<std::int64_t>(freeCount_) + delta);
}

void
BlockPool::corruptRetiredForTest(std::uint32_t b, bool retired)
{
    EMMCSIM_ASSERT(b < blocks_, "corruptRetiredForTest out of range");
    retired_[b] = retired;
}

} // namespace emmcsim::flash
