#include "flash/pool.hh"

#include <algorithm>
#include <limits>

#include "sim/logging.hh"

namespace emmcsim::flash {

BlockPool::BlockPool(const PoolConfig &cfg, std::uint32_t pages_per_block)
    : pageBytes_(cfg.pageBytes),
      unitsPerPage_(cfg.unitsPerPage()),
      blocks_(cfg.blocksPerPlane),
      pagesPerBlock_(pages_per_block)
{
    EMMCSIM_ASSERT(unitsPerPage_ >= 1 && unitsPerPage_ <= 8,
                   "units per page out of supported range");
    const std::uint64_t pages = pageCount();
    lpns_.assign(pages * unitsPerPage_, kNoLpn);
    valid_.assign(pages, 0);
    pageSeq_.assign(pages, 0);
    writePtr_.assign(blocks_, 0);
    blockValid_.assign(blocks_, 0);
    eraseCnt_.assign(blocks_, 0);
    lastWriteSeq_.assign(blocks_, 0);
    isFree_.assign(blocks_, true);
    suspect_.assign(blocks_, false);
    retired_.assign(blocks_, false);
    freeCount_ = blocks_;
}

std::uint64_t
BlockPool::pageCount() const
{
    return static_cast<std::uint64_t>(blocks_) * pagesPerBlock_;
}

bool
BlockPool::hasFreePage() const
{
    if (active_ >= 0 && writePtr_[active_] < pagesPerBlock_)
        return true;
    return freeCount_ > 0;
}

std::uint64_t
BlockPool::freePageCount() const
{
    std::uint64_t n = static_cast<std::uint64_t>(freeCount_) *
                      pagesPerBlock_;
    if (active_ >= 0)
        n += pagesPerBlock_ - writePtr_[active_];
    return n;
}

std::uint32_t
BlockPool::takeFreeBlock()
{
    EMMCSIM_ASSERT(freeCount_ > 0, "takeFreeBlock on empty free list");
    std::uint32_t best = 0;
    std::uint32_t best_erase = std::numeric_limits<std::uint32_t>::max();
    bool found = false;
    for (std::uint32_t b = 0; b < blocks_; ++b) {
        if (isFree_[b] && eraseCnt_[b] < best_erase) {
            best = b;
            best_erase = eraseCnt_[b];
            found = true;
        }
    }
    EMMCSIM_ASSERT(found, "free count disagrees with free flags");
    isFree_[best] = false;
    --freeCount_;
    return best;
}

Ppn
BlockPool::allocatePage()
{
    if (active_ < 0 || writePtr_[active_] >= pagesPerBlock_) {
        EMMCSIM_ASSERT(freeCount_ > 0,
                       "allocatePage with no free blocks; GC required");
        active_ = static_cast<std::int32_t>(takeFreeBlock());
    }
    std::uint32_t page = writePtr_[active_]++;
    ++programmed_;
    lastWriteSeq_[active_] = ++allocSeq_;
    return units::blockFirstPage(
               BlockId{static_cast<std::uint32_t>(active_)},
               pagesPerBlock_) +
           page;
}

void
BlockPool::setUnit(Ppn ppn, std::uint32_t slot, Lpn lpn)
{
    const std::size_t p = pageIndex(ppn);
    EMMCSIM_ASSERT(p < pageCount() && slot < unitsPerPage_,
                   "setUnit out of range");
    EMMCSIM_ASSERT(lpn.value() >= 0, "setUnit with invalid lpn");
    std::uint8_t bit = static_cast<std::uint8_t>(1u << slot);
    EMMCSIM_ASSERT(!(valid_[p] & bit), "setUnit on already-valid unit");
    lpns_[p * unitsPerPage_ + slot] = lpn;
    valid_[p] |= bit;
    ++blockValid_[blockIndex(units::pageToBlock(ppn, pagesPerBlock_))];
    ++validUnits_;
}

void
BlockPool::invalidateUnit(Ppn ppn, std::uint32_t slot)
{
    const std::size_t p = pageIndex(ppn);
    EMMCSIM_ASSERT(p < pageCount() && slot < unitsPerPage_,
                   "invalidateUnit out of range");
    std::uint8_t bit = static_cast<std::uint8_t>(1u << slot);
    EMMCSIM_ASSERT(valid_[p] & bit, "invalidateUnit on stale unit");
    valid_[p] &= static_cast<std::uint8_t>(~bit);
    std::uint32_t b =
        blockIndex(units::pageToBlock(ppn, pagesPerBlock_));
    EMMCSIM_ASSERT(blockValid_[b] > 0, "block valid underflow");
    --blockValid_[b];
    --validUnits_;
}

Lpn
BlockPool::lpnAt(Ppn ppn, std::uint32_t slot) const
{
    const std::size_t p = pageIndex(ppn);
    EMMCSIM_ASSERT(p < pageCount() && slot < unitsPerPage_,
                   "lpnAt out of range");
    return lpns_[p * unitsPerPage_ + slot];
}

bool
BlockPool::unitValid(Ppn ppn, std::uint32_t slot) const
{
    const std::size_t p = pageIndex(ppn);
    EMMCSIM_ASSERT(p < pageCount() && slot < unitsPerPage_,
                   "unitValid out of range");
    return (valid_[p] >> slot) & 1u;
}

std::uint32_t
BlockPool::validUnitsInPage(Ppn ppn) const
{
    const std::size_t p = pageIndex(ppn);
    EMMCSIM_ASSERT(p < pageCount(), "validUnitsInPage out of range");
    return static_cast<std::uint32_t>(__builtin_popcount(valid_[p]));
}

std::uint32_t
BlockPool::validUnitsInBlock(BlockId b) const
{
    const std::uint32_t i = blockIndex(b);
    EMMCSIM_ASSERT(i < blocks_, "validUnitsInBlock out of range");
    return blockValid_[i];
}

std::uint32_t
BlockPool::writtenPages(BlockId b) const
{
    const std::uint32_t i = blockIndex(b);
    EMMCSIM_ASSERT(i < blocks_, "writtenPages out of range");
    return writePtr_[i];
}

bool
BlockPool::blockFull(BlockId b) const
{
    return writtenPages(b) >= pagesPerBlock_;
}

std::uint32_t
BlockPool::eraseCount(BlockId b) const
{
    const std::uint32_t i = blockIndex(b);
    EMMCSIM_ASSERT(i < blocks_, "eraseCount out of range");
    return eraseCnt_[i];
}

std::uint64_t
BlockPool::blockAge(BlockId b) const
{
    const std::uint32_t i = blockIndex(b);
    EMMCSIM_ASSERT(i < blocks_, "blockAge out of range");
    return allocSeq_ - lastWriteSeq_[i];
}

void
BlockPool::eraseBlock(BlockId b)
{
    const std::uint32_t i = blockIndex(b);
    EMMCSIM_ASSERT(i < blocks_, "eraseBlock out of range");
    EMMCSIM_ASSERT(!isFree_[i], "eraseBlock on free block");
    EMMCSIM_ASSERT(!retired_[i], "eraseBlock on retired block");
    EMMCSIM_ASSERT(blockValid_[i] == 0,
                   "eraseBlock with live units; relocate first");
    EMMCSIM_ASSERT(active_ != static_cast<std::int32_t>(i),
                   "eraseBlock on the active block");
    const std::size_t first =
        pageIndex(units::blockFirstPage(b, pagesPerBlock_));
    std::fill(lpns_.begin() +
                  static_cast<std::ptrdiff_t>(first * unitsPerPage_),
              lpns_.begin() + static_cast<std::ptrdiff_t>(
                  (first + pagesPerBlock_) * unitsPerPage_),
              kNoLpn);
    std::fill(valid_.begin() + static_cast<std::ptrdiff_t>(first),
              valid_.begin() +
                  static_cast<std::ptrdiff_t>(first + pagesPerBlock_),
              std::uint8_t{0});
    std::fill(pageSeq_.begin() + static_cast<std::ptrdiff_t>(first),
              pageSeq_.begin() +
                  static_cast<std::ptrdiff_t>(first + pagesPerBlock_),
              std::uint64_t{0});
    writePtr_[i] = 0;
    ++eraseCnt_[i];
    ++totalErases_;
    isFree_[i] = true;
    ++freeCount_;
}

void
BlockPool::markSuspect(BlockId b)
{
    const std::uint32_t i = blockIndex(b);
    EMMCSIM_ASSERT(i < blocks_, "markSuspect out of range");
    EMMCSIM_ASSERT(!retired_[i], "markSuspect on retired block");
    EMMCSIM_ASSERT(!isFree_[i], "markSuspect on free block");
    suspect_[i] = true;
}

bool
BlockPool::blockSuspect(BlockId b) const
{
    const std::uint32_t i = blockIndex(b);
    EMMCSIM_ASSERT(i < blocks_, "blockSuspect out of range");
    return suspect_[i];
}

void
BlockPool::sealBlock(BlockId b)
{
    const std::uint32_t i = blockIndex(b);
    EMMCSIM_ASSERT(i < blocks_, "sealBlock out of range");
    EMMCSIM_ASSERT(!isFree_[i], "sealBlock on free block");
    EMMCSIM_ASSERT(!retired_[i], "sealBlock on retired block");
    writePtr_[i] = pagesPerBlock_;
    if (active_ == static_cast<std::int32_t>(i))
        active_ = -1;
}

void
BlockPool::retireBlock(BlockId b)
{
    const std::uint32_t i = blockIndex(b);
    EMMCSIM_ASSERT(i < blocks_, "retireBlock out of range");
    EMMCSIM_ASSERT(!isFree_[i], "retireBlock on free block");
    EMMCSIM_ASSERT(!retired_[i], "retireBlock on retired block");
    EMMCSIM_ASSERT(blockValid_[i] == 0,
                   "retireBlock with live units; relocate first");
    EMMCSIM_ASSERT(active_ != static_cast<std::int32_t>(i),
                   "retireBlock on the active block");
    const std::size_t first =
        pageIndex(units::blockFirstPage(b, pagesPerBlock_));
    std::fill(lpns_.begin() +
                  static_cast<std::ptrdiff_t>(first * unitsPerPage_),
              lpns_.begin() + static_cast<std::ptrdiff_t>(
                  (first + pagesPerBlock_) * unitsPerPage_),
              kNoLpn);
    std::fill(valid_.begin() + static_cast<std::ptrdiff_t>(first),
              valid_.begin() +
                  static_cast<std::ptrdiff_t>(first + pagesPerBlock_),
              std::uint8_t{0});
    std::fill(pageSeq_.begin() + static_cast<std::ptrdiff_t>(first),
              pageSeq_.begin() +
                  static_cast<std::ptrdiff_t>(first + pagesPerBlock_),
              std::uint64_t{0});
    // The write pointer stays at the end: a retired block is "full" of
    // nothing, keeping it out of every allocation and victim scan.
    writePtr_[i] = pagesPerBlock_;
    suspect_[i] = false;
    retired_[i] = true;
    ++retiredCount_;
}

bool
BlockPool::blockRetired(BlockId b) const
{
    const std::uint32_t i = blockIndex(b);
    EMMCSIM_ASSERT(i < blocks_, "blockRetired out of range");
    return retired_[i];
}

std::uint32_t
BlockPool::eraseSpread() const
{
    auto [mn, mx] = std::minmax_element(eraseCnt_.begin(), eraseCnt_.end());
    return *mx - *mn;
}

bool
BlockPool::blockFree(BlockId b) const
{
    const std::uint32_t i = blockIndex(b);
    EMMCSIM_ASSERT(i < blocks_, "blockFree out of range");
    return isFree_[i];
}

void
BlockPool::corruptUnitForTest(Ppn ppn, std::uint32_t slot, Lpn lpn,
                              bool valid)
{
    const std::size_t p = pageIndex(ppn);
    EMMCSIM_ASSERT(p < pageCount() && slot < unitsPerPage_,
                   "corruptUnitForTest out of range");
    lpns_[p * unitsPerPage_ + slot] = lpn;
    std::uint8_t bit = static_cast<std::uint8_t>(1u << slot);
    if (valid)
        valid_[p] |= bit;
    else
        valid_[p] &= static_cast<std::uint8_t>(~bit);
}

void
BlockPool::corruptValidUnitsForTest(std::int64_t delta)
{
    validUnits_ = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(validUnits_) + delta);
}

void
BlockPool::corruptFreeCountForTest(std::int64_t delta)
{
    freeCount_ = static_cast<std::uint32_t>(
        static_cast<std::int64_t>(freeCount_) + delta);
}

void
BlockPool::corruptRetiredForTest(BlockId b, bool retired)
{
    const std::uint32_t i = blockIndex(b);
    EMMCSIM_ASSERT(i < blocks_, "corruptRetiredForTest out of range");
    retired_[i] = retired;
}

void
BlockPool::stampPageSeq(Ppn ppn, std::uint64_t seq)
{
    const std::size_t p = pageIndex(ppn);
    EMMCSIM_ASSERT(p < pageCount(), "stampPageSeq out of range");
    EMMCSIM_ASSERT(seq > 0, "page seq stamps start at 1");
    pageSeq_[p] = seq;
}

std::uint64_t
BlockPool::pageSeq(Ppn ppn) const
{
    const std::size_t p = pageIndex(ppn);
    EMMCSIM_ASSERT(p < pageCount(), "pageSeq out of range");
    return pageSeq_[p];
}

void
BlockPool::tearPage(Ppn ppn)
{
    const std::size_t p = pageIndex(ppn);
    EMMCSIM_ASSERT(p < pageCount(), "tearPage out of range");
    const std::uint32_t b =
        blockIndex(units::pageToBlock(ppn, pagesPerBlock_));
    for (std::uint32_t u = 0; u < unitsPerPage_; ++u) {
        const std::uint8_t bit = static_cast<std::uint8_t>(1u << u);
        if (valid_[p] & bit) {
            EMMCSIM_ASSERT(blockValid_[b] > 0, "block valid underflow");
            --blockValid_[b];
            --validUnits_;
        }
        lpns_[p * unitsPerPage_ + u] = kNoLpn;
    }
    valid_[p] = 0;
    pageSeq_[p] = 0;
    ++tornPages_;
}

void
BlockPool::beginRecoveryScan()
{
    std::fill(valid_.begin(), valid_.end(), std::uint8_t{0});
    std::fill(blockValid_.begin(), blockValid_.end(), 0u);
    validUnits_ = 0;
}

void
BlockPool::revalidateUnit(Ppn ppn, std::uint32_t slot)
{
    const std::size_t p = pageIndex(ppn);
    EMMCSIM_ASSERT(p < pageCount() && slot < unitsPerPage_,
                   "revalidateUnit out of range");
    EMMCSIM_ASSERT(lpns_[p * unitsPerPage_ + slot] != kNoLpn,
                   "revalidateUnit on unwritten slot");
    const std::uint8_t bit = static_cast<std::uint8_t>(1u << slot);
    EMMCSIM_ASSERT(!(valid_[p] & bit), "revalidateUnit on live unit");
    valid_[p] |= bit;
    ++blockValid_[blockIndex(units::pageToBlock(ppn, pagesPerBlock_))];
    ++validUnits_;
}

void
BlockPool::sealOpenBlocks()
{
    if (active_ >= 0)
        sealBlock(BlockId{static_cast<std::uint32_t>(active_)});
}

void
BlockPool::save(core::BinWriter &w) const
{
    w.u32(pageBytes_);
    w.u32(unitsPerPage_);
    w.u32(blocks_);
    w.u32(pagesPerBlock_);
    w.podVec(lpns_);
    w.podVec(valid_);
    w.sparseU64(pageSeq_);
    w.podVec(writePtr_);
    w.podVec(blockValid_);
    w.podVec(eraseCnt_);
    w.podVec(lastWriteSeq_);
    w.u64(allocSeq_);
    w.boolVec(isFree_);
    w.boolVec(suspect_);
    w.boolVec(retired_);
    w.u32(freeCount_);
    w.u32(retiredCount_);
    w.i32(active_);
    w.u64(totalErases_);
    w.u64(programmed_);
    w.u64(validUnits_);
    w.u64(tornPages_);
}

void
BlockPool::load(core::BinReader &r)
{
    if (r.u32() != pageBytes_ || r.u32() != unitsPerPage_ ||
        r.u32() != blocks_ || r.u32() != pagesPerBlock_) {
        r.fail();
        return;
    }
    r.podVec(lpns_);
    r.podVec(valid_);
    r.sparseU64(pageSeq_);
    r.podVec(writePtr_);
    r.podVec(blockValid_);
    r.podVec(eraseCnt_);
    r.podVec(lastWriteSeq_);
    allocSeq_ = r.u64();
    r.boolVec(isFree_);
    r.boolVec(suspect_);
    r.boolVec(retired_);
    freeCount_ = r.u32();
    retiredCount_ = r.u32();
    active_ = r.i32();
    totalErases_ = r.u64();
    programmed_ = r.u64();
    validUnits_ = r.u64();
    tornPages_ = r.u64();
    if (lpns_.size() != pageCount() * unitsPerPage_ ||
        valid_.size() != pageCount() || pageSeq_.size() != pageCount() ||
        writePtr_.size() != blocks_ || blockValid_.size() != blocks_ ||
        eraseCnt_.size() != blocks_ || lastWriteSeq_.size() != blocks_ ||
        isFree_.size() != blocks_ || suspect_.size() != blocks_ ||
        retired_.size() != blocks_)
        r.fail();
}

} // namespace emmcsim::flash
