/**
 * @file
 * FlashArray: the timed flash device — state plus resource timelines.
 *
 * Timing follows the SSDsim resource-reservation model. Two resource
 * classes exist:
 *  - channels: shared buses that carry command cycles and data
 *    transfers (one transfer at a time per channel);
 *  - array units: the NAND cell arrays, busy during read / program /
 *    erase. With multi-plane commands enabled the unit of array
 *    parallelism is the plane; disabled, it is the die (one array op
 *    per die at a time), which is the conservative eMMC behaviour.
 *
 * Read:    [array readLatency on plane] then [cmd + transfer on channel]
 * Program: [cmd + transfer on channel] then [array programLatency]
 * Erase:   [cmd on channel] then [array eraseLatency]
 *
 * The caller provides an earliest-start time; the array returns when
 * the operation starts and completes, and advances the timelines.
 */

#ifndef EMMCSIM_FLASH_ARRAY_HH
#define EMMCSIM_FLASH_ARRAY_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "fault/injector.hh"
#include "flash/geometry.hh"
#include "flash/plane.hh"
#include "flash/timing.hh"
#include "sim/types.hh"

namespace emmcsim::flash {

/** Kinds of flash operations the array executes. */
enum class OpKind { Read, Program, Erase, CopybackRead, CopybackProgram };

/** Completion status of one flash operation. */
enum class OpStatus : std::uint8_t
{
    Ok,            ///< succeeded on the first attempt
    Corrected,     ///< read recovered by the retry ladder
    Uncorrectable, ///< read failed past the last retry level
    ProgramFail,   ///< program reported a status failure
    EraseFail,     ///< erase failed; block must be retired
};

/**
 * Timed outcome of one flash operation.
 *
 * Besides the start/done envelope, the result carries the occupancy
 * split the latency-attribution ledger needs (DESIGN.md §14): how
 * long the operation held the channel (busTime), how long it held the
 * array unit (cellTime, including any retry re-sensing), and how much
 * of the array occupancy was retry-ladder overhead (retryTime). The
 * remainder of done − start is resource contention — waiting for the
 * channel or the array unit to come free.
 */
struct OpResult
{
    sim::Time start = 0;  ///< when the operation began occupying resources
    sim::Time done = 0;   ///< when its last resource was released
    OpStatus status = OpStatus::Ok;
    std::uint32_t retries = 0; ///< read-retry rounds charged (reads)
    sim::Time busTime = 0;   ///< channel occupancy (cmd + transfer)
    sim::Time cellTime = 0;  ///< array occupancy (sense/program/erase)
    sim::Time retryTime = 0; ///< retry-ladder share of cellTime (reads)

    bool ok() const { return status == OpStatus::Ok ||
                             status == OpStatus::Corrected; }
};

/** Operation counters, kept per pool (page-size class). */
struct ArrayStats
{
    std::uint64_t reads = 0;
    std::uint64_t programs = 0;
    std::uint64_t erases = 0;
    std::uint64_t copybackReads = 0;
    std::uint64_t copybackPrograms = 0;
    std::uint64_t bytesRead = 0;
    std::uint64_t bytesProgrammed = 0;
};

/** The complete flash array: per-plane state plus shared timelines. */
class FlashArray
{
  public:
    /**
     * @param g Geometry (validated on construction).
     * @param t Timing; t.pools must parallel g.pools.
     * @param multiplane Enable plane-level array parallelism; when
     *        false, array ops serialize per die.
     */
    FlashArray(const Geometry &g, const Timing &t, bool multiplane = true);

    const Geometry &geometry() const { return geom_; }
    const Timing &timing() const { return timing_; }

    /**
     * Attach a fault injector (borrowed; must outlive the array).
     * Null (the default) keeps the perfect-medium behaviour: every
     * operation returns OpStatus::Ok with the original timing.
     */
    void attachFaultInjector(fault::FaultInjector *injector)
    {
        fault_ = injector;
    }

    /** The attached injector, or nullptr. */
    fault::FaultInjector *faultInjector() { return fault_; }
    const fault::FaultInjector *faultInjector() const { return fault_; }

    /** Observer fired once per executed flash operation (obs support). */
    using OpHook =
        std::function<void(OpKind, const PageAddr &, const OpResult &)>;

    /**
     * Install an observability hook fired after every read / program /
     * erase / copyback with the operation's address and timed result.
     * The obs::RequestTracer uses it to build per-die span lanes; a
     * null @p hook uninstalls. The hook must not issue flash
     * operations — with none installed the timing paths are unchanged.
     */
    void setOpHook(OpHook hook) { opHook_ = std::move(hook); }

    /** Plane state by linear index. */
    Plane &plane(std::uint32_t linear) { return planes_.at(linear); }
    const Plane &plane(std::uint32_t linear) const
    {
        return planes_.at(linear);
    }

    /** Pool @p pool of the plane holding @p addr. */
    BlockPool &poolAt(const PageAddr &addr);

    /**
     * Execute a page read on @p addr.
     *
     * @param addr     Page to read (pool selects the latency class).
     * @param earliest Earliest allowed start time.
     * @param transfer_bytes Bytes to move over the channel; clamp to
     *        the physical page size. Zero keeps the full page.
     */
    OpResult read(const PageAddr &addr, sim::Time earliest,
                  units::Bytes transfer_bytes = units::Bytes{0});

    /** Execute a page program on @p addr (full-page transfer). */
    OpResult program(const PageAddr &addr, sim::Time earliest);

    /** Execute a block erase on the block containing @p addr. */
    OpResult erase(const PageAddr &addr, sim::Time earliest);

    /**
     * Copyback pair used by garbage collection: data moves inside the
     * plane without crossing the channel, only the command overhead is
     * charged on the bus.
     */
    OpResult copybackRead(const PageAddr &addr, sim::Time earliest);
    OpResult copybackProgram(const PageAddr &addr, sim::Time earliest);

    /** When the channel of @p addr becomes free. */
    sim::Time channelFreeAt(std::uint32_t channel) const;
    /** When the array unit (plane or die) of @p addr becomes free. */
    sim::Time arrayFreeAt(const PageAddr &addr) const;

    /** Earliest time every resource in the device is idle. */
    sim::Time allIdleAt() const;

    /** Per-pool operation counters. */
    const ArrayStats &stats(std::size_t pool) const
    {
        return stats_.at(pool);
    }

    /** Aggregate counters across pools. */
    ArrayStats totalStats() const;

    /** @name Snapshot image (core/binio.hh). @{ */

    /** Serialize every pool plus timelines and counters. */
    void save(core::BinWriter &w) const;

    /** Restore; geometry must match the constructed shape. */
    void load(core::BinReader &r);
    /** @} */

  private:
    /** Index of the array-parallelism unit for @p addr. */
    std::size_t arrayIndex(const PageAddr &addr) const;

    /** Reserve the channel for @p dur starting no earlier than @p t. */
    sim::Time reserveChannel(std::uint32_t ch, sim::Time t, sim::Time dur);

    /** Reserve the array unit for @p dur starting no earlier than @p t. */
    sim::Time reserveArray(std::size_t idx, sim::Time t, sim::Time dur);

    /** Read-path fault evaluation for @p addr (no-fault when detached). */
    fault::ReadFault evalReadFault(const PageAddr &addr);

    /** Fire the op hook (if any) and pass @p res through. */
    OpResult
    notifyOp(OpKind kind, const PageAddr &addr, const OpResult &res)
    {
        if (opHook_)
            opHook_(kind, addr, res);
        return res;
    }

    Geometry geom_;
    Timing timing_;
    bool multiplane_;
    fault::FaultInjector *fault_ = nullptr;
    OpHook opHook_;

    std::vector<Plane> planes_;
    std::vector<sim::Time> channelFree_;
    std::vector<sim::Time> arrayFree_;
    std::vector<ArrayStats> stats_;
};

} // namespace emmcsim::flash

#endif // EMMCSIM_FLASH_ARRAY_HH
