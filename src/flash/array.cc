#include "flash/array.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace emmcsim::flash {

FlashArray::FlashArray(const Geometry &g, const Timing &t, bool multiplane)
    : geom_(g), timing_(t), multiplane_(multiplane)
{
    geom_.validate();
    if (timing_.pools.size() != geom_.pools.size())
        sim::fatal("flash timing pools do not match geometry pools");

    planes_.reserve(geom_.planeCount());
    for (std::uint32_t p = 0; p < geom_.planeCount(); ++p)
        planes_.emplace_back(geom_);

    channelFree_.assign(geom_.channels, 0);
    arrayFree_.assign(multiplane_ ? geom_.planeCount() : geom_.dieCount(),
                      0);
    stats_.assign(geom_.pools.size(), ArrayStats{});
}

BlockPool &
FlashArray::poolAt(const PageAddr &addr)
{
    return planes_.at(planeLinear(geom_, addr)).pool(addr.pool);
}

std::size_t
FlashArray::arrayIndex(const PageAddr &addr) const
{
    return multiplane_ ? planeLinear(geom_, addr) : dieLinear(geom_, addr);
}

sim::Time
FlashArray::reserveChannel(std::uint32_t ch, sim::Time t, sim::Time dur)
{
    EMMCSIM_ASSERT(ch < channelFree_.size(), "channel out of range");
    sim::Time start = std::max(t, channelFree_[ch]);
    channelFree_[ch] = start + dur;
    return start;
}

sim::Time
FlashArray::reserveArray(std::size_t idx, sim::Time t, sim::Time dur)
{
    EMMCSIM_ASSERT(idx < arrayFree_.size(), "array unit out of range");
    sim::Time start = std::max(t, arrayFree_[idx]);
    arrayFree_[idx] = start + dur;
    return start;
}

fault::ReadFault
FlashArray::evalReadFault(const PageAddr &addr)
{
    if (fault_ == nullptr || !fault_->enabled())
        return {};
    const BlockPool &bp =
        planes_.at(planeLinear(geom_, addr)).pool(addr.pool);
    return fault_->onRead(bp.eraseCount(BlockId{addr.block}),
                          bp.blockAge(BlockId{addr.block}));
}

OpResult
FlashArray::read(const PageAddr &addr, sim::Time earliest,
                 units::Bytes transfer_bytes)
{
    const auto &pt = timing_.pools.at(addr.pool);
    const std::uint32_t page_bytes = geom_.pools.at(addr.pool).pageBytes;
    std::uint64_t bytes = transfer_bytes.value() == 0
                              ? page_bytes
                              : std::min<std::uint64_t>(
                                    transfer_bytes.value(), page_bytes);

    // Each retry level re-senses the page with shifted read voltages,
    // extending the array occupancy; the data crosses the channel once
    // (either the finally-corrected page or the failed read-out).
    const fault::ReadFault rf = evalReadFault(addr);
    sim::Time sense = pt.readLatency;
    if (rf.retries > 0)
        sense += static_cast<sim::Time>(rf.retries) *
                 fault_->config().readRetryLatency;

    // Array senses the page first, then the channel moves the data out.
    sim::Time a_start = reserveArray(arrayIndex(addr), earliest, sense);
    sim::Time a_done = a_start + sense;

    sim::Time xfer = timing_.pageCmdOverhead + timing_.transferTime(bytes);
    sim::Time x_start = reserveChannel(addr.channel, a_done, xfer);

    auto &st = stats_.at(addr.pool);
    ++st.reads;
    st.bytesRead += bytes;

    OpResult res{a_start, x_start + xfer};
    res.retries = rf.retries;
    res.busTime = xfer;
    res.cellTime = sense;
    res.retryTime = sense - pt.readLatency;
    if (rf.uncorrectable)
        res.status = OpStatus::Uncorrectable;
    else if (rf.retries > 0)
        res.status = OpStatus::Corrected;
    return notifyOp(OpKind::Read, addr, res);
}

OpResult
FlashArray::program(const PageAddr &addr, sim::Time earliest)
{
    const auto &pt = timing_.pools.at(addr.pool);
    const std::uint32_t page_bytes = geom_.pools.at(addr.pool).pageBytes;

    // Data crosses the channel first, then the array programs it.
    sim::Time xfer =
        timing_.pageCmdOverhead + timing_.transferTime(page_bytes);
    sim::Time x_start = reserveChannel(addr.channel, earliest, xfer);
    sim::Time x_done = x_start + xfer;

    sim::Time a_start =
        reserveArray(arrayIndex(addr), x_done, pt.programLatency);

    auto &st = stats_.at(addr.pool);
    ++st.programs;
    st.bytesProgrammed += page_bytes;

    OpResult res{x_start, a_start + pt.programLatency};
    res.busTime = xfer;
    res.cellTime = pt.programLatency;
    if (fault_ != nullptr && fault_->enabled() &&
        fault_->programFails(poolAt(addr).eraseCount(BlockId{addr.block})))
        res.status = OpStatus::ProgramFail;
    return notifyOp(OpKind::Program, addr, res);
}

OpResult
FlashArray::erase(const PageAddr &addr, sim::Time earliest)
{
    // Only the erase command crosses the bus; the array then erases.
    sim::Time x_start = reserveChannel(addr.channel, earliest,
                                       timing_.pageCmdOverhead);
    sim::Time x_done = x_start + timing_.pageCmdOverhead;
    sim::Time a_start =
        reserveArray(arrayIndex(addr), x_done, timing_.eraseLatency);

    ++stats_.at(addr.pool).erases;

    OpResult res{x_start, a_start + timing_.eraseLatency};
    res.busTime = timing_.pageCmdOverhead;
    res.cellTime = timing_.eraseLatency;
    if (fault_ != nullptr && fault_->enabled() &&
        fault_->eraseFails(poolAt(addr).eraseCount(BlockId{addr.block})))
        res.status = OpStatus::EraseFail;
    return notifyOp(OpKind::Erase, addr, res);
}

OpResult
FlashArray::copybackRead(const PageAddr &addr, sim::Time earliest)
{
    const auto &pt = timing_.pools.at(addr.pool);

    // The retry ladder applies to copyback sensing just as it does to
    // host reads; GC relocating data out of a worn block pays for it.
    const fault::ReadFault rf = evalReadFault(addr);
    sim::Time sense = pt.readLatency;
    if (rf.retries > 0)
        sense += static_cast<sim::Time>(rf.retries) *
                 fault_->config().readRetryLatency;

    sim::Time x_start = reserveChannel(addr.channel, earliest,
                                       timing_.pageCmdOverhead);
    sim::Time x_done = x_start + timing_.pageCmdOverhead;
    sim::Time a_start = reserveArray(arrayIndex(addr), x_done, sense);

    ++stats_.at(addr.pool).copybackReads;
    OpResult res{x_start, a_start + sense};
    res.retries = rf.retries;
    res.busTime = timing_.pageCmdOverhead;
    res.cellTime = sense;
    res.retryTime = sense - pt.readLatency;
    if (rf.uncorrectable)
        res.status = OpStatus::Uncorrectable;
    else if (rf.retries > 0)
        res.status = OpStatus::Corrected;
    return notifyOp(OpKind::CopybackRead, addr, res);
}

OpResult
FlashArray::copybackProgram(const PageAddr &addr, sim::Time earliest)
{
    const auto &pt = timing_.pools.at(addr.pool);
    sim::Time x_start = reserveChannel(addr.channel, earliest,
                                       timing_.pageCmdOverhead);
    sim::Time x_done = x_start + timing_.pageCmdOverhead;
    sim::Time a_start =
        reserveArray(arrayIndex(addr), x_done, pt.programLatency);

    ++stats_.at(addr.pool).copybackPrograms;
    OpResult res{x_start, a_start + pt.programLatency};
    res.busTime = timing_.pageCmdOverhead;
    res.cellTime = pt.programLatency;
    if (fault_ != nullptr && fault_->enabled() &&
        fault_->programFails(poolAt(addr).eraseCount(BlockId{addr.block})))
        res.status = OpStatus::ProgramFail;
    return notifyOp(OpKind::CopybackProgram, addr, res);
}

sim::Time
FlashArray::channelFreeAt(std::uint32_t channel) const
{
    return channelFree_.at(channel);
}

sim::Time
FlashArray::arrayFreeAt(const PageAddr &addr) const
{
    return arrayFree_.at(arrayIndex(addr));
}

sim::Time
FlashArray::allIdleAt() const
{
    sim::Time t = 0;
    for (sim::Time c : channelFree_)
        t = std::max(t, c);
    for (sim::Time a : arrayFree_)
        t = std::max(t, a);
    return t;
}

ArrayStats
FlashArray::totalStats() const
{
    ArrayStats total;
    for (const auto &s : stats_) {
        total.reads += s.reads;
        total.programs += s.programs;
        total.erases += s.erases;
        total.copybackReads += s.copybackReads;
        total.copybackPrograms += s.copybackPrograms;
        total.bytesRead += s.bytesRead;
        total.bytesProgrammed += s.bytesProgrammed;
    }
    return total;
}

void
FlashArray::save(core::BinWriter &w) const
{
    w.u32(static_cast<std::uint32_t>(planes_.size()));
    for (const Plane &p : planes_)
        for (std::size_t k = 0; k < p.poolCount(); ++k)
            p.pool(k).save(w);
    w.podVec(channelFree_);
    w.podVec(arrayFree_);
    w.u32(static_cast<std::uint32_t>(stats_.size()));
    for (const ArrayStats &s : stats_)
        w.pod(s);
}

void
FlashArray::load(core::BinReader &r)
{
    if (r.u32() != planes_.size()) {
        r.fail();
        return;
    }
    for (Plane &p : planes_)
        for (std::size_t k = 0; k < p.poolCount(); ++k)
            p.pool(k).load(r);
    const std::size_t channels = channelFree_.size();
    const std::size_t arrays = arrayFree_.size();
    r.podVec(channelFree_);
    r.podVec(arrayFree_);
    if (channelFree_.size() != channels || arrayFree_.size() != arrays)
        r.fail();
    if (r.u32() != stats_.size()) {
        r.fail();
        return;
    }
    for (ArrayStats &s : stats_)
        r.pod(s);
}

} // namespace emmcsim::flash
