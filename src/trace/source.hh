/**
 * @file
 * TraceSource: a streaming cursor over trace records.
 *
 * A multi-GB capture must replay without materializing a
 * std::vector<TraceRecord> (DESIGN.md §15). TraceSource abstracts
 * "where the records come from" behind a chunked pull interface:
 * the replayer asks for the next batch, the source fills a
 * caller-owned buffer, and nothing holds the whole trace. Three
 * implementations cover the repertoire:
 *
 *  - MemoryTraceSource — non-owning cursor over an in-memory Trace
 *    (the legacy path, and the byte-identity reference).
 *  - TextTraceSource   — incremental parser over the emmctrace text
 *    format (this file).
 *  - BinTraceSource    — block decoder over emmctrace-bin v1
 *    (binfmt.hh).
 *
 * Streaming sources require the file to be arrival-sorted (they
 * cannot sort what they have not read); Trace::save and the ingest
 * pipeline always write sorted traces. Errors are reported through
 * the same TraceLoadError the in-memory loader uses: next() returns
 * 0 and error() explains whether that was EOF or a failure.
 */

#ifndef EMMCSIM_TRACE_SOURCE_HH
#define EMMCSIM_TRACE_SOURCE_HH

#include <cstdint>
#include <fstream>
#include <string>

#include "trace/trace.hh"

namespace emmcsim::trace {

/** Pull-based record stream; see file comment. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Workload label (from the trace header / Trace::name). */
    virtual const std::string &name() const = 0;

    /**
     * Fill out[0..max) with the next records in arrival order.
     *
     * @return number of records produced; 0 means end of stream *or*
     *         failure — callers distinguish via failed().
     */
    virtual std::size_t next(TraceRecord *out, std::size_t max) = 0;

    /** Rewind to the first record (clears any error). */
    virtual void reset() = 0;

    /** Failure details; ok() while the stream is healthy. */
    virtual const TraceLoadError &error() const = 0;

    bool failed() const { return !error().ok(); }
};

/** Cursor over an in-memory Trace (non-owning; trace must outlive). */
class MemoryTraceSource : public TraceSource
{
  public:
    explicit MemoryTraceSource(const Trace &t) : trace_(&t) {}

    const std::string &name() const override { return trace_->name(); }

    std::size_t
    next(TraceRecord *out, std::size_t max) override
    {
        std::size_t n = 0;
        while (n < max && pos_ < trace_->size())
            out[n++] = (*trace_)[pos_++];
        return n;
    }

    void reset() override { pos_ = 0; }

    const TraceLoadError &error() const override { return err_; }

  private:
    const Trace *trace_;
    std::size_t pos_ = 0;
    TraceLoadError err_; ///< always ok; memory cannot fail
};

/**
 * Incremental parser over the emmctrace text format. The header
 * comments (name, declared record count) are consumed eagerly on
 * open, so name() is valid before the first next(); records are then
 * parsed one line per record on demand. Requires sorted arrivals and
 * cross-checks the "# records:" header at end of stream.
 */
class TextTraceSource : public TraceSource
{
  public:
    /** Open @p path; failure is reported via error(), not thrown. */
    explicit TextTraceSource(std::string path);

    const std::string &name() const override { return name_; }
    std::size_t next(TraceRecord *out, std::size_t max) override;
    void reset() override;
    const TraceLoadError &error() const override { return err_; }

    /** Records produced so far (cross-checked against the header). */
    std::uint64_t produced() const { return produced_; }

  private:
    /** Read lines up to (and buffering) the first record. */
    void prime();

    /** Parse one record; false on EOF or error (err_ says which). */
    bool parseOne(TraceRecord &r);

    std::string path_;
    std::ifstream is_;
    std::string name_;
    std::string line_; ///< reused line buffer
    std::size_t lineno_ = 0;
    bool havePending_ = false; ///< prime() buffered one record
    TraceRecord pending_{};
    bool haveCount_ = false;
    std::uint64_t declared_ = 0;
    std::uint64_t produced_ = 0;
    sim::Time lastArrival_ = -1;
    bool eof_ = false;
    TraceLoadError err_;
};

} // namespace emmcsim::trace

#endif // EMMCSIM_TRACE_SOURCE_HH
