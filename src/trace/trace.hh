/**
 * @file
 * Trace: an ordered collection of block-level requests plus metadata,
 * with a plain-text serialization format.
 *
 * Format (one record per line, '#' comments / header):
 * @code
 * # emmctrace v1
 * # name: Twitter
 * <arrival_ns> <lba_sector> <size_bytes> <R|W> [<service_ns> <finish_ns>]
 * @endcode
 */

#ifndef EMMCSIM_TRACE_TRACE_HH
#define EMMCSIM_TRACE_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/record.hh"

namespace emmcsim::trace {

/**
 * Structured description of a trace-parsing failure: which line broke
 * and why. Callers that cannot tolerate sim::fatal (the CLI, tests)
 * use the tryLoad API and decide themselves how to report it.
 */
struct TraceLoadError
{
    /** 1-based line of the offending record; 0 for file-level errors. */
    std::size_t line = 0;
    /** Human-readable failure description; empty means success. */
    std::string reason;

    bool ok() const { return reason.empty(); }

    /** "line N: reason" (or just the reason for file-level errors). */
    std::string message() const;
};

/** A named, arrival-ordered sequence of trace records. */
class Trace
{
  public:
    Trace() = default;

    /** @param name Application / workload label (e.g. "Twitter"). */
    explicit Trace(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    /** Append a record; arrivals must be non-decreasing. */
    void push(const TraceRecord &r);

    /** Pre-allocate capacity for @p n records (no size change). */
    void reserve(std::size_t n) { records_.reserve(n); }

    std::size_t size() const { return records_.size(); }
    bool empty() const { return records_.empty(); }

    const TraceRecord &operator[](std::size_t i) const
    {
        return records_[i];
    }
    TraceRecord &operator[](std::size_t i) { return records_[i]; }

    const std::vector<TraceRecord> &records() const { return records_; }
    std::vector<TraceRecord> &records() { return records_; }

    /** Recording duration: last arrival (or finish when replayed). */
    sim::Time duration() const;

    /** Total bytes accessed (reads + writes). */
    units::Bytes totalBytes() const;

    /** Total bytes written. */
    units::Bytes writtenBytes() const;

    /** Number of write requests. */
    std::uint64_t writeCount() const;

    /** Largest request in bytes. */
    units::Bytes maxRequestBytes() const;

    /**
     * Check structural invariants: sorted arrivals, positive 4KB-
     * aligned sizes, sector-aligned LBAs.
     * @return empty string when valid, else a description.
     */
    std::string validate() const;

    /** Re-sort records by arrival (stable). */
    void sortByArrival();

    /** Serialize to a stream in the text format. */
    void save(std::ostream &os) const;

    /** Serialize to a file; sim::fatal on I/O failure. */
    void saveFile(const std::string &path) const;

    /**
     * Parse from a stream.
     * @return the parsed trace; sim::fatal on malformed input.
     */
    static Trace load(std::istream &is);

    /** Parse from a file; sim::fatal on I/O failure. */
    static Trace loadFile(const std::string &path);

    /**
     * Parse from a stream without dying on malformed input.
     *
     * @param out Receives the parsed trace on success (unspecified on
     *        failure).
     * @param err Filled with the offending line and reason on failure;
     *        reset to success otherwise.
     * @retval true on success.
     */
    static bool tryLoad(std::istream &is, Trace &out,
                        TraceLoadError &err);

    /** tryLoad from a file; unopenable files are file-level errors. */
    static bool tryLoadFile(const std::string &path, Trace &out,
                            TraceLoadError &err);

  private:
    std::string name_;
    std::vector<TraceRecord> records_;
};

} // namespace emmcsim::trace

#endif // EMMCSIM_TRACE_TRACE_HH
