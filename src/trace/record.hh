/**
 * @file
 * TraceRecord: one block-level I/O request as BIOtracer records it.
 *
 * BIOtracer (Fig 2 of the paper) captures three timestamps per request:
 * arrival at the block layer (step 1), service start when the request
 * is actually issued to the eMMC device (step 2), and finish when the
 * driver completes it (step 3). Plus the logical address, size, and
 * access type taken at the block layer.
 */

#ifndef EMMCSIM_TRACE_RECORD_HH
#define EMMCSIM_TRACE_RECORD_HH

#include <cstdint>

#include "core/units.hh"
#include "sim/types.hh"

namespace emmcsim::trace {

/** Access type of a block request. */
enum class OpType : std::uint8_t { Read, Write };

/** One block-level request with BIOtracer's three timestamps. */
struct TraceRecord
{
    /** Arrival at the block layer, ns from trace start (step 1). */
    sim::Time arrival = 0;
    /** Starting logical block address in 512-byte sectors. */
    units::Lba lbaSector{0};
    /** Request size in bytes (4KB-aligned at file-system level). */
    units::Bytes sizeBytes{0};
    /** Read or write. */
    OpType op = OpType::Read;

    /** Issue time to the device (step 2); kTimeNever if not replayed. */
    sim::Time serviceStart = sim::kTimeNever;
    /** Completion time (step 3); kTimeNever if not replayed. */
    sim::Time finish = sim::kTimeNever;

    /** @return true for writes. */
    bool isWrite() const { return op == OpType::Write; }

    /** Request size in 4KB mapping units (rounded up). */
    std::uint64_t
    sizeUnits() const
    {
        return units::bytesToUnitsCeil(sizeBytes);
    }

    /** First 4KB logical unit covered by the request. */
    units::UnitAddr
    firstUnit() const
    {
        return units::lbaToUnitFloor(lbaSector);
    }

    /** One-past-the-last sector (the successor's address if seq.). */
    units::Lba
    endSector() const
    {
        return lbaSector + units::bytesToSectors(sizeBytes);
    }

    /** Response time; requires replay timestamps. */
    sim::Time
    responseTime() const
    {
        return finish - arrival;
    }

    /** Service time; requires replay timestamps. */
    sim::Time
    serviceTime() const
    {
        return finish - serviceStart;
    }

    /** @return true when both replay timestamps are present. */
    bool
    replayed() const
    {
        return serviceStart != sim::kTimeNever &&
               finish != sim::kTimeNever;
    }
};

} // namespace emmcsim::trace

#endif // EMMCSIM_TRACE_RECORD_HH
