#include "trace/source.hh"

#include <sstream>
#include <utility>

#include "trace/parse.hh"

namespace emmcsim::trace {

TextTraceSource::TextTraceSource(std::string path)
    : path_(std::move(path)), is_(path_)
{
    if (!is_) {
        err_.line = 0;
        err_.reason = "cannot open trace file: " + path_;
        return;
    }
    prime();
}

void
TextTraceSource::prime()
{
    // Consume header comments so name() answers before the first
    // next(); the first record line (if any) is buffered, not lost.
    while (std::getline(is_, line_)) {
        ++lineno_;
        stripCr(line_);
        if (line_.empty())
            continue;
        if (line_[0] == '#') {
            const std::string name_key = "# name: ";
            const std::string count_key = "# records: ";
            if (line_.rfind(name_key, 0) == 0) {
                name_ = line_.substr(name_key.size());
            } else if (line_.rfind(count_key, 0) == 0) {
                std::istringstream ss(line_.substr(count_key.size()));
                if (ss >> declared_)
                    haveCount_ = true;
            }
            continue;
        }
        TraceRecord r;
        std::string reason = parseRecordLine(line_, r);
        if (!reason.empty()) {
            err_.line = lineno_;
            err_.reason = std::move(reason);
            return;
        }
        pending_ = r;
        havePending_ = true;
        return;
    }
    eof_ = true;
    if (is_.bad()) {
        err_.line = lineno_;
        err_.reason = "I/O error while reading trace";
    } else if (haveCount_ && declared_ != 0) {
        err_.line = 0;
        err_.reason = "record count mismatch: header declares " +
                      std::to_string(declared_) +
                      " records, file has 0 (truncated or corrupt "
                      "trace?)";
    }
}

bool
TextTraceSource::parseOne(TraceRecord &r)
{
    if (!err_.ok() || eof_)
        return false;
    if (havePending_) {
        r = pending_;
        havePending_ = false;
    } else {
        while (true) {
            if (!std::getline(is_, line_)) {
                eof_ = true;
                if (is_.bad()) {
                    err_.line = lineno_;
                    err_.reason = "I/O error while reading trace";
                } else if (haveCount_ && declared_ != produced_) {
                    err_.line = 0;
                    err_.reason =
                        "record count mismatch: header declares " +
                        std::to_string(declared_) + " records, file has " +
                        std::to_string(produced_) +
                        " (truncated or corrupt trace?)";
                }
                return false;
            }
            ++lineno_;
            stripCr(line_);
            if (line_.empty() || line_[0] == '#')
                continue; // late comments are legal, just ignored
            break;
        }
        std::string reason = parseRecordLine(line_, r);
        if (!reason.empty()) {
            err_.line = lineno_;
            err_.reason = std::move(reason);
            return false;
        }
    }
    // Streaming cannot re-sort like Trace::tryLoad does; the file
    // must already be arrival-ordered (ingest always writes it so).
    if (r.arrival < lastArrival_) {
        err_.line = lineno_;
        err_.reason = "arrivals not sorted (a streaming source "
                      "requires a pre-sorted trace; re-ingest it)";
        return false;
    }
    lastArrival_ = r.arrival;
    ++produced_;
    return true;
}

std::size_t
TextTraceSource::next(TraceRecord *out, std::size_t max)
{
    std::size_t n = 0;
    while (n < max && parseOne(out[n]))
        ++n;
    return n;
}

void
TextTraceSource::reset()
{
    err_ = TraceLoadError{};
    name_.clear();
    lineno_ = 0;
    havePending_ = false;
    haveCount_ = false;
    declared_ = 0;
    produced_ = 0;
    lastArrival_ = -1;
    eof_ = false;
    is_.clear();
    is_.seekg(0);
    if (!is_) {
        // Reopen covers streams whose failbit survives seekg (or a
        // file replaced underneath us).
        is_.close();
        is_.open(path_);
        if (!is_) {
            err_.line = 0;
            err_.reason = "cannot reopen trace file: " + path_;
            return;
        }
    }
    prime();
}

} // namespace emmcsim::trace
