/**
 * @file
 * Shared per-line parsing for the emmctrace text format.
 *
 * Trace::tryLoad (whole-file, in-memory) and TextTraceSource
 * (streaming cursor) must accept and reject exactly the same lines;
 * both call these helpers so the two paths cannot drift. Every
 * function reports failure as a reason string (empty = success) that
 * the caller wraps in its own error type with a line number.
 */

#ifndef EMMCSIM_TRACE_PARSE_HH
#define EMMCSIM_TRACE_PARSE_HH

#include <sstream>
#include <string>

#include "trace/record.hh"

namespace emmcsim::trace {

/**
 * Strip one trailing '\r' in place. std::getline splits on '\n' only,
 * so a CRLF file otherwise leaks the '\r' into the last token of every
 * line — most visibly the "# name:" value, which then corrupts report
 * labels.
 */
inline void
stripCr(std::string &line)
{
    if (!line.empty() && line.back() == '\r')
        line.pop_back();
}

/**
 * Enforce the per-record subset of Trace::validate() invariants:
 * positive 4KB-aligned size, unit-aligned LBA, ordered replay
 * timestamps. (Arrival ordering is a cross-record property the caller
 * owns: tryLoad restores it by sorting, a streaming source requires
 * the file to be pre-sorted.)
 *
 * @return empty string when valid, else the reason.
 */
inline std::string
checkRecord(const TraceRecord &r)
{
    if (r.arrival < 0)
        return "negative arrival time";
    if (r.sizeBytes.value() == 0)
        return "zero size";
    if (!units::isUnitAligned(r.sizeBytes))
        return "size not 4KB-aligned";
    if (!units::isUnitAligned(r.lbaSector))
        return "lba not 4KB-aligned";
    if (r.replayed() &&
        (r.serviceStart < r.arrival || r.finish < r.serviceStart))
        return "timestamps out of order";
    return "";
}

/**
 * Parse one non-comment, non-empty record line into @p r and check the
 * per-record invariants. The line must already be '\r'-stripped.
 *
 * @return empty string on success, else the reason.
 */
inline std::string
parseRecordLine(const std::string &line, TraceRecord &r)
{
    std::istringstream ss(line);
    r = TraceRecord{};
    char op = 0;
    if (!(ss >> r.arrival >> r.lbaSector >> r.sizeBytes >> op)) {
        return "malformed record (expected \"<arrival_ns> "
               "<lba_sector> <size_bytes> <R|W>\"): " +
               line;
    }
    if (op == 'W' || op == 'w') {
        r.op = OpType::Write;
    } else if (op == 'R' || op == 'r') {
        r.op = OpType::Read;
    } else {
        return std::string("bad op '") + op + "' (expected R or W)";
    }
    sim::Time svc = sim::kTimeNever;
    sim::Time fin = sim::kTimeNever;
    if (ss >> svc) {
        if (!(ss >> fin))
            return "service timestamp without a finish timestamp";
        r.serviceStart = svc;
        r.finish = fin;
    } else {
        ss.clear();
    }
    std::string extra;
    if (ss >> extra)
        return "trailing garbage after record: " + extra;
    return checkRecord(r);
}

} // namespace emmcsim::trace

#endif // EMMCSIM_TRACE_PARSE_HH
