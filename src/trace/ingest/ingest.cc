#include "trace/ingest/ingest.hh"

#include <algorithm>
#include <fstream>
#include <set>
#include <utility>
#include <vector>

#include "core/units.hh"
#include "trace/ingest/formats.hh"

namespace emmcsim::trace::ingest {

namespace {

using LineParser = LineResult (*)(const std::string &, RawRecord &,
                                  std::string &);

LineParser
parserFor(Format f)
{
    switch (f) {
    case Format::Blktrace:
        return &parseBlktraceLine;
    case Format::Biosnoop:
        return &parseBiosnoopLine;
    case Format::Alibaba:
        return &parseAlibabaLine;
    case Format::Tencent:
        return &parseTencentLine;
    case Format::EmmcTrace:
        break; // loads through Trace::tryLoadFile, not per-line
    }
    return nullptr;
}

std::string
baseName(const std::string &path)
{
    const std::size_t slash = path.find_last_of("/\\");
    std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    const std::size_t dot = base.find_last_of('.');
    if (dot != std::string::npos && dot > 0)
        base.resize(dot);
    return base;
}

/** Read @p in_path line by line into RawRecords. */
bool
parseLines(LineParser parse, const std::string &in_path,
           std::vector<RawRecord> &raw, IngestStats &stats,
           std::string &error)
{
    std::ifstream is(in_path);
    if (!is) {
        error = "cannot open input file: " + in_path;
        return false;
    }
    std::string line;
    std::uint64_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        ++stats.linesTotal;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        RawRecord r;
        std::string why;
        switch (parse(line, r, why)) {
        case LineResult::Skip:
            ++stats.linesSkipped;
            break;
        case LineResult::Error:
            error = "line " + std::to_string(lineno) + ": " + why;
            return false;
        case LineResult::Record:
            ++stats.parsed;
            raw.push_back(std::move(r));
            break;
        }
    }
    if (is.bad()) {
        error = "I/O error while reading " + in_path;
        return false;
    }
    return true;
}

/** Load an emmctrace v1 text file into RawRecords (re-normalization
 * pass; replay timestamps are dropped by construction). */
bool
loadEmmcTrace(const std::string &in_path, std::vector<RawRecord> &raw,
              IngestStats &stats, std::string &name,
              std::string &error)
{
    Trace t;
    TraceLoadError err;
    if (!Trace::tryLoadFile(in_path, t, err)) {
        error = err.message();
        return false;
    }
    name = t.name();
    raw.reserve(t.size());
    for (const TraceRecord &rec : t.records()) {
        RawRecord r;
        r.timestampNs = rec.arrival;
        r.offsetBytes = rec.lbaSector.value() * sim::kSectorBytes;
        r.lengthBytes = rec.sizeBytes.value();
        r.write = rec.isWrite();
        raw.push_back(std::move(r));
    }
    stats.linesTotal = t.size();
    stats.parsed = t.size();
    return true;
}

} // namespace

bool
formatFromName(const std::string &name, Format &out)
{
    if (name == "emmctrace") {
        out = Format::EmmcTrace;
    } else if (name == "blktrace") {
        out = Format::Blktrace;
    } else if (name == "biosnoop") {
        out = Format::Biosnoop;
    } else if (name == "alibaba") {
        out = Format::Alibaba;
    } else if (name == "tencent") {
        out = Format::Tencent;
    } else {
        return false;
    }
    return true;
}

const char *
formatName(Format f)
{
    switch (f) {
    case Format::EmmcTrace:
        return "emmctrace";
    case Format::Blktrace:
        return "blktrace";
    case Format::Biosnoop:
        return "biosnoop";
    case Format::Alibaba:
        return "alibaba";
    case Format::Tencent:
        return "tencent";
    }
    return "?";
}

std::string
formatNames()
{
    return "emmctrace, blktrace, biosnoop, alibaba, tencent";
}

bool
ingestFile(Format format, const std::string &in_path,
           const IngestOptions &opts, Trace &out, IngestStats &stats,
           std::string &error)
{
    stats = IngestStats{};
    out = Trace{};

    std::vector<RawRecord> raw;
    std::string source_name; // passthrough keeps the input's name
    if (format == Format::EmmcTrace) {
        if (!loadEmmcTrace(in_path, raw, stats, source_name, error))
            return false;
    } else {
        if (!parseLines(parserFor(format), in_path, raw, stats, error))
            return false;
    }

    std::set<std::string> volumes;
    for (const RawRecord &r : raw)
        volumes.insert(r.volume);
    stats.volumesSeen = volumes.size();

    // Filter + align into normalized (still source-epoch) records.
    struct Pending
    {
        sim::Time ts;
        std::uint64_t offsetBytes;
        std::uint64_t lengthBytes;
        bool write;
    };
    std::vector<Pending> pend;
    pend.reserve(raw.size());
    for (const RawRecord &r : raw) {
        if (!opts.volume.empty() && r.volume != opts.volume) {
            ++stats.droppedVolume;
            continue;
        }
        // 4KB alignment: floor the start, ceil the end — the covering
        // extent, as the paper's page-aligned file systems issue it.
        const std::uint64_t begin =
            r.offsetBytes / sim::kUnitBytes * sim::kUnitBytes;
        const std::uint64_t end_raw = r.offsetBytes + r.lengthBytes;
        const std::uint64_t end =
            (end_raw + sim::kUnitBytes - 1) / sim::kUnitBytes *
            sim::kUnitBytes;
        if (end == begin) {
            ++stats.droppedZeroSize;
            continue;
        }
        if (begin != r.offsetBytes || end != end_raw)
            ++stats.aligned;
        pend.push_back(Pending{r.timestampNs, begin, end - begin,
                               r.write});
    }
    raw.clear();
    raw.shrink_to_fit();

    // Sort (stable, matching Trace::sortByArrival: ties keep input
    // order), then rebase the clock to ns-from-first-arrival.
    std::stable_sort(pend.begin(), pend.end(),
                     [](const Pending &a, const Pending &b) {
                         return a.ts < b.ts;
                     });
    const sim::Time epoch = pend.empty() ? 0 : pend.front().ts;

    out.setName(!opts.name.empty()
                    ? opts.name
                    : (!source_name.empty() ? source_name
                                            : baseName(in_path)));
    out.reserve(pend.size());
    for (const Pending &p : pend) {
        std::uint64_t addr_units = p.offsetBytes / sim::kUnitBytes;
        const std::uint64_t span_units = p.lengthBytes / sim::kUnitBytes;
        if (opts.targetUnits > 0) {
            if (span_units > opts.targetUnits) {
                // Folding cannot fit a request larger than the whole
                // device; dropping (counted) beats silent truncation.
                ++stats.droppedOversize;
                continue;
            }
            if (addr_units + span_units > opts.targetUnits) {
                // Same fold the replayer applies at replay time, so a
                // pre-remapped trace replays identically.
                addr_units =
                    addr_units % (opts.targetUnits - span_units + 1);
                ++stats.remapped;
            }
        }
        TraceRecord rec;
        rec.arrival = p.ts - epoch;
        rec.lbaSector = units::Lba{addr_units * sim::kSectorsPerUnit};
        rec.sizeBytes = units::Bytes{p.lengthBytes};
        rec.op = p.write ? OpType::Write : OpType::Read;
        if (p.write) {
            ++stats.writes;
            stats.writeBytes += p.lengthBytes;
        } else {
            ++stats.reads;
            stats.readBytes += p.lengthBytes;
        }
        stats.spanNs = rec.arrival;
        out.push(rec);
    }
    stats.kept = out.size();

    std::string problem = out.validate();
    if (!problem.empty()) {
        // Belt and braces: normalization above should make this
        // unreachable, but a validate() here turns any future importer
        // bug into a loud ingest failure instead of a bad replay.
        error = "normalized trace failed validation: " + problem;
        return false;
    }
    return true;
}

} // namespace emmcsim::trace::ingest
