/**
 * @file
 * Trace ingestion: import foreign block-trace formats and normalize
 * them into the simulator's canonical form (DESIGN.md §15).
 *
 * The pipeline is the same for every importer:
 *
 *   parse -> volume filter -> 4KB alignment -> sort by arrival
 *         -> timestamp rebase (ns from start) -> address remap
 *
 * Alignment floors the start offset and ceils the end offset to the
 * 4KB unit the paper's eMMC model operates in; zero-length records
 * are dropped. Remapping (optional, IngestOptions::targetUnits) folds
 * addresses into a target device's logical space with the same
 * modulo-of-legal-positions formula host/replayer uses at replay
 * time, so a pre-remapped trace replays identically to remap-at-
 * replay. Requests larger than the whole target are dropped and
 * counted, never silently truncated.
 *
 * Ingested records carry arrival timestamps only: replay timestamps
 * in the input (emmctrace passthrough) are stripped — they describe
 * the device the trace was captured on, not the one simulated next.
 */

#ifndef EMMCSIM_TRACE_INGEST_INGEST_HH
#define EMMCSIM_TRACE_INGEST_INGEST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"
#include "trace/trace.hh"

namespace emmcsim::trace::ingest {

/** Supported input formats. */
enum class Format
{
    EmmcTrace, ///< emmctrace v1 text (normalize / re-remap pass)
    Blktrace,  ///< blkparse default text output
    Biosnoop,  ///< bcc/bpftrace biosnoop text output
    Alibaba,   ///< Alibaba cloud block-trace CSV
    Tencent,   ///< Tencent CBS block-trace CSV
};

/** Parse a format name ("blktrace", ...). @return false if unknown. */
bool formatFromName(const std::string &name, Format &out);

/** Canonical lower-case name of @p f. */
const char *formatName(Format f);

/** All format names, comma-separated (for usage strings). */
std::string formatNames();

/** Ingestion knobs. */
struct IngestOptions
{
    /**
     * Keep only records of this volume / device id; empty keeps all.
     * Matched against "maj,min" (blktrace), DISK (biosnoop),
     * device_id (Alibaba), volume_id (Tencent).
     */
    std::string volume;
    /**
     * Remap addresses into a device exporting this many 4KB units;
     * 0 leaves addresses untouched (the replayer folds at replay).
     */
    std::uint64_t targetUnits = 0;
    /** Workload name for the output trace; empty derives a default. */
    std::string name;
};

/** Counters describing what one ingest run did. */
struct IngestStats
{
    std::uint64_t linesTotal = 0;      ///< lines read from the input
    std::uint64_t linesSkipped = 0;    ///< blank / comment / header
    std::uint64_t parsed = 0;          ///< records parsed successfully
    std::uint64_t kept = 0;            ///< records in the output trace
    std::uint64_t droppedVolume = 0;   ///< filtered by volume
    std::uint64_t droppedZeroSize = 0; ///< zero-length after parse
    std::uint64_t droppedOversize = 0; ///< larger than the target device
    std::uint64_t aligned = 0;         ///< records 4KB-alignment changed
    std::uint64_t remapped = 0;        ///< records address-folded
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t readBytes = 0;  ///< after alignment
    std::uint64_t writeBytes = 0; ///< after alignment
    sim::Time spanNs = 0;         ///< last arrival after rebase
    std::uint64_t volumesSeen = 0; ///< distinct volume ids in the input
};

/**
 * Ingest @p in_path as @p format into @p out.
 *
 * @return true on success; false sets @p error (with a line number
 *         where one applies) and leaves @p out unspecified.
 */
bool ingestFile(Format format, const std::string &in_path,
                const IngestOptions &opts, Trace &out, IngestStats &stats,
                std::string &error);

} // namespace emmcsim::trace::ingest

#endif // EMMCSIM_TRACE_INGEST_INGEST_HH
