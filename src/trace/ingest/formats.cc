#include "trace/ingest/formats.hh"

#include <cctype>
#include <limits>
#include <sstream>
#include <vector>

namespace emmcsim::trace::ingest {

namespace {

bool
parseU64(const std::string &tok, std::uint64_t &out)
{
    if (tok.empty())
        return false;
    std::uint64_t v = 0;
    for (char c : tok) {
        if (c < '0' || c > '9')
            return false;
        const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
        if (v > (std::numeric_limits<std::uint64_t>::max() - digit) / 10)
            return false; // overflow
        v = v * 10 + digit;
    }
    out = v;
    return true;
}

/** Split @p line on @p sep into trimmed fields. */
std::vector<std::string>
splitFields(const std::string &line, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= line.size()) {
        std::size_t end = line.find(sep, start);
        if (end == std::string::npos)
            end = line.size();
        std::size_t a = start;
        std::size_t b = end;
        while (a < b && std::isspace(static_cast<unsigned char>(line[a])))
            ++a;
        while (b > a &&
               std::isspace(static_cast<unsigned char>(line[b - 1])))
            --b;
        out.push_back(line.substr(a, b - a));
        if (end == line.size())
            break;
        start = end + 1;
    }
    return out;
}

/** Whitespace-tokenize @p line (any run of blanks separates). */
std::vector<std::string>
splitWhitespace(const std::string &line)
{
    std::vector<std::string> out;
    std::istringstream ss(line);
    std::string tok;
    while (ss >> tok)
        out.push_back(tok);
    return out;
}

bool
blankLine(const std::string &line)
{
    for (char c : line)
        if (!std::isspace(static_cast<unsigned char>(c)))
            return false;
    return true;
}

constexpr std::uint64_t kMaxSeconds = 9'000'000'000ull; // ~285 years

} // namespace

bool
parseSecondsToNs(const std::string &tok, sim::Time &out)
{
    const std::size_t dot = tok.find('.');
    const std::string whole =
        dot == std::string::npos ? tok : tok.substr(0, dot);
    std::uint64_t secs = 0;
    if (!parseU64(whole, secs) || secs > kMaxSeconds)
        return false;
    std::uint64_t frac_ns = 0;
    if (dot != std::string::npos) {
        std::string frac = tok.substr(dot + 1);
        if (frac.empty())
            return false;
        if (frac.size() > 9)
            frac.resize(9); // truncate below ns resolution
        while (frac.size() < 9)
            frac.push_back('0');
        if (!parseU64(frac, frac_ns))
            return false;
    }
    out = static_cast<sim::Time>(secs * 1'000'000'000ull + frac_ns);
    return true;
}

LineResult
parseBlktraceLine(const std::string &line, RawRecord &out,
                  std::string &error)
{
    if (blankLine(line))
        return LineResult::Skip;
    // blkparse appends summary sections ("CPU0 (sda):", "Total ...",
    // "Reads Queued:", ...) after the event stream; anything whose
    // first field is not a maj,min device number belongs to them.
    const std::vector<std::string> f = splitWhitespace(line);
    if (f.size() < 7 || f[0].find(',') == std::string::npos)
        return LineResult::Skip;
    const std::string &action = f[5];
    if (action != "Q")
        return LineResult::Skip; // C/D/I/M/...: not an arrival
    const std::string &rwbs = f[6];
    bool is_write = false;
    bool has_dir = false;
    for (char c : rwbs) {
        if (c == 'W') {
            is_write = true;
            has_dir = true;
        } else if (c == 'R') {
            has_dir = true;
        }
    }
    if (!has_dir)
        return LineResult::Skip; // barrier/flush-only record
    if (f.size() < 10 || f[8] != "+") {
        error = "blktrace Q event without 'sector + count'";
        return LineResult::Error;
    }
    sim::Time ts = 0;
    std::uint64_t start_sectors = 0;
    std::uint64_t count_sectors = 0;
    if (!parseSecondsToNs(f[3], ts)) {
        error = "bad blktrace timestamp: " + f[3];
        return LineResult::Error;
    }
    if (!parseU64(f[7], start_sectors) || !parseU64(f[9], count_sectors)) {
        error = "bad blktrace sector fields: " + f[7] + " + " + f[9];
        return LineResult::Error;
    }
    out.timestampNs = ts;
    out.offsetBytes = start_sectors * sim::kSectorBytes;
    out.lengthBytes = count_sectors * sim::kSectorBytes;
    out.write = is_write;
    out.volume = f[0];
    return LineResult::Record;
}

LineResult
parseBiosnoopLine(const std::string &line, RawRecord &out,
                  std::string &error)
{
    if (blankLine(line))
        return LineResult::Skip;
    const std::vector<std::string> f = splitWhitespace(line);
    if (!f.empty() && f[0] == "TIME(s)")
        return LineResult::Skip; // column header
    if (f.size() < 8) {
        error = "biosnoop line needs 8 columns "
                "(TIME COMM PID DISK T SECTOR BYTES LAT)";
        return LineResult::Error;
    }
    const std::string &dir = f[4];
    if (dir != "R" && dir != "W") {
        error = "bad biosnoop op (want R or W): " + dir;
        return LineResult::Error;
    }
    sim::Time ts = 0;
    std::uint64_t start_sectors = 0;
    std::uint64_t bytes = 0;
    if (!parseSecondsToNs(f[0], ts)) {
        error = "bad biosnoop timestamp: " + f[0];
        return LineResult::Error;
    }
    if (!parseU64(f[5], start_sectors) || !parseU64(f[6], bytes)) {
        error = "bad biosnoop sector/bytes fields: " + f[5] + " " + f[6];
        return LineResult::Error;
    }
    out.timestampNs = ts;
    out.offsetBytes = start_sectors * sim::kSectorBytes;
    out.lengthBytes = bytes;
    out.write = dir == "W";
    out.volume = f[3];
    return LineResult::Record;
}

LineResult
parseAlibabaLine(const std::string &line, RawRecord &out,
                 std::string &error)
{
    if (blankLine(line))
        return LineResult::Skip;
    const std::vector<std::string> f = splitFields(line, ',');
    if (!f.empty() && f[0] == "device_id")
        return LineResult::Skip; // column header
    if (f.size() < 5) {
        error = "alibaba line needs 5 CSV fields "
                "(device_id,opcode,offset,length,timestamp)";
        return LineResult::Error;
    }
    if (f[1] != "R" && f[1] != "W") {
        error = "bad alibaba opcode (want R or W): " + f[1];
        return LineResult::Error;
    }
    std::uint64_t off = 0;
    std::uint64_t len = 0;
    std::uint64_t ts_us = 0;
    if (!parseU64(f[2], off) || !parseU64(f[3], len) ||
        !parseU64(f[4], ts_us)) {
        error = "bad alibaba numeric fields: " + f[2] + "," + f[3] + "," +
                f[4];
        return LineResult::Error;
    }
    out.timestampNs = static_cast<sim::Time>(ts_us) * 1000;
    out.offsetBytes = off;
    out.lengthBytes = len;
    out.write = f[1] == "W";
    out.volume = f[0];
    return LineResult::Record;
}

LineResult
parseTencentLine(const std::string &line, RawRecord &out,
                 std::string &error)
{
    if (blankLine(line))
        return LineResult::Skip;
    const std::vector<std::string> f = splitFields(line, ',');
    if (!f.empty() && (f[0] == "timestamp" || f[0] == "Timestamp"))
        return LineResult::Skip; // column header
    if (f.size() < 5) {
        error = "tencent line needs 5 CSV fields "
                "(timestamp,offset,size,iotype,volume_id)";
        return LineResult::Error;
    }
    sim::Time ts = 0;
    std::uint64_t off_sectors = 0;
    std::uint64_t size_sectors = 0;
    if (!parseSecondsToNs(f[0], ts)) {
        error = "bad tencent timestamp: " + f[0];
        return LineResult::Error;
    }
    if (!parseU64(f[1], off_sectors) || !parseU64(f[2], size_sectors)) {
        error = "bad tencent offset/size fields: " + f[1] + "," + f[2];
        return LineResult::Error;
    }
    if (f[3] != "0" && f[3] != "1") {
        error = "bad tencent iotype (want 0=read or 1=write): " + f[3];
        return LineResult::Error;
    }
    out.timestampNs = ts;
    out.offsetBytes = off_sectors * sim::kSectorBytes;
    out.lengthBytes = size_sectors * sim::kSectorBytes;
    out.write = f[3] == "1";
    out.volume = f[4];
    return LineResult::Record;
}

} // namespace emmcsim::trace::ingest
