/**
 * @file
 * Per-format line parsers for trace ingestion (internal to
 * src/trace/ingest; the public entry point is ingest.hh).
 *
 * Each parser turns one input line into a RawRecord — the common
 * denominator of every supported trace format: a byte-addressed
 * extent, a direction, a nanosecond timestamp on the source's own
 * epoch, and the volume string the line belongs to. Normalization
 * (alignment, rebase, remapping) happens once, downstream, in
 * ingest.cc; parsers only extract and validate fields.
 */

#ifndef EMMCSIM_TRACE_INGEST_FORMATS_HH
#define EMMCSIM_TRACE_INGEST_FORMATS_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace emmcsim::trace::ingest {

/** One parsed input line, before normalization. */
struct RawRecord
{
    sim::Time timestampNs = 0;    ///< on the source's own epoch
    std::uint64_t offsetBytes = 0;
    std::uint64_t lengthBytes = 0;
    bool write = false;
    std::string volume;           ///< device / volume identifier
};

/** What a line parser decided about its line. */
enum class LineResult
{
    Record, ///< @p out is a parsed record
    Skip,   ///< header / non-data line; ignore silently
    Error,  ///< malformed; @p error explains
};

/**
 * Parse a decimal-seconds timestamp ("123.456789012") into integer
 * nanoseconds without a double round-trip (doubles lose ns precision
 * past ~104 days). Fractional digits beyond 9 are truncated.
 * @return false on malformed input.
 */
bool parseSecondsToNs(const std::string &tok, sim::Time &out);

/**
 * blkparse default text: `maj,min cpu seq ts pid action rwbs sector
 * + count [proc]` with sector/count in 512-byte sectors. Only queue
 * events (action Q) become records — they mark block-layer arrival,
 * the paper's step-1 timestamp; other actions are skipped.
 */
LineResult parseBlktraceLine(const std::string &line, RawRecord &out,
                             std::string &error);

/**
 * bcc biosnoop text: `TIME(s) COMM PID DISK T SECTOR BYTES LAT(ms)`
 * with SECTOR in 512-byte sectors. The column-header line is skipped.
 */
LineResult parseBiosnoopLine(const std::string &line, RawRecord &out,
                             std::string &error);

/**
 * Alibaba block-trace CSV: `device_id,opcode,offset,length,timestamp`
 * with offset/length in bytes, timestamp in microseconds, opcode
 * R or W.
 */
LineResult parseAlibabaLine(const std::string &line, RawRecord &out,
                            std::string &error);

/**
 * Tencent CBS CSV: `timestamp,offset,size,iotype,volume_id` with
 * timestamp in seconds, offset/size in 512-byte sectors, iotype
 * 0 = read / 1 = write.
 */
LineResult parseTencentLine(const std::string &line, RawRecord &out,
                            std::string &error);

} // namespace emmcsim::trace::ingest

#endif // EMMCSIM_TRACE_INGEST_FORMATS_HH
