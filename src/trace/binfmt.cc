#include "trace/binfmt.hh"

#include <cstring>
#include <utility>

#include "sim/logging.hh"
#include "trace/parse.hh"

namespace emmcsim::trace {

namespace {

/** Blocks are length-prefixed; refuse absurd prefixes from corrupt
 *  files before allocating for them. */
constexpr std::uint32_t kMaxBlockBody = 1u << 26;

/** Header field offsets (see binfmt.hh layout comment). */
constexpr std::size_t kOffVersion = 16;
constexpr std::size_t kOffFlags = 20;
constexpr std::size_t kOffRecordCount = 24;
constexpr std::size_t kOffChecksum = 32;
constexpr std::size_t kOffBlockRecords = 40;
constexpr std::size_t kOffNameLen = 44;

void
putU32(char *p, std::uint32_t v)
{
    std::memcpy(p, &v, sizeof v);
}

void
putU64(char *p, std::uint64_t v)
{
    std::memcpy(p, &v, sizeof v);
}

std::uint32_t
getU32(const char *p)
{
    std::uint32_t v = 0;
    std::memcpy(&v, p, sizeof v);
    return v;
}

std::uint64_t
getU64(const char *p)
{
    std::uint64_t v = 0;
    std::memcpy(&v, p, sizeof v);
    return v;
}

/** Validate the fixed 48-byte header; name is read by the caller. */
bool
parseFixedHeader(const char *hdr, BinTraceInfo &out,
                 std::uint32_t &nameLen, TraceLoadError &err)
{
    if (std::memcmp(hdr, kBinTraceMagic, kBinTraceMagicLen) != 0) {
        err.reason = "not an emmctrace-bin file (bad magic)";
        return false;
    }
    const std::uint32_t version = getU32(hdr + kOffVersion);
    if (version != 1) {
        err.reason = "unsupported emmctrace-bin version " +
                     std::to_string(version);
        return false;
    }
    const std::uint32_t flags = getU32(hdr + kOffFlags);
    out.hasReplayTimes = (flags & kBinTraceFlagReplayTimes) != 0;
    out.records = getU64(hdr + kOffRecordCount);
    out.checksum = getU64(hdr + kOffChecksum);
    out.blockRecords = getU32(hdr + kOffBlockRecords);
    nameLen = getU32(hdr + kOffNameLen);
    if (out.blockRecords == 0 || out.blockRecords > (1u << 20)) {
        err.reason = "corrupt emmctrace-bin header (block size " +
                     std::to_string(out.blockRecords) + ")";
        return false;
    }
    if (nameLen > 4096) {
        err.reason = "corrupt emmctrace-bin header (name length " +
                     std::to_string(nameLen) + ")";
        return false;
    }
    return true;
}

/** Parse + sanity-check the fixed header and name from @p is. */
bool
parseHeader(std::istream &is, BinTraceInfo &out, TraceLoadError &err)
{
    char hdr[kBinTraceHeaderBytes];
    is.read(hdr, sizeof hdr);
    if (is.gcount() != static_cast<std::streamsize>(sizeof hdr)) {
        err.reason = "not an emmctrace-bin file (header truncated)";
        return false;
    }
    std::uint32_t nameLen = 0;
    if (!parseFixedHeader(hdr, out, nameLen, err))
        return false;
    out.name.resize(nameLen);
    if (nameLen > 0) {
        is.read(out.name.data(), nameLen);
        if (is.gcount() != static_cast<std::streamsize>(nameLen)) {
            err.reason = "emmctrace-bin file truncated in the name";
            return false;
        }
    }
    return true;
}

/** Mapped-mode header parse; advances @p off past header + name. */
bool
parseHeaderView(std::string_view file, std::size_t &off,
                BinTraceInfo &out, TraceLoadError &err)
{
    if (file.size() - off < kBinTraceHeaderBytes) {
        err.reason = "not an emmctrace-bin file (header truncated)";
        return false;
    }
    std::uint32_t nameLen = 0;
    if (!parseFixedHeader(file.data() + off, out, nameLen, err))
        return false;
    off += kBinTraceHeaderBytes;
    if (file.size() - off < nameLen) {
        err.reason = "emmctrace-bin file truncated in the name";
        return false;
    }
    out.name.assign(file.data() + off, nameLen);
    off += nameLen;
    return true;
}

} // namespace

BinTraceWriter::BinTraceWriter(std::ostream &os, const std::string &name,
                               bool withReplayTimes)
    : os_(os), withReplayTimes_(withReplayTimes)
{
    char hdr[kBinTraceHeaderBytes];
    std::memset(hdr, 0, sizeof hdr);
    std::memcpy(hdr, kBinTraceMagic, kBinTraceMagicLen);
    putU32(hdr + kOffVersion, 1);
    putU32(hdr + kOffFlags,
           withReplayTimes_ ? kBinTraceFlagReplayTimes : 0u);
    // Record count and checksum stay zero until finish() patches them.
    putU32(hdr + kOffBlockRecords, kBinTraceBlockRecords);
    putU32(hdr + kOffNameLen,
           static_cast<std::uint32_t>(name.size()));
    os_.write(hdr, sizeof hdr);
    os_.write(name.data(),
              static_cast<std::streamsize>(name.size()));
    block_.reserve(kBinTraceBlockRecords);
}

void
BinTraceWriter::add(const TraceRecord &r)
{
    EMMCSIM_ASSERT(!finished_, "add() after finish()");
    EMMCSIM_ASSERT(r.arrival >= prevArrival_ || records_ == 0,
                   "binary trace records must arrive sorted");
    EMMCSIM_ASSERT(!withReplayTimes_ || r.replayed(),
                   "replay-time columns requested but record carries "
                   "no replay timestamps");
    block_.push_back(r);
    ++records_;
    if (block_.size() == kBinTraceBlockRecords)
        flushBlock();
}

void
BinTraceWriter::flushBlock()
{
    if (block_.empty())
        return;
    core::BinWriter body;
    for (const TraceRecord &r : block_) {
        body.vu64(static_cast<std::uint64_t>(r.arrival - prevArrival_));
        prevArrival_ = r.arrival;
    }
    for (const TraceRecord &r : block_) {
        const auto sector =
            static_cast<std::int64_t>(r.lbaSector.value());
        body.vi64(sector - prevLbaSector_);
        prevLbaSector_ = sector;
    }
    for (const TraceRecord &r : block_)
        body.vu64(units::bytesToUnitsCeil(r.sizeBytes));
    std::uint8_t acc = 0;
    for (std::size_t i = 0; i < block_.size(); ++i) {
        if (block_[i].isWrite())
            acc |= static_cast<std::uint8_t>(1u << (i % 8));
        if (i % 8 == 7) {
            body.u8(acc);
            acc = 0;
        }
    }
    if (block_.size() % 8 != 0)
        body.u8(acc);
    if (withReplayTimes_) {
        for (const TraceRecord &r : block_) {
            body.vu64(
                static_cast<std::uint64_t>(r.serviceStart - r.arrival));
        }
        for (const TraceRecord &r : block_) {
            body.vu64(
                static_cast<std::uint64_t>(r.finish - r.serviceStart));
        }
    }
    char prefix[8];
    putU32(prefix, static_cast<std::uint32_t>(block_.size()));
    putU32(prefix + 4, static_cast<std::uint32_t>(body.data().size()));
    os_.write(prefix, sizeof prefix);
    os_.write(body.data().data(),
              static_cast<std::streamsize>(body.data().size()));
    checksum_.update(prefix, sizeof prefix);
    checksum_.update(body.data());
    block_.clear();
}

bool
BinTraceWriter::finish()
{
    if (finished_)
        return os_.good();
    flushBlock();
    finished_ = true;
    char patch[16];
    putU64(patch, records_);
    putU64(patch + 8, checksum_.value());
    os_.seekp(static_cast<std::streamoff>(kOffRecordCount));
    os_.write(patch, sizeof patch);
    os_.seekp(0, std::ios_base::end);
    os_.flush();
    return os_.good();
}

void
saveBinTraceFile(const Trace &t, const std::string &path)
{
    bool allReplayed = !t.empty();
    for (const TraceRecord &r : t.records()) {
        if (!r.replayed()) {
            allReplayed = false;
            break;
        }
    }
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        sim::fatal("cannot open trace file for writing: " + path);
    BinTraceWriter w(os, t.name(), allReplayed);
    for (const TraceRecord &r : t.records())
        w.add(r);
    if (!w.finish())
        sim::fatal("error while writing trace file: " + path);
}

BinTraceSource::BinTraceSource(std::string path, Backing backing)
    : path_(std::move(path))
{
    if (backing != Backing::Streamed)
        map_ = core::MappedFile::open(path_);
    if (!map_.valid()) {
        if (backing == Backing::Mapped) {
            err_.line = 0;
            err_.reason = "cannot memory-map trace file: " + path_;
            return;
        }
        is_.open(path_, std::ios::binary);
        if (!is_) {
            err_.line = 0;
            err_.reason = "cannot open trace file: " + path_;
            return;
        }
    }
    openHeader();
}

void
BinTraceSource::openHeader()
{
    if (map_.valid()) {
        mapPos_ = 0;
        if (!parseHeaderView(map_.bytes(), mapPos_, info_, err_))
            return;
    } else if (!parseHeader(is_, info_, err_)) {
        return;
    }
    name_ = info_.name;
}

bool
BinTraceSource::loadBlock()
{
    if (!err_.ok() || eof_)
        return false;
    char prefix[8];
    std::string_view body;
    bool cleanEof = false;
    if (map_.valid()) {
        const std::string_view file = map_.bytes();
        if (mapPos_ == file.size()) {
            cleanEof = true;
        } else if (file.size() - mapPos_ < sizeof prefix) {
            err_.reason = "emmctrace-bin file truncated mid-block";
            return false;
        }
        if (!cleanEof)
            std::memcpy(prefix, file.data() + mapPos_, sizeof prefix);
    } else {
        is_.read(prefix, sizeof prefix);
        if (is_.gcount() == 0 && is_.eof()) {
            cleanEof = true;
        } else if (is_.gcount() !=
                   static_cast<std::streamsize>(sizeof prefix)) {
            err_.reason = "emmctrace-bin file truncated mid-block";
            return false;
        }
    }
    if (cleanEof) {
        // Clean end of file: now — and only now — the header's record
        // count and checksum can be verified.
        eof_ = true;
        if (produced_ != info_.records) {
            err_.reason =
                "record count mismatch: header declares " +
                std::to_string(info_.records) + " records, file has " +
                std::to_string(produced_) +
                " (truncated or corrupt trace?)";
        } else if (checksum_.value() != info_.checksum) {
            err_.reason = "emmctrace-bin checksum mismatch (corrupt "
                          "or incompletely written trace)";
        }
        return false;
    }
    const std::uint32_t n = getU32(prefix);
    const std::uint32_t bodyLen = getU32(prefix + 4);
    if (n == 0 || n > info_.blockRecords || bodyLen == 0 ||
        bodyLen > kMaxBlockBody) {
        err_.reason = "corrupt emmctrace-bin block header";
        return false;
    }
    if (map_.valid()) {
        // Decode straight out of the mapping — no buffer copy.
        const std::string_view file = map_.bytes();
        if (file.size() - mapPos_ - sizeof prefix < bodyLen) {
            err_.reason = "emmctrace-bin file truncated mid-block";
            return false;
        }
        body = file.substr(mapPos_ + sizeof prefix, bodyLen);
        mapPos_ += sizeof prefix + bodyLen;
    } else {
        blockBuf_.resize(bodyLen);
        is_.read(blockBuf_.data(), bodyLen);
        if (is_.gcount() != static_cast<std::streamsize>(bodyLen)) {
            err_.reason = "emmctrace-bin file truncated mid-block";
            return false;
        }
        body = blockBuf_;
    }
    checksum_.update(prefix, sizeof prefix);
    checksum_.update(body);
    return decodeBlockBody(body, n);
}

bool
BinTraceSource::decodeBlockBody(std::string_view body, std::uint32_t n)
{
    core::BinReader rd(body);
    decoded_.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        prevArrival_ += static_cast<sim::Time>(rd.vu64());
        decoded_[i] = TraceRecord{};
        decoded_[i].arrival = prevArrival_;
    }
    for (std::uint32_t i = 0; i < n; ++i) {
        prevLbaSector_ += rd.vi64();
        if (prevLbaSector_ < 0) {
            err_.reason = "corrupt emmctrace-bin block (negative lba)";
            return false;
        }
        decoded_[i].lbaSector = units::Lba{
            static_cast<std::uint64_t>(prevLbaSector_)};
    }
    for (std::uint32_t i = 0; i < n; ++i)
        decoded_[i].sizeBytes = units::unitsToBytes(rd.vu64());
    std::uint8_t acc = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
        if (i % 8 == 0)
            acc = rd.u8();
        decoded_[i].op =
            ((acc >> (i % 8)) & 1u) ? OpType::Write : OpType::Read;
    }
    if (info_.hasReplayTimes) {
        for (std::uint32_t i = 0; i < n; ++i) {
            decoded_[i].serviceStart =
                decoded_[i].arrival + static_cast<sim::Time>(rd.vu64());
        }
        for (std::uint32_t i = 0; i < n; ++i) {
            decoded_[i].finish = decoded_[i].serviceStart +
                                 static_cast<sim::Time>(rd.vu64());
        }
    }
    if (!rd.ok() || rd.remaining() != 0) {
        err_.reason = "corrupt emmctrace-bin block body";
        return false;
    }
    // Cheap per-record insurance: the checksum only fires at end of
    // stream, but a corrupt middle block must not feed the replayer
    // invariant-breaking records until then.
    for (std::uint32_t i = 0; i < n; ++i) {
        std::string reason = checkRecord(decoded_[i]);
        if (!reason.empty()) {
            err_.reason = "corrupt emmctrace-bin record " +
                          std::to_string(produced_ + i) + ": " + reason;
            return false;
        }
    }
    produced_ += n;
    pos_ = 0;
    return true;
}

std::size_t
BinTraceSource::next(TraceRecord *out, std::size_t max)
{
    std::size_t filled = 0;
    while (filled < max && !failed()) {
        if (pos_ == decoded_.size()) {
            if (!loadBlock())
                break;
        }
        while (filled < max && pos_ < decoded_.size())
            out[filled++] = decoded_[pos_++];
    }
    return filled;
}

void
BinTraceSource::reset()
{
    err_ = TraceLoadError{};
    name_.clear();
    info_ = BinTraceInfo{};
    decoded_.clear();
    pos_ = 0;
    produced_ = 0;
    prevArrival_ = 0;
    prevLbaSector_ = 0;
    checksum_.reset();
    eof_ = false;
    if (!map_.valid()) {
        is_.clear();
        is_.seekg(0);
        if (!is_) {
            is_.close();
            is_.open(path_, std::ios::binary);
            if (!is_) {
                err_.line = 0;
                err_.reason = "cannot reopen trace file: " + path_;
                return;
            }
        }
    }
    openHeader();
}

bool
BinTraceSource::isBinTraceFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    char magic[kBinTraceMagicLen];
    is.read(magic, sizeof magic);
    return is.gcount() == static_cast<std::streamsize>(sizeof magic) &&
           std::memcmp(magic, kBinTraceMagic, kBinTraceMagicLen) == 0;
}

bool
BinTraceSource::readInfo(const std::string &path, BinTraceInfo &out,
                         TraceLoadError &err)
{
    err = TraceLoadError{};
    out = BinTraceInfo{};
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        err.reason = "cannot open trace file: " + path;
        return false;
    }
    return parseHeader(is, out, err);
}

} // namespace emmcsim::trace
