/**
 * @file
 * emmctrace-bin v1: the compact binary columnar trace format.
 *
 * Layout (all integers little-endian; see DESIGN.md §15):
 *
 * @code
 * offset  size  field
 *      0    16  magic "emmctrace-bin v1"
 *     16     4  version (1)
 *     20     4  flags (bit 0: records carry replay timestamps)
 *     24     8  record count        (patched by finish())
 *     32     8  FNV-1a checksum of every block byte (patched)
 *     40     4  records per full block
 *     44     4  name length
 *     48     n  name bytes
 *   then      blocks until EOF:
 *              u32 record count in block, u32 body length, body
 * @endcode
 *
 * A block body is column-per-field, varint-coded (core/binio):
 * arrival deltas (vu64, chained across blocks — arrivals are sorted
 * so deltas are small), LBA sector deltas (vi64 zigzag, chained),
 * sizes in 4KB units (vu64), an op bitmap (bit set = write), and,
 * when flag bit 0 is set, per-record (serviceStart - arrival) and
 * (finish - serviceStart) vu64 columns.
 *
 * The fixed-offset header is mmap-friendly: record count, checksum
 * and name are readable without touching a block. The checksum and
 * count are patched into the header by finish(), so the writer needs
 * a seekable stream; the reader verifies both only once the last
 * block is consumed — truncation or bit rot fails the stream loudly
 * instead of silently shrinking a workload.
 */

#ifndef EMMCSIM_TRACE_BINFMT_HH
#define EMMCSIM_TRACE_BINFMT_HH

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "core/binio.hh"
#include "core/mmapfile.hh"
#include "trace/source.hh"
#include "trace/trace.hh"

namespace emmcsim::trace {

/** Magic bytes; exactly 16 chars, no terminator on disk. */
inline constexpr char kBinTraceMagic[] = "emmctrace-bin v1";
inline constexpr std::size_t kBinTraceMagicLen = 16;

/** Fixed header size before the name bytes. */
inline constexpr std::size_t kBinTraceHeaderBytes = 48;

/** Records per full block (the streaming chunk granularity). */
inline constexpr std::uint32_t kBinTraceBlockRecords = 4096;

/** Flag bit 0: records carry serviceStart/finish columns. */
inline constexpr std::uint32_t kBinTraceFlagReplayTimes = 1u << 0;

/** Parsed header of an emmctrace-bin v1 file (trace-info). */
struct BinTraceInfo
{
    std::string name;
    std::uint64_t records = 0;
    std::uint64_t checksum = 0;
    std::uint32_t blockRecords = 0;
    bool hasReplayTimes = false;
};

/**
 * Streaming writer. add() records in arrival order; finish() flushes
 * the tail block and patches count + checksum into the header.
 */
class BinTraceWriter
{
  public:
    /**
     * @param os   Seekable output stream positioned at offset 0.
     * @param name Workload label stored in the header.
     * @param withReplayTimes Emit serviceStart/finish columns.
     */
    BinTraceWriter(std::ostream &os, const std::string &name,
                   bool withReplayTimes);

    /** Append one record; arrivals must be non-decreasing. */
    void add(const TraceRecord &r);

    /** Flush and patch the header. @return false on stream failure. */
    bool finish();

    std::uint64_t records() const { return records_; }

  private:
    void flushBlock();

    std::ostream &os_;
    bool withReplayTimes_;
    bool finished_ = false;
    std::uint64_t records_ = 0;
    sim::Time prevArrival_ = 0;
    std::int64_t prevLbaSector_ = 0;
    std::vector<TraceRecord> block_;
    core::Fnv1a checksum_;
};

/**
 * One-call convenience: write @p t to @p path as emmctrace-bin v1.
 * Replay-timestamp columns are emitted iff every record carries them.
 * sim::fatal on I/O failure (mirrors Trace::saveFile).
 */
void saveBinTraceFile(const Trace &t, const std::string &path);

/**
 * TraceSource over an emmctrace-bin v1 file. Decodes one block at a
 * time into a reused buffer; the checksum and the header record count
 * are verified when the final block is consumed.
 *
 * Two backings share the decode path. Mapped mode (the default when
 * the platform supports it) mmaps the whole file and decodes block
 * bodies straight out of the page cache — no per-block read() or
 * buffer copy. Streamed mode reads blocks through an ifstream into a
 * reused buffer. Auto tries to map and silently falls back, so
 * mapping is a fast path, never a requirement.
 */
class BinTraceSource : public TraceSource
{
  public:
    /** Where block bytes come from; see class comment. */
    enum class Backing
    {
        Auto,     ///< mmap when possible, else stream
        Mapped,   ///< mmap only; error() if the file will not map
        Streamed, ///< always read through an ifstream
    };

    /** Open @p path; failure is reported via error(), not thrown. */
    explicit BinTraceSource(std::string path,
                            Backing backing = Backing::Auto);

    const std::string &name() const override { return name_; }
    std::size_t next(TraceRecord *out, std::size_t max) override;
    void reset() override;
    const TraceLoadError &error() const override { return err_; }

    /** Header info (valid once the constructor succeeded). */
    const BinTraceInfo &info() const { return info_; }

    /** Is the file served from a memory mapping (vs an ifstream)? */
    bool mapped() const { return map_.valid(); }

    /** Cheap probe: does @p path start with the v1 magic? */
    static bool isBinTraceFile(const std::string &path);

    /** Read just the header of @p path. @return false + err on failure. */
    static bool readInfo(const std::string &path, BinTraceInfo &out,
                         TraceLoadError &err);

  private:
    /** Parse + validate the fixed header; sets err_ on failure. */
    void openHeader();

    /** Decode the next block into decoded_; false on EOF or error. */
    bool loadBlock();

    /** Decode one block body (shared by both backings). */
    bool decodeBlockBody(std::string_view body, std::uint32_t n);

    std::string path_;
    std::ifstream is_;
    core::MappedFile map_;
    std::size_t mapPos_ = 0; ///< cursor into map_ (mapped mode)
    std::string name_;
    BinTraceInfo info_;
    std::vector<TraceRecord> decoded_; ///< reused per-block buffer
    std::size_t pos_ = 0;              ///< cursor into decoded_
    std::string blockBuf_;             ///< reused raw bytes (streamed)
    std::uint64_t produced_ = 0;
    sim::Time prevArrival_ = 0;
    std::int64_t prevLbaSector_ = 0;
    core::Fnv1a checksum_;
    bool eof_ = false;
    TraceLoadError err_;
};

} // namespace emmcsim::trace

#endif // EMMCSIM_TRACE_BINFMT_HH
