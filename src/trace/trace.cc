#include "trace/trace.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"
#include "trace/parse.hh"

namespace emmcsim::trace {

void
Trace::push(const TraceRecord &r)
{
    if (!records_.empty() && r.arrival < records_.back().arrival)
        sim::panic("trace records must be pushed in arrival order");
    records_.push_back(r);
}

sim::Time
Trace::duration() const
{
    if (records_.empty())
        return 0;
    sim::Time end = records_.back().arrival;
    for (const auto &r : records_) {
        if (r.finish != sim::kTimeNever)
            end = std::max(end, r.finish);
    }
    return end;
}

units::Bytes
Trace::totalBytes() const
{
    units::Bytes n{0};
    for (const auto &r : records_)
        n += r.sizeBytes;
    return n;
}

units::Bytes
Trace::writtenBytes() const
{
    units::Bytes n{0};
    for (const auto &r : records_)
        if (r.isWrite())
            n += r.sizeBytes;
    return n;
}

std::uint64_t
Trace::writeCount() const
{
    std::uint64_t n = 0;
    for (const auto &r : records_)
        if (r.isWrite())
            ++n;
    return n;
}

units::Bytes
Trace::maxRequestBytes() const
{
    units::Bytes n{0};
    for (const auto &r : records_)
        n = std::max(n, r.sizeBytes);
    return n;
}

std::string
Trace::validate() const
{
    for (std::size_t i = 0; i < records_.size(); ++i) {
        const auto &r = records_[i];
        if (r.arrival < 0)
            return "record " + std::to_string(i) + ": negative arrival";
        if (i > 0 && r.arrival < records_[i - 1].arrival)
            return "record " + std::to_string(i) + ": arrival not sorted";
        if (r.sizeBytes.value() == 0)
            return "record " + std::to_string(i) + ": zero size";
        if (!units::isUnitAligned(r.sizeBytes)) {
            return "record " + std::to_string(i) +
                   ": size not 4KB-aligned";
        }
        if (!units::isUnitAligned(r.lbaSector)) {
            return "record " + std::to_string(i) +
                   ": lba not 4KB-aligned";
        }
        if (r.replayed() &&
            (r.serviceStart < r.arrival || r.finish < r.serviceStart)) {
            return "record " + std::to_string(i) +
                   ": timestamps out of order";
        }
    }
    return "";
}

void
Trace::sortByArrival()
{
    std::stable_sort(records_.begin(), records_.end(),
                     [](const TraceRecord &a, const TraceRecord &b) {
                         return a.arrival < b.arrival;
                     });
}

void
Trace::save(std::ostream &os) const
{
    os << "# emmctrace v1\n";
    os << "# name: " << name_ << "\n";
    os << "# records: " << records_.size() << "\n";
    for (const auto &r : records_) {
        os << r.arrival << ' ' << r.lbaSector << ' ' << r.sizeBytes << ' '
           << (r.isWrite() ? 'W' : 'R');
        if (r.replayed())
            os << ' ' << r.serviceStart << ' ' << r.finish;
        os << '\n';
    }
}

void
Trace::saveFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        sim::fatal("cannot open trace file for writing: " + path);
    save(os);
    if (!os)
        sim::fatal("error while writing trace file: " + path);
}

std::string
TraceLoadError::message() const
{
    if (reason.empty())
        return "";
    if (line == 0)
        return reason;
    return "line " + std::to_string(line) + ": " + reason;
}

bool
Trace::tryLoad(std::istream &is, Trace &out, TraceLoadError &err)
{
    err = TraceLoadError{};
    Trace t;
    std::string line;
    std::size_t lineno = 0;
    bool have_count = false;
    std::uint64_t declared = 0;
    while (std::getline(is, line)) {
        ++lineno;
        stripCr(line);
        if (line.empty())
            continue;
        if (line[0] == '#') {
            const std::string name_key = "# name: ";
            const std::string count_key = "# records: ";
            if (line.rfind(name_key, 0) == 0) {
                t.setName(line.substr(name_key.size()));
            } else if (line.rfind(count_key, 0) == 0) {
                std::istringstream ss(line.substr(count_key.size()));
                if (ss >> declared)
                    have_count = true;
            }
            continue;
        }
        TraceRecord r;
        std::string reason = parseRecordLine(line, r);
        if (!reason.empty()) {
            err.line = lineno;
            err.reason = std::move(reason);
            return false;
        }
        t.records_.push_back(r);
    }
    // getline stops on either EOF or an I/O error; only the former is
    // a complete trace. A read error mid-file must not silently pass
    // for a shorter workload.
    if (is.bad()) {
        err.line = lineno;
        err.reason = "I/O error while reading trace";
        return false;
    }
    if (have_count && declared != t.records_.size()) {
        err.line = 0;
        err.reason = "record count mismatch: header declares " +
                     std::to_string(declared) + " records, file has " +
                     std::to_string(t.records_.size()) +
                     " (truncated or corrupt trace?)";
        return false;
    }
    t.sortByArrival();
    out = std::move(t);
    return true;
}

bool
Trace::tryLoadFile(const std::string &path, Trace &out,
                   TraceLoadError &err)
{
    std::ifstream is(path);
    if (!is) {
        err.line = 0;
        err.reason = "cannot open trace file: " + path;
        return false;
    }
    return tryLoad(is, out, err);
}

Trace
Trace::load(std::istream &is)
{
    Trace t;
    TraceLoadError err;
    if (!tryLoad(is, t, err))
        sim::fatal("trace load failed: " + err.message());
    return t;
}

Trace
Trace::loadFile(const std::string &path)
{
    Trace t;
    TraceLoadError err;
    if (!tryLoadFile(path, t, err))
        sim::fatal("trace load failed: " + err.message());
    return t;
}

} // namespace emmcsim::trace
