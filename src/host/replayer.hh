/**
 * @file
 * Replayer: open-loop trace replay onto a simulated eMMC device.
 *
 * Arrivals are scheduled at their trace timestamps regardless of how
 * the device keeps up (open loop) — the same methodology the paper
 * uses when replaying its traces on SSDsim. The replayer plays the
 * role of BIOtracer in reverse: it stamps each completed request with
 * the step-2 (service start) and step-3 (finish) times the device
 * reports.
 */

#ifndef EMMCSIM_HOST_REPLAYER_HH
#define EMMCSIM_HOST_REPLAYER_HH

#include "emmc/device.hh"
#include "sim/simulator.hh"
#include "trace/trace.hh"

namespace emmcsim::host {

/** Replay options. */
struct ReplayOptions
{
    /**
     * Fold request addresses into the device's logical space (traces
     * can address a larger region than one device exports).
     */
    bool wrapAddresses = true;
};

/** Drives one device with one trace. */
class Replayer
{
  public:
    /**
     * @param simulator The event loop (shared with the device).
     * @param device    Target device; its completion callback is taken
     *        over for the duration of the replay.
     */
    Replayer(sim::Simulator &simulator, emmc::EmmcDevice &device);

    /**
     * Replay @p input to completion.
     *
     * @return A copy of @p input whose records carry the measured
     *         serviceStart / finish timestamps.
     */
    trace::Trace replay(const trace::Trace &input,
                        const ReplayOptions &opts = {});

  private:
    sim::Simulator &sim_;
    emmc::EmmcDevice &device_;
};

} // namespace emmcsim::host

#endif // EMMCSIM_HOST_REPLAYER_HH
