/**
 * @file
 * Replayer: open-loop trace replay onto a simulated eMMC device.
 *
 * Arrivals are scheduled at their trace timestamps regardless of how
 * the device keeps up (open loop) — the same methodology the paper
 * uses when replaying its traces on SSDsim. The replayer plays the
 * role of BIOtracer in reverse: it stamps each completed request with
 * the step-2 (service start) and step-3 (finish) times the device
 * reports.
 *
 * Two robustness extensions ride on the same loop (DESIGN.md §13):
 *
 *  - **Sudden power-off.** ReplayOptions::spo schedules power cuts at
 *    pre-drawn ticks. A cut cancels the in-flight command, drops the
 *    device queue, and discards the RAM buffer; the replayer parks
 *    every swallowed request plus any arrival landing during the
 *    outage, and re-issues them in submission order once the device
 *    powers back up through FTL recovery.
 *
 *  - **Snapshot / resume.** ReplayOptions::snapshotAt captures the
 *    full mutable simulation state into a binary image at the first
 *    quiescent point (device idle, queue empty, no pending retries)
 *    at or after the requested tick. resume() reconstructs the run in
 *    a fresh simulator/device pair and continues it; the completed
 *    replay is byte-identical to the uninterrupted one.
 */

#ifndef EMMCSIM_HOST_REPLAYER_HH
#define EMMCSIM_HOST_REPLAYER_HH

#include <string>
#include <vector>

#include "emmc/device.hh"
#include "fault/spo.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "trace/source.hh"
#include "trace/trace.hh"

namespace emmcsim::host {

/** Replay options. */
struct ReplayOptions
{
    /**
     * Fold request addresses into the device's logical space (traces
     * can address a larger region than one device exports).
     */
    bool wrapAddresses = true;
    /**
     * Bounded retry on device-reported errors (uncorrectable reads,
     * rejected writes), mirroring the block layer's requeue policy.
     * 0 disables resubmission.
     */
    std::uint32_t maxRetries = 3;
    /** First retry delay; doubles per attempt (exponential backoff). */
    sim::Time retryBackoff = sim::milliseconds(1);

    /**
     * Sudden-power-off schedule; empty ticks disable injection.
     * Mutually exclusive with snapshotAt (a cut while capturing would
     * make the image ill-defined).
     */
    fault::SpoConfig spo;

    /**
     * Capture a snapshot at the first quiescent point at or after
     * this simulated time; negative disables. The image is available
     * from snapshotImage() after replay() returns, and the replay
     * itself continues to completion unperturbed.
     */
    sim::Time snapshotAt = -1;
};

/** Host-side error-recovery counters for one replay. */
struct ReplayStats
{
    /** Completions that reported an error (any attempt). */
    std::uint64_t errorCompletions = 0;
    /** Resubmissions scheduled by the retry policy. */
    std::uint64_t retriesScheduled = 0;
    /** Requests that succeeded on a retry attempt. */
    std::uint64_t recoveredRequests = 0;
    /** Requests still failing after the retry budget. */
    std::uint64_t failedRequests = 0;
    /** Extra latency requests accrued across their retry attempts. */
    sim::Time retryPenalty = 0;

    /** @name Sudden-power-off (all zero unless SPO is scheduled). @{ */
    /** Power cuts executed. */
    std::uint64_t spoEvents = 0;
    /** Cuts skipped because they landed inside an ongoing outage. */
    std::uint64_t spoSkipped = 0;
    /** Dropped or deferred requests re-issued after power-up. */
    std::uint64_t reissuedRequests = 0;
    /** Submissions parked because the device was off. */
    std::uint64_t deferredSubmissions = 0;
    /** Total simulated power-up recovery time. */
    sim::Time recoveryTime = 0;
    /** @} */
};

/**
 * Aggregate measurements of one streaming replay. replayStream()
 * cannot hand back a timestamp-filled Trace — materializing one would
 * defeat the point of streaming — so it folds every completion into
 * bounded accumulators instead: Welford means plus a fixed-bucket
 * histogram (percentileEstimate for tails), never per-record storage.
 */
struct StreamReplayResult
{
    /** Latency-histogram bucket bounds, in ms (mirrors src/obs). */
    static std::vector<double> latencyBoundsMs();

    std::uint64_t requests = 0;
    std::uint64_t writeRequests = 0;
    units::Bytes readBytes{0};
    units::Bytes writeBytes{0};
    sim::Time firstArrival = -1;
    sim::Time lastArrival = 0;
    sim::Time lastFinish = 0;
    /** Response time (finish - original arrival), ms. */
    sim::OnlineStats responseMs;
    /** Service time of the final attempt, ms. */
    sim::OnlineStats serviceMs;
    /** Response-time distribution for tail estimates, ms. */
    sim::Histogram responseHistMs{latencyBoundsMs()};
};

/** Drives one device with one trace. */
class Replayer
{
  public:
    /**
     * @param simulator The event loop (shared with the device).
     * @param device    Target device; its completion callback is taken
     *        over for the duration of the replay.
     */
    Replayer(sim::Simulator &simulator, emmc::EmmcDevice &device);

    /**
     * Replay @p input to completion.
     *
     * @return A copy of @p input whose records carry the measured
     *         serviceStart / finish timestamps.
     */
    trace::Trace replay(const trace::Trace &input,
                        const ReplayOptions &opts = {});

    /**
     * Continue a replay of @p input from a snapshot @p image captured
     * by an earlier replay() with snapshotAt set. The simulator and
     * device must be freshly constructed with the configuration of
     * the capturing run (mismatched geometry fails the image load;
     * other config divergence is the caller's responsibility).
     * opts.spo and opts.snapshotAt must be unset.
     */
    trace::Trace resume(const trace::Trace &input,
                        const std::string &image,
                        const ReplayOptions &opts = {});

    /**
     * Replay a streaming source to completion without materializing
     * the trace: arrivals are scheduled one chunk at a time (the
     * chunk's last submit event pulls the next chunk in), so memory
     * holds one chunk plus the in-flight window regardless of trace
     * length. Byte-identical device behaviour to replay() on the same
     * records — both paths schedule arrivals in the front sequence
     * band, so every same-tick tie resolves the same way.
     *
     * SPO injection and snapshotting need the in-memory path and are
     * rejected (sim::fatal), as is a source that fails mid-stream.
     */
    StreamReplayResult replayStream(trace::TraceSource &src,
                                    const ReplayOptions &opts = {});

    /** Error/retry counters of the most recent replay() call. */
    const ReplayStats &stats() const { return stats_; }

    /** @return true once the requested snapshot was captured. */
    bool snapshotTaken() const { return snapshotDone_; }

    /** The captured image (empty until snapshotTaken()). */
    const std::string &snapshotImage() const { return snapshotImage_; }

  private:
    /** Shared body of replay() and resume(). */
    trace::Trace run(const trace::Trace &input,
                     const ReplayOptions &opts,
                     const std::string *image);

    /** Submit @p req now, or park it while the device is off. */
    void submitNow(const emmc::IoRequest &req);

    /** Power-cut event body (one per scheduled SPO tick). */
    void spoCut();

    /** Power-restore event body; re-issues parked requests. */
    void spoPowerUp();

    /** Post-event hook body: capture once quiescent past snapshotAt_. */
    void maybeCapture(const trace::Trace &out);

    /** @name Streaming-replay machinery (see replayStream). @{ */

    /** Records pulled from the source per refill. */
    static constexpr std::size_t kStreamChunk = 4096;

    /** Per-request retry bookkeeping, addressed id mod ring size. */
    struct StreamRetry
    {
        std::uint64_t id = 0;
        sim::Time arrival = 0;     ///< original trace arrival
        sim::Time firstFinish = -1;
        std::uint32_t attempts = 0;
        bool active = false;
    };

    /** Pull + schedule the next chunk of arrivals from streamSrc_. */
    void scheduleNextChunk();

    /** Ring slot for an in-flight id (asserts it is tracked). */
    StreamRetry &streamEntryFor(std::uint64_t id);

    /** Track a newly scheduled id; grows the ring if its slot is busy. */
    void streamInsert(std::uint64_t id, sim::Time arrival);

    /** Double the ring until every active id keeps a distinct slot. */
    void streamGrowRing(std::uint64_t id);

    /** Fold a finally-completed request into streamResult_. */
    void streamFinish(StreamRetry &rs, const emmc::CompletedRequest &c);

    trace::TraceSource *streamSrc_ = nullptr;
    StreamReplayResult *streamResult_ = nullptr;
    std::vector<trace::TraceRecord> streamChunk_;
    std::vector<StreamRetry> streamRing_;
    std::uint64_t streamNextId_ = 0;
    std::uint64_t streamChunkLastId_ = 0;
    std::uint64_t streamLogicalUnits_ = 0;
    bool streamWrap_ = true;
    /** @} */

    sim::Simulator &sim_;
    emmc::EmmcDevice &device_;
    ReplayStats stats_;

    /** @name Per-replay orchestration state (reset by run()). @{ */
    std::vector<emmc::IoRequest> parked_; ///< awaiting power-up re-issue
    bool spoNotify_ = false;
    sim::Time spoPowerOnDelay_ = 0;
    std::uint64_t pendingRetries_ = 0; ///< scheduled, not yet re-submitted
    std::uint64_t nextArrival_ = 0;    ///< trace records submitted so far
    sim::Time snapshotAt_ = -1;
    bool snapshotDone_ = false;
    std::string snapshotImage_;
    /** @} */
};

} // namespace emmcsim::host

#endif // EMMCSIM_HOST_REPLAYER_HH
