/**
 * @file
 * Replayer: open-loop trace replay onto a simulated eMMC device.
 *
 * Arrivals are scheduled at their trace timestamps regardless of how
 * the device keeps up (open loop) — the same methodology the paper
 * uses when replaying its traces on SSDsim. The replayer plays the
 * role of BIOtracer in reverse: it stamps each completed request with
 * the step-2 (service start) and step-3 (finish) times the device
 * reports.
 *
 * Two robustness extensions ride on the same loop (DESIGN.md §13):
 *
 *  - **Sudden power-off.** ReplayOptions::spo schedules power cuts at
 *    pre-drawn ticks. A cut cancels the in-flight command, drops the
 *    device queue, and discards the RAM buffer; the replayer parks
 *    every swallowed request plus any arrival landing during the
 *    outage, and re-issues them in submission order once the device
 *    powers back up through FTL recovery.
 *
 *  - **Snapshot / resume.** ReplayOptions::snapshotAt captures the
 *    full mutable simulation state into a binary image at the first
 *    quiescent point (device idle, queue empty, no pending retries)
 *    at or after the requested tick. resume() reconstructs the run in
 *    a fresh simulator/device pair and continues it; the completed
 *    replay is byte-identical to the uninterrupted one.
 */

#ifndef EMMCSIM_HOST_REPLAYER_HH
#define EMMCSIM_HOST_REPLAYER_HH

#include <string>
#include <vector>

#include "emmc/device.hh"
#include "fault/spo.hh"
#include "sim/simulator.hh"
#include "trace/trace.hh"

namespace emmcsim::host {

/** Replay options. */
struct ReplayOptions
{
    /**
     * Fold request addresses into the device's logical space (traces
     * can address a larger region than one device exports).
     */
    bool wrapAddresses = true;
    /**
     * Bounded retry on device-reported errors (uncorrectable reads,
     * rejected writes), mirroring the block layer's requeue policy.
     * 0 disables resubmission.
     */
    std::uint32_t maxRetries = 3;
    /** First retry delay; doubles per attempt (exponential backoff). */
    sim::Time retryBackoff = sim::milliseconds(1);

    /**
     * Sudden-power-off schedule; empty ticks disable injection.
     * Mutually exclusive with snapshotAt (a cut while capturing would
     * make the image ill-defined).
     */
    fault::SpoConfig spo;

    /**
     * Capture a snapshot at the first quiescent point at or after
     * this simulated time; negative disables. The image is available
     * from snapshotImage() after replay() returns, and the replay
     * itself continues to completion unperturbed.
     */
    sim::Time snapshotAt = -1;
};

/** Host-side error-recovery counters for one replay. */
struct ReplayStats
{
    /** Completions that reported an error (any attempt). */
    std::uint64_t errorCompletions = 0;
    /** Resubmissions scheduled by the retry policy. */
    std::uint64_t retriesScheduled = 0;
    /** Requests that succeeded on a retry attempt. */
    std::uint64_t recoveredRequests = 0;
    /** Requests still failing after the retry budget. */
    std::uint64_t failedRequests = 0;
    /** Extra latency requests accrued across their retry attempts. */
    sim::Time retryPenalty = 0;

    /** @name Sudden-power-off (all zero unless SPO is scheduled). @{ */
    /** Power cuts executed. */
    std::uint64_t spoEvents = 0;
    /** Cuts skipped because they landed inside an ongoing outage. */
    std::uint64_t spoSkipped = 0;
    /** Dropped or deferred requests re-issued after power-up. */
    std::uint64_t reissuedRequests = 0;
    /** Submissions parked because the device was off. */
    std::uint64_t deferredSubmissions = 0;
    /** Total simulated power-up recovery time. */
    sim::Time recoveryTime = 0;
    /** @} */
};

/** Drives one device with one trace. */
class Replayer
{
  public:
    /**
     * @param simulator The event loop (shared with the device).
     * @param device    Target device; its completion callback is taken
     *        over for the duration of the replay.
     */
    Replayer(sim::Simulator &simulator, emmc::EmmcDevice &device);

    /**
     * Replay @p input to completion.
     *
     * @return A copy of @p input whose records carry the measured
     *         serviceStart / finish timestamps.
     */
    trace::Trace replay(const trace::Trace &input,
                        const ReplayOptions &opts = {});

    /**
     * Continue a replay of @p input from a snapshot @p image captured
     * by an earlier replay() with snapshotAt set. The simulator and
     * device must be freshly constructed with the configuration of
     * the capturing run (mismatched geometry fails the image load;
     * other config divergence is the caller's responsibility).
     * opts.spo and opts.snapshotAt must be unset.
     */
    trace::Trace resume(const trace::Trace &input,
                        const std::string &image,
                        const ReplayOptions &opts = {});

    /** Error/retry counters of the most recent replay() call. */
    const ReplayStats &stats() const { return stats_; }

    /** @return true once the requested snapshot was captured. */
    bool snapshotTaken() const { return snapshotDone_; }

    /** The captured image (empty until snapshotTaken()). */
    const std::string &snapshotImage() const { return snapshotImage_; }

  private:
    /** Shared body of replay() and resume(). */
    trace::Trace run(const trace::Trace &input,
                     const ReplayOptions &opts,
                     const std::string *image);

    /** Submit @p req now, or park it while the device is off. */
    void submitNow(const emmc::IoRequest &req);

    /** Power-cut event body (one per scheduled SPO tick). */
    void spoCut();

    /** Power-restore event body; re-issues parked requests. */
    void spoPowerUp();

    /** Post-event hook body: capture once quiescent past snapshotAt_. */
    void maybeCapture(const trace::Trace &out);

    sim::Simulator &sim_;
    emmc::EmmcDevice &device_;
    ReplayStats stats_;

    /** @name Per-replay orchestration state (reset by run()). @{ */
    std::vector<emmc::IoRequest> parked_; ///< awaiting power-up re-issue
    bool spoNotify_ = false;
    sim::Time spoPowerOnDelay_ = 0;
    std::uint64_t pendingRetries_ = 0; ///< scheduled, not yet re-submitted
    std::uint64_t nextArrival_ = 0;    ///< trace records submitted so far
    sim::Time snapshotAt_ = -1;
    bool snapshotDone_ = false;
    std::string snapshotImage_;
    /** @} */
};

} // namespace emmcsim::host

#endif // EMMCSIM_HOST_REPLAYER_HH
