/**
 * @file
 * Replayer: open-loop trace replay onto a simulated eMMC device.
 *
 * Arrivals are scheduled at their trace timestamps regardless of how
 * the device keeps up (open loop) — the same methodology the paper
 * uses when replaying its traces on SSDsim. The replayer plays the
 * role of BIOtracer in reverse: it stamps each completed request with
 * the step-2 (service start) and step-3 (finish) times the device
 * reports.
 */

#ifndef EMMCSIM_HOST_REPLAYER_HH
#define EMMCSIM_HOST_REPLAYER_HH

#include "emmc/device.hh"
#include "sim/simulator.hh"
#include "trace/trace.hh"

namespace emmcsim::host {

/** Replay options. */
struct ReplayOptions
{
    /**
     * Fold request addresses into the device's logical space (traces
     * can address a larger region than one device exports).
     */
    bool wrapAddresses = true;
    /**
     * Bounded retry on device-reported errors (uncorrectable reads,
     * rejected writes), mirroring the block layer's requeue policy.
     * 0 disables resubmission.
     */
    std::uint32_t maxRetries = 3;
    /** First retry delay; doubles per attempt (exponential backoff). */
    sim::Time retryBackoff = sim::milliseconds(1);
};

/** Host-side error-recovery counters for one replay. */
struct ReplayStats
{
    /** Completions that reported an error (any attempt). */
    std::uint64_t errorCompletions = 0;
    /** Resubmissions scheduled by the retry policy. */
    std::uint64_t retriesScheduled = 0;
    /** Requests that succeeded on a retry attempt. */
    std::uint64_t recoveredRequests = 0;
    /** Requests still failing after the retry budget. */
    std::uint64_t failedRequests = 0;
    /** Extra latency requests accrued across their retry attempts. */
    sim::Time retryPenalty = 0;
};

/** Drives one device with one trace. */
class Replayer
{
  public:
    /**
     * @param simulator The event loop (shared with the device).
     * @param device    Target device; its completion callback is taken
     *        over for the duration of the replay.
     */
    Replayer(sim::Simulator &simulator, emmc::EmmcDevice &device);

    /**
     * Replay @p input to completion.
     *
     * @return A copy of @p input whose records carry the measured
     *         serviceStart / finish timestamps.
     */
    trace::Trace replay(const trace::Trace &input,
                        const ReplayOptions &opts = {});

    /** Error/retry counters of the most recent replay() call. */
    const ReplayStats &stats() const { return stats_; }

  private:
    sim::Simulator &sim_;
    emmc::EmmcDevice &device_;
    ReplayStats stats_;
};

} // namespace emmcsim::host

#endif // EMMCSIM_HOST_REPLAYER_HH
