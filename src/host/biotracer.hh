/**
 * @file
 * BIOtracer overhead emulation (Section II-B / II-C of the paper).
 *
 * The paper's kernel tracer keeps a 32KB record buffer (~300 request
 * records) and, whenever it fills, flushes it to a log file on the
 * same eMMC device — which costs "5-7 extra I/O operations
 * (synchronously opening, appending, and closing the log file)", about
 * 2% of the traced traffic.
 *
 * instrumentTrace() reproduces that self-interference: it injects the
 * flush writes into a trace so a replay measures the workload *as the
 * tracer would have perturbed it*; the overhead bench verifies the
 * paper's ~2% figure on our device model.
 */

#ifndef EMMCSIM_HOST_BIOTRACER_HH
#define EMMCSIM_HOST_BIOTRACER_HH

#include <cstdint>

#include "trace/trace.hh"

namespace emmcsim::host {

/** BIOtracer instrumentation parameters (Section II defaults). */
struct BioTracerConfig
{
    /** I/O record buffer size. */
    std::uint64_t bufferBytes = 32 * sim::kKiB;
    /** Bytes of one request record (32KB holds ~300 records). */
    std::uint64_t bytesPerRecord = 109;
    /** Extra I/O operations per buffer flush (paper: 5-7, avg 6). */
    std::uint32_t flushOps = 6;
    /** Size of each flush operation in bytes (4KB metadata/appends). */
    std::uint64_t flushOpBytes = sim::kib(4);
    /** First 4KB unit of the log-file region on the device. */
    std::int64_t logRegionUnit = 1 << 20;
};

/** Counters describing one instrumentation pass. */
struct BioTracerStats
{
    std::uint64_t tracedRequests = 0;
    std::uint64_t bufferFlushes = 0;
    std::uint64_t injectedOps = 0;

    /** Injected ops as a fraction of traced requests (paper: ~2%). */
    double
    overheadRatio() const
    {
        return tracedRequests
                   ? static_cast<double>(injectedOps) /
                         static_cast<double>(tracedRequests)
                   : 0.0;
    }
};

/**
 * Return a copy of @p input with the tracer's log-flush writes
 * injected: after every bufferBytes / bytesPerRecord requests,
 * flushOps sequential 4KB writes to the log region arrive at the
 * same timestamp as the request that filled the buffer.
 *
 * @param stats_out Optional; receives the instrumentation counters.
 */
trace::Trace instrumentTrace(const trace::Trace &input,
                             const BioTracerConfig &cfg = {},
                             BioTracerStats *stats_out = nullptr);

} // namespace emmcsim::host

#endif // EMMCSIM_HOST_BIOTRACER_HH
