#include "host/biotracer.hh"

#include "sim/logging.hh"

namespace emmcsim::host {

trace::Trace
instrumentTrace(const trace::Trace &input, const BioTracerConfig &cfg,
                BioTracerStats *stats_out)
{
    EMMCSIM_ASSERT(cfg.bytesPerRecord > 0, "record size must be > 0");
    const std::uint64_t records_per_flush =
        std::max<std::uint64_t>(1, cfg.bufferBytes / cfg.bytesPerRecord);

    BioTracerStats stats;
    trace::Trace out(input.name());
    std::uint64_t buffered = 0;
    std::int64_t log_unit = cfg.logRegionUnit;
    const std::uint64_t flush_units =
        cfg.flushOpBytes / sim::kUnitBytes;

    for (const auto &r : input.records()) {
        out.push(r);
        ++stats.tracedRequests;
        if (++buffered < records_per_flush)
            continue;

        // Buffer full: the tracer appends it to the log file, which
        // costs a handful of synchronous writes right now.
        buffered = 0;
        ++stats.bufferFlushes;
        for (std::uint32_t i = 0; i < cfg.flushOps; ++i) {
            trace::TraceRecord flush;
            flush.arrival = r.arrival;
            flush.lbaSector = units::unitToLba(units::UnitAddr{log_unit});
            flush.sizeBytes = units::Bytes{cfg.flushOpBytes};
            flush.op = trace::OpType::Write;
            out.push(flush);
            log_unit += static_cast<std::int64_t>(flush_units);
            ++stats.injectedOps;
        }
    }
    if (stats_out != nullptr)
        *stats_out = stats;
    return out;
}

} // namespace emmcsim::host
