#include "host/replayer.hh"

#include <algorithm>
#include <vector>

#include "sim/logging.hh"

namespace emmcsim::host {

Replayer::Replayer(sim::Simulator &simulator, emmc::EmmcDevice &device)
    : sim_(simulator), device_(device)
{
}

trace::Trace
Replayer::replay(const trace::Trace &input, const ReplayOptions &opts)
{
    // Validate before scheduling anything: a malformed trace (arrivals
    // out of order, zero-sized or misaligned requests) would fail deep
    // inside the device with a far less actionable message.
    std::string problem = input.validate();
    if (!problem.empty())
        sim::fatal("replay: invalid input trace: " + problem);

    trace::Trace out = input;
    stats_ = ReplayStats{};

    const std::uint64_t logical_units = device_.ftl().logicalUnits();

    // Per-request retry bookkeeping: attempts used so far and the
    // finish time of the first attempt (to price the retry penalty).
    // One container, sized to the full in-flight population up front,
    // so nothing reallocates mid-run.
    struct RetryState
    {
        std::uint32_t attempts = 0;
        sim::Time firstFinish = -1;
    };
    std::vector<RetryState> inflight(input.size());

    device_.setCompletionCallback(
        [this, &out, &opts,
         &inflight](const emmc::CompletedRequest &c) {
            const std::uint64_t id = c.request.id;
            trace::TraceRecord &r = out[id];
            r.serviceStart = c.serviceStart;
            r.finish = c.finish;
            RetryState &rs = inflight[id];
            if (rs.firstFinish < 0)
                rs.firstFinish = c.finish;

            if (c.ok()) {
                if (rs.attempts > 0) {
                    ++stats_.recoveredRequests;
                    stats_.retryPenalty += c.finish - rs.firstFinish;
                }
                return;
            }

            ++stats_.errorCompletions;
            if (rs.attempts >= opts.maxRetries) {
                ++stats_.failedRequests;
                stats_.retryPenalty += c.finish - rs.firstFinish;
                EMMCSIM_LOG_DEBUG(
                    "replay", "request " + std::to_string(id) +
                                  " failed permanently after " +
                                  std::to_string(rs.attempts) +
                                  " retry attempt(s)");
                return;
            }

            // Resubmit with exponential backoff, like the block
            // layer requeueing a failed bio.
            const std::uint32_t shift = std::min(rs.attempts, 20u);
            const sim::Time delay = opts.retryBackoff << shift;
            ++rs.attempts;
            ++stats_.retriesScheduled;
            emmc::IoRequest retry = c.request;
            retry.arrival = c.finish + delay;
            EMMCSIM_LOG_DEBUG(
                "replay", "request " + std::to_string(id) +
                              " errored; retry " +
                              std::to_string(rs.attempts) + "/" +
                              std::to_string(opts.maxRetries) + " at " +
                              std::to_string(retry.arrival) + " ns");
            // Retry closure: {this, IoRequest} = 48 bytes — exactly
            // the event arena's inline budget. If IoRequest grows,
            // this assert fires before the hot path regresses to
            // heap-allocating events.
            auto resubmit = [this, retry] { device_.submit(retry); };
            static_assert(sim::InlineAction::fits<decltype(resubmit)>(),
                          "retry capture must stay inline");
            sim_.schedule(retry.arrival, std::move(resubmit));
        });

    for (std::size_t i = 0; i < input.size(); ++i) {
        const trace::TraceRecord &r = input[i];

        emmc::IoRequest req;
        req.id = i;
        req.arrival = r.arrival;
        req.sizeBytes = r.sizeBytes;
        req.write = r.isWrite();
        req.lbaSector = r.lbaSector;

        const std::uint64_t units = req.sizeUnits();
        std::uint64_t unit = static_cast<std::uint64_t>(
            units::lbaToUnitFloor(req.lbaSector).value());
        if (unit + units > logical_units) {
            if (!opts.wrapAddresses) {
                sim::fatal("trace addresses device beyond its logical "
                           "capacity; enable wrapAddresses");
            }
            unit = unit % (logical_units - units + 1);
        }
        req.lbaSector = units::unitToLba(
            units::UnitAddr{static_cast<std::int64_t>(unit)});

        auto submit = [this, req] { device_.submit(req); };
        static_assert(sim::InlineAction::fits<decltype(submit)>(),
                      "submit capture must stay inline");
        sim_.schedule(r.arrival, std::move(submit));
    }

    sim_.run();
    device_.setCompletionCallback(nullptr);

    for (const auto &r : out.records()) {
        EMMCSIM_ASSERT(r.replayed(),
                       "replay finished with incomplete requests");
        EMMCSIM_DCHECK(r.arrival <= r.serviceStart &&
                           r.serviceStart <= r.finish,
                       "replayed record has inverted BIOtracer "
                       "timestamps");
    }
    return out;
}

} // namespace emmcsim::host
