#include "host/replayer.hh"

#include <algorithm>
#include <vector>

#include "sim/logging.hh"

namespace emmcsim::host {

Replayer::Replayer(sim::Simulator &simulator, emmc::EmmcDevice &device)
    : sim_(simulator), device_(device)
{
}

trace::Trace
Replayer::replay(const trace::Trace &input, const ReplayOptions &opts)
{
    // Validate before scheduling anything: a malformed trace (arrivals
    // out of order, zero-sized or misaligned requests) would fail deep
    // inside the device with a far less actionable message.
    std::string problem = input.validate();
    if (!problem.empty())
        sim::fatal("replay: invalid input trace: " + problem);

    trace::Trace out = input;
    stats_ = ReplayStats{};

    const std::uint64_t logical_units = device_.ftl().logicalUnits();

    // Per-request retry bookkeeping: attempts used so far and the
    // finish time of the first attempt (to price the retry penalty).
    std::vector<std::uint32_t> attempts(input.size(), 0);
    std::vector<sim::Time> firstFinish(input.size(), -1);

    device_.setCompletionCallback(
        [this, &out, &opts, &attempts,
         &firstFinish](const emmc::CompletedRequest &c) {
            const std::uint64_t id = c.request.id;
            trace::TraceRecord &r = out[id];
            r.serviceStart = c.serviceStart;
            r.finish = c.finish;
            if (firstFinish[id] < 0)
                firstFinish[id] = c.finish;

            if (c.ok()) {
                if (attempts[id] > 0) {
                    ++stats_.recoveredRequests;
                    stats_.retryPenalty += c.finish - firstFinish[id];
                }
                return;
            }

            ++stats_.errorCompletions;
            if (attempts[id] >= opts.maxRetries) {
                ++stats_.failedRequests;
                stats_.retryPenalty += c.finish - firstFinish[id];
                EMMCSIM_LOG_DEBUG(
                    "replay", "request " + std::to_string(id) +
                                  " failed permanently after " +
                                  std::to_string(attempts[id]) +
                                  " retry attempt(s)");
                return;
            }

            // Resubmit with exponential backoff, like the block
            // layer requeueing a failed bio.
            const std::uint32_t shift = std::min(attempts[id], 20u);
            const sim::Time delay = opts.retryBackoff << shift;
            ++attempts[id];
            ++stats_.retriesScheduled;
            emmc::IoRequest retry = c.request;
            retry.arrival = c.finish + delay;
            EMMCSIM_LOG_DEBUG(
                "replay", "request " + std::to_string(id) +
                              " errored; retry " +
                              std::to_string(attempts[id]) + "/" +
                              std::to_string(opts.maxRetries) + " at " +
                              std::to_string(retry.arrival) + " ns");
            sim_.schedule(retry.arrival,
                          [this, retry] { device_.submit(retry); });
        });

    for (std::size_t i = 0; i < input.size(); ++i) {
        const trace::TraceRecord &r = input[i];

        emmc::IoRequest req;
        req.id = i;
        req.arrival = r.arrival;
        req.sizeBytes = r.sizeBytes;
        req.write = r.isWrite();
        req.lbaSector = r.lbaSector;

        const std::uint64_t units = req.sizeUnits();
        std::uint64_t unit =
            req.lbaSector / sim::kSectorsPerUnit;
        if (unit + units > logical_units) {
            if (!opts.wrapAddresses) {
                sim::fatal("trace addresses device beyond its logical "
                           "capacity; enable wrapAddresses");
            }
            unit = unit % (logical_units - units + 1);
        }
        req.lbaSector = unit * sim::kSectorsPerUnit;

        sim_.schedule(r.arrival,
                      [this, req] { device_.submit(req); });
    }

    sim_.run();
    device_.setCompletionCallback(nullptr);

    for (const auto &r : out.records()) {
        EMMCSIM_ASSERT(r.replayed(),
                       "replay finished with incomplete requests");
        EMMCSIM_DCHECK(r.arrival <= r.serviceStart &&
                           r.serviceStart <= r.finish,
                       "replayed record has inverted BIOtracer "
                       "timestamps");
    }
    return out;
}

} // namespace emmcsim::host
