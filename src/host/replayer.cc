#include "host/replayer.hh"

#include <algorithm>
#include <vector>

#include "core/binio.hh"
#include "sim/logging.hh"

namespace emmcsim::host {

namespace {

/** Snapshot-image identification (bumped on any layout change). */
const char kSnapshotMagic[] = "emmcsim-snap";
constexpr std::uint32_t kSnapshotVersion = 1;

/**
 * Fold a request's address into the device's logical space (traces
 * can address a larger region than one device exports). Shared by the
 * in-memory and streaming paths so their remapping cannot diverge —
 * byte-identity between them depends on it.
 */
void
foldAddress(emmc::IoRequest &req, std::uint64_t logical_units,
            bool wrap, std::uint64_t record_index)
{
    const std::uint64_t units = req.sizeUnits();
    std::uint64_t unit = static_cast<std::uint64_t>(
        units::lbaToUnitFloor(req.lbaSector).value());
    if (units > logical_units) {
        // Wrapping cannot help: the request alone is larger than
        // the device. Without this check the fold below would
        // underflow its unsigned modulus.
        sim::fatal("trace record " + std::to_string(record_index) +
                   " spans " + std::to_string(units) +
                   " units but the device only exports " +
                   std::to_string(logical_units) +
                   "; use a larger device or a scaled-down trace");
    }
    if (unit + units > logical_units) {
        if (!wrap) {
            sim::fatal("trace addresses device beyond its logical "
                       "capacity; enable wrapAddresses");
        }
        unit = unit % (logical_units - units + 1);
    }
    req.lbaSector = units::unitToLba(
        units::UnitAddr{static_cast<std::int64_t>(unit)});
}

} // namespace

std::vector<double>
StreamReplayResult::latencyBoundsMs()
{
    return {0.05, 0.1, 0.2,  0.5,  1.0,   2.0,   5.0,   10.0,
            20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0};
}

Replayer::Replayer(sim::Simulator &simulator, emmc::EmmcDevice &device)
    : sim_(simulator), device_(device)
{
}

trace::Trace
Replayer::replay(const trace::Trace &input, const ReplayOptions &opts)
{
    return run(input, opts, nullptr);
}

trace::Trace
Replayer::resume(const trace::Trace &input, const std::string &image,
                 const ReplayOptions &opts)
{
    if (!opts.spo.ticks.empty() || opts.snapshotAt >= 0)
        sim::fatal("resume: SPO injection and re-snapshotting are not "
                   "supported on a resumed replay");
    return run(input, opts, &image);
}

void
Replayer::submitNow(const emmc::IoRequest &req)
{
    if (device_.poweredOff()) {
        // The host sees a dead device: hold the request and re-issue
        // it when power returns.
        ++stats_.deferredSubmissions;
        parked_.push_back(req);
        return;
    }
    emmc::IoRequest r = req;
    r.arrival = sim_.now(); // re-issues arrive when submitted
    device_.submit(r);
}

void
Replayer::spoCut()
{
    if (device_.poweredOff()) {
        ++stats_.spoSkipped; // cut landed inside an ongoing outage
        return;
    }
    const sim::Time now = sim_.now();
    if (spoNotify_)
        device_.powerOffNotify(now);
    device_.powerFail(now, parked_);
    ++stats_.spoEvents;
    sim_.schedule(now + spoPowerOnDelay_, [this] { spoPowerUp(); });
}

void
Replayer::spoPowerUp()
{
    const ftl::RecoveryReport rep = device_.powerOn(sim_.now());
    stats_.recoveryTime += rep.totalTime;
    // Re-issue everything the outage swallowed — dropped in-flight and
    // queued requests plus arrivals parked mid-outage — in submission
    // order, like the block layer requeueing its outstanding bios.
    std::vector<emmc::IoRequest> again;
    again.swap(parked_);
    std::sort(again.begin(), again.end(),
              [](const emmc::IoRequest &a, const emmc::IoRequest &b) {
                  return a.id < b.id;
              });
    for (const emmc::IoRequest &r : again) {
        ++stats_.reissuedRequests;
        submitNow(r);
    }
}

void
Replayer::maybeCapture(const trace::Trace &out)
{
    if (snapshotDone_ || sim_.now() < snapshotAt_)
        return;
    // Quiescent point: nothing in flight anywhere — device idle with
    // an empty queue, no retry resubmission scheduled, nothing parked.
    // Pending arrivals and idle-GC ticks are fine; both are re-armed
    // from the image on resume.
    if (device_.busy() || device_.queueDepth() > 0 ||
        device_.poweredOff() || pendingRetries_ > 0 || !parked_.empty())
        return;

    core::BinWriter w;
    w.str(kSnapshotMagic);
    w.u32(kSnapshotVersion);
    w.i64(sim_.now());
    w.u64(nextArrival_);
    w.u64(out.size());
    for (const trace::TraceRecord &r : out.records()) {
        w.i64(r.serviceStart);
        w.i64(r.finish);
    }
    w.pod(stats_);
    device_.save(w);
    snapshotImage_ = w.take();
    snapshotDone_ = true;
    EMMCSIM_LOG_DEBUG(
        "replay", "snapshot captured at " + std::to_string(sim_.now()) +
                      " ns (" + std::to_string(snapshotImage_.size()) +
                      " bytes, " + std::to_string(nextArrival_) +
                      " arrivals in)");
}

trace::Trace
Replayer::run(const trace::Trace &input, const ReplayOptions &opts,
              const std::string *image)
{
    // Validate before scheduling anything: a malformed trace (arrivals
    // out of order, zero-sized or misaligned requests) would fail deep
    // inside the device with a far less actionable message.
    std::string problem = input.validate();
    if (!problem.empty())
        sim::fatal("replay: invalid input trace: " + problem);
    if (!opts.spo.ticks.empty() && opts.snapshotAt >= 0)
        sim::fatal("replay: SPO injection and snapshotting are "
                   "mutually exclusive in one replay");
    if (!std::is_sorted(opts.spo.ticks.begin(), opts.spo.ticks.end()))
        sim::fatal("replay: SPO ticks must be sorted ascending");

    trace::Trace out = input;
    stats_ = ReplayStats{};
    parked_.clear();
    spoNotify_ = opts.spo.notify;
    spoPowerOnDelay_ = opts.spo.powerOnDelay;
    pendingRetries_ = 0;
    nextArrival_ = 0;
    snapshotAt_ = opts.snapshotAt;
    snapshotDone_ = false;
    snapshotImage_.clear();

    const std::uint64_t logical_units = device_.ftl().logicalUnits();

    // Per-request retry bookkeeping: attempts used so far and the
    // finish time of the first attempt (to price the retry penalty).
    // One container, sized to the full in-flight population up front,
    // so nothing reallocates mid-run. A resumed replay starts from
    // defaults: the capture point had no retry in flight, and records
    // completed before it are never resubmitted.
    struct RetryState
    {
        std::uint32_t attempts = 0;
        sim::Time firstFinish = -1;
    };
    std::vector<RetryState> inflight(input.size());

    // Restore the captured clock and bookkeeping before scheduling
    // anything; the device state itself loads after the arrivals so
    // re-armed idle-GC ticks sort behind same-tick arrivals, exactly
    // as in the capturing run (arrivals were all scheduled up front
    // there and so carry smaller sequence numbers).
    core::BinReader reader(image ? std::string_view(*image)
                                 : std::string_view());
    if (image) {
        if (sim_.pending() || sim_.now() != 0)
            sim::fatal("resume: needs a fresh simulator");
        if (reader.str() != kSnapshotMagic ||
            reader.u32() != kSnapshotVersion)
            sim::fatal("resume: not a snapshot image (or wrong "
                       "version)");
        const sim::Time capture_time = reader.i64();
        nextArrival_ = reader.u64();
        if (reader.u64() != out.size())
            sim::fatal("resume: snapshot was captured for a different "
                       "trace");
        for (trace::TraceRecord &r : out.records()) {
            r.serviceStart = reader.i64();
            r.finish = reader.i64();
        }
        reader.pod(stats_);
        if (!reader.ok() || nextArrival_ > out.size())
            sim::fatal("resume: truncated snapshot image");
        sim_.restoreClock(capture_time);

        // Re-feed the completions the capturing run already delivered
        // through the device trace hook, so observer-side accumulators
        // (the latency histograms) converge to the uninterrupted run's
        // values. The capture point is quiescent: every record before
        // nextArrival_ has final timestamps.
        if (device_.traceHook()) {
            for (std::uint64_t i = 0; i < nextArrival_; ++i) {
                const trace::TraceRecord &r = out[i];
                emmc::CompletedRequest c;
                c.request.id = i;
                c.request.arrival = r.arrival;
                c.request.lbaSector = r.lbaSector;
                c.request.sizeBytes = r.sizeBytes;
                c.request.write = r.isWrite();
                c.serviceStart = r.serviceStart;
                c.finish = r.finish;
                c.waited = r.serviceStart > r.arrival;
                device_.traceHook()(c);
            }
        }
    }

    device_.setCompletionCallback(
        [this, &out, &opts,
         &inflight](const emmc::CompletedRequest &c) {
            const std::uint64_t id = c.request.id;
            trace::TraceRecord &r = out[id];
            r.serviceStart = c.serviceStart;
            r.finish = c.finish;
            RetryState &rs = inflight[id];
            if (rs.firstFinish < 0)
                rs.firstFinish = c.finish;

            if (c.ok()) {
                if (rs.attempts > 0) {
                    ++stats_.recoveredRequests;
                    stats_.retryPenalty += c.finish - rs.firstFinish;
                }
                return;
            }

            ++stats_.errorCompletions;
            if (rs.attempts >= opts.maxRetries) {
                ++stats_.failedRequests;
                stats_.retryPenalty += c.finish - rs.firstFinish;
                EMMCSIM_LOG_DEBUG(
                    "replay", "request " + std::to_string(id) +
                                  " failed permanently after " +
                                  std::to_string(rs.attempts) +
                                  " retry attempt(s)");
                return;
            }

            // Resubmit with exponential backoff, like the block
            // layer requeueing a failed bio.
            const std::uint32_t shift = std::min(rs.attempts, 20u);
            const sim::Time delay = opts.retryBackoff << shift;
            ++rs.attempts;
            ++stats_.retriesScheduled;
            ++pendingRetries_;
            emmc::IoRequest retry = c.request;
            retry.arrival = c.finish + delay;
            EMMCSIM_LOG_DEBUG(
                "replay", "request " + std::to_string(id) +
                              " errored; retry " +
                              std::to_string(rs.attempts) + "/" +
                              std::to_string(opts.maxRetries) + " at " +
                              std::to_string(retry.arrival) + " ns");
            // Retry closure: {this, IoRequest} = 48 bytes — exactly
            // the event arena's inline budget. If IoRequest grows,
            // this assert fires before the hot path regresses to
            // heap-allocating events.
            auto resubmit = [this, retry] {
                --pendingRetries_;
                submitNow(retry);
            };
            static_assert(sim::InlineAction::fits<decltype(resubmit)>(),
                          "retry capture must stay inline");
            sim_.schedule(retry.arrival, std::move(resubmit));
        });

    for (std::size_t i = nextArrival_; i < input.size(); ++i) {
        const trace::TraceRecord &r = input[i];

        emmc::IoRequest req;
        req.id = i;
        req.arrival = r.arrival;
        req.sizeBytes = r.sizeBytes;
        req.write = r.isWrite();
        req.lbaSector = r.lbaSector;

        foldAddress(req, logical_units, opts.wrapAddresses, i);

        auto submit = [this, req] {
            ++nextArrival_;
            submitNow(req);
        };
        static_assert(sim::InlineAction::fits<decltype(submit)>(),
                      "submit capture must stay inline");
        // Front band: arrivals win every same-tick tie against
        // completions / GC ticks, matching the streaming path (which
        // schedules arrivals mid-run and would otherwise lose them).
        sim_.scheduleFront(r.arrival, std::move(submit));
    }

    if (image) {
        device_.load(reader);
        if (!reader.ok() || reader.remaining() != 0)
            sim::fatal("resume: corrupt snapshot image");
    }

    for (sim::Time tick : opts.spo.ticks) {
        EMMCSIM_ASSERT(tick > 0, "SPO tick must be positive");
        sim_.schedule(tick, [this] { spoCut(); });
    }

    sim::Simulator::HookId hook = 0;
    if (snapshotAt_ >= 0) {
        hook = sim_.addPostEventHook(
            [this, &out](const sim::Simulator &) { maybeCapture(out); });
    }

    sim_.run();
    device_.setCompletionCallback(nullptr);
    if (snapshotAt_ >= 0) {
        sim_.removePostEventHook(hook);
        if (!snapshotDone_)
            sim::fatal("replay: no quiescent point reached at or after "
                       "the requested snapshot tick");
    }

    for (const auto &r : out.records()) {
        EMMCSIM_ASSERT(r.replayed(),
                       "replay finished with incomplete requests");
        EMMCSIM_DCHECK(r.arrival <= r.serviceStart &&
                           r.serviceStart <= r.finish,
                       "replayed record has inverted BIOtracer "
                       "timestamps");
    }
    return out;
}

StreamReplayResult
Replayer::replayStream(trace::TraceSource &src, const ReplayOptions &opts)
{
    if (!opts.spo.ticks.empty() || opts.snapshotAt >= 0)
        sim::fatal("stream replay: SPO injection and snapshotting need "
                   "the in-memory path");
    if (src.failed())
        sim::fatal("stream replay: source failed before the first "
                   "record: " + src.error().message());

    stats_ = ReplayStats{};
    parked_.clear();
    spoNotify_ = false;
    spoPowerOnDelay_ = 0;
    pendingRetries_ = 0;
    nextArrival_ = 0;
    snapshotAt_ = -1;
    snapshotDone_ = false;
    snapshotImage_.clear();

    StreamReplayResult result;
    streamSrc_ = &src;
    streamResult_ = &result;
    streamChunk_.resize(kStreamChunk);
    streamNextId_ = 0;
    streamChunkLastId_ = 0;
    // Sized for a deep in-flight window up front; streamGrowRing()
    // handles deeper ones, so this is a latency hint, not a limit.
    streamRing_.assign(2 * kStreamChunk, StreamRetry{});
    streamLogicalUnits_ = device_.ftl().logicalUnits();
    streamWrap_ = opts.wrapAddresses;

    device_.setCompletionCallback(
        [this, &opts](const emmc::CompletedRequest &c) {
            StreamRetry &rs = streamEntryFor(c.request.id);
            if (rs.firstFinish < 0)
                rs.firstFinish = c.finish;

            if (c.ok()) {
                if (rs.attempts > 0) {
                    ++stats_.recoveredRequests;
                    stats_.retryPenalty += c.finish - rs.firstFinish;
                }
                streamFinish(rs, c);
                return;
            }

            ++stats_.errorCompletions;
            if (rs.attempts >= opts.maxRetries) {
                ++stats_.failedRequests;
                stats_.retryPenalty += c.finish - rs.firstFinish;
                streamFinish(rs, c);
                return;
            }

            // Same resubmission policy as the in-memory path — the
            // two must stay byte-identical per record sequence.
            const std::uint32_t shift = std::min(rs.attempts, 20u);
            const sim::Time delay = opts.retryBackoff << shift;
            ++rs.attempts;
            ++stats_.retriesScheduled;
            ++pendingRetries_;
            emmc::IoRequest retry = c.request;
            retry.arrival = c.finish + delay;
            auto resubmit = [this, retry] {
                --pendingRetries_;
                submitNow(retry);
            };
            static_assert(sim::InlineAction::fits<decltype(resubmit)>(),
                          "retry capture must stay inline");
            sim_.schedule(retry.arrival, std::move(resubmit));
        });

    scheduleNextChunk();
    sim_.run();
    device_.setCompletionCallback(nullptr);

    if (streamSrc_->failed())
        sim::fatal("stream replay: source failed mid-stream: " +
                   streamSrc_->error().message());
    for (const StreamRetry &e : streamRing_)
        EMMCSIM_ASSERT(!e.active,
                       "stream replay finished with incomplete requests");
    EMMCSIM_ASSERT(result.requests == streamNextId_,
                   "stream replay lost completions");
    streamSrc_ = nullptr;
    streamResult_ = nullptr;
    return result;
}

void
Replayer::scheduleNextChunk()
{
    const std::size_t n =
        streamSrc_->next(streamChunk_.data(), kStreamChunk);
    if (n == 0) {
        if (streamSrc_->failed())
            sim::fatal("stream replay: source failed mid-stream: " +
                       streamSrc_->error().message());
        return; // clean EOF: the run drains what is already scheduled
    }
    streamChunkLastId_ = streamNextId_ + n - 1;
    for (std::size_t i = 0; i < n; ++i) {
        const trace::TraceRecord &r = streamChunk_[i];

        emmc::IoRequest req;
        req.id = streamNextId_++;
        req.arrival = r.arrival;
        req.sizeBytes = r.sizeBytes;
        req.write = r.isWrite();
        req.lbaSector = r.lbaSector;

        foldAddress(req, streamLogicalUnits_, streamWrap_, req.id);
        streamInsert(req.id, r.arrival);

        // The chunk's last arrival pulls the next chunk in: refills
        // piggyback on an arrival event already being scheduled, so
        // the event count (and thus simulator bookkeeping) matches the
        // in-memory path exactly. Comparing against the member instead
        // of capturing a flag keeps the closure at the 48-byte inline
        // budget ({this, IoRequest}); it is correct because front-band
        // events pop in schedule order, so the last arrival of chunk k
        // always runs before any arrival of chunk k+1 exists.
        auto submit = [this, req] {
            ++nextArrival_;
            submitNow(req);
            if (req.id == streamChunkLastId_)
                scheduleNextChunk();
        };
        static_assert(sim::InlineAction::fits<decltype(submit)>(),
                      "stream submit capture must stay inline");
        sim_.scheduleFront(r.arrival, std::move(submit));
    }
}

Replayer::StreamRetry &
Replayer::streamEntryFor(std::uint64_t id)
{
    StreamRetry &e = streamRing_[id & (streamRing_.size() - 1)];
    EMMCSIM_ASSERT(e.active && e.id == id,
                   "stream retry ring lost a request");
    return e;
}

void
Replayer::streamInsert(std::uint64_t id, sim::Time arrival)
{
    if (streamRing_[id & (streamRing_.size() - 1)].active)
        streamGrowRing(id);
    StreamRetry &e = streamRing_[id & (streamRing_.size() - 1)];
    e.id = id;
    e.arrival = arrival;
    e.firstFinish = -1;
    e.attempts = 0;
    e.active = true;
}

void
Replayer::streamGrowRing(std::uint64_t id)
{
    // Ids are assigned consecutively, so the live set fits in
    // [lo, id]. Any power-of-two size covering that span gives every
    // live id a distinct residue — the rehash below cannot collide.
    std::uint64_t lo = id;
    for (const StreamRetry &e : streamRing_)
        if (e.active)
            lo = std::min(lo, e.id);
    std::size_t need = streamRing_.size();
    while (need < id - lo + 2 || need < 2 * streamRing_.size())
        need *= 2;
    std::vector<StreamRetry> bigger(need);
    for (const StreamRetry &e : streamRing_) {
        if (!e.active)
            continue;
        StreamRetry &slot = bigger[e.id & (need - 1)];
        EMMCSIM_ASSERT(!slot.active, "stream ring rehash collision");
        slot = e;
    }
    streamRing_.swap(bigger);
}

void
Replayer::streamFinish(StreamRetry &rs, const emmc::CompletedRequest &c)
{
    StreamReplayResult &res = *streamResult_;
    ++res.requests;
    if (c.request.write) {
        ++res.writeRequests;
        res.writeBytes += c.request.sizeBytes;
    } else {
        res.readBytes += c.request.sizeBytes;
    }
    if (res.firstArrival < 0)
        res.firstArrival = rs.arrival;
    res.lastArrival = std::max(res.lastArrival, rs.arrival);
    res.lastFinish = std::max(res.lastFinish, c.finish);
    const double resp_ms = sim::toMilliseconds(c.finish - rs.arrival);
    res.responseMs.add(resp_ms);
    res.responseHistMs.add(resp_ms);
    res.serviceMs.add(sim::toMilliseconds(c.finish - c.serviceStart));
    rs.active = false;
}

} // namespace emmcsim::host
