#include "host/replayer.hh"

#include "sim/logging.hh"

namespace emmcsim::host {

Replayer::Replayer(sim::Simulator &simulator, emmc::EmmcDevice &device)
    : sim_(simulator), device_(device)
{
}

trace::Trace
Replayer::replay(const trace::Trace &input, const ReplayOptions &opts)
{
    // Validate before scheduling anything: a malformed trace (arrivals
    // out of order, zero-sized or misaligned requests) would fail deep
    // inside the device with a far less actionable message.
    std::string problem = input.validate();
    if (!problem.empty())
        sim::fatal("replay: invalid input trace: " + problem);

    trace::Trace out = input;

    const std::uint64_t logical_units = device_.ftl().logicalUnits();

    device_.setCompletionCallback(
        [&out](const emmc::CompletedRequest &c) {
            trace::TraceRecord &r = out[c.request.id];
            r.serviceStart = c.serviceStart;
            r.finish = c.finish;
        });

    for (std::size_t i = 0; i < input.size(); ++i) {
        const trace::TraceRecord &r = input[i];

        emmc::IoRequest req;
        req.id = i;
        req.arrival = r.arrival;
        req.sizeBytes = r.sizeBytes;
        req.write = r.isWrite();
        req.lbaSector = r.lbaSector;

        const std::uint64_t units = req.sizeUnits();
        std::uint64_t unit =
            req.lbaSector / sim::kSectorsPerUnit;
        if (unit + units > logical_units) {
            if (!opts.wrapAddresses) {
                sim::fatal("trace addresses device beyond its logical "
                           "capacity; enable wrapAddresses");
            }
            unit = unit % (logical_units - units + 1);
        }
        req.lbaSector = unit * sim::kSectorsPerUnit;

        sim_.schedule(r.arrival,
                      [this, req] { device_.submit(req); });
    }

    sim_.run();
    device_.setCompletionCallback(nullptr);

    for (const auto &r : out.records()) {
        EMMCSIM_ASSERT(r.replayed(),
                       "replay finished with incomplete requests");
        EMMCSIM_DCHECK(r.arrival <= r.serviceStart &&
                           r.serviceStart <= r.finish,
                       "replayed record has inverted BIOtracer "
                       "timestamps");
    }
    return out;
}

} // namespace emmcsim::host
