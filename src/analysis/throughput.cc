#include "analysis/throughput.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/stats.hh"

namespace emmcsim::analysis {

double
meanRequestThroughputMBps(const trace::Trace &t, bool write)
{
    sim::OnlineStats mbps;
    for (const auto &r : t.records()) {
        if (r.isWrite() != write)
            continue;
        EMMCSIM_ASSERT(r.replayed(), "throughput needs a replayed trace");
        const double secs = sim::toSeconds(r.serviceTime());
        if (secs <= 0.0)
            continue;
        mbps.add(static_cast<double>(r.sizeBytes.value()) / 1e6 / secs);
    }
    return mbps.mean();
}

double
sustainedThroughputMBps(const trace::Trace &t)
{
    if (t.empty())
        return 0.0;
    sim::Time first = t[0].serviceStart;
    sim::Time last = 0;
    std::uint64_t bytes = 0;
    for (const auto &r : t.records()) {
        EMMCSIM_ASSERT(r.replayed(), "throughput needs a replayed trace");
        first = std::min(first, r.serviceStart);
        last = std::max(last, r.finish);
        bytes += r.sizeBytes.value();
    }
    const double secs = sim::toSeconds(last - first);
    if (secs <= 0.0)
        return 0.0;
    return static_cast<double>(bytes) / 1e6 / secs;
}

} // namespace emmcsim::analysis
