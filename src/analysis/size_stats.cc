#include "analysis/size_stats.hh"

namespace emmcsim::analysis {

SizeStats
computeSizeStats(const trace::Trace &t)
{
    SizeStats s;
    s.name = t.name();
    s.requests = t.size();
    if (t.empty())
        return s;

    std::uint64_t total_bytes = 0;
    std::uint64_t write_bytes = 0;
    std::uint64_t writes = 0;
    std::uint64_t reads = 0;
    std::uint64_t read_bytes = 0;
    std::uint64_t max_bytes = 0;
    for (const auto &r : t.records()) {
        total_bytes += r.sizeBytes.value();
        if (r.isWrite()) {
            ++writes;
            write_bytes += r.sizeBytes.value();
        } else {
            ++reads;
            read_bytes += r.sizeBytes.value();
        }
        max_bytes =
            std::max<std::uint64_t>(max_bytes, r.sizeBytes.value());
    }
    const double kb = 1.0 / 1024.0;
    s.dataSizeKb = static_cast<double>(total_bytes) * kb;
    s.maxSizeKb = static_cast<double>(max_bytes) * kb;
    s.aveSizeKb = s.dataSizeKb / static_cast<double>(t.size());
    s.aveReadKb =
        reads ? static_cast<double>(read_bytes) * kb /
                    static_cast<double>(reads)
              : 0.0;
    s.aveWriteKb =
        writes ? static_cast<double>(write_bytes) * kb /
                     static_cast<double>(writes)
               : 0.0;
    s.writeReqPct = 100.0 * static_cast<double>(writes) /
                    static_cast<double>(t.size());
    s.writeSizePct =
        total_bytes ? 100.0 * static_cast<double>(write_bytes) /
                          static_cast<double>(total_bytes)
                    : 0.0;
    return s;
}

} // namespace emmcsim::analysis
