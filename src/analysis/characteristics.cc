#include "analysis/characteristics.hh"

#include <sstream>

#include "analysis/distributions.hh"
#include "analysis/locality.hh"
#include "analysis/size_stats.hh"
#include "analysis/timing_stats.hh"

namespace emmcsim::analysis {

CharacteristicsReport
evaluateCharacteristics(const std::vector<trace::Trace> &traces)
{
    CharacteristicsReport rep;
    rep.traces = traces.size();
    for (const auto &t : traces) {
        SizeStats ss = computeSizeStats(t);
        TimingStats ts = computeTimingStats(t);

        if (ss.writeReqPct > 50.0) {
            ++rep.writeDominant;
            if (ss.writeReqPct > 90.0)
                ++rep.writeAbove90;
        }

        if (smallRequestFraction(t) > 0.40)
            ++rep.smallMajority;

        if (ts.replayed) {
            rep.noWaitAvailable = true;
            if (ts.noWaitPct >= 60.0)
                ++rep.highNoWait;
        }

        if (ts.spatialPct < 48.0)
            ++rep.weakSpatial;
        if (ts.temporalPct >= ts.spatialPct)
            ++rep.temporalAboveSpatial;

        if (ts.meanInterArrivalMs >= 200.0)
            ++rep.longMeanGap;
        if (interArrivalTailFraction(t, 16.0) > 0.20)
            ++rep.heavyGapTail;
    }
    return rep;
}

std::string
describeCharacteristics(const CharacteristicsReport &r)
{
    std::ostringstream os;
    os << "C1 write-dominant: " << r.writeDominant << "/" << r.traces
       << " (" << r.writeAbove90 << " above 90%)\n";
    os << "C2 small-request majority: " << r.smallMajority << "/"
       << r.traces << "\n";
    if (r.noWaitAvailable) {
        os << "C3 high NoWait ratio: " << r.highNoWait << "/" << r.traces
           << "\n";
    } else {
        os << "C3 high NoWait ratio: (traces not replayed)\n";
    }
    os << "C5 weak spatial locality: " << r.weakSpatial << "/" << r.traces
       << ", temporal >= spatial in " << r.temporalAboveSpatial << "/"
       << r.traces << "\n";
    os << "C6 long inter-arrivals: mean>=200ms in " << r.longMeanGap
       << "/" << r.traces << ", >20% gaps above 16ms in "
       << r.heavyGapTail << "/" << r.traces << "\n";
    return os.str();
}

} // namespace emmcsim::analysis
