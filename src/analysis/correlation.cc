#include "analysis/correlation.hh"

#include <cmath>

#include "sim/logging.hh"

namespace emmcsim::analysis {

double
pearson(const std::vector<double> &x, const std::vector<double> &y)
{
    if (x.size() != y.size() || x.empty())
        return 0.0;
    const double n = static_cast<double>(x.size());
    double sx = 0.0;
    double sy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        sx += x[i];
        sy += y[i];
    }
    const double mx = sx / n;
    const double my = sy / n;
    double cov = 0.0;
    double vx = 0.0;
    double vy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double dx = x[i] - mx;
        const double dy = y[i] - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if (vx <= 0.0 || vy <= 0.0)
        return 0.0;
    return cov / std::sqrt(vx * vy);
}

namespace {

double
sizeTimingCorrelation(const trace::Trace &t, bool response)
{
    std::vector<double> sizes;
    std::vector<double> times;
    sizes.reserve(t.size());
    times.reserve(t.size());
    for (const auto &r : t.records()) {
        EMMCSIM_ASSERT(r.replayed(),
                       "correlation needs a replayed trace");
        sizes.push_back(static_cast<double>(r.sizeBytes.value()));
        times.push_back(sim::toMilliseconds(
            response ? r.responseTime() : r.serviceTime()));
    }
    return pearson(sizes, times);
}

} // namespace

double
sizeResponseCorrelation(const trace::Trace &t)
{
    return sizeTimingCorrelation(t, true);
}

double
sizeServiceCorrelation(const trace::Trace &t)
{
    return sizeTimingCorrelation(t, false);
}

} // namespace emmcsim::analysis
