/**
 * @file
 * Locality metrics exactly as Section III-C defines them.
 *
 * Spatial locality: the percentage of sequential request accesses —
 * a request is sequential when its starting address equals the ending
 * address of its immediate predecessor.
 *
 * Temporal locality: the percentage of address hits — a hit is counted
 * when a request re-accesses a starting address that some earlier
 * request in the trace started at.
 */

#ifndef EMMCSIM_ANALYSIS_LOCALITY_HH
#define EMMCSIM_ANALYSIS_LOCALITY_HH

#include "trace/trace.hh"

namespace emmcsim::analysis {

/** Both locality metrics of one trace, as fractions in [0, 1]. */
struct LocalityResult
{
    double spatial = 0.0;
    double temporal = 0.0;
    std::uint64_t sequentialRequests = 0;
    std::uint64_t addressHits = 0;
};

/** Compute spatial and temporal locality of @p t. */
LocalityResult computeLocality(const trace::Trace &t);

} // namespace emmcsim::analysis

#endif // EMMCSIM_ANALYSIS_LOCALITY_HH
