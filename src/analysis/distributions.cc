#include "analysis/distributions.hh"

#include "sim/logging.hh"

namespace emmcsim::analysis {

const std::vector<double> &
sizeBucketBoundsKb()
{
    static const std::vector<double> bounds = {4,   8,   16,   64,
                                               256, 1024};
    return bounds;
}

const std::vector<std::string> &
sizeBucketLabels()
{
    static const std::vector<std::string> labels = {
        "<=4KB",     "8KB",       "12-16KB", "20-64KB",
        "68-256KB",  "260KB-1MB", ">1MB"};
    return labels;
}

sim::Histogram
sizeDistribution(const trace::Trace &t)
{
    sim::Histogram h(sizeBucketBoundsKb());
    for (const auto &r : t.records())
        h.add(static_cast<double>(r.sizeBytes.value()) / 1024.0);
    return h;
}

double
smallRequestFraction(const trace::Trace &t)
{
    if (t.empty())
        return 0.0;
    std::uint64_t small = 0;
    for (const auto &r : t.records()) {
        if (r.sizeBytes.value() <= sim::kUnitBytes)
            ++small;
    }
    return static_cast<double>(small) / static_cast<double>(t.size());
}

const std::vector<double> &
responseBucketBoundsMs()
{
    static const std::vector<double> bounds = {1,  2,  4,  8,
                                               16, 32, 64, 128};
    return bounds;
}

const std::vector<std::string> &
responseBucketLabels()
{
    static const std::vector<std::string> labels = {
        "<=1ms",   "1-2ms",   "2-4ms",   "4-8ms",   "8-16ms",
        "16-32ms", "32-64ms", "64-128ms", ">128ms"};
    return labels;
}

sim::Histogram
responseDistribution(const trace::Trace &t)
{
    sim::Histogram h(responseBucketBoundsMs());
    for (const auto &r : t.records()) {
        EMMCSIM_ASSERT(r.replayed(),
                       "responseDistribution needs a replayed trace");
        h.add(sim::toMilliseconds(r.responseTime()));
    }
    return h;
}

const std::vector<double> &
interArrivalBucketBoundsMs()
{
    static const std::vector<double> bounds = {1, 4, 16, 64, 256, 1024};
    return bounds;
}

const std::vector<std::string> &
interArrivalBucketLabels()
{
    static const std::vector<std::string> labels = {
        "<=1ms",    "1-4ms",     "4-16ms", "16-64ms",
        "64-256ms", "256ms-1s",  ">1s"};
    return labels;
}

sim::Histogram
interArrivalDistribution(const trace::Trace &t)
{
    sim::Histogram h(interArrivalBucketBoundsMs());
    for (std::size_t i = 1; i < t.size(); ++i) {
        h.add(sim::toMilliseconds(t[i].arrival - t[i - 1].arrival));
    }
    return h;
}

double
interArrivalTailFraction(const trace::Trace &t, double ms)
{
    if (t.size() < 2)
        return 0.0;
    std::uint64_t tail = 0;
    for (std::size_t i = 1; i < t.size(); ++i) {
        if (sim::toMilliseconds(t[i].arrival - t[i - 1].arrival) > ms)
            ++tail;
    }
    return static_cast<double>(tail) / static_cast<double>(t.size() - 1);
}

} // namespace emmcsim::analysis
