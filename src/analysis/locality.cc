#include "analysis/locality.hh"

#include <unordered_set>

namespace emmcsim::analysis {

LocalityResult
computeLocality(const trace::Trace &t)
{
    LocalityResult res;
    if (t.empty())
        return res;

    std::unordered_set<units::Lba> seen_starts;
    seen_starts.reserve(t.size());

    units::Lba prev_end{0};
    bool have_prev = false;
    for (const auto &r : t.records()) {
        if (have_prev && r.lbaSector == prev_end)
            ++res.sequentialRequests;
        if (seen_starts.count(r.lbaSector))
            ++res.addressHits;
        seen_starts.insert(r.lbaSector);
        prev_end = r.endSector();
        have_prev = true;
    }
    const double n = static_cast<double>(t.size());
    res.spatial = static_cast<double>(res.sequentialRequests) / n;
    res.temporal = static_cast<double>(res.addressHits) / n;
    return res;
}

} // namespace emmcsim::analysis
