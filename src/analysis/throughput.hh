/**
 * @file
 * Throughput metrics for the Fig 3 reproduction.
 *
 * Fig 3 plots, per request size, the average access rate of requests
 * with that size: effectively size / service time averaged over the
 * requests, which is what these helpers compute from replayed traces.
 */

#ifndef EMMCSIM_ANALYSIS_THROUGHPUT_HH
#define EMMCSIM_ANALYSIS_THROUGHPUT_HH

#include <cstdint>
#include <vector>

#include "trace/trace.hh"

namespace emmcsim::analysis {

/** One Fig 3 data point. */
struct ThroughputPoint
{
    std::uint64_t sizeBytes = 0;
    double readMBps = 0.0;  ///< 0 when no reads of this size exist
    double writeMBps = 0.0; ///< 0 when no writes of this size exist
};

/**
 * Mean per-request throughput (MB/s) of requests of the given kind in
 * a replayed trace, computed as size / service time per request and
 * averaged.
 *
 * @param t     Replayed trace.
 * @param write Select writes (true) or reads (false).
 * @return 0 when no matching requests exist.
 */
double meanRequestThroughputMBps(const trace::Trace &t, bool write);

/**
 * Sustained throughput of a replayed trace: total bytes moved divided
 * by the busy interval (first service start to last finish).
 */
double sustainedThroughputMBps(const trace::Trace &t);

} // namespace emmcsim::analysis

#endif // EMMCSIM_ANALYSIS_THROUGHPUT_HH
