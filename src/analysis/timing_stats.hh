/**
 * @file
 * Timing-related trace statistics: one row of the paper's Table IV.
 *
 * Service/response/NoWait columns need a *replayed* trace (records
 * carrying BIOtracer step-2/step-3 timestamps); the arrival columns
 * and localities only need the raw stream.
 */

#ifndef EMMCSIM_ANALYSIS_TIMING_STATS_HH
#define EMMCSIM_ANALYSIS_TIMING_STATS_HH

#include <string>

#include "trace/trace.hh"

namespace emmcsim::analysis {

/** All Table IV columns for one trace. */
struct TimingStats
{
    std::string name;
    double durationSec = 0.0;     ///< recording duration
    double arrivalRate = 0.0;     ///< requests per second
    double accessRateKbps = 0.0;  ///< KB accessed per second
    double noWaitPct = 0.0;       ///< % of requests served immediately
    double meanServiceMs = 0.0;   ///< mean service time
    double meanResponseMs = 0.0;  ///< mean response time
    double spatialPct = 0.0;      ///< spatial locality (%)
    double temporalPct = 0.0;     ///< temporal locality (%)
    double meanInterArrivalMs = 0.0; ///< supporting Characteristic 6
    bool replayed = false;        ///< service columns are meaningful
};

/** Compute a Table IV row from @p t. */
TimingStats computeTimingStats(const trace::Trace &t);

} // namespace emmcsim::analysis

#endif // EMMCSIM_ANALYSIS_TIMING_STATS_HH
