#include "analysis/timing_stats.hh"

#include "analysis/locality.hh"
#include "sim/stats.hh"

namespace emmcsim::analysis {

TimingStats
computeTimingStats(const trace::Trace &t)
{
    TimingStats s;
    s.name = t.name();
    if (t.empty())
        return s;

    const double dur_s = sim::toSeconds(t.duration());
    s.durationSec = dur_s;
    if (dur_s > 0.0) {
        s.arrivalRate = static_cast<double>(t.size()) / dur_s;
        s.accessRateKbps =
            static_cast<double>(t.totalBytes().value()) / 1024.0 / dur_s;
    }

    LocalityResult loc = computeLocality(t);
    s.spatialPct = 100.0 * loc.spatial;
    s.temporalPct = 100.0 * loc.temporal;

    sim::OnlineStats gaps;
    for (std::size_t i = 1; i < t.size(); ++i) {
        gaps.add(sim::toMilliseconds(t[i].arrival - t[i - 1].arrival));
    }
    s.meanInterArrivalMs = gaps.mean();

    bool all_replayed = true;
    sim::OnlineStats serv;
    sim::OnlineStats resp;
    std::uint64_t no_wait = 0;
    for (const auto &r : t.records()) {
        if (!r.replayed()) {
            all_replayed = false;
            break;
        }
        serv.add(sim::toMilliseconds(r.serviceTime()));
        resp.add(sim::toMilliseconds(r.responseTime()));
        if (r.serviceStart == r.arrival)
            ++no_wait;
    }
    if (all_replayed) {
        s.replayed = true;
        s.meanServiceMs = serv.mean();
        s.meanResponseMs = resp.mean();
        s.noWaitPct = 100.0 * static_cast<double>(no_wait) /
                      static_cast<double>(t.size());
    }
    return s;
}

} // namespace emmcsim::analysis
