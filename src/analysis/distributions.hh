/**
 * @file
 * Bucketed distributions for the paper's figures:
 *  - Fig 4 / Fig 7a: request-size distributions,
 *  - Fig 5 / Fig 7b: response-time distributions,
 *  - Fig 6 / Fig 7c: inter-arrival-time distributions.
 */

#ifndef EMMCSIM_ANALYSIS_DISTRIBUTIONS_HH
#define EMMCSIM_ANALYSIS_DISTRIBUTIONS_HH

#include <string>
#include <vector>

#include "sim/stats.hh"
#include "trace/trace.hh"

namespace emmcsim::analysis {

/** @name Fig 4 request-size buckets. @{ */

/** Upper bounds in KB for the Fig 4 size buckets. */
const std::vector<double> &sizeBucketBoundsKb();

/** Human-readable labels for the Fig 4 buckets (incl. overflow). */
const std::vector<std::string> &sizeBucketLabels();

/** Histogram of request sizes over the Fig 4 buckets. */
sim::Histogram sizeDistribution(const trace::Trace &t);

/** Fraction of single-page (<= 4KB) requests — Characteristic 2. */
double smallRequestFraction(const trace::Trace &t);
/** @} */

/** @name Fig 5 response-time buckets. @{ */

/** Upper bounds in ms (powers of two, 1..128) for Fig 5. */
const std::vector<double> &responseBucketBoundsMs();

/** Labels for the Fig 5 buckets. */
const std::vector<std::string> &responseBucketLabels();

/**
 * Histogram of response times over the Fig 5 buckets.
 * Requires a replayed trace.
 */
sim::Histogram responseDistribution(const trace::Trace &t);
/** @} */

/** @name Fig 6 inter-arrival buckets. @{ */

/** Upper bounds in ms (1, 4, 16, 64, 256, 1024) for Fig 6. */
const std::vector<double> &interArrivalBucketBoundsMs();

/** Labels for the Fig 6 buckets. */
const std::vector<std::string> &interArrivalBucketLabels();

/** Histogram of inter-arrival times over the Fig 6 buckets. */
sim::Histogram interArrivalDistribution(const trace::Trace &t);

/** Fraction of inter-arrivals larger than @p ms milliseconds. */
double interArrivalTailFraction(const trace::Trace &t, double ms);
/** @} */

} // namespace emmcsim::analysis

#endif // EMMCSIM_ANALYSIS_DISTRIBUTIONS_HH
