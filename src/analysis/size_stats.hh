/**
 * @file
 * Size-related trace statistics: one row of the paper's Table III.
 */

#ifndef EMMCSIM_ANALYSIS_SIZE_STATS_HH
#define EMMCSIM_ANALYSIS_SIZE_STATS_HH

#include <string>

#include "trace/trace.hh"

namespace emmcsim::analysis {

/** All Table III columns for one trace. */
struct SizeStats
{
    std::string name;
    double dataSizeKb = 0.0;   ///< total bytes accessed, in KB
    std::uint64_t requests = 0;
    double maxSizeKb = 0.0;    ///< largest request, KB
    double aveSizeKb = 0.0;    ///< mean request size, KB
    double aveReadKb = 0.0;    ///< mean read size, KB
    double aveWriteKb = 0.0;   ///< mean write size, KB
    double writeReqPct = 0.0;  ///< % of requests that are writes
    double writeSizePct = 0.0; ///< % of accessed bytes that are written
};

/** Compute a Table III row from @p t. */
SizeStats computeSizeStats(const trace::Trace &t);

} // namespace emmcsim::analysis

#endif // EMMCSIM_ANALYSIS_SIZE_STATS_HH
