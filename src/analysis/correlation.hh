/**
 * @file
 * Correlation helpers for the paper's Fig 5 observation: "the response
 * time distributions are strongly correlated to the request size
 * distributions ... the response time of a request is largely
 * determined by its size."
 */

#ifndef EMMCSIM_ANALYSIS_CORRELATION_HH
#define EMMCSIM_ANALYSIS_CORRELATION_HH

#include <vector>

#include "trace/trace.hh"

namespace emmcsim::analysis {

/**
 * Pearson correlation coefficient of two equally sized samples.
 * @return r in [-1, 1]; 0 when either sample has zero variance or the
 *         samples are empty/mismatched.
 */
double pearson(const std::vector<double> &x,
               const std::vector<double> &y);

/**
 * Correlation between request size and response time over a replayed
 * trace — the quantitative version of the paper's Fig 5 remark.
 */
double sizeResponseCorrelation(const trace::Trace &t);

/**
 * Correlation between request size and *service* time (excludes queue
 * wait, so it is even stronger when queues are short).
 */
double sizeServiceCorrelation(const trace::Trace &t);

} // namespace emmcsim::analysis

#endif // EMMCSIM_ANALYSIS_CORRELATION_HH
