/**
 * @file
 * Automated checks of the paper's six observed characteristics over a
 * set of traces (Section III). Each check reports the supporting
 * counts so benches can print them and tests can assert them.
 */

#ifndef EMMCSIM_ANALYSIS_CHARACTERISTICS_HH
#define EMMCSIM_ANALYSIS_CHARACTERISTICS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace emmcsim::analysis {

/** Evaluation of Characteristics 1-6 across a trace set. */
struct CharacteristicsReport
{
    std::size_t traces = 0;

    /** C1: traces with write-request percentage above 50%. */
    std::size_t writeDominant = 0;
    /** C1: of those, traces with write percentage above 90%. */
    std::size_t writeAbove90 = 0;

    /** C2: traces where single-page (4KB) requests exceed 40%. */
    std::size_t smallMajority = 0;

    /** C3: traces where >=60% of requests are served immediately
     *  (needs replayed traces; 0 otherwise). */
    std::size_t highNoWait = 0;
    bool noWaitAvailable = false;

    /** C5: traces with spatial locality below 48%. */
    std::size_t weakSpatial = 0;
    /** C5: traces where temporal >= spatial locality. */
    std::size_t temporalAboveSpatial = 0;

    /** C6: traces with mean inter-arrival of at least 200 ms. */
    std::size_t longMeanGap = 0;
    /** C6: traces with >20% of inter-arrivals above 16 ms. */
    std::size_t heavyGapTail = 0;
};

/** Evaluate the characteristics over @p traces. */
CharacteristicsReport
evaluateCharacteristics(const std::vector<trace::Trace> &traces);

/** Render the report as a short human-readable summary. */
std::string describeCharacteristics(const CharacteristicsReport &r);

} // namespace emmcsim::analysis

#endif // EMMCSIM_ANALYSIS_CHARACTERISTICS_HH
