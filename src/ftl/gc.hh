/**
 * @file
 * Garbage collector: greedy victim selection with block compaction.
 *
 * Two triggers exist, mirroring the paper's Implication 2:
 *  - blocking GC: the write path calls ensureFreePage() and pays the
 *    reclamation latency inline, like a conventional SSD FTL;
 *  - idle GC: the eMMC controller calls idleRound() during request
 *    gaps (smartphone inter-arrival times are frequently longer than a
 *    full GC round), hiding reclamation from the user.
 */

#ifndef EMMCSIM_FTL_GC_HH
#define EMMCSIM_FTL_GC_HH

#include <cstdint>

#include "flash/array.hh"
#include "ftl/badblock.hh"
#include "ftl/journal.hh"
#include "ftl/mapping.hh"
#include "sim/types.hh"

namespace emmcsim::ftl {

/** Victim-selection policies. */
enum class GcVictimPolicy
{
    /** Fewest valid units (min relocation work right now). */
    Greedy,
    /**
     * Cost-benefit: maximize age * invalid / (2 * valid). Prefers
     * older blocks whose surviving data is cold, reducing repeated
     * relocation of hot data under skewed workloads.
     */
    CostBenefit,
};

/** Garbage-collection thresholds (per plane-pool, in blocks). */
struct GcConfig
{
    /** Blocking GC keeps at least this many free blocks. */
    std::uint32_t hardFreeBlocks = 2;
    /** Idle GC works toward this many free blocks. */
    std::uint32_t softFreeBlocks = 8;
    /** Victim-selection policy. */
    GcVictimPolicy victimPolicy = GcVictimPolicy::Greedy;
    /**
     * Idle GC only touches victims whose invalid fraction is at least
     * this large. Without the guard, a device whose live data simply
     * exceeds the soft watermark would grind forever relocating
     * almost-fully-valid blocks for no net gain.
     */
    double idleMinInvalidFraction = 0.15;
    /**
     * Pages relocated per incremental idle-GC step. Small steps keep
     * the reclamation preemptible: an arriving request waits at most
     * one step, not a whole block collection.
     */
    std::uint32_t idleStepPages = 8;
};

/** Counters describing reclamation work done so far. */
struct GcStats
{
    std::uint64_t blockingRounds = 0;
    std::uint64_t idleRounds = 0;
    std::uint64_t idleSteps = 0;
    std::uint64_t relocatedUnits = 0;
    std::uint64_t erasedBlocks = 0;
    /** Blocks retired instead of erased (grown bad blocks). */
    std::uint64_t retiredBlocks = 0;
    /** Incremental scrub steps draining suspect blocks. */
    std::uint64_t scrubSteps = 0;
    sim::Time blockingTime = 0; ///< flash time spent in blocking GC
    sim::Time idleTime = 0;     ///< flash time spent in idle GC
};

/** Greedy garbage collector over all plane-pools of a flash array. */
class GarbageCollector
{
  public:
    /**
     * @param array   Flash array (state + timing).
     * @param map     Page map consulted as units are relocated.
     * @param cfg     Thresholds.
     * @param bbm     Grown-bad-block bookkeeping (shared with the FTL).
     * @param journal Durable-metadata gateway: every relocation,
     *        erase, and retirement is recorded through it so the
     *        mapping stays crash-consistent.
     */
    GarbageCollector(flash::FlashArray &array, PageMap &map, GcConfig cfg,
                     BadBlockManager &bbm, MetaJournal &journal);

    /**
     * Make sure pool @p pool of plane @p plane_linear can allocate a
     * page, running blocking GC rounds when the free-block count falls
     * below the hard threshold. When erase failures eat the reserve
     * faster than GC can rebuild it, the loop stops once no victim
     * remains; callers must re-check hasFreePage() before allocating.
     *
     * @param earliest Earliest time the GC flash operations may start.
     * @return Completion time of any GC work (== @p earliest if none).
     */
    sim::Time ensureFreePage(std::uint32_t plane_linear,
                             std::uint32_t pool, sim::Time earliest);

    /**
     * Run one idle GC round on the neediest plane-pool below the soft
     * threshold (a full block collection; used when preemption does
     * not matter).
     *
     * @param earliest  Earliest start for the flash operations.
     * @param did_work  Set true when a round actually ran.
     * @return Completion time (== @p earliest when nothing ran).
     */
    sim::Time idleRound(sim::Time earliest, bool &did_work);

    /**
     * Run one *incremental* idle GC step: relocate up to
     * idleStepPages valid pages out of the current victim of the
     * neediest pool, erasing the victim once it drains. Steps are a
     * few milliseconds, so background reclamation never holds up an
     * arriving request for long.
     *
     * @param earliest  Earliest start for the flash operations.
     * @param did_work  Set true when the step did anything.
     * @return Completion time (== @p earliest when nothing ran).
     */
    sim::Time idleStep(sim::Time earliest, bool &did_work);

    /**
     * @return true when pool @p pool of plane @p plane_linear holds a
     *         victim whose collection would net free space.
     */
    bool canReclaim(std::uint32_t plane_linear, std::uint32_t pool) const;

    const GcConfig &config() const { return cfg_; }
    const GcStats &stats() const { return stats_; }

    /** @name Snapshot image (counters only; no other state). @{ */
    void save(core::BinWriter &w) const;
    void load(core::BinReader &r);
    /** @} */

  private:
    /**
     * Pick the victim block in @p pool: a full, non-active block with
     * the fewest valid units.
     * @return Block index, or -1 when no eligible victim exists.
     */
    std::int32_t pickVictim(const flash::BlockPool &pool) const;

    /**
     * Collect one block in (plane, pool): relocate live units within
     * the plane using copyback, then erase the victim.
     * @return Completion time of the erase.
     */
    sim::Time collectOne(std::uint32_t plane_linear, std::uint32_t pool,
                         sim::Time earliest);

    /**
     * Find the neediest plane-pool below the soft watermark with an
     * eligible victim.
     * @param min_invalid Minimum invalid fraction a victim must have.
     * @retval true when @p plane_out / @p pool_out were set.
     */
    bool findNeedyPool(double min_invalid, std::uint32_t &plane_out,
                       std::uint32_t &pool_out) const;

    /**
     * Relocate up to @p max_pages valid pages from @p victim of the
     * given plane-pool; erase (or retire) it when no valid units
     * remain.
     * @return Completion time of the last flash operation.
     */
    sim::Time relocateSome(std::uint32_t plane_linear,
                           std::uint32_t pool, flash::BlockId victim,
                           std::uint32_t max_pages, sim::Time earliest);

    /**
     * Allocate a destination page and copyback-program it, re-issuing
     * the program to a fresh page (and flagging the failed block
     * suspect) on a program-status failure.
     *
     * @param t In/out flash-time cursor.
     * @return The physical page the data finally landed in.
     */
    flash::Ppn copybackProgramChecked(flash::BlockPool &bp,
                                      flash::PageAddr base,
                                      std::uint32_t ppb, sim::Time &t);

    /**
     * Reclaim drained block @p b: attempt the erase and either return
     * the block to the free list or — on an erase failure or a
     * suspect flag — retire it into the grown-bad-block table.
     * @return Completion time of the erase attempt.
     */
    sim::Time reclaimBlock(std::uint32_t plane_linear, std::uint32_t pool,
                           flash::BlockId b, sim::Time earliest);

    /**
     * One incremental scrub step: find a full suspect block whose pool
     * still has relocation room, move up to idleStepPages of its live
     * pages, and retire it once empty.
     * @param did_work Set true when the step did anything.
     * @return Completion time (== @p earliest when nothing ran).
     */
    sim::Time scrubStep(sim::Time earliest, bool &did_work);

    flash::FlashArray &array_;
    PageMap &map_;
    GcConfig cfg_;
    BadBlockManager &bbm_;
    MetaJournal &journal_;
    GcStats stats_;
};

} // namespace emmcsim::ftl

#endif // EMMCSIM_FTL_GC_HH
