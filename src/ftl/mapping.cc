#include "ftl/mapping.hh"

#include "sim/logging.hh"

namespace emmcsim::ftl {

PageMap::PageMap(std::uint64_t logical_units)
{
    entries_.assign(logical_units, MapEntry{});
}

void
PageMap::checkRange(flash::Lpn lpn) const
{
    EMMCSIM_ASSERT(lpn.value() >= 0 &&
                       static_cast<std::uint64_t>(lpn.value()) <
                           entries_.size(),
                   "lpn out of logical range");
}

bool
PageMap::mapped(flash::Lpn lpn) const
{
    checkRange(lpn);
    return entries_[static_cast<std::size_t>(lpn.value())].mapped();
}

const MapEntry &
PageMap::lookup(flash::Lpn lpn) const
{
    checkRange(lpn);
    return entries_[static_cast<std::size_t>(lpn.value())];
}

void
PageMap::set(flash::Lpn lpn, const MapEntry &e)
{
    checkRange(lpn);
    EMMCSIM_ASSERT(e.mapped(), "setting unmapped entry; use clear()");
    auto &slot = entries_[static_cast<std::size_t>(lpn.value())];
    if (!slot.mapped())
        ++mappedCount_;
    slot = e;
}

void
PageMap::clear(flash::Lpn lpn)
{
    checkRange(lpn);
    auto &slot = entries_[static_cast<std::size_t>(lpn.value())];
    if (slot.mapped()) {
        --mappedCount_;
        slot = MapEntry{};
    }
}

} // namespace emmcsim::ftl
