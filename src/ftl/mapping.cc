#include "ftl/mapping.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace emmcsim::ftl {

PageMap::PageMap(std::uint64_t logical_units)
{
    entries_.assign(logical_units, MapEntry{});
}

void
PageMap::checkRange(flash::Lpn lpn) const
{
    EMMCSIM_ASSERT(lpn.value() >= 0 &&
                       static_cast<std::uint64_t>(lpn.value()) <
                           entries_.size(),
                   "lpn out of logical range");
}

bool
PageMap::mapped(flash::Lpn lpn) const
{
    checkRange(lpn);
    return entries_[static_cast<std::size_t>(lpn.value())].mapped();
}

const MapEntry &
PageMap::lookup(flash::Lpn lpn) const
{
    checkRange(lpn);
    return entries_[static_cast<std::size_t>(lpn.value())];
}

void
PageMap::set(flash::Lpn lpn, const MapEntry &e)
{
    checkRange(lpn);
    EMMCSIM_ASSERT(e.mapped(), "setting unmapped entry; use clear()");
    auto &slot = entries_[static_cast<std::size_t>(lpn.value())];
    if (!slot.mapped())
        ++mappedCount_;
    slot = e;
}

void
PageMap::clear(flash::Lpn lpn)
{
    checkRange(lpn);
    auto &slot = entries_[static_cast<std::size_t>(lpn.value())];
    if (slot.mapped()) {
        --mappedCount_;
        slot = MapEntry{};
    }
}

void
PageMap::reset()
{
    std::fill(entries_.begin(), entries_.end(), MapEntry{});
    mappedCount_ = 0;
}

void
PageMap::save(core::BinWriter &w) const
{
    w.podVec(entries_);
    w.u64(mappedCount_);
}

void
PageMap::load(core::BinReader &r)
{
    const std::uint64_t logical = entries_.size();
    r.podVec(entries_);
    mappedCount_ = r.u64();
    if (entries_.size() != logical)
        r.fail();
}

} // namespace emmcsim::ftl
