/**
 * @file
 * RequestDistributor: scheme-specific write splitting.
 *
 * The paper's request distributor "splits a request into multiple
 * pages" — how it does so is exactly what distinguishes 4PS, 8PS and
 * HPS. The interface produces *page groups*: each group becomes one
 * physical page program in a chosen pool.
 *
 * Reads normally follow the mapping, but the FTL also consults the
 * distributor to time reads of never-written units (a replay on a
 * brand-new device reads data the original trace wrote before
 * collection started): such units are charged as if they had been laid
 * out by this same split.
 */

#ifndef EMMCSIM_FTL_DISTRIBUTOR_HH
#define EMMCSIM_FTL_DISTRIBUTOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "flash/pool.hh"

namespace emmcsim::ftl {

/** One physical page program: pool choice + the units it stores. */
struct PageGroup
{
    std::uint32_t pool = 0;
    std::vector<flash::Lpn> lpns;
};

/** Splits write requests into page groups. */
class RequestDistributor
{
  public:
    virtual ~RequestDistributor() = default;

    /**
     * Split a write of @p n units starting at @p first.
     * @param out Receives the page groups (appended in order).
     */
    virtual void splitWrite(flash::Lpn first, std::uint32_t n,
                            std::vector<PageGroup> &out) const = 0;

    /** Human-readable scheme label ("4PS", "8PS", "HPS"). */
    virtual std::string name() const = 0;
};

/**
 * Distributor for single-page-size devices (4PS, 8PS).
 *
 * Cuts the unit run into chunks of the pool's page capacity; a final
 * partial chunk still consumes a whole physical page — the padding
 * loss the paper's space-utilization metric charges 8PS for.
 */
class SinglePoolDistributor : public RequestDistributor
{
  public:
    /**
     * @param pool           Pool index all writes target.
     * @param units_per_page Unit capacity of that pool's pages.
     * @param label          Scheme label for reports.
     */
    SinglePoolDistributor(std::uint32_t pool, std::uint32_t units_per_page,
                          std::string label);

    void splitWrite(flash::Lpn first, std::uint32_t n,
                    std::vector<PageGroup> &out) const override;

    std::string name() const override { return label_; }

  private:
    std::uint32_t pool_;
    std::uint32_t unitsPerPage_;
    std::string label_;
};

} // namespace emmcsim::ftl

#endif // EMMCSIM_FTL_DISTRIBUTOR_HH
