/**
 * @file
 * BadBlockManager: the FTL's grown-bad-block table and spare budget.
 *
 * Factory bad blocks aside, NAND grows bad blocks over life: a program
 * failure marks its block suspect (retired once scrubbed empty), an
 * erase failure retires its block outright. Each retirement consumes
 * one block of the per-plane-pool spare budget; when any plane-pool
 * exhausts its spares — or the FTL runs out of reclaimable space —
 * the device degrades to read-only instead of dying: reads keep
 * working, writes fail with a structured error the host can act on.
 */

#ifndef EMMCSIM_FTL_BADBLOCK_HH
#define EMMCSIM_FTL_BADBLOCK_HH

#include <cstdint>
#include <vector>

#include "core/binio.hh"
#include "core/units.hh"

namespace emmcsim::ftl {

/** Why a block was retired. */
enum class RetireCause : std::uint8_t
{
    ProgramFail, ///< program-status failure, scrubbed then retired
    EraseFail,   ///< erase failure, retired on the spot
};

/** Why the device stopped accepting writes. */
enum class ReadOnlyCause : std::uint8_t
{
    None,            ///< still writable
    SpareExhaustion, ///< a plane-pool retired more blocks than spares
    SpaceExhaustion, ///< no pool can reclaim another free page
};

/** One grown-bad-block table entry. */
struct BadBlockEntry
{
    std::uint32_t planeLinear = 0;
    std::uint32_t pool = 0;
    std::uint32_t block = 0;
    RetireCause cause = RetireCause::EraseFail;
};

/** Spare-budget configuration. */
struct BbmConfig
{
    /**
     * Retired blocks each plane-pool tolerates before the device goes
     * read-only. Real eMMC parts reserve a few percent of blocks as
     * spares; the default matches the scaled-down test geometries.
     */
    std::uint32_t spareBlocksPerPlanePool = 8;
};

/** Reliability-event counters. */
struct BbmStats
{
    std::uint64_t programFailures = 0; ///< program-status failures seen
    std::uint64_t eraseFailures = 0;   ///< erase failures seen
    std::uint64_t relocatedPrograms = 0; ///< pages re-issued after a fail
    std::uint64_t retiredProgram = 0;  ///< blocks retired (program path)
    std::uint64_t retiredErase = 0;    ///< blocks retired (erase path)
};

/** Grown-bad-block bookkeeping for one device. */
class BadBlockManager
{
  public:
    /**
     * @param planes Plane count of the managed array.
     * @param pools  Page-size pools per plane.
     * @param cfg    Spare budget.
     */
    BadBlockManager(std::uint32_t planes, std::uint32_t pools,
                    const BbmConfig &cfg);

    /** @name Event accounting (no state transition). @{ */
    void noteProgramFailure() { ++stats_.programFailures; }
    void noteEraseFailure() { ++stats_.eraseFailures; }
    void noteRelocatedProgram() { ++stats_.relocatedPrograms; }
    /** @} */

    /**
     * Record that (plane, pool, block) was retired. Transitions the
     * device to read-only when the plane-pool's spare budget is spent.
     */
    void recordRetirement(std::uint32_t plane_linear, std::uint32_t pool,
                          units::BlockId block, RetireCause cause);

    /** Retired blocks in one plane-pool. */
    std::uint32_t retiredCount(std::uint32_t plane_linear,
                               std::uint32_t pool) const;

    /** Retired blocks device-wide. */
    std::uint64_t totalRetired() const { return table_.size(); }

    /** @return true once the device stopped accepting writes. */
    bool readOnly() const
    {
        return readOnlyCause_ != ReadOnlyCause::None;
    }

    ReadOnlyCause readOnlyCause() const { return readOnlyCause_; }

    /**
     * Declare the FTL out of reclaimable space in every pool: the
     * graceful-degradation replacement for dying on a full device.
     */
    void declareSpaceExhausted();

    /** The grown-bad-block table, in retirement order. */
    const std::vector<BadBlockEntry> &table() const { return table_; }

    const BbmConfig &config() const { return cfg_; }
    const BbmStats &stats() const { return stats_; }

    /** @name Snapshot image (core/binio.hh). @{ */
    void save(core::BinWriter &w) const;
    void load(core::BinReader &r);
    /** @} */

  private:
    BbmConfig cfg_;
    std::uint32_t pools_;
    /** Retired count per (plane, pool), flattened plane-major. */
    std::vector<std::uint32_t> retired_;
    std::vector<BadBlockEntry> table_;
    BbmStats stats_;
    ReadOnlyCause readOnlyCause_ = ReadOnlyCause::None;
};

} // namespace emmcsim::ftl

#endif // EMMCSIM_FTL_BADBLOCK_HH
