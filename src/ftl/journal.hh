/**
 * @file
 * MetaJournal: the FTL's crash-consistency gateway (DESIGN.md §13).
 *
 * Every durable-metadata mutation — mapping a unit, relocating it,
 * trimming it, erasing or retiring a block — flows through this class
 * and nothing else (enforced by the emmclint `durable-ftl-mutation`
 * rule). Each mutation appends one journal record with a globally
 * monotonic sequence number; the same number is stamped into the
 * programmed page's out-of-band spare area by the caller, which is
 * what lets power-up recovery order multiple physical copies of a
 * logical unit without reading any data.
 *
 * The journal models the metadata stream of a real eMMC controller:
 * records accumulate in a RAM page buffer and reach flash only when
 * the buffer fills (`recordsPerPage`), a flush barrier forces it out,
 * or a checkpoint rewrites the whole table. Because page programs for
 * host data already carry the (lpn, seq) tuples in their OOB area, the
 * journal stream itself costs no additional latency on the data path —
 * it is pure accounting that determines (a) which *trims* survive a
 * sudden power-off (trims have no OOB footprint; an unflushed trim is
 * legally forgotten) and (b) how many metadata pages power-up recovery
 * must read back (the recovery-time cost model).
 */

#ifndef EMMCSIM_FTL_JOURNAL_HH
#define EMMCSIM_FTL_JOURNAL_HH

#include <cstdint>
#include <vector>

#include "ftl/mapping.hh"
#include "sim/types.hh"

namespace emmcsim::ftl {

/** Journal/checkpoint protocol parameters. */
struct JournalConfig
{
    /** Mapping records per on-flash journal page. */
    std::uint32_t recordsPerPage = 512;
    /**
     * A checkpoint (full table rewrite) after this many records keeps
     * the replay segment short at the cost of periodic metadata
     * programs.
     */
    std::uint32_t checkpointEveryRecords = 1u << 16;
};

/** Journal activity counters (obs + audit). */
struct JournalStats
{
    std::uint64_t writeRecords = 0; ///< host/prefill unit mappings
    std::uint64_t relocRecords = 0; ///< GC/scrub unit relocations
    std::uint64_t trimRecords = 0;
    std::uint64_t eraseRecords = 0;
    std::uint64_t retireRecords = 0;
    std::uint64_t pagesFlushed = 0;   ///< full journal pages to flash
    std::uint64_t barrierFlushes = 0; ///< partial pages forced out
    std::uint64_t checkpoints = 0;
    std::uint64_t droppedTrims = 0; ///< volatile trims lost to SPO
};

/** The sole mutator of durable FTL metadata. */
class MetaJournal
{
  public:
    /**
     * @param map Mapping table this journal guards (must outlive it).
     * @param cfg Protocol parameters.
     */
    MetaJournal(PageMap &map, const JournalConfig &cfg);

    /** @name Mutation records. Each returns its sequence number. @{ */

    /** Map @p lpn to @p e (host write or prefill install). */
    std::uint64_t recordWrite(flash::Lpn lpn, const MapEntry &e);

    /** Re-map @p lpn to @p e (GC/scrub relocation). */
    std::uint64_t recordRelocation(flash::Lpn lpn, const MapEntry &e);

    /**
     * Unmap @p lpn (trim/discard). The trim's sequence number is kept
     * per-lpn so recovery can decide "trimmed after the last surviving
     * copy was written".
     */
    std::uint64_t recordTrim(flash::Lpn lpn);

    /**
     * Note a block erase completing at @p done. An erase whose
     * completion lies beyond a power cut is re-run at power-up (the
     * block state already reads as erased; only time is charged).
     */
    void recordErase(sim::Time done);

    /**
     * Note a block retirement. Spare accounting must survive any
     * crash, so the record is made durable immediately (barrier).
     */
    void recordRetire();
    /** @} */

    /**
     * Flush barrier: force the open journal page to flash. After this
     * returns, every record issued so far survives power loss.
     */
    void flushBarrier();

    /**
     * Checkpoint: rewrite the full mapping table to flash and truncate
     * the journal. Implies a flush barrier.
     */
    void checkpoint();

    /** @name Power-loss transitions (called by recovery only). @{ */

    /** Forget trims that never reached flash; returns how many. */
    std::uint64_t dropVolatileTrims();

    /** Clear the mapping table ahead of the recovery rebuild. */
    void resetMapForRecovery();

    /** Install one recovered winner into the mapping table. */
    void installRecovered(flash::Lpn lpn, const MapEntry &e);

    /** Durable trim sequence for @p lpn (0 = never trimmed). */
    std::uint64_t durableTrimSeq(flash::Lpn lpn) const;
    /** @} */

    /** @name Introspection. @{ */

    /** Highest sequence number issued so far (0 = none). */
    std::uint64_t seq() const { return seq_; }

    /** Highest sequence number guaranteed on flash. */
    std::uint64_t durableSeq() const { return durableSeq_; }

    /** Records buffered in the open (unflushed) journal page. */
    std::uint32_t openPageRecords() const { return openRecords_; }

    /** Journal pages on flash since the last checkpoint. */
    std::uint64_t pagesSinceCheckpoint() const
    {
        return pagesSinceCheckpoint_;
    }

    /** Pages the last checkpoint image occupies on flash. */
    std::uint64_t checkpointPages() const { return checkpointPages_; }

    /** Completion time of the most recent erase (0 = none). */
    sim::Time lastEraseDone() const { return lastEraseDone_; }

    const JournalConfig &config() const { return cfg_; }
    const JournalStats &stats() const { return stats_; }
    /** @} */

    /** @name Snapshot image (core/binio.hh). @{ */
    void save(core::BinWriter &w) const;
    void load(core::BinReader &r);
    /** @} */

  private:
    /** Append one record: bump seq, flush the page when it fills. */
    std::uint64_t append();

    PageMap &map_;
    JournalConfig cfg_;
    JournalStats stats_;

    std::uint64_t seq_ = 0;
    std::uint64_t durableSeq_ = 0;
    std::uint32_t openRecords_ = 0;
    std::uint64_t recordsSinceCheckpoint_ = 0;
    std::uint64_t pagesSinceCheckpoint_ = 0;
    std::uint64_t checkpointPages_ = 0;
    sim::Time lastEraseDone_ = 0;

    /**
     * Per-lpn sequence of the latest trim (0 = none). Sized lazily on
     * the first trim; most workloads never allocate it.
     */
    std::vector<std::uint64_t> trimSeq_;
};

} // namespace emmcsim::ftl

#endif // EMMCSIM_FTL_JOURNAL_HH
