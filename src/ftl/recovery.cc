/**
 * @file
 * Ftl::powerFailAndRecover: the power-up recovery procedure.
 *
 * Lives in its own translation unit (with journal.cc) on the other
 * side of the emmclint `durable-ftl-mutation` fence: recovery is the
 * one consumer allowed to rebuild the mapping table wholesale, and it
 * does so exclusively through the MetaJournal recovery API.
 *
 * State rebuild vs cost model: the simulator rebuilds the mapping by
 * scanning the OOB (lpn, seq) stamps of *every* written page — a
 * shortcut that is exact because those stamps are the ground truth a
 * real controller's checkpoint+journal merely caches. The *time*
 * charged, however, follows the realistic protocol: read the last
 * checkpoint, replay the journal pages written since, OOB-scan only
 * the blocks that were open at the cut, re-run interrupted erases,
 * and write a fresh checkpoint.
 */

#include <vector>

#include "ftl/ftl.hh"
#include "sim/logging.hh"

namespace emmcsim::ftl {

RecoveryReport
Ftl::powerFailAndRecover(sim::Time crash_time)
{
    RecoveryReport rep;
    const auto &geom = array_.geometry();
    const auto &timing = array_.timing();

    // 1. Tear the in-flight host program. The flash array mutates
    // state eagerly at issue time, so a program whose completion lies
    // beyond the cut left a half-programmed page: its OOB stamps are
    // unreadable and the data is gone. Event ordering guarantees the
    // command's completion had not fired, so the host never saw an
    // acknowledgment for it (rolling back is legal).
    if (lastHostProgram_.valid && lastHostProgram_.done > crash_time) {
        auto &bp = array_.plane(lastHostProgram_.planeLinear)
                       .pool(lastHostProgram_.pool);
        bp.tearPage(lastHostProgram_.ppn);
        ++rep.tornPages;
    }
    lastHostProgram_.valid = false;

    // 2. Volatile trims (journaled but never flushed) are forgotten:
    // the trimmed data legally resurrects.
    rep.droppedTrims = journal_.dropVolatileTrims();

    // 3. An erase whose completion lies beyond the cut is re-run at
    // power-up. Block state already reads as erased (the simulator
    // committed it eagerly); only the re-erase time is charged.
    if (journal_.lastEraseDone() > crash_time) {
        ++rep.reErasedBlocks;
        rep.reEraseTime = timing.eraseLatency;
    }

    // 4. Rebuild the mapping from the OOB stamps. RAM validity state
    // is gone; collect the highest-seq copy of every logical unit.
    struct Winner
    {
        std::uint64_t seq = 0;
        std::uint32_t planeLinear = 0;
        std::uint16_t pool = 0;
        std::uint16_t unit = 0;
        flash::Ppn ppn{0};
    };
    std::vector<Winner> winners(map_.logicalUnits());

    journal_.resetMapForRecovery();
    for (std::uint32_t pl = 0; pl < geom.planeCount(); ++pl) {
        for (std::uint32_t k = 0; k < geom.pools.size(); ++k) {
            auto &bp = array_.plane(pl).pool(k);
            const bool open = bp.activeBlock() >= 0;
            bp.beginRecoveryScan();
            const std::uint32_t ppb = bp.pagesPerBlock();
            for (std::uint32_t b = 0; b < bp.blockCount(); ++b) {
                const flash::BlockId bid{b};
                if (bp.blockFree(bid) || bp.blockRetired(bid))
                    continue;
                const std::uint32_t written =
                    std::min(bp.writtenPages(bid), ppb);
                for (std::uint32_t pg = 0; pg < written; ++pg) {
                    const flash::Ppn ppn =
                        units::blockFirstPage(bid, ppb) + pg;
                    ++rep.scannedPages;
                    const std::uint64_t seq = bp.pageSeq(ppn);
                    if (seq == 0)
                        continue; // torn or sealed-over page
                    for (std::uint32_t u = 0; u < bp.unitsPerPage();
                         ++u) {
                        const flash::Lpn lpn = bp.lpnAt(ppn, u);
                        if (lpn == flash::kNoLpn)
                            continue;
                        auto &win = winners[static_cast<std::size_t>(
                            lpn.value())];
                        if (seq > win.seq) {
                            if (win.seq != 0)
                                ++rep.staleCopies;
                            win.seq = seq;
                            win.planeLinear = pl;
                            win.pool = static_cast<std::uint16_t>(k);
                            win.unit = static_cast<std::uint16_t>(u);
                            win.ppn = ppn;
                        } else {
                            ++rep.staleCopies;
                        }
                    }
                }
            }
            // Cost model: a real controller OOB-scans only the blocks
            // its checkpoint had not sealed — the ones open at the cut.
            if (open) {
                const flash::BlockId ab{static_cast<std::uint32_t>(
                    bp.activeBlock())};
                rep.openBlockScanPages +=
                    std::min(bp.writtenPages(ab), ppb);
            }
            bp.sealOpenBlocks();
            if (open)
                ++rep.sealedBlocks;
        }
    }

    // 5. Install the winners, honouring durable trims: a trim recorded
    // after the winner was written voids it.
    for (std::uint64_t l = 0; l < winners.size(); ++l) {
        const Winner &win = winners[l];
        if (win.seq == 0)
            continue;
        const flash::Lpn lpn{static_cast<std::int64_t>(l)};
        if (journal_.durableTrimSeq(lpn) > win.seq) {
            ++rep.trimmedWinners;
            continue;
        }
        MapEntry e;
        e.planeLinear = static_cast<std::int32_t>(win.planeLinear);
        e.pool = win.pool;
        e.ppn = win.ppn;
        e.unit = win.unit;
        journal_.installRecovered(lpn, e);
        array_.plane(win.planeLinear)
            .pool(win.pool)
            .revalidateUnit(win.ppn, win.unit);
        ++rep.recoveredUnits;
    }

    // 6. Volatile placement state restarts from scratch.
    alloc_.resetCursors();

    // 7. Time the realistic protocol. Metadata pages live in the
    // default-read pool; open-block OOB scans and torn-page probes pay
    // that block's pool read latency.
    const auto &meta = timing.pools[cfg_.defaultReadPool];
    rep.checkpointPagesRead = journal_.checkpointPages();
    rep.journalPagesRead = journal_.pagesSinceCheckpoint() +
                           (journal_.openPageRecords() > 0 ? 1 : 0);
    rep.checkpointReadTime =
        static_cast<sim::Time>(rep.checkpointPagesRead) *
        meta.readLatency;
    rep.journalReplayTime =
        static_cast<sim::Time>(rep.journalPagesRead) * meta.readLatency;
    rep.scanTime =
        static_cast<sim::Time>(rep.openBlockScanPages + rep.tornPages) *
        meta.readLatency;

    // 8. A fresh checkpoint closes recovery so a second crash never
    // replays this one's work.
    journal_.checkpoint();
    rep.checkpointWriteTime =
        static_cast<sim::Time>(journal_.checkpointPages()) *
        meta.programLatency;

    rep.totalTime = rep.checkpointReadTime + rep.journalReplayTime +
                    rep.scanTime + rep.reEraseTime +
                    rep.checkpointWriteTime;

    EMMCSIM_LOG_DEBUG(
        "ftl", "power-up recovery: " +
                   std::to_string(rep.recoveredUnits) + " units, " +
                   std::to_string(rep.tornPages) + " torn, " +
                   std::to_string(rep.droppedTrims) + " trims dropped, " +
                   std::to_string(rep.totalTime) + " ns");
    notifyAudit();
    return rep;
}

} // namespace emmcsim::ftl
