#include "ftl/journal.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace emmcsim::ftl {

MetaJournal::MetaJournal(PageMap &map, const JournalConfig &cfg)
    : map_(map), cfg_(cfg)
{
    EMMCSIM_ASSERT(cfg_.recordsPerPage >= 1,
                   "journal page must hold at least one record");
    EMMCSIM_ASSERT(cfg_.checkpointEveryRecords >= cfg_.recordsPerPage,
                   "checkpoint interval below one journal page");
    // A device ships with a clean checkpoint of the (empty) table.
    checkpointPages_ =
        (map_.logicalUnits() + cfg_.recordsPerPage - 1) /
        cfg_.recordsPerPage;
}

std::uint64_t
MetaJournal::append()
{
    ++seq_;
    if (++openRecords_ >= cfg_.recordsPerPage) {
        // Page buffer full: it reaches flash piggybacked on the data
        // stream (OOB), making everything up to here durable.
        durableSeq_ = seq_;
        openRecords_ = 0;
        ++stats_.pagesFlushed;
        ++pagesSinceCheckpoint_;
    }
    if (++recordsSinceCheckpoint_ >= cfg_.checkpointEveryRecords)
        checkpoint();
    return seq_;
}

std::uint64_t
MetaJournal::recordWrite(flash::Lpn lpn, const MapEntry &e)
{
    map_.set(lpn, e);
    ++stats_.writeRecords;
    return append();
}

std::uint64_t
MetaJournal::recordRelocation(flash::Lpn lpn, const MapEntry &e)
{
    map_.set(lpn, e);
    ++stats_.relocRecords;
    return append();
}

std::uint64_t
MetaJournal::recordTrim(flash::Lpn lpn)
{
    map_.clear(lpn);
    ++stats_.trimRecords;
    const std::uint64_t s = append();
    if (trimSeq_.empty())
        trimSeq_.assign(map_.logicalUnits(), 0);
    trimSeq_[static_cast<std::size_t>(lpn.value())] = s;
    return s;
}

void
MetaJournal::recordErase(sim::Time done)
{
    ++stats_.eraseRecords;
    lastEraseDone_ = std::max(lastEraseDone_, done);
    append();
}

void
MetaJournal::recordRetire()
{
    ++stats_.retireRecords;
    append();
    // Spare/bad-block accounting must never roll back across a crash.
    flushBarrier();
}

void
MetaJournal::flushBarrier()
{
    if (openRecords_ > 0) {
        openRecords_ = 0;
        ++stats_.barrierFlushes;
        ++pagesSinceCheckpoint_;
    }
    durableSeq_ = seq_;
}

void
MetaJournal::checkpoint()
{
    flushBarrier();
    checkpointPages_ =
        (map_.logicalUnits() + cfg_.recordsPerPage - 1) /
        cfg_.recordsPerPage;
    pagesSinceCheckpoint_ = 0;
    recordsSinceCheckpoint_ = 0;
    ++stats_.checkpoints;
}

std::uint64_t
MetaJournal::dropVolatileTrims()
{
    std::uint64_t dropped = 0;
    for (std::uint64_t &s : trimSeq_) {
        if (s > durableSeq_) {
            s = 0;
            ++dropped;
        }
    }
    stats_.droppedTrims += dropped;
    return dropped;
}

void
MetaJournal::resetMapForRecovery()
{
    map_.reset();
}

void
MetaJournal::installRecovered(flash::Lpn lpn, const MapEntry &e)
{
    map_.set(lpn, e);
}

std::uint64_t
MetaJournal::durableTrimSeq(flash::Lpn lpn) const
{
    if (trimSeq_.empty())
        return 0;
    return trimSeq_[static_cast<std::size_t>(lpn.value())];
}

void
MetaJournal::save(core::BinWriter &w) const
{
    w.pod(stats_);
    w.u64(seq_);
    w.u64(durableSeq_);
    w.u32(openRecords_);
    w.u64(recordsSinceCheckpoint_);
    w.u64(pagesSinceCheckpoint_);
    w.u64(checkpointPages_);
    w.i64(lastEraseDone_);
    w.sparseU64(trimSeq_);
}

void
MetaJournal::load(core::BinReader &r)
{
    r.pod(stats_);
    seq_ = r.u64();
    durableSeq_ = r.u64();
    openRecords_ = r.u32();
    recordsSinceCheckpoint_ = r.u64();
    pagesSinceCheckpoint_ = r.u64();
    checkpointPages_ = r.u64();
    lastEraseDone_ = r.i64();
    r.sparseU64(trimSeq_);
    if (!trimSeq_.empty() && trimSeq_.size() != map_.logicalUnits())
        r.fail();
}

} // namespace emmcsim::ftl
