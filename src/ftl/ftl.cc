#include "ftl/ftl.hh"

#include <algorithm>
#include <unordered_map>

#include "sim/logging.hh"

namespace emmcsim::ftl {

std::uint64_t
Ftl::exportedUnits(const flash::FlashArray &array, double op_ratio)
{
    if (op_ratio < 0.0 || op_ratio >= 1.0)
        sim::fatal("over-provisioning ratio must be in [0, 1)");
    auto raw = array.geometry().capacityUnits();
    return static_cast<std::uint64_t>(
        static_cast<double>(raw) * (1.0 - op_ratio));
}

Ftl::Ftl(flash::FlashArray &array, const FtlConfig &cfg)
    : array_(array),
      cfg_(cfg),
      map_(exportedUnits(array, cfg.opRatio)),
      alloc_(cfg.alloc, array.geometry().planeCount(),
             static_cast<std::uint32_t>(array.geometry().pools.size()),
             array.geometry().dieCount()),
      gc_(array, map_, cfg.gc)
{
    if (cfg_.defaultReadPool >= array.geometry().pools.size())
        sim::fatal("defaultReadPool out of range");
}

sim::Time
Ftl::writeGroup(std::uint32_t pool, const std::vector<flash::Lpn> &lpns,
                sim::Time earliest)
{
    const auto &geom = array_.geometry();
    EMMCSIM_ASSERT(pool < geom.pools.size(), "writeGroup pool range");
    const std::uint32_t upp = geom.pools[pool].unitsPerPage();
    EMMCSIM_ASSERT(!lpns.empty() && lpns.size() <= upp,
                   "writeGroup size must be 1..unitsPerPage");

    // A plane-pool can serve the write if it has pages beyond the GC
    // reserve or space it can reclaim. A pool whose planes are all
    // exhausted (live data exceeds the pool's share — possible under
    // HPS when one size class dominates) overflows into another pool;
    // the paper never hits this because it replays on new devices.
    const std::uint64_t reserve_blocks = cfg_.gc.hardFreeBlocks;
    auto plane_viable = [&](std::uint32_t pl, std::uint32_t k) {
        const auto &bp = array_.plane(pl).pool(k);
        const std::uint64_t reserve =
            reserve_blocks * bp.pagesPerBlock();
        return bp.freePageCount() > reserve || gc_.canReclaim(pl, k);
    };

    const std::uint32_t planes = geom.planeCount();
    std::uint32_t plane = alloc_.nextPlane(pool, lpns.front());
    std::uint32_t tried = 0;
    while (tried < planes && !plane_viable(plane, pool)) {
        plane = (plane + 1) % planes;
        ++tried;
    }
    if (tried == planes) {
        // Overflow: redirect to another pool that still has room.
        for (std::uint32_t k = 0; k < geom.pools.size(); ++k) {
            if (k == pool)
                continue;
            bool viable = false;
            for (std::uint32_t pl = 0; pl < planes && !viable; ++pl)
                viable = plane_viable(pl, k);
            if (!viable)
                continue;
            ++stats_.overflowRedirects;
            const std::uint32_t other_upp =
                geom.pools[k].unitsPerPage();
            sim::Time done = earliest;
            for (std::size_t i = 0; i < lpns.size(); i += other_upp) {
                std::vector<flash::Lpn> chunk(
                    lpns.begin() + static_cast<std::ptrdiff_t>(i),
                    lpns.begin() +
                        static_cast<std::ptrdiff_t>(std::min(
                            i + other_upp, lpns.size())));
                done = std::max(done, writeGroup(k, chunk, earliest));
            }
            return done;
        }
        sim::fatal("device out of reclaimable space in every pool "
                   "(raise over-provisioning)");
    }

    sim::Time t = gc_.ensureFreePage(plane, pool, earliest);

    auto &bp = array_.plane(plane).pool(pool);
    flash::Ppn ppn = bp.allocatePage();

    // Stale out any previous locations of these units.
    for (flash::Lpn lpn : lpns) {
        const MapEntry &old = map_.lookup(lpn);
        if (old.mapped()) {
            array_.plane(static_cast<std::uint32_t>(old.planeLinear))
                .pool(old.pool)
                .invalidateUnit(old.ppn, old.unit);
        }
    }

    flash::PageAddr addr = flash::addrFromPlaneLinear(geom, plane);
    addr.pool = pool;
    const std::uint32_t ppb = geom.poolPagesPerBlock(pool);
    addr.block = static_cast<std::uint32_t>(ppn / ppb);
    addr.page = static_cast<std::uint32_t>(ppn % ppb);
    flash::OpResult res = array_.program(addr, t);

    for (std::uint32_t u = 0; u < lpns.size(); ++u) {
        bp.setUnit(ppn, u, lpns[u]);
        MapEntry e;
        e.planeLinear = static_cast<std::int32_t>(plane);
        e.pool = static_cast<std::uint16_t>(pool);
        e.ppn = ppn;
        e.unit = static_cast<std::uint16_t>(u);
        map_.set(lpns[u], e);
    }

    stats_.hostUnitsWritten += lpns.size();
    stats_.hostBytesConsumed += geom.pools[pool].pageBytes;
    ++stats_.hostProgramOps;
    notifyAudit();
    return res.done;
}

sim::Time
Ftl::readUnits(flash::Lpn start, std::uint32_t n, sim::Time earliest)
{
    EMMCSIM_ASSERT(start >= 0, "readUnits negative lpn");
    EMMCSIM_ASSERT(static_cast<std::uint64_t>(start) + n <=
                       map_.logicalUnits(),
                   "readUnits past logical capacity");
    if (n == 0)
        return earliest;

    const auto &geom = array_.geometry();
    sim::Time done = earliest;

    // Time one pseudo page read: a deterministic location in the pool
    // holding unit_count units of never-written data.
    auto read_pseudo = [&](std::uint32_t pool, flash::Lpn first_lpn,
                           std::uint32_t unit_count) {
        const std::uint32_t upp = geom.pools[pool].unitsPerPage();
        const std::uint32_t ppb = geom.poolPagesPerBlock(pool);
        const std::uint64_t pool_pages =
            static_cast<std::uint64_t>(geom.pools[pool].blocksPerPlane) *
            ppb;
        const std::uint64_t pseudo =
            static_cast<std::uint64_t>(first_lpn) / upp;
        // Spread consecutive pseudo pages over dies first, mirroring
        // the die-interleaved order the write allocator would have
        // used to lay this data out.
        const std::uint32_t dies = geom.dieCount();
        const auto die = static_cast<std::uint32_t>(pseudo % dies);
        const auto plane_in_die = static_cast<std::uint32_t>(
            (pseudo / dies) % geom.planesPerDie);
        flash::PageAddr a = flash::addrFromPlaneLinear(
            geom, die * geom.planesPerDie + plane_in_die);
        a.pool = pool;
        const flash::Ppn ppn = pseudo % pool_pages;
        a.block = static_cast<std::uint32_t>(ppn / ppb);
        a.page = static_cast<std::uint32_t>(ppn % ppb);
        const std::uint64_t bytes =
            static_cast<std::uint64_t>(unit_count) * sim::kUnitBytes;
        done = std::max(done, array_.read(a, earliest, bytes).done);
        ++stats_.hostReadOps;
    };

    // Time a run of unmapped units: as laid out by the scheme's own
    // write split when a pseudo-read distributor is installed,
    // otherwise as pages of the default pool.
    std::vector<PageGroup> pseudo_groups;
    auto read_unmapped_run = [&](flash::Lpn run_start,
                                 std::uint32_t run_len) {
        if (pseudoDist_ != nullptr) {
            pseudo_groups.clear();
            pseudoDist_->splitWrite(run_start, run_len, pseudo_groups);
            for (const PageGroup &g : pseudo_groups) {
                read_pseudo(g.pool, g.lpns.front(),
                            static_cast<std::uint32_t>(g.lpns.size()));
            }
            return;
        }
        const std::uint32_t pool = cfg_.defaultReadPool;
        const std::uint32_t upp = geom.pools[pool].unitsPerPage();
        std::uint32_t i = 0;
        while (i < run_len) {
            std::uint32_t take = std::min(upp, run_len - i);
            read_pseudo(pool, run_start + i, take);
            i += take;
        }
    };

    // Group mapped units by the physical page that holds them;
    // accumulate unmapped units into maximal runs.
    struct Group
    {
        flash::PageAddr addr;
        std::uint32_t units = 0;
    };
    std::unordered_map<std::uint64_t, Group> groups;
    groups.reserve(n);

    flash::Lpn run_start = 0;
    std::uint32_t run_len = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
        flash::Lpn lpn = start + i;
        const MapEntry &e = map_.lookup(lpn);
        if (!e.mapped()) {
            if (run_len == 0)
                run_start = lpn;
            ++run_len;
            continue;
        }
        if (run_len > 0) {
            read_unmapped_run(run_start, run_len);
            run_len = 0;
        }
        const auto plane = static_cast<std::uint32_t>(e.planeLinear);
        std::uint64_t key = (static_cast<std::uint64_t>(plane) << 40) ^
                            (static_cast<std::uint64_t>(e.pool) << 36) ^
                            e.ppn;
        auto [it, fresh] = groups.try_emplace(key);
        if (fresh) {
            flash::PageAddr a = flash::addrFromPlaneLinear(geom, plane);
            a.pool = e.pool;
            const std::uint32_t eppb = geom.poolPagesPerBlock(e.pool);
            a.block = static_cast<std::uint32_t>(e.ppn / eppb);
            a.page = static_cast<std::uint32_t>(e.ppn % eppb);
            it->second.addr = a;
        }
        ++it->second.units;
    }
    if (run_len > 0)
        read_unmapped_run(run_start, run_len);

    for (const auto &[key, g] : groups) {
        (void)key;
        std::uint64_t bytes =
            static_cast<std::uint64_t>(g.units) * sim::kUnitBytes;
        flash::OpResult res = array_.read(g.addr, earliest, bytes);
        done = std::max(done, res.done);
        ++stats_.hostReadOps;
    }
    stats_.hostUnitsRead += n;
    return done;
}

bool
Ftl::installGroup(std::uint32_t pool,
                  const std::vector<flash::Lpn> &lpns)
{
    const auto &geom = array_.geometry();
    EMMCSIM_ASSERT(pool < geom.pools.size(), "installGroup pool range");
    const std::uint32_t upp = geom.pools[pool].unitsPerPage();
    EMMCSIM_ASSERT(!lpns.empty() && lpns.size() <= upp,
                   "installGroup size must be 1..unitsPerPage");

    // Find a plane with space, starting from the allocator's choice.
    // The GC free-block reserve is never consumed: garbage collection
    // needs at least hardFreeBlocks erased blocks to relocate into.
    const std::uint32_t planes = geom.planeCount();
    std::uint32_t plane = alloc_.nextPlane(pool, lpns.front());
    std::uint32_t tried = 0;
    auto has_room = [&](const flash::BlockPool &bp) {
        const std::uint64_t reserve =
            static_cast<std::uint64_t>(cfg_.gc.hardFreeBlocks) *
            bp.pagesPerBlock();
        return bp.freePageCount() > reserve;
    };
    while (!has_room(array_.plane(plane).pool(pool))) {
        plane = (plane + 1) % planes;
        if (++tried >= planes)
            return false; // pool full: aged devices stay full here
    }

    auto &bp = array_.plane(plane).pool(pool);
    flash::Ppn ppn = bp.allocatePage();
    for (flash::Lpn lpn : lpns) {
        const MapEntry &old = map_.lookup(lpn);
        if (old.mapped()) {
            array_.plane(static_cast<std::uint32_t>(old.planeLinear))
                .pool(old.pool)
                .invalidateUnit(old.ppn, old.unit);
        }
    }
    for (std::uint32_t u = 0; u < lpns.size(); ++u) {
        bp.setUnit(ppn, u, lpns[u]);
        MapEntry e;
        e.planeLinear = static_cast<std::int32_t>(plane);
        e.pool = static_cast<std::uint16_t>(pool);
        e.ppn = ppn;
        e.unit = static_cast<std::uint16_t>(u);
        map_.set(lpns[u], e);
    }
    notifyAudit();
    return true;
}

void
Ftl::trim(flash::Lpn start, std::uint32_t n)
{
    for (std::uint32_t i = 0; i < n; ++i) {
        flash::Lpn lpn = start + i;
        const MapEntry &e = map_.lookup(lpn);
        if (e.mapped()) {
            array_.plane(static_cast<std::uint32_t>(e.planeLinear))
                .pool(e.pool)
                .invalidateUnit(e.ppn, e.unit);
            map_.clear(lpn);
        }
    }
    notifyAudit();
}

sim::Time
Ftl::idleGcStep(sim::Time now, bool &did_work)
{
    sim::Time done = gc_.idleStep(now, did_work);
    if (did_work)
        notifyAudit();
    return done;
}

sim::Time
Ftl::idleGc(sim::Time now, sim::Time deadline)
{
    sim::Time t = now;
    while (t < deadline) {
        bool did_work = false;
        sim::Time done = gc_.idleStep(t, did_work);
        if (!did_work)
            break;
        t = done;
    }
    return t - now;
}

} // namespace emmcsim::ftl
