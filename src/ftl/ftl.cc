#include "ftl/ftl.hh"

#include <algorithm>
#include <unordered_map>

#include "sim/logging.hh"

namespace emmcsim::ftl {

std::uint64_t
Ftl::exportedUnits(const flash::FlashArray &array, double op_ratio)
{
    if (op_ratio < 0.0 || op_ratio >= 1.0)
        sim::fatal("over-provisioning ratio must be in [0, 1)");
    auto raw = array.geometry().capacityUnits();
    return static_cast<std::uint64_t>(
        static_cast<double>(raw) * (1.0 - op_ratio));
}

Ftl::Ftl(flash::FlashArray &array, const FtlConfig &cfg)
    : array_(array),
      cfg_(cfg),
      map_(exportedUnits(array, cfg.opRatio)),
      alloc_(cfg.alloc, array.geometry().planeCount(),
             static_cast<std::uint32_t>(array.geometry().pools.size()),
             array.geometry().dieCount()),
      bbm_(array.geometry().planeCount(),
           static_cast<std::uint32_t>(array.geometry().pools.size()),
           cfg.bbm),
      journal_(map_, cfg.journal),
      gc_(array, map_, cfg.gc, bbm_, journal_)
{
    if (cfg_.defaultReadPool >= array.geometry().pools.size())
        sim::fatal("defaultReadPool out of range");
}

WriteResult
Ftl::writeGroup(std::uint32_t pool, const std::vector<flash::Lpn> &lpns,
                sim::Time earliest)
{
    const auto &geom = array_.geometry();
    EMMCSIM_ASSERT(pool < geom.pools.size(), "writeGroup pool range");
    const std::uint32_t upp = geom.pools[pool].unitsPerPage();
    EMMCSIM_ASSERT(!lpns.empty() && lpns.size() <= upp,
                   "writeGroup size must be 1..unitsPerPage");

    // Graceful degradation: a read-only device (spares or space
    // exhausted) rejects writes with a structured error; existing data
    // stays mapped and readable.
    if (bbm_.readOnly()) {
        ++stats_.rejectedWrites;
        return WriteResult{earliest, false, {}};
    }

    // A plane-pool can serve the write if it has pages beyond the GC
    // reserve or space it can reclaim. A pool whose planes are all
    // exhausted (live data exceeds the pool's share — possible under
    // HPS when one size class dominates) overflows into another pool;
    // the paper never hits this because it replays on new devices.
    const std::uint64_t reserve_blocks = cfg_.gc.hardFreeBlocks;
    auto plane_viable = [&](std::uint32_t pl, std::uint32_t k) {
        const auto &bp = array_.plane(pl).pool(k);
        const std::uint64_t reserve =
            reserve_blocks * bp.pagesPerBlock();
        return bp.freePageCount() > reserve || gc_.canReclaim(pl, k);
    };

    const std::uint32_t planes = geom.planeCount();
    std::uint32_t plane = alloc_.nextPlane(pool, lpns.front());
    std::uint32_t tried = 0;
    sim::Time t = earliest;
    bool placed = false;
    while (tried < planes) {
        if (plane_viable(plane, pool)) {
            t = gc_.ensureFreePage(plane, pool, earliest);
            // Erase failures during the GC round can leave the plane
            // with nothing allocatable after all; move on then.
            if (array_.plane(plane).pool(pool).hasFreePage()) {
                placed = true;
                break;
            }
        }
        plane = (plane + 1) % planes;
        ++tried;
    }
    if (!placed) {
        // Overflow: redirect to another pool that still has room.
        for (std::uint32_t k = 0; k < geom.pools.size(); ++k) {
            if (k == pool)
                continue;
            bool viable = false;
            for (std::uint32_t pl = 0; pl < planes && !viable; ++pl)
                viable = plane_viable(pl, k);
            if (!viable)
                continue;
            ++stats_.overflowRedirects;
            const std::uint32_t other_upp =
                geom.pools[k].unitsPerPage();
            WriteResult out{earliest, true, {}};
            for (std::size_t i = 0; i < lpns.size(); i += other_upp) {
                std::vector<flash::Lpn> chunk(
                    lpns.begin() + static_cast<std::ptrdiff_t>(i),
                    lpns.begin() +
                        static_cast<std::ptrdiff_t>(std::min(
                            i + other_upp, lpns.size())));
                WriteResult w = writeGroup(k, chunk, earliest);
                // The chunk finishing last is the critical chain; its
                // breakdown is the group's breakdown (conservation:
                // it sums to out.done − earliest by induction).
                if (w.done > out.done) {
                    out.done = w.done;
                    out.chain = w.chain;
                }
                out.accepted = out.accepted && w.accepted;
            }
            return out;
        }
        bbm_.declareSpaceExhausted();
        ++stats_.rejectedWrites;
        notifyAudit();
        return WriteResult{earliest, false, {}};
    }

    auto &bp = array_.plane(plane).pool(pool);
    flash::Ppn ppn = bp.allocatePage();

    flash::PageAddr addr = flash::addrFromPlaneLinear(geom, plane);
    addr.pool = pool;
    const std::uint32_t ppb = geom.poolPagesPerBlock(pool);
    addr.block = units::pageToBlock(ppn, ppb).value();
    addr.page = units::pageIndexInBlock(ppn, ppb);
    flash::OpResult res = array_.program(addr, t);

    // Attribution critical chain: GC held the write until t, the
    // first program decomposes into channel wait/transfer and array
    // wait/program, and any relocation below lumps into one phase.
    // The pieces sum exactly to done − earliest (DESIGN.md §14).
    FlashBreakdown chain;
    chain.gcStall = t - earliest;
    chain.busWait = res.start - t;
    chain.busXfer = res.busTime;
    chain.nandWait = (res.done - res.start) - res.busTime - res.cellTime;
    chain.nandCell = res.cellTime;
    const sim::Time first_done = res.done;

    // Program-failure relocation: flag the failed block suspect, seal
    // it (no further page may land there; the GC scrub path drains and
    // retires it) and re-issue the page to a fresh block.
    std::uint32_t attempts = 0;
    while (res.status == flash::OpStatus::ProgramFail) {
        bbm_.noteProgramFailure();
        const flash::BlockId bad = units::pageToBlock(ppn, ppb);
        bp.markSuspect(bad);
        bp.sealBlock(bad);
        EMMCSIM_ASSERT(++attempts <= 16,
                       "host-write relocation not converging under "
                       "program failures");
        t = gc_.ensureFreePage(plane, pool, res.done);
        if (!bp.hasFreePage()) {
            // Nowhere left to re-issue the page: degrade to read-only
            // with the old data still mapped (nothing was invalidated
            // yet), rather than losing the write silently.
            bbm_.declareSpaceExhausted();
            ++stats_.rejectedWrites;
            notifyAudit();
            chain.reloc = res.done - first_done;
            return WriteResult{res.done, false, chain};
        }
        ppn = bp.allocatePage();
        addr.block = units::pageToBlock(ppn, ppb).value();
        addr.page = units::pageIndexInBlock(ppn, ppb);
        res = array_.program(addr, t);
        ++stats_.relocatedPrograms;
        bbm_.noteRelocatedProgram();
    }

    // Stale out any previous locations of these units. This happens
    // only after the program succeeded, so every rejection path above
    // leaves the old mapping fully intact.
    for (flash::Lpn lpn : lpns) {
        const MapEntry &old = map_.lookup(lpn);
        if (old.mapped()) {
            array_.plane(static_cast<std::uint32_t>(old.planeLinear))
                .pool(old.pool)
                .invalidateUnit(old.ppn, old.unit);
        }
    }

    for (std::uint32_t u = 0; u < lpns.size(); ++u) {
        bp.setUnit(ppn, u, lpns[u]);
        MapEntry e;
        e.planeLinear = static_cast<std::int32_t>(plane);
        e.pool = static_cast<std::uint16_t>(pool);
        e.ppn = ppn;
        e.unit = static_cast<std::uint16_t>(u);
        bp.stampPageSeq(ppn, journal_.recordWrite(lpns[u], e));
    }

    // Remember the program so a power cut landing before res.done can
    // tear exactly this page (the write was never acknowledged).
    lastHostProgram_.valid = true;
    lastHostProgram_.planeLinear = plane;
    lastHostProgram_.pool = pool;
    lastHostProgram_.ppn = ppn;
    lastHostProgram_.done = res.done;

    stats_.hostUnitsWritten += lpns.size();
    stats_.hostBytesConsumed += geom.pools[pool].pageBytes;
    ++stats_.hostProgramOps;
    notifyAudit();
    chain.reloc = res.done - first_done;
    return WriteResult{res.done, true, chain};
}

ReadResult
Ftl::readUnits(flash::Lpn start, std::uint32_t n, sim::Time earliest)
{
    EMMCSIM_ASSERT(start.value() >= 0, "readUnits negative lpn");
    EMMCSIM_ASSERT(static_cast<std::uint64_t>(start.value()) + n <=
                       map_.logicalUnits(),
                   "readUnits past logical capacity");
    if (n == 0)
        return ReadResult{earliest, 0, {}};

    const auto &geom = array_.geometry();
    sim::Time done = earliest;
    std::uint32_t uncorrectable = 0;

    // Attribution critical chain: the page read finishing last (ties
    // keep the first) determines the request's flash time; decompose
    // exactly that op into array wait, sensing (base + retry ladder)
    // and channel wait/transfer. The pieces sum to done − earliest.
    FlashBreakdown chain;
    auto charge = [&](const flash::OpResult &res) {
        if (res.done <= done)
            return;
        done = res.done;
        chain = FlashBreakdown{};
        chain.nandWait = res.start - earliest;
        chain.nandCell = res.cellTime - res.retryTime;
        chain.retry = res.retryTime;
        chain.busWait =
            (res.done - res.busTime) - (res.start + res.cellTime);
        chain.busXfer = res.busTime;
    };

    // Time one pseudo page read: a deterministic location in the pool
    // holding unit_count units of never-written data.
    auto read_pseudo = [&](std::uint32_t pool, flash::Lpn first_lpn,
                           std::uint32_t unit_count) {
        const std::uint32_t upp = geom.pools[pool].unitsPerPage();
        const std::uint32_t ppb = geom.poolPagesPerBlock(pool);
        const std::uint64_t pool_pages =
            static_cast<std::uint64_t>(geom.pools[pool].blocksPerPlane) *
            ppb;
        const std::uint64_t pseudo =
            static_cast<std::uint64_t>(first_lpn.value()) / upp;
        // Spread consecutive pseudo pages over dies first, mirroring
        // the die-interleaved order the write allocator would have
        // used to lay this data out.
        const std::uint32_t dies = geom.dieCount();
        const auto die = static_cast<std::uint32_t>(pseudo % dies);
        const auto plane_in_die = static_cast<std::uint32_t>(
            (pseudo / dies) % geom.planesPerDie);
        flash::PageAddr a = flash::addrFromPlaneLinear(
            geom, die * geom.planesPerDie + plane_in_die);
        a.pool = pool;
        const flash::Ppn ppn{pseudo % pool_pages};
        a.block = units::pageToBlock(ppn, ppb).value();
        a.page = units::pageIndexInBlock(ppn, ppb);
        const units::Bytes bytes = units::unitsToBytes(unit_count);
        flash::OpResult res = array_.read(a, earliest, bytes);
        if (res.status == flash::OpStatus::Uncorrectable)
            ++uncorrectable;
        charge(res);
        ++stats_.hostReadOps;
    };

    // Time a run of unmapped units: as laid out by the scheme's own
    // write split when a pseudo-read distributor is installed,
    // otherwise as pages of the default pool.
    std::vector<PageGroup> pseudo_groups;
    auto read_unmapped_run = [&](flash::Lpn run_start,
                                 std::uint32_t run_len) {
        if (pseudoDist_ != nullptr) {
            pseudo_groups.clear();
            pseudoDist_->splitWrite(run_start, run_len, pseudo_groups);
            for (const PageGroup &g : pseudo_groups) {
                read_pseudo(g.pool, g.lpns.front(),
                            static_cast<std::uint32_t>(g.lpns.size()));
            }
            return;
        }
        const std::uint32_t pool = cfg_.defaultReadPool;
        const std::uint32_t upp = geom.pools[pool].unitsPerPage();
        std::uint32_t i = 0;
        while (i < run_len) {
            std::uint32_t take = std::min(upp, run_len - i);
            read_pseudo(pool, run_start + i, take);
            i += take;
        }
    };

    // Group mapped units by the physical page that holds them;
    // accumulate unmapped units into maximal runs.
    struct Group
    {
        flash::PageAddr addr;
        std::uint32_t units = 0;
    };
    // The groups are walked below to issue flash reads, so their order
    // feeds the fault-injector RNG and the request tracer: keep them in
    // first-touch order and use the hash map for key lookup only.
    std::vector<Group> groups;
    std::unordered_map<std::uint64_t, std::size_t> group_index;
    groups.reserve(n);
    group_index.reserve(n);

    flash::Lpn run_start{0};
    std::uint32_t run_len = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
        flash::Lpn lpn = start + i;
        const MapEntry &e = map_.lookup(lpn);
        if (!e.mapped()) {
            if (run_len == 0)
                run_start = lpn;
            ++run_len;
            continue;
        }
        if (run_len > 0) {
            read_unmapped_run(run_start, run_len);
            run_len = 0;
        }
        const auto plane = static_cast<std::uint32_t>(e.planeLinear);
        std::uint64_t key = (static_cast<std::uint64_t>(plane) << 40) ^
                            (static_cast<std::uint64_t>(e.pool) << 36) ^
                            e.ppn.value();
        auto [it, fresh] = group_index.try_emplace(key, groups.size());
        if (fresh) {
            flash::PageAddr a = flash::addrFromPlaneLinear(geom, plane);
            a.pool = e.pool;
            const std::uint32_t eppb = geom.poolPagesPerBlock(e.pool);
            a.block = units::pageToBlock(e.ppn, eppb).value();
            a.page = units::pageIndexInBlock(e.ppn, eppb);
            groups.push_back(Group{a, 0});
        }
        ++groups[it->second].units;
    }
    if (run_len > 0)
        read_unmapped_run(run_start, run_len);

    for (const Group &g : groups) {
        const units::Bytes bytes = units::unitsToBytes(g.units);
        flash::OpResult res = array_.read(g.addr, earliest, bytes);
        if (res.status == flash::OpStatus::Uncorrectable)
            ++uncorrectable;
        charge(res);
        ++stats_.hostReadOps;
    }
    stats_.hostUnitsRead += n;
    stats_.uncorrectableReads += uncorrectable;
    return ReadResult{done, uncorrectable, chain};
}

bool
Ftl::installGroup(std::uint32_t pool,
                  const std::vector<flash::Lpn> &lpns)
{
    const auto &geom = array_.geometry();
    EMMCSIM_ASSERT(pool < geom.pools.size(), "installGroup pool range");
    const std::uint32_t upp = geom.pools[pool].unitsPerPage();
    EMMCSIM_ASSERT(!lpns.empty() && lpns.size() <= upp,
                   "installGroup size must be 1..unitsPerPage");

    // Find a plane with space, starting from the allocator's choice.
    // The GC free-block reserve is never consumed: garbage collection
    // needs at least hardFreeBlocks erased blocks to relocate into.
    const std::uint32_t planes = geom.planeCount();
    std::uint32_t plane = alloc_.nextPlane(pool, lpns.front());
    std::uint32_t tried = 0;
    auto has_room = [&](const flash::BlockPool &bp) {
        const std::uint64_t reserve =
            static_cast<std::uint64_t>(cfg_.gc.hardFreeBlocks) *
            bp.pagesPerBlock();
        return bp.freePageCount() > reserve;
    };
    while (!has_room(array_.plane(plane).pool(pool))) {
        plane = (plane + 1) % planes;
        if (++tried >= planes)
            return false; // pool full: aged devices stay full here
    }

    auto &bp = array_.plane(plane).pool(pool);
    flash::Ppn ppn = bp.allocatePage();
    for (flash::Lpn lpn : lpns) {
        const MapEntry &old = map_.lookup(lpn);
        if (old.mapped()) {
            array_.plane(static_cast<std::uint32_t>(old.planeLinear))
                .pool(old.pool)
                .invalidateUnit(old.ppn, old.unit);
        }
    }
    for (std::uint32_t u = 0; u < lpns.size(); ++u) {
        bp.setUnit(ppn, u, lpns[u]);
        MapEntry e;
        e.planeLinear = static_cast<std::int32_t>(plane);
        e.pool = static_cast<std::uint16_t>(pool);
        e.ppn = ppn;
        e.unit = static_cast<std::uint16_t>(u);
        bp.stampPageSeq(ppn, journal_.recordWrite(lpns[u], e));
    }
    notifyAudit();
    return true;
}

void
Ftl::trim(flash::Lpn start, std::uint32_t n)
{
    for (std::uint32_t i = 0; i < n; ++i) {
        flash::Lpn lpn = start + i;
        const MapEntry &e = map_.lookup(lpn);
        if (e.mapped()) {
            array_.plane(static_cast<std::uint32_t>(e.planeLinear))
                .pool(e.pool)
                .invalidateUnit(e.ppn, e.unit);
            journal_.recordTrim(lpn);
        }
    }
    notifyAudit();
}

void
Ftl::flushBarrier()
{
    journal_.flushBarrier();
}

sim::Time
Ftl::idleGcStep(sim::Time now, bool &did_work)
{
    sim::Time done = gc_.idleStep(now, did_work);
    if (did_work)
        notifyAudit();
    return done;
}

sim::Time
Ftl::idleGc(sim::Time now, sim::Time deadline)
{
    sim::Time t = now;
    while (t < deadline) {
        bool did_work = false;
        sim::Time done = gc_.idleStep(t, did_work);
        if (!did_work)
            break;
        t = done;
    }
    return t - now;
}

void
Ftl::save(core::BinWriter &w) const
{
    map_.save(w);
    alloc_.save(w);
    bbm_.save(w);
    journal_.save(w);
    gc_.save(w);
    w.pod(stats_);
    w.pod(lastHostProgram_);
}

void
Ftl::load(core::BinReader &r)
{
    map_.load(r);
    alloc_.load(r);
    bbm_.load(r);
    journal_.load(r);
    gc_.load(r);
    r.pod(stats_);
    r.pod(lastHostProgram_);
}

} // namespace emmcsim::ftl
