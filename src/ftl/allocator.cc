#include "ftl/allocator.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace emmcsim::ftl {

PlaneAllocator::PlaneAllocator(AllocPolicy policy,
                               std::uint32_t plane_count,
                               std::uint32_t pool_count,
                               std::uint32_t die_count)
    : policy_(policy),
      planeCount_(plane_count),
      dieCount_(die_count == 0 ? plane_count : die_count)
{
    EMMCSIM_ASSERT(plane_count > 0, "allocator needs at least one plane");
    EMMCSIM_ASSERT(pool_count > 0, "allocator needs at least one pool");
    EMMCSIM_ASSERT(dieCount_ > 0 && plane_count % dieCount_ == 0,
                   "planes must divide evenly across dies");
    planesPerDie_ = plane_count / dieCount_;
    cursor_.assign(pool_count, 0);
}

std::uint32_t
PlaneAllocator::nextPlane(std::uint32_t pool, flash::Lpn lpn)
{
    EMMCSIM_ASSERT(pool < cursor_.size(), "pool out of range");
    switch (policy_) {
      case AllocPolicy::RoundRobin: {
        // Die-interleaved order: visit every die once before coming
        // back to another plane of the same die, so the array phases
        // of consecutive programs overlap.
        std::uint32_t k = cursor_[pool];
        cursor_[pool] = (k + 1) % planeCount_;
        std::uint32_t die = k % dieCount_;
        std::uint32_t plane_in_die = (k / dieCount_) % planesPerDie_;
        return die * planesPerDie_ + plane_in_die;
      }
      case AllocPolicy::StaticLpn:
        return static_cast<std::uint32_t>(
            static_cast<std::uint64_t>(lpn.value()) % planeCount_);
    }
    sim::panic("unknown allocation policy");
}

void
PlaneAllocator::resetCursors()
{
    std::fill(cursor_.begin(), cursor_.end(), 0u);
}

void
PlaneAllocator::save(core::BinWriter &w) const
{
    w.podVec(cursor_);
}

void
PlaneAllocator::load(core::BinReader &r)
{
    const std::size_t pools = cursor_.size();
    r.podVec(cursor_);
    if (cursor_.size() != pools)
        r.fail();
}

} // namespace emmcsim::ftl
