/**
 * @file
 * PageMap: logical-to-physical mapping at 4KB-unit granularity.
 *
 * Every logical page number (LPN, one 4KB unit) maps to a physical
 * location (plane, pool, physical page, unit-within-page). Multi-unit
 * physical pages (8KB) hold two adjacent mapping entries pointing at
 * the same page with different unit slots, which is the essence of the
 * HPS design: the map does not force page size to be uniform.
 */

#ifndef EMMCSIM_FTL_MAPPING_HH
#define EMMCSIM_FTL_MAPPING_HH

#include <cstdint>
#include <vector>

#include "flash/pool.hh"

namespace emmcsim::ftl {

/** Physical location of one logical 4KB unit. */
struct MapEntry
{
    std::int32_t planeLinear = -1; ///< -1 when unmapped
    std::uint16_t pool = 0;
    std::uint16_t unit = 0;        ///< 4KB slot within the page
    flash::Ppn ppn{0};

    bool mapped() const { return planeLinear >= 0; }
    bool operator==(const MapEntry &o) const = default;
};

/** Flat LPN -> MapEntry table. */
class PageMap
{
  public:
    /** @param logical_units Number of exported 4KB logical units. */
    explicit PageMap(std::uint64_t logical_units);

    /** Number of exported logical units. */
    std::uint64_t logicalUnits() const { return entries_.size(); }

    /** @return true when @p lpn has a physical location. */
    bool mapped(flash::Lpn lpn) const;

    /** Current location of @p lpn (entry.mapped() may be false). */
    const MapEntry &lookup(flash::Lpn lpn) const;

    /** Point @p lpn at a new physical location. */
    void set(flash::Lpn lpn, const MapEntry &e);

    /** Drop the mapping for @p lpn (trim/discard). */
    void clear(flash::Lpn lpn);

    /** Count of currently mapped units. */
    std::uint64_t mappedCount() const { return mappedCount_; }

    /**
     * Drop every mapping. Power-fail recovery rebuilds the table from
     * scratch out of the flash OOB scan (DESIGN.md §13); the pre-crash
     * RAM copy is exactly what did not survive.
     */
    void reset();

    /** @name Snapshot image (core/binio.hh). @{ */
    void save(core::BinWriter &w) const;
    void load(core::BinReader &r);
    /** @} */

  private:
    void checkRange(flash::Lpn lpn) const;

    std::vector<MapEntry> entries_;
    std::uint64_t mappedCount_ = 0;
};

} // namespace emmcsim::ftl

#endif // EMMCSIM_FTL_MAPPING_HH
