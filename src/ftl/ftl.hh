/**
 * @file
 * Ftl: the flash translation layer facade used by the eMMC controller.
 *
 * The FTL exports a flat space of 4KB logical units (a slice of the raw
 * capacity, the rest being over-provisioning), maps them onto physical
 * pages through PageMap, places writes with PlaneAllocator, and keeps
 * free space ahead of demand with GarbageCollector.
 *
 * The controller hands the FTL *page groups*: a write of one physical
 * page worth of logical units into a chosen pool. How a block request
 * is cut into page groups is scheme policy (4PS / 8PS / HPS) and lives
 * in the request distributor, not here.
 */

#ifndef EMMCSIM_FTL_FTL_HH
#define EMMCSIM_FTL_FTL_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "flash/array.hh"
#include "ftl/allocator.hh"
#include "ftl/badblock.hh"
#include "ftl/distributor.hh"
#include "ftl/gc.hh"
#include "ftl/journal.hh"
#include "ftl/mapping.hh"
#include "ftl/recovery.hh"
#include "sim/types.hh"

namespace emmcsim::ftl {

/** FTL configuration. */
struct FtlConfig
{
    /** Write-placement policy. */
    AllocPolicy alloc = AllocPolicy::RoundRobin;
    /** Garbage-collection thresholds. */
    GcConfig gc;
    /** Grown-bad-block spare budget. */
    BbmConfig bbm;
    /** Mapping journal/checkpoint protocol (crash consistency). */
    JournalConfig journal;
    /** Fraction of raw capacity reserved as over-provisioning. */
    double opRatio = 0.07;
    /**
     * Pool used to time reads of never-written logical units (replays
     * on a brand-new device read data the trace wrote before
     * collection began; the device still performs a real page read).
     */
    std::uint32_t defaultReadPool = 0;
};

/** Host-visible FTL counters. */
struct FtlStats
{
    std::uint64_t hostUnitsWritten = 0;  ///< 4KB units of host data
    std::uint64_t hostBytesConsumed = 0; ///< flash bytes used for them
    std::uint64_t hostUnitsRead = 0;
    std::uint64_t hostReadOps = 0;    ///< physical page reads issued
    std::uint64_t hostProgramOps = 0; ///< physical page programs issued
    /** Write groups redirected because their pool was exhausted. */
    std::uint64_t overflowRedirects = 0;
    /** Host pages re-issued to a fresh block after a program failure. */
    std::uint64_t relocatedPrograms = 0;
    /** Page reads that remained uncorrectable after the retry ladder. */
    std::uint64_t uncorrectableReads = 0;
    /** Write groups rejected because the device is read-only. */
    std::uint64_t rejectedWrites = 0;
};

/**
 * Critical-chain decomposition of one FTL call's elapsed time.
 *
 * The breakdown follows the operation whose completion determined the
 * call's returned `done` time (ties keep the first); overlapping work
 * on other channels/planes does not extend the chain and is not
 * charged. Invariant (the attribution ledger's conservation fence,
 * DESIGN.md §14): the fields sum exactly to `done − earliest`.
 */
struct FlashBreakdown
{
    /** Blocking garbage collection before placement (writes). */
    sim::Time gcStall = 0;
    /** Channel contention before the transfer. */
    sim::Time busWait = 0;
    /** Channel occupancy (command cycles + data transfer). */
    sim::Time busXfer = 0;
    /** Array-unit contention before the cell operation. */
    sim::Time nandWait = 0;
    /** Cell time: base sense (reads) or program (writes). */
    sim::Time nandCell = 0;
    /** Retry-ladder share of the sensing time (reads). */
    sim::Time retry = 0;
    /** Program-failure relocation re-issues (writes). */
    sim::Time reloc = 0;

    sim::Time
    total() const
    {
        return gcStall + busWait + busXfer + nandWait + nandCell +
               retry + reloc;
    }
};

/** Timed outcome of one write group. */
struct WriteResult
{
    /** Completion time of the program (== earliest when rejected). */
    sim::Time done = 0;
    /** False when the device is read-only and the data did not land. */
    bool accepted = true;
    /** Critical-chain split of done − earliest (attribution feed). */
    FlashBreakdown chain;
};

/** Timed outcome of one multi-unit read. */
struct ReadResult
{
    /** Completion time of the last page read. */
    sim::Time done = 0;
    /** Page reads whose data was lost (ECC + retry ladder failed). */
    std::uint32_t uncorrectablePages = 0;
    /** Critical-chain split of done − earliest (attribution feed). */
    FlashBreakdown chain;
};

/** The flash translation layer. */
class Ftl
{
  public:
    /**
     * @param array Flash array this FTL manages (must outlive the FTL).
     * @param cfg   Configuration.
     */
    Ftl(flash::FlashArray &array, const FtlConfig &cfg);

    /** Number of exported logical 4KB units. */
    std::uint64_t logicalUnits() const { return map_.logicalUnits(); }

    /**
     * Write one physical page of pool @p pool holding @p lpns.
     *
     * The group may be smaller than the page's unit capacity; the
     * remainder of the page is padding (wasted space), which is how a
     * pure-8KB device loses utilization on odd-sized requests.
     *
     * A program-status failure re-issues the page to a fresh block
     * and marks the failed one suspect; a read-only device (spares or
     * space exhausted) rejects the group instead of panicking.
     *
     * @param pool     Target page-size pool.
     * @param lpns     Logical units stored in the page (1..unitsPerPage).
     * @param earliest Earliest start time for the flash operations.
     * @return Completion time (after any blocking GC) and whether the
     *         data landed.
     */
    WriteResult writeGroup(std::uint32_t pool,
                           const std::vector<flash::Lpn> &lpns,
                           sim::Time earliest);

    /**
     * Read @p n logical units starting at @p start.
     *
     * Units sharing a physical page are fetched with a single page
     * read. Unmapped units (data written before the trace began) are
     * timed as if they had been laid out by the pseudo-read
     * distributor's split — set by the device to its own scheme
     * distributor — or, when none is set, as reads from the default
     * pool.
     *
     * @return Completion time of the last page read plus the count of
     *         uncorrectable page reads (lost data) among them.
     */
    ReadResult readUnits(flash::Lpn start, std::uint32_t n,
                         sim::Time earliest);

    /**
     * Install the distributor used to time unmapped reads. The
     * pointer is borrowed; the owner must outlive the FTL's use.
     */
    void setPseudoReadDistributor(const RequestDistributor *dist)
    {
        pseudoDist_ = dist;
    }

    /**
     * Discard @p n logical units starting at @p start (Ext4 discard /
     * eMMC TRIM). State-only: mappings drop and units invalidate.
     */
    void trim(flash::Lpn start, std::uint32_t n);

    /**
     * State-only page install used to pre-age a device before a
     * replay: places the group like writeGroup but charges no flash
     * time and no host-write accounting, and never garbage-collects.
     *
     * @retval true  The group was installed.
     * @retval false The pool has no room left outside the GC reserve
     *         (the caller may skip this group; an aged device's full
     *         region simply stays full).
     */
    bool installGroup(std::uint32_t pool,
                      const std::vector<flash::Lpn> &lpns);

    /**
     * Run idle garbage collection until @p deadline or until every
     * pool meets the soft threshold.
     * @return Flash-time consumed.
     */
    sim::Time idleGc(sim::Time now, sim::Time deadline);

    /**
     * Run a single incremental idle-GC step (a few page relocations,
     * possibly an erase). The device calls this once per idle tick so
     * an arriving request waits at most one step.
     *
     * @param did_work Set true when the step did anything.
     * @return Completion time (== @p now when idle GC is satisfied).
     */
    sim::Time idleGcStep(sim::Time now, bool &did_work);

    /** @return true once the device stopped accepting writes. */
    bool readOnly() const { return bbm_.readOnly(); }

    /**
     * Cache-flush barrier: force all journal records to flash. After
     * this returns, every mapping and trim issued so far survives a
     * sudden power-off.
     */
    void flushBarrier();

    /**
     * Model a sudden power-off at @p crash_time followed by power-up
     * recovery (DESIGN.md §13): tear the in-flight host program (if
     * its flash operation had not completed by the cut), forget
     * volatile trims, rebuild the mapping table from the out-of-band
     * (lpn, seq) stamps of all written pages, seal open blocks, reset
     * volatile placement state, re-run interrupted erases, and write a
     * fresh checkpoint. The report carries a flash-time cost model the
     * device charges before serving requests again.
     */
    RecoveryReport powerFailAndRecover(sim::Time crash_time);

    /**
     * Declare all in-flight host programs complete: a power-off
     * notification gives the device time to finish the open page, so
     * a subsequent powerFailAndRecover() tears nothing. Part of the
     * graceful-shutdown path only.
     */
    void markProgramsSettled() { lastHostProgram_.valid = false; }

    /** Grown-bad-block bookkeeping. */
    const BadBlockManager &badBlocks() const { return bbm_; }

    /** Crash-consistency journal (durable-metadata gateway). */
    const MetaJournal &journal() const { return journal_; }
    MetaJournal &journal() { return journal_; }

    const FtlStats &stats() const { return stats_; }
    const GcStats &gcStats() const { return gc_.stats(); }
    const PageMap &map() const { return map_; }
    flash::FlashArray &array() { return array_; }
    const flash::FlashArray &array() const { return array_; }
    const FtlConfig &config() const { return cfg_; }

    /** Hook invoked after each mutating FTL operation (audit support). */
    using AuditHook = std::function<void(const Ftl &)>;

    /**
     * Install a debug hook fired after every state-mutating operation
     * (writeGroup, installGroup, trim, idle-GC steps). The audit
     * subsystem uses it to validate mapping and free-space accounting
     * at mutation granularity; a null @p hook uninstalls. The hook
     * must not mutate the FTL.
     */
    void setAuditHook(AuditHook hook) { auditHook_ = std::move(hook); }

    /**
     * Test hook: mutable access to the page map so tests can plant
     * mapping corruptions for the check/ subsystem to catch. Never
     * call outside tests.
     */
    PageMap &mapForTest() { return map_; }

    /** @name Snapshot image (core/binio.hh). @{ */
    void save(core::BinWriter &w) const;
    void load(core::BinReader &r);
    /** @} */

  private:
    /** Fire the audit hook after a mutating operation. */
    void
    notifyAudit() const
    {
        if (auditHook_)
            auditHook_(*this);
    }

    static std::uint64_t exportedUnits(const flash::FlashArray &array,
                                       double op_ratio);

    flash::FlashArray &array_;
    FtlConfig cfg_;
    PageMap map_;
    PlaneAllocator alloc_;
    BadBlockManager bbm_;  ///< must precede gc_ (GC holds a reference)
    MetaJournal journal_;  ///< must precede gc_ (GC holds a reference)
    GarbageCollector gc_;
    FtlStats stats_;
    const RequestDistributor *pseudoDist_ = nullptr;
    AuditHook auditHook_;

    /**
     * The host page program most recently issued to the array. Flash
     * state mutates eagerly at issue time, so a power cut landing
     * before the program's completion time must undo it: recovery
     * tears exactly this page. GC copyback programs follow the
     * relocate-then-erase discipline and are crash-atomic by
     * construction (both copies exist until the erase), so only host
     * programs are tracked.
     */
    struct LastHostProgram
    {
        bool valid = false;
        std::uint32_t planeLinear = 0;
        std::uint32_t pool = 0;
        flash::Ppn ppn{0};
        sim::Time done = 0;
    };
    LastHostProgram lastHostProgram_;
};

} // namespace emmcsim::ftl

#endif // EMMCSIM_FTL_FTL_HH
