#include "ftl/wear.hh"

#include <algorithm>
#include <limits>

namespace emmcsim::ftl {

WearReport
computeWear(const flash::FlashArray &array)
{
    WearReport rep;
    rep.minEraseCount = std::numeric_limits<std::uint32_t>::max();
    std::uint64_t blocks = 0;
    std::uint64_t erase_sum = 0;

    const auto &geom = array.geometry();
    for (std::uint32_t p = 0; p < geom.planeCount(); ++p) {
        for (std::size_t k = 0; k < geom.pools.size(); ++k) {
            const flash::BlockPool &pool = array.plane(p).pool(k);
            rep.totalErases += pool.totalErases();
            rep.worstSpread =
                std::max(rep.worstSpread, pool.eraseSpread());
            for (std::uint32_t b = 0; b < pool.blockCount(); ++b) {
                std::uint32_t e = pool.eraseCount(flash::BlockId{b});
                rep.maxEraseCount = std::max(rep.maxEraseCount, e);
                rep.minEraseCount = std::min(rep.minEraseCount, e);
                erase_sum += e;
                ++blocks;
            }
        }
    }
    if (blocks == 0) {
        rep.minEraseCount = 0;
    } else {
        rep.meanEraseCount =
            static_cast<double>(erase_sum) / static_cast<double>(blocks);
    }
    for (std::size_t k = 0; k < geom.pools.size(); ++k)
        rep.bytesProgrammed += array.stats(k).bytesProgrammed;
    return rep;
}

double
writeAmplification(const flash::FlashArray &array, const Ftl &ftl)
{
    const std::uint64_t host_bytes =
        ftl.stats().hostUnitsWritten * sim::kUnitBytes;
    if (host_bytes == 0)
        return 0.0;

    // Physically programmed bytes: host pages (with padding) plus GC
    // copyback programs.
    std::uint64_t programmed = 0;
    const auto &geom = array.geometry();
    for (std::size_t k = 0; k < geom.pools.size(); ++k) {
        const flash::ArrayStats &st = array.stats(k);
        programmed += st.bytesProgrammed +
                      st.copybackPrograms * geom.pools[k].pageBytes;
    }
    return static_cast<double>(programmed) /
           static_cast<double>(host_bytes);
}

} // namespace emmcsim::ftl
