/**
 * @file
 * Plane allocation policy: which plane receives the next page program.
 *
 * SSDsim distinguishes static allocation (the LPN fixes the plane, so
 * sequential logical pages stripe deterministically) from dynamic
 * allocation (the controller picks the next plane round-robin for load
 * balance). Both are provided; the paper's case study uses the dynamic
 * policy, which is what lets a large request exploit all 8 planes
 * regardless of its starting address.
 */

#ifndef EMMCSIM_FTL_ALLOCATOR_HH
#define EMMCSIM_FTL_ALLOCATOR_HH

#include <cstdint>
#include <vector>

#include "flash/pool.hh"

namespace emmcsim::ftl {

/** Allocation strategies for write placement. */
enum class AllocPolicy
{
    RoundRobin, ///< dynamic: next plane per pool, skipping full planes
    StaticLpn,  ///< static: plane = lpn modulo plane count
};

/** Chooses the target plane for each page program. */
class PlaneAllocator
{
  public:
    /**
     * @param policy      Placement policy.
     * @param plane_count Number of planes in the array.
     * @param pool_count  Number of page-size pools per plane.
     * @param die_count   Number of dies; round-robin visits each die
     *        once before reusing one, so consecutive page programs of
     *        a large request overlap even without multi-plane
     *        commands. Defaults to plane_count (plain round-robin).
     */
    PlaneAllocator(AllocPolicy policy, std::uint32_t plane_count,
                   std::uint32_t pool_count, std::uint32_t die_count = 0);

    /**
     * Pick the plane for the next program into @p pool.
     *
     * @param pool Pool (page-size class) being written.
     * @param lpn  First LPN of the page (used by StaticLpn).
     */
    std::uint32_t nextPlane(std::uint32_t pool, flash::Lpn lpn);

    AllocPolicy policy() const { return policy_; }
    std::uint32_t planeCount() const { return planeCount_; }

    /**
     * Forget the round-robin cursors. Placement cursors are volatile
     * controller RAM; power-up recovery restarts them from zero.
     */
    void resetCursors();

    /** @name Snapshot image (core/binio.hh). @{ */
    void save(core::BinWriter &w) const;
    void load(core::BinReader &r);
    /** @} */

  private:
    AllocPolicy policy_;
    std::uint32_t planeCount_;
    std::uint32_t dieCount_;
    std::uint32_t planesPerDie_;
    std::vector<std::uint32_t> cursor_; ///< per-pool round-robin cursor
};

} // namespace emmcsim::ftl

#endif // EMMCSIM_FTL_ALLOCATOR_HH
