/**
 * @file
 * Power-up recovery report: what rebuilding the FTL after a sudden
 * power-off cost and found (DESIGN.md §13).
 *
 * The recovery procedure itself is Ftl::powerFailAndRecover (defined
 * in recovery.cc): tear the in-flight host program, forget volatile
 * trims, rebuild the mapping table from the out-of-band (lpn, seq)
 * stamps of every written page, seal the blocks that were open at the
 * cut, and write a fresh checkpoint. This header only carries the
 * result so emmc/ and obs/ can consume it without pulling in the FTL.
 */

#ifndef EMMCSIM_FTL_RECOVERY_HH
#define EMMCSIM_FTL_RECOVERY_HH

#include <cstdint>

#include "sim/types.hh"

namespace emmcsim::ftl {

/** Outcome and cost of one power-up recovery. */
struct RecoveryReport
{
    /** @name State found. @{ */
    std::uint64_t tornPages = 0;     ///< programs destroyed by the cut
    std::uint64_t droppedTrims = 0;  ///< volatile trims forgotten
    std::uint64_t scannedPages = 0;  ///< pages examined by the OOB scan
    std::uint64_t recoveredUnits = 0; ///< mapping winners installed
    std::uint64_t staleCopies = 0;   ///< older copies losing to a winner
    std::uint64_t trimmedWinners = 0; ///< winners voided by durable trims
    std::uint64_t reErasedBlocks = 0; ///< erases interrupted, re-run
    std::uint64_t sealedBlocks = 0;  ///< open blocks closed at power-up
    /** @} */

    /** @name Metadata read back (the realistic recovery protocol). @{ */
    std::uint64_t checkpointPagesRead = 0;
    std::uint64_t journalPagesRead = 0;
    std::uint64_t openBlockScanPages = 0; ///< OOB reads of open blocks
    /** @} */

    /** @name Cost model (flash time charged at power-up). @{ */
    sim::Time checkpointReadTime = 0;
    sim::Time journalReplayTime = 0;
    sim::Time scanTime = 0;
    sim::Time reEraseTime = 0;
    sim::Time checkpointWriteTime = 0; ///< fresh checkpoint at the end
    sim::Time totalTime = 0;
    /** @} */
};

} // namespace emmcsim::ftl

#endif // EMMCSIM_FTL_RECOVERY_HH
