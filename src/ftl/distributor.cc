#include "ftl/distributor.hh"

#include "sim/logging.hh"

namespace emmcsim::ftl {

SinglePoolDistributor::SinglePoolDistributor(std::uint32_t pool,
                                             std::uint32_t units_per_page,
                                             std::string label)
    : pool_(pool), unitsPerPage_(units_per_page), label_(std::move(label))
{
    EMMCSIM_ASSERT(units_per_page >= 1, "units per page must be >= 1");
}

void
SinglePoolDistributor::splitWrite(flash::Lpn first, std::uint32_t n,
                                  std::vector<PageGroup> &out) const
{
    EMMCSIM_ASSERT(n > 0, "splitWrite of zero units");
    std::uint32_t done = 0;
    while (done < n) {
        std::uint32_t take = std::min(unitsPerPage_, n - done);
        PageGroup g;
        g.pool = pool_;
        g.lpns.reserve(take);
        for (std::uint32_t i = 0; i < take; ++i)
            g.lpns.push_back(first + done + i);
        out.push_back(std::move(g));
        done += take;
    }
}

} // namespace emmcsim::ftl
