/**
 * @file
 * Wear and endurance accounting across the whole flash array.
 *
 * Section V motivates HPS partly through lifetime: with the same
 * capacity, a pure-8KB device holds fewer pages, so small random
 * writes consume its free pages sooner, trigger more garbage
 * collection, and burn more erase cycles. These helpers aggregate the
 * per-block erase counters into the metrics that argument needs:
 * total erases, write amplification, and the wear spread that the
 * simple wear-leveler (Implication 4) keeps small.
 */

#ifndef EMMCSIM_FTL_WEAR_HH
#define EMMCSIM_FTL_WEAR_HH

#include <cstdint>

#include "flash/array.hh"
#include "ftl/ftl.hh"

namespace emmcsim::ftl {

/** Array-wide wear summary. */
struct WearReport
{
    /** Total block erases across all plane-pools. */
    std::uint64_t totalErases = 0;
    /** Highest per-block erase count. */
    std::uint32_t maxEraseCount = 0;
    /** Lowest per-block erase count. */
    std::uint32_t minEraseCount = 0;
    /** Mean per-block erase count. */
    double meanEraseCount = 0.0;
    /** Worst per-pool spread between max and min (wear balance). */
    std::uint32_t worstSpread = 0;
    /** Flash bytes programmed (host + GC relocation + padding). */
    std::uint64_t bytesProgrammed = 0;
};

/** Aggregate the wear counters of every plane-pool of @p array. */
WearReport computeWear(const flash::FlashArray &array);

/**
 * Write amplification: flash bytes physically programmed per host
 * byte written. Padding (8PS half-pages) and GC relocation both
 * inflate it; 1.0 is the ideal.
 *
 * @return 0 when no host data has been written.
 */
double writeAmplification(const flash::FlashArray &array,
                          const Ftl &ftl);

} // namespace emmcsim::ftl

#endif // EMMCSIM_FTL_WEAR_HH
