#include "ftl/gc.hh"

#include <algorithm>
#include <limits>
#include <vector>

#include "sim/logging.hh"

namespace emmcsim::ftl {

GarbageCollector::GarbageCollector(flash::FlashArray &array, PageMap &map,
                                   GcConfig cfg, BadBlockManager &bbm,
                                   MetaJournal &journal)
    : array_(array), map_(map), cfg_(cfg), bbm_(bbm), journal_(journal)
{
    EMMCSIM_ASSERT(cfg_.hardFreeBlocks >= 1,
                   "GC needs at least one reserved free block");
    EMMCSIM_ASSERT(cfg_.softFreeBlocks >= cfg_.hardFreeBlocks,
                   "soft GC threshold below hard threshold");
}

std::int32_t
GarbageCollector::pickVictim(const flash::BlockPool &pool) const
{
    const std::uint32_t full_valid =
        pool.pagesPerBlock() * pool.unitsPerPage();
    std::int32_t victim = -1;
    double best_score = -1.0;
    for (std::uint32_t b = 0; b < pool.blockCount(); ++b) {
        const flash::BlockId bid{b};
        if (!pool.blockFull(bid))
            continue;
        if (static_cast<std::int32_t>(b) == pool.activeBlock())
            continue;
        // Retired blocks hold nothing and must never be touched again;
        // suspect blocks are drained by the scrub path, whose
        // retirement nets no free block (space-driven GC would spin on
        // them).
        if (pool.blockRetired(bid) || pool.blockSuspect(bid))
            continue;
        std::uint32_t valid = pool.validUnitsInBlock(bid);
        // Only blocks with at least one page worth of stale units net
        // free space after relocation; collecting anything fuller
        // would spin without progress.
        if (valid + pool.unitsPerPage() > full_valid)
            continue;

        double score = 0.0;
        switch (cfg_.victimPolicy) {
          case GcVictimPolicy::Greedy:
            // Higher score for fewer valid units.
            score = static_cast<double>(full_valid - valid);
            break;
          case GcVictimPolicy::CostBenefit: {
            double invalid = static_cast<double>(full_valid - valid);
            double age = static_cast<double>(pool.blockAge(bid)) + 1.0;
            score = age * invalid /
                    (2.0 * static_cast<double>(valid) + 1.0);
            break;
          }
        }
        if (score > best_score) {
            best_score = score;
            victim = static_cast<std::int32_t>(b);
        }
    }
    return victim;
}

sim::Time
GarbageCollector::collectOne(std::uint32_t plane_linear, std::uint32_t pool,
                             sim::Time earliest)
{
    auto &bp = array_.plane(plane_linear).pool(pool);
    std::int32_t victim = pickVictim(bp);
    if (victim < 0) {
        sim::fatal("GC cannot find a victim block: device is full of "
                   "valid data (raise over-provisioning)");
    }
    const flash::BlockId vb{static_cast<std::uint32_t>(victim)};
    const std::uint32_t ppb = bp.pagesPerBlock();
    const std::uint32_t upp = bp.unitsPerPage();

    flash::PageAddr base = flash::addrFromPlaneLinear(array_.geometry(),
                                                      plane_linear);
    base.pool = pool;

    // Gather the victim's live units, reading each source page once.
    struct LiveUnit
    {
        flash::Lpn lpn;
        flash::Ppn srcPpn;
        std::uint32_t srcUnit;
    };
    std::vector<LiveUnit> live;
    sim::Time t = earliest;
    for (std::uint32_t pg = 0; pg < ppb; ++pg) {
        flash::Ppn ppn = units::blockFirstPage(vb, ppb) + pg;
        if (bp.validUnitsInPage(ppn) == 0)
            continue;
        flash::PageAddr src = base;
        src.block = vb.value();
        src.page = pg;
        t = std::max(t, array_.copybackRead(src, t).done);
        for (std::uint32_t u = 0; u < upp; ++u) {
            if (bp.unitValid(ppn, u))
                live.push_back(LiveUnit{bp.lpnAt(ppn, u), ppn, u});
        }
    }

    // Compact the live units into fresh pages of the same plane-pool.
    std::size_t i = 0;
    while (i < live.size()) {
        flash::Ppn dst = copybackProgramChecked(bp, base, ppb, t);
        for (std::uint32_t u = 0; u < upp && i < live.size(); ++u, ++i) {
            const LiveUnit &lu = live[i];
            const MapEntry &cur = map_.lookup(lu.lpn);
            EMMCSIM_ASSERT(
                cur.mapped() &&
                    cur.planeLinear ==
                        static_cast<std::int32_t>(plane_linear) &&
                    cur.pool == pool && cur.ppn == lu.srcPpn &&
                    cur.unit == lu.srcUnit,
                "map and pool state diverged during GC");
            bp.invalidateUnit(lu.srcPpn, lu.srcUnit);
            bp.setUnit(dst, u, lu.lpn);
            MapEntry e;
            e.planeLinear = static_cast<std::int32_t>(plane_linear);
            e.pool = static_cast<std::uint16_t>(pool);
            e.ppn = dst;
            e.unit = static_cast<std::uint16_t>(u);
            bp.stampPageSeq(dst, journal_.recordRelocation(lu.lpn, e));
            ++stats_.relocatedUnits;
        }
    }

    // The victim now holds no live units; reclaim (erase or retire) it.
    return reclaimBlock(plane_linear, pool, vb, t);
}

flash::Ppn
GarbageCollector::copybackProgramChecked(flash::BlockPool &bp,
                                         flash::PageAddr base,
                                         std::uint32_t ppb, sim::Time &t)
{
    std::uint32_t attempts = 0;
    for (;;) {
        flash::Ppn dst = bp.allocatePage();
        flash::PageAddr dst_addr = base;
        dst_addr.block = units::pageToBlock(dst, ppb).value();
        dst_addr.page = units::pageIndexInBlock(dst, ppb);
        flash::OpResult pr = array_.copybackProgram(dst_addr, t);
        t = std::max(t, pr.done);
        if (pr.status != flash::OpStatus::ProgramFail)
            return dst;
        // The failed page is lost (it was allocated but holds
        // nothing); the block is flagged for scrub-and-retire and the
        // data re-issued to the next page. Unlike the host write
        // path, GC does not seal the block: sealing mid-collection
        // would burn the thin free reserve relocation depends on.
        bbm_.noteProgramFailure();
        bp.markSuspect(flash::BlockId{dst_addr.block});
        bbm_.noteRelocatedProgram();
        EMMCSIM_ASSERT(++attempts <= 16,
                       "GC copyback relocation not converging under "
                       "program failures");
        EMMCSIM_ASSERT(bp.hasFreePage(),
                       "GC ran out of relocation space mid-collection");
    }
}

sim::Time
GarbageCollector::reclaimBlock(std::uint32_t plane_linear,
                               std::uint32_t pool, flash::BlockId b,
                               sim::Time earliest)
{
    auto &bp = array_.plane(plane_linear).pool(pool);
    flash::PageAddr vaddr =
        flash::addrFromPlaneLinear(array_.geometry(), plane_linear);
    vaddr.pool = pool;
    vaddr.block = b.value();
    vaddr.page = 0;
    flash::OpResult er = array_.erase(vaddr, earliest);
    sim::Time t = std::max(earliest, er.done);

    if (er.status == flash::OpStatus::EraseFail) {
        bbm_.noteEraseFailure();
        bp.retireBlock(b);
        bbm_.recordRetirement(plane_linear, pool, b,
                              RetireCause::EraseFail);
        journal_.recordRetire();
        ++stats_.retiredBlocks;
    } else if (bp.blockSuspect(b)) {
        // A program-failed block is retired even when its erase
        // succeeds: the failure showed its cells can no longer be
        // trusted to program.
        bp.retireBlock(b);
        bbm_.recordRetirement(plane_linear, pool, b,
                              RetireCause::ProgramFail);
        journal_.recordRetire();
        ++stats_.retiredBlocks;
    } else {
        bp.eraseBlock(b);
        journal_.recordErase(t);
        ++stats_.erasedBlocks;
    }
    return t;
}

sim::Time
GarbageCollector::ensureFreePage(std::uint32_t plane_linear,
                                 std::uint32_t pool, sim::Time earliest)
{
    auto &bp = array_.plane(plane_linear).pool(pool);
    sim::Time t = earliest;
    // Reclaim while the free *pages* (free blocks plus the active
    // block's remainder) are down to the reserve. Triggering on pages
    // rather than whole blocks guarantees a collection round can
    // always relocate its victim's survivors (at most one block's
    // worth) into the space that remains.
    const std::uint64_t reserve_pages =
        static_cast<std::uint64_t>(cfg_.hardFreeBlocks) *
        bp.pagesPerBlock();
    std::uint32_t rounds = 0;
    while (bp.freePageCount() <= reserve_pages) {
        // Erase failures can shrink the pool until nothing reclaimable
        // remains; stop rebuilding the reserve then and let callers
        // dig into what is left (graceful degradation, not a panic).
        if (pickVictim(bp) < 0)
            break;
        EMMCSIM_ASSERT(rounds++ <= 2 * bp.blockCount(),
                       "blocking GC is not making progress (plane " +
                           std::to_string(plane_linear) + ", pool " +
                           std::to_string(pool) + ", free " +
                           std::to_string(bp.freeBlockCount()) + ")");
        sim::Time done = collectOne(plane_linear, pool, t);
        stats_.blockingTime += done - t;
        ++stats_.blockingRounds;
        t = done;
    }
    if (rounds > 0) {
        EMMCSIM_LOG_DEBUG(
            "gc", "blocking GC: " + std::to_string(rounds) +
                      " round(s) on plane " +
                      std::to_string(plane_linear) + " pool " +
                      std::to_string(pool) + ", " +
                      std::to_string(t - earliest) + " ns");
    }
    return t;
}

bool
GarbageCollector::canReclaim(std::uint32_t plane_linear,
                             std::uint32_t pool) const
{
    return pickVictim(array_.plane(plane_linear).pool(pool)) >= 0;
}

bool
GarbageCollector::findNeedyPool(double min_invalid,
                                std::uint32_t &plane_out,
                                std::uint32_t &pool_out) const
{
    const auto &geom = array_.geometry();
    std::uint32_t best_free = std::numeric_limits<std::uint32_t>::max();
    bool found = false;
    for (std::uint32_t p = 0; p < geom.planeCount(); ++p) {
        for (std::uint32_t k = 0; k < geom.pools.size(); ++k) {
            const auto &bp = array_.plane(p).pool(k);
            std::uint32_t fr = bp.freeBlockCount();
            if (fr >= cfg_.softFreeBlocks || fr >= best_free)
                continue;
            if (!bp.hasFreePage())
                continue; // relocation has nowhere to go
            std::int32_t victim = pickVictim(bp);
            if (victim < 0)
                continue;
            const double full = static_cast<double>(
                bp.pagesPerBlock() * bp.unitsPerPage());
            const double invalid =
                full - static_cast<double>(bp.validUnitsInBlock(
                           flash::BlockId{
                               static_cast<std::uint32_t>(victim)}));
            if (invalid / full < min_invalid)
                continue; // not worth the relocation traffic
            best_free = fr;
            plane_out = p;
            pool_out = k;
            found = true;
        }
    }
    return found;
}

sim::Time
GarbageCollector::idleRound(sim::Time earliest, bool &did_work)
{
    did_work = false;
    std::uint32_t plane = 0;
    std::uint32_t pool = 0;
    if (!findNeedyPool(cfg_.idleMinInvalidFraction, plane, pool))
        return earliest;

    sim::Time done = collectOne(plane, pool, earliest);
    stats_.idleTime += done - earliest;
    ++stats_.idleRounds;
    did_work = true;
    EMMCSIM_LOG_DEBUG("gc", "idle GC round on plane " +
                                std::to_string(plane) + " pool " +
                                std::to_string(pool) + ", " +
                                std::to_string(done - earliest) + " ns");
    return done;
}

sim::Time
GarbageCollector::relocateSome(std::uint32_t plane_linear,
                               std::uint32_t pool, flash::BlockId victim,
                               std::uint32_t max_pages,
                               sim::Time earliest)
{
    auto &bp = array_.plane(plane_linear).pool(pool);
    const std::uint32_t ppb = bp.pagesPerBlock();
    const std::uint32_t upp = bp.unitsPerPage();

    flash::PageAddr base =
        flash::addrFromPlaneLinear(array_.geometry(), plane_linear);
    base.pool = pool;

    sim::Time t = earliest;
    std::uint32_t moved = 0;
    for (std::uint32_t pg = 0; pg < ppb && moved < max_pages; ++pg) {
        flash::Ppn src_ppn = units::blockFirstPage(victim, ppb) + pg;
        if (bp.validUnitsInPage(src_ppn) == 0)
            continue;
        if (!bp.hasFreePage())
            break;

        flash::PageAddr src = base;
        src.block = victim.value();
        src.page = pg;
        t = std::max(t, array_.copybackRead(src, t).done);

        // One destination page per source page; an incremental step
        // does not compact across pages (slightly less dense, far
        // simpler preemption).
        flash::Ppn dst = copybackProgramChecked(bp, base, ppb, t);

        std::uint32_t dst_unit = 0;
        for (std::uint32_t u = 0; u < upp; ++u) {
            if (!bp.unitValid(src_ppn, u))
                continue;
            flash::Lpn lpn = bp.lpnAt(src_ppn, u);
            bp.invalidateUnit(src_ppn, u);
            bp.setUnit(dst, dst_unit, lpn);
            MapEntry e;
            e.planeLinear = static_cast<std::int32_t>(plane_linear);
            e.pool = static_cast<std::uint16_t>(pool);
            e.ppn = dst;
            e.unit = static_cast<std::uint16_t>(dst_unit);
            bp.stampPageSeq(dst, journal_.recordRelocation(lpn, e));
            ++dst_unit;
            ++stats_.relocatedUnits;
        }
        ++moved;
    }

    if (bp.blockFull(victim) && bp.validUnitsInBlock(victim) == 0 &&
        static_cast<std::int32_t>(victim.value()) != bp.activeBlock()) {
        t = reclaimBlock(plane_linear, pool, victim, t);
    }
    return t;
}

sim::Time
GarbageCollector::scrubStep(sim::Time earliest, bool &did_work)
{
    did_work = false;
    const auto &geom = array_.geometry();
    for (std::uint32_t p = 0; p < geom.planeCount(); ++p) {
        for (std::uint32_t k = 0; k < geom.pools.size(); ++k) {
            auto &bp = array_.plane(p).pool(k);
            // Scrubbing relocates data without freeing a block, so it
            // must not eat into the reserve the write path needs.
            const std::uint64_t reserve =
                static_cast<std::uint64_t>(cfg_.hardFreeBlocks) *
                bp.pagesPerBlock();
            if (bp.freePageCount() <= reserve)
                continue;
            for (std::uint32_t b = 0; b < bp.blockCount(); ++b) {
                const flash::BlockId bid{b};
                if (!bp.blockSuspect(bid))
                    continue;
                if (!bp.blockFull(bid) ||
                    static_cast<std::int32_t>(b) == bp.activeBlock())
                    continue;
                sim::Time done = relocateSome(
                    p, k, bid, cfg_.idleStepPages, earliest);
                if (done == earliest)
                    continue;
                ++stats_.scrubSteps;
                did_work = true;
                EMMCSIM_LOG_DEBUG(
                    "gc", "scrub step on plane " + std::to_string(p) +
                              " pool " + std::to_string(k) +
                              " suspect block " + std::to_string(b));
                return done;
            }
        }
    }
    return earliest;
}

sim::Time
GarbageCollector::idleStep(sim::Time earliest, bool &did_work)
{
    did_work = false;
    // Draining suspect blocks toward retirement takes priority over
    // space reclamation: a suspect block is one program failure away
    // from losing data in a real part.
    sim::Time scrubbed = scrubStep(earliest, did_work);
    if (did_work) {
        stats_.idleTime += scrubbed - earliest;
        return scrubbed;
    }
    std::uint32_t plane = 0;
    std::uint32_t pool = 0;
    if (!findNeedyPool(cfg_.idleMinInvalidFraction, plane, pool))
        return earliest;

    std::int32_t victim = pickVictim(array_.plane(plane).pool(pool));
    EMMCSIM_ASSERT(victim >= 0, "needy pool without victim");
    sim::Time done = relocateSome(
        plane, pool, flash::BlockId{static_cast<std::uint32_t>(victim)},
        cfg_.idleStepPages, earliest);
    if (done == earliest)
        return earliest;
    stats_.idleTime += done - earliest;
    ++stats_.idleSteps;
    did_work = true;
    return done;
}

void
GarbageCollector::save(core::BinWriter &w) const
{
    w.pod(stats_);
}

void
GarbageCollector::load(core::BinReader &r)
{
    r.pod(stats_);
}

} // namespace emmcsim::ftl

