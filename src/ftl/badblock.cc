#include "ftl/badblock.hh"

#include "sim/logging.hh"

namespace emmcsim::ftl {

BadBlockManager::BadBlockManager(std::uint32_t planes,
                                 std::uint32_t pools,
                                 const BbmConfig &cfg)
    : cfg_(cfg), pools_(pools)
{
    EMMCSIM_ASSERT(planes > 0 && pools > 0,
                   "bad-block manager needs a non-empty array");
    EMMCSIM_ASSERT(cfg_.spareBlocksPerPlanePool > 0,
                   "spare budget must be at least one block");
    retired_.assign(static_cast<std::size_t>(planes) * pools, 0);
}

void
BadBlockManager::recordRetirement(std::uint32_t plane_linear,
                                  std::uint32_t pool,
                                  units::BlockId block, RetireCause cause)
{
    const std::size_t idx =
        static_cast<std::size_t>(plane_linear) * pools_ + pool;
    EMMCSIM_ASSERT(idx < retired_.size(),
                   "retirement outside the managed array");
    ++retired_[idx];
    table_.push_back(
        BadBlockEntry{plane_linear, pool, block.value(), cause});
    if (cause == RetireCause::ProgramFail)
        ++stats_.retiredProgram;
    else
        ++stats_.retiredErase;

    if (retired_[idx] >= cfg_.spareBlocksPerPlanePool &&
        readOnlyCause_ == ReadOnlyCause::None) {
        readOnlyCause_ = ReadOnlyCause::SpareExhaustion;
        sim::warn("bbm", "plane " + std::to_string(plane_linear) +
                             " pool " + std::to_string(pool) +
                             " exhausted its spare blocks; device is "
                             "now read-only");
    }
}

std::uint32_t
BadBlockManager::retiredCount(std::uint32_t plane_linear,
                              std::uint32_t pool) const
{
    const std::size_t idx =
        static_cast<std::size_t>(plane_linear) * pools_ + pool;
    EMMCSIM_ASSERT(idx < retired_.size(),
                   "retiredCount outside the managed array");
    return retired_[idx];
}

void
BadBlockManager::declareSpaceExhausted()
{
    if (readOnlyCause_ != ReadOnlyCause::None)
        return;
    readOnlyCause_ = ReadOnlyCause::SpaceExhaustion;
    sim::warn("bbm", "device out of reclaimable space in every pool; "
                     "device is now read-only");
}

void
BadBlockManager::save(core::BinWriter &w) const
{
    w.podVec(retired_);
    w.podVec(table_);
    w.pod(stats_);
    w.u8(static_cast<std::uint8_t>(readOnlyCause_));
}

void
BadBlockManager::load(core::BinReader &r)
{
    const std::size_t cells = retired_.size();
    r.podVec(retired_);
    r.podVec(table_);
    r.pod(stats_);
    readOnlyCause_ = static_cast<ReadOnlyCause>(r.u8());
    if (retired_.size() != cells ||
        readOnlyCause_ > ReadOnlyCause::SpaceExhaustion)
        r.fail();
}

} // namespace emmcsim::ftl
