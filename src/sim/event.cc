#include "sim/event.hh"

#include <utility>

#include "sim/logging.hh"

namespace emmcsim::sim {

EventId
EventQueue::schedule(Time when, EventAction action)
{
    EMMCSIM_ASSERT(when >= 0, "event scheduled at negative time");
    EventId id = nextId_++;
    cancelled_.push_back(false);
    actions_.push_back(std::move(action));
    heap_.push(Entry{when, id});
    ++liveCount_;
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    if (id >= cancelled_.size() || cancelled_[id])
        return false;
    cancelled_[id] = true;
    actions_[id] = nullptr; // release captured state eagerly
    if (liveCount_ > 0)
        --liveCount_;
    return true;
}

void
EventQueue::skipDead() const
{
    while (!heap_.empty() && cancelled_[heap_.top().id])
        heap_.pop();
}

Time
EventQueue::nextTime() const
{
    skipDead();
    if (heap_.empty())
        return kTimeNever;
    return heap_.top().when;
}

bool
EventQueue::pop(Time &when_out, EventAction &action_out)
{
    skipDead();
    if (heap_.empty())
        return false;
    Entry e = heap_.top();
    heap_.pop();
    cancelled_[e.id] = true; // fired events cannot be cancelled later
    --liveCount_;
    when_out = e.when;
    action_out = std::move(actions_[e.id]);
    actions_[e.id] = nullptr; // release captured state eagerly
    return true;
}

} // namespace emmcsim::sim
