#include "sim/event.hh"

#include <utility>

#include "sim/logging.hh"

namespace emmcsim::sim {

EventId
EventQueue::schedule(Time when, EventAction action)
{
    EMMCSIM_ASSERT(when >= 0, "event scheduled at negative time");
    EventId id = nextId_++;
    cancelled_.push_back(false);
    actions_.push_back(std::move(action));
    heap_.push(Entry{when, id});
    ++liveCount_;
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    if (id >= cancelled_.size() || cancelled_[id])
        return false;
    cancelled_[id] = true;
    actions_[id] = nullptr; // release captured state eagerly
    if (liveCount_ > 0)
        --liveCount_;
    return true;
}

void
EventQueue::skipDead() const
{
    while (!heap_.empty() && cancelled_[heap_.top().id])
        heap_.pop();
}

Time
EventQueue::nextTime() const
{
    skipDead();
    if (heap_.empty())
        return kTimeNever;
    return heap_.top().when;
}

bool
EventQueue::pop(Time &when_out, EventAction &action_out)
{
    skipDead();
    if (heap_.empty())
        return false;
    Entry e = heap_.top();
    heap_.pop();
    EMMCSIM_DCHECK(e.when >= lastPopTime_, "event popped out of order");
    lastPopTime_ = e.when;
    cancelled_[e.id] = true; // fired events cannot be cancelled later
    --liveCount_;
    when_out = e.when;
    action_out = std::move(actions_[e.id]);
    actions_[e.id] = nullptr; // release captured state eagerly
    return true;
}

std::uint64_t
EventQueue::auditInvariants(std::vector<std::string> &violations) const
{
    std::uint64_t checks = 0;
    auto check = [&](bool ok, const char *what) {
        ++checks;
        if (!ok)
            violations.emplace_back(what);
    };

    check(cancelled_.size() == nextId_,
          "event queue: cancellation ledger does not cover issued ids");
    check(actions_.size() == nextId_,
          "event queue: action table does not cover issued ids");

    // Live-count conservation: every issued id is either retired
    // (fired or cancelled) or still live in the heap.
    std::size_t live = 0;
    for (EventId id = 0; id < nextId_; ++id) {
        if (!cancelled_[id])
            ++live;
    }
    check(live == liveCount_,
          "event queue: live-event count disagrees with the ledger");
    check(heap_.size() >= liveCount_,
          "event queue: heap lost live entries");

    // Stale handles: a retired id must not keep its action (captured
    // state would leak and a late fire would run a dead callback).
    bool stale = false;
    for (EventId id = 0; id < nextId_ && id < actions_.size(); ++id) {
        if (cancelled_[id] && actions_[id] != nullptr)
            stale = true;
    }
    check(!stale, "event queue: retired event still holds its action");

    // Time monotonicity: nothing pending may fire before the last
    // popped event (nextTime skips cancelled entries).
    Time next = nextTime();
    check(next == kTimeNever || next >= lastPopTime_,
          "event queue: pending event earlier than last popped event");
    return checks;
}

void
EventQueue::corruptLiveCountForTest(std::int64_t delta)
{
    liveCount_ = static_cast<std::size_t>(
        static_cast<std::int64_t>(liveCount_) + delta);
}

} // namespace emmcsim::sim
