#include "sim/event.hh"

#include <algorithm>
#include <limits>
#include <utility>

#include "sim/logging.hh"

namespace emmcsim::sim {

bool
EventQueue::cancel(EventId id)
{
    // A recycled slot carries a newer generation, so a stale handle
    // (the ABA case) falls out here instead of killing the new event.
    // A firing event's generation was bumped before its action ran,
    // so it too lands here and cannot cancel itself mid-flight.
    if (id.slot >= slotCount_ || slotAt(id.slot).gen != id.gen)
        return false;
    retireSlot(id.slot);
    EMMCSIM_DCHECK(liveCount_ > 0,
                   "cancel with zero live events (ledger drift)");
    --liveCount_;
    // The pending entry (wheel bucket, heap, drain run, or batch
    // tail) stays behind as a dead entry (lazy delete). Compaction
    // waits out an in-flight batch: it cannot reach the batch tail,
    // so sweeping mid-batch would zero the dead-entry ledger while
    // dead tail entries remain.
    ++deadEntries_;
    if (!batchActive_ && deadEntries_ > pendingEntries() / 2 &&
        pendingEntries() >= kCompactMin)
        compact();
    return true;
}

void
EventQueue::retireSlot(std::uint32_t slot)
{
    slotAt(slot).action = nullptr; // release captured state eagerly
    ++slotAt(slot).gen;            // invalidate outstanding handles
    freelist_.push_back(slot);
}

void
EventQueue::tuneWheel(Time shortestLatency, Time longestLatency)
{
    EMMCSIM_ASSERT(shortestLatency > 0 &&
                       longestLatency >= shortestLatency,
                   "wheel tuning wants 0 < shortest <= longest");
    EMMCSIM_ASSERT(!batchActive_,
                   "tuneWheel from inside a dispatch batch");
    // Retuning (or tuning with events pending): pull every staged
    // entry back into the heap so nothing is stranded in a bucket
    // the new geometry no longer covers.
    if (tuned_)
        flushWheelToHeap();

    // Bucket width: the largest power of two not above a quarter of
    // the shortest recurring latency, so even the tightest completion
    // cluster spreads over ~4 buckets; floored so a degenerate config
    // cannot ask for nanosecond buckets.
    unsigned shift = kMinBucketShift;
    while ((Time{1} << (shift + 1)) <= shortestLatency / 4 &&
           shift + 1 < 40)
        ++shift;
    bucketShift_ = shift;

    // Window span: four times the longest latency, so an op scheduled
    // from anywhere in the first three quarters of the window still
    // lands in-wheel (measured on the clustered-latency benchmark,
    // 2x leaves ~18% of schedules overflowing, 4x ~9%).
    const Time width = Time{1} << bucketShift_;
    std::size_t want = static_cast<std::size_t>(
        (4 * longestLatency + width - 1) >> bucketShift_);
    std::size_t n = kMinBuckets;
    while (n < want && n < kMaxBuckets)
        n <<= 1;
    nBuckets_ = n;
    buckets_.resize(nBuckets_);
    wheelBase_ = lastPopTime_ & ~(width - 1);
    nextScan_ = 0;
    tuned_ = true;
}

void
EventQueue::flushWheelToHeap()
{
    for (std::size_t i = runPos_; i < run_.size(); ++i)
        heapPush(run_[i]);
    run_.clear();
    runPos_ = 0;
    for (std::vector<HeapEntry> &b : buckets_) {
        for (const HeapEntry &e : b)
            heapPush(e);
        b.clear();
    }
    wheelCount_ = 0;
    nextScan_ = 0;
}

void
EventQueue::refill() const
{
    // The run is consumed; stage whatever serves the next pops.
    if (!tuned_) {
        if (heap_.size() >= kDrainSortMin)
            sortPendingIntoRun();
        return;
    }
    while (true) {
        std::size_t i = nextScan_;
        while (i < nBuckets_ && buckets_[i].empty())
            ++i;
        if (i == nBuckets_) {
            // Wheel drained: re-anchor the window on the overflow
            // front (an epoch advance) and promote the near-horizon
            // overflow back into buckets. Perf-only, so it is skipped
            // mid-batch — a promotion could hide a same-tick entry
            // from the batch's heap-front interleave probe.
            if (batchActive_)
                return;
            while (!heap_.empty() && !entryLive(heap_.front())) {
                heapPopFront();
                EMMCSIM_DCHECK(deadEntries_ > 0,
                               "dead heap entry not accounted for");
                --deadEntries_;
            }
            if (heap_.empty())
                return;
            const Time width = Time{1} << bucketShift_;
            const Time span = static_cast<Time>(nBuckets_)
                              << bucketShift_;
            const Time front = heap_.front().when;
            if (front > std::numeric_limits<Time>::max() - span)
                return; // pathological far-future timer; serve as heap
            wheelBase_ = front & ~(width - 1);
            nextScan_ = 0;
            ++epochs_;
            const Time wheelEnd = wheelBase_ + span;
            while (!heap_.empty() && heap_.front().when < wheelEnd) {
                const HeapEntry e = heap_.front();
                heapPopFront();
                if (!entryLive(e)) {
                    EMMCSIM_DCHECK(deadEntries_ > 0,
                                   "dead heap entry not accounted "
                                   "for");
                    --deadEntries_;
                    continue;
                }
                buckets_[bucketIndex(e.when)].push_back(e);
                ++wheelCount_;
                ++promotions_;
            }
            continue; // rescan: buckets now hold the promoted work
        }
        // Serve the heap directly when its front precedes everything
        // the wheel still holds (bucket i's entries are all >= its
        // start time).
        if (!heap_.empty() && heap_.front().when < bucketStart(i))
            return;
        run_.swap(buckets_[i]);
        wheelCount_ -= run_.size();
        nextScan_ = i + 1;
        sortRunEntries();
        runPos_ = 0;
        return;
    }
}

void
EventQueue::sortRunEntries() const
{
    // Bucket-distribution sort by (when, seq): interpolate each
    // entry's time into ~n buckets, scatter once, std::sort the rare
    // oversized bucket, and finish with one insertion pass (nearly
    // sorted input, ~2 compares per element). On random times this is
    // ~5x faster than std::sort, whose branchy partitioning
    // mispredicts on every compare; on degenerate distributions it
    // falls back to the per-bucket std::sort and stays O(n log n).
    const std::size_t n = run_.size();
    if (n < 2)
        return;
    Time lo = run_[0].when;
    Time hi = run_[0].when;
    for (const HeapEntry &e : run_) {
        lo = std::min(lo, e.when);
        hi = std::max(hi, e.when);
    }
    if (lo == hi) {
        // Single tick: FIFO order is just the sequence number.
        std::sort(run_.begin(), run_.end(),
                  [](const HeapEntry &a, const HeapEntry &b) {
                      return a.seq < b.seq;
                  });
        return;
    }
    std::size_t buckets = 1;
    while (buckets < n)
        buckets <<= 1;
    // 128-bit intermediate: (hi - lo) can span the full Time range.
    const unsigned __int128 range =
        static_cast<unsigned __int128>(
            static_cast<std::uint64_t>(hi - lo)) +
        1;
    auto bucketOf = [&](Time w) {
        return static_cast<std::size_t>(
            (static_cast<unsigned __int128>(
                 static_cast<std::uint64_t>(w - lo)) *
             buckets) /
            range);
    };
    sortCounts_.assign(buckets + 1, 0);
    for (const HeapEntry &e : run_)
        ++sortCounts_[bucketOf(e.when)];
    std::uint32_t sum = 0;
    for (std::size_t i = 0; i <= buckets; ++i) {
        const std::uint32_t c = sortCounts_[i];
        sortCounts_[i] = sum;
        sum += c;
    }
    // The run/heap/scratch buffers rotate through the final swap (and
    // sortPendingIntoRun's); carry the largest capacity along so a
    // sort over a front-trimmed set (n one less than peak) never
    // plants an undersized buffer that reallocs when it rotates back
    // into the heap at peak load.
    if (sortScratch_.capacity() < run_.capacity())
        sortScratch_.reserve(run_.capacity());
    sortScratch_.resize(n);
    for (const HeapEntry &e : run_)
        sortScratch_[sortCounts_[bucketOf(e.when)]++] = e;
    // sortCounts_[i] is now bucket i's end offset.
    std::uint32_t start = 0;
    for (std::size_t i = 0; i < buckets; ++i) {
        const std::uint32_t end = sortCounts_[i];
        if (end - start > 16)
            std::sort(sortScratch_.begin() + start,
                      sortScratch_.begin() + end, earlier);
        start = end;
    }
    for (std::size_t i = 1; i < n; ++i) {
        if (!earlier(sortScratch_[i], sortScratch_[i - 1]))
            continue;
        const HeapEntry x = sortScratch_[i];
        std::size_t j = i;
        while (j > 0 && earlier(x, sortScratch_[j - 1])) {
            sortScratch_[j] = sortScratch_[j - 1];
            --j;
        }
        sortScratch_[j] = x;
    }
    run_.swap(sortScratch_);
}

void
EventQueue::compact()
{
    // Sweep every dead entry in place — the run keeps its sorted
    // order, wheel buckets their (unsorted) contents, and the heap is
    // rebuilt bottom-up (Floyd): O(n) total, amortised O(1) per
    // cancel by the > n/2 trigger. Never called mid-batch (see
    // cancel()), so the batch tail holds no entries to sweep.
    EMMCSIM_DCHECK(!batchActive_, "compaction inside a dispatch batch");
    std::size_t runKept = 0;
    for (std::size_t i = runPos_; i < run_.size(); ++i) {
        if (entryLive(run_[i]))
            run_[runKept++] = run_[i];
    }
    run_.resize(runKept);
    runPos_ = 0;
    for (std::size_t b = nextScan_; b < nBuckets_; ++b) {
        std::vector<HeapEntry> &bucket = buckets_[b];
        std::size_t bKept = 0;
        for (std::size_t i = 0; i < bucket.size(); ++i) {
            if (entryLive(bucket[i]))
                bucket[bKept++] = bucket[i];
        }
        wheelCount_ -= bucket.size() - bKept;
        bucket.resize(bKept);
    }
    std::size_t kept = 0;
    for (std::size_t i = 0; i < heap_.size(); ++i) {
        if (entryLive(heap_[i]))
            heap_[kept++] = heap_[i];
    }
    heap_.resize(kept);
    deadEntries_ = 0;
    for (std::size_t i = kept / kArity + 1; i-- > 0;) {
        if (i < kept)
            siftDown(i);
    }
    ++compactions_;
}

Time
EventQueue::nextTime() const
{
    // Mid-batch the earliest pending work is the current tick for as
    // long as any live batch-tail entry remains (audit hooks and
    // samplers call this between batch entries).
    if (batchActive_) {
        for (std::size_t i = batchPos_; i < batch_.size(); ++i) {
            if (entryLive(batch_[i]))
                return batchTick_;
        }
    }
    dropDeadFronts();
    while (runPos_ >= run_.size()) {
        refill();
        if (runPos_ >= run_.size())
            break;
        dropDeadFronts();
    }
    const bool haveRun = runPos_ < run_.size();
    if (!haveRun && heap_.empty())
        return kTimeNever;
    if (haveRun &&
        (heap_.empty() || earlier(run_[runPos_], heap_.front())))
        return run_[runPos_].when;
    return heap_.front().when;
}

bool
EventQueue::pop(Time &when_out, EventAction &action_out)
{
    HeapEntry e;
    if (!takeEarliest(e))
        return false;
    EMMCSIM_DCHECK(e.when >= lastPopTime_, "event popped out of order");
    lastPopTime_ = e.when;
    when_out = e.when;
    action_out = std::move(slotAt(e.slot).action);
    retireSlot(e.slot); // fired events cannot be cancelled later
    EMMCSIM_DCHECK(liveCount_ > 0,
                   "pop with zero live events (ledger drift)");
    --liveCount_;
    return true;
}

std::uint64_t
EventQueue::auditInvariants(std::vector<std::string> &violations) const
{
    std::uint64_t checks = 0;
    auto check = [&](bool ok, const char *what) {
        ++checks;
        if (!ok)
            violations.emplace_back(what);
    };

    // A dispatch in flight holds one slot that is neither live nor
    // freelisted (device audit hooks run inside actions).
    const bool firingActive = firing_ != EventId::kNoSlot;
    const std::size_t inFlight = firingActive ? 1 : 0;

    // Slot conservation: every arena slot is either live (scheduled,
    // unfired, uncancelled), parked on the freelist, or the one slot
    // currently firing.
    check(freelist_.size() + inFlight <= slotCount_,
          "event queue: freelist longer than the arena");
    check(liveCount_ == slotCount_ - freelist_.size() - inFlight,
          "event queue: live-event count disagrees with the arena "
          "ledger");
    check(highWater_ >= liveCount_,
          "event queue: high-water mark below the live count");
    check(scheduledCount_ >= liveCount_,
          "event queue: more live events than were ever scheduled");

    // Freelist hygiene: in range, no duplicates, no parked actions
    // (captured state would leak past retirement), and the firing
    // slot is not recycled while its action runs.
    std::vector<bool> onFreelist(slotCount_, false);
    bool freelistClean = true;
    for (std::uint32_t s : freelist_) {
        if (s >= slotCount_ || onFreelist[s] ||
            (firingActive && s == firing_)) {
            freelistClean = false;
            break;
        }
        onFreelist[s] = true;
    }
    check(freelistClean,
          "event queue: freelist holds an out-of-range, duplicate, "
          "or in-flight slot");
    bool parkedAction = false;
    bool liveWithoutAction = false;
    if (freelistClean) {
        for (std::size_t s = 0; s < slotCount_; ++s) {
            if (firingActive && s == firing_)
                continue; // holds the executing action; neither state
            const bool hasAction =
                slotAt(static_cast<std::uint32_t>(s)).action != nullptr;
            if (onFreelist[s] && hasAction)
                parkedAction = true;
            if (!onFreelist[s] && !hasAction)
                liveWithoutAction = true;
        }
    }
    check(!parkedAction,
          "event queue: retired slot still holds its action");
    check(!liveWithoutAction,
          "event queue: live slot lost its action");

    // Pending coverage: each live slot has exactly one live entry
    // across *all* tiers — overflow heap, the unconsumed tail of the
    // drain run, wheel buckets, and the unfired tail of an in-flight
    // dispatch batch — and the dead-entry counter equals the recount.
    std::size_t liveEntries = 0;
    std::size_t deadEntries = 0;
    std::vector<bool> seen(slotCount_, false);
    bool duplicated = false;
    bool seqSane = true;
    auto visit = [&](const HeapEntry &e) {
        // Each band has its own counter: a pending entry must carry a
        // sequence number its band already issued.
        if (e.seq < kNormalSeqBase ? e.seq >= nextFrontSeq_
                                   : e.seq >= nextSeq_)
            seqSane = false;
        if (!entryLive(e)) {
            ++deadEntries;
            return;
        }
        ++liveEntries;
        if (seen[e.slot])
            duplicated = true;
        seen[e.slot] = true;
    };
    for (const HeapEntry &e : heap_)
        visit(e);
    for (std::size_t i = runPos_; i < run_.size(); ++i)
        visit(run_[i]);
    std::size_t bucketEntries = 0;
    bool bucketsFiled = true;
    bool consumedBucketsEmpty = true;
    for (std::size_t b = 0; b < nBuckets_; ++b) {
        if (b < nextScan_ && !buckets_[b].empty())
            consumedBucketsEmpty = false;
        bucketEntries += buckets_[b].size();
        for (const HeapEntry &e : buckets_[b]) {
            if (bucketIndex(e.when) != b)
                bucketsFiled = false;
            visit(e);
        }
    }
    for (std::size_t i = batchPos_; i < batch_.size(); ++i)
        visit(batch_[i]);
    check(!duplicated,
          "event queue: live slot appears twice in the pending set");
    check(liveEntries == liveCount_,
          "event queue: pending live-entry count disagrees with the "
          "ledger");
    check(deadEntries == deadEntries_,
          "event queue: dead-entry counter disagrees with a recount");

    // Wheel-tier structure: the occupancy counter matches a recount,
    // entries sit in the bucket their time maps to, consumed buckets
    // are empty, and the scan cursor is in range.
    check(bucketEntries == wheelCount_,
          "event queue: wheel occupancy disagrees with a recount");
    check(bucketsFiled,
          "event queue: bucket entry filed under the wrong index");
    check(consumedBucketsEmpty,
          "event queue: consumed wheel bucket is not empty");
    check(nextScan_ <= nBuckets_,
          "event queue: wheel scan cursor past the last bucket");
    check(tuned_ || wheelCount_ == 0,
          "event queue: untuned wheel holds entries");

    // Structural order: the heap property ((when, seq) parent <=
    // children) on the heap, sortedness on the drain run and the
    // batch tail, and sequence-number sanity everywhere.
    bool ordered = true;
    for (std::size_t i = 1; i < heap_.size(); ++i) {
        if (earlier(heap_[i], heap_[(i - 1) / kArity]))
            ordered = false;
    }
    check(ordered, "event queue: heap ordering property violated");
    bool runSorted = true;
    for (std::size_t i = runPos_ + 1; i < run_.size(); ++i) {
        if (earlier(run_[i], run_[i - 1]))
            runSorted = false;
    }
    check(runSorted, "event queue: drain run lost its sort order");
    check(runPos_ <= run_.size(),
          "event queue: drain-run cursor past the end of the run");
    bool batchSane = true;
    for (std::size_t i = batchPos_; i < batch_.size(); ++i) {
        if (batch_[i].when != batchTick_ ||
            (i > batchPos_ && batch_[i].seq <= batch_[i - 1].seq))
            batchSane = false;
    }
    check(!batchActive_ || batchSane,
          "event queue: batch tail broke same-tick sequence order");
    check(batchActive_ || batch_.empty(),
          "event queue: batch scratch not empty between dispatches");
    check(seqSane,
          "event queue: pending entry carries an unissued sequence "
          "number");

    // Time monotonicity: nothing pending may fire before the last
    // popped event (nextTime skips dead entries).
    Time next = nextTime();
    check(next == kTimeNever || next >= lastPopTime_,
          "event queue: pending event earlier than last popped event");
    return checks;
}

void
EventQueue::corruptLiveCountForTest(std::int64_t delta)
{
    liveCount_ = static_cast<std::size_t>(
        static_cast<std::int64_t>(liveCount_) + delta);
}

} // namespace emmcsim::sim
