/**
 * @file
 * InlineAction: a type-erased, move-only callable with fixed inline
 * storage and no heap fallback.
 *
 * The event hot path schedules millions of closures per replay; a
 * std::function there costs one heap allocation per event (libstdc++
 * only inlines captures up to 16 bytes). InlineAction stores the
 * callable in a 48-byte in-object buffer and *statically rejects*
 * anything larger, so scheduling an event never allocates. Every
 * capture used by the device, FTL, and replayer is checked at compile
 * time through emplace()'s static_asserts; use InlineAction::fits<F>()
 * to probe a callable's eligibility in tests or call sites.
 *
 * Layout: the buffer plus a single pointer to a static ops vtable
 * (invoke/relocate/destroy), 56 bytes total. One pointer instead of
 * three keeps an event-arena slot (action + generation) at exactly 64
 * bytes — one cache line — which measurably matters at millions of
 * events per second. The same reasoning caps capture alignment at 8:
 * alignas(16) storage would pad the slot past a cache line, and no
 * event capture holds over-aligned state (pointers, ints, IoRequest).
 *
 * Size budget rationale: the largest production capture is the
 * replayer's retry closure, [this, IoRequest] = 8 + 40 = 48 bytes
 * (see DESIGN.md §11). Growing the budget grows every arena slot, so
 * prefer shrinking captures over raising kInlineBytes.
 */

#ifndef EMMCSIM_SIM_ACTION_HH
#define EMMCSIM_SIM_ACTION_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace emmcsim::sim {

/** Heap-free type-erased callable for the event path. */
class InlineAction
{
  public:
    /** Inline capture budget in bytes (see file comment). */
    static constexpr std::size_t kInlineBytes = 48;

    /** Capture alignment cap (see file comment). */
    static constexpr std::size_t kAlign = 8;

    /** @return true when callable @p F can be stored inline. */
    template <typename F>
    static constexpr bool
    fits()
    {
        using Fn = std::decay_t<F>;
        return sizeof(Fn) <= kInlineBytes && alignof(Fn) <= kAlign &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    InlineAction() noexcept = default;
    InlineAction(std::nullptr_t) noexcept {}

    /**
     * Wrap any callable whose state fits the inline budget. A capture
     * that is too large, over-aligned, or throwing-move fails to
     * compile here — shrink the capture (e.g. move bulky state behind
     * a pointer the callee owns) rather than raising kInlineBytes.
     */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineAction> &&
                  !std::is_same_v<std::decay_t<F>, std::nullptr_t>>>
    InlineAction(F &&fn) // NOLINT(bugprone-forwarding-reference-overload)
    {
        emplace(std::forward<F>(fn));
    }

    /**
     * Construct a callable directly in the inline buffer, destroying
     * any current occupant first. This is the event queue's schedule
     * path: the capture is built in place inside the arena slot, so a
     * schedule performs zero InlineAction moves.
     */
    template <typename F>
    void
    emplace(F &&fn)
    {
        using Fn = std::decay_t<F>;
        static_assert(!std::is_same_v<Fn, InlineAction>,
                      "emplace() takes a raw callable, not an "
                      "InlineAction; use move-assignment instead");
        static_assert(sizeof(Fn) <= kInlineBytes,
                      "event capture exceeds InlineAction's inline "
                      "budget; shrink the capture (DESIGN.md §11)");
        static_assert(alignof(Fn) <= kAlign,
                      "event capture over-aligned for InlineAction");
        static_assert(std::is_nothrow_move_constructible_v<Fn>,
                      "event captures must be nothrow-movable");
        reset();
        ::new (static_cast<void *>(storage_)) Fn(std::forward<F>(fn));
        ops_ = &opsFor<Fn>;
    }

    InlineAction(InlineAction &&other) noexcept { moveFrom(other); }

    InlineAction &
    operator=(InlineAction &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InlineAction &
    operator=(std::nullptr_t) noexcept
    {
        reset();
        return *this;
    }

    InlineAction(const InlineAction &) = delete;
    InlineAction &operator=(const InlineAction &) = delete;

    ~InlineAction() { reset(); }

    /** Run the wrapped callable; undefined when empty. */
    void operator()() { ops_->invoke(storage_); }

    explicit operator bool() const noexcept { return ops_ != nullptr; }

    friend bool
    operator==(const InlineAction &a, std::nullptr_t) noexcept
    {
        return a.ops_ == nullptr;
    }
    friend bool
    operator!=(const InlineAction &a, std::nullptr_t) noexcept
    {
        return a.ops_ != nullptr;
    }

  private:
    /** Static per-callable-type vtable (one pointer per action). */
    struct Ops
    {
        void (*invoke)(void *);
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *);
    };

    template <typename Fn>
    static constexpr Ops opsFor = {
        [](void *p) { (*static_cast<Fn *>(p))(); },
        [](void *dst, void *src) {
            ::new (dst) Fn(std::move(*static_cast<Fn *>(src)));
            static_cast<Fn *>(src)->~Fn();
        },
        [](void *p) { static_cast<Fn *>(p)->~Fn(); },
    };

    void
    reset() noexcept
    {
        if (ops_ != nullptr) {
            ops_->destroy(storage_);
            ops_ = nullptr;
        }
    }

    void
    moveFrom(InlineAction &other) noexcept
    {
        ops_ = other.ops_;
        if (ops_ != nullptr) {
            ops_->relocate(storage_, other.storage_);
            other.ops_ = nullptr;
        }
    }

    alignas(kAlign) unsigned char storage_[kInlineBytes];
    const Ops *ops_ = nullptr;
};

} // namespace emmcsim::sim

#endif // EMMCSIM_SIM_ACTION_HH
