#include "sim/simulator.hh"

#include <utility>

#include "sim/logging.hh"

namespace emmcsim::sim {

std::uint64_t
Simulator::run()
{
    // Events run in place out of their arena slots; dispatchTick
    // drains the whole current tick per call (batched same-tick
    // dispatch), advancing the clock in the pre-invoke callback
    // before each action observes now(). Post-event hooks still fire
    // once per event, between batch entries, exactly as the
    // one-at-a-time loop did.
    std::uint64_t n = 0;
    while (events_.dispatchTick(
               [this](Time t) {
                   EMMCSIM_ASSERT(t >= now_,
                                  "event queue went backwards");
                   now_ = t;
               },
               [this, &n](Time) {
                   ++n;
                   ++executed_;
                   if (!hooks_.empty())
                       firePostEventHooks();
               }) != 0) {
    }
    return n;
}

std::uint64_t
Simulator::runUntil(Time deadline)
{
    std::uint64_t n = 0;
    while (true) {
        Time next = events_.nextTime();
        if (next == kTimeNever || next > deadline)
            break;
        // A batch never crosses the deadline: every event it fires
        // sits at exactly `next`, which was just checked.
        events_.dispatchTick(
            [this](Time t) {
                EMMCSIM_ASSERT(t >= now_, "event queue went backwards");
                now_ = t;
            },
            [this, &n](Time) {
                ++n;
                ++executed_;
                if (!hooks_.empty())
                    firePostEventHooks();
            });
    }
    if (now_ < deadline)
        now_ = deadline;
    return n;
}

Simulator::HookId
Simulator::addPostEventHook(PostEventHook hook, std::uint64_t interval)
{
    EMMCSIM_ASSERT(interval >= 1, "post-event hook interval must be >= 1");
    EMMCSIM_ASSERT(hook != nullptr, "post-event hook must be callable");
    HookEntry entry;
    entry.id = nextHookId_++;
    entry.interval = interval;
    entry.hook = std::move(hook);
    hooks_.push_back(std::move(entry));
    return hooks_.back().id;
}

void
Simulator::removePostEventHook(HookId id)
{
    for (std::size_t i = 0; i < hooks_.size(); ++i) {
        if (hooks_[i].id == id) {
            hooks_.erase(hooks_.begin() +
                         static_cast<std::ptrdiff_t>(i));
            return;
        }
    }
}

void
Simulator::setPostEventHook(PostEventHook hook, std::uint64_t interval)
{
    if (legacyHookId_ != 0) {
        removePostEventHook(legacyHookId_);
        legacyHookId_ = 0;
    }
    if (hook != nullptr)
        legacyHookId_ = addPostEventHook(std::move(hook), interval);
}

void
Simulator::firePostEventHooks()
{
    // Hooks may not add/remove hooks from inside a callback (they are
    // observers); index-based iteration keeps that contract checkable.
    const std::size_t n = hooks_.size();
    for (std::size_t i = 0; i < n; ++i) {
        HookEntry &entry = hooks_[i];
        if (++entry.since < entry.interval)
            continue;
        entry.since = 0;
        entry.hook(*this);
        EMMCSIM_DCHECK(hooks_.size() == n,
                       "post-event hook mutated the hook list");
    }
}

} // namespace emmcsim::sim
