#include "sim/simulator.hh"

#include <utility>

#include "sim/logging.hh"

namespace emmcsim::sim {

EventId
Simulator::schedule(Time when, EventAction action)
{
    EMMCSIM_ASSERT(when >= now_, "event scheduled in the past");
    return events_.schedule(when, std::move(action));
}

EventId
Simulator::scheduleAfter(Time delay, EventAction action)
{
    EMMCSIM_ASSERT(delay >= 0, "negative event delay");
    return events_.schedule(now_ + delay, std::move(action));
}

std::uint64_t
Simulator::run()
{
    std::uint64_t n = 0;
    Time t;
    EventAction action;
    while (events_.pop(t, action)) {
        EMMCSIM_ASSERT(t >= now_, "event queue went backwards");
        now_ = t;
        action();
        ++n;
    }
    executed_ += n;
    return n;
}

std::uint64_t
Simulator::runUntil(Time deadline)
{
    std::uint64_t n = 0;
    while (true) {
        Time next = events_.nextTime();
        if (next == kTimeNever || next > deadline)
            break;
        Time t;
        EventAction action;
        events_.pop(t, action);
        EMMCSIM_ASSERT(t >= now_, "event queue went backwards");
        now_ = t;
        action();
        ++n;
    }
    executed_ += n;
    if (now_ < deadline)
        now_ = deadline;
    return n;
}

} // namespace emmcsim::sim
