#include "sim/simulator.hh"

#include <utility>

#include "sim/logging.hh"

namespace emmcsim::sim {

EventId
Simulator::schedule(Time when, EventAction action)
{
    EMMCSIM_ASSERT(when >= now_, "event scheduled in the past");
    return events_.schedule(when, std::move(action));
}

EventId
Simulator::scheduleAfter(Time delay, EventAction action)
{
    EMMCSIM_ASSERT(delay >= 0, "negative event delay");
    return events_.schedule(now_ + delay, std::move(action));
}

std::uint64_t
Simulator::run()
{
    std::uint64_t n = 0;
    Time t;
    EventAction action;
    while (events_.pop(t, action)) {
        EMMCSIM_ASSERT(t >= now_, "event queue went backwards");
        now_ = t;
        action();
        ++n;
        ++executed_;
        firePostEventHook();
    }
    return n;
}

std::uint64_t
Simulator::runUntil(Time deadline)
{
    std::uint64_t n = 0;
    while (true) {
        Time next = events_.nextTime();
        if (next == kTimeNever || next > deadline)
            break;
        Time t;
        EventAction action;
        events_.pop(t, action);
        EMMCSIM_ASSERT(t >= now_, "event queue went backwards");
        now_ = t;
        action();
        ++n;
        ++executed_;
        firePostEventHook();
    }
    if (now_ < deadline)
        now_ = deadline;
    return n;
}

void
Simulator::setPostEventHook(PostEventHook hook, std::uint64_t interval)
{
    EMMCSIM_ASSERT(interval >= 1, "post-event hook interval must be >= 1");
    postEventHook_ = std::move(hook);
    hookInterval_ = interval;
    sinceHook_ = 0;
}

void
Simulator::firePostEventHook()
{
    if (!postEventHook_)
        return;
    if (++sinceHook_ < hookInterval_)
        return;
    sinceHook_ = 0;
    postEventHook_(*this);
}

} // namespace emmcsim::sim
