#include "sim/logging.hh"

namespace emmcsim::sim {

void
logMessage(LogLevel level, const std::string &msg)
{
    const char *tag = "info";
    switch (level) {
      case LogLevel::Info: tag = "info"; break;
      case LogLevel::Warn: tag = "warn"; break;
      case LogLevel::Fatal: tag = "fatal"; break;
      case LogLevel::Panic: tag = "panic"; break;
    }
    std::fprintf(stderr, "[%s] %s\n", tag, msg.c_str());
}

void
inform(const std::string &msg)
{
    logMessage(LogLevel::Info, msg);
}

void
warn(const std::string &msg)
{
    logMessage(LogLevel::Warn, msg);
}

void
fatal(const std::string &msg)
{
    logMessage(LogLevel::Fatal, msg);
    std::exit(1);
}

void
panic(const std::string &msg)
{
    logMessage(LogLevel::Panic, msg);
    std::abort();
}

} // namespace emmcsim::sim
