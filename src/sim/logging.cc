#include "sim/logging.hh"

#include <mutex>
#include <shared_mutex>

namespace emmcsim::sim {

namespace {

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "info";
}

bool
parseLevelName(std::string_view name, LogLevel &out)
{
    if (name == "debug") {
        out = LogLevel::Debug;
    } else if (name == "info") {
        out = LogLevel::Info;
    } else if (name == "warn") {
        out = LogLevel::Warn;
    } else {
        return false;
    }
    return true;
}

/**
 * Process-wide log state. Sweep workers log concurrently, so the
 * configuration sits behind a reader/writer lock (reads vastly
 * outnumber setLogConfig calls) and message emission behind a
 * separate mutex so multi-part lines never interleave.
 */
struct LogState
{
    std::shared_mutex configMutex;
    LogConfig config;
    std::mutex ioMutex;

    LogState()
    {
        const char *spec = std::getenv("EMMCSIM_LOG");
        if (spec == nullptr)
            return;
        std::string error;
        config = LogConfig::parse(spec, &error);
        if (!error.empty()) {
            std::fprintf(stderr, "[warn] EMMCSIM_LOG: %s\n",
                         error.c_str());
        }
    }
};

LogState &
logState()
{
    static LogState state; // magic-static init is thread-safe
    return state;
}

/** Parse EMMCSIM_LOG at startup so a malformed spec warns even in
 * runs that never reach a log call. */
[[maybe_unused]] const bool kLogConfigParsed = (logState(), true);

/** Format the line once and write it with a single call under the
 * I/O lock, so concurrent workers cannot interleave fragments. */
void
emitLine(std::string line)
{
    line.push_back('\n');
    std::lock_guard<std::mutex> lock(logState().ioMutex);
    std::fwrite(line.data(), 1, line.size(), stderr);
}

} // namespace

LogConfig
LogConfig::parse(std::string_view spec, std::string *error)
{
    LogConfig cfg;
    if (error != nullptr)
        error->clear();
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string_view::npos)
            comma = spec.size();
        std::string_view entry = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (entry.empty())
            continue;

        std::size_t eq = entry.find('=');
        LogLevel level = LogLevel::Info;
        if (eq == std::string_view::npos) {
            if (!parseLevelName(entry, level)) {
                if (error != nullptr && error->empty())
                    *error = "unknown level \"" + std::string(entry) +
                             "\" (use debug, info, or warn)";
                continue;
            }
            cfg.default_ = level;
            continue;
        }
        std::string_view component = entry.substr(0, eq);
        std::string_view name = entry.substr(eq + 1);
        if (component.empty() || !parseLevelName(name, level)) {
            if (error != nullptr && error->empty())
                *error = "malformed entry \"" + std::string(entry) +
                         "\" (expected component=debug|info|warn)";
            continue;
        }
        // Later entries win, matching how PATH-style lists are read.
        bool found = false;
        for (auto &[comp, lvl] : cfg.components_) {
            if (comp == component) {
                lvl = level;
                found = true;
                break;
            }
        }
        if (!found)
            cfg.components_.emplace_back(std::string(component), level);
    }
    return cfg;
}

LogLevel
LogConfig::levelFor(std::string_view component) const
{
    for (const auto &[comp, lvl] : components_) {
        if (comp == component)
            return lvl;
    }
    return default_;
}

LogConfig
logConfig()
{
    LogState &state = logState();
    std::shared_lock<std::shared_mutex> lock(state.configMutex);
    return state.config;
}

void
setLogConfig(LogConfig cfg)
{
    LogState &state = logState();
    std::unique_lock<std::shared_mutex> lock(state.configMutex);
    state.config = std::move(cfg);
}

bool
logEnabled(std::string_view component, LogLevel level)
{
    if (level >= LogLevel::Fatal)
        return true;
    LogState &state = logState();
    std::shared_lock<std::shared_mutex> lock(state.configMutex);
    return state.config.enabled(component, level);
}

void
logMessage(LogLevel level, const std::string &msg)
{
    std::string line = "[";
    line += levelTag(level);
    line += "] ";
    line += msg;
    emitLine(std::move(line));
}

void
logMessage(LogLevel level, std::string_view component,
           const std::string &msg)
{
    std::string line = "[";
    line += levelTag(level);
    line += ":";
    line += component;
    line += "] ";
    line += msg;
    emitLine(std::move(line));
}

void
inform(const std::string &msg)
{
    logMessage(LogLevel::Info, msg);
}

void
inform(std::string_view component, const std::string &msg)
{
    if (logEnabled(component, LogLevel::Info))
        logMessage(LogLevel::Info, component, msg);
}

void
warn(const std::string &msg)
{
    logMessage(LogLevel::Warn, msg);
}

void
warn(std::string_view component, const std::string &msg)
{
    if (logEnabled(component, LogLevel::Warn))
        logMessage(LogLevel::Warn, component, msg);
}

void
debug(std::string_view component, const std::string &msg)
{
    if (logEnabled(component, LogLevel::Debug))
        logMessage(LogLevel::Debug, component, msg);
}

void
fatal(const std::string &msg)
{
    logMessage(LogLevel::Fatal, msg);
    std::exit(1);
}

void
panic(const std::string &msg)
{
    logMessage(LogLevel::Panic, msg);
    std::abort();
}

} // namespace emmcsim::sim
