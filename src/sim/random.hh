/**
 * @file
 * Deterministic random-number utilities for workload generation.
 *
 * A thin wrapper around std::mt19937_64 with the handful of draws the
 * trace generator needs. Everything is seeded explicitly so that every
 * generated trace is reproducible from (profile, seed).
 */

#ifndef EMMCSIM_SIM_RANDOM_HH
#define EMMCSIM_SIM_RANDOM_HH

#include <cstdint>
#include <random>
#include <vector>

namespace emmcsim::sim {

/** Deterministic RNG facade used throughout the workload generator. */
class Rng
{
  public:
    /** @param seed Seed for the underlying engine. */
    explicit Rng(std::uint64_t seed) : engine_(seed) {}

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Uniform real in [lo, hi). */
    double uniformReal(double lo, double hi);

    /** Bernoulli trial with probability @p p of true. */
    bool chance(double p);

    /** Exponentially distributed real with mean @p mean (> 0). */
    double exponential(double mean);

    /**
     * Log-uniform real in [lo, hi): uniform in log space, so each
     * decade is equally likely. Requires 0 < lo < hi.
     */
    double logUniform(double lo, double hi);

    /**
     * Draw an index from a discrete distribution given by non-negative
     * weights. Weights need not be normalized; at least one must be
     * positive.
     */
    std::size_t weightedIndex(const std::vector<double> &weights);

    /** Access the raw engine (for std:: distributions in tests). */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace emmcsim::sim

#endif // EMMCSIM_SIM_RANDOM_HH
