/**
 * @file
 * Fundamental simulation types: the simulated clock and byte-size helpers.
 *
 * The whole simulator runs on a single integer nanosecond clock. All NAND
 * latencies in the paper (Table V) are given in microseconds and all trace
 * timing in milliseconds, so nanoseconds give comfortable headroom on both
 * ends while staying exact (no floating-point time).
 */

#ifndef EMMCSIM_SIM_TYPES_HH
#define EMMCSIM_SIM_TYPES_HH

#include <cstdint>

namespace emmcsim::sim {

/** Simulated time in nanoseconds since the start of the run. */
using Time = std::int64_t;

/** A time value meaning "never" / "not yet recorded". */
constexpr Time kTimeNever = -1;

/** @name Time-unit constructors. @{ */
constexpr Time
nanoseconds(std::int64_t n)
{
    return n;
}

constexpr Time
microseconds(std::int64_t us)
{
    return us * 1000;
}

constexpr Time
milliseconds(std::int64_t ms)
{
    return ms * 1000 * 1000;
}

constexpr Time
seconds(std::int64_t s)
{
    return s * 1000 * 1000 * 1000;
}
/** @} */

/** @name Time-unit readers (double-valued, for reporting only). @{ */
constexpr double
toMicroseconds(Time t)
{
    return static_cast<double>(t) / 1e3;
}

constexpr double
toMilliseconds(Time t)
{
    return static_cast<double>(t) / 1e6;
}

constexpr double
toSeconds(Time t)
{
    return static_cast<double>(t) / 1e9;
}
/** @} */

/** @name Byte-size helpers. @{ */
constexpr std::uint64_t kKiB = 1024;
constexpr std::uint64_t kMiB = 1024 * kKiB;
constexpr std::uint64_t kGiB = 1024 * kMiB;

constexpr std::uint64_t
kib(std::uint64_t n)
{
    return n * kKiB;
}

constexpr std::uint64_t
mib(std::uint64_t n)
{
    return n * kMiB;
}
/** @} */

/**
 * Size of one logical block address (LBA) sector. Block-level traces are
 * addressed in 512-byte sectors, as on the Nexus 5.
 */
constexpr std::uint64_t kSectorBytes = 512;

/**
 * Size of one logical mapping unit. The paper's file system aligns every
 * request to the 4KB flash page, so the FTL maps in 4KB units.
 */
constexpr std::uint64_t kUnitBytes = 4 * kKiB;

/** Sectors per 4KB mapping unit. */
constexpr std::uint64_t kSectorsPerUnit = kUnitBytes / kSectorBytes;

} // namespace emmcsim::sim

#endif // EMMCSIM_SIM_TYPES_HH
