/**
 * @file
 * Event and EventQueue: the discrete-event core of the simulator.
 *
 * Design (see DESIGN.md §11 and §16):
 *
 *  - **Slot-recycling arena.** Event state lives in 64-byte slots
 *    allocated in fixed-size chunks (stable addresses — growing the
 *    arena never relocates a live action); a fired or cancelled event
 *    returns its slot to a freelist, so peak memory tracks peak *live*
 *    events, not lifetime events. Each slot carries a generation
 *    counter bumped on retirement; an EventId is the pair {slot,
 *    generation}, so a stale handle held across slot reuse fails the
 *    generation match and cancel() safely returns false (no ABA).
 *
 *  - **Allocation-free actions.** Actions are InlineAction (48-byte
 *    inline storage, compile-time capture-size check) built in place
 *    inside the slot by the schedule() template, so the steady
 *    state — scheduling into a recycled slot — performs zero heap
 *    allocations and zero action moves.
 *
 *  - **Two-tier scheduler: calendar wheel over a 4-ary heap.** NAND
 *    op completions cluster at a handful of fixed latencies, so almost
 *    every schedule lands in a narrow near-future horizon. Once
 *    tuneWheel() has sized the wheel from the device's latency range,
 *    a schedule inside the horizon is an O(1) push into an unsorted
 *    time bucket; everything else (far-future timers, events behind
 *    the scan cursor) overflows into the generation-tagged 4-ary heap
 *    ordered by (time, sequence). Buckets are swept lazily: a bucket
 *    is sorted only when it becomes the earliest pending work, and
 *    when the wheel drains the window re-anchors on the heap front
 *    (an "epoch" advance) and promotes the near-horizon overflow back
 *    into buckets. Every pop takes the earlier of the staged-run and
 *    heap fronts under the same (time, sequence) total order, so the
 *    firing order — and byte-for-byte replay output — is identical to
 *    a pure heap. An untuned queue degenerates to the pure heap (plus
 *    the drain-sort below), which is what generic tests exercise.
 *
 *  - **Same-tick FIFO across tiers.** The per-schedule sequence number
 *    keeps same-tick events firing in scheduling order (FIFO), which
 *    the replayer relies on for simultaneous arrivals; cancellation
 *    leaves a dead entry behind (detected by generation mismatch) in
 *    whichever tier holds it, and the pending set is compacted in
 *    place when dead entries dominate.
 *
 *  - **Sorted drain run.** Popping n events off a large heap touches
 *    O(log n) scattered cache lines each; sorting the same entries
 *    once costs the same O(n log n) compares but streams memory
 *    sequentially. An untuned queue sorts the whole heap into a run
 *    past a size threshold; a tuned queue stages one bucket at a time
 *    through the same run. New events still enter their tier
 *    directly, and the run/heap front compare keeps the total order.
 *
 *  - **Batched same-tick dispatch.** dispatchTick() drains every
 *    event at the current tick into a reusable scratch batch and runs
 *    the actions in place, amortizing queue maintenance across the
 *    tick. Actions may schedule more work at the very same tick
 *    (streaming-replay arrivals do); those land in the overflow heap
 *    and are interleaved back by sequence number, so the batch fires
 *    in exactly the order a one-at-a-time pop loop would. The slot's
 *    generation is bumped *before* each action runs, so a firing
 *    event can no longer be cancelled, and the slot is recycled only
 *    after its action returns.
 */

#ifndef EMMCSIM_SIM_EVENT_HH
#define EMMCSIM_SIM_EVENT_HH

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/action.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace emmcsim::sim {

/** Callable body of a scheduled event (heap-free; see action.hh). */
using EventAction = InlineAction;

/**
 * Generation-tagged handle identifying a scheduled event (used to
 * cancel). Value-semantic and cheap to copy; a default-constructed
 * handle is never live.
 */
struct EventId
{
    /** Sentinel slot of a handle that was never issued. */
    static constexpr std::uint32_t kNoSlot = 0xffffffffu;

    std::uint32_t slot = kNoSlot;
    std::uint32_t gen = 0;

    friend bool
    operator==(const EventId &a, const EventId &b)
    {
        return a.slot == b.slot && a.gen == b.gen;
    }
    friend bool
    operator!=(const EventId &a, const EventId &b)
    {
        return !(a == b);
    }
};

/**
 * A time-ordered queue of events.
 *
 * This class owns no clock of its own; Simulator advances time by
 * popping the earliest event. Cancellation is lazy: cancelled events
 * leave a dead entry behind that is skipped when reached and swept
 * out wholesale once dead entries dominate the pending set.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    /**
     * Schedule an action at an absolute time. The callable is built
     * directly inside an arena slot (no InlineAction temporary); pass
     * either a raw callable or a prebuilt EventAction.
     *
     * @param when Absolute simulated time; must not be in the past
     *             relative to the last popped event (DCHECKed).
     * @param fn   Callback to run when the event fires; its capture
     *             must satisfy InlineAction::fits (compile-time).
     * @return Handle usable with cancel().
     */
    template <typename F>
    EventId
    schedule(Time when, F &&fn)
    {
        return scheduleSeq(when, nextSeq_++, std::forward<F>(fn));
    }

    /**
     * Schedule in the *front sequence band*: at a tied tick, a
     * front-band event fires before every normal-band event, no matter
     * when either was scheduled.
     *
     * Replay arrivals use this. The in-memory replayer schedules all
     * arrivals before anything else, so they historically won every
     * same-tick tie against completions by holding the lowest sequence
     * numbers; a streaming replayer schedules arrivals chunk by chunk
     * *during* the run and would lose those ties. Putting arrivals in
     * their own low band makes both paths pop in the same order — the
     * byte-identity contract between them rests on this.
     *
     * Front-band events are FIFO among themselves (their own counter).
     */
    template <typename F>
    EventId
    scheduleFront(Time when, F &&fn)
    {
        EMMCSIM_ASSERT(nextFrontSeq_ + 1 < kNormalSeqBase,
                       "front sequence band exhausted");
        return scheduleSeq(when, nextFrontSeq_++, std::forward<F>(fn));
    }

  private:
    template <typename F>
    EventId
    scheduleSeq(Time when, std::uint64_t seq, F &&fn)
    {
        EMMCSIM_ASSERT(when >= 0, "event scheduled at negative time");
        // Documented contract: never behind the simulation clock.
        // Cheap enough to check in debug on every schedule.
        EMMCSIM_DCHECK(when >= lastPopTime_,
                       "event scheduled before the last popped event");

        std::uint32_t slot;
        if (!freelist_.empty()) {
            slot = freelist_.back();
            freelist_.pop_back();
        } else {
            EMMCSIM_ASSERT(slotCount_ < EventId::kNoSlot,
                           "event arena exhausted the slot space");
            // for_overwrite: run the slot constructors (ops/gen) but
            // skip zero-filling 16 KiB of capture storage per chunk.
            if (slotCount_ == chunks_.size() * kChunkSlots)
                chunks_.push_back(
                    std::make_unique_for_overwrite<Slot[]>(kChunkSlots));
            slot = static_cast<std::uint32_t>(slotCount_++);
        }
        Slot &sl = slotAt(slot);
        if constexpr (std::is_same_v<std::decay_t<F>, EventAction>)
            sl.action = std::forward<F>(fn);
        else
            sl.action.emplace(std::forward<F>(fn));

        pushEntry(HeapEntry{when, seq, slot, sl.gen});
        ++liveCount_;
        if (liveCount_ > highWater_)
            highWater_ = liveCount_;
        ++scheduledCount_;
        return EventId{slot, sl.gen};
    }

  public:
    /**
     * Cancel a previously scheduled event.
     *
     * @retval true  The event existed and was cancelled.
     * @retval false The event already fired, was already cancelled,
     *               or the handle is stale (its slot was recycled).
     */
    bool cancel(EventId id);

    /** @return true when no live events remain. */
    bool empty() const { return liveCount_ == 0; }

    /** @return number of live (non-cancelled, unfired) events. */
    std::size_t size() const { return liveCount_; }

    /** @return time of the earliest live event; kTimeNever if empty. */
    Time nextTime() const;

    /**
     * Size the calendar wheel from the device's fixed operation
     * latencies: bucket width a quarter of the shortest latency
     * (rounded down to a power of two), window span twice the longest
     * (rounded up, clamped). Idempotent; safe to call with events
     * pending (staged wheel state is flushed back into the heap
     * first). Must not be called from inside a firing action.
     *
     * @param shortestLatency Shortest recurring delay (> 0).
     * @param longestLatency  Longest common delay (>= shortest).
     */
    void tuneWheel(Time shortestLatency, Time longestLatency);

    /** @return true once tuneWheel() configured the calendar tier. */
    bool wheelTuned() const { return tuned_; }

    /**
     * Pop the earliest live event without running it (the caller
     * advances its clock first, then invokes the action).
     *
     * @param when_out   Receives the event's firing time.
     * @param action_out Receives the event's action.
     * @retval true  An event was popped.
     * @retval false The queue was empty.
     */
    bool pop(Time &when_out, EventAction &action_out);

    /**
     * Pop the earliest live event and run it in place (the simulator
     * hot loop; avoids moving the action out of its slot).
     *
     * @p preInvoke is called with the event's firing time after the
     * event is committed but before its action runs — the caller
     * advances its clock there. The firing event's slot is recycled
     * only after the action returns; the action may freely schedule
     * or cancel other events (slot addresses are chunk-stable).
     *
     * @retval true  An event fired.
     * @retval false The queue was empty.
     */
    template <typename PreInvoke>
    bool
    dispatchNext(PreInvoke &&preInvoke)
    {
        HeapEntry e;
        if (!takeEarliest(e))
            return false;
        // Upcoming events' slots are random (cold) cache lines; start
        // pulling them in while the current action runs. The drain run
        // exposes the exact pop order, so prefetch several pops ahead.
        if (runPos_ < run_.size()) {
            const std::size_t ahead =
                std::min(runPos_ + kPrefetchAhead, run_.size() - 1);
            __builtin_prefetch(&slotAt(run_[ahead].slot));
            __builtin_prefetch(&slotAt(run_[runPos_].slot));
        } else if (!heap_.empty()) {
            __builtin_prefetch(&slotAt(heap_.front().slot));
        }
        EMMCSIM_DCHECK(e.when >= lastPopTime_,
                       "event popped out of order");
        lastPopTime_ = e.when;
        fireEntry(e, preInvoke);
        return true;
    }

    /**
     * Drain and run *every* event at the earliest pending tick (the
     * batched simulator hot loop). Same-tick entries are gathered
     * into a reusable scratch batch once, then dispatched in place;
     * events an action schedules at the same tick land in the
     * overflow heap and are interleaved back by sequence number, so
     * the firing order matches a one-at-a-time pop loop exactly.
     *
     * @p preInvoke runs before each action with the tick (the caller
     * advances its clock there); @p postEvent runs after each action
     * returns (post-event hooks). Either may schedule or cancel.
     *
     * @return number of events fired (0 when the queue was empty).
     */
    template <typename PreInvoke, typename PostEvent>
    std::size_t
    dispatchTick(PreInvoke &&preInvoke, PostEvent &&postEvent)
    {
        HeapEntry first;
        if (!takeEarliest(first))
            return 0;
        const Time tick = first.when;
        EMMCSIM_DCHECK(tick >= lastPopTime_,
                       "event popped out of order");
        lastPopTime_ = tick;
        batch_.clear();
        batch_.push_back(first);
        gatherTick(tick);
        batchActive_ = true;
        batchTick_ = tick;
        batchPos_ = 0;
        std::size_t fired = 0;
        while (true) {
            // Shed dead heap fronts so the interleave probe below
            // sees a live entry (mid-batch cancels leave them).
            while (!heap_.empty() && !entryLive(heap_.front())) {
                heapPopFront();
                EMMCSIM_DCHECK(deadEntries_ > 0,
                               "dead heap entry not accounted for");
                --deadEntries_;
            }
            const bool tailLeft = batchPos_ < batch_.size();
            // Mid-batch schedules at the current tick (the streaming
            // replayer's front-band arrivals) are forced into the
            // overflow heap; interleave them by sequence so the pop
            // order matches a pure (when, seq) queue byte for byte.
            const bool fromHeap =
                !heap_.empty() && heap_.front().when == tick &&
                (!tailLeft ||
                 heap_.front().seq < batch_[batchPos_].seq);
            if (!fromHeap && !tailLeft)
                break;
            HeapEntry e;
            if (fromHeap) {
                e = heap_.front();
                heapPopFront();
            } else {
                e = batch_[batchPos_++];
                if (batchPos_ + kPrefetchAhead < batch_.size())
                    __builtin_prefetch(&slotAt(
                        batch_[batchPos_ + kPrefetchAhead].slot));
                if (!entryLive(e)) { // cancelled after the gather
                    EMMCSIM_DCHECK(deadEntries_ > 0,
                                   "dead batch entry not accounted "
                                   "for");
                    --deadEntries_;
                    continue;
                }
            }
            fireEntry(e, preInvoke);
            ++fired;
            postEvent(tick);
        }
        batchActive_ = false;
        batch_.clear();
        batchPos_ = 0;
        ++batches_;
        batchedEvents_ += fired;
        if (fired > maxBatch_)
            maxBatch_ = fired;
        return fired;
    }

    /** Total number of events ever scheduled (for stats/tests). */
    std::uint64_t scheduledCount() const { return scheduledCount_; }

    /** Firing time of the most recently popped event; 0 before any. */
    Time lastPopTime() const { return lastPopTime_; }

    /** @name Arena / scheduler statistics (memory + perf accounting).
     *  @{ */

    /** Slots ever created; the arena's memory footprint. */
    std::size_t arenaSlots() const { return slotCount_; }

    /** Most events simultaneously live (peak-RSS proxy). */
    std::size_t arenaHighWater() const { return highWater_; }

    /** Slots currently parked on the freelist. */
    std::size_t freeSlots() const { return freelist_.size(); }

    /**
     * Slots held by an in-flight dispatch (0 or 1): the firing event
     * is no longer live but not yet recycled, so auditors running
     * inside an action must count it separately.
     */
    std::size_t inFlightSlots() const
    {
        return firing_ != EventId::kNoSlot ? 1u : 0u;
    }

    /** Cancelled-but-unswept entries across the pending set. */
    std::size_t deadHeapEntries() const { return deadEntries_; }

    /** Times the pending set was compacted (dead entries swept). */
    std::uint64_t heapCompactions() const { return compactions_; }

    /** Times the heap was sorted wholesale into a drain run. */
    std::uint64_t drainSorts() const { return drainSorts_; }

    /** Number of wheel buckets (0 until tuned). */
    std::size_t wheelBucketCount() const { return nBuckets_; }

    /** Bucket width in ns (0 until tuned). */
    Time
    wheelBucketWidth() const
    {
        return tuned_ ? Time{1} << bucketShift_ : 0;
    }

    /** Entries currently parked in wheel buckets (incl. dead). */
    std::size_t wheelOccupancy() const { return wheelCount_; }

    /** Entries currently in the overflow heap (incl. dead). */
    std::size_t overflowSize() const { return heap_.size(); }

    /** Entries staged in the sorted run, not yet consumed. */
    std::size_t stagedRunEntries() const { return run_.size() - runPos_; }

    /** Unfired entries of an in-flight dispatchTick() batch. */
    std::size_t batchTailEntries() const
    {
        return batch_.size() - batchPos_;
    }

    /** Schedules that took the O(1) wheel path. */
    std::uint64_t wheelScheduled() const { return wheelScheduled_; }

    /** Schedules demoted to the overflow heap while tuned. */
    std::uint64_t overflowScheduled() const { return overflowScheduled_; }

    /** Overflow entries promoted into buckets at epoch advances. */
    std::uint64_t wheelPromotions() const { return promotions_; }

    /** Times the wheel window re-anchored (epoch advances). */
    std::uint64_t wheelEpochs() const { return epochs_; }

    /** dispatchTick() batches completed. */
    std::uint64_t dispatchBatches() const { return batches_; }

    /** Events fired through dispatchTick() batches. */
    std::uint64_t batchedEvents() const { return batchedEvents_; }

    /** Largest single same-tick batch dispatched. */
    std::size_t maxBatchSize() const { return maxBatch_; }

    /** @} */

    /**
     * Append a description of every internal-consistency violation to
     * @p violations under the generation-ledger model: slot/freelist
     * conservation, freelist hygiene (no duplicates, no parked
     * actions), pending coverage of live slots across *all* tiers
     * (wheel buckets, overflow heap, staged run, batch tail), the
     * 4-ary heap ordering property, bucket filing, dead-entry
     * accounting, and time monotonicity. Safe to call from inside a
     * firing action (device audit hooks do): the in-flight slot is
     * accounted separately.
     *
     * @return number of individual predicates evaluated.
     */
    std::uint64_t auditInvariants(std::vector<std::string> &violations) const;

    /**
     * Test hook: skew the live-event counter so tests can prove
     * auditInvariants() catches bookkeeping drift. Never call outside
     * tests.
     */
    void corruptLiveCountForTest(std::int64_t delta);

    /**
     * Test hook: overwrite the last-pop watermark so tests can stage
     * a "pending event older than the last pop" state without going
     * through schedule() (whose DCHECK would reject it). Never call
     * outside tests.
     */
    void corruptLastPopTimeForTest(Time t) { lastPopTime_ = t; }

  private:
    /** Arena slot: the action plus its current generation. */
    struct Slot
    {
        EventAction action;
        std::uint32_t gen = 0;
    };
    static_assert(sizeof(Slot) == 64,
                  "arena slot must stay one cache line; check "
                  "InlineAction's layout before growing it");

    /** One pending entry (wheel bucket, heap, run, or batch). */
    struct HeapEntry
    {
        Time when;
        std::uint64_t seq; ///< schedule order; same-tick FIFO tie-break
        std::uint32_t slot;
        std::uint32_t gen;
    };

    /**
     * First sequence number of the normal band. scheduleFront() draws
     * from [0, kNormalSeqBase), schedule() from [kNormalSeqBase, 2^64);
     * the split is what lets a front-band event win every same-tick
     * tie regardless of scheduling order.
     */
    static constexpr std::uint64_t kNormalSeqBase = std::uint64_t{1}
                                                    << 63;

    /** Heap arity. 4 wins over 2 on sift-down cache behaviour. */
    static constexpr std::size_t kArity = 4;

    /** Don't bother compacting pending sets smaller than this. */
    static constexpr std::size_t kCompactMin = 64;

    /**
     * Untuned queues: sort the heap into a drain run once it reaches
     * this size with no active run. Small enough that the replayer's
     * steady-state in-flight window benefits; large enough that a
     * near-empty queue never pays a sort.
     */
    static constexpr std::size_t kDrainSortMin = 256;

    /** How many pops ahead to prefetch slots in drain-run order. */
    static constexpr std::size_t kPrefetchAhead = 8;

    /** Wheel sizing bounds: bucket width floor 1.024 us; bucket count
     *  clamped so a degenerate latency range cannot build a wheel
     *  that dwarfs the pending set. */
    static constexpr unsigned kMinBucketShift = 10;
    static constexpr std::size_t kMinBuckets = 64;
    static constexpr std::size_t kMaxBuckets = 4096;

    /** Slots per arena chunk (16 KiB chunks of 64-byte slots). */
    static constexpr std::size_t kChunkShift = 8;
    static constexpr std::size_t kChunkSlots = std::size_t{1}
                                               << kChunkShift;

    static bool
    earlier(const HeapEntry &a, const HeapEntry &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    Slot &
    slotAt(std::uint32_t i)
    {
        return chunks_[i >> kChunkShift][i & (kChunkSlots - 1)];
    }
    const Slot &
    slotAt(std::uint32_t i) const
    {
        return chunks_[i >> kChunkShift][i & (kChunkSlots - 1)];
    }

    /** @return true when @p e still names a live event. */
    bool
    entryLive(const HeapEntry &e) const
    {
        return e.slot < slotCount_ && slotAt(e.slot).gen == e.gen;
    }

    /** Bucket index of @p when; caller checked the window. */
    std::size_t
    bucketIndex(Time when) const
    {
        return static_cast<std::size_t>((when - wheelBase_) >>
                                        bucketShift_);
    }

    /** Start time of bucket @p i. */
    Time
    bucketStart(std::size_t i) const
    {
        return wheelBase_ + (static_cast<Time>(i) << bucketShift_);
    }

    /**
     * File a new pending entry in the right tier. In-window,
     * unconsumed ticks take the O(1) wheel path; everything else —
     * far-future times, ticks behind the scan cursor, and any
     * schedule at the tick a batch is currently dispatching (the
     * batch interleave probe only watches the heap front) — goes to
     * the overflow heap.
     */
    void
    pushEntry(const HeapEntry &e)
    {
        if (tuned_) {
            const Time off = e.when - wheelBase_;
            if (off >= 0) {
                const std::size_t idx =
                    static_cast<std::size_t>(off >> bucketShift_);
                if (idx < nBuckets_ && idx >= nextScan_ &&
                    !(batchActive_ && e.when == batchTick_)) {
                    buckets_[idx].push_back(e);
                    ++wheelCount_;
                    ++wheelScheduled_;
                    return;
                }
            }
            ++overflowScheduled_;
        }
        heapPush(e);
    }

    void
    heapPush(const HeapEntry &e)
    {
        heap_.push_back(e);
        siftUp(heap_.size() - 1);
    }

    // heapPopFront/siftDown are const because nextTime() must be able
    // to shed dead front entries; they touch only mutable members.
    void
    heapPopFront() const
    {
        heap_.front() = heap_.back();
        heap_.pop_back();
        if (!heap_.empty())
            siftDown(0);
    }

    void
    siftUp(std::size_t i)
    {
        const HeapEntry e = heap_[i];
        while (i > 0) {
            const std::size_t parent = (i - 1) / kArity;
            if (!earlier(e, heap_[parent]))
                break;
            heap_[i] = heap_[parent];
            i = parent;
        }
        heap_[i] = e;
    }

    void
    siftDown(std::size_t i) const
    {
        const std::size_t n = heap_.size();
        const HeapEntry e = heap_[i];
        while (true) {
            const std::size_t first = i * kArity + 1;
            if (first >= n)
                break;
            const std::size_t last = std::min(first + kArity, n);
            std::size_t best = first;
            for (std::size_t c = first + 1; c < last; ++c) {
                if (earlier(heap_[c], heap_[best]))
                    best = c;
            }
            if (!earlier(heap_[best], e))
                break;
            heap_[i] = heap_[best];
            i = best;
        }
        heap_[i] = e;
    }

    /** Drop dead (cancelled) entries off the run and heap fronts. */
    void
    dropDeadFronts() const
    {
        while (runPos_ < run_.size() && !entryLive(run_[runPos_])) {
            ++runPos_;
            EMMCSIM_DCHECK(deadEntries_ > 0,
                           "dead run entry not accounted for");
            --deadEntries_;
        }
        if (runPos_ == run_.size() && !run_.empty()) {
            run_.clear(); // fully consumed; keep capacity
            runPos_ = 0;
        }
        while (!heap_.empty() && !entryLive(heap_.front())) {
            heapPopFront();
            EMMCSIM_DCHECK(deadEntries_ > 0,
                           "dead heap entry not accounted for");
            --deadEntries_;
        }
    }

    /**
     * Sort the entire heap into the (empty) drain run. One sequential
     * bucket-distribution sort replaces n cache-scattered O(log n)
     * sift-downs; the swap also hands the retired run's capacity to
     * the heap. Untuned queues only — a tuned queue stages wheel
     * buckets instead.
     */
    void
    sortPendingIntoRun() const
    {
        run_.swap(heap_);
        sortRunEntries();
        runPos_ = 0;
        ++drainSorts_;
    }

    /** Sort run_ ascending by (when, seq); see event.cc. */
    void sortRunEntries() const;

    /**
     * Stage the next chunk of pending work into the sorted run: the
     * untuned drain-sort, or — once tuned — the earliest non-empty
     * wheel bucket (re-anchoring the window on the overflow front
     * when the wheel has drained). See event.cc.
     */
    void refill() const;

    /** Run actions in place out of the slot; shared fire path. */
    template <typename PreInvoke>
    void
    fireEntry(const HeapEntry &e, PreInvoke &preInvoke)
    {
        Slot &sl = slotAt(e.slot);
        ++sl.gen; // a firing event can no longer be cancelled
        EMMCSIM_DCHECK(liveCount_ > 0,
                       "dispatch with zero live events (ledger drift)");
        --liveCount_;
        firing_ = e.slot;
        preInvoke(e.when);
        sl.action();
        sl.action = nullptr; // release captured state eagerly
        firing_ = EventId::kNoSlot;
        freelist_.push_back(e.slot);
    }

    /**
     * Remove and return the earliest live pending entry, consulting
     * the staged run and the overflow heap (whichever front is
     * earlier under (when, seq) — the same total order a pure heap
     * pops in). Unstaged wheel buckets are all later than both
     * fronts, by construction (refill stages any bucket that could
     * hold the minimum).
     */
    bool
    takeEarliest(HeapEntry &out)
    {
        dropDeadFronts();
        while (runPos_ >= run_.size()) {
            refill();
            if (runPos_ >= run_.size())
                break; // nothing stageable; the heap front is next
            dropDeadFronts(); // staged bucket may be entirely dead
        }
        const bool haveRun = runPos_ < run_.size();
        if (!haveRun && heap_.empty())
            return false;
        if (haveRun &&
            (heap_.empty() || earlier(run_[runPos_], heap_.front()))) {
            out = run_[runPos_++];
            if (runPos_ == run_.size()) {
                run_.clear();
                runPos_ = 0;
            }
        } else {
            out = heap_.front();
            heapPopFront();
        }
        return true;
    }

    /**
     * Pull every remaining entry at @p tick off the run and heap
     * fronts into batch_, merged in (when, seq) order. Unstaged
     * buckets cannot hold entries at @p tick: the bucket covering
     * @p tick was staged by refill before the first entry popped
     * (see takeEarliest), and later buckets start strictly after it.
     */
    void
    gatherTick(Time tick)
    {
        while (true) {
            dropDeadFronts();
            const bool haveRun =
                runPos_ < run_.size() && run_[runPos_].when == tick;
            const bool haveHeap =
                !heap_.empty() && heap_.front().when == tick;
            if (haveRun &&
                (!haveHeap ||
                 run_[runPos_].seq < heap_.front().seq)) {
                batch_.push_back(run_[runPos_++]);
                if (runPos_ == run_.size()) {
                    run_.clear();
                    runPos_ = 0;
                }
            } else if (haveHeap) {
                batch_.push_back(heap_.front());
                heapPopFront();
            } else {
                break;
            }
        }
    }

    /** Live + dead entries still pending across every tier. */
    std::size_t
    pendingEntries() const
    {
        return heap_.size() + (run_.size() - runPos_) + wheelCount_ +
               (batch_.size() - batchPos_);
    }

    /** Sweep all dead entries and re-heapify (Floyd build). */
    void compact();

    /** Move staged run + bucket entries back into the heap. */
    void flushWheelToHeap();

    /** Retire a slot: destroy its action, bump gen, recycle. */
    void retireSlot(std::uint32_t slot);

    mutable std::vector<HeapEntry> heap_; ///< overflow tier
    mutable std::vector<HeapEntry> run_;  ///< sorted drain run
    mutable std::size_t runPos_ = 0;      ///< next unconsumed run entry
    mutable std::size_t deadEntries_ = 0;
    mutable std::uint64_t drainSorts_ = 0;
    /// Reused scratch for sortRunEntries (alloc-free steady state).
    mutable std::vector<HeapEntry> sortScratch_;
    mutable std::vector<std::uint32_t> sortCounts_;

    /// Calendar-wheel tier (empty vectors until tuneWheel()).
    mutable std::vector<std::vector<HeapEntry>> buckets_;
    mutable Time wheelBase_ = 0;     ///< window start (width-aligned)
    mutable std::size_t nextScan_ = 0; ///< first unconsumed bucket
    mutable std::size_t wheelCount_ = 0; ///< entries across buckets
    unsigned bucketShift_ = 0;       ///< log2(bucket width in ns)
    std::size_t nBuckets_ = 0;
    bool tuned_ = false;

    /// Batched-dispatch scratch (dispatchTick()).
    std::vector<HeapEntry> batch_;
    std::size_t batchPos_ = 0;
    Time batchTick_ = 0;
    bool batchActive_ = false;

    std::vector<std::unique_ptr<Slot[]>> chunks_;
    std::size_t slotCount_ = 0;
    std::vector<std::uint32_t> freelist_;
    std::uint64_t nextSeq_ = kNormalSeqBase;
    std::uint64_t nextFrontSeq_ = 0;
    std::uint64_t scheduledCount_ = 0;
    std::size_t liveCount_ = 0;
    std::size_t highWater_ = 0;
    std::uint64_t compactions_ = 0;
    std::uint64_t wheelScheduled_ = 0;
    std::uint64_t overflowScheduled_ = 0;
    mutable std::uint64_t promotions_ = 0;
    mutable std::uint64_t epochs_ = 0;
    std::uint64_t batches_ = 0;
    std::uint64_t batchedEvents_ = 0;
    std::size_t maxBatch_ = 0;
    Time lastPopTime_ = 0;
    /** Slot whose action is executing in a dispatch, if any. */
    std::uint32_t firing_ = EventId::kNoSlot;
};

} // namespace emmcsim::sim

#endif // EMMCSIM_SIM_EVENT_HH
