/**
 * @file
 * Event and EventQueue: the discrete-event core of the simulator.
 *
 * Design (see DESIGN.md §11):
 *
 *  - **Slot-recycling arena.** Event state lives in 64-byte slots
 *    allocated in fixed-size chunks (stable addresses — growing the
 *    arena never relocates a live action); a fired or cancelled event
 *    returns its slot to a freelist, so peak memory tracks peak *live*
 *    events, not lifetime events. Each slot carries a generation
 *    counter bumped on retirement; an EventId is the pair {slot,
 *    generation}, so a stale handle held across slot reuse fails the
 *    generation match and cancel() safely returns false (no ABA).
 *
 *  - **Allocation-free actions.** Actions are InlineAction (48-byte
 *    inline storage, compile-time capture-size check) built in place
 *    inside the slot by the schedule() template, so the steady
 *    state — scheduling into a recycled slot — performs zero heap
 *    allocations and zero action moves.
 *
 *  - **4-ary heap with lazy delete.** Incoming events sit in an
 *    explicit 4-ary heap ordered by (time, sequence); the per-schedule
 *    sequence number keeps same-tick events firing in scheduling order
 *    (FIFO), which the replayer relies on for simultaneous arrivals.
 *    Cancellation leaves a dead entry behind (detected by generation
 *    mismatch); when dead entries exceed half the pending set it is
 *    compacted in place and re-heapified.
 *
 *  - **Sorted drain run.** Popping n events off a large heap touches
 *    O(log n) scattered cache lines each; sorting the same entries
 *    once costs the same O(n log n) compares but streams memory
 *    sequentially. So when the heap grows past a threshold while no
 *    run is active, the pop path sorts the whole heap into a run and
 *    then serves events from a cursor. New events still enter the
 *    4-ary heap; every pop takes the earlier of the two fronts under
 *    the same (time, sequence) total order, so the firing order — and
 *    byte-for-byte replay output — is identical to a pure heap.
 *
 *  - **In-place dispatch.** The simulator loop runs actions directly
 *    out of the slot (dispatchNext()) — chunk addresses are stable, so
 *    no move-out is needed. The slot's generation is bumped *before*
 *    the action runs, so a firing event can no longer be cancelled,
 *    and the slot is recycled only after the action returns.
 */

#ifndef EMMCSIM_SIM_EVENT_HH
#define EMMCSIM_SIM_EVENT_HH

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/action.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace emmcsim::sim {

/** Callable body of a scheduled event (heap-free; see action.hh). */
using EventAction = InlineAction;

/**
 * Generation-tagged handle identifying a scheduled event (used to
 * cancel). Value-semantic and cheap to copy; a default-constructed
 * handle is never live.
 */
struct EventId
{
    /** Sentinel slot of a handle that was never issued. */
    static constexpr std::uint32_t kNoSlot = 0xffffffffu;

    std::uint32_t slot = kNoSlot;
    std::uint32_t gen = 0;

    friend bool
    operator==(const EventId &a, const EventId &b)
    {
        return a.slot == b.slot && a.gen == b.gen;
    }
    friend bool
    operator!=(const EventId &a, const EventId &b)
    {
        return !(a == b);
    }
};

/**
 * A time-ordered queue of events.
 *
 * This class owns no clock of its own; Simulator advances time by
 * popping the earliest event. Cancellation is lazy: cancelled events
 * leave a dead heap entry behind that is skipped when popped and
 * swept out wholesale once dead entries dominate the heap.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    /**
     * Schedule an action at an absolute time. The callable is built
     * directly inside an arena slot (no InlineAction temporary); pass
     * either a raw callable or a prebuilt EventAction.
     *
     * @param when Absolute simulated time; must not be in the past
     *             relative to the last popped event (DCHECKed).
     * @param fn   Callback to run when the event fires; its capture
     *             must satisfy InlineAction::fits (compile-time).
     * @return Handle usable with cancel().
     */
    template <typename F>
    EventId
    schedule(Time when, F &&fn)
    {
        return scheduleSeq(when, nextSeq_++, std::forward<F>(fn));
    }

    /**
     * Schedule in the *front sequence band*: at a tied tick, a
     * front-band event fires before every normal-band event, no matter
     * when either was scheduled.
     *
     * Replay arrivals use this. The in-memory replayer schedules all
     * arrivals before anything else, so they historically won every
     * same-tick tie against completions by holding the lowest sequence
     * numbers; a streaming replayer schedules arrivals chunk by chunk
     * *during* the run and would lose those ties. Putting arrivals in
     * their own low band makes both paths pop in the same order — the
     * byte-identity contract between them rests on this.
     *
     * Front-band events are FIFO among themselves (their own counter).
     */
    template <typename F>
    EventId
    scheduleFront(Time when, F &&fn)
    {
        EMMCSIM_ASSERT(nextFrontSeq_ + 1 < kNormalSeqBase,
                       "front sequence band exhausted");
        return scheduleSeq(when, nextFrontSeq_++, std::forward<F>(fn));
    }

  private:
    template <typename F>
    EventId
    scheduleSeq(Time when, std::uint64_t seq, F &&fn)
    {
        EMMCSIM_ASSERT(when >= 0, "event scheduled at negative time");
        // Documented contract: never behind the simulation clock.
        // Cheap enough to check in debug on every schedule.
        EMMCSIM_DCHECK(when >= lastPopTime_,
                       "event scheduled before the last popped event");

        std::uint32_t slot;
        if (!freelist_.empty()) {
            slot = freelist_.back();
            freelist_.pop_back();
        } else {
            EMMCSIM_ASSERT(slotCount_ < EventId::kNoSlot,
                           "event arena exhausted the slot space");
            // for_overwrite: run the slot constructors (ops/gen) but
            // skip zero-filling 16 KiB of capture storage per chunk.
            if (slotCount_ == chunks_.size() * kChunkSlots)
                chunks_.push_back(
                    std::make_unique_for_overwrite<Slot[]>(kChunkSlots));
            slot = static_cast<std::uint32_t>(slotCount_++);
        }
        Slot &sl = slotAt(slot);
        if constexpr (std::is_same_v<std::decay_t<F>, EventAction>)
            sl.action = std::forward<F>(fn);
        else
            sl.action.emplace(std::forward<F>(fn));

        heapPush(HeapEntry{when, seq, slot, sl.gen});
        ++liveCount_;
        if (liveCount_ > highWater_)
            highWater_ = liveCount_;
        ++scheduledCount_;
        return EventId{slot, sl.gen};
    }

  public:
    /**
     * Cancel a previously scheduled event.
     *
     * @retval true  The event existed and was cancelled.
     * @retval false The event already fired, was already cancelled,
     *               or the handle is stale (its slot was recycled).
     */
    bool cancel(EventId id);

    /** @return true when no live events remain. */
    bool empty() const { return liveCount_ == 0; }

    /** @return number of live (non-cancelled, unfired) events. */
    std::size_t size() const { return liveCount_; }

    /** @return time of the earliest live event; kTimeNever if empty. */
    Time nextTime() const;

    /**
     * Pop the earliest live event without running it (the caller
     * advances its clock first, then invokes the action).
     *
     * @param when_out   Receives the event's firing time.
     * @param action_out Receives the event's action.
     * @retval true  An event was popped.
     * @retval false The queue was empty.
     */
    bool pop(Time &when_out, EventAction &action_out);

    /**
     * Pop the earliest live event and run it in place (the simulator
     * hot loop; avoids moving the action out of its slot).
     *
     * @p preInvoke is called with the event's firing time after the
     * event is committed but before its action runs — the caller
     * advances its clock there. The firing event's slot is recycled
     * only after the action returns; the action may freely schedule
     * or cancel other events (slot addresses are chunk-stable).
     *
     * @retval true  An event fired.
     * @retval false The queue was empty.
     */
    template <typename PreInvoke>
    bool
    dispatchNext(PreInvoke &&preInvoke)
    {
        HeapEntry e;
        if (!takeEarliest(e))
            return false;
        // Upcoming events' slots are random (cold) cache lines; start
        // pulling them in while the current action runs. The drain run
        // exposes the exact pop order, so prefetch several pops ahead.
        if (runPos_ < run_.size()) {
            const std::size_t ahead =
                std::min(runPos_ + kPrefetchAhead, run_.size() - 1);
            __builtin_prefetch(&slotAt(run_[ahead].slot));
            __builtin_prefetch(&slotAt(run_[runPos_].slot));
        } else if (!heap_.empty()) {
            __builtin_prefetch(&slotAt(heap_.front().slot));
        }
        EMMCSIM_DCHECK(e.when >= lastPopTime_,
                       "event popped out of order");
        lastPopTime_ = e.when;
        Slot &sl = slotAt(e.slot);
        ++sl.gen; // a firing event can no longer be cancelled
        EMMCSIM_DCHECK(liveCount_ > 0,
                       "dispatch with zero live events (ledger drift)");
        --liveCount_;
        firing_ = e.slot;
        preInvoke(e.when);
        sl.action();
        sl.action = nullptr; // release captured state eagerly
        firing_ = EventId::kNoSlot;
        freelist_.push_back(e.slot);
        return true;
    }

    /** Total number of events ever scheduled (for stats/tests). */
    std::uint64_t scheduledCount() const { return scheduledCount_; }

    /** Firing time of the most recently popped event; 0 before any. */
    Time lastPopTime() const { return lastPopTime_; }

    /** @name Arena / heap statistics (memory + perf accounting). @{ */

    /** Slots ever created; the arena's memory footprint. */
    std::size_t arenaSlots() const { return slotCount_; }

    /** Most events simultaneously live (peak-RSS proxy). */
    std::size_t arenaHighWater() const { return highWater_; }

    /** Slots currently parked on the freelist. */
    std::size_t freeSlots() const { return freelist_.size(); }

    /**
     * Slots held by an in-flight dispatchNext() (0 or 1): the firing
     * event is no longer live but not yet recycled, so auditors
     * running inside an action must count it separately.
     */
    std::size_t inFlightSlots() const
    {
        return firing_ != EventId::kNoSlot ? 1u : 0u;
    }

    /** Cancelled-but-unswept entries still sitting in the heap. */
    std::size_t deadHeapEntries() const { return deadEntries_; }

    /** Times the heap was compacted (dead entries swept wholesale). */
    std::uint64_t heapCompactions() const { return compactions_; }

    /** Times the heap was sorted wholesale into a drain run. */
    std::uint64_t drainSorts() const { return drainSorts_; }

    /** @} */

    /**
     * Append a description of every internal-consistency violation to
     * @p violations under the generation-ledger model: slot/freelist
     * conservation, freelist hygiene (no duplicates, no parked
     * actions), heap coverage of live slots, the 4-ary heap ordering
     * property, dead-entry accounting, and time monotonicity. Safe to
     * call from inside a firing action (device audit hooks do): the
     * in-flight slot is accounted separately.
     *
     * @return number of individual predicates evaluated.
     */
    std::uint64_t auditInvariants(std::vector<std::string> &violations) const;

    /**
     * Test hook: skew the live-event counter so tests can prove
     * auditInvariants() catches bookkeeping drift. Never call outside
     * tests.
     */
    void corruptLiveCountForTest(std::int64_t delta);

    /**
     * Test hook: overwrite the last-pop watermark so tests can stage
     * a "pending event older than the last pop" state without going
     * through schedule() (whose DCHECK would reject it). Never call
     * outside tests.
     */
    void corruptLastPopTimeForTest(Time t) { lastPopTime_ = t; }

  private:
    /** Arena slot: the action plus its current generation. */
    struct Slot
    {
        EventAction action;
        std::uint32_t gen = 0;
    };
    static_assert(sizeof(Slot) == 64,
                  "arena slot must stay one cache line; check "
                  "InlineAction's layout before growing it");

    /** One pending entry in the 4-ary heap. */
    struct HeapEntry
    {
        Time when;
        std::uint64_t seq; ///< schedule order; same-tick FIFO tie-break
        std::uint32_t slot;
        std::uint32_t gen;
    };

    /**
     * First sequence number of the normal band. scheduleFront() draws
     * from [0, kNormalSeqBase), schedule() from [kNormalSeqBase, 2^64);
     * the split is what lets a front-band event win every same-tick
     * tie regardless of scheduling order.
     */
    static constexpr std::uint64_t kNormalSeqBase = std::uint64_t{1}
                                                    << 63;

    /** Heap arity. 4 wins over 2 on sift-down cache behaviour. */
    static constexpr std::size_t kArity = 4;

    /** Don't bother compacting pending sets smaller than this. */
    static constexpr std::size_t kCompactMin = 64;

    /**
     * Sort the heap into a drain run once it reaches this size with
     * no active run. Small enough that the replayer's steady-state
     * in-flight window benefits; large enough that a near-empty queue
     * never pays a sort.
     */
    static constexpr std::size_t kDrainSortMin = 256;

    /** How many pops ahead to prefetch slots in drain-run order. */
    static constexpr std::size_t kPrefetchAhead = 8;

    /** Slots per arena chunk (16 KiB chunks of 64-byte slots). */
    static constexpr std::size_t kChunkShift = 8;
    static constexpr std::size_t kChunkSlots = std::size_t{1}
                                               << kChunkShift;

    static bool
    earlier(const HeapEntry &a, const HeapEntry &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    Slot &
    slotAt(std::uint32_t i)
    {
        return chunks_[i >> kChunkShift][i & (kChunkSlots - 1)];
    }
    const Slot &
    slotAt(std::uint32_t i) const
    {
        return chunks_[i >> kChunkShift][i & (kChunkSlots - 1)];
    }

    /** @return true when @p e still names a live event. */
    bool
    entryLive(const HeapEntry &e) const
    {
        return e.slot < slotCount_ && slotAt(e.slot).gen == e.gen;
    }

    void
    heapPush(const HeapEntry &e)
    {
        heap_.push_back(e);
        siftUp(heap_.size() - 1);
    }

    // heapPopFront/siftDown are const because nextTime() must be able
    // to shed dead front entries; they touch only mutable members.
    void
    heapPopFront() const
    {
        heap_.front() = heap_.back();
        heap_.pop_back();
        if (!heap_.empty())
            siftDown(0);
    }

    void
    siftUp(std::size_t i)
    {
        const HeapEntry e = heap_[i];
        while (i > 0) {
            const std::size_t parent = (i - 1) / kArity;
            if (!earlier(e, heap_[parent]))
                break;
            heap_[i] = heap_[parent];
            i = parent;
        }
        heap_[i] = e;
    }

    void
    siftDown(std::size_t i) const
    {
        const std::size_t n = heap_.size();
        const HeapEntry e = heap_[i];
        while (true) {
            const std::size_t first = i * kArity + 1;
            if (first >= n)
                break;
            const std::size_t last = std::min(first + kArity, n);
            std::size_t best = first;
            for (std::size_t c = first + 1; c < last; ++c) {
                if (earlier(heap_[c], heap_[best]))
                    best = c;
            }
            if (!earlier(heap_[best], e))
                break;
            heap_[i] = heap_[best];
            i = best;
        }
        heap_[i] = e;
    }

    /** Drop dead (cancelled) entries off the run and heap fronts. */
    void
    dropDeadFronts() const
    {
        while (runPos_ < run_.size() && !entryLive(run_[runPos_])) {
            ++runPos_;
            EMMCSIM_DCHECK(deadEntries_ > 0,
                           "dead run entry not accounted for");
            --deadEntries_;
        }
        if (runPos_ == run_.size() && !run_.empty()) {
            run_.clear(); // fully consumed; keep capacity
            runPos_ = 0;
        }
        while (!heap_.empty() && !entryLive(heap_.front())) {
            heapPopFront();
            EMMCSIM_DCHECK(deadEntries_ > 0,
                           "dead heap entry not accounted for");
            --deadEntries_;
        }
    }

    /**
     * Sort the entire heap into the (empty) drain run. One sequential
     * bucket-distribution sort replaces n cache-scattered O(log n)
     * sift-downs; the swap also hands the retired run's capacity to
     * the heap.
     */
    void
    sortPendingIntoRun() const
    {
        run_.swap(heap_);
        sortRunEntries();
        runPos_ = 0;
        ++drainSorts_;
    }

    /** Sort run_ ascending by (when, seq); see event.cc. */
    void sortRunEntries() const;

    /**
     * Remove and return the earliest live pending entry, consulting
     * both the drain run and the heap (whichever front is earlier
     * under (when, seq) — the same total order a pure heap pops in).
     */
    bool
    takeEarliest(HeapEntry &out)
    {
        dropDeadFronts();
        if (run_.empty() && heap_.size() >= kDrainSortMin) {
            sortPendingIntoRun();
            dropDeadFronts();
        }
        const bool haveRun = runPos_ < run_.size();
        if (!haveRun && heap_.empty())
            return false;
        if (haveRun &&
            (heap_.empty() || earlier(run_[runPos_], heap_.front()))) {
            out = run_[runPos_++];
            if (runPos_ == run_.size()) {
                run_.clear();
                runPos_ = 0;
            }
        } else {
            out = heap_.front();
            heapPopFront();
        }
        return true;
    }

    /** Live entries still pending across the run and the heap. */
    std::size_t
    pendingEntries() const
    {
        return heap_.size() + (run_.size() - runPos_);
    }

    /** Sweep all dead entries and re-heapify (Floyd build). */
    void compact();

    /** Retire a slot: destroy its action, bump gen, recycle. */
    void retireSlot(std::uint32_t slot);

    mutable std::vector<HeapEntry> heap_;
    mutable std::vector<HeapEntry> run_; ///< sorted drain run
    mutable std::size_t runPos_ = 0;     ///< next unconsumed run entry
    mutable std::size_t deadEntries_ = 0;
    mutable std::uint64_t drainSorts_ = 0;
    /// Reused scratch for sortRunEntries (alloc-free steady state).
    mutable std::vector<HeapEntry> sortScratch_;
    mutable std::vector<std::uint32_t> sortCounts_;
    std::vector<std::unique_ptr<Slot[]>> chunks_;
    std::size_t slotCount_ = 0;
    std::vector<std::uint32_t> freelist_;
    std::uint64_t nextSeq_ = kNormalSeqBase;
    std::uint64_t nextFrontSeq_ = 0;
    std::uint64_t scheduledCount_ = 0;
    std::size_t liveCount_ = 0;
    std::size_t highWater_ = 0;
    std::uint64_t compactions_ = 0;
    Time lastPopTime_ = 0;
    /** Slot whose action is executing in dispatchNext(), if any. */
    std::uint32_t firing_ = EventId::kNoSlot;
};

} // namespace emmcsim::sim

#endif // EMMCSIM_SIM_EVENT_HH
