/**
 * @file
 * Event and EventQueue: the discrete-event core of the simulator.
 *
 * Events are (time, sequence, action) triples kept in a binary heap.
 * The sequence number makes ordering deterministic for events scheduled
 * at the same tick: they fire in scheduling order (FIFO), which the
 * replayer relies on when a trace contains simultaneous arrivals.
 */

#ifndef EMMCSIM_SIM_EVENT_HH
#define EMMCSIM_SIM_EVENT_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace emmcsim::sim {

/** Callable body of a scheduled event. */
using EventAction = std::function<void()>;

/** Opaque handle identifying a scheduled event (used to cancel). */
using EventId = std::uint64_t;

/**
 * A time-ordered queue of events.
 *
 * This class owns no clock of its own; Simulator advances time by
 * popping the earliest event. Cancellation is lazy: cancelled events
 * stay in the heap but are skipped when popped.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    /**
     * Schedule an action at an absolute time.
     *
     * @param when   Absolute simulated time; must not be in the past
     *               relative to the last popped event.
     * @param action Callback to run when the event fires.
     * @return Handle usable with cancel().
     */
    EventId schedule(Time when, EventAction action);

    /**
     * Cancel a previously scheduled event.
     *
     * @retval true  The event existed and was cancelled.
     * @retval false The event already fired or was already cancelled.
     */
    bool cancel(EventId id);

    /** @return true when no live events remain. */
    bool empty() const { return liveCount_ == 0; }

    /** @return number of live (non-cancelled, unfired) events. */
    std::size_t size() const { return liveCount_; }

    /** @return time of the earliest live event; kTimeNever if empty. */
    Time nextTime() const;

    /**
     * Pop the earliest live event without running it (the caller
     * advances its clock first, then invokes the action).
     *
     * @param when_out   Receives the event's firing time.
     * @param action_out Receives the event's action.
     * @retval true  An event was popped.
     * @retval false The queue was empty.
     */
    bool pop(Time &when_out, EventAction &action_out);

    /** Total number of events ever scheduled (for stats/tests). */
    std::uint64_t scheduledCount() const { return nextId_; }

    /** Firing time of the most recently popped event; 0 before any. */
    Time lastPopTime() const { return lastPopTime_; }

    /**
     * Append a description of every internal-consistency violation to
     * @p violations: live-count bookkeeping vs the issued-id ledger,
     * stale handles (retired ids still holding actions), and a heap
     * front older than the last popped event (time went backwards).
     *
     * @return number of individual predicates evaluated.
     */
    std::uint64_t auditInvariants(std::vector<std::string> &violations) const;

    /**
     * Test hook: skew the live-event counter so tests can prove
     * auditInvariants() catches bookkeeping drift. Never call outside
     * tests.
     */
    void corruptLiveCountForTest(std::int64_t delta);

  private:
    struct Entry
    {
        Time when;
        EventId id;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.id > b.id;
        }
    };

    /** Skip cancelled entries at the heap top. */
    void skipDead() const;

    mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::vector<EventAction> actions_; ///< indexed by EventId
    std::vector<bool> cancelled_;
    EventId nextId_ = 0;
    std::size_t liveCount_ = 0;
    Time lastPopTime_ = 0;
};

} // namespace emmcsim::sim

#endif // EMMCSIM_SIM_EVENT_HH
