#include "sim/random.hh"

#include <cmath>

#include "sim/logging.hh"

namespace emmcsim::sim {

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    EMMCSIM_ASSERT(lo <= hi, "uniformInt with empty range");
    std::uniform_int_distribution<std::int64_t> d(lo, hi);
    return d(engine_);
}

double
Rng::uniformReal(double lo, double hi)
{
    EMMCSIM_ASSERT(lo <= hi, "uniformReal with empty range");
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    std::bernoulli_distribution d(p);
    return d(engine_);
}

double
Rng::exponential(double mean)
{
    EMMCSIM_ASSERT(mean > 0.0, "exponential with non-positive mean");
    std::exponential_distribution<double> d(1.0 / mean);
    return d(engine_);
}

double
Rng::logUniform(double lo, double hi)
{
    EMMCSIM_ASSERT(lo > 0.0 && lo < hi, "logUniform needs 0 < lo < hi");
    double u = uniformReal(std::log(lo), std::log(hi));
    return std::exp(u);
}

std::size_t
Rng::weightedIndex(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        EMMCSIM_ASSERT(w >= 0.0, "negative weight");
        total += w;
    }
    EMMCSIM_ASSERT(total > 0.0, "weightedIndex with all-zero weights");
    double x = uniformReal(0.0, total);
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (x < acc)
            return i;
    }
    return weights.size() - 1;
}

} // namespace emmcsim::sim
