#include "sim/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "sim/logging.hh"

namespace emmcsim::sim {

void
OnlineStats::add(double x)
{
    ++count_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
OnlineStats::merge(const OnlineStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    double na = static_cast<double>(count_);
    double nb = static_cast<double>(other.count_);
    double delta = other.mean_ - mean_;
    double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
OnlineStats::reset()
{
    *this = OnlineStats();
}

double
OnlineStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds))
{
    for (std::size_t i = 1; i < bounds_.size(); ++i) {
        EMMCSIM_ASSERT(bounds_[i] > bounds_[i - 1],
                       "histogram bounds must be strictly increasing");
    }
    counts_.assign(bounds_.size() + 1, 0);
}

void
Histogram::add(double x)
{
    addN(x, 1);
}

void
Histogram::addN(double x, std::uint64_t n)
{
    // Bucket i holds samples in (bounds[i-1], bounds[i]]: the paper's
    // ranges are inclusive on the upper end ("<= 4KB"), so find the
    // first bound >= x.
    auto ge = std::lower_bound(bounds_.begin(), bounds_.end(), x);
    auto idx = static_cast<std::size_t>(ge - bounds_.begin());
    counts_[idx] += n;
    total_ += n;
}

double
Histogram::fractionAt(std::size_t i) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(counts_[i]) / static_cast<double>(total_);
}

double
Histogram::upperBoundAt(std::size_t i) const
{
    if (i < bounds_.size())
        return bounds_[i];
    return std::numeric_limits<double>::infinity();
}

std::vector<double>
Histogram::fractions() const
{
    std::vector<double> out(counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i)
        out[i] = fractionAt(i);
    return out;
}

double
Histogram::percentileEstimate(double p) const
{
    EMMCSIM_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range");
    if (total_ == 0)
        return 0.0;
    // Nearest-rank target, then linear interpolation within the
    // bucket that holds it (the same convention Percentiles uses, so
    // estimates converge on the exact answer as buckets shrink).
    // p=0 maps to rank 1 with no interpolation offset: the estimate
    // is the lower edge of the first occupied bucket, matching
    // Percentiles::percentile(0) returning the minimum sample.
    auto rank = static_cast<std::uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(total_)));
    if (rank == 0)
        rank = 1;
    std::uint64_t before = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] == 0)
            continue;
        if (before + counts_[i] < rank) {
            before += counts_[i];
            continue;
        }
        if (i >= bounds_.size())
            return bounds_.empty() ? 0.0 : bounds_.back();
        const double hi = bounds_[i];
        const double lo =
            i > 0 ? bounds_[i - 1] : std::min(0.0, bounds_[0]);
        if (p <= 0.0)
            return lo;
        const double within = static_cast<double>(rank - before) /
                              static_cast<double>(counts_[i]);
        return lo + within * (hi - lo);
    }
    return bounds_.empty() ? 0.0 : bounds_.back();
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
}

void
Percentiles::add(double x)
{
    values_.push_back(x);
    sorted_ = false;
}

void
Percentiles::merge(const Percentiles &other)
{
    if (other.values_.empty())
        return;
    if (&other == this) {
        // Self-merge doubles every sample; copy first because insert
        // from the growing vector itself would invalidate iterators.
        std::vector<double> copy = values_;
        values_.insert(values_.end(), copy.begin(), copy.end());
    } else {
        values_.insert(values_.end(), other.values_.begin(),
                       other.values_.end());
    }
    sorted_ = false;
}

double
Percentiles::percentile(double p) const
{
    EMMCSIM_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range");
    if (values_.empty())
        return 0.0;
    if (!sorted_) {
        std::sort(values_.begin(), values_.end());
        sorted_ = true;
    }
    if (p <= 0.0)
        return values_.front();
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(values_.size())));
    if (rank == 0)
        rank = 1;
    if (rank > values_.size())
        rank = values_.size();
    return values_[rank - 1];
}

std::string
formatDouble(double x, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, x);
    return std::string(buf);
}

} // namespace emmcsim::sim
