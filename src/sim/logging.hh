/**
 * @file
 * Minimal gem5-style logging and assertion helpers.
 *
 * panic() is for internal invariant violations (simulator bugs); fatal()
 * is for user errors such as inconsistent configurations. Both format a
 * message to stderr; panic aborts, fatal exits with status 1.
 */

#ifndef EMMCSIM_SIM_LOGGING_HH
#define EMMCSIM_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace emmcsim::sim {

/** Severity labels used by the message helpers. */
enum class LogLevel { Info, Warn, Fatal, Panic };

/**
 * Emit a formatted message to stderr with a severity prefix.
 *
 * @param level Severity tag to print.
 * @param msg   Fully formatted message body.
 */
void logMessage(LogLevel level, const std::string &msg);

/** Print an informational message. */
void inform(const std::string &msg);

/** Print a warning; the simulation continues. */
void warn(const std::string &msg);

/** Report an unrecoverable user/configuration error and exit(1). */
[[noreturn]] void fatal(const std::string &msg);

/** Report an internal simulator bug and abort(). */
[[noreturn]] void panic(const std::string &msg);

/**
 * Assert a simulator invariant; panics with location info on failure.
 * Enabled in all build types (the simulator is cheap enough).
 */
#define EMMCSIM_ASSERT(cond, msg)                                          \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::emmcsim::sim::panic(std::string(__FILE__) + ":" +            \
                                  std::to_string(__LINE__) + ": " + (msg)); \
        }                                                                  \
    } while (0)

/**
 * EMMCSIM_DCHECK: a debug-only EMMCSIM_ASSERT for checks too hot for
 * release builds (per-event, per-unit paths). Active in Debug builds
 * (no NDEBUG) and in sanitizer builds (EMMCSIM_FORCE_DCHECKS, set by
 * the EMMCSIM_SANITIZE CMake option); compiled out otherwise without
 * evaluating its arguments.
 */
#if !defined(NDEBUG) || defined(EMMCSIM_FORCE_DCHECKS)
#define EMMCSIM_DCHECKS_ENABLED 1
#else
#define EMMCSIM_DCHECKS_ENABLED 0
#endif

#if EMMCSIM_DCHECKS_ENABLED
#define EMMCSIM_DCHECK(cond, msg) EMMCSIM_ASSERT(cond, msg)
#else
#define EMMCSIM_DCHECK(cond, msg)                                          \
    do {                                                                   \
        (void)sizeof((cond));                                              \
    } while (0)
#endif

} // namespace emmcsim::sim

#endif // EMMCSIM_SIM_LOGGING_HH
