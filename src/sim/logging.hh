/**
 * @file
 * Minimal gem5-style logging and assertion helpers.
 *
 * panic() is for internal invariant violations (simulator bugs); fatal()
 * is for user errors such as inconsistent configurations. Both format a
 * message to stderr; panic aborts, fatal exits with status 1.
 *
 * Debug logging is component-scoped and off by default. The EMMCSIM_LOG
 * environment variable selects per-component verbosity:
 *
 *   EMMCSIM_LOG=debug              everything at debug
 *   EMMCSIM_LOG=ftl=debug,gc=info  per-component thresholds
 *   EMMCSIM_LOG=warn,gc=debug      default warn, gc chatty
 *
 * Components are short lowercase tags ("gc", "replayer", "bbm", ...).
 * Use EMMCSIM_LOG_DEBUG so disabled sites never format their message.
 */

#ifndef EMMCSIM_SIM_LOGGING_HH
#define EMMCSIM_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace emmcsim::sim {

/** Severity labels used by the message helpers (ascending order). */
enum class LogLevel { Debug, Info, Warn, Fatal, Panic };

/**
 * Per-component minimum-severity thresholds, parsed from an
 * EMMCSIM_LOG-style spec string. Messages below a component's
 * threshold are suppressed; fatal/panic are never suppressed.
 */
class LogConfig
{
  public:
    /** Default configuration: Info threshold for every component. */
    LogConfig() = default;

    /**
     * Parse a spec of comma-separated entries. Each entry is either a
     * bare level name (sets the default threshold) or
     * "component=level". Levels: debug, info, warn.
     *
     * @param spec  The spec string; empty yields the default config.
     * @param error Optional; receives a description of the first
     *        malformed entry (which is skipped, not fatal — a bad env
     *        var must not kill the simulator).
     */
    static LogConfig parse(std::string_view spec,
                           std::string *error = nullptr);

    /** Threshold for @p component (the default when not listed). */
    LogLevel levelFor(std::string_view component) const;

    /** @return true when @p level passes @p component's threshold. */
    bool
    enabled(std::string_view component, LogLevel level) const
    {
        return level >= levelFor(component);
    }

    /** Default threshold for components without an override. */
    LogLevel defaultLevel() const { return default_; }

  private:
    LogLevel default_ = LogLevel::Info;
    std::vector<std::pair<std::string, LogLevel>> components_;
};

/**
 * Snapshot of the process-wide log configuration, parsed from
 * EMMCSIM_LOG on first use (malformed entries produce one warning and
 * are skipped). Returned by value: sweep workers query concurrently
 * while setLogConfig may replace the configuration, so handing out a
 * reference to the shared object would be a data race.
 */
LogConfig logConfig();

/**
 * Replace the process-wide configuration (tests, CLI overrides).
 * Safe to call while worker threads log; they see either the old or
 * the new configuration, never a torn one.
 */
void setLogConfig(LogConfig cfg);

/** @return true when a message would actually be emitted. */
bool logEnabled(std::string_view component, LogLevel level);

/**
 * Emit a formatted message to stderr with a severity prefix. The
 * whole line is formatted first and written with one call under an
 * internal lock, so lines from concurrent sweep workers never
 * interleave mid-fragment.
 *
 * @param level Severity tag to print.
 * @param msg   Fully formatted message body.
 */
void logMessage(LogLevel level, const std::string &msg);

/** Component-scoped variant: prints "[level:component] msg". */
void logMessage(LogLevel level, std::string_view component,
                const std::string &msg);

/** Print an informational message. */
void inform(const std::string &msg);

/** Component-scoped informational message (threshold-filtered). */
void inform(std::string_view component, const std::string &msg);

/** Print a warning; the simulation continues. */
void warn(const std::string &msg);

/** Component-scoped warning (threshold-filtered). */
void warn(std::string_view component, const std::string &msg);

/**
 * Component-scoped debug message; suppressed unless EMMCSIM_LOG
 * raised the component to debug. Prefer EMMCSIM_LOG_DEBUG at call
 * sites so the message string is only built when enabled.
 */
void debug(std::string_view component, const std::string &msg);

/** Report an unrecoverable user/configuration error and exit(1). */
[[noreturn]] void fatal(const std::string &msg);

/** Report an internal simulator bug and abort(). */
[[noreturn]] void panic(const std::string &msg);

/**
 * Debug-log macro that skips message construction when the component
 * is not at debug verbosity (string building would otherwise dominate
 * the cost of disabled log sites on hot paths).
 */
#define EMMCSIM_LOG_DEBUG(component, msg_expr)                             \
    do {                                                                   \
        if (::emmcsim::sim::logEnabled((component),                        \
                                       ::emmcsim::sim::LogLevel::Debug)) { \
            ::emmcsim::sim::debug((component), (msg_expr));                \
        }                                                                  \
    } while (0)

/**
 * Assert a simulator invariant; panics with location info on failure.
 * Enabled in all build types (the simulator is cheap enough).
 */
#define EMMCSIM_ASSERT(cond, msg)                                          \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::emmcsim::sim::panic(std::string(__FILE__) + ":" +            \
                                  std::to_string(__LINE__) + ": " + (msg)); \
        }                                                                  \
    } while (0)

/**
 * EMMCSIM_DCHECK: a debug-only EMMCSIM_ASSERT for checks too hot for
 * release builds (per-event, per-unit paths). Active in Debug builds
 * (no NDEBUG) and in sanitizer builds (EMMCSIM_FORCE_DCHECKS, set by
 * the EMMCSIM_SANITIZE CMake option); compiled out otherwise without
 * evaluating its arguments.
 */
#if !defined(NDEBUG) || defined(EMMCSIM_FORCE_DCHECKS)
#define EMMCSIM_DCHECKS_ENABLED 1
#else
#define EMMCSIM_DCHECKS_ENABLED 0
#endif

#if EMMCSIM_DCHECKS_ENABLED
#define EMMCSIM_DCHECK(cond, msg) EMMCSIM_ASSERT(cond, msg)
#else
#define EMMCSIM_DCHECK(cond, msg)                                          \
    do {                                                                   \
        (void)sizeof((cond));                                              \
    } while (0)
#endif

} // namespace emmcsim::sim

#endif // EMMCSIM_SIM_LOGGING_HH
