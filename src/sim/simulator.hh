/**
 * @file
 * Simulator: the event loop and the global simulated clock.
 */

#ifndef EMMCSIM_SIM_SIMULATOR_HH
#define EMMCSIM_SIM_SIMULATOR_HH

#include <cstdint>
#include <functional>

#include "sim/event.hh"
#include "sim/types.hh"

namespace emmcsim::sim {

/**
 * Discrete-event simulator.
 *
 * Components schedule callbacks on the simulator and read the current
 * time with now(). Time only advances inside run()/runUntil() as events
 * are popped in timestamp order.
 */
class Simulator
{
  public:
    Simulator() = default;

    /** Current simulated time. */
    Time now() const { return now_; }

    /**
     * Schedule an action at an absolute time (>= now()).
     * @return Handle usable with cancel().
     */
    EventId schedule(Time when, EventAction action);

    /** Schedule an action @p delay after now(). */
    EventId scheduleAfter(Time delay, EventAction action);

    /** Cancel a scheduled event; see EventQueue::cancel. */
    bool cancel(EventId id) { return events_.cancel(id); }

    /**
     * Run until the event queue drains.
     * @return number of events executed.
     */
    std::uint64_t run();

    /**
     * Run until the queue drains or the clock passes @p deadline.
     * Events at exactly @p deadline still fire.
     * @return number of events executed.
     */
    std::uint64_t runUntil(Time deadline);

    /** @return true if events remain. */
    bool pending() const { return !events_.empty(); }

    /** Time of the next pending event; kTimeNever if none. */
    Time nextEventTime() const { return events_.nextTime(); }

    /** Events executed so far. */
    std::uint64_t executedCount() const { return executed_; }

    /** Read-only view of the event queue (audit support). */
    const EventQueue &events() const { return events_; }

    /** Hook invoked from the event loop (audit support). */
    using PostEventHook = std::function<void(const Simulator &)>;

    /**
     * Install a debug hook called after every @p interval executed
     * events. The audit subsystem uses this to revalidate simulator
     * and device bookkeeping mid-run; a null @p hook uninstalls.
     */
    void setPostEventHook(PostEventHook hook, std::uint64_t interval = 1);

  private:
    /** Run the post-event hook when its interval elapses. */
    void firePostEventHook();

    EventQueue events_;
    Time now_ = 0;
    std::uint64_t executed_ = 0;

    PostEventHook postEventHook_;
    std::uint64_t hookInterval_ = 1;
    std::uint64_t sinceHook_ = 0;
};

} // namespace emmcsim::sim

#endif // EMMCSIM_SIM_SIMULATOR_HH
