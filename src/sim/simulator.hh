/**
 * @file
 * Simulator: the event loop and the global simulated clock.
 */

#ifndef EMMCSIM_SIM_SIMULATOR_HH
#define EMMCSIM_SIM_SIMULATOR_HH

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/event.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace emmcsim::sim {

/**
 * Discrete-event simulator.
 *
 * Components schedule callbacks on the simulator and read the current
 * time with now(). Time only advances inside run()/runUntil() as events
 * are popped in timestamp order.
 */
class Simulator
{
  public:
    Simulator() = default;

    /** Current simulated time. */
    Time now() const { return now_; }

    /**
     * Schedule an action at an absolute time (>= now()). Forwards the
     * raw callable to the event queue, which builds it in place
     * inside an arena slot (no temporaries on the hot path).
     * @return Handle usable with cancel().
     */
    template <typename F>
    EventId
    schedule(Time when, F &&action)
    {
        EMMCSIM_ASSERT(when >= now_, "event scheduled in the past");
        return events_.schedule(when, std::forward<F>(action));
    }

    /**
     * Schedule in the front sequence band (see
     * EventQueue::scheduleFront): wins every same-tick tie against
     * normally scheduled events. Replay arrivals only.
     */
    template <typename F>
    EventId
    scheduleFront(Time when, F &&action)
    {
        EMMCSIM_ASSERT(when >= now_, "event scheduled in the past");
        return events_.scheduleFront(when, std::forward<F>(action));
    }

    /** Schedule an action @p delay after now(). */
    template <typename F>
    EventId
    scheduleAfter(Time delay, F &&action)
    {
        EMMCSIM_ASSERT(delay >= 0, "negative event delay");
        return events_.schedule(now_ + delay, std::forward<F>(action));
    }

    /** Cancel a scheduled event; see EventQueue::cancel. */
    bool cancel(EventId id) { return events_.cancel(id); }

    /**
     * Size the event queue's calendar-wheel tier from the device's
     * fixed operation latencies (see EventQueue::tuneWheel). The
     * device constructor calls this with its NAND timing so that the
     * completion-heavy steady state schedules in O(1); an untuned
     * simulator runs on the pure heap with identical output.
     */
    void
    tuneEventHorizon(Time shortestLatency, Time longestLatency)
    {
        events_.tuneWheel(shortestLatency, longestLatency);
    }

    /**
     * Set the clock to @p when without running events — the snapshot
     * restore path uses this to resume a fresh simulator at the image's
     * capture time before re-scheduling the remaining arrivals. Only
     * legal on an empty queue: jumping the clock with events pending
     * would reorder them against their timestamps.
     */
    void
    restoreClock(Time when)
    {
        EMMCSIM_ASSERT(!pending(), "restoreClock with events pending");
        EMMCSIM_ASSERT(when >= now_, "clock may only move forward");
        now_ = when;
    }

    /**
     * Run until the event queue drains.
     * @return number of events executed.
     */
    std::uint64_t run();

    /**
     * Run until the queue drains or the clock passes @p deadline.
     * Events at exactly @p deadline still fire.
     * @return number of events executed.
     */
    std::uint64_t runUntil(Time deadline);

    /** @return true if events remain. */
    bool pending() const { return !events_.empty(); }

    /** Time of the next pending event; kTimeNever if none. */
    Time nextEventTime() const { return events_.nextTime(); }

    /** Events executed so far. */
    std::uint64_t executedCount() const { return executed_; }

    /** Read-only view of the event queue (audit support). */
    const EventQueue &events() const { return events_; }

    /** Hook invoked from the event loop (audit / observability).
     *  Fires once per @p interval events, never per event, so the
     *  type-erasure cost stays off the hot path. */
    // emmclint: allow(event-path-alloc)
    using PostEventHook = std::function<void(const Simulator &)>;

    /** Identifies one registered post-event hook. */
    using HookId = std::uint64_t;

    /**
     * Register a hook called after every @p interval executed events.
     * Multiple independent hooks may coexist (the invariant auditor
     * and the metrics sampler each own one); they fire in
     * registration order. Hooks must not mutate the simulator.
     *
     * @return Handle for removePostEventHook().
     */
    HookId addPostEventHook(PostEventHook hook, std::uint64_t interval = 1);

    /** Unregister a hook; unknown ids are ignored (idempotent). */
    void removePostEventHook(HookId id);

    /**
     * Single-slot convenience used by older callers: replaces the
     * previously set() hook (hooks registered through
     * addPostEventHook are unaffected); null uninstalls.
     */
    void setPostEventHook(PostEventHook hook, std::uint64_t interval = 1);

  private:
    /** One registered post-event hook and its firing cadence. */
    struct HookEntry
    {
        HookId id = 0;
        std::uint64_t interval = 1;
        std::uint64_t since = 0;
        PostEventHook hook;
    };

    /** Run each post-event hook whose interval elapsed. */
    void firePostEventHooks();

    EventQueue events_;
    Time now_ = 0;
    std::uint64_t executed_ = 0;

    std::vector<HookEntry> hooks_;
    HookId nextHookId_ = 1;
    HookId legacyHookId_ = 0; ///< slot managed by setPostEventHook
};

} // namespace emmcsim::sim

#endif // EMMCSIM_SIM_SIMULATOR_HH
