/**
 * @file
 * Statistics primitives: online summary stats and bucketed histograms.
 *
 * These back every table and figure reproduction: OnlineStats produces
 * the mean/min/max columns, Histogram the Fig 4/5/6 distributions.
 */

#ifndef EMMCSIM_SIM_STATS_HH
#define EMMCSIM_SIM_STATS_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace emmcsim::sim {

/**
 * Streaming count/mean/variance/min/max accumulator (Welford's method).
 */
class OnlineStats
{
  public:
    OnlineStats() = default;

    /** Fold one sample into the accumulator. */
    void add(double x);

    /**
     * Merge another accumulator into this one (Chan's parallel
     * update). An empty operand on either side is an identity, and
     * the operation is associative up to floating-point rounding —
     * the properties the sweep relies on to aggregate per-worker
     * accumulators in any grouping.
     */
    void merge(const OnlineStats &other);

    /** Remove all samples. */
    void reset();

    std::uint64_t count() const { return count_; }
    /** Mean of the samples; 0 when empty. */
    double mean() const { return count_ ? mean_ : 0.0; }
    /** Population variance; 0 when fewer than 2 samples. */
    double variance() const;
    /** Population standard deviation. */
    double stddev() const;
    /** Sum of all samples. */
    double sum() const { return sum_; }
    /** Smallest sample; +inf when empty. */
    double min() const { return min_; }
    /** Largest sample; -inf when empty. */
    double max() const { return max_; }

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * A histogram over explicit, caller-supplied bucket upper bounds.
 *
 * Buckets are [prev_bound, bound); a final implicit overflow bucket
 * catches samples >= the last bound. This matches how the paper buckets
 * request sizes (Fig 4) and times (Figs 5, 6): a fixed set of ranges
 * with an open-ended tail.
 */
class Histogram
{
  public:
    /**
     * @param upper_bounds Strictly increasing bucket upper bounds.
     *        An empty vector yields a single catch-all bucket.
     */
    explicit Histogram(std::vector<double> upper_bounds);

    /** Fold one sample into its bucket. */
    void add(double x);

    /** Add @p n samples of value @p x. */
    void addN(double x, std::uint64_t n);

    /** Number of buckets including the overflow bucket. */
    std::size_t bucketCount() const { return counts_.size(); }

    /** Raw count in bucket @p i. */
    std::uint64_t bucketCountAt(std::size_t i) const { return counts_[i]; }

    /** Fraction of all samples in bucket @p i; 0 when empty. */
    double fractionAt(std::size_t i) const;

    /** Total number of samples. */
    std::uint64_t total() const { return total_; }

    /** Upper bound of bucket @p i; +inf for the overflow bucket. */
    double upperBoundAt(std::size_t i) const;

    /** All per-bucket fractions, in bucket order. */
    std::vector<double> fractions() const;

    /**
     * Percentile estimate from the bucket counts alone: find the
     * bucket holding the nearest-rank sample and interpolate linearly
     * inside it. The first bucket interpolates from min(0, bound);
     * samples landing in the open-ended overflow bucket report the
     * last finite bound (the estimate saturates there — callers that
     * need an exact tail must keep the samples, e.g. Percentiles).
     *
     * Edge cases are pinned down because sweep workers merge these
     * into figure tails: an empty histogram returns 0 for every p;
     * p=0 returns the lower edge of the first occupied bucket
     * (mirroring Percentiles::percentile(0) = min); p=100 returns
     * the upper bound of the last occupied bucket (saturating to the
     * last finite bound for overflow samples); a single sample
     * reports its bucket's upper bound for every p > 0.
     *
     * @param p in [0, 100] (asserted). Returns 0 when empty.
     */
    double percentileEstimate(double p) const;

    /** @name Latency-quantile shorthands (bucket-bound estimates). @{ */
    double p50() const { return percentileEstimate(50.0); }
    double p95() const { return percentileEstimate(95.0); }
    double p99() const { return percentileEstimate(99.0); }
    /** @} */

    /** Zero all buckets. */
    void reset();

  private:
    std::vector<double> bounds_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/**
 * Exact percentile calculator: stores all samples, sorts on demand.
 * Suited to trace-sized data sets (tens of thousands of samples).
 */
class Percentiles
{
  public:
    Percentiles() = default;

    /** Add one sample. */
    void add(double x);

    /**
     * Fold another calculator's samples into this one. Empty operands
     * are identities and the fold is exactly associative (it only
     * concatenates samples), so sweep aggregation order is free.
     */
    void merge(const Percentiles &other);

    /**
     * Percentile by nearest-rank: p=0 returns the minimum sample,
     * p=100 the maximum, and a single sample is every percentile.
     * Sorts lazily through mutable state, so concurrent calls on one
     * shared instance are not safe — sweep workers each own their
     * accumulator and merge on the collecting thread.
     *
     * @param p in [0, 100] (asserted). Returns 0 when no samples
     *        were added.
     */
    double percentile(double p) const;

    /** Number of stored samples. */
    std::size_t count() const { return values_.size(); }

  private:
    mutable std::vector<double> values_;
    mutable bool sorted_ = true;
};

/** Format @p x with @p decimals digits (reporting helper). */
std::string formatDouble(double x, int decimals);

} // namespace emmcsim::sim

#endif // EMMCSIM_SIM_STATS_HH
