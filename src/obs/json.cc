#include "obs/json.hh"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "sim/logging.hh"

namespace emmcsim::obs {

JsonWriter::JsonWriter(std::ostream &os) : os_(os) {}

void
JsonWriter::preValue()
{
    EMMCSIM_ASSERT(!rootDone_, "JsonWriter: value after root completed");
    if (stack_.empty())
        return;
    EMMCSIM_ASSERT(stack_.back() != Frame::Object || !expectKey_,
                   "JsonWriter: object value requires a key first");
    if (stack_.back() == Frame::Array) {
        if (hasSibling_.back())
            os_ << ',';
        hasSibling_.back() = true;
    }
    // Object values: the comma was emitted by key().
    if (stack_.back() == Frame::Object)
        expectKey_ = true;
}

JsonWriter &
JsonWriter::beginObject()
{
    preValue();
    os_ << '{';
    stack_.push_back(Frame::Object);
    hasSibling_.push_back(false);
    expectKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    EMMCSIM_ASSERT(!stack_.empty() && stack_.back() == Frame::Object,
                   "JsonWriter: endObject without beginObject");
    EMMCSIM_ASSERT(expectKey_, "JsonWriter: endObject after dangling key");
    os_ << '}';
    stack_.pop_back();
    hasSibling_.pop_back();
    expectKey_ = !stack_.empty() && stack_.back() == Frame::Object;
    if (stack_.empty())
        rootDone_ = true;
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    preValue();
    os_ << '[';
    stack_.push_back(Frame::Array);
    hasSibling_.push_back(false);
    expectKey_ = false;
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    EMMCSIM_ASSERT(!stack_.empty() && stack_.back() == Frame::Array,
                   "JsonWriter: endArray without beginArray");
    os_ << ']';
    stack_.pop_back();
    hasSibling_.pop_back();
    expectKey_ = !stack_.empty() && stack_.back() == Frame::Object;
    if (stack_.empty())
        rootDone_ = true;
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view name)
{
    EMMCSIM_ASSERT(!stack_.empty() && stack_.back() == Frame::Object,
                   "JsonWriter: key outside an object");
    EMMCSIM_ASSERT(expectKey_, "JsonWriter: two keys in a row");
    if (hasSibling_.back())
        os_ << ',';
    hasSibling_.back() = true;
    os_ << '"' << escape(name) << "\":";
    expectKey_ = false;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view s)
{
    preValue();
    os_ << '"' << escape(s) << '"';
    if (stack_.empty())
        rootDone_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const char *s)
{
    return value(std::string_view(s));
}

JsonWriter &
JsonWriter::value(double d)
{
    preValue();
    os_ << formatNumber(d);
    if (stack_.empty())
        rootDone_ = true;
    return *this;
}

namespace {

/**
 * Integers go through to_chars as well: ostream integer insertion
 * honours the stream's imbued locale (digit grouping), which would
 * corrupt artifacts on a grouping locale.
 */
template <typename Int>
void
writeInt(std::ostream &os, Int v)
{
    char buf[24];
    auto res = std::to_chars(buf, buf + sizeof(buf), v);
    os.write(buf, res.ptr - buf);
}

} // namespace

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    preValue();
    writeInt(os_, v);
    if (stack_.empty())
        rootDone_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    preValue();
    writeInt(os_, v);
    if (stack_.empty())
        rootDone_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(bool b)
{
    preValue();
    os_ << (b ? "true" : "false");
    if (stack_.empty())
        rootDone_ = true;
    return *this;
}

bool
JsonWriter::done() const
{
    return rootDone_ && stack_.empty();
}

std::string
JsonWriter::formatNumber(double d)
{
    // JSON has no inf/nan; observability values that reach here
    // non-finite (e.g. min() of an empty OnlineStats) render as 0 so
    // the artifact stays parseable. Callers filter where it matters.
    if (!std::isfinite(d))
        return "0";
    // std::to_chars: shortest round-trip decimal, and — unlike the
    // printf %g family — immune to LC_NUMERIC (always '.').
    char buf[40];
    auto res = std::to_chars(buf, buf + sizeof(buf), d);
    EMMCSIM_ASSERT(res.ec == std::errc{}, "formatNumber buffer");
    return std::string(buf, res.ptr);
}

std::string
JsonWriter::formatFixed(double d, int decimals)
{
    if (!std::isfinite(d))
        return "0";
    decimals = std::clamp(decimals, 0, 17);
    char buf[64];
    auto res = std::to_chars(buf, buf + sizeof(buf), d,
                             std::chars_format::fixed, decimals);
    EMMCSIM_ASSERT(res.ec == std::errc{}, "formatFixed buffer");
    return std::string(buf, res.ptr);
}

std::string
JsonWriter::escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace emmcsim::obs
