#include "obs/explain.hh"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <ostream>
#include <utility>
#include <vector>

#include "obs/json.hh"
#include "obs/json_read.hh"
#include "obs/report.hh"

namespace emmcsim::obs {

namespace {

/** Fixed-point shorthand: milliseconds with 4 decimals. */
std::string
ms(double v)
{
    return JsonWriter::formatFixed(v, 4);
}

/** Percent with one decimal (of @p whole; "-" when whole is 0). */
std::string
pct(double part, double whole)
{
    if (whole <= 0.0)
        return "-";
    return JsonWriter::formatFixed(100.0 * part / whole, 1) + "%";
}

/** Signed delta in ms ("+0.1234" / "-0.1234"). */
std::string
signedMs(double v)
{
    std::string out = ms(v);
    if (v >= 0.0)
        out.insert(out.begin(), '+');
    return out;
}

bool
checkSchema(const JsonValue &report, const char *label, std::string &err)
{
    if (!report.isObject()) {
        err = std::string(label) + ": not a JSON object";
        return false;
    }
    const JsonValue *schema = report.find("schema");
    if (schema == nullptr || !schema->isString() ||
        schema->asString() != kRunReportSchema) {
        err = std::string(label) + ": not a \"" +
              std::string(kRunReportSchema) + "\" document";
        return false;
    }
    const JsonValue *runs = report.find("runs");
    if (runs == nullptr || !runs->isArray()) {
        err = std::string(label) + ": missing \"runs\" array";
        return false;
    }
    return true;
}

/** (phase name, mean ms) in document order = phase order. */
std::vector<std::pair<std::string, double>>
phaseMeans(const JsonValue &attr)
{
    std::vector<std::pair<std::string, double>> out;
    for (const auto &m : attr.at("phases").members())
        out.emplace_back(m.first, m.second.numberOr("mean_ms", 0.0));
    return out;
}

/** Indices of @p phases sorted by value desc, document order on ties. */
std::vector<std::size_t>
orderByValue(const std::vector<std::pair<std::string, double>> &phases)
{
    std::vector<std::size_t> order(phases.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&phases](std::size_t a, std::size_t b) {
                         return phases[a].second > phases[b].second;
                     });
    return order;
}

/** "a 50.0%, b 25.0%, c 10.0%" for the top @p k nonzero entries. */
std::string
topContributors(const std::vector<std::pair<std::string, double>> &phases,
                double whole, std::size_t k)
{
    std::string out;
    std::size_t shown = 0;
    for (std::size_t i : orderByValue(phases)) {
        if (phases[i].second <= 0.0 || shown == k)
            break;
        if (shown > 0)
            out += ", ";
        out += phases[i].first + " " + pct(phases[i].second, whole);
        ++shown;
    }
    return out.empty() ? "(all phases zero)" : out;
}

void
explainRun(const JsonValue &run, std::ostream &os)
{
    const std::string &name = run.at("name").asString();
    const JsonValue *attr = run.find("attribution");
    if (attr == nullptr) {
        os << "run \"" << name
           << "\": no attribution section (re-run with --attribution)\n";
        return;
    }

    const JsonValue &resp = attr->at("response");
    const double mean = resp.numberOr("mean_ms", 0.0);
    os << "run \"" << name << "\": " << attr->at("requests").asUInt()
       << " requests, mean response " << ms(mean) << " ms, p99 "
       << ms(resp.numberOr("p99_ms", 0.0)) << " ms, max "
       << ms(resp.numberOr("max_ms", 0.0)) << " ms\n";

    const auto violations = attr->at("ledger_violations").asUInt();
    os << "  conservation: "
       << (violations == 0 ? "OK (every request's phases sum to its "
                             "response time)"
                           : std::to_string(violations) +
                                 " VIOLATIONS — attribution untrustworthy")
       << "\n";

    const auto phases = phaseMeans(*attr);
    os << "  phases (mean ms per request, share of mean response):\n";
    bool any = false;
    for (std::size_t i : orderByValue(phases)) {
        if (phases[i].second <= 0.0)
            break;
        any = true;
        os << "    " << phases[i].first;
        for (std::size_t pad = phases[i].first.size(); pad < 14; ++pad)
            os << ' ';
        os << ' ' << ms(phases[i].second) << "  "
           << pct(phases[i].second, mean) << "\n";
    }
    if (!any)
        os << "    (all phases zero)\n";

    const JsonValue *tails = attr->find("tails");
    if (tails != nullptr && !tails->items().empty()) {
        os << "  tails (requests at/above each response quantile):\n";
        for (const JsonValue &t : tails->items()) {
            const double threshold = t.numberOr("threshold_ms", 0.0);
            std::vector<std::pair<std::string, double>> slice;
            double whole = 0.0;
            for (const auto &m : t.at("mean_phase_ms").members()) {
                slice.emplace_back(m.first, m.second.asDouble());
                whole += m.second.asDouble();
            }
            os << "    p" << JsonWriter::formatFixed(
                      t.numberOr("quantile", 0.0), 1)
               << " >= " << ms(threshold) << " ms ("
               << t.at("requests").asUInt() << " reqs): "
               << topContributors(slice, whole, 3) << "\n";
        }
    }

    const JsonValue *slowest = attr->find("slowest");
    if (slowest != nullptr && !slowest->items().empty()) {
        os << "  slowest requests:\n";
        for (const JsonValue &s : slowest->items()) {
            std::vector<std::pair<std::string, double>> ledger;
            for (const auto &m : s.at("phase_ms").members())
                ledger.emplace_back(m.first, m.second.asDouble());
            const double resp_ms = s.numberOr("response_ms", 0.0);
            os << "    id " << s.at("id").asUInt() << " "
               << s.at("op").asString() << " response " << ms(resp_ms)
               << " ms: " << topContributors(ledger, resp_ms, 3) << "\n";
        }
    }

    const JsonValue *mount = attr->find("mount");
    if (mount != nullptr && mount->at("power_cuts").asUInt() > 0) {
        os << "  mount (power-up recovery, " << mount->at("power_cuts").asUInt()
           << " cut(s)): total " << ms(mount->numberOr("total_ms", 0.0))
           << " ms: checkpoint_load "
           << ms(mount->numberOr("checkpoint_load_ms", 0.0))
           << ", journal_replay "
           << ms(mount->numberOr("journal_replay_ms", 0.0)) << ", scan "
           << ms(mount->numberOr("scan_ms", 0.0)) << ", re_erase "
           << ms(mount->numberOr("re_erase_ms", 0.0))
           << ", checkpoint_write "
           << ms(mount->numberOr("checkpoint_write_ms", 0.0)) << "\n";
    }
}

} // namespace

bool
explainReport(const JsonValue &report, std::ostream &os, std::string &err)
{
    if (!checkSchema(report, "report", err))
        return false;
    const auto &runs = report.at("runs").items();
    if (runs.empty()) {
        os << "report contains no runs\n";
        return true;
    }
    for (const JsonValue &run : runs)
        explainRun(run, os);
    return true;
}

bool
diffReports(const JsonValue &before, const JsonValue &after,
            std::ostream &os, std::string &err)
{
    if (!checkSchema(before, "before", err) ||
        !checkSchema(after, "after", err))
        return false;

    const auto &runsA = before.at("runs").items();
    const auto &runsB = after.at("runs").items();

    auto findRun = [](const std::vector<JsonValue> &runs,
                      const std::string &name) -> const JsonValue * {
        for (const JsonValue &r : runs) {
            if (r.at("name").asString() == name)
                return &r;
        }
        return nullptr;
    };

    for (const JsonValue &a : runsA) {
        const std::string &name = a.at("name").asString();
        const JsonValue *b = findRun(runsB, name);
        if (b == nullptr) {
            os << "run \"" << name << "\": only in before\n";
            continue;
        }
        const JsonValue *attrA = a.find("attribution");
        const JsonValue *attrB = b->find("attribution");
        if (attrA == nullptr || attrB == nullptr) {
            os << "run \"" << name
               << "\": missing attribution on one side, cannot attribute "
                  "the change\n";
            continue;
        }

        const double meanA = attrA->at("response").numberOr("mean_ms", 0.0);
        const double meanB = attrB->at("response").numberOr("mean_ms", 0.0);
        const double delta = meanB - meanA;
        os << "run \"" << name << "\": mean response " << ms(meanA)
           << " -> " << ms(meanB) << " ms (" << signedMs(delta) << " ms";
        if (meanA > 0.0) {
            os << ", "
               << (delta >= 0.0 ? "+" : "")
               << JsonWriter::formatFixed(100.0 * delta / meanA, 1) << "%";
        }
        os << ")"
           << (delta > 0.0 ? "  [regression]"
                           : (delta < 0.0 ? "  [improvement]" : ""))
           << "\n";

        const double p99A = attrA->at("response").numberOr("p99_ms", 0.0);
        const double p99B = attrB->at("response").numberOr("p99_ms", 0.0);
        os << "  p99: " << ms(p99A) << " -> " << ms(p99B) << " ms ("
           << signedMs(p99B - p99A) << ")\n";

        // Per-phase movement of the mean, largest absolute delta
        // first. Phases absent on one side (schema growth) diff
        // against zero.
        const auto phasesA = phaseMeans(*attrA);
        const auto phasesB = phaseMeans(*attrB);
        auto meanOf = [](const std::vector<std::pair<std::string, double>>
                             &phases,
                         const std::string &key) {
            for (const auto &p : phases) {
                if (p.first == key)
                    return p.second;
            }
            return 0.0;
        };
        std::vector<std::pair<std::string, double>> names = phasesB;
        for (const auto &p : phasesA) {
            if (meanOf(names, p.first) == 0.0 &&
                std::none_of(names.begin(), names.end(),
                             [&p](const auto &q) {
                                 return q.first == p.first;
                             }))
                names.push_back(p);
        }
        std::vector<std::pair<std::string, double>> deltas;
        for (const auto &p : names) {
            deltas.emplace_back(p.first, meanOf(phasesB, p.first) -
                                             meanOf(phasesA, p.first));
        }
        std::stable_sort(deltas.begin(), deltas.end(),
                         [](const auto &x, const auto &y) {
                             return std::fabs(x.second) >
                                    std::fabs(y.second);
                         });
        os << "  phase movement (mean ms per request):\n";
        bool any = false;
        for (const auto &d : deltas) {
            if (d.second == 0.0)
                continue;
            any = true;
            os << "    " << d.first;
            for (std::size_t pad = d.first.size(); pad < 14; ++pad)
                os << ' ';
            os << ' ' << signedMs(d.second) << "  ("
               << ms(meanOf(phasesA, d.first)) << " -> "
               << ms(meanOf(phasesB, d.first)) << ")\n";
        }
        if (!any)
            os << "    (no phase moved)\n";
    }

    for (const JsonValue &b : runsB) {
        if (findRun(runsA, b.at("name").asString()) == nullptr)
            os << "run \"" << b.at("name").asString()
               << "\": only in after\n";
    }
    return true;
}

} // namespace emmcsim::obs
