/**
 * @file
 * Latency attribution: aggregate per-request phase ledgers into the
 * run-report "attribution" section.
 *
 * Every completed request carries a PhaseLedger (emmc/phases.hh) whose
 * entries sum exactly to finish - arrival. The AttributionRecorder
 * stores one compact record per request (opt-in: it only exists when
 * --attribution is on, so the default path allocates nothing), and
 * summarize() folds them into the AttributionSummary consumed by the
 * report writer and by `emmcsim_cli explain`:
 *
 *  - per-phase distribution stats (hits, total/mean/max, exact
 *    p50/p95/p99/p99.9) across all requests;
 *  - tail slices: for each response-time quantile, the mean phase
 *    decomposition of the requests at or above it — "what p99
 *    requests spend their time on";
 *  - the slowest-K individual requests with their full ledgers;
 *  - mount-time cost (SPO recovery phases) from SpoStats, so
 *    power-cut recovery shows up next to steady-state phases.
 */

#ifndef EMMCSIM_OBS_ATTRIBUTION_HH
#define EMMCSIM_OBS_ATTRIBUTION_HH

#include <array>
#include <cstdint>
#include <vector>

#include "emmc/phases.hh"
#include "emmc/request.hh"
#include "sim/types.hh"

namespace emmcsim::emmc {
struct DeviceStats;
struct SpoStats;
}

namespace emmcsim::obs {

/** Schema version of the "attribution" report section. */
inline constexpr int kAttributionVersion = 1;

/** Distribution of one quantity (ms) across all completed requests. */
struct PhaseDist
{
    std::uint64_t hits = 0; ///< requests where the quantity was > 0
    double totalMs = 0.0;
    double meanMs = 0.0;    ///< mean over *all* requests, not just hits
    double maxMs = 0.0;
    double p50Ms = 0.0;
    double p95Ms = 0.0;
    double p99Ms = 0.0;
    double p999Ms = 0.0;
};

/** Mean phase decomposition of the requests at/above one quantile. */
struct TailSlice
{
    double quantile = 0.0;     ///< e.g. 99.0
    double thresholdMs = 0.0;  ///< response-time cut for this slice
    std::uint64_t requests = 0;
    std::array<double, emmc::kPhaseCount> meanPhaseMs{};
};

/** One of the slowest-K requests, with its full ledger. */
struct SlowRequest
{
    std::uint64_t id = 0;
    sim::Time arrival = 0;
    bool write = false;
    double responseMs = 0.0;
    std::array<double, emmc::kPhaseCount> phaseMs{};
};

/** Mount-time (power-up recovery) cost, summed over all power cuts. */
struct MountSummary
{
    std::uint64_t powerCuts = 0;
    double totalMs = 0.0;
    double checkpointLoadMs = 0.0;
    double journalReplayMs = 0.0;
    double scanMs = 0.0;
    double reEraseMs = 0.0;
    double checkpointWriteMs = 0.0;
};

/** Everything the "attribution" report section serializes. */
struct AttributionSummary
{
    bool enabled = false;
    int version = kAttributionVersion;
    std::uint64_t requests = 0;
    /** Copied from DeviceStats; must be 0 (audit-enforced). */
    std::uint64_t ledgerViolations = 0;
    PhaseDist response;
    std::array<PhaseDist, emmc::kPhaseCount> phases;
    std::vector<TailSlice> tails;
    std::vector<SlowRequest> slowest;
    MountSummary mount;
};

/**
 * Records one compact ledger per completed request and folds them into
 * an AttributionSummary. Only constructed in attribution mode, so the
 * per-request push_back cost never touches the default path.
 */
class AttributionRecorder
{
  public:
    /** @param slowest_k how many worst requests to keep (>= 0). */
    explicit AttributionRecorder(std::size_t slowest_k = 10);

    /** Store @p completed's ledger. */
    void onRequest(const emmc::CompletedRequest &completed);

    /** Fold in end-of-run device state (violations, mount cost). */
    void noteDevice(const emmc::DeviceStats &stats,
                    const emmc::SpoStats &spo);

    /** Number of recorded requests. */
    std::size_t count() const { return recs_.size(); }

    /** Aggregate everything recorded so far. */
    AttributionSummary summarize() const;

  private:
    struct Rec
    {
        std::uint64_t id;
        sim::Time arrival;
        sim::Time response; ///< finish - arrival (== ledger total)
        std::array<sim::Time, emmc::kPhaseCount> ns;
        bool write;
    };

    std::size_t slowestK_;
    std::vector<Rec> recs_;
    std::uint64_t ledgerViolations_ = 0;
    MountSummary mount_;
};

} // namespace emmcsim::obs

#endif // EMMCSIM_OBS_ATTRIBUTION_HH
