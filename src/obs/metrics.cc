#include "obs/metrics.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace emmcsim::obs {

std::uint64_t
MetricsSnapshot::counterValue(std::string_view name) const
{
    for (const Counter &c : counters) {
        if (c.name == name)
            return c.value;
    }
    return 0;
}

bool
MetricsSnapshot::hasCounter(std::string_view name) const
{
    return std::any_of(counters.begin(), counters.end(),
                       [&](const Counter &c) { return c.name == name; });
}

double
MetricsSnapshot::gaugeValue(std::string_view name) const
{
    for (const Gauge &g : gauges) {
        if (g.name == name)
            return g.value;
    }
    return 0.0;
}

const MetricsSnapshot::Summary *
MetricsSnapshot::findSummary(std::string_view name) const
{
    for (const Summary &s : summaries) {
        if (s.name == name)
            return &s;
    }
    return nullptr;
}

std::string
Registry::checkName(std::string_view name)
{
    if (name.empty())
        return "empty metric name";
    bool segment_open = false;
    for (char c : name) {
        if (c == '.') {
            if (!segment_open)
                return "empty name segment in \"" + std::string(name) +
                       "\"";
            segment_open = false;
            continue;
        }
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= '0' && c <= '9') || c == '_';
        if (!ok)
            return "invalid character '" + std::string(1, c) +
                   "' in metric name \"" + std::string(name) + "\"";
        segment_open = true;
    }
    if (!segment_open)
        return "trailing dot in metric name \"" + std::string(name) +
               "\"";
    return {};
}

void
Registry::reserveName(const std::string &name)
{
    const std::string objection = checkName(name);
    if (!objection.empty())
        sim::panic("obs registry: " + objection);
    if (has(name))
        sim::panic("obs registry: duplicate metric name \"" + name +
                   "\"");
}

void
Registry::counter(std::string name, CounterFn fn)
{
    EMMCSIM_ASSERT(fn != nullptr, "counter source must be callable");
    reserveName(name);
    counters_.push_back(CounterEntry{std::move(name), std::move(fn)});
}

void
Registry::gauge(std::string name, GaugeFn fn, bool sampled)
{
    EMMCSIM_ASSERT(fn != nullptr, "gauge source must be callable");
    reserveName(name);
    gauges_.push_back(GaugeEntry{std::move(name), std::move(fn), sampled});
}

void
Registry::summary(std::string name, const sim::OnlineStats *stats)
{
    EMMCSIM_ASSERT(stats != nullptr, "summary source must be non-null");
    reserveName(name);
    summaries_.push_back(SummaryEntry{std::move(name), stats});
}

void
Registry::histogram(std::string name, const sim::Histogram *hist)
{
    EMMCSIM_ASSERT(hist != nullptr, "histogram source must be non-null");
    reserveName(name);
    HistEntry entry;
    entry.name = std::move(name);
    entry.hist = hist;
    histograms_.push_back(std::move(entry));
}

sim::Histogram &
Registry::makeHistogram(std::string name,
                        std::vector<double> upper_bounds)
{
    reserveName(name);
    HistEntry entry;
    entry.name = std::move(name);
    entry.owned =
        std::make_unique<sim::Histogram>(std::move(upper_bounds));
    entry.hist = entry.owned.get();
    histograms_.push_back(std::move(entry));
    return *histograms_.back().owned;
}

bool
Registry::has(std::string_view name) const
{
    auto by_name = [&](const auto &e) { return e.name == name; };
    return std::any_of(counters_.begin(), counters_.end(), by_name) ||
           std::any_of(gauges_.begin(), gauges_.end(), by_name) ||
           std::any_of(summaries_.begin(), summaries_.end(), by_name) ||
           std::any_of(histograms_.begin(), histograms_.end(), by_name);
}

std::size_t
Registry::size() const
{
    return counters_.size() + gauges_.size() + summaries_.size() +
           histograms_.size();
}

std::vector<std::string>
Registry::names() const
{
    std::vector<std::string> out;
    out.reserve(size());
    for (const auto &e : counters_)
        out.push_back(e.name);
    for (const auto &e : gauges_)
        out.push_back(e.name);
    for (const auto &e : summaries_)
        out.push_back(e.name);
    for (const auto &e : histograms_)
        out.push_back(e.name);
    std::sort(out.begin(), out.end());
    return out;
}

void
Registry::clear()
{
    counters_.clear();
    gauges_.clear();
    summaries_.clear();
    histograms_.clear();
}

MetricsSnapshot
Registry::snapshot() const
{
    MetricsSnapshot snap;
    snap.counters.reserve(counters_.size());
    for (const auto &e : counters_)
        snap.counters.push_back({e.name, e.fn()});

    snap.gauges.reserve(gauges_.size());
    for (const auto &e : gauges_)
        snap.gauges.push_back({e.name, e.fn()});

    snap.summaries.reserve(summaries_.size());
    for (const auto &e : summaries_) {
        MetricsSnapshot::Summary s;
        s.name = e.name;
        s.count = e.stats->count();
        s.mean = e.stats->mean();
        s.stddev = e.stats->stddev();
        // min/max are +/-inf on empty sources, which JSON cannot hold.
        s.min = s.count ? e.stats->min() : 0.0;
        s.max = s.count ? e.stats->max() : 0.0;
        s.sum = e.stats->sum();
        snap.summaries.push_back(std::move(s));
    }

    snap.histograms.reserve(histograms_.size());
    for (const auto &e : histograms_) {
        MetricsSnapshot::Distribution d;
        d.name = e.name;
        const sim::Histogram &h = *e.hist;
        d.counts.reserve(h.bucketCount());
        for (std::size_t i = 0; i < h.bucketCount(); ++i) {
            if (i + 1 < h.bucketCount())
                d.upperBounds.push_back(h.upperBoundAt(i));
            d.counts.push_back(h.bucketCountAt(i));
        }
        d.total = h.total();
        d.p50 = h.p50();
        d.p95 = h.p95();
        d.p99 = h.p99();
        snap.histograms.push_back(std::move(d));
    }
    return snap;
}

std::vector<std::string>
Registry::sampledNames() const
{
    std::vector<std::string> out;
    out.reserve(counters_.size() + gauges_.size());
    for (const auto &e : counters_)
        out.push_back(e.name);
    for (const auto &e : gauges_) {
        if (e.sampled)
            out.push_back(e.name);
    }
    return out;
}

std::vector<double>
Registry::sampledValues() const
{
    std::vector<double> out;
    out.reserve(counters_.size() + gauges_.size());
    for (const auto &e : counters_)
        out.push_back(static_cast<double>(e.fn()));
    for (const auto &e : gauges_) {
        if (e.sampled)
            out.push_back(e.fn());
    }
    return out;
}

} // namespace emmcsim::obs
