#include "obs/observer.hh"

#include "emmc/device.hh"
#include "sim/logging.hh"

namespace emmcsim::obs {

namespace {

/** Millisecond latency buckets spanning flash-read to multi-second
 * GC-stall territory (roughly log-spaced, like the paper's CDFs). */
std::vector<double>
latencyBoundsMs()
{
    return {0.05, 0.1,  0.2,  0.5,   1.0,   2.0,    5.0,    10.0,
            20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0};
}

} // namespace

DeviceObserver::DeviceObserver(sim::Simulator &simulator,
                               emmc::EmmcDevice &device,
                               const ObserverOptions &opts)
    : sim_(simulator), device_(device), opts_(opts)
{
    if (metricsEnabled()) {
        registerDeviceMetrics(registry_, device_, opts_.prefix);
        if (opts_.eventCore)
            registerEventCoreMetrics(registry_, sim_, opts_.prefix);
        if (opts_.replayStats != nullptr)
            registerReplayerMetrics(registry_, *opts_.replayStats,
                                    opts_.prefix);
        responseMsHist_ = &registry_.makeHistogram(
            opts_.prefix + "emmc.latency.response_ms", latencyBoundsMs());
        serviceMsHist_ = &registry_.makeHistogram(
            opts_.prefix + "emmc.latency.service_ms", latencyBoundsMs());
    }

    if (opts_.attribution)
        recorder_ = std::make_unique<AttributionRecorder>(opts_.slowestK);

    if (metricsEnabled() || opts_.trace || opts_.attribution) {
        device_.setTraceHook([this](const emmc::CompletedRequest &c) {
            onRequest(c);
        });
        hooked_ = true;
    }
    if (opts_.trace) {
        flash::FlashArray &array = device_.array();
        const flash::Geometry &geom = array.geometry();
        array.setOpHook([this, &geom](flash::OpKind kind,
                                      const flash::PageAddr &addr,
                                      const flash::OpResult &res) {
            tracer_.onFlashOp(kind, addr, res,
                              flash::dieLinear(geom, addr));
        });
    }

    if (opts_.sampleWindow > 0) {
        // Registration is complete; the sampler can freeze the
        // sampled-metric set and watch the clock after every event.
        sampler_ = std::make_unique<Sampler>(registry_, opts_.sampleWindow);
        simHook_ = sim_.addPostEventHook(
            [this](const sim::Simulator &s) { sampler_->observe(s.now()); });
    }
}

DeviceObserver::~DeviceObserver()
{
    finish();
}

void
DeviceObserver::onRequest(const emmc::CompletedRequest &completed)
{
    if (responseMsHist_ != nullptr) {
        responseMsHist_->add(sim::toMilliseconds(completed.finish -
                                                 completed.request.arrival));
        serviceMsHist_->add(
            sim::toMilliseconds(completed.finish - completed.serviceStart));
    }
    if (opts_.trace)
        tracer_.onRequest(completed);
    if (recorder_)
        recorder_->onRequest(completed);
}

void
DeviceObserver::finish()
{
    if (finished_)
        return;
    finished_ = true;

    if (simHook_ != 0) {
        sim_.removePostEventHook(simHook_);
        simHook_ = 0;
    }
    if (sampler_)
        sampler_->finish(sim_.now());
    if (hooked_) {
        device_.setTraceHook(nullptr);
        hooked_ = false;
    }
    if (opts_.trace)
        device_.array().setOpHook(nullptr);

    if (metricsEnabled())
        snapshot_ = registry_.snapshot();

    if (recorder_) {
        recorder_->noteDevice(device_.stats(), device_.spoStats());
        attribution_ = recorder_->summarize();
    }
}

SeriesSet
DeviceObserver::series() const
{
    return sampler_ ? sampler_->series() : SeriesSet{};
}

} // namespace emmcsim::obs
