/**
 * @file
 * obs::DeviceObserver: one-call wiring of the observability layer to a
 * simulator + device pair.
 *
 * The observer owns the metrics Registry, the windowed Sampler and the
 * RequestTracer, installs the single device trace hook (fanning out to
 * the tracer and its own latency histograms) and the flash op hook,
 * and drives the sampler from a simulator post-event hook. Tools
 * construct one observer per run when any observability flag is on;
 * with no observer constructed, every hook stays null and the
 * simulation executes the exact pre-obs code path.
 *
 * Call finish() after the run completes and *before* the device is
 * destroyed: it closes the sampler series, detaches every hook and
 * takes the final value snapshot, which (unlike the registry) stays
 * valid after the device dies.
 */

#ifndef EMMCSIM_OBS_OBSERVER_HH
#define EMMCSIM_OBS_OBSERVER_HH

#include <string>

#include "obs/attribution.hh"
#include "obs/device_metrics.hh"
#include "obs/metrics.hh"
#include "obs/sampler.hh"
#include "obs/tracer.hh"
#include "sim/simulator.hh"

namespace emmcsim::emmc {
class EmmcDevice;
}
namespace emmcsim::host {
struct ReplayStats;
}

namespace emmcsim::obs {

/** What to observe for one run. */
struct ObserverOptions
{
    /** Register metrics and take an end-of-run snapshot. */
    bool metrics = false;
    /** Record request / flash-op spans for trace export. */
    bool trace = false;
    /**
     * Sampler window in simulated ns; > 0 enables windowed series
     * (implies metrics).
     */
    sim::Time sampleWindow = 0;
    /**
     * Host-side replay counters to include under "host.replay.*"
     * (borrowed; may be null).
     */
    const host::ReplayStats *replayStats = nullptr;
    /**
     * Record per-request phase ledgers and aggregate them into the
     * report's "attribution" section.
     */
    bool attribution = false;
    /** Slowest-request count kept by the attribution summary. */
    std::size_t slowestK = 10;
    /**
     * Include scheduler self-metrics ("sim.events.*"). These count
     * event-core activity in this process, not simulated device
     * state: a snapshot-resumed run re-schedules its pending events
     * and so legitimately reports different figures from the
     * uninterrupted run. Disable when a report must be byte-identical
     * across snapshot resume.
     */
    bool eventCore = true;
    /** Metric name prefix (must end with '.' when non-empty). */
    std::string prefix;

    bool any() const
    {
        return metrics || trace || attribution || sampleWindow > 0;
    }
};

/** Wires registry + sampler + tracer to one simulator and device. */
class DeviceObserver
{
  public:
    /**
     * Install hooks per @p opts. The simulator and device must
     * outlive the observer or finish() must be called first.
     */
    DeviceObserver(sim::Simulator &simulator, emmc::EmmcDevice &device,
                   const ObserverOptions &opts);

    DeviceObserver(const DeviceObserver &) = delete;
    DeviceObserver &operator=(const DeviceObserver &) = delete;

    /** Detaches everything (finish() if not already called). */
    ~DeviceObserver();

    /**
     * Close the run: final sampler window, hook removal, end-of-run
     * metrics snapshot. Idempotent.
     */
    void finish();

    /** The live registry (metrics mode; empty otherwise). */
    Registry &registry() { return registry_; }
    const Registry &registry() const { return registry_; }

    /** The span recorder (trace mode; empty otherwise). */
    RequestTracer &tracer() { return tracer_; }
    const RequestTracer &tracer() const { return tracer_; }

    /** End-of-run values; valid after finish(). */
    const MetricsSnapshot &snapshot() const { return snapshot_; }

    /**
     * Aggregated latency attribution; enabled only in attribution
     * mode, and fully populated after finish().
     */
    const AttributionSummary &attribution() const { return attribution_; }

    /** Windowed series; empty when no sampler ran. */
    SeriesSet series() const;

    bool tracing() const { return opts_.trace; }
    bool metricsEnabled() const
    {
        return opts_.metrics || opts_.sampleWindow > 0;
    }

  private:
    /** Per-completed-request fan-out (histograms + tracer). */
    void onRequest(const emmc::CompletedRequest &completed);

    sim::Simulator &sim_;
    emmc::EmmcDevice &device_;
    ObserverOptions opts_;

    Registry registry_;
    RequestTracer tracer_;
    std::unique_ptr<Sampler> sampler_;
    std::unique_ptr<AttributionRecorder> recorder_;
    AttributionSummary attribution_;
    sim::Simulator::HookId simHook_ = 0;
    bool hooked_ = false;
    bool finished_ = false;

    /** Registry-owned response-time histogram (metrics mode). */
    sim::Histogram *responseMsHist_ = nullptr;
    /** Registry-owned service-time histogram (metrics mode). */
    sim::Histogram *serviceMsHist_ = nullptr;

    MetricsSnapshot snapshot_;
};

} // namespace emmcsim::obs

#endif // EMMCSIM_OBS_OBSERVER_HH
