/**
 * @file
 * obs::RunReport: the unified machine-readable run artifact.
 *
 * One report describes one tool invocation: shared metadata (tool,
 * trace, scheme, seed, ...) plus one entry per simulated run, each
 * carrying a full metrics snapshot and, when a sampler ran, its
 * windowed series. The CLI, the HPS case study and the benchmarks all
 * emit this same schema ("emmcsim-run-report-v1"), so downstream
 * scripts parse one format regardless of which binary produced it.
 *
 * JSON layout:
 * @code
 * {
 *   "schema": "emmcsim-run-report-v1",
 *   "meta": { "tool": "emmcsim_cli", "seed": 42, ... },
 *   "runs": [ {
 *     "name": "replay",
 *     "counters":   { "emmc.requests": 1000, ... },
 *     "gauges":     { "emmc.queue_depth": 0, ... },
 *     "summaries":  { "emmc.response_ms": {"count":..,"mean":..,...} },
 *     "histograms": { "...": {"upper_bounds":[..],"counts":[..],
 *                             "total":..,"p50":..,"p95":..,"p99":..} },
 *     "series":     { "window_ns": ..,
 *                     "metrics": { "emmc.requests": [..], ... } },
 *     "attribution": { "version": 1, "requests": ..,
 *                      "ledger_violations": 0,
 *                      "response": { "hits":..,"total_ms":..,... },
 *                      "phases":   { "queue_wait": {..}, ... },
 *                      "tails":    [ { "quantile": 99.0, ... } ],
 *                      "slowest":  [ { "id":..,"phase_ms":{..} } ],
 *                      "mount":    { "power_cuts":..,... } }
 *   } ]
 * }
 * @endcode
 * The "series" key is omitted for runs sampled with no window, and
 * "attribution" for runs without --attribution — so reports produced
 * with attribution off stay byte-identical to the pre-attribution
 * schema.
 */

#ifndef EMMCSIM_OBS_REPORT_HH
#define EMMCSIM_OBS_REPORT_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/attribution.hh"
#include "obs/metrics.hh"
#include "obs/sampler.hh"

namespace emmcsim::obs {

/** Schema identifier emitted in every report. */
inline constexpr const char *kRunReportSchema = "emmcsim-run-report-v1";

/** Collects run results and serializes the report JSON. */
class RunReport
{
  public:
    RunReport() = default;

    /** @name Report-wide metadata (last set wins per key). @{ */
    void setMeta(std::string key, std::string value);
    void setMeta(std::string key, const char *value);
    void setMeta(std::string key, std::uint64_t value);
    void setMeta(std::string key, double value);
    /** @} */

    /**
     * Append one run's results.
     * @param name    Run label, unique within the report (e.g. the
     *        scheme name, or "replay" for single-run tools).
     * @param metrics Value snapshot taken at end of run.
     * @param series  Sampler output; an empty SeriesSet (window 0)
     *        omits the "series" key.
     * @param attribution Latency-attribution summary; a disabled
     *        summary omits the "attribution" key.
     */
    void addRun(std::string name, MetricsSnapshot metrics,
                SeriesSet series = {},
                AttributionSummary attribution = {});

    std::size_t runCount() const { return runs_.size(); }

    /** Serialize the report. */
    void writeJson(std::ostream &os) const;

    /** Serialize to @p path; sim::fatal on I/O failure. */
    void writeJsonFile(const std::string &path) const;

  private:
    struct MetaEntry
    {
        enum class Kind { Str, UInt, Dbl };
        std::string key;
        Kind kind = Kind::Str;
        std::string s;
        std::uint64_t u = 0;
        double d = 0.0;
    };

    struct Run
    {
        std::string name;
        MetricsSnapshot metrics;
        SeriesSet series;
        AttributionSummary attribution;
    };

    /** Insert-or-replace slot for @p key. */
    MetaEntry &metaSlot(std::string key);

    std::vector<MetaEntry> meta_;
    std::vector<Run> runs_;
};

} // namespace emmcsim::obs

#endif // EMMCSIM_OBS_REPORT_HH
