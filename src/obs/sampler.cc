#include "obs/sampler.hh"

#include "sim/logging.hh"

namespace emmcsim::obs {

Sampler::Sampler(const Registry &registry, sim::Time window)
    : registry_(registry), window_(window), nextBoundary_(window)
{
    EMMCSIM_ASSERT(window > 0, "sampler window must be positive");
    names_ = registry_.sampledNames();
    values_.resize(names_.size());
}

void
Sampler::sampleNow()
{
    const std::vector<double> vals = registry_.sampledValues();
    EMMCSIM_ASSERT(vals.size() == names_.size(),
                   "registry changed size while a sampler was attached");
    for (std::size_t i = 0; i < vals.size(); ++i)
        values_[i].push_back(vals[i]);
    ++windows_;
}

void
Sampler::observe(sim::Time now)
{
    if (finished_)
        return;
    // One sample per elapsed boundary: counters are monotonic, so a
    // quiet stretch spanning several windows just repeats the value —
    // consumers differencing adjacent entries correctly see zero rate.
    while (now >= nextBoundary_) {
        sampleNow();
        nextBoundary_ += window_;
    }
}

void
Sampler::finish(sim::Time now)
{
    if (finished_)
        return;
    observe(now);
    // Record the trailing partial window so the series always covers
    // the full run; its boundary is `now` itself.
    if (now > nextBoundary_ - window_)
        sampleNow();
    finished_ = true;
}

SeriesSet
Sampler::series() const
{
    SeriesSet out;
    out.window = window_;
    out.names = names_;
    out.values = values_;
    return out;
}

} // namespace emmcsim::obs
