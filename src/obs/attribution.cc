#include "obs/attribution.hh"

#include <algorithm>
#include <cstddef>

#include "emmc/device.hh"
#include "sim/logging.hh"

namespace emmcsim::obs {

namespace {

/** Response-time quantiles the tail slices are cut at. */
constexpr std::array<double, 4> kTailQuantiles = {50.0, 95.0, 99.0, 99.9};

/**
 * Nearest-rank percentile over a sorted ascending vector; mirrors
 * sim::Percentiles::percentile so attribution thresholds agree with
 * the rest of the reporting stack.
 */
sim::Time
rankPercentile(const std::vector<sim::Time> &sorted, double p)
{
    if (sorted.empty())
        return 0;
    if (p <= 0.0)
        return sorted.front();
    const auto n = static_cast<double>(sorted.size());
    auto rank = static_cast<std::size_t>(std::max(1.0, (p / 100.0) * n));
    // Guard fp rounding: ceil-free nearest rank, clamped to the range.
    if (rank < sorted.size() &&
        (static_cast<double>(rank) * 100.0) / n < p) {
        ++rank;
    }
    rank = std::min(rank, sorted.size());
    return sorted[rank - 1];
}

} // namespace

AttributionRecorder::AttributionRecorder(std::size_t slowest_k)
    : slowestK_(slowest_k)
{
}

void
AttributionRecorder::onRequest(const emmc::CompletedRequest &completed)
{
    Rec rec;
    rec.id = completed.request.id;
    rec.arrival = completed.request.arrival;
    rec.response = completed.finish - completed.request.arrival;
    rec.ns = completed.phases.ns;
    rec.write = completed.request.write;
    recs_.push_back(rec);
}

void
AttributionRecorder::noteDevice(const emmc::DeviceStats &stats,
                                const emmc::SpoStats &spo)
{
    ledgerViolations_ = stats.ledgerViolations;
    mount_.powerCuts = spo.powerCuts;
    mount_.totalMs = sim::toMilliseconds(spo.recoveryTime);
    mount_.checkpointLoadMs = sim::toMilliseconds(spo.recoveryCheckpointLoad);
    mount_.journalReplayMs = sim::toMilliseconds(spo.recoveryJournalReplay);
    mount_.scanMs = sim::toMilliseconds(spo.recoveryScan);
    mount_.reEraseMs = sim::toMilliseconds(spo.recoveryReErase);
    mount_.checkpointWriteMs =
        sim::toMilliseconds(spo.recoveryCheckpointWrite);
}

AttributionSummary
AttributionRecorder::summarize() const
{
    AttributionSummary out;
    out.enabled = true;
    out.requests = recs_.size();
    out.ledgerViolations = ledgerViolations_;
    out.mount = mount_;
    if (recs_.empty())
        return out;

    const std::size_t n = recs_.size();
    const double dn = static_cast<double>(n);

    // One reusable sort buffer: per-phase distributions, then the
    // response distribution and the tail thresholds.
    std::vector<sim::Time> sorted(n);

    auto fillDist = [&](PhaseDist &d, auto &&pick) {
        sim::Time total = 0;
        sim::Time max = 0;
        std::uint64_t hits = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const sim::Time v = pick(recs_[i]);
            sorted[i] = v;
            total += v;
            max = std::max(max, v);
            hits += v > 0 ? 1 : 0;
        }
        std::sort(sorted.begin(), sorted.end());
        d.hits = hits;
        d.totalMs = sim::toMilliseconds(total);
        d.meanMs = d.totalMs / dn;
        d.maxMs = sim::toMilliseconds(max);
        d.p50Ms = sim::toMilliseconds(rankPercentile(sorted, 50.0));
        d.p95Ms = sim::toMilliseconds(rankPercentile(sorted, 95.0));
        d.p99Ms = sim::toMilliseconds(rankPercentile(sorted, 99.0));
        d.p999Ms = sim::toMilliseconds(rankPercentile(sorted, 99.9));
    };

    for (std::size_t p = 0; p < emmc::kPhaseCount; ++p)
        fillDist(out.phases[p], [p](const Rec &r) { return r.ns[p]; });
    fillDist(out.response, [](const Rec &r) { return r.response; });
    // `sorted` now holds ascending response times; tail thresholds
    // come from the same nearest-rank rule as the printed p-values.
    out.tails.reserve(kTailQuantiles.size());
    for (double q : kTailQuantiles) {
        TailSlice slice;
        slice.quantile = q;
        const sim::Time threshold = rankPercentile(sorted, q);
        slice.thresholdMs = sim::toMilliseconds(threshold);
        std::array<sim::Time, emmc::kPhaseCount> sums{};
        for (const Rec &r : recs_) {
            if (r.response < threshold)
                continue;
            ++slice.requests;
            for (std::size_t p = 0; p < emmc::kPhaseCount; ++p)
                sums[p] += r.ns[p];
        }
        EMMCSIM_ASSERT(slice.requests > 0,
                       "tail slice threshold excluded every request");
        for (std::size_t p = 0; p < emmc::kPhaseCount; ++p) {
            slice.meanPhaseMs[p] = sim::toMilliseconds(sums[p]) /
                                   static_cast<double>(slice.requests);
        }
        out.tails.push_back(slice);
    }

    // Slowest K, worst first; ties broken by id so the report is
    // deterministic across STL implementations.
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i)
        order[i] = i;
    const std::size_t k = std::min(slowestK_, n);
    std::partial_sort(order.begin(), order.begin() + k, order.end(),
                      [this](std::size_t a, std::size_t b) {
                          if (recs_[a].response != recs_[b].response)
                              return recs_[a].response > recs_[b].response;
                          return recs_[a].id < recs_[b].id;
                      });
    out.slowest.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
        const Rec &r = recs_[order[i]];
        SlowRequest s;
        s.id = r.id;
        s.arrival = r.arrival;
        s.write = r.write;
        s.responseMs = sim::toMilliseconds(r.response);
        for (std::size_t p = 0; p < emmc::kPhaseCount; ++p)
            s.phaseMs[p] = sim::toMilliseconds(r.ns[p]);
        out.slowest.push_back(s);
    }
    return out;
}

} // namespace emmcsim::obs
