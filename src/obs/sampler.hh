/**
 * @file
 * obs::Sampler: windowed time-series of registry metrics.
 *
 * The sampler snapshots every sampled metric (counters plus cheap
 * gauges) at simulated-time window boundaries k * window, producing
 * the per-window series the paper's Fig 3 throughput plots need —
 * windowed throughput is the difference of a counter between adjacent
 * boundaries, queue-depth-over-time is a gauge series directly.
 *
 * Sampling is *lazy*: a discrete-event simulation has no activity
 * between events, so the sampler observes the clock from the
 * simulator's post-event hook and emits one sample per elapsed
 * boundary on the first event at-or-after it. Counters are monotonic,
 * so the value observed at the first event past a boundary equals the
 * value *at* the boundary; instantaneous gauges (queue depth) are read
 * at that same post-event instant, before the catch-up event's effect
 * is distinguishable — the standard lazy-sampling convention. No
 * events are scheduled, which keeps the event queue drainable and the
 * replay byte-identical with or without a sampler attached.
 */

#ifndef EMMCSIM_OBS_SAMPLER_HH
#define EMMCSIM_OBS_SAMPLER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hh"
#include "sim/types.hh"

namespace emmcsim::obs {

/** One run's windowed metric series. */
struct SeriesSet
{
    /** Window length (ns); 0 when no sampler ran. */
    sim::Time window = 0;
    /** Sampled metric names (parallel to values). */
    std::vector<std::string> names;
    /**
     * values[i][k] = metric i at window boundary (k + 1) * window.
     * Counters are cumulative; consumers difference adjacent entries
     * for per-window rates.
     */
    std::vector<std::vector<double>> values;

    /** Number of recorded boundaries. */
    std::size_t windows() const
    {
        return values.empty() ? 0 : values.front().size();
    }
};

/** Lazily samples a registry on simulated-time windows. */
class Sampler
{
  public:
    /**
     * @param registry Source registry (borrowed; the sampled-metric
     *        set is frozen at construction).
     * @param window   Window length; must be positive.
     */
    Sampler(const Registry &registry, sim::Time window);

    /**
     * Observe the clock at @p now: emits one sample per window
     * boundary in (last recorded boundary, now]. Called from the
     * simulator's post-event hook (any frequency; idempotent within a
     * window).
     */
    void observe(sim::Time now);

    /**
     * Close the series at end of run: records the final partial
     * window's boundary sample at @p now when any time elapsed past
     * the last boundary.
     */
    void finish(sim::Time now);

    sim::Time window() const { return window_; }

    /** Boundaries recorded so far. */
    std::size_t windows() const { return windows_; }

    /** The accumulated series (valid any time). */
    SeriesSet series() const;

  private:
    /** Append one sample of every tracked metric. */
    void sampleNow();

    const Registry &registry_;
    sim::Time window_;
    sim::Time nextBoundary_;
    std::uint64_t windows_ = 0;
    std::vector<std::string> names_;
    std::vector<std::vector<double>> values_;
    bool finished_ = false;
};

} // namespace emmcsim::obs

#endif // EMMCSIM_OBS_SAMPLER_HH
