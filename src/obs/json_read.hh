/**
 * @file
 * JsonValue: a minimal JSON reader for the run-report tooling.
 *
 * `emmcsim_cli explain` and `diff` consume run-report files the
 * simulator itself produced, so this parser only needs to cover what
 * JsonWriter emits (and be strict about it): objects, arrays, strings
 * with the writer's escape set, finite numbers, booleans and null.
 * Numbers parse through std::from_chars — like the writer's to_chars,
 * locale-independent by specification.
 *
 * Objects keep their members as an insertion-ordered vector of
 * (key, value) pairs rather than a hash map: report keys are few,
 * lookups are linear scans, and iteration order is the document order
 * (the project bans iteration over unordered containers anywhere
 * output is derived).
 */

#ifndef EMMCSIM_OBS_JSON_READ_HH
#define EMMCSIM_OBS_JSON_READ_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace emmcsim::obs {

/** One parsed JSON value (recursive). */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    using Member = std::pair<std::string, JsonValue>;

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** @name Accessors (asserting on kind mismatch). @{ */
    bool asBool() const;
    double asDouble() const;
    /** Number truncated to uint64 (asserted non-negative). */
    std::uint64_t asUInt() const;
    const std::string &asString() const;
    const std::vector<JsonValue> &items() const;
    const std::vector<Member> &members() const;
    /** @} */

    /** Object member by key; nullptr when absent or not an object. */
    const JsonValue *find(std::string_view key) const;

    /**
     * Object member by key, asserting presence — for schema fields
     * whose absence means the file is not a run report.
     */
    const JsonValue &at(std::string_view key) const;

    /**
     * Convenience: numeric member of an object, or @p fallback when
     * the key is absent. Asserts when present but non-numeric.
     */
    double numberOr(std::string_view key, double fallback) const;

    /**
     * Parse @p text as one JSON document.
     * @param err On failure, receives a one-line diagnostic with the
     *        byte offset.
     * @return parsed root, or Null kind with @p err set.
     */
    static bool parse(std::string_view text, JsonValue &out,
                      std::string &err);

  private:
    friend class JsonParser;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<JsonValue> items_;
    std::vector<Member> members_;
};

} // namespace emmcsim::obs

#endif // EMMCSIM_OBS_JSON_READ_HH
