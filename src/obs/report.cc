#include "obs/report.hh"

#include <fstream>
#include <ostream>

#include "obs/json.hh"
#include "sim/logging.hh"

namespace emmcsim::obs {

RunReport::MetaEntry &
RunReport::metaSlot(std::string key)
{
    for (MetaEntry &e : meta_) {
        if (e.key == key)
            return e;
    }
    meta_.push_back(MetaEntry{});
    meta_.back().key = std::move(key);
    return meta_.back();
}

void
RunReport::setMeta(std::string key, std::string value)
{
    MetaEntry &e = metaSlot(std::move(key));
    e.kind = MetaEntry::Kind::Str;
    e.s = std::move(value);
}

void
RunReport::setMeta(std::string key, const char *value)
{
    setMeta(std::move(key), std::string(value));
}

void
RunReport::setMeta(std::string key, std::uint64_t value)
{
    MetaEntry &e = metaSlot(std::move(key));
    e.kind = MetaEntry::Kind::UInt;
    e.u = value;
}

void
RunReport::setMeta(std::string key, double value)
{
    MetaEntry &e = metaSlot(std::move(key));
    e.kind = MetaEntry::Kind::Dbl;
    e.d = value;
}

void
RunReport::addRun(std::string name, MetricsSnapshot metrics,
                  SeriesSet series)
{
    for (const Run &r : runs_) {
        EMMCSIM_ASSERT(r.name != name,
                       "RunReport: duplicate run name \"" + name + "\"");
    }
    Run run;
    run.name = std::move(name);
    run.metrics = std::move(metrics);
    run.series = std::move(series);
    runs_.push_back(std::move(run));
}

void
RunReport::writeJson(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.field("schema", kRunReportSchema);

    w.key("meta").beginObject();
    for (const MetaEntry &e : meta_) {
        switch (e.kind) {
          case MetaEntry::Kind::Str:
            w.field(e.key, std::string_view(e.s));
            break;
          case MetaEntry::Kind::UInt:
            w.field(e.key, e.u);
            break;
          case MetaEntry::Kind::Dbl:
            w.field(e.key, e.d);
            break;
        }
    }
    w.endObject();

    w.key("runs").beginArray();
    for (const Run &r : runs_) {
        w.beginObject();
        w.field("name", std::string_view(r.name));

        w.key("counters").beginObject();
        for (const auto &c : r.metrics.counters)
            w.field(c.name, c.value);
        w.endObject();

        w.key("gauges").beginObject();
        for (const auto &g : r.metrics.gauges)
            w.field(g.name, g.value);
        w.endObject();

        w.key("summaries").beginObject();
        for (const auto &s : r.metrics.summaries) {
            w.key(s.name).beginObject();
            w.field("count", s.count);
            w.field("mean", s.mean);
            w.field("stddev", s.stddev);
            w.field("min", s.min);
            w.field("max", s.max);
            w.field("sum", s.sum);
            w.endObject();
        }
        w.endObject();

        w.key("histograms").beginObject();
        for (const auto &h : r.metrics.histograms) {
            w.key(h.name).beginObject();
            w.key("upper_bounds").beginArray();
            for (double b : h.upperBounds)
                w.value(b);
            w.endArray();
            w.key("counts").beginArray();
            for (std::uint64_t c : h.counts)
                w.value(c);
            w.endArray();
            w.field("total", h.total);
            w.field("p50", h.p50);
            w.field("p95", h.p95);
            w.field("p99", h.p99);
            w.endObject();
        }
        w.endObject();

        if (r.series.window > 0) {
            w.key("series").beginObject();
            w.field("window_ns",
                    static_cast<std::uint64_t>(r.series.window));
            w.key("metrics").beginObject();
            for (std::size_t i = 0; i < r.series.names.size(); ++i) {
                w.key(r.series.names[i]).beginArray();
                for (double v : r.series.values[i])
                    w.value(v);
                w.endArray();
            }
            w.endObject();
            w.endObject();
        }

        w.endObject();
    }
    w.endArray();

    w.endObject();
    os << '\n';
    EMMCSIM_ASSERT(w.done(), "run report export left JSON unbalanced");
}

void
RunReport::writeJsonFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        sim::fatal("cannot open report file for writing: " + path);
    writeJson(os);
    os.flush();
    if (!os)
        sim::fatal("failed writing report file: " + path);
}

} // namespace emmcsim::obs
