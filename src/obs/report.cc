#include "obs/report.hh"

#include <fstream>
#include <ostream>

#include "obs/json.hh"
#include "sim/logging.hh"

namespace emmcsim::obs {

RunReport::MetaEntry &
RunReport::metaSlot(std::string key)
{
    for (MetaEntry &e : meta_) {
        if (e.key == key)
            return e;
    }
    meta_.push_back(MetaEntry{});
    meta_.back().key = std::move(key);
    return meta_.back();
}

void
RunReport::setMeta(std::string key, std::string value)
{
    MetaEntry &e = metaSlot(std::move(key));
    e.kind = MetaEntry::Kind::Str;
    e.s = std::move(value);
}

void
RunReport::setMeta(std::string key, const char *value)
{
    setMeta(std::move(key), std::string(value));
}

void
RunReport::setMeta(std::string key, std::uint64_t value)
{
    MetaEntry &e = metaSlot(std::move(key));
    e.kind = MetaEntry::Kind::UInt;
    e.u = value;
}

void
RunReport::setMeta(std::string key, double value)
{
    MetaEntry &e = metaSlot(std::move(key));
    e.kind = MetaEntry::Kind::Dbl;
    e.d = value;
}

void
RunReport::addRun(std::string name, MetricsSnapshot metrics,
                  SeriesSet series, AttributionSummary attribution)
{
    for (const Run &r : runs_) {
        EMMCSIM_ASSERT(r.name != name,
                       "RunReport: duplicate run name \"" + name + "\"");
    }
    Run run;
    run.name = std::move(name);
    run.metrics = std::move(metrics);
    run.series = std::move(series);
    run.attribution = std::move(attribution);
    runs_.push_back(std::move(run));
}

namespace {

/** Serialize one PhaseDist object. */
void
writeDist(JsonWriter &w, const PhaseDist &d)
{
    w.beginObject();
    w.field("hits", d.hits);
    w.field("total_ms", d.totalMs);
    w.field("mean_ms", d.meanMs);
    w.field("max_ms", d.maxMs);
    w.field("p50_ms", d.p50Ms);
    w.field("p95_ms", d.p95Ms);
    w.field("p99_ms", d.p99Ms);
    w.field("p999_ms", d.p999Ms);
    w.endObject();
}

/** Serialize a full per-phase map keyed by phase name. */
void
writePhaseMap(JsonWriter &w,
              const std::array<double, emmc::kPhaseCount> &ms)
{
    w.beginObject();
    for (std::size_t p = 0; p < emmc::kPhaseCount; ++p)
        w.field(emmc::phaseName(static_cast<emmc::Phase>(p)), ms[p]);
    w.endObject();
}

/** Serialize the "attribution" run section. */
void
writeAttribution(JsonWriter &w, const AttributionSummary &a)
{
    w.key("attribution").beginObject();
    w.field("version", static_cast<std::uint64_t>(a.version));
    w.field("requests", a.requests);
    w.field("ledger_violations", a.ledgerViolations);

    w.key("response");
    writeDist(w, a.response);

    w.key("phases").beginObject();
    for (std::size_t p = 0; p < emmc::kPhaseCount; ++p) {
        w.key(emmc::phaseName(static_cast<emmc::Phase>(p)));
        writeDist(w, a.phases[p]);
    }
    w.endObject();

    w.key("tails").beginArray();
    for (const TailSlice &t : a.tails) {
        w.beginObject();
        w.field("quantile", t.quantile);
        w.field("threshold_ms", t.thresholdMs);
        w.field("requests", t.requests);
        w.key("mean_phase_ms");
        writePhaseMap(w, t.meanPhaseMs);
        w.endObject();
    }
    w.endArray();

    w.key("slowest").beginArray();
    for (const SlowRequest &s : a.slowest) {
        w.beginObject();
        w.field("id", s.id);
        w.field("arrival_ns", static_cast<std::int64_t>(s.arrival));
        w.field("op", s.write ? "write" : "read");
        w.field("response_ms", s.responseMs);
        w.key("phase_ms");
        writePhaseMap(w, s.phaseMs);
        w.endObject();
    }
    w.endArray();

    w.key("mount").beginObject();
    w.field("power_cuts", a.mount.powerCuts);
    w.field("total_ms", a.mount.totalMs);
    w.field("checkpoint_load_ms", a.mount.checkpointLoadMs);
    w.field("journal_replay_ms", a.mount.journalReplayMs);
    w.field("scan_ms", a.mount.scanMs);
    w.field("re_erase_ms", a.mount.reEraseMs);
    w.field("checkpoint_write_ms", a.mount.checkpointWriteMs);
    w.endObject();

    w.endObject();
}

} // namespace

void
RunReport::writeJson(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.field("schema", kRunReportSchema);

    w.key("meta").beginObject();
    for (const MetaEntry &e : meta_) {
        switch (e.kind) {
          case MetaEntry::Kind::Str:
            w.field(e.key, std::string_view(e.s));
            break;
          case MetaEntry::Kind::UInt:
            w.field(e.key, e.u);
            break;
          case MetaEntry::Kind::Dbl:
            w.field(e.key, e.d);
            break;
        }
    }
    w.endObject();

    w.key("runs").beginArray();
    for (const Run &r : runs_) {
        w.beginObject();
        w.field("name", std::string_view(r.name));

        w.key("counters").beginObject();
        for (const auto &c : r.metrics.counters)
            w.field(c.name, c.value);
        w.endObject();

        w.key("gauges").beginObject();
        for (const auto &g : r.metrics.gauges)
            w.field(g.name, g.value);
        w.endObject();

        w.key("summaries").beginObject();
        for (const auto &s : r.metrics.summaries) {
            w.key(s.name).beginObject();
            w.field("count", s.count);
            w.field("mean", s.mean);
            w.field("stddev", s.stddev);
            w.field("min", s.min);
            w.field("max", s.max);
            w.field("sum", s.sum);
            w.endObject();
        }
        w.endObject();

        w.key("histograms").beginObject();
        for (const auto &h : r.metrics.histograms) {
            w.key(h.name).beginObject();
            w.key("upper_bounds").beginArray();
            for (double b : h.upperBounds)
                w.value(b);
            w.endArray();
            w.key("counts").beginArray();
            for (std::uint64_t c : h.counts)
                w.value(c);
            w.endArray();
            w.field("total", h.total);
            w.field("p50", h.p50);
            w.field("p95", h.p95);
            w.field("p99", h.p99);
            w.endObject();
        }
        w.endObject();

        if (r.series.window > 0) {
            w.key("series").beginObject();
            w.field("window_ns",
                    static_cast<std::uint64_t>(r.series.window));
            w.key("metrics").beginObject();
            for (std::size_t i = 0; i < r.series.names.size(); ++i) {
                w.key(r.series.names[i]).beginArray();
                for (double v : r.series.values[i])
                    w.value(v);
                w.endArray();
            }
            w.endObject();
            w.endObject();
        }

        if (r.attribution.enabled)
            writeAttribution(w, r.attribution);

        w.endObject();
    }
    w.endArray();

    w.endObject();
    os << '\n';
    EMMCSIM_ASSERT(w.done(), "run report export left JSON unbalanced");
}

void
RunReport::writeJsonFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        sim::fatal("cannot open report file for writing: " + path);
    writeJson(os);
    os.flush();
    if (!os)
        sim::fatal("failed writing report file: " + path);
}

} // namespace emmcsim::obs
