/**
 * @file
 * Human-facing renderers over run-report attribution sections:
 * `emmcsim_cli explain` (where did the time go in one run) and
 * `emmcsim_cli diff` (which phases moved between two runs).
 *
 * Both work purely on parsed report JSON — no live device — so they
 * apply to any artifact the simulator ever produced, and both are
 * library functions so the golden-output tests can drive them without
 * spawning the CLI. All numbers render through JsonWriter::formatFixed
 * and stay byte-stable across host locales.
 */

#ifndef EMMCSIM_OBS_EXPLAIN_HH
#define EMMCSIM_OBS_EXPLAIN_HH

#include <iosfwd>
#include <string>

namespace emmcsim::obs {

class JsonValue;

/**
 * Print a latency explanation of @p report: per-run phase breakdown,
 * tail-slice composition (p50/p95/p99/p99.9), slowest requests and
 * mount cost. Runs without an "attribution" section are listed but
 * marked as not attributed.
 *
 * @return false with @p err set when @p report is not a run report.
 */
bool explainReport(const JsonValue &report, std::ostream &os,
                   std::string &err);

/**
 * Compare two run reports and attribute the response-time movement
 * between them to phases. Runs are matched by name; runs present on
 * only one side are listed as added/removed.
 *
 * @return false with @p err set when either document is not a run
 *         report.
 */
bool diffReports(const JsonValue &before, const JsonValue &after,
                 std::ostream &os, std::string &err);

} // namespace emmcsim::obs

#endif // EMMCSIM_OBS_EXPLAIN_HH
