/**
 * @file
 * obs::RequestTracer: opt-in recorder of per-request and per-flash-op
 * spans, exportable as an emmctrace text file (BIOtracer's three
 * timestamps, round-trippable through trace::Trace) or a Chrome
 * trace_event JSON file loadable in Perfetto / chrome://tracing.
 *
 * The tracer subscribes to two existing observation points — the
 * device's per-request trace hook and the flash array's per-operation
 * hook — so tracing adds no branches beyond the two null-checked
 * std::function calls those hooks already cost, and a run without a
 * tracer attached executes the exact pre-obs code path. This mirrors
 * the paper's BIOtracer, whose block-layer instrumentation perturbs
 * the traced workload by under ~2% (validated by
 * bench_biotracer_overhead).
 *
 * Span model:
 *  - request span: arrival (step 1) -> serviceStart (step 2) ->
 *    finish (step 3), with waited / packed / status annotations;
 *  - phase sub-spans: the request's attribution ledger
 *    (emmc/phases.hh) tiled under its span — queue-side phases
 *    (queue_wait / mount_stall / gc_wait) across [arrival,
 *    serviceStart] and the service chain across [serviceStart,
 *    finish], exact because the ledger conserves the response time;
 *  - flash-op span: start -> done for each read / program / erase /
 *    copyback, bucketed into per-die lanes, with fault status and
 *    read-retry counts.
 */

#ifndef EMMCSIM_OBS_TRACER_HH
#define EMMCSIM_OBS_TRACER_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "emmc/request.hh"
#include "flash/array.hh"
#include "trace/trace.hh"

namespace emmcsim::emmc {
class EmmcDevice;
}

namespace emmcsim::obs {

/** Records request and flash-operation spans from one device. */
class RequestTracer
{
  public:
    RequestTracer() = default;

    // The tracer installs hooks holding `this`.
    RequestTracer(const RequestTracer &) = delete;
    RequestTracer &operator=(const RequestTracer &) = delete;

    ~RequestTracer();

    /**
     * Subscribe to @p device (its trace hook and its array's op hook).
     * The device must outlive the tracer or be detached first; only
     * one device at a time.
     */
    void attach(emmc::EmmcDevice &device);

    /** Uninstall both hooks; recorded spans are kept. */
    void detach();

    /** @name Direct recording entry points (used by the hooks; exposed
     * for tests that synthesize spans without a device). @{ */
    void onRequest(const emmc::CompletedRequest &completed);
    void onFlashOp(flash::OpKind kind, const flash::PageAddr &addr,
                   const flash::OpResult &result,
                   std::uint32_t die_linear);
    /** @} */

    std::size_t requestCount() const { return requests_.size(); }
    std::size_t flashOpCount() const { return ops_.size(); }

    /**
     * Rebuild a trace::Trace carrying BIOtracer's three timestamps,
     * one record per completed request, arrival-ordered. Saving it
     * reproduces the emmctrace v1 text format, so a traced run's
     * export round-trips through trace::Trace::load.
     */
    trace::Trace toTrace(std::string name) const;

    /** Serialize toTrace(@p name) in the emmctrace text format. */
    void exportBiotracerCsv(std::ostream &os, std::string name) const;

    /**
     * Serialize every span as Chrome trace_event JSON: request service
     * intervals as complete ("X") events on one lane, queue waits as
     * async begin/end pairs, and flash operations as complete events
     * on one lane per die. Timestamps are microseconds (the format's
     * unit) with nanosecond precision kept in the fraction.
     */
    void exportChromeTrace(std::ostream &os) const;

  private:
    /** One completed request with BIOtracer's timestamps. */
    struct RequestSpan
    {
        std::uint64_t id = 0;
        sim::Time arrival = 0;
        sim::Time serviceStart = 0;
        sim::Time finish = 0;
        units::Lba lbaSector{0};
        units::Bytes sizeBytes{0};
        bool write = false;
        bool waited = false;
        bool packed = false;
        emmc::RequestStatus status = emmc::RequestStatus::Ok;
        /** Attribution ledger; tiles the span as phase sub-spans. */
        emmc::PhaseLedger phases;
    };

    /** One flash operation on its die lane. */
    struct FlashSpan
    {
        flash::OpKind kind = flash::OpKind::Read;
        std::uint32_t dieLinear = 0;
        flash::PageAddr addr;
        sim::Time start = 0;
        sim::Time done = 0;
        flash::OpStatus status = flash::OpStatus::Ok;
        std::uint32_t retries = 0;
    };

    emmc::EmmcDevice *device_ = nullptr;
    std::vector<RequestSpan> requests_;
    std::vector<FlashSpan> ops_;
};

} // namespace emmcsim::obs

#endif // EMMCSIM_OBS_TRACER_HH
