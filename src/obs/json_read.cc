#include "obs/json_read.hh"

#include <charconv>
#include <cmath>

#include "sim/logging.hh"

namespace emmcsim::obs {

bool
JsonValue::asBool() const
{
    EMMCSIM_ASSERT(isBool(), "JsonValue: not a bool");
    return bool_;
}

double
JsonValue::asDouble() const
{
    EMMCSIM_ASSERT(isNumber(), "JsonValue: not a number");
    return num_;
}

std::uint64_t
JsonValue::asUInt() const
{
    EMMCSIM_ASSERT(isNumber(), "JsonValue: not a number");
    EMMCSIM_ASSERT(num_ >= 0.0, "JsonValue: negative where uint expected");
    return static_cast<std::uint64_t>(num_);
}

const std::string &
JsonValue::asString() const
{
    EMMCSIM_ASSERT(isString(), "JsonValue: not a string");
    return str_;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    EMMCSIM_ASSERT(isArray(), "JsonValue: not an array");
    return items_;
}

const std::vector<JsonValue::Member> &
JsonValue::members() const
{
    EMMCSIM_ASSERT(isObject(), "JsonValue: not an object");
    return members_;
}

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (!isObject())
        return nullptr;
    for (const Member &m : members_) {
        if (m.first == key)
            return &m.second;
    }
    return nullptr;
}

const JsonValue &
JsonValue::at(std::string_view key) const
{
    const JsonValue *v = find(key);
    EMMCSIM_ASSERT(v != nullptr, "JsonValue: missing required key \"" +
                                     std::string(key) + "\"");
    return *v;
}

double
JsonValue::numberOr(std::string_view key, double fallback) const
{
    const JsonValue *v = find(key);
    return v != nullptr ? v->asDouble() : fallback;
}

/** Recursive-descent parser over a complete in-memory document. */
class JsonParser
{
  public:
    JsonParser(std::string_view text, std::string &err)
        : text_(text), err_(err)
    {
    }

    bool
    parseDocument(JsonValue &out)
    {
        if (!parseValue(out, 0))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing content after document root");
        return true;
    }

  private:
    /** Nesting bound: a report is ~8 deep; 64 rejects garbage input. */
    static constexpr int kMaxDepth = 64;

    bool
    fail(const std::string &what)
    {
        err_ = "JSON parse error at byte " + std::to_string(pos_) + ": " +
               what;
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    parseValue(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
          case '{':
            return parseObject(out, depth);
          case '[':
            return parseArray(out, depth);
          case '"':
            out.kind_ = JsonValue::Kind::String;
            return parseString(out.str_);
          case 't':
            if (text_.substr(pos_, 4) != "true")
                return fail("invalid literal");
            pos_ += 4;
            out.kind_ = JsonValue::Kind::Bool;
            out.bool_ = true;
            return true;
          case 'f':
            if (text_.substr(pos_, 5) != "false")
                return fail("invalid literal");
            pos_ += 5;
            out.kind_ = JsonValue::Kind::Bool;
            out.bool_ = false;
            return true;
          case 'n':
            if (text_.substr(pos_, 4) != "null")
                return fail("invalid literal");
            pos_ += 4;
            out.kind_ = JsonValue::Kind::Null;
            return true;
          default:
            return parseNumber(out);
        }
    }

    bool
    parseObject(JsonValue &out, int depth)
    {
        ++pos_; // '{'
        out.kind_ = JsonValue::Kind::Object;
        skipWs();
        if (consume('}'))
            return true;
        for (;;) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            JsonValue::Member m;
            if (!parseString(m.first))
                return false;
            skipWs();
            if (!consume(':'))
                return fail("expected ':' after key");
            if (!parseValue(m.second, depth + 1))
                return false;
            out.members_.push_back(std::move(m));
            skipWs();
            if (consume(','))
                continue;
            if (consume('}'))
                return true;
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    parseArray(JsonValue &out, int depth)
    {
        ++pos_; // '['
        out.kind_ = JsonValue::Kind::Array;
        skipWs();
        if (consume(']'))
            return true;
        for (;;) {
            JsonValue v;
            if (!parseValue(v, depth + 1))
                return false;
            out.items_.push_back(std::move(v));
            skipWs();
            if (consume(','))
                continue;
            if (consume(']'))
                return true;
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    parseString(std::string &out)
    {
        ++pos_; // '"'
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("invalid \\u escape digit");
                }
                // The writer only \u-escapes control bytes; decode
                // the BMP code point as UTF-8 for completeness.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                return fail("invalid escape character");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        // from_chars covers the JSON number grammar (no leading '+',
        // locale-independent by specification) but is laxer on two
        // points JSON forbids: leading zeros and a bare leading '.'.
        // Reject those up front; "inf"/"nan" parse but fail the
        // finiteness check below.
        {
            std::size_t p = pos_;
            if (p < text_.size() && text_[p] == '-')
                ++p;
            if (p < text_.size() && text_[p] == '.')
                return fail("invalid number");
            if (p + 1 < text_.size() && text_[p] == '0' &&
                text_[p + 1] >= '0' && text_[p + 1] <= '9') {
                return fail("leading zero in number");
            }
        }
        const char *begin = text_.data() + pos_;
        const char *end = text_.data() + text_.size();
        double d = 0.0;
        auto res = std::from_chars(begin, end, d);
        if (res.ec != std::errc{} || res.ptr == begin)
            return fail("invalid number");
        if (!std::isfinite(d))
            return fail("number out of range");
        pos_ += static_cast<std::size_t>(res.ptr - begin);
        out.kind_ = JsonValue::Kind::Number;
        out.num_ = d;
        return true;
    }

    std::string_view text_;
    std::string &err_;
    std::size_t pos_ = 0;
};

bool
JsonValue::parse(std::string_view text, JsonValue &out, std::string &err)
{
    out = JsonValue{};
    err.clear();
    JsonParser parser(text, err);
    if (parser.parseDocument(out))
        return true;
    out = JsonValue{};
    return false;
}

} // namespace emmcsim::obs
