#include "obs/tracer.hh"

#include <algorithm>
#include <ostream>
#include <unordered_map>

#include "emmc/device.hh"
#include "obs/json.hh"
#include "sim/logging.hh"

namespace emmcsim::obs {

namespace {

const char *
opName(flash::OpKind kind)
{
    switch (kind) {
      case flash::OpKind::Read: return "read";
      case flash::OpKind::Program: return "program";
      case flash::OpKind::Erase: return "erase";
      case flash::OpKind::CopybackRead: return "copyback_read";
      case flash::OpKind::CopybackProgram: return "copyback_program";
    }
    return "?";
}

const char *
opStatusName(flash::OpStatus status)
{
    switch (status) {
      case flash::OpStatus::Ok: return "ok";
      case flash::OpStatus::Corrected: return "corrected";
      case flash::OpStatus::Uncorrectable: return "uncorrectable";
      case flash::OpStatus::ProgramFail: return "program_fail";
      case flash::OpStatus::EraseFail: return "erase_fail";
    }
    return "?";
}

const char *
requestStatusName(emmc::RequestStatus status)
{
    switch (status) {
      case emmc::RequestStatus::Ok: return "ok";
      case emmc::RequestStatus::ReadError: return "read_error";
      case emmc::RequestStatus::WriteRejected: return "write_rejected";
    }
    return "?";
}

/** Chrome trace_event timestamps are microseconds; keep the
 * nanosecond fraction. */
double
toMicros(sim::Time t)
{
    return static_cast<double>(t) / 1000.0;
}

} // namespace

RequestTracer::~RequestTracer()
{
    detach();
}

void
RequestTracer::attach(emmc::EmmcDevice &device)
{
    EMMCSIM_ASSERT(device_ == nullptr,
                   "RequestTracer: already attached to a device");
    device_ = &device;
    device.setTraceHook(
        [this](const emmc::CompletedRequest &c) { onRequest(c); });
    flash::FlashArray &array = device.array();
    const flash::Geometry &geom = array.geometry();
    array.setOpHook([this, &geom](flash::OpKind kind,
                                  const flash::PageAddr &addr,
                                  const flash::OpResult &res) {
        onFlashOp(kind, addr, res, flash::dieLinear(geom, addr));
    });
}

void
RequestTracer::detach()
{
    if (device_ == nullptr)
        return;
    device_->setTraceHook(nullptr);
    device_->array().setOpHook(nullptr);
    device_ = nullptr;
}

void
RequestTracer::onRequest(const emmc::CompletedRequest &completed)
{
    RequestSpan s;
    s.id = completed.request.id;
    s.arrival = completed.request.arrival;
    s.serviceStart = completed.serviceStart;
    s.finish = completed.finish;
    s.lbaSector = completed.request.lbaSector;
    s.sizeBytes = completed.request.sizeBytes;
    s.write = completed.request.write;
    s.waited = completed.waited;
    s.packed = completed.packed;
    s.status = completed.status;
    s.phases = completed.phases;
    requests_.push_back(s);
}

void
RequestTracer::onFlashOp(flash::OpKind kind, const flash::PageAddr &addr,
                         const flash::OpResult &result,
                         std::uint32_t die_linear)
{
    FlashSpan s;
    s.kind = kind;
    s.dieLinear = die_linear;
    s.addr = addr;
    s.start = result.start;
    s.done = result.done;
    s.status = result.status;
    s.retries = result.retries;
    ops_.push_back(s);
}

trace::Trace
RequestTracer::toTrace(std::string name) const
{
    // Completion order is service order, not arrival order (a packed
    // command completes several requests at once); rebuild arrival
    // order, keeping the last span per id should one ever repeat.
    std::vector<const RequestSpan *> ordered;
    {
        std::unordered_map<std::uint64_t, const RequestSpan *> last;
        last.reserve(requests_.size());
        for (const RequestSpan &s : requests_)
            last[s.id] = &s;
        ordered.reserve(last.size());
        for (const RequestSpan &s : requests_) {
            if (last.at(s.id) == &s)
                ordered.push_back(&s);
        }
    }
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const RequestSpan *a, const RequestSpan *b) {
                         return a->arrival < b->arrival;
                     });

    trace::Trace out(std::move(name));
    for (const RequestSpan *s : ordered) {
        trace::TraceRecord r;
        r.arrival = s->arrival;
        r.lbaSector = s->lbaSector;
        r.sizeBytes = s->sizeBytes;
        r.op = s->write ? trace::OpType::Write : trace::OpType::Read;
        r.serviceStart = s->serviceStart;
        r.finish = s->finish;
        out.push(r);
    }
    return out;
}

void
RequestTracer::exportBiotracerCsv(std::ostream &os,
                                  std::string name) const
{
    toTrace(std::move(name)).save(os);
}

void
RequestTracer::exportChromeTrace(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.field("displayTimeUnit", "ns");
    w.key("traceEvents").beginArray();

    constexpr std::int64_t kPid = 1;
    constexpr std::int64_t kRequestTid = 1;
    constexpr std::int64_t kDieTidBase = 100;

    auto metadata = [&](std::int64_t tid, const char *what,
                        std::string_view value) {
        w.beginObject();
        w.field("name", what);
        w.field("ph", "M");
        w.field("pid", kPid);
        w.field("tid", tid);
        w.key("args").beginObject().field("name", value).endObject();
        w.endObject();
    };

    metadata(kRequestTid, "process_name", "emmcsim");
    metadata(kRequestTid, "thread_name", "emmc requests");

    std::uint32_t max_die = 0;
    for (const FlashSpan &s : ops_)
        max_die = std::max(max_die, s.dieLinear);
    if (!ops_.empty()) {
        for (std::uint32_t die = 0; die <= max_die; ++die) {
            metadata(kDieTidBase + die, "thread_name",
                     "die " + std::to_string(die));
        }
    }

    for (const RequestSpan &s : requests_) {
        if (s.waited) {
            // Queue wait as an async pair so Perfetto draws it as a
            // separate track row above the service span.
            w.beginObject();
            w.field("name", "queued");
            w.field("cat", "queue");
            w.field("ph", "b");
            w.field("id", s.id);
            w.field("ts", toMicros(s.arrival));
            w.field("pid", kPid);
            w.field("tid", kRequestTid);
            w.endObject();
            w.beginObject();
            w.field("name", "queued");
            w.field("cat", "queue");
            w.field("ph", "e");
            w.field("id", s.id);
            w.field("ts", toMicros(s.serviceStart));
            w.field("pid", kPid);
            w.field("tid", kRequestTid);
            w.endObject();
        }
        w.beginObject();
        w.field("name", s.write ? "write" : "read");
        w.field("cat", "request");
        w.field("ph", "X");
        w.field("ts", toMicros(s.serviceStart));
        w.field("dur", toMicros(s.finish - s.serviceStart));
        w.field("pid", kPid);
        w.field("tid", kRequestTid);
        w.key("args").beginObject();
        w.field("id", s.id);
        w.field("lba_sector", s.lbaSector.value());
        w.field("size_bytes", s.sizeBytes.value());
        w.field("waited", s.waited);
        w.field("packed", s.packed);
        w.field("status", requestStatusName(s.status));
        w.endObject();
        w.endObject();

        // Phase sub-spans from the attribution ledger. Queue-side
        // phases tile [arrival, serviceStart] as async pairs (drawn
        // on the same track row as "queued"); the service chain tiles
        // [serviceStart, finish] as nested "X" events. Conservation
        // makes both tilings exact; zero-length phases are skipped.
        constexpr emmc::Phase kQueuePhases[] = {emmc::Phase::QueueWait,
                                                emmc::Phase::MountStall,
                                                emmc::Phase::GcWait};
        sim::Time cursor = s.arrival;
        for (emmc::Phase p : kQueuePhases) {
            const sim::Time dur = s.phases.get(p);
            if (dur <= 0)
                continue;
            for (const char *ph : {"b", "e"}) {
                w.beginObject();
                w.field("name", emmc::phaseName(p));
                w.field("cat", "phase");
                w.field("ph", ph);
                w.field("id", s.id);
                w.field("ts", toMicros(ph[0] == 'b' ? cursor
                                                    : cursor + dur));
                w.field("pid", kPid);
                w.field("tid", kRequestTid);
                w.endObject();
            }
            cursor += dur;
        }
        cursor = s.serviceStart;
        for (emmc::Phase p : emmc::serviceChainOrder(s.write)) {
            const sim::Time dur = s.phases.get(p);
            if (dur <= 0)
                continue;
            w.beginObject();
            w.field("name", emmc::phaseName(p));
            w.field("cat", "phase");
            w.field("ph", "X");
            w.field("ts", toMicros(cursor));
            w.field("dur", toMicros(dur));
            w.field("pid", kPid);
            w.field("tid", kRequestTid);
            w.key("args").beginObject();
            w.field("id", s.id);
            w.endObject();
            w.endObject();
            cursor += dur;
        }
    }

    for (const FlashSpan &s : ops_) {
        w.beginObject();
        w.field("name", opName(s.kind));
        w.field("cat", "flash");
        w.field("ph", "X");
        w.field("ts", toMicros(s.start));
        w.field("dur", toMicros(s.done - s.start));
        w.field("pid", kPid);
        w.field("tid", kDieTidBase + s.dieLinear);
        w.key("args").beginObject();
        w.field("channel", std::uint64_t{s.addr.channel});
        w.field("chip", std::uint64_t{s.addr.chip});
        w.field("die", std::uint64_t{s.addr.die});
        w.field("plane", std::uint64_t{s.addr.plane});
        w.field("pool", std::uint64_t{s.addr.pool});
        w.field("block", std::uint64_t{s.addr.block});
        w.field("page", std::uint64_t{s.addr.page});
        w.field("status", opStatusName(s.status));
        if (s.retries)
            w.field("retries", std::uint64_t{s.retries});
        w.endObject();
        w.endObject();
    }

    w.endArray();
    w.endObject();
    os << '\n';
    EMMCSIM_ASSERT(w.done(), "chrome trace export left JSON unbalanced");
}

} // namespace emmcsim::obs
