/**
 * @file
 * JsonWriter: a minimal streaming JSON emitter.
 *
 * Both observability exports (the run report and the Chrome
 * trace_event file) must be valid JSON parsed by external tools
 * (python, Perfetto), so string escaping and number formatting live in
 * one audited place instead of ad-hoc << chains. The writer keeps a
 * context stack and panics on structural misuse (value without key
 * inside an object, unbalanced end calls) — exporter bugs surface in
 * tests, not as silently corrupt artifacts.
 */

#ifndef EMMCSIM_OBS_JSON_HH
#define EMMCSIM_OBS_JSON_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace emmcsim::obs {

/** Streaming JSON writer with structural validation. */
class JsonWriter
{
  public:
    /** @param os Sink; must outlive the writer. */
    explicit JsonWriter(std::ostream &os);

    /** Emit '{'. Usable as a document root or anywhere a value fits. */
    JsonWriter &beginObject();
    /** Emit '}'. */
    JsonWriter &endObject();
    /** Emit '['. */
    JsonWriter &beginArray();
    /** Emit ']'. */
    JsonWriter &endArray();

    /** Emit an object key; the next call must produce its value. */
    JsonWriter &key(std::string_view name);

    /** @name Scalar values. @{ */
    JsonWriter &value(std::string_view s);
    JsonWriter &value(const char *s);
    JsonWriter &value(double d);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(bool b);
    /** @} */

    /** Shorthand: key() followed by value(). */
    template <typename T>
    JsonWriter &
    field(std::string_view name, T v)
    {
        key(name);
        return value(v);
    }

    /** @return true once the root value is complete and balanced. */
    bool done() const;

    /**
     * Format @p d the way value(double) does: the shortest decimal
     * that round-trips to the same double, via std::to_chars — which
     * is locale-independent by specification, unlike printf %g /
     * std::to_string whose decimal separator follows LC_NUMERIC. All
     * obs number formatting funnels through here (or formatFixed) so
     * artifacts parse identically under any host locale. Non-finite
     * values (invalid JSON) become 0; callers guard where it matters.
     */
    static std::string formatNumber(double d);

    /**
     * Locale-independent fixed-point formatting with @p decimals
     * digits after the '.' (clamped to [0, 17]). For human-facing
     * tables (explain/diff) that must stay byte-stable across hosts;
     * non-finite values render as "0".
     */
    static std::string formatFixed(double d, int decimals);

    /** JSON-escape @p s (without surrounding quotes). */
    static std::string escape(std::string_view s);

  private:
    enum class Frame { Object, Array };

    /** Emit a comma when this value follows a sibling. */
    void preValue();

    std::ostream &os_;
    std::vector<Frame> stack_;
    std::vector<bool> hasSibling_;
    bool expectKey_ = false;  ///< inside an object, next call is key()
    bool rootDone_ = false;
};

} // namespace emmcsim::obs

#endif // EMMCSIM_OBS_JSON_HH
