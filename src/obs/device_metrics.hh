/**
 * @file
 * Registry binders: one call registers every metric a subsystem
 * exposes, under the project's canonical hierarchical names
 * ("emmc.requests", "ftl.gc.relocated_units", "fault.corrected_reads").
 *
 * Binders register *closures over the subsystems' existing stats
 * structs* — nothing is added to the simulation hot paths, and the
 * names stay consistent across the CLI, the case studies, and the
 * benchmarks because they are spelled exactly once, here.
 *
 * Lifetime: the bound device / replayer must outlive every snapshot or
 * sample taken from the registry. Callers that need values past the
 * device's lifetime keep the MetricsSnapshot (values only), not the
 * registry.
 */

#ifndef EMMCSIM_OBS_DEVICE_METRICS_HH
#define EMMCSIM_OBS_DEVICE_METRICS_HH

#include <string>

#include "obs/metrics.hh"

namespace emmcsim::emmc {
class EmmcDevice;
}
namespace emmcsim::host {
struct ReplayStats;
}
namespace emmcsim::sim {
class Simulator;
}

namespace emmcsim::obs {

/**
 * Register every device-side metric of @p device: controller counters
 * and latency summaries ("emmc.*"), packing / power / RAM-buffer
 * counters ("emmc.packing.*", "emmc.power.*", "emmc.buffer.*"), FTL,
 * GC, bad-block and wear metrics ("ftl.*", "ftl.gc.*", "ftl.bbm.*",
 * "ftl.wear.*"), flash-operation counters totalled and per pool
 * ("flash.*", "flash.poolN.*"), and fault-injector counters
 * ("fault.*", registered even when injection is disabled so reports
 * always carry the subsystem).
 *
 * Wear gauges walk every block of the array and are registered as
 * snapshot-only (sampled == false).
 *
 * @param prefix Optional name prefix (must end with '.' when
 *        non-empty), used when one registry holds several devices.
 */
void registerDeviceMetrics(Registry &registry,
                           const emmc::EmmcDevice &device,
                           const std::string &prefix = "");

/** Register host-side replay/retry counters ("host.replay.*"). */
void registerReplayerMetrics(Registry &registry,
                             const host::ReplayStats &stats,
                             const std::string &prefix = "");

/**
 * Register event-core scheduler metrics ("sim.events.*"): arena
 * occupancy, calendar-wheel bucket occupancy and overflow-heap size,
 * wheel/overflow schedule counts, epoch advances and promotions, and
 * dispatch-batch statistics. Pure pull-side closures over the queue's
 * existing counters — nothing is added to the event hot path, and a
 * run without --metrics never reads them (zero-cost when off).
 */
void registerEventCoreMetrics(Registry &registry,
                              const sim::Simulator &simulator,
                              const std::string &prefix = "");

} // namespace emmcsim::obs

#endif // EMMCSIM_OBS_DEVICE_METRICS_HH
