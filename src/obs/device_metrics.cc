#include "obs/device_metrics.hh"

#include "emmc/device.hh"
#include "ftl/wear.hh"
#include "host/replayer.hh"
#include "sim/simulator.hh"

namespace emmcsim::obs {

namespace {

/** Register a counter over a uint64 stats field. */
void
bindCounter(Registry &reg, std::string name, const std::uint64_t &field)
{
    reg.counter(std::move(name), [&field] { return field; });
}

/** Register a counter over a sim::Time stats field (suffix _ns). */
void
bindTimeCounter(Registry &reg, std::string name, const sim::Time &field)
{
    reg.counter(std::move(name),
                [&field] { return static_cast<std::uint64_t>(field); });
}

} // namespace

void
registerDeviceMetrics(Registry &registry, const emmc::EmmcDevice &device,
                      const std::string &prefix)
{
    const std::string &p = prefix;

    const emmc::DeviceStats &d = device.stats();
    bindCounter(registry, p + "emmc.requests", d.requests);
    bindCounter(registry, p + "emmc.read_requests", d.readRequests);
    bindCounter(registry, p + "emmc.write_requests", d.writeRequests);
    bindCounter(registry, p + "emmc.bytes_read", d.bytesRead);
    bindCounter(registry, p + "emmc.bytes_written", d.bytesWritten);
    bindCounter(registry, p + "emmc.no_wait_requests", d.noWaitRequests);
    bindCounter(registry, p + "emmc.read_error_requests",
                d.readErrorRequests);
    bindCounter(registry, p + "emmc.write_rejected_requests",
                d.writeRejectedRequests);
    bindCounter(registry, p + "emmc.commands", d.commands);
    bindTimeCounter(registry, p + "emmc.busy_time_ns", d.busyTime);
    registry.gauge(p + "emmc.queue_depth", [&device] {
        return static_cast<double>(device.queueDepth());
    });
    registry.gauge(p + "emmc.space_utilization",
                   [&device] { return device.spaceUtilization(); });
    registry.summary(p + "emmc.response_ms", &d.responseMs);
    registry.summary(p + "emmc.service_ms", &d.serviceMs);
    registry.summary(p + "emmc.wait_ms", &d.waitMs);
    registry.summary(p + "emmc.queue_depth_at_arrival",
                     &d.queueDepthAtArrival);

    const emmc::PackingStats &pk = device.packingStats();
    bindCounter(registry, p + "emmc.packing.packed_commands",
                pk.packedCommands);
    bindCounter(registry, p + "emmc.packing.packed_requests",
                pk.packedRequests);

    const emmc::PowerStats &pw = device.powerStats();
    bindCounter(registry, p + "emmc.power.wakeups", pw.wakeups);
    bindTimeCounter(registry, p + "emmc.power.low_power_time_ns",
                    pw.lowPowerTime);
    bindTimeCounter(registry, p + "emmc.power.active_time_ns",
                    pw.activeTime);
    registry.gauge(p + "emmc.power.energy_mj",
                   [&device] { return device.power().energyMj(); });

    const emmc::BufferStats &bf = device.bufferStats();
    bindCounter(registry, p + "emmc.buffer.read_lookups", bf.readLookups);
    bindCounter(registry, p + "emmc.buffer.read_hits", bf.readHits);
    bindCounter(registry, p + "emmc.buffer.write_lookups",
                bf.writeLookups);
    bindCounter(registry, p + "emmc.buffer.write_hits", bf.writeHits);
    bindCounter(registry, p + "emmc.buffer.evicted_dirty",
                bf.evictedDirty);

    const ftl::FtlStats &f = device.ftl().stats();
    bindCounter(registry, p + "ftl.host_units_written",
                f.hostUnitsWritten);
    bindCounter(registry, p + "ftl.host_bytes_consumed",
                f.hostBytesConsumed);
    bindCounter(registry, p + "ftl.host_units_read", f.hostUnitsRead);
    bindCounter(registry, p + "ftl.host_read_ops", f.hostReadOps);
    bindCounter(registry, p + "ftl.host_program_ops", f.hostProgramOps);
    bindCounter(registry, p + "ftl.overflow_redirects",
                f.overflowRedirects);
    bindCounter(registry, p + "ftl.relocated_programs",
                f.relocatedPrograms);
    bindCounter(registry, p + "ftl.uncorrectable_reads",
                f.uncorrectableReads);
    bindCounter(registry, p + "ftl.rejected_writes", f.rejectedWrites);

    const emmc::SpoStats &sp = device.spoStats();
    bindCounter(registry, p + "emmc.spo.power_cuts", sp.powerCuts);
    bindCounter(registry, p + "emmc.spo.notified_cuts", sp.notifiedCuts);
    bindCounter(registry, p + "emmc.spo.dropped_in_flight",
                sp.droppedInFlight);
    bindCounter(registry, p + "emmc.spo.dropped_queued",
                sp.droppedQueued);
    bindCounter(registry, p + "emmc.spo.lost_dirty_units",
                sp.lostDirtyUnits);
    bindCounter(registry, p + "emmc.spo.torn_pages", sp.tornPages);
    bindTimeCounter(registry, p + "emmc.spo.recovery_time_ns",
                    sp.recoveryTime);

    const ftl::JournalStats &jn = device.ftl().journal().stats();
    bindCounter(registry, p + "ftl.journal.write_records",
                jn.writeRecords);
    bindCounter(registry, p + "ftl.journal.reloc_records",
                jn.relocRecords);
    bindCounter(registry, p + "ftl.journal.trim_records",
                jn.trimRecords);
    bindCounter(registry, p + "ftl.journal.pages_flushed",
                jn.pagesFlushed);
    bindCounter(registry, p + "ftl.journal.barrier_flushes",
                jn.barrierFlushes);
    bindCounter(registry, p + "ftl.journal.checkpoints", jn.checkpoints);
    bindCounter(registry, p + "ftl.journal.dropped_trims",
                jn.droppedTrims);
    registry.counter(p + "ftl.journal.seq", [&device] {
        return device.ftl().journal().seq();
    });
    registry.counter(p + "ftl.journal.durable_seq", [&device] {
        return device.ftl().journal().durableSeq();
    });

    const ftl::GcStats &gc = device.ftl().gcStats();
    bindCounter(registry, p + "ftl.gc.blocking_rounds",
                gc.blockingRounds);
    bindCounter(registry, p + "ftl.gc.idle_rounds", gc.idleRounds);
    bindCounter(registry, p + "ftl.gc.idle_steps", gc.idleSteps);
    bindCounter(registry, p + "ftl.gc.relocated_units",
                gc.relocatedUnits);
    bindCounter(registry, p + "ftl.gc.erased_blocks", gc.erasedBlocks);
    bindCounter(registry, p + "ftl.gc.retired_blocks", gc.retiredBlocks);
    bindCounter(registry, p + "ftl.gc.scrub_steps", gc.scrubSteps);
    bindTimeCounter(registry, p + "ftl.gc.blocking_time_ns",
                    gc.blockingTime);
    bindTimeCounter(registry, p + "ftl.gc.idle_time_ns", gc.idleTime);

    const ftl::BbmStats &bb = device.ftl().badBlocks().stats();
    bindCounter(registry, p + "ftl.bbm.program_failures",
                bb.programFailures);
    bindCounter(registry, p + "ftl.bbm.erase_failures", bb.eraseFailures);
    bindCounter(registry, p + "ftl.bbm.relocated_programs",
                bb.relocatedPrograms);
    bindCounter(registry, p + "ftl.bbm.retired_program",
                bb.retiredProgram);
    bindCounter(registry, p + "ftl.bbm.retired_erase", bb.retiredErase);
    registry.counter(p + "ftl.bbm.retired_total", [&device] {
        return device.ftl().badBlocks().totalRetired();
    });
    registry.gauge(p + "ftl.bbm.read_only", [&device] {
        return device.ftl().readOnly() ? 1.0 : 0.0;
    });

    // Wear gauges scan every block of every plane-pool; snapshot-only.
    const flash::FlashArray &array = device.array();
    registry.gauge(
        p + "ftl.wear.total_erases",
        [&array] {
            return static_cast<double>(ftl::computeWear(array).totalErases);
        },
        false);
    registry.gauge(
        p + "ftl.wear.max_erase_count",
        [&array] {
            return static_cast<double>(
                ftl::computeWear(array).maxEraseCount);
        },
        false);
    registry.gauge(
        p + "ftl.wear.min_erase_count",
        [&array] {
            return static_cast<double>(
                ftl::computeWear(array).minEraseCount);
        },
        false);
    registry.gauge(
        p + "ftl.wear.mean_erase_count",
        [&array] { return ftl::computeWear(array).meanEraseCount; },
        false);
    registry.gauge(
        p + "ftl.wear.worst_spread",
        [&array] {
            return static_cast<double>(ftl::computeWear(array).worstSpread);
        },
        false);
    registry.gauge(
        p + "ftl.wear.write_amplification",
        [&device] {
            return ftl::writeAmplification(device.array(), device.ftl());
        },
        false);

    auto bindArrayStats = [&registry](const std::string &base, auto getter) {
        registry.counter(base + ".reads",
                         [getter] { return getter().reads; });
        registry.counter(base + ".programs",
                         [getter] { return getter().programs; });
        registry.counter(base + ".erases",
                         [getter] { return getter().erases; });
        registry.counter(base + ".copyback_reads",
                         [getter] { return getter().copybackReads; });
        registry.counter(base + ".copyback_programs",
                         [getter] { return getter().copybackPrograms; });
        registry.counter(base + ".bytes_read",
                         [getter] { return getter().bytesRead; });
        registry.counter(base + ".bytes_programmed",
                         [getter] { return getter().bytesProgrammed; });
    };
    bindArrayStats(p + "flash",
                   [&array] { return array.totalStats(); });
    const std::size_t pools = array.geometry().pools.size();
    for (std::size_t pool = 0; pool < pools; ++pool) {
        bindArrayStats(p + "flash.pool" + std::to_string(pool),
                       [&array, pool]() -> flash::ArrayStats {
                           return array.stats(pool);
                       });
    }

    const fault::FaultStats &fs = device.faultInjector().stats();
    bindCounter(registry, p + "fault.reads_evaluated", fs.readsEvaluated);
    bindCounter(registry, p + "fault.clean_reads", fs.cleanReads);
    bindCounter(registry, p + "fault.corrected_reads", fs.correctedReads);
    bindCounter(registry, p + "fault.uncorrectable_reads",
                fs.uncorrectableReads);
    bindCounter(registry, p + "fault.retry_rounds", fs.retryRounds);
    bindCounter(registry, p + "fault.programs_evaluated",
                fs.programsEvaluated);
    bindCounter(registry, p + "fault.program_failures",
                fs.programFailures);
    bindCounter(registry, p + "fault.erases_evaluated",
                fs.erasesEvaluated);
    bindCounter(registry, p + "fault.erase_failures", fs.eraseFailures);
    bindCounter(registry, p + "fault.forced_faults", fs.forcedFaults);
}

void
registerReplayerMetrics(Registry &registry,
                        const host::ReplayStats &stats,
                        const std::string &prefix)
{
    const std::string &p = prefix;
    bindCounter(registry, p + "host.replay.error_completions",
                stats.errorCompletions);
    bindCounter(registry, p + "host.replay.retries_scheduled",
                stats.retriesScheduled);
    bindCounter(registry, p + "host.replay.recovered_requests",
                stats.recoveredRequests);
    bindCounter(registry, p + "host.replay.failed_requests",
                stats.failedRequests);
    bindTimeCounter(registry, p + "host.replay.retry_penalty_ns",
                    stats.retryPenalty);
    bindCounter(registry, p + "host.replay.spo_events", stats.spoEvents);
    bindCounter(registry, p + "host.replay.spo_skipped",
                stats.spoSkipped);
    bindCounter(registry, p + "host.replay.reissued_requests",
                stats.reissuedRequests);
    bindCounter(registry, p + "host.replay.deferred_submissions",
                stats.deferredSubmissions);
    bindTimeCounter(registry, p + "host.replay.recovery_time_ns",
                    stats.recoveryTime);
}

void
registerEventCoreMetrics(Registry &registry,
                         const sim::Simulator &simulator,
                         const std::string &prefix)
{
    const std::string &p = prefix;
    const sim::EventQueue &q = simulator.events();

    // Two-tier scheduler traffic: which tier absorbed each schedule,
    // and how the overflow flows back at epoch advances.
    registry.counter(p + "sim.events.scheduled",
                     [&q] { return q.scheduledCount(); });
    registry.counter(p + "sim.events.wheel_scheduled",
                     [&q] { return q.wheelScheduled(); });
    registry.counter(p + "sim.events.overflow_scheduled",
                     [&q] { return q.overflowScheduled(); });
    registry.counter(p + "sim.events.wheel_promotions",
                     [&q] { return q.wheelPromotions(); });
    registry.counter(p + "sim.events.wheel_epochs",
                     [&q] { return q.wheelEpochs(); });
    registry.counter(p + "sim.events.compactions",
                     [&q] { return q.heapCompactions(); });
    registry.counter(p + "sim.events.drain_sorts",
                     [&q] { return q.drainSorts(); });

    // Batched same-tick dispatch.
    registry.counter(p + "sim.events.batches",
                     [&q] { return q.dispatchBatches(); });
    registry.counter(p + "sim.events.batched_events",
                     [&q] { return q.batchedEvents(); });
    registry.counter(p + "sim.events.max_batch", [&q] {
        return static_cast<std::uint64_t>(q.maxBatchSize());
    });

    // Occupancy: where the pending set currently sits.
    registry.gauge(p + "sim.events.live", [&q] {
        return static_cast<double>(q.size());
    });
    registry.gauge(p + "sim.events.wheel_occupancy", [&q] {
        return static_cast<double>(q.wheelOccupancy());
    });
    registry.gauge(p + "sim.events.overflow_size", [&q] {
        return static_cast<double>(q.overflowSize());
    });
    registry.gauge(p + "sim.events.staged_run", [&q] {
        return static_cast<double>(q.stagedRunEntries());
    });
    registry.gauge(
        p + "sim.events.wheel_buckets",
        [&q] { return static_cast<double>(q.wheelBucketCount()); },
        /*sampled=*/false);
    registry.gauge(
        p + "sim.events.wheel_bucket_width_ns",
        [&q] { return static_cast<double>(q.wheelBucketWidth()); },
        /*sampled=*/false);
    registry.gauge(
        p + "sim.events.arena_high_water",
        [&q] { return static_cast<double>(q.arenaHighWater()); },
        /*sampled=*/false);
}

} // namespace emmcsim::obs
