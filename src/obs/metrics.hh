/**
 * @file
 * obs::Registry: a named catalogue of every metric a simulation run
 * exposes — counters, gauges, distribution summaries, and histograms.
 *
 * The registry is *pull-based*: subsystems keep their existing stats
 * structs (DeviceStats, FtlStats, GcStats, ...) and the registry holds
 * read-only closures over them. Registering therefore costs nothing on
 * the simulation's hot paths — values are only materialized when a
 * snapshot is taken (end of run, or each sampler window). That is what
 * makes the observability layer zero-cost-when-off: a run that never
 * builds a registry executes exactly the pre-obs code.
 *
 * Names are hierarchical, dot-separated, lowercase:
 * "ftl.gc.pages_moved", "emmc.queue_depth". Registering a duplicate or
 * malformed name panics — metric names are a public, machine-consumed
 * interface and collisions would silently merge unrelated series.
 */

#ifndef EMMCSIM_OBS_METRICS_HH
#define EMMCSIM_OBS_METRICS_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/stats.hh"

namespace emmcsim::obs {

/** Value-only snapshot of a registry (safe to keep after the sources
 * it was read from are destroyed). */
struct MetricsSnapshot
{
    struct Counter
    {
        std::string name;
        std::uint64_t value = 0;
    };

    struct Gauge
    {
        std::string name;
        double value = 0.0;
    };

    /** Summary of one OnlineStats source. */
    struct Summary
    {
        std::string name;
        std::uint64_t count = 0;
        double mean = 0.0;
        double stddev = 0.0;
        double min = 0.0; ///< 0 when the source was empty
        double max = 0.0; ///< 0 when the source was empty
        double sum = 0.0;
    };

    /** Bucketized distribution with latency-quantile estimates. */
    struct Distribution
    {
        std::string name;
        std::vector<double> upperBounds; ///< finite bounds only
        std::vector<std::uint64_t> counts; ///< bounds + overflow bucket
        std::uint64_t total = 0;
        double p50 = 0.0;
        double p95 = 0.0;
        double p99 = 0.0;
    };

    std::vector<Counter> counters;      ///< registration order
    std::vector<Gauge> gauges;          ///< registration order
    std::vector<Summary> summaries;     ///< registration order
    std::vector<Distribution> histograms; ///< registration order

    /** Counter value by name; 0 when absent (see hasCounter). */
    std::uint64_t counterValue(std::string_view name) const;
    bool hasCounter(std::string_view name) const;
    /** Gauge value by name; 0 when absent. */
    double gaugeValue(std::string_view name) const;
    /** Summary by name; nullptr when absent. */
    const Summary *findSummary(std::string_view name) const;
};

/** The metric catalogue for one simulation run. */
class Registry
{
  public:
    /** Monotonic integer source (read on snapshot/sample). */
    using CounterFn = std::function<std::uint64_t()>;
    /** Point-in-time double source (read on snapshot/sample). */
    using GaugeFn = std::function<double()>;

    Registry() = default;

    // The registry hands out stable names checked for collisions; a
    // copy would silently fork the catalogue.
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /**
     * Register a counter. @p fn must stay valid for the registry's
     * lifetime and be cheap (it runs once per sampler window).
     */
    void counter(std::string name, CounterFn fn);

    /**
     * Register a gauge.
     * @param sampled When false, the gauge is read only for full
     *        snapshots, never per sampler window — for sources that
     *        walk large state (e.g. wear scans over every block).
     */
    void gauge(std::string name, GaugeFn fn, bool sampled = true);

    /** Register an OnlineStats summary source (borrowed pointer). */
    void summary(std::string name, const sim::OnlineStats *stats);

    /** Register a Histogram source (borrowed pointer). */
    void histogram(std::string name, const sim::Histogram *hist);

    /**
     * Create a histogram owned by the registry (for producers that
     * have no stats struct of their own, e.g. latency recorders).
     * @return Reference valid for the registry's lifetime.
     */
    sim::Histogram &makeHistogram(std::string name,
                                  std::vector<double> upper_bounds);

    /** @return true when @p name is registered (any kind). */
    bool has(std::string_view name) const;

    /** Total registered metrics across all kinds. */
    std::size_t size() const;

    /** All registered names, sorted. */
    std::vector<std::string> names() const;

    /** Drop every registration (start of a new run phase). */
    void clear();

    /** Materialize every metric's current value. */
    MetricsSnapshot snapshot() const;

    /**
     * Names of the per-window sampled metrics, in sample order:
     * all counters, then gauges registered with sampled == true.
     */
    std::vector<std::string> sampledNames() const;

    /** Current values of the sampled metrics, in sampledNames order. */
    std::vector<double> sampledValues() const;

    /**
     * Validate a metric name: non-empty dot-separated segments of
     * [a-z0-9_] with no leading/trailing/double dots.
     * @return empty string when valid, else the objection.
     */
    static std::string checkName(std::string_view name);

  private:
    struct CounterEntry
    {
        std::string name;
        CounterFn fn;
    };
    struct GaugeEntry
    {
        std::string name;
        GaugeFn fn;
        bool sampled = true;
    };
    struct SummaryEntry
    {
        std::string name;
        const sim::OnlineStats *stats = nullptr;
    };
    struct HistEntry
    {
        std::string name;
        const sim::Histogram *hist = nullptr;
        /** Set when the registry owns the histogram. */
        std::unique_ptr<sim::Histogram> owned;
    };

    /** Panic on malformed or duplicate @p name. */
    void reserveName(const std::string &name);

    std::vector<CounterEntry> counters_;
    std::vector<GaugeEntry> gauges_;
    std::vector<SummaryEntry> summaries_;
    std::vector<HistEntry> histograms_;
};

} // namespace emmcsim::obs

#endif // EMMCSIM_OBS_METRICS_HH
