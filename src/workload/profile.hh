/**
 * @file
 * AppProfile: the parametric model of one smartphone application's
 * block-level I/O behaviour.
 *
 * Every field is calibrated from the paper's published measurements:
 * request counts, durations and write ratios from Table III / Table IV,
 * request-size distributions shaped to Fig 4 (with per-application
 * mean read/write sizes matching Table III), inter-arrival behaviour
 * shaped to Fig 6, and spatial/temporal locality targets from
 * Table IV. Generating a stream from the profile is this repo's
 * substitution for replaying the original Nexus 5 traces.
 */

#ifndef EMMCSIM_WORKLOAD_PROFILE_HH
#define EMMCSIM_WORKLOAD_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace emmcsim::workload {

/** One request-size bucket: an inclusive range of 4KB units. */
struct SizeBucket
{
    std::uint32_t loUnits = 1;
    std::uint32_t hiUnits = 1;
    double weight = 0.0;

    double meanUnits() const { return 0.5 * (loUnits + hiUnits); }
};

/** The workload model of one application (or app combination). */
struct AppProfile
{
    /** Application name as in Table I (e.g. "Twitter"). */
    std::string name;
    /** What the user was doing (Table I / Table II). */
    std::string description;

    /** Recording duration (Table IV). */
    sim::Time duration = sim::seconds(60);
    /** Total requests over the recording (Table III). */
    std::uint64_t requestCount = 1000;
    /** Fraction of requests that are writes (Table III). */
    double writeFraction = 0.5;

    /** Read-size distribution (mean tracks Table III "Ave R Size"). */
    std::vector<SizeBucket> readSizes;
    /** Write-size distribution (mean tracks Table III "Ave W Size"). */
    std::vector<SizeBucket> writeSizes;

    /** Target spatial locality (Table IV, 0..1). */
    double spatialLocality = 0.25;
    /** Target temporal locality (Table IV, 0..1). */
    double temporalLocality = 0.35;

    /** Fraction of inter-arrivals drawn from the burst range. */
    double burstFraction = 0.4;
    /** Burst inter-arrival range (log-uniform). */
    sim::Time burstGapLo = sim::microseconds(50);
    sim::Time burstGapHi = sim::milliseconds(4);

    /** Size of the logical region the app touches, in 4KB units. */
    std::uint64_t footprintUnits = 1 << 18;

    /** Mean request size in 4KB units implied by the distributions. */
    double meanRequestUnits() const;
    /** Mean inter-arrival implied by duration / requestCount. */
    sim::Time meanInterArrival() const;
};

/**
 * Build a Fig 4-shaped size distribution.
 *
 * Bucket boundaries follow the paper's ranges (<=4KB, 8KB, 12-16KB,
 * 20-64KB, 68-256KB, 260KB-1MB, >1MB); @p small_frac of the weight is
 * pinned on the single-unit bucket and the tail weights are solved
 * (geometric ratio, bisection) so the overall mean hits
 * @p mean_units.
 *
 * @param mean_units Target mean request size in 4KB units.
 * @param max_units  Largest request the app issues, in units.
 * @param small_frac Fraction of requests that are single-unit (4KB).
 */
std::vector<SizeBucket> buildSizeBuckets(double mean_units,
                                         std::uint64_t max_units,
                                         double small_frac);

/** Mean of a bucketed size distribution in units. */
double sizeBucketsMean(const std::vector<SizeBucket> &buckets);

/** The 18 individual application profiles (Tables I-IV). */
const std::vector<AppProfile> &individualProfiles();

/** The 7 combo-trace profiles (Section III-D). */
const std::vector<AppProfile> &comboProfiles();

/** All 25 profiles, individuals first. */
std::vector<AppProfile> allProfiles();

/**
 * Look up a profile by name across individuals and combos.
 * @return nullptr when not found.
 */
const AppProfile *findProfile(const std::string &name);

} // namespace emmcsim::workload

#endif // EMMCSIM_WORKLOAD_PROFILE_HH
