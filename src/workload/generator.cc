#include "workload/generator.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace emmcsim::workload {

namespace {

/** Analytic mean of a log-uniform distribution on [lo, hi]. */
double
logUniformMean(double lo, double hi)
{
    if (hi <= lo)
        return lo;
    return (hi - lo) / std::log(hi / lo);
}

} // namespace

TraceGenerator::TraceGenerator(const AppProfile &profile,
                               std::uint64_t seed)
    : profile_(profile), rng_(seed)
{
    EMMCSIM_ASSERT(profile_.requestCount > 0, "profile without requests");
    EMMCSIM_ASSERT(!profile_.readSizes.empty() &&
                       !profile_.writeSizes.empty(),
                   "profile without size distributions");

    for (const auto &b : profile_.readSizes)
        readWeights_.push_back(b.weight);
    for (const auto &b : profile_.writeSizes)
        writeWeights_.push_back(b.weight);

    // Solve the gap-mode log-uniform range so the mixture's mean
    // inter-arrival matches duration / requestCount.
    const double mean_ns =
        static_cast<double>(profile_.meanInterArrival());
    const double burst_lo = static_cast<double>(profile_.burstGapLo);
    const double burst_hi = static_cast<double>(profile_.burstGapHi);
    const double burst_mean = logUniformMean(burst_lo, burst_hi);
    double f = std::clamp(profile_.burstFraction, 0.0, 0.999);

    double gap_mean = mean_ns;
    if (mean_ns > burst_mean) {
        gap_mean = (mean_ns - f * burst_mean) / (1.0 - f);
    } else {
        // The app is so dense that even pure burst pacing overshoots;
        // use the mean directly with a narrow spread.
        f = 0.0;
        gap_mean = mean_ns;
    }
    // Log-uniform on [a, K*a] has mean a*(K-1)/ln(K); K fixes the
    // spread (about 2.5 decades, matching the wide Fig 6 tails).
    constexpr double kSpread = 256.0;
    const double a =
        gap_mean * std::log(kSpread) / (kSpread - 1.0);
    gapLoNs_ = std::max(1.0, a);
    gapHiNs_ = gapLoNs_ * kSpread;
    if (profile_.burstFraction != f) {
        // Record the degraded burst fraction for sampleGap().
        profile_.burstFraction = f;
    }
}

std::uint32_t
TraceGenerator::sampleSize(const std::vector<SizeBucket> &buckets)
{
    const auto &weights = (&buckets == &profile_.readSizes)
                              ? readWeights_
                              : writeWeights_;
    std::size_t i = rng_.weightedIndex(weights);
    const SizeBucket &b = buckets[i];
    return static_cast<std::uint32_t>(
        rng_.uniformInt(b.loUnits, b.hiUnits));
}

sim::Time
TraceGenerator::sampleGap()
{
    double ns;
    if (rng_.chance(profile_.burstFraction)) {
        ns = rng_.logUniform(
            static_cast<double>(profile_.burstGapLo),
            static_cast<double>(profile_.burstGapHi));
    } else {
        ns = rng_.logUniform(gapLoNs_, gapHiNs_);
    }
    return static_cast<sim::Time>(std::llround(ns));
}

trace::Trace
TraceGenerator::generate(double scale)
{
    EMMCSIM_ASSERT(scale > 0.0, "non-positive generation scale");
    const auto n = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::llround(
               static_cast<double>(profile_.requestCount) * scale)));

    trace::Trace t(profile_.name);
    // The request count is known up front; reserving avoids the
    // log2(n) growth reallocations of a multi-million-record trace.
    t.reserve(static_cast<std::size_t>(n));

    // History ring of previous start units for temporal re-access.
    constexpr std::size_t kHistory = 512;
    std::vector<std::int64_t> history;
    history.reserve(kHistory);
    std::size_t history_next = 0;

    const std::uint64_t footprint = profile_.footprintUnits;
    const double p_seq = std::clamp(profile_.spatialLocality, 0.0, 0.95);
    const double p_reuse_given_not_seq =
        std::clamp(profile_.temporalLocality / (1.0 - p_seq), 0.0, 0.95);

    sim::Time now = 0;
    std::int64_t prev_end = -1;

    for (std::uint64_t i = 0; i < n; ++i) {
        const bool write = rng_.chance(profile_.writeFraction);
        const std::uint32_t units = sampleSize(
            write ? profile_.writeSizes : profile_.readSizes);

        std::int64_t start;
        if (prev_end >= 0 && rng_.chance(p_seq) &&
            static_cast<std::uint64_t>(prev_end) + units <= footprint) {
            start = prev_end; // sequential continuation
        } else if (!history.empty() &&
                   rng_.chance(p_reuse_given_not_seq)) {
            // Temporal re-access of an earlier start address.
            start = history[static_cast<std::size_t>(rng_.uniformInt(
                0, static_cast<std::int64_t>(history.size()) - 1))];
            if (static_cast<std::uint64_t>(start) + units > footprint)
                start = 0;
        } else {
            start = rng_.uniformInt(
                0, static_cast<std::int64_t>(footprint - units));
        }

        trace::TraceRecord r;
        r.arrival = now;
        r.lbaSector = emmcsim::units::unitToLba(
            emmcsim::units::UnitAddr{start});
        r.sizeBytes = emmcsim::units::unitsToBytes(
            static_cast<std::uint64_t>(units));
        r.op = write ? trace::OpType::Write : trace::OpType::Read;
        t.push(r);

        if (history.size() < kHistory) {
            history.push_back(start);
        } else {
            history[history_next] = start;
            history_next = (history_next + 1) % kHistory;
        }
        prev_end = start + units;
        now += sampleGap();
    }
    return t;
}

} // namespace emmcsim::workload
