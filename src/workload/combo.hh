/**
 * @file
 * Combo workloads: concurrent application streams (Section III-D).
 *
 * Two ways exist to obtain a combo trace:
 *  - combineTraces() time-interleaves two independently generated
 *    application streams, the mechanistic model of two apps running
 *    concurrently;
 *  - comboProfiles() (profile.hh) generates directly from the
 *    paper's published combo-trace statistics, which is what the
 *    table-reproduction benches use.
 */

#ifndef EMMCSIM_WORKLOAD_COMBO_HH
#define EMMCSIM_WORKLOAD_COMBO_HH

#include <string>

#include "trace/trace.hh"

namespace emmcsim::workload {

/**
 * Merge two traces by arrival time into one request stream.
 *
 * Replay timestamps are dropped (the merged stream has not been
 * replayed). The shorter stream simply ends early, like a user
 * stopping one app.
 *
 * @param a    First stream.
 * @param b    Second stream.
 * @param name Name of the merged trace (e.g. "Music/WB").
 */
trace::Trace combineTraces(const trace::Trace &a, const trace::Trace &b,
                           const std::string &name);

/**
 * Generate the named combo by merging its two component apps
 * ("Music/WB" => Music + WebBrowsing), both generated at @p scale
 * from @p seed-derived seeds. Component durations are trimmed to the
 * shorter one so the two apps genuinely overlap.
 */
trace::Trace generateComboByMerge(const std::string &name,
                                  std::uint64_t seed, double scale = 1.0);

} // namespace emmcsim::workload

#endif // EMMCSIM_WORKLOAD_COMBO_HH
