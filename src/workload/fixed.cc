#include "workload/fixed.hh"

#include "sim/logging.hh"
#include "sim/random.hh"

namespace emmcsim::workload {

trace::Trace
makeFixedStream(const FixedStreamSpec &spec)
{
    EMMCSIM_ASSERT(spec.sizeBytes > 0 &&
                       spec.sizeBytes % sim::kUnitBytes == 0,
                   "fixed stream size must be a 4KB multiple");
    const std::uint64_t units = spec.sizeBytes / sim::kUnitBytes;
    EMMCSIM_ASSERT(spec.regionUnits >= units,
                   "region smaller than one request");

    sim::Rng rng(spec.seed);
    trace::Trace t(spec.name);
    sim::Time now = 0;
    std::int64_t next = spec.startUnit;
    for (std::uint64_t i = 0; i < spec.count; ++i) {
        std::int64_t unit;
        if (spec.sequential) {
            unit = next;
            next += static_cast<std::int64_t>(units);
        } else {
            unit = spec.startUnit +
                   rng.uniformInt(0, static_cast<std::int64_t>(
                                         spec.regionUnits - units));
        }
        trace::TraceRecord r;
        r.arrival = now;
        r.lbaSector = emmcsim::units::unitToLba(
            emmcsim::units::UnitAddr{unit});
        r.sizeBytes = emmcsim::units::Bytes{spec.sizeBytes};
        r.op = spec.write ? trace::OpType::Write : trace::OpType::Read;
        t.push(r);
        now += spec.gap;
    }
    return t;
}

} // namespace emmcsim::workload
