/**
 * @file
 * Fixed-pattern synthetic streams for microbenchmarks and the Fig 3
 * throughput sweep.
 */

#ifndef EMMCSIM_WORKLOAD_FIXED_HH
#define EMMCSIM_WORKLOAD_FIXED_HH

#include <cstdint>

#include "trace/trace.hh"

namespace emmcsim::workload {

/** Parameters of a fixed-size request stream. */
struct FixedStreamSpec
{
    std::string name = "fixed";
    bool write = false;
    /** Request size in bytes (4KB multiple). */
    std::uint64_t sizeBytes = sim::kib(4);
    /** Number of requests. */
    std::uint64_t count = 64;
    /** Inter-arrival gap; 0 queues everything back-to-back. */
    sim::Time gap = 0;
    /** Sequential addressing; false gives uniform-random addresses. */
    bool sequential = true;
    /** First unit of the stream's address region. */
    std::int64_t startUnit = 0;
    /** Size of the random-addressing region in units. */
    std::uint64_t regionUnits = 1 << 20;
    /** RNG seed for random addressing. */
    std::uint64_t seed = 1;
};

/** Build a trace of identical requests per @p spec. */
trace::Trace makeFixedStream(const FixedStreamSpec &spec);

} // namespace emmcsim::workload

#endif // EMMCSIM_WORKLOAD_FIXED_HH
