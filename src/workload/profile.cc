#include "workload/profile.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace emmcsim::workload {

double
AppProfile::meanRequestUnits() const
{
    double rd = sizeBucketsMean(readSizes);
    double wr = sizeBucketsMean(writeSizes);
    return writeFraction * wr + (1.0 - writeFraction) * rd;
}

sim::Time
AppProfile::meanInterArrival() const
{
    if (requestCount == 0)
        return 0;
    return duration / static_cast<sim::Time>(requestCount);
}

double
sizeBucketsMean(const std::vector<SizeBucket> &buckets)
{
    double total_w = 0.0;
    double total = 0.0;
    for (const auto &b : buckets) {
        total_w += b.weight;
        total += b.weight * b.meanUnits();
    }
    return total_w > 0.0 ? total / total_w : 0.0;
}

std::vector<SizeBucket>
buildSizeBuckets(double mean_units, std::uint64_t max_units,
                 double small_frac)
{
    EMMCSIM_ASSERT(mean_units >= 1.0, "mean below one unit");
    EMMCSIM_ASSERT(small_frac >= 0.0 && small_frac < 1.0,
                   "small fraction out of range");
    if (max_units <= 1)
        return {SizeBucket{1, 1, 1.0}};

    // Fig 4's bucket boundaries in units (4KB each).
    static const std::uint32_t kBounds[][2] = {
        {2, 2},       // 8KB
        {3, 4},       // 12-16KB
        {5, 16},      // 20-64KB
        {17, 64},     // 68-256KB
        {65, 256},    // 260KB-1MB
        {257, 1024},  // 1-4MB
        {1025, 4096}, // 4-16MB
        {4097, 16384} // beyond (trimmed by max_units)
    };

    std::vector<SizeBucket> tail;
    for (const auto &b : kBounds) {
        if (b[0] > max_units)
            break;
        SizeBucket sb;
        sb.loUnits = b[0];
        sb.hiUnits = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(b[1], max_units));
        tail.push_back(sb);
    }
    if (tail.empty())
        return {SizeBucket{1, 1, 1.0}};

    // Solve for the geometric ratio r that makes the tail mean hit the
    // target; tailMean(r) is monotone increasing in r.
    const double tail_target =
        std::max((mean_units - small_frac) / (1.0 - small_frac),
                 tail.front().meanUnits());

    auto tail_mean = [&tail](double r) {
        double w = 1.0;
        double sum_w = 0.0;
        double sum = 0.0;
        for (const auto &b : tail) {
            sum_w += w;
            sum += w * b.meanUnits();
            w *= r;
        }
        return sum / sum_w;
    };

    double lo = 1e-6;
    double hi = 1e3;
    if (tail_target <= tail_mean(lo)) {
        hi = lo;
    } else if (tail_target >= tail_mean(hi)) {
        lo = hi;
    } else {
        for (int i = 0; i < 200; ++i) {
            double mid = std::sqrt(lo * hi);
            if (tail_mean(mid) < tail_target)
                lo = mid;
            else
                hi = mid;
        }
    }
    const double r = std::sqrt(lo * hi);

    std::vector<SizeBucket> out;
    out.push_back(SizeBucket{1, 1, small_frac});
    double w = 1.0;
    double sum_w = 0.0;
    for (std::size_t i = 0; i < tail.size(); ++i) {
        sum_w += w;
        w *= r;
    }
    w = 1.0;
    for (const auto &b : tail) {
        SizeBucket sb = b;
        sb.weight = (1.0 - small_frac) * w / sum_w;
        out.push_back(sb);
        w *= r;
    }
    return out;
}

namespace {

/** Raw per-application numbers lifted from Tables III and IV. */
struct ProfileParams
{
    const char *name;
    const char *description;
    double durationSec;  ///< Table IV "Recording Duration"
    std::uint64_t nreqs; ///< Table III "Number of Reqs."
    double writeFrac;    ///< Table III "Write Reqs. Pct." / 100
    double aveReadKb;    ///< Table III "Ave R Size"
    double aveWriteKb;   ///< Table III "Ave W Size"
    double maxKb;        ///< Table III "Max Size"
    double smallFrac;    ///< Fig 4: fraction of single-page requests
    double burstFrac;    ///< Fig 6: fraction of sub-4ms inter-arrivals
    double spatial;      ///< Table IV "Spatial Locality" / 100
    double temporal;     ///< Table IV "Temporal Locality" / 100
    double burstHiMs = 4.0; ///< upper end of the burst gap range
};

// The paper's largest observed *read* is 256KB (Fig 3), so read-size
// distributions are capped there; writes may reach the trace maximum.
constexpr std::uint64_t kMaxReadUnits = 64;

AppProfile
makeProfile(const ProfileParams &p)
{
    AppProfile a;
    a.name = p.name;
    a.description = p.description;
    a.duration = static_cast<sim::Time>(p.durationSec * 1e9);
    a.requestCount = p.nreqs;
    a.writeFraction = p.writeFrac;

    const auto max_units = static_cast<std::uint64_t>(p.maxKb / 4.0);
    const std::uint64_t max_read =
        std::min<std::uint64_t>(max_units, kMaxReadUnits);
    a.readSizes = buildSizeBuckets(std::max(1.0, p.aveReadKb / 4.0),
                                   std::max<std::uint64_t>(max_read, 1),
                                   p.smallFrac);
    a.writeSizes = buildSizeBuckets(std::max(1.0, p.aveWriteKb / 4.0),
                                    std::max<std::uint64_t>(max_units, 1),
                                    p.smallFrac);
    if (a.name == "Movie") {
        // Fig 4 gives Movie a distinctive unimodal shape: over 65% of
        // its requests fall in the 16-64KB range (streaming-sized
        // media reads), which the generic geometric tail cannot
        // produce. Hand-tuned to keep Ave R Size near Table III's
        // 27.5 KB.
        a.readSizes = {SizeBucket{1, 1, 0.08}, SizeBucket{2, 2, 0.07},
                       SizeBucket{3, 4, 0.07}, SizeBucket{5, 8, 0.62},
                       SizeBucket{9, 16, 0.13},
                       SizeBucket{17, 64, 0.03}};
    }

    a.spatialLocality = p.spatial;
    a.temporalLocality = p.temporal;
    a.burstFraction = p.burstFrac;
    a.burstGapHi = static_cast<sim::Time>(p.burstHiMs * 1e6);

    // Footprint: a few times the data the app touches, with a floor so
    // random addressing stays weak-locality (Characteristic 5).
    double mean_units = a.meanRequestUnits();
    auto touched = static_cast<std::uint64_t>(
        mean_units * static_cast<double>(p.nreqs));
    a.footprintUnits = std::clamp<std::uint64_t>(
        2 * touched, 1ull << 16, 6ull << 20);
    return a;
}

const ProfileParams kIndividual[] = {
    {"Idle", "Smartphone in idle state", 29363, 6932, 0.8894, 39.5, 15.0,
     1536, 0.50, 0.15, 0.2532, 0.3422},
    {"CallIn", "Answering an incoming call", 3767, 1491, 0.9993, 12.0,
     18.0, 1536, 0.52, 0.12, 0.2959, 0.3100},
    {"CallOut", "Making a phone call", 3700, 1569, 0.9892, 10.0, 17.5,
     1536, 0.52, 0.15, 0.2729, 0.3514},
    {"Booting", "Smartphone booting process", 40, 18417, 0.3307, 61.0,
     37.5, 20816, 0.25, 0.70, 0.2819, 0.1970},
    {"Movie", "Watching a locally stored movie", 998, 4781, 0.0540, 27.5,
     17.0, 512, 0.08, 0.75, 0.1725, 0.0172, 1.0},
    {"Music", "Listening to locally stored songs", 3801, 6913, 0.5280,
     62.5, 9.5, 940, 0.55, 0.35, 0.2151, 0.3186},
    {"AngryBirds", "Playing the AngryBirds game", 2023, 3215, 0.8451,
     51.0, 25.0, 3940, 0.50, 0.22, 0.3008, 0.2607},
    {"CameraVideo", "Recording a video clip", 3417, 9348, 0.2946, 38.5,
     736.5, 10104, 0.45, 0.45, 0.2034, 0.1630},
    {"GoogleMaps", "Road map and navigation", 1720, 12603, 0.8678, 28.5,
     13.5, 8174, 0.52, 0.22, 0.2110, 0.4278},
    {"Messaging", "Receiving/sending/viewing messages", 589, 5702,
     0.9730, 23.0, 10.5, 128, 0.55, 0.2, 0.2885, 0.5082},
    {"Twitter", "Reading and posting tweets", 856, 13807, 0.8848, 35.5,
     10.5, 2216, 0.55, 0.24, 0.2657, 0.5290},
    {"Email", "Receiving/sending/viewing emails", 740, 2906, 0.7037,
     14.5, 22.5, 388, 0.50, 0.35, 0.1449, 0.3487},
    {"Facebook", "Viewing pictures/adding comments", 1112, 3897, 0.7442,
     28.5, 23.5, 2680, 0.50, 0.3, 0.1989, 0.3421},
    {"Amazon", "Mobile online shopping", 819, 3272, 0.6302, 24.5, 18.0,
     1392, 0.50, 0.80, 0.1779, 0.2638, 2.0},
    {"YouTube", "Watching videos on YouTube", 4690, 2080, 0.9750, 19.5,
     13.5, 1536, 0.52, 0.12, 0.4761, 0.1635},
    {"Radio", "Listening to online radio", 4454, 5820, 0.9868, 36.0,
     19.5, 11164, 0.48, 0.24, 0.2390, 0.2918},
    {"Installing", "Installing applications from Google Play", 977,
     17952, 0.9826, 22.0, 93.0, 22144, 0.45, 0.35, 0.2259, 0.4957},
    {"WebBrowsing", "Reading news on the TIME website", 4901, 4090,
     0.8071, 21.5, 23.5, 1536, 0.50, 0.28, 0.2377, 0.3083},
};

const ProfileParams kCombo[] = {
    {"Music/WB", "Music while browsing the web", 2165, 13207, 0.8168,
     50.5, 15.0, 1544, 0.55, 0.3, 0.1840, 0.3840},
    {"Radio/WB", "Radio while browsing the web", 1227, 12000, 0.7202,
     29.0, 19.5, 2716, 0.48, 0.28, 0.1866, 0.2848},
    {"Music/FB", "Music while using Facebook", 2026, 35131, 0.8767,
     38.0, 8.5, 2424, 0.55, 0.3, 0.1419, 0.6050},
    {"Radio/FB", "Radio while using Facebook", 900, 10494, 0.9168, 23.0,
     13.5, 1368, 0.48, 0.25, 0.1912, 0.5270},
    {"Music/Msg", "Music while messaging", 926, 16501, 0.9443, 56.0,
     11.5, 472, 0.55, 0.28, 0.2068, 0.5384},
    {"Radio/Msg", "Radio while messaging", 660, 11101, 0.9815, 17.5,
     13.0, 1536, 0.48, 0.2, 0.2725, 0.4948},
    {"FB/Msg", "Task switching between Facebook and Messaging", 699,
     15602, 0.8472, 21.5, 9.5, 732, 0.52, 0.28, 0.1580, 0.5404},
};

std::vector<AppProfile>
buildAll(const ProfileParams *params, std::size_t n)
{
    std::vector<AppProfile> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(makeProfile(params[i]));
    return out;
}

} // namespace

const std::vector<AppProfile> &
individualProfiles()
{
    static const std::vector<AppProfile> profiles =
        buildAll(kIndividual, std::size(kIndividual));
    return profiles;
}

const std::vector<AppProfile> &
comboProfiles()
{
    static const std::vector<AppProfile> profiles =
        buildAll(kCombo, std::size(kCombo));
    return profiles;
}

std::vector<AppProfile>
allProfiles()
{
    std::vector<AppProfile> out = individualProfiles();
    const auto &combos = comboProfiles();
    out.insert(out.end(), combos.begin(), combos.end());
    return out;
}

const AppProfile *
findProfile(const std::string &name)
{
    for (const auto &p : individualProfiles()) {
        if (p.name == name)
            return &p;
    }
    for (const auto &p : comboProfiles()) {
        if (p.name == name)
            return &p;
    }
    return nullptr;
}

} // namespace emmcsim::workload
