/**
 * @file
 * TraceGenerator: turns an AppProfile into a block-level trace.
 *
 * Mechanics per request:
 *  - inter-arrival: a two-mode mixture — a burst mode (log-uniform in
 *    the profile's burst range, the sub-millisecond clusters of Fig 6)
 *    and a gap mode whose log-uniform range is solved so the overall
 *    mean inter-arrival equals duration / requestCount (Table IV's
 *    arrival rate);
 *  - type: Bernoulli on the profile's write fraction (Table III);
 *  - size: drawn from the Fig 4-shaped bucket distribution;
 *  - address: with p = spatialLocality the request continues exactly
 *    where its predecessor ended (the paper's sequential-access
 *    definition); with p = temporalLocality it re-issues a previously
 *    seen start address (an address hit); otherwise it lands uniformly
 *    in the app's footprint.
 *
 * Everything is deterministic in (profile, seed).
 */

#ifndef EMMCSIM_WORKLOAD_GENERATOR_HH
#define EMMCSIM_WORKLOAD_GENERATOR_HH

#include <cstdint>

#include "sim/random.hh"
#include "trace/trace.hh"
#include "workload/profile.hh"

namespace emmcsim::workload {

/** Generates reproducible traces from application profiles. */
class TraceGenerator
{
  public:
    /**
     * @param profile Application model.
     * @param seed    RNG seed; same (profile, seed) => same trace.
     */
    TraceGenerator(const AppProfile &profile, std::uint64_t seed);

    /**
     * Generate a trace.
     *
     * @param scale Request-count scale factor (1.0 reproduces the
     *        paper's request counts; smaller values give quick test
     *        traces with the same distributions).
     */
    trace::Trace generate(double scale = 1.0);

  private:
    /** Sample one request size in units from a bucket distribution. */
    std::uint32_t sampleSize(const std::vector<SizeBucket> &buckets);

    /** Sample the next inter-arrival gap in ns. */
    sim::Time sampleGap();

    AppProfile profile_;
    sim::Rng rng_;

    // Gap-mode log-uniform range solved from the profile in the ctor.
    double gapLoNs_ = 1.0;
    double gapHiNs_ = 2.0;

    // Cached per-distribution weight vectors for weightedIndex().
    std::vector<double> readWeights_;
    std::vector<double> writeWeights_;
};

} // namespace emmcsim::workload

#endif // EMMCSIM_WORKLOAD_GENERATOR_HH
