#include "workload/combo.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

namespace emmcsim::workload {

trace::Trace
combineTraces(const trace::Trace &a, const trace::Trace &b,
              const std::string &name)
{
    trace::Trace out(name);
    std::size_t ia = 0;
    std::size_t ib = 0;
    while (ia < a.size() || ib < b.size()) {
        bool take_a;
        if (ia >= a.size()) {
            take_a = false;
        } else if (ib >= b.size()) {
            take_a = true;
        } else {
            take_a = a[ia].arrival <= b[ib].arrival;
        }
        trace::TraceRecord r = take_a ? a[ia++] : b[ib++];
        r.serviceStart = sim::kTimeNever;
        r.finish = sim::kTimeNever;
        out.push(r);
    }
    return out;
}

namespace {

/** Expand the Section III-D abbreviations to profile names. */
std::string
expandAbbrev(const std::string &abbrev)
{
    if (abbrev == "WB")
        return "WebBrowsing";
    if (abbrev == "FB")
        return "Facebook";
    if (abbrev == "Msg")
        return "Messaging";
    return abbrev; // Music, Radio, ... already full names
}

/** Drop records arriving after @p limit. */
trace::Trace
trimTo(const trace::Trace &t, sim::Time limit)
{
    trace::Trace out(t.name());
    for (const auto &r : t.records()) {
        if (r.arrival > limit)
            break;
        out.push(r);
    }
    return out;
}

} // namespace

trace::Trace
generateComboByMerge(const std::string &name, std::uint64_t seed,
                     double scale)
{
    auto slash = name.find('/');
    if (slash == std::string::npos)
        sim::fatal("combo name must look like \"Music/WB\": " + name);

    const std::string first = expandAbbrev(name.substr(0, slash));
    const std::string second = expandAbbrev(name.substr(slash + 1));
    const AppProfile *pa = findProfile(first);
    const AppProfile *pb = findProfile(second);
    if (pa == nullptr)
        sim::fatal("unknown application in combo: " + first);
    if (pb == nullptr)
        sim::fatal("unknown application in combo: " + second);

    TraceGenerator ga(*pa, seed * 2 + 1);
    TraceGenerator gb(*pb, seed * 2 + 2);
    trace::Trace ta = ga.generate(scale);
    trace::Trace tb = gb.generate(scale);

    sim::Time overlap = std::min(ta.duration(), tb.duration());
    return combineTraces(trimTo(ta, overlap), trimTo(tb, overlap), name);
}

} // namespace emmcsim::workload
