/**
 * @file
 * FaultInjector: seeded, deterministic NAND fault generation.
 *
 * Real NAND misbehaves in three ways a controller must survive: read
 * bit-errors (raw bit-error rate grows with wear and retention age;
 * the ECC engine corrects up to a threshold, a read-retry ladder with
 * shifted sensing levels recovers more, and past the last level the
 * data is lost), program-status failures (the page reports a program
 * fail and must be re-issued elsewhere), and erase failures (the block
 * is worn out and must be retired). The injector models all three as a
 * pure function of (erase count, block age, one RNG stream), so every
 * run is reproducible from a single seed.
 *
 * Neutrality contract: a disabled injector (FaultConfig::enabled ==
 * false, the default) draws nothing and reports nothing, and the
 * flash array never consults it — the simulated timing and results of
 * a fault-free run are bit-identical to a build without this
 * subsystem.
 */

#ifndef EMMCSIM_FAULT_INJECTOR_HH
#define EMMCSIM_FAULT_INJECTOR_HH

#include <cstdint>
#include <random>

#include "core/binio.hh"
#include "sim/types.hh"

namespace emmcsim::fault {

/** Tunable parameters of the NAND fault model. */
struct FaultConfig
{
    /** Master switch; everything below is inert when false. */
    bool enabled = false;

    /** Seed for the injector's private RNG stream. */
    std::uint64_t seed = 1;

    /**
     * Raw bit-error rate of a fresh, freshly-written page. The MLC
     * floor is around 1e-6..1e-4 depending on node; 0 disables read
     * errors entirely (program/erase faults may still fire).
     */
    double baseRber = 0.0;

    /** RBER multiplier per erase cycle: rber *= 1 + f * eraseCount. */
    double wearRberFactor = 1e-3;

    /**
     * Additive RBER per unit of block age (allocation sequence ticks
     * since the block was last programmed) — the retention term.
     */
    double retentionRberPerAge = 0.0;

    /**
     * RBER the on-die ECC corrects transparently. At or below this the
     * default read succeeds without a single retry (and without an RNG
     * draw, keeping below-threshold reads deterministic and cheap).
     */
    double eccRberThreshold = 2e-4;

    /**
     * Read-retry ladder depth: number of shifted-threshold re-reads
     * attempted after the default read fails. Each level l (1-based)
     * tolerates eccRberThreshold * retryThresholdGain^l.
     */
    std::uint32_t readRetryLevels = 4;

    /** Per-level gain of the ladder's effective ECC threshold. */
    double retryThresholdGain = 1.6;

    /**
     * Extra array-busy time charged per retry round (one full page
     * re-sense with shifted read voltages; same order as the Table V
     * read latency).
     */
    sim::Time readRetryLatency = sim::microseconds(120);

    /**
     * Shape of the failure probability above a level's threshold:
     * pFail = 1 - exp(-failShape * (rber / threshold - 1)). Larger
     * values make the correctable->uncorrectable transition sharper.
     */
    double failShape = 1.0;

    /** Program-status failure probability for a fresh block. */
    double programFailProb = 0.0;

    /** Erase failure probability for a fresh block. */
    double eraseFailProb = 0.0;

    /**
     * Wear scaling of program/erase failures:
     * p *= 1 + wearFailFactor * eraseCount.
     */
    double wearFailFactor = 0.0;

    /** sim::fatal on out-of-range parameters. */
    void validate() const;
};

/** Outcome of the read-path fault evaluation for one page read. */
struct ReadFault
{
    /** Retry rounds taken (0 = default read succeeded). */
    std::uint32_t retries = 0;
    /** True when the last ladder level also failed: data is lost. */
    bool uncorrectable = false;
};

/** Injector-side counters (per device). */
struct FaultStats
{
    std::uint64_t readsEvaluated = 0;
    /** Default read succeeded without retries. */
    std::uint64_t cleanReads = 0;
    /** Reads recovered by the retry ladder (>= 1 retry, then success). */
    std::uint64_t correctedReads = 0;
    /** Reads the full ladder could not recover. */
    std::uint64_t uncorrectableReads = 0;
    /** Total retry rounds across all reads. */
    std::uint64_t retryRounds = 0;
    std::uint64_t programsEvaluated = 0;
    std::uint64_t programFailures = 0;
    std::uint64_t erasesEvaluated = 0;
    std::uint64_t eraseFailures = 0;
    /** Faults planted through the forceNext*() test hooks. */
    std::uint64_t forcedFaults = 0;
};

/**
 * Deterministic fault source for one flash array. All draws come from
 * one mt19937_64 stream in simulation order, so a fixed (config, seed,
 * workload) triple replays the exact same fault sequence.
 */
class FaultInjector
{
  public:
    /** @param cfg Validated on construction. */
    explicit FaultInjector(const FaultConfig &cfg);

    const FaultConfig &config() const { return cfg_; }
    bool enabled() const { return cfg_.enabled; }

    /**
     * Evaluate the read-path model for one page read.
     *
     * @param erase_count Erase cycles of the block holding the page.
     * @param block_age   Pool allocation ticks since the block was
     *                    last programmed (retention proxy).
     */
    ReadFault onRead(std::uint32_t erase_count, std::uint64_t block_age);

    /** @return true when this page program reports a status failure. */
    bool programFails(std::uint32_t erase_count);

    /** @return true when this block erase fails (block worn out). */
    bool eraseFails(std::uint32_t erase_count);

    /** The wear/retention RBER curve (pure; no RNG). */
    double rberAt(std::uint32_t erase_count,
                  std::uint64_t block_age) const;

    /** @name Test hooks: plant the next N faults deterministically.
     * Forced faults consume no RNG draws, so planting one does not
     * shift the stream seen by later probabilistic draws. @{ */
    void forceReadFailures(std::uint32_t n) { forcedReads_ += n; }
    void forceProgramFailures(std::uint32_t n) { forcedPrograms_ += n; }
    void forceEraseFailures(std::uint32_t n) { forcedErases_ += n; }
    /** @} */

    const FaultStats &stats() const { return stats_; }

    /** @name Snapshot image (core/binio.hh).
     * The RNG engine state round-trips exactly (stream operators), so
     * a restored run draws the identical fault sequence. @{ */
    void save(core::BinWriter &w) const;
    void load(core::BinReader &r);
    /** @} */

  private:
    /** Uniform draw in [0, 1). */
    double draw();

    FaultConfig cfg_;
    std::mt19937_64 engine_;
    FaultStats stats_;
    std::uint32_t forcedReads_ = 0;
    std::uint32_t forcedPrograms_ = 0;
    std::uint32_t forcedErases_ = 0;
};

} // namespace emmcsim::fault

#endif // EMMCSIM_FAULT_INJECTOR_HH
