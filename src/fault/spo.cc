#include "fault/spo.hh"

#include <algorithm>
#include <random>

#include "sim/logging.hh"

namespace emmcsim::fault {

std::vector<sim::Time>
drawSpoTicks(std::uint32_t n, std::uint64_t seed, sim::Time horizon)
{
    EMMCSIM_ASSERT(horizon > 0, "SPO horizon must be positive");
    std::mt19937_64 engine(seed);
    std::vector<sim::Time> ticks;
    ticks.reserve(n);
    // Rejection-sample distinct ticks; the horizon (nanoseconds over a
    // whole trace) dwarfs any realistic n, so collisions are rare.
    while (ticks.size() < n) {
        const auto u = static_cast<sim::Time>(
            engine() % static_cast<std::uint64_t>(horizon));
        const sim::Time t = u + 1;
        if (std::find(ticks.begin(), ticks.end(), t) == ticks.end())
            ticks.push_back(t);
    }
    std::sort(ticks.begin(), ticks.end());
    return ticks;
}

} // namespace emmcsim::fault
