#include "fault/injector.hh"

#include <cmath>
#include <sstream>

#include "sim/logging.hh"

namespace emmcsim::fault {

void
FaultConfig::validate() const
{
    if (baseRber < 0.0 || baseRber >= 1.0)
        sim::fatal("fault: baseRber must be in [0, 1)");
    if (wearRberFactor < 0.0 || retentionRberPerAge < 0.0)
        sim::fatal("fault: RBER growth factors must be non-negative");
    if (eccRberThreshold <= 0.0)
        sim::fatal("fault: eccRberThreshold must be positive");
    if (retryThresholdGain <= 1.0)
        sim::fatal("fault: retryThresholdGain must exceed 1");
    if (readRetryLatency < 0)
        sim::fatal("fault: readRetryLatency must be non-negative");
    if (failShape <= 0.0)
        sim::fatal("fault: failShape must be positive");
    if (programFailProb < 0.0 || programFailProb > 1.0 ||
        eraseFailProb < 0.0 || eraseFailProb > 1.0)
        sim::fatal("fault: failure probabilities must be in [0, 1]");
    if (wearFailFactor < 0.0)
        sim::fatal("fault: wearFailFactor must be non-negative");
}

FaultInjector::FaultInjector(const FaultConfig &cfg)
    : cfg_(cfg), engine_(cfg.seed)
{
    cfg_.validate();
}

double
FaultInjector::draw()
{
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double
FaultInjector::rberAt(std::uint32_t erase_count,
                      std::uint64_t block_age) const
{
    return cfg_.baseRber *
               (1.0 + cfg_.wearRberFactor *
                          static_cast<double>(erase_count)) +
           cfg_.retentionRberPerAge * static_cast<double>(block_age);
}

ReadFault
FaultInjector::onRead(std::uint32_t erase_count, std::uint64_t block_age)
{
    if (!cfg_.enabled)
        return {};
    ++stats_.readsEvaluated;

    if (forcedReads_ > 0) {
        --forcedReads_;
        ++stats_.forcedFaults;
        ++stats_.uncorrectableReads;
        stats_.retryRounds += cfg_.readRetryLevels;
        return ReadFault{cfg_.readRetryLevels, true};
    }

    const double rber = rberAt(erase_count, block_age);
    double threshold = cfg_.eccRberThreshold;
    // Level 0 is the default read; levels 1..N are the retry ladder,
    // each with a higher effective ECC threshold. A level at or below
    // its threshold succeeds outright (no draw), above it the page
    // survives with probability exp(-failShape * (rber/thresh - 1)).
    for (std::uint32_t level = 0; level <= cfg_.readRetryLevels;
         ++level) {
        bool ok = rber <= threshold;
        if (!ok) {
            const double p_fail = 1.0 - std::exp(-cfg_.failShape *
                                                 (rber / threshold -
                                                  1.0));
            ok = draw() >= p_fail;
        }
        if (ok) {
            stats_.retryRounds += level;
            if (level == 0)
                ++stats_.cleanReads;
            else
                ++stats_.correctedReads;
            return ReadFault{level, false};
        }
        threshold *= cfg_.retryThresholdGain;
    }
    stats_.retryRounds += cfg_.readRetryLevels;
    ++stats_.uncorrectableReads;
    return ReadFault{cfg_.readRetryLevels, true};
}

bool
FaultInjector::programFails(std::uint32_t erase_count)
{
    if (!cfg_.enabled)
        return false;
    ++stats_.programsEvaluated;
    if (forcedPrograms_ > 0) {
        --forcedPrograms_;
        ++stats_.forcedFaults;
        ++stats_.programFailures;
        return true;
    }
    if (cfg_.programFailProb <= 0.0)
        return false;
    const double p = std::min(
        1.0, cfg_.programFailProb *
                 (1.0 + cfg_.wearFailFactor *
                            static_cast<double>(erase_count)));
    if (draw() < p) {
        ++stats_.programFailures;
        return true;
    }
    return false;
}

bool
FaultInjector::eraseFails(std::uint32_t erase_count)
{
    if (!cfg_.enabled)
        return false;
    ++stats_.erasesEvaluated;
    if (forcedErases_ > 0) {
        --forcedErases_;
        ++stats_.forcedFaults;
        ++stats_.eraseFailures;
        return true;
    }
    if (cfg_.eraseFailProb <= 0.0)
        return false;
    const double p = std::min(
        1.0, cfg_.eraseFailProb *
                 (1.0 + cfg_.wearFailFactor *
                            static_cast<double>(erase_count)));
    if (draw() < p) {
        ++stats_.eraseFailures;
        return true;
    }
    return false;
}

void
FaultInjector::save(core::BinWriter &w) const
{
    // mt19937_64 state round-trips exactly through its stream
    // operators (decimal words, locale-independent "C" formatting).
    std::ostringstream os;
    os << engine_;
    w.str(os.str());
    w.pod(stats_);
    w.u32(forcedReads_);
    w.u32(forcedPrograms_);
    w.u32(forcedErases_);
}

void
FaultInjector::load(core::BinReader &r)
{
    std::istringstream is(r.str());
    is >> engine_;
    if (is.fail())
        r.fail();
    r.pod(stats_);
    forcedReads_ = r.u32();
    forcedPrograms_ = r.u32();
    forcedErases_ = r.u32();
}

} // namespace emmcsim::fault
