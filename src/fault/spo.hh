/**
 * @file
 * Sudden-power-off (SPO) injection points (DESIGN.md §13).
 *
 * An SPO is a scheduled event, not a probabilistic one: the host-side
 * replayer cuts device power at pre-drawn simulated ticks and powers
 * it back up after a configurable delay, driving the FTL through its
 * recovery path each time. Keeping the tick list a pure function of
 * (count, seed, horizon) makes every torture run reproducible and lets
 * a failing crash point be re-run in isolation.
 */

#ifndef EMMCSIM_FAULT_SPO_HH
#define EMMCSIM_FAULT_SPO_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace emmcsim::fault {

/** Sudden-power-off schedule for one replay. */
struct SpoConfig
{
    /** Simulated times at which power is cut (sorted ascending). */
    std::vector<sim::Time> ticks;

    /**
     * Honor POWER_OFF_NOTIFICATION: the host warns the device, which
     * flushes its RAM buffer and checkpoints metadata before the cut
     * (a graceful shutdown). False models a battery yank.
     */
    bool notify = false;

    /** Wall time between the cut and power coming back. */
    sim::Time powerOnDelay = sim::milliseconds(100);
};

/**
 * Draw @p n distinct power-cut times uniformly over (0, @p horizon],
 * sorted ascending. Pure: the result depends only on the arguments.
 *
 * @param n       Number of cut points to draw.
 * @param seed    RNG seed (private stream; shared with nothing).
 * @param horizon Latest allowed cut time (e.g. the trace's last
 *                arrival). Must be positive.
 */
std::vector<sim::Time> drawSpoTicks(std::uint32_t n, std::uint64_t seed,
                                    sim::Time horizon);

} // namespace emmcsim::fault

#endif // EMMCSIM_FAULT_SPO_HH
