#include "core/hps.hh"

#include "sim/logging.hh"

namespace emmcsim::core {

HpsDistributor::HpsDistributor(std::uint32_t pool4k, std::uint32_t pool8k)
    : pool4k_(pool4k), pool8k_(pool8k)
{
    EMMCSIM_ASSERT(pool4k != pool8k, "HPS pools must differ");
}

void
HpsDistributor::splitWrite(flash::Lpn first, std::uint32_t n,
                           std::vector<ftl::PageGroup> &out) const
{
    EMMCSIM_ASSERT(n > 0, "splitWrite of zero units");
    std::uint32_t done = 0;
    while (n - done >= 2) {
        ftl::PageGroup g;
        g.pool = pool8k_;
        g.lpns = {first + done, first + done + 1};
        out.push_back(std::move(g));
        done += 2;
    }
    if (done < n) {
        ftl::PageGroup g;
        g.pool = pool4k_;
        g.lpns = {first + done};
        out.push_back(std::move(g));
    }
}

} // namespace emmcsim::core
