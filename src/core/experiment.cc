#include "core/experiment.hh"

#include <memory>
#include <sstream>
#include <vector>

#include "check/audit.hh"
#include "core/binio.hh"
#include "ftl/wear.hh"
#include "host/replayer.hh"
#include "obs/observer.hh"
#include "sim/logging.hh"
#include "sim/random.hh"

namespace emmcsim::core {

emmc::EmmcConfig
applyOptions(emmc::EmmcConfig cfg, const ExperimentOptions &opts)
{
    cfg.power.enabled = opts.powerMode;
    cfg.buffer.enabled = opts.ramBuffer;
    cfg.buffer.capacityUnits = opts.ramBufferUnits;
    cfg.packing.enabled = opts.packing;
    cfg.idleGcEnabled = opts.idleGc;
    cfg.ftl.gc.victimPolicy = opts.gcVictimPolicy;
    cfg.ftl.alloc = opts.allocPolicy;
    cfg.multiplane = opts.multiplane;
    cfg.fault = opts.fault;
    if (opts.capacityScale != 1.0) {
        EMMCSIM_ASSERT(opts.capacityScale > 0.0 &&
                           opts.capacityScale <= 1.0,
                       "capacityScale must be in (0, 1]");
        for (auto &pool : cfg.geometry.pools) {
            pool.blocksPerPlane = std::max<std::uint32_t>(
                8, static_cast<std::uint32_t>(
                       static_cast<double>(pool.blocksPerPlane) *
                       opts.capacityScale));
        }
    }
    return cfg;
}

namespace {

/**
 * State-only pre-aging: write the first @p fraction of the logical
 * space once sequentially and then re-write a random quarter of it,
 * so blocks contain a realistic mix of valid and stale units.
 */
void
prefillDevice(emmc::EmmcDevice &device, double fraction,
              std::uint64_t seed)
{
    if (fraction <= 0.0)
        return;
    EMMCSIM_ASSERT(fraction < 0.9, "prefill fraction too large");
    ftl::Ftl &ftl = device.ftl();
    const auto limit = static_cast<std::uint64_t>(
        static_cast<double>(ftl.logicalUnits()) * fraction);

    std::vector<ftl::PageGroup> groups;
    constexpr std::uint32_t kChunkUnits = 64;
    auto install = [&](std::uint64_t u) {
        groups.clear();
        device.distributor().splitWrite(
            static_cast<flash::Lpn>(u), kChunkUnits, groups);
        for (const auto &g : groups) {
            // A full pool simply stays full: the rest of the aged
            // image lands wherever room remains (installGroup skips).
            ftl.installGroup(g.pool, g.lpns);
        }
    };
    for (std::uint64_t u = 0; u + kChunkUnits <= limit;
         u += kChunkUnits) {
        install(u);
    }

    // Random overwrites create stale units for GC to reclaim.
    sim::Rng rng(seed);
    const std::uint64_t rewrites = limit / 4 / kChunkUnits;
    for (std::uint64_t i = 0; i < rewrites; ++i) {
        install(static_cast<std::uint64_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(limit - kChunkUnits))));
    }
}

/**
 * Case-level snapshot wrapper: the replayer image plus the pre-replay
 * FTL baseline runCase() needs to reproduce spaceUtilization exactly.
 */
constexpr const char *kCaseMagic = "emmcsim-case-snap";
constexpr std::uint32_t kCaseVersion = 1;

/**
 * Fill every device-side CaseResult column from the post-replay
 * device + replayer state. Shared by the in-memory and streaming
 * paths so a column added for one cannot silently miss the other.
 * Excluded: p99ResponseMs (each path has its own latency store),
 * snapshot / obs / audit artifacts, scheme and traceName.
 */
void
collectDeviceColumns(CaseResult &res, emmc::EmmcDevice &device,
                     const host::Replayer &replayer,
                     const ftl::FtlStats &before)
{
    const emmc::DeviceStats &ds = device.stats();
    const ftl::FtlStats after = device.ftl().stats();
    const ftl::GcStats &gs = device.ftl().gcStats();

    res.requests = ds.requests;
    res.meanResponseMs = ds.responseMs.mean();
    res.meanServiceMs = ds.serviceMs.mean();
    res.noWaitPct = 100.0 * ds.noWaitRatio();

    const std::uint64_t d_units =
        after.hostUnitsWritten - before.hostUnitsWritten;
    const std::uint64_t d_bytes =
        after.hostBytesConsumed - before.hostBytesConsumed;
    res.spaceUtilization =
        d_bytes ? static_cast<double>(d_units * sim::kUnitBytes) /
                      static_cast<double>(d_bytes)
                : 1.0;

    res.gcBlockingRounds = gs.blockingRounds;
    res.gcIdleRounds = gs.idleRounds + gs.idleSteps;
    res.gcRelocatedUnits = gs.relocatedUnits;
    res.gcErasedBlocks = gs.erasedBlocks;
    ftl::WearReport wear = ftl::computeWear(device.array());
    res.totalErases = wear.totalErases;
    res.wearSpread = wear.worstSpread;
    res.writeAmplification =
        ftl::writeAmplification(device.array(), device.ftl());
    res.powerWakeups = device.powerStats().wakeups;
    res.packedCommands = device.packingStats().packedCommands;
    res.bufferReadHitRate = device.bufferStats().readHitRate();

    const flash::Geometry &geom = device.array().geometry();
    for (std::size_t pool = 0; pool < geom.pools.size(); ++pool) {
        const flash::ArrayStats &pst = device.array().stats(pool);
        if (geom.pools[pool].pageBytes == 4096) {
            res.programs4kPool += pst.programs;
        } else {
            res.programs8kPool += pst.programs;
        }
    }
    const flash::ArrayStats total_ops = device.array().totalStats();
    res.pageReads = total_ops.reads;
    res.pagePrograms = total_ops.programs;

    // Reliability columns: injector / FTL / host error-path counters
    // (all zero when injection is off).
    const fault::FaultStats &fstats = device.faultInjector().stats();
    res.correctedReads = fstats.correctedReads;
    res.uncorrectableReads = fstats.uncorrectableReads;
    res.readRetryRounds = fstats.retryRounds;
    res.programFailures = fstats.programFailures;
    res.eraseFailures = fstats.eraseFailures;
    res.relocatedPrograms = after.relocatedPrograms;
    res.retiredBlocks = device.ftl().badBlocks().totalRetired();
    res.hostRetries = replayer.stats().retriesScheduled;
    res.hostFailedRequests = replayer.stats().failedRequests;
    res.hostRetryPenaltyMs =
        sim::toMilliseconds(replayer.stats().retryPenalty);
    res.deviceReadOnly = device.ftl().readOnly();

    const emmc::SpoStats &sp = device.spoStats();
    res.spoEvents = replayer.stats().spoEvents;
    res.spoTornPages = sp.tornPages;
    res.spoLostDirtyUnits = sp.lostDirtyUnits;
    res.reissuedRequests = replayer.stats().reissuedRequests;
    res.recoveryTimeMs = sim::toMilliseconds(sp.recoveryTime);
    const ftl::JournalStats &jn = device.ftl().journal().stats();
    res.journalPagesFlushed = jn.pagesFlushed;
    res.journalCheckpoints = jn.checkpoints;
}

/** Finish the observer and move its artifacts into @p res. */
void
collectObsArtifacts(CaseResult &res, obs::DeviceObserver *observer,
                    const ObsRequest &req, const std::string &trace_name)
{
    if (observer == nullptr)
        return;
    observer->finish();
    res.obs.enabled = true;
    res.obs.metrics = observer->snapshot();
    res.obs.series = observer->series();
    if (req.traceSpans) {
        std::ostringstream chrome;
        observer->tracer().exportChromeTrace(chrome);
        res.obs.chromeTrace = chrome.str();
        std::ostringstream bt;
        observer->tracer().exportBiotracerCsv(bt, trace_name);
        res.obs.biotracerTrace = bt.str();
    }
    if (req.attribution)
        res.obs.attribution = observer->attribution();
}

CaseResult
runCaseImpl(const trace::Trace &t, SchemeKind kind,
            const ExperimentOptions &opts, const std::string *image)
{
    sim::Simulator simulator;
    emmc::EmmcConfig cfg = applyOptions(schemeConfig(kind), opts);
    auto device = makeDevice(simulator, kind, cfg);

    ftl::FtlStats before;
    std::string inner;
    if (image != nullptr) {
        // Resume: the device state (including any prefill) lives in
        // the image; re-aging it here would double the history.
        EMMCSIM_ASSERT(opts.spo.ticks.empty() && opts.snapshotAt < 0,
                       "resumeCase cannot inject SPO or re-snapshot");
        BinReader header(*image);
        if (header.str() != kCaseMagic ||
            header.u32() != kCaseVersion) {
            sim::fatal("not an emmcsim case snapshot");
        }
        header.pod(before);
        inner = header.str();
        if (!header.ok() || header.remaining() != 0)
            sim::fatal("corrupt case snapshot header");
    } else {
        prefillDevice(*device, opts.prefill, opts.prefillSeed);
        if (opts.prefill > 0.0) {
            // Start the replay from a durable baseline so recovery
            // cost reflects replay-time dirt, not the aging pattern.
            device->ftl().journal().checkpoint();
        }
        // Space utilization is measured over the replay only.
        before = device->ftl().stats();
    }

    // Periodic invariant audits ride the simulator's post-event hook;
    // a final audit after the drain validates the end state.
    std::unique_ptr<check::DeviceAuditor> auditor;
    if (opts.auditEveryEvents > 0) {
        check::AuditOptions audit_opts;
        audit_opts.everyEvents = opts.auditEveryEvents;
        auditor = std::make_unique<check::DeviceAuditor>(
            simulator, *device, audit_opts);
    }

    host::Replayer replayer(simulator, *device);

    // Observability rides the trace / op / post-event hooks; with no
    // request the observer is never built and the hooks stay null.
    std::unique_ptr<obs::DeviceObserver> observer;
    if (opts.obs.any()) {
        obs::ObserverOptions obs_opts;
        obs_opts.metrics = opts.obs.metrics;
        obs_opts.trace = opts.obs.traceSpans;
        obs_opts.sampleWindow = opts.obs.sampleWindow;
        obs_opts.attribution = opts.obs.attribution;
        obs_opts.eventCore = opts.obs.eventCore;
        obs_opts.replayStats = &replayer.stats();
        observer = std::make_unique<obs::DeviceObserver>(
            simulator, *device, obs_opts);
    }

    host::ReplayOptions replay_opts;
    replay_opts.maxRetries = opts.hostMaxRetries;
    replay_opts.spo = opts.spo;
    replay_opts.snapshotAt = opts.snapshotAt;
    trace::Trace replayed =
        image ? replayer.resume(t, inner, replay_opts)
              : replayer.replay(t, replay_opts);

    CaseResult res;
    res.scheme = schemeName(kind);
    res.traceName = t.name();
    collectDeviceColumns(res, *device, replayer, before);

    // Tail latency from the replayed per-record timestamps (exact
    // nearest-rank; the streaming path estimates from a histogram).
    sim::Percentiles resp;
    for (const auto &r : replayed.records())
        resp.add(sim::toMilliseconds(r.finish - r.arrival));
    res.p99ResponseMs = resp.percentile(99.0);

    if (replayer.snapshotTaken()) {
        BinWriter w;
        w.str(kCaseMagic);
        w.u32(kCaseVersion);
        w.pod(before);
        w.str(replayer.snapshotImage());
        res.snapshotImage = w.take();
    }

    res.replayed = std::move(replayed);
    collectObsArtifacts(res, observer.get(), opts.obs, t.name());
    if (auditor) {
        auditor->runFullAudit();
        auditor->detach();
        res.audit = auditor->report();
    }
    return res;
}

} // namespace

CaseResult
runCase(const trace::Trace &t, SchemeKind kind,
        const ExperimentOptions &opts)
{
    return runCaseImpl(t, kind, opts, nullptr);
}

CaseResult
runCaseStream(trace::TraceSource &src, SchemeKind kind,
              const ExperimentOptions &opts)
{
    EMMCSIM_ASSERT(opts.spo.ticks.empty() && opts.snapshotAt < 0,
                   "runCaseStream cannot inject SPO or snapshot (both "
                   "need the in-memory path)");

    sim::Simulator simulator;
    emmc::EmmcConfig cfg = applyOptions(schemeConfig(kind), opts);
    auto device = makeDevice(simulator, kind, cfg);

    prefillDevice(*device, opts.prefill, opts.prefillSeed);
    if (opts.prefill > 0.0)
        device->ftl().journal().checkpoint();
    const ftl::FtlStats before = device->ftl().stats();

    std::unique_ptr<check::DeviceAuditor> auditor;
    if (opts.auditEveryEvents > 0) {
        check::AuditOptions audit_opts;
        audit_opts.everyEvents = opts.auditEveryEvents;
        auditor = std::make_unique<check::DeviceAuditor>(
            simulator, *device, audit_opts);
    }

    host::Replayer replayer(simulator, *device);

    std::unique_ptr<obs::DeviceObserver> observer;
    if (opts.obs.any()) {
        obs::ObserverOptions obs_opts;
        obs_opts.metrics = opts.obs.metrics;
        obs_opts.trace = opts.obs.traceSpans;
        obs_opts.sampleWindow = opts.obs.sampleWindow;
        obs_opts.attribution = opts.obs.attribution;
        obs_opts.eventCore = opts.obs.eventCore;
        obs_opts.replayStats = &replayer.stats();
        observer = std::make_unique<obs::DeviceObserver>(
            simulator, *device, obs_opts);
    }

    host::ReplayOptions replay_opts;
    replay_opts.maxRetries = opts.hostMaxRetries;
    host::StreamReplayResult sres =
        replayer.replayStream(src, replay_opts);

    CaseResult res;
    res.scheme = schemeName(kind);
    res.traceName = src.name();
    collectDeviceColumns(res, *device, replayer, before);

    // Histogram-estimated tail (the stream keeps no per-record
    // timestamps); res.replayed stays empty by design.
    res.p99ResponseMs = sres.responseHistMs.percentileEstimate(99.0);

    collectObsArtifacts(res, observer.get(), opts.obs, src.name());
    if (auditor) {
        auditor->runFullAudit();
        auditor->detach();
        res.audit = auditor->report();
    }
    return res;
}

CaseResult
resumeCase(const trace::Trace &t, SchemeKind kind,
           const std::string &image, const ExperimentOptions &opts)
{
    return runCaseImpl(t, kind, opts, &image);
}

} // namespace emmcsim::core
