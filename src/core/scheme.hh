/**
 * @file
 * Scheme factory: builds the three Table V devices (4PS, 8PS, HPS).
 */

#ifndef EMMCSIM_CORE_SCHEME_HH
#define EMMCSIM_CORE_SCHEME_HH

#include <memory>
#include <string>

#include "emmc/device.hh"
#include "sim/simulator.hh"

namespace emmcsim::core {

/**
 * The case-study eMMC schemes. PS4/PS8/HPS are the paper's Table V
 * devices; HSLC is the Implication 5 extension (HPS with an SLC-mode
 * 4KB pool).
 */
enum class SchemeKind { PS4, PS8, HPS, HSLC };

/** The paper's schemes in presentation order (4PS, 8PS, HPS). */
const std::vector<SchemeKind> &allSchemes();

/** The paper's schemes plus the HSLC extension. */
const std::vector<SchemeKind> &extendedSchemes();

/** "4PS" / "8PS" / "HPS". */
std::string schemeName(SchemeKind kind);

/** Table V configuration of @p kind. */
emmc::EmmcConfig schemeConfig(SchemeKind kind);

/** The write distributor matching @p kind's pool layout. */
std::unique_ptr<ftl::RequestDistributor>
schemeDistributor(SchemeKind kind);

/**
 * Build a device of the given scheme on @p simulator.
 *
 * @param kind  Scheme to build.
 * @param cfg   Configuration (usually schemeConfig(kind), possibly
 *        with experiment toggles applied). Its pool layout must match
 *        the scheme.
 */
std::unique_ptr<emmc::EmmcDevice>
makeDevice(sim::Simulator &simulator, SchemeKind kind,
           const emmc::EmmcConfig &cfg);

/** Convenience: makeDevice with the unmodified Table V config. */
std::unique_ptr<emmc::EmmcDevice>
makeDevice(sim::Simulator &simulator, SchemeKind kind);

} // namespace emmcsim::core

#endif // EMMCSIM_CORE_SCHEME_HH
