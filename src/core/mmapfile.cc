#include "core/mmapfile.hh"

#if defined(__unix__) || defined(__APPLE__)
#define EMMCSIM_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace emmcsim::core {

#ifdef EMMCSIM_HAVE_MMAP

MappedFile
MappedFile::open(const std::string &path)
{
    MappedFile m;
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return m;
    struct stat st{};
    if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode) ||
        st.st_size <= 0) {
        ::close(fd);
        return m;
    }
    const auto len = static_cast<std::size_t>(st.st_size);
    void *addr = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd); // the mapping keeps its own reference
    if (addr == MAP_FAILED)
        return m;
#ifdef MADV_SEQUENTIAL
    ::madvise(addr, len, MADV_SEQUENTIAL);
#endif
    m.addr_ = addr;
    m.len_ = len;
    return m;
}

bool
MappedFile::supported()
{
    return true;
}

void
MappedFile::unmap()
{
    if (addr_ != nullptr)
        ::munmap(addr_, len_);
    addr_ = nullptr;
    len_ = 0;
}

#else // !EMMCSIM_HAVE_MMAP

MappedFile
MappedFile::open(const std::string &)
{
    return MappedFile{};
}

bool
MappedFile::supported()
{
    return false;
}

void
MappedFile::unmap()
{
    addr_ = nullptr;
    len_ = 0;
}

#endif

} // namespace emmcsim::core
