/**
 * @file
 * core::Sweep: parallel execution of independent replay cases.
 *
 * The Section V comparison and every figure/table bench replay many
 * independent (trace, scheme, options) cases. Each runCase() builds
 * its own simulator and device, reads a shared const trace, and
 * returns a value-only CaseResult, so cases are embarrassingly
 * parallel. This header provides:
 *
 *   - ThreadPool: a fixed-size worker pool (the "sweep engine"),
 *   - runOrdered(): run N indexed jobs on the pool and return their
 *     results in submission order, so downstream output (tables,
 *     run-report JSON) is byte-identical regardless of worker count,
 *   - SweepCase / runCases(): the (trace, scheme, options) job model
 *     used by the CLI sweep mode, the HPS case study and the benches.
 *
 * Determinism contract: a job must depend only on its own inputs
 * (trace contents, options, seeds), never on execution order or wall
 * clock. runCase() satisfies this — simulated time is event-driven
 * and all randomness is seeded — so `--jobs=1` and `--jobs=N` produce
 * identical result vectors.
 */

#ifndef EMMCSIM_CORE_SWEEP_HH
#define EMMCSIM_CORE_SWEEP_HH

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

#include "core/experiment.hh"
#include "core/scheme.hh"
#include "trace/trace.hh"

namespace emmcsim::core {

/**
 * Resolve a --jobs request: 0 means "use the hardware", anything else
 * is taken literally. Never returns 0.
 */
unsigned effectiveJobs(unsigned requested);

/**
 * A fixed-size pool of worker threads draining a FIFO task queue.
 *
 * post() may be called from the owning thread only; tasks themselves
 * must not post. wait() blocks until every posted task has finished.
 * The destructor drains the queue before joining the workers.
 */
class ThreadPool
{
  public:
    /** @param jobs Worker count; 0 = effectiveJobs(0). */
    explicit ThreadPool(unsigned jobs = 0);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Drains outstanding tasks, then joins the workers. */
    ~ThreadPool();

    /** Number of worker threads. */
    unsigned workerCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Enqueue one task (owning thread only). */
    void post(std::function<void()> task);

    /** Block until the queue is empty and no task is running. */
    void wait();

  private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable task_cv_; ///< workers: "queue non-empty"
    std::condition_variable idle_cv_; ///< wait(): "everything done"
    std::deque<std::function<void()>> queue_;
    std::size_t active_ = 0; ///< tasks currently executing
    bool stop_ = false;
    std::vector<std::thread> workers_; ///< last: joined before members die
};

/**
 * Run @p fn(0) .. @p fn(count-1) on up to @p jobs workers and return
 * the results indexed by job — submission order, independent of
 * completion order. @p fn is invoked concurrently from several
 * threads and must be safe to call that way (runCase() is: all its
 * state is per-call). If jobs throw, the exception of the
 * lowest-indexed failing job is rethrown after all jobs finish.
 */
template <typename Fn>
auto
runOrdered(std::size_t count, unsigned jobs, Fn &&fn)
    -> std::vector<std::invoke_result_t<Fn &, std::size_t>>
{
    using R = std::invoke_result_t<Fn &, std::size_t>;
    std::vector<std::optional<R>> slots(count);
    std::vector<std::exception_ptr> errors(count);
    {
        ThreadPool pool(jobs);
        for (std::size_t i = 0; i < count; ++i) {
            pool.post([&slots, &errors, &fn, i] {
                try {
                    slots[i].emplace(fn(i));
                } catch (...) {
                    errors[i] = std::current_exception();
                }
            });
        }
        pool.wait();
    }
    for (const std::exception_ptr &e : errors) {
        if (e)
            std::rethrow_exception(e);
    }
    std::vector<R> out;
    out.reserve(count);
    for (std::optional<R> &slot : slots)
        out.push_back(std::move(*slot));
    return out;
}

/**
 * One replay job in a sweep: which trace on which device, with which
 * experiment toggles. The trace is shared by pointer — replays only
 * read it — and must outlive the runCases() call.
 */
struct SweepCase
{
    /** Report label, e.g. "Twitter/HPS" or a scheme name. */
    std::string label;
    const trace::Trace *trace = nullptr;
    SchemeKind kind = SchemeKind::HPS;
    ExperimentOptions opts;
};

/**
 * Replay every case on a pool of @p jobs workers (0 = hardware
 * concurrency) and return the results in submission order.
 */
std::vector<CaseResult> runCases(const std::vector<SweepCase> &cases,
                                 unsigned jobs = 0);

} // namespace emmcsim::core

#endif // EMMCSIM_CORE_SWEEP_HH
