/**
 * @file
 * Strong unit types for the simulator's four addressing domains.
 *
 * The pipeline crosses four domains that are all "just integers" on
 * real hardware and therefore trivially easy to mix up in code:
 *
 *  - **LBA sectors** (512 B): how block traces and the eMMC interface
 *    address data (trace::TraceRecord, emmc::IoRequest).
 *  - **Logical mapping units** (4 KiB): the FTL's translation
 *    granularity (flash::Lpn in the mapping, distributor and pools).
 *  - **Physical flash addresses**: page numbers within a plane-pool
 *    (flash::Ppn) and block indices within a pool. The structured form
 *    (channel/chip/die/plane/pool/block/page) is flash::PageAddr.
 *  - **Bytes**: request sizes and capacities.
 *
 * (The fifth domain, the nanosecond clock, already has its own alias —
 * sim::Time — and deliberately keeps full integer arithmetic: durations
 * are added, subtracted, scaled and divided everywhere. It is re-exported
 * here so units.hh names the complete taxonomy.)
 *
 * Quantity<Tag> wraps the representation in a zero-overhead strong
 * typedef: same size, trivially copyable, no implicit conversion in or
 * out. Tags declare an arithmetic *role*:
 *
 *  - Role::Address — points at a location. Supports offsetting by a
 *    raw count (addr + n, addr - n) and differencing (addr - addr ->
 *    count), but never addr + addr.
 *  - Role::Size — measures an amount. Supports add/subtract/scale and
 *    ratio (size / size -> count), but cannot be mixed with addresses
 *    or with sizes of another unit.
 *
 * Every conversion between domains is a named function with an
 * alignment DCHECK (or an explicit *Floor / *Ceil spelling where
 * rounding is the intended semantic), so each crossing is a visible,
 * auditable call site instead of a silent integer cast.
 *
 * scripts/emmclint.py enforces the discipline around this header: raw
 * integer parameters named after a unit domain (lba / lpn / ppn / unit
 * / page / block / sector) are rejected everywhere outside this file.
 */

#ifndef EMMCSIM_CORE_UNITS_HH
#define EMMCSIM_CORE_UNITS_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <type_traits>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace emmcsim::units {

/** Arithmetic role of a unit tag (see file comment). */
enum class Role
{
    Address, ///< a location: offset by counts, difference to counts
    Size,    ///< an amount: add, subtract, scale, ratio
};

/**
 * Zero-overhead strong typedef carrying a unit tag.
 *
 * @tparam Tag Unit tag type providing `Rep` (the underlying integer)
 *         and `role` (the arithmetic role). Two quantities interoperate
 *         only when they share the exact same tag.
 */
template <class Tag>
class Quantity
{
  public:
    using Rep = typename Tag::Rep;
    static constexpr Role role = Tag::role;

    constexpr Quantity() = default;

    /** Wrap a raw value; explicit so no bare integer converts silently. */
    constexpr explicit Quantity(Rep v) : v_(v) {}

    /**
     * Leave the unit system. Every call site is a deliberate, greppable
     * domain exit (indexing a container, formatting a report, feeding a
     * double-valued statistic).
     */
    constexpr Rep value() const { return v_; }

    /** @name Same-tag comparisons. @{ */
    friend constexpr bool operator==(Quantity a, Quantity b)
    {
        return a.v_ == b.v_;
    }
    friend constexpr bool operator!=(Quantity a, Quantity b)
    {
        return a.v_ != b.v_;
    }
    friend constexpr bool operator<(Quantity a, Quantity b)
    {
        return a.v_ < b.v_;
    }
    friend constexpr bool operator<=(Quantity a, Quantity b)
    {
        return a.v_ <= b.v_;
    }
    friend constexpr bool operator>(Quantity a, Quantity b)
    {
        return a.v_ > b.v_;
    }
    friend constexpr bool operator>=(Quantity a, Quantity b)
    {
        return a.v_ >= b.v_;
    }
    /** @} */

    /** @name Address arithmetic (Role::Address only). @{ */

    /** Offset an address forward by a raw element count. */
    template <class T = Tag,
              std::enable_if_t<T::role == Role::Address, int> = 0>
    friend constexpr Quantity
    operator+(Quantity a, Rep n)
    {
        return Quantity{static_cast<Rep>(a.v_ + n)};
    }

    /** Offset an address backward by a raw element count. */
    template <class T = Tag,
              std::enable_if_t<T::role == Role::Address, int> = 0>
    friend constexpr Quantity
    operator-(Quantity a, Rep n)
    {
        return Quantity{static_cast<Rep>(a.v_ - n)};
    }

    /** Distance between two addresses, in elements of this domain. */
    template <class T = Tag,
              std::enable_if_t<T::role == Role::Address, int> = 0>
    friend constexpr Rep
    operator-(Quantity a, Quantity b)
    {
        return static_cast<Rep>(a.v_ - b.v_);
    }

    template <class T = Tag,
              std::enable_if_t<T::role == Role::Address, int> = 0>
    constexpr Quantity &
    operator+=(Rep n)
    {
        v_ = static_cast<Rep>(v_ + n);
        return *this;
    }

    template <class T = Tag,
              std::enable_if_t<T::role == Role::Address, int> = 0>
    constexpr Quantity &
    operator++()
    {
        ++v_;
        return *this;
    }

    template <class T = Tag,
              std::enable_if_t<T::role == Role::Address, int> = 0>
    constexpr Quantity
    operator++(int)
    {
        Quantity old = *this;
        ++v_;
        return old;
    }
    /** @} */

    /** @name Size arithmetic (Role::Size only). @{ */

    template <class T = Tag,
              std::enable_if_t<T::role == Role::Size, int> = 0>
    friend constexpr Quantity
    operator+(Quantity a, Quantity b)
    {
        return Quantity{static_cast<Rep>(a.v_ + b.v_)};
    }

    template <class T = Tag,
              std::enable_if_t<T::role == Role::Size, int> = 0>
    friend constexpr Quantity
    operator-(Quantity a, Quantity b)
    {
        return Quantity{static_cast<Rep>(a.v_ - b.v_)};
    }

    /** Scale a size by a raw count. */
    template <class T = Tag,
              std::enable_if_t<T::role == Role::Size, int> = 0>
    friend constexpr Quantity
    operator*(Quantity a, Rep n)
    {
        return Quantity{static_cast<Rep>(a.v_ * n)};
    }

    template <class T = Tag,
              std::enable_if_t<T::role == Role::Size, int> = 0>
    friend constexpr Quantity
    operator*(Rep n, Quantity a)
    {
        return Quantity{static_cast<Rep>(n * a.v_)};
    }

    /** Divide a size by a raw count. */
    template <class T = Tag,
              std::enable_if_t<T::role == Role::Size, int> = 0>
    friend constexpr Quantity
    operator/(Quantity a, Rep n)
    {
        return Quantity{static_cast<Rep>(a.v_ / n)};
    }

    /** Ratio of two sizes (how many of @p b fit in @p a). */
    template <class T = Tag,
              std::enable_if_t<T::role == Role::Size, int> = 0>
    friend constexpr Rep
    operator/(Quantity a, Quantity b)
    {
        return static_cast<Rep>(a.v_ / b.v_);
    }

    /** Remainder of a size modulo another size (alignment checks). */
    template <class T = Tag,
              std::enable_if_t<T::role == Role::Size, int> = 0>
    friend constexpr Quantity
    operator%(Quantity a, Quantity b)
    {
        return Quantity{static_cast<Rep>(a.v_ % b.v_)};
    }

    template <class T = Tag,
              std::enable_if_t<T::role == Role::Size, int> = 0>
    constexpr Quantity &
    operator+=(Quantity b)
    {
        v_ = static_cast<Rep>(v_ + b.v_);
        return *this;
    }
    /** @} */

    /** @name Streaming: raw value, no unit suffix (text formats depend
     * on byte-identical output). @{ */
    template <class CharT, class Traits>
    friend std::basic_ostream<CharT, Traits> &
    operator<<(std::basic_ostream<CharT, Traits> &os, Quantity q)
    {
        return os << q.v_;
    }

    template <class CharT, class Traits>
    friend std::basic_istream<CharT, Traits> &
    operator>>(std::basic_istream<CharT, Traits> &is, Quantity &q)
    {
        return is >> q.v_;
    }
    /** @} */

  private:
    Rep v_ = 0;
};

/** @name Unit tags. @{ */

/** Logical block address in 512 B trace sectors (host interface). */
struct LbaTag
{
    using Rep = std::uint64_t;
    static constexpr Role role = Role::Address;
};

/**
 * Logical 4 KiB mapping-unit address (the FTL's LPN). Signed so the
 * long-standing -1 "unmapped" sentinel keeps working in pool state.
 */
struct UnitTag
{
    using Rep = std::int64_t;
    static constexpr Role role = Role::Address;
};

/** Physical page number within one plane-pool (block * ppb + page). */
struct PageTag
{
    using Rep = std::uint64_t;
    static constexpr Role role = Role::Address;
};

/** Block index within one plane-pool. */
struct BlockTag
{
    using Rep = std::uint32_t;
    static constexpr Role role = Role::Address;
};

/** A size in bytes. */
struct ByteTag
{
    using Rep = std::uint64_t;
    static constexpr Role role = Role::Size;
};
/** @} */

using Lba = Quantity<LbaTag>;
using UnitAddr = Quantity<UnitTag>;
using PageNo = Quantity<PageTag>;
using BlockId = Quantity<BlockTag>;
using Bytes = Quantity<ByteTag>;

/** The nanosecond simulation clock, re-exported for the taxonomy. */
using Time = sim::Time;

/** "Unmapped / never written" logical-unit sentinel. */
constexpr UnitAddr kNoUnit{-1};

/** @name Domain constants (typed forms of sim/types.hh). @{ */
constexpr Bytes kSectorSize{sim::kSectorBytes};
constexpr Bytes kUnitSize{sim::kUnitBytes};
/** @} */

/* The whole point of the wrapper is that it costs nothing: pinned here
 * so a regression (a virtual, a non-trivial member) cannot slip in and
 * break the 48-byte InlineAction budget or golden byte-identity. */
static_assert(std::is_trivially_copyable_v<Lba> &&
                  sizeof(Lba) == sizeof(std::uint64_t),
              "Lba must stay a zero-overhead wrapper");
static_assert(std::is_trivially_copyable_v<UnitAddr> &&
                  sizeof(UnitAddr) == sizeof(std::int64_t),
              "UnitAddr must stay a zero-overhead wrapper");
static_assert(std::is_trivially_copyable_v<PageNo> &&
                  sizeof(PageNo) == sizeof(std::uint64_t),
              "PageNo must stay a zero-overhead wrapper");
static_assert(std::is_trivially_copyable_v<BlockId> &&
                  sizeof(BlockId) == sizeof(std::uint32_t),
              "BlockId must stay a zero-overhead wrapper");
static_assert(std::is_trivially_copyable_v<Bytes> &&
                  sizeof(Bytes) == sizeof(std::uint64_t),
              "Bytes must stay a zero-overhead wrapper");
static_assert(std::is_standard_layout_v<Lba> &&
                  std::is_standard_layout_v<UnitAddr> &&
                  std::is_standard_layout_v<PageNo> &&
                  std::is_standard_layout_v<BlockId> &&
                  std::is_standard_layout_v<Bytes>,
              "unit types must stay standard-layout");

/** @name Alignment predicates. @{ */

/** @return true when @p b is a whole number of 4 KiB mapping units. */
constexpr bool
isUnitAligned(Bytes b)
{
    return b.value() % sim::kUnitBytes == 0;
}

/** @return true when @p lba starts on a 4 KiB mapping-unit boundary. */
constexpr bool
isUnitAligned(Lba lba)
{
    return lba.value() % sim::kSectorsPerUnit == 0;
}

/** @return true when @p b is a whole number of 512 B sectors. */
constexpr bool
isSectorAligned(Bytes b)
{
    return b.value() % sim::kSectorBytes == 0;
}
/** @} */

/** @name Checked cross-domain conversions.
 *
 * The checked forms DCHECK exact alignment; use the *Floor / *Ceil
 * spellings when rounding is the intended semantic, so the rounding
 * direction is visible at the call site.
 * @{ */

/** Sector address -> mapping unit; requires 8-sector (4 KiB) alignment. */
inline UnitAddr
lbaToUnit(Lba lba)
{
    EMMCSIM_DCHECK(isUnitAligned(lba),
                   "lbaToUnit on a non-4KB-aligned sector address");
    return UnitAddr{
        static_cast<std::int64_t>(lba.value() / sim::kSectorsPerUnit)};
}

/** Sector address -> containing mapping unit (explicit floor). */
constexpr UnitAddr
lbaToUnitFloor(Lba lba)
{
    return UnitAddr{
        static_cast<std::int64_t>(lba.value() / sim::kSectorsPerUnit)};
}

/** First sector of mapping unit @p u. */
inline Lba
unitToLba(UnitAddr u)
{
    EMMCSIM_DCHECK(u.value() >= 0, "unitToLba on the unmapped sentinel");
    return Lba{static_cast<std::uint64_t>(u.value()) *
               sim::kSectorsPerUnit};
}

/** Byte size -> mapping units; requires exact 4 KiB alignment. */
inline std::uint64_t
bytesToUnits(Bytes b)
{
    EMMCSIM_DCHECK(isUnitAligned(b),
                   "bytesToUnits on a non-4KB-multiple size");
    return b.value() / sim::kUnitBytes;
}

/** Byte size -> mapping units, rounding up (explicit ceil). */
constexpr std::uint64_t
bytesToUnitsCeil(Bytes b)
{
    return (b.value() + sim::kUnitBytes - 1) / sim::kUnitBytes;
}

/** Byte size -> 512 B sectors; requires exact sector alignment. */
inline std::uint64_t
bytesToSectors(Bytes b)
{
    EMMCSIM_DCHECK(isSectorAligned(b),
                   "bytesToSectors on a non-sector-multiple size");
    return b.value() / sim::kSectorBytes;
}

/** @p n 512 B sectors as a byte size. */
constexpr Bytes
sectorsToBytes(std::uint64_t n)
{
    return Bytes{n * sim::kSectorBytes};
}

/** @p n 4 KiB mapping units as a byte size. */
constexpr Bytes
unitsToBytes(std::uint64_t n)
{
    return Bytes{n * sim::kUnitBytes};
}

/** Block that physical page @p p of a pool with @p pages_per_block
 * pages lives in. */
inline BlockId
pageToBlock(PageNo p, std::uint32_t pages_per_block)
{
    EMMCSIM_DCHECK(pages_per_block > 0, "pageToBlock without geometry");
    return BlockId{static_cast<std::uint32_t>(p.value() /
                                              pages_per_block)};
}

/** Page offset of physical page @p p within its block. */
inline std::uint32_t
pageIndexInBlock(PageNo p, std::uint32_t pages_per_block)
{
    EMMCSIM_DCHECK(pages_per_block > 0,
                   "pageIndexInBlock without geometry");
    return static_cast<std::uint32_t>(p.value() % pages_per_block);
}

/** First physical page of block @p b. */
constexpr PageNo
blockFirstPage(BlockId b, std::uint32_t pages_per_block)
{
    return PageNo{static_cast<std::uint64_t>(b.value()) *
                  pages_per_block};
}
/** @} */

} // namespace emmcsim::units

/** Hash support so unit types can key hash containers (lookup only;
 * iterating an unordered container into any report or trace is an
 * emmclint violation — see scripts/emmclint.py, rule unordered-iter). */
template <class Tag>
struct std::hash<emmcsim::units::Quantity<Tag>>
{
    std::size_t
    operator()(emmcsim::units::Quantity<Tag> q) const noexcept
    {
        return std::hash<typename Tag::Rep>{}(q.value());
    }
};

#endif // EMMCSIM_CORE_UNITS_HH
