#include "core/report.hh"

#include <algorithm>
#include <ostream>

#include "check/audit.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

namespace emmcsim::core {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    EMMCSIM_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    EMMCSIM_ASSERT(cells.size() == headers_.size(),
                   "row width does not match header");
    rows_.push_back(std::move(cells));
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(width[c] - row[c].size() + 2, ' ');
        }
        os << '\n';
    };

    emit(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c + 1 < width.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
}

std::string
fmt(double value, int decimals)
{
    return sim::formatDouble(value, decimals);
}

std::string
fmt(std::uint64_t value)
{
    return std::to_string(value);
}

void
printAuditReport(std::ostream &os, const check::AuditReport &report)
{
    TablePrinter table({"Checker", "Checks", "Violations"});
    for (const check::CheckerSummary &c : report.checkers)
        table.addRow({c.name, fmt(c.checksRun), fmt(c.failures)});
    table.print(os);

    for (const check::CheckerSummary &c : report.checkers) {
        for (const std::string &v : c.violations)
            os << "  ! " << v << '\n';
        if (c.failures > c.violations.size()) {
            os << "  ! (" << c.failures - c.violations.size()
               << " further " << c.name << " violations not recorded)\n";
        }
    }

    os << "Audit: " << report.passes << " pass(es), "
       << report.totalChecks() << " checks, ";
    if (report.clean())
        os << "clean.\n";
    else
        os << report.totalViolations() << " VIOLATIONS.\n";
}

} // namespace emmcsim::core
