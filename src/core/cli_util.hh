/**
 * @file
 * Audited command-line number parsing, shared by the example CLIs and
 * the benches.
 *
 * These used to be copy-pasted per binary with drifting edge-case
 * behavior (overflow handling, leading '+'/whitespace, inf/nan). One
 * strict contract now applies everywhere:
 *
 *   parseU64: decimal digits only. Rejects empty strings, signs,
 *   whitespace, hex, partial parses, and values > UINT64_MAX.
 *
 *   parseF64: plain decimal/scientific notation starting with a
 *   digit, '-' or '.'. Rejects empty strings, leading whitespace or
 *   '+', hex floats ("0x1p3"), "inf"/"nan" tokens, partial parses,
 *   and anything that overflows/underflows to a non-finite or
 *   ERANGE result. A flag value that survives parseF64 is a finite
 *   double spelled the way a person would type it.
 */

#ifndef EMMCSIM_CORE_CLI_UTIL_HH
#define EMMCSIM_CORE_CLI_UTIL_HH

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>

namespace emmcsim::core {

/**
 * Strict unsigned decimal parse of the whole string.
 * @retval true and sets @p v when @p s is a valid in-range u64.
 */
inline bool
parseU64(const std::string &s, std::uint64_t &v)
{
    if (s.empty() ||
        s.find_first_not_of("0123456789") != std::string::npos)
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long n = std::strtoull(s.c_str(), &end, 10);
    if (errno == ERANGE || end != s.c_str() + s.size())
        return false;
    v = n;
    return true;
}

/**
 * Strict finite-double parse of the whole string.
 * @retval true and sets @p v when @p s is a plain finite double.
 */
inline bool
parseF64(const std::string &s, double &v)
{
    if (s.empty())
        return false;
    // strtod would skip leading whitespace and accept "+1", "inf",
    // "nan", and hex floats; a CLI flag should accept none of those.
    const unsigned char first = static_cast<unsigned char>(s[0]);
    if (!std::isdigit(first) && s[0] != '-' && s[0] != '.')
        return false;
    if (s.find_first_of("xX") != std::string::npos)
        return false;
    errno = 0;
    char *end = nullptr;
    const double x = std::strtod(s.c_str(), &end);
    if (errno != 0 || end != s.c_str() + s.size() ||
        !std::isfinite(x))
        return false;
    v = x;
    return true;
}

/**
 * Parse a --jobs=N value: an integer in [1, 1024]. 0 is rejected —
 * "use the hardware" is spelled by omitting the flag.
 * @retval true and sets @p jobs on success.
 */
inline bool
parseJobs(const std::string &s, unsigned &jobs)
{
    std::uint64_t n = 0;
    if (!parseU64(s, n) || n == 0 || n > 1024)
        return false;
    jobs = static_cast<unsigned>(n);
    return true;
}

} // namespace emmcsim::core

#endif // EMMCSIM_CORE_CLI_UTIL_HH
