/**
 * @file
 * TablePrinter: aligned ASCII tables for the bench/example output.
 */

#ifndef EMMCSIM_CORE_REPORT_HH
#define EMMCSIM_CORE_REPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace emmcsim::check {
struct AuditReport;
}

namespace emmcsim::core {

/** Accumulates rows and prints them column-aligned. */
class TablePrinter
{
  public:
    /** @param headers Column titles. */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append one row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Render with padded columns and a separator under the header. */
    void print(std::ostream &os) const;

    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format helper: fixed-decimal double as string. */
std::string fmt(double value, int decimals = 2);

/** Format helper: integer with no decoration. */
std::string fmt(std::uint64_t value);

/**
 * Render an invariant-audit summary: one row per checker (passes
 * aggregated), recorded violation details underneath, and a verdict
 * line ("audit clean" / "N violations").
 */
void printAuditReport(std::ostream &os, const check::AuditReport &report);

} // namespace emmcsim::core

#endif // EMMCSIM_CORE_REPORT_HH
