/**
 * @file
 * BinWriter / BinReader: the snapshot-image byte format.
 *
 * Snapshot/restore (DESIGN.md §13) serializes every piece of device
 * state — flash pools, FTL durable state, RNG streams, statistics —
 * into one flat byte string. The format is deliberately primitive:
 * fixed-width little-ended host integers written with memcpy, length-
 * prefixed containers, no pointers, no versioned records (the image
 * header carries one global version). Images are an exact-resume
 * artifact for the machine that wrote them, not an interchange format.
 *
 * The reader never throws and never trusts a length field: a truncated
 * or corrupt image flips a sticky failure flag, every later read
 * returns zeros/empties, and container reads are bounded by the bytes
 * actually remaining. Callers deserialize into a throwaway object tree
 * and check ok() once at the end.
 */

#ifndef EMMCSIM_CORE_BINIO_HH
#define EMMCSIM_CORE_BINIO_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace emmcsim::core {

/**
 * Incremental FNV-1a (64-bit) checksum. Not cryptographic — it exists
 * to catch truncation and bit rot in binary trace files, where a
 * silent short read would quietly shrink an experiment's workload.
 */
class Fnv1a
{
  public:
    void
    update(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        std::uint64_t h = hash_;
        for (std::size_t i = 0; i < n; ++i) {
            h ^= p[i];
            h *= kPrime;
        }
        hash_ = h;
    }

    void update(std::string_view s) { update(s.data(), s.size()); }

    std::uint64_t value() const { return hash_; }

    void reset() { hash_ = kOffsetBasis; }

  private:
    static constexpr std::uint64_t kOffsetBasis =
        14695981039346656037ull;
    static constexpr std::uint64_t kPrime = 1099511628211ull;

    std::uint64_t hash_ = kOffsetBasis;
};

/** Append-only serializer producing the snapshot byte string. */
class BinWriter
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf_.push_back(static_cast<char>(v));
    }

    void u32(std::uint32_t v) { raw(&v, sizeof v); }
    void u64(std::uint64_t v) { raw(&v, sizeof v); }
    void i32(std::int32_t v) { raw(&v, sizeof v); }
    void i64(std::int64_t v) { raw(&v, sizeof v); }

    /** Doubles are stored bit-exact (resume must not re-round). */
    void
    f64(double v)
    {
        static_assert(sizeof(double) == sizeof(std::uint64_t));
        std::uint64_t bits = 0;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }

    void b(bool v) { u8(v ? 1 : 0); }

    /**
     * LEB128 varint: 7 value bits per byte, high bit = continuation.
     * Small values (delta-encoded timestamps, sizes in units) cost
     * one or two bytes instead of eight — the compression that makes
     * the columnar trace format compact.
     */
    void
    vu64(std::uint64_t v)
    {
        while (v >= 0x80) {
            u8(static_cast<std::uint8_t>(v) | 0x80);
            v >>= 7;
        }
        u8(static_cast<std::uint8_t>(v));
    }

    /** Zigzag-mapped signed varint (small magnitudes stay small). */
    void
    vi64(std::int64_t v)
    {
        vu64((static_cast<std::uint64_t>(v) << 1) ^
             static_cast<std::uint64_t>(v >> 63));
    }

    /** Length-prefixed byte string. */
    void
    str(std::string_view s)
    {
        u64(s.size());
        buf_.append(s.data(), s.size());
    }

    /** One trivially-copyable value, raw. */
    template <typename T>
    void
    pod(const T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        raw(&v, sizeof v);
    }

    /** Length-prefixed vector of trivially-copyable elements. */
    template <typename T>
    void
    podVec(const std::vector<T> &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        u64(v.size());
        if (!v.empty())
            raw(v.data(), v.size() * sizeof(T));
    }

    /** std::vector<bool> packed 8 flags per byte. */
    void
    boolVec(const std::vector<bool> &v)
    {
        u64(v.size());
        std::uint8_t acc = 0;
        for (std::size_t i = 0; i < v.size(); ++i) {
            if (v[i])
                acc |= static_cast<std::uint8_t>(1u << (i % 8));
            if (i % 8 == 7) {
                u8(acc);
                acc = 0;
            }
        }
        if (v.size() % 8 != 0)
            u8(acc);
    }

    /**
     * u64 vector stored as (index, value) pairs when mostly zero —
     * the durable-trim table is huge but almost always empty.
     */
    void
    sparseU64(const std::vector<std::uint64_t> &v)
    {
        std::uint64_t nonzero = 0;
        for (std::uint64_t x : v)
            nonzero += x != 0;
        u64(v.size());
        if (nonzero * 4 < v.size()) {
            u8(1); // sparse encoding
            u64(nonzero);
            for (std::uint64_t i = 0; i < v.size(); ++i) {
                if (v[i] != 0) {
                    u64(i);
                    u64(v[i]);
                }
            }
        } else {
            u8(0); // dense encoding
            if (!v.empty())
                raw(v.data(), v.size() * sizeof(std::uint64_t));
        }
    }

    const std::string &data() const { return buf_; }
    std::string take() { return std::move(buf_); }

  private:
    void
    raw(const void *p, std::size_t n)
    {
        buf_.append(static_cast<const char *>(p), n);
    }

    std::string buf_;
};

/** Bounds-checked deserializer over one snapshot byte string. */
class BinReader
{
  public:
    explicit BinReader(std::string_view bytes) : buf_(bytes) {}

    /** Sticky success flag; false after any truncation/corruption. */
    bool ok() const { return ok_; }

    /** Flag the image corrupt (e.g. a failed semantic validation). */
    void fail() { ok_ = false; }

    /** Bytes not yet consumed. */
    std::size_t remaining() const { return buf_.size() - pos_; }

    std::uint8_t
    u8()
    {
        std::uint8_t v = 0;
        raw(&v, sizeof v);
        return v;
    }

    std::uint32_t
    u32()
    {
        std::uint32_t v = 0;
        raw(&v, sizeof v);
        return v;
    }

    std::uint64_t
    u64()
    {
        std::uint64_t v = 0;
        raw(&v, sizeof v);
        return v;
    }

    std::int32_t
    i32()
    {
        std::int32_t v = 0;
        raw(&v, sizeof v);
        return v;
    }

    std::int64_t
    i64()
    {
        std::int64_t v = 0;
        raw(&v, sizeof v);
        return v;
    }

    double
    f64()
    {
        std::uint64_t bits = u64();
        double v = 0.0;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }

    bool b() { return u8() != 0; }

    /** LEB128 varint; a malformed (>10-byte) encoding fails the read. */
    std::uint64_t
    vu64()
    {
        std::uint64_t v = 0;
        for (unsigned shift = 0; shift < 70; shift += 7) {
            const std::uint8_t byte = u8();
            if (!ok_)
                return 0;
            v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
            if ((byte & 0x80) == 0)
                return v;
        }
        ok_ = false; // continuation bit never dropped: corrupt
        return 0;
    }

    /** Zigzag-mapped signed varint. */
    std::int64_t
    vi64()
    {
        const std::uint64_t z = vu64();
        return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
    }

    std::string
    str()
    {
        std::uint64_t n = u64();
        if (n > remaining()) {
            ok_ = false;
            return {};
        }
        std::string s(buf_.substr(pos_, n));
        pos_ += n;
        return s;
    }

    template <typename T>
    void
    pod(T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        raw(&v, sizeof v);
    }

    template <typename T>
    void
    podVec(std::vector<T> &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        std::uint64_t n = u64();
        if (n > remaining() / sizeof(T)) {
            ok_ = false;
            v.clear();
            return;
        }
        v.resize(n);
        if (n > 0)
            raw(v.data(), n * sizeof(T));
    }

    void
    boolVec(std::vector<bool> &v)
    {
        std::uint64_t n = u64();
        const std::uint64_t bytes = (n + 7) / 8;
        if (bytes > remaining()) {
            ok_ = false;
            v.clear();
            return;
        }
        v.assign(n, false);
        std::uint8_t acc = 0;
        for (std::uint64_t i = 0; i < n; ++i) {
            if (i % 8 == 0)
                acc = u8();
            v[i] = (acc >> (i % 8)) & 1u;
        }
    }

    void
    sparseU64(std::vector<std::uint64_t> &v)
    {
        std::uint64_t n = u64();
        std::uint8_t mode = u8();
        if (mode == 1) {
            std::uint64_t nonzero = u64();
            if (n > (std::uint64_t{1} << 40) ||
                nonzero * 16 > remaining()) {
                ok_ = false;
                v.clear();
                return;
            }
            v.assign(n, 0);
            for (std::uint64_t k = 0; k < nonzero && ok_; ++k) {
                std::uint64_t i = u64();
                std::uint64_t x = u64();
                if (i >= n) {
                    ok_ = false;
                    return;
                }
                v[i] = x;
            }
        } else {
            if (n > remaining() / sizeof(std::uint64_t)) {
                ok_ = false;
                v.clear();
                return;
            }
            v.resize(n);
            if (n > 0)
                raw(v.data(), n * sizeof(std::uint64_t));
        }
    }

  private:
    void
    raw(void *p, std::size_t n)
    {
        if (n > remaining()) {
            ok_ = false;
            std::memset(p, 0, n);
            return;
        }
        std::memcpy(p, buf_.data() + pos_, n);
        pos_ += n;
    }

    std::string_view buf_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

} // namespace emmcsim::core

#endif // EMMCSIM_CORE_BINIO_HH
