#include "core/scheme.hh"

#include "core/hps.hh"
#include "sim/logging.hh"

namespace emmcsim::core {

const std::vector<SchemeKind> &
allSchemes()
{
    static const std::vector<SchemeKind> kinds = {
        SchemeKind::PS4, SchemeKind::PS8, SchemeKind::HPS};
    return kinds;
}

const std::vector<SchemeKind> &
extendedSchemes()
{
    static const std::vector<SchemeKind> kinds = {
        SchemeKind::PS4, SchemeKind::PS8, SchemeKind::HPS,
        SchemeKind::HSLC};
    return kinds;
}

std::string
schemeName(SchemeKind kind)
{
    switch (kind) {
      case SchemeKind::PS4: return "4PS";
      case SchemeKind::PS8: return "8PS";
      case SchemeKind::HPS: return "HPS";
      case SchemeKind::HSLC: return "HSLC";
    }
    sim::panic("unknown scheme kind");
}

emmc::EmmcConfig
schemeConfig(SchemeKind kind)
{
    switch (kind) {
      case SchemeKind::PS4: return emmc::make4psConfig();
      case SchemeKind::PS8: return emmc::make8psConfig();
      case SchemeKind::HPS: return emmc::makeHpsConfig();
      case SchemeKind::HSLC: return emmc::makeHpsSlcConfig();
    }
    sim::panic("unknown scheme kind");
}

std::unique_ptr<ftl::RequestDistributor>
schemeDistributor(SchemeKind kind)
{
    switch (kind) {
      case SchemeKind::PS4:
        return std::make_unique<ftl::SinglePoolDistributor>(0, 1, "4PS");
      case SchemeKind::PS8:
        return std::make_unique<ftl::SinglePoolDistributor>(0, 2, "8PS");
      case SchemeKind::HPS:
      case SchemeKind::HSLC:
        return std::make_unique<HpsDistributor>(emmc::kHps4kPool,
                                                emmc::kHps8kPool);
    }
    sim::panic("unknown scheme kind");
}

std::unique_ptr<emmc::EmmcDevice>
makeDevice(sim::Simulator &simulator, SchemeKind kind,
           const emmc::EmmcConfig &cfg)
{
    return std::make_unique<emmc::EmmcDevice>(simulator, cfg,
                                              schemeDistributor(kind));
}

std::unique_ptr<emmc::EmmcDevice>
makeDevice(sim::Simulator &simulator, SchemeKind kind)
{
    return makeDevice(simulator, kind, schemeConfig(kind));
}

} // namespace emmcsim::core
