#include "core/sweep.hh"

#include "sim/logging.hh"

namespace emmcsim::core {

unsigned
effectiveJobs(unsigned requested)
{
    if (requested != 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned jobs)
{
    const unsigned n = effectiveJobs(jobs);
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    task_cv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::post(std::function<void()> task)
{
    EMMCSIM_ASSERT(task != nullptr, "ThreadPool::post: empty task");
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    task_cv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock,
                  [this] { return queue_.empty() && active_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            task_cv_.wait(
                lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and nothing left to do
            task = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --active_;
            if (queue_.empty() && active_ == 0)
                idle_cv_.notify_all();
        }
    }
}

std::vector<CaseResult>
runCases(const std::vector<SweepCase> &cases, unsigned jobs)
{
    return runOrdered(cases.size(), jobs, [&cases](std::size_t i) {
        const SweepCase &c = cases[i];
        EMMCSIM_ASSERT(c.trace != nullptr,
                       "SweepCase \"" + c.label + "\" has no trace");
        return runCase(*c.trace, c.kind, c.opts);
    });
}

} // namespace emmcsim::core
