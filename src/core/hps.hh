/**
 * @file
 * HpsDistributor: the paper's hybrid-page-size request distributor.
 *
 * Section V: "when the size of a write request is 20 KB, it will be
 * divided into two 8-KB sub-requests and one 4-KB sub-request." The
 * split is greedy — unit pairs go to the 8KB pool, a trailing odd unit
 * to the 4KB pool — so HPS consumes exactly as much flash as a pure
 * 4KB device (no padding), while serving the bulk of a large request
 * with half as many page operations.
 */

#ifndef EMMCSIM_CORE_HPS_HH
#define EMMCSIM_CORE_HPS_HH

#include "ftl/distributor.hh"

namespace emmcsim::core {

/** The HPS write splitter (Fig 10 layout: pool 0 = 4KB, pool 1 = 8KB). */
class HpsDistributor : public ftl::RequestDistributor
{
  public:
    /**
     * @param pool4k Index of the 4KB-page pool.
     * @param pool8k Index of the 8KB-page pool.
     */
    HpsDistributor(std::uint32_t pool4k, std::uint32_t pool8k);

    void splitWrite(flash::Lpn first, std::uint32_t n,
                    std::vector<ftl::PageGroup> &out) const override;

    std::string name() const override { return "HPS"; }

  private:
    std::uint32_t pool4k_;
    std::uint32_t pool8k_;
};

} // namespace emmcsim::core

#endif // EMMCSIM_CORE_HPS_HH
