/**
 * @file
 * Experiment runner: one (trace, scheme) replay with the paper's
 * measurement conventions, producing everything Figs 8/9 and the
 * characterization tables need.
 */

#ifndef EMMCSIM_CORE_EXPERIMENT_HH
#define EMMCSIM_CORE_EXPERIMENT_HH

#include <string>

#include "check/audit.hh"
#include "core/scheme.hh"
#include "emmc/device.hh"
#include "fault/spo.hh"
#include "ftl/gc.hh"
#include "obs/attribution.hh"
#include "obs/metrics.hh"
#include "obs/sampler.hh"
#include "sim/stats.hh"
#include "trace/source.hh"
#include "trace/trace.hh"

namespace emmcsim::core {

/** Observability recorded during a replay (src/obs). */
struct ObsRequest
{
    /** Register the metrics registry and snapshot it at end of run. */
    bool metrics = false;
    /** Record request / flash-op spans for trace export. */
    bool traceSpans = false;
    /** Sampler window in ns; > 0 records windowed series. */
    sim::Time sampleWindow = 0;
    /** Aggregate per-request phase ledgers (report "attribution"). */
    bool attribution = false;
    /**
     * Scheduler self-metrics ("sim.events.*"). Process diagnostics,
     * not device state: disable when a report must be byte-identical
     * across snapshot resume (see obs::ObserverOptions::eventCore).
     */
    bool eventCore = true;

    bool any() const
    {
        return metrics || traceSpans || attribution || sampleWindow > 0;
    }
};

/** Toggles applied on top of the Table V scheme configuration. */
struct ExperimentOptions
{
    /**
     * Power-mode emulation. Off for the Fig 8/9 device comparison
     * (pure flash-path timing); on for the Table IV / Fig 5
     * characterization replays, which model the real device.
     */
    bool powerMode = false;
    /** RAM buffer; the paper disables it in the case study. */
    bool ramBuffer = false;
    /** RAM buffer capacity in 4KB units when enabled. */
    std::uint64_t ramBufferUnits = 256;
    /** eMMC packed write commands. */
    bool packing = true;
    /** Idle-time garbage collection (Implication 2 ablation). */
    bool idleGc = false;
    /** GC victim-selection policy. */
    ftl::GcVictimPolicy gcVictimPolicy = ftl::GcVictimPolicy::Greedy;
    /** Write-placement policy (dynamic vs SSDsim static allocation). */
    ftl::AllocPolicy allocPolicy = ftl::AllocPolicy::RoundRobin;
    /** Plane-level parallelism (multi-plane commands). */
    bool multiplane = false;
    /**
     * Pre-fill fraction of the logical space before the replay, to
     * age the device so garbage collection actually fires (the
     * Fig 8/9 runs use 0: a brand-new device, as in the paper).
     */
    double prefill = 0.0;
    /** Seed for the pre-fill pattern. */
    std::uint64_t prefillSeed = 42;
    /**
     * Scale factor applied to blocks-per-plane (1.0 keeps the 32GB
     * Table V device). Shrinking the device makes GC experiments
     * reachable with scaled-down traces.
     */
    double capacityScale = 1.0;
    /**
     * Run full invariant audits (check/) every N executed events
     * during the replay, plus one final audit after it drains. 0
     * disables auditing entirely (no overhead on the replay).
     */
    std::uint64_t auditEveryEvents = 0;
    /**
     * Seeded NAND fault injection (disabled by default: the replay is
     * byte-identical to a device without the fault subsystem).
     */
    fault::FaultConfig fault;
    /** Host retry budget for device-reported errors. */
    std::uint32_t hostMaxRetries = 3;
    /**
     * Observability: metrics / series / trace spans (all off by
     * default, leaving the replay byte-identical to the pre-obs code).
     */
    ObsRequest obs;
    /**
     * Sudden-power-off schedule injected by the host replayer (empty
     * ticks = off; see fault/spo.hh). Mutually exclusive with
     * snapshotAt.
     */
    fault::SpoConfig spo;
    /**
     * Capture a snapshot at the first quiescent point at or after
     * this simulated time (negative = off). The image lands in
     * CaseResult::snapshotImage; resumeCase() continues it in a
     * fresh process with a byte-identical outcome.
     */
    sim::Time snapshotAt = -1;
};

/** Everything measured from one (trace, scheme) replay. */
struct CaseResult
{
    std::string scheme;
    std::string traceName;

    double meanResponseMs = 0.0; ///< Fig 8's MRT
    double meanServiceMs = 0.0;
    double noWaitPct = 0.0;
    double spaceUtilization = 1.0; ///< Fig 9 metric

    std::uint64_t requests = 0;
    std::uint64_t gcBlockingRounds = 0;
    std::uint64_t gcIdleRounds = 0;
    std::uint64_t gcRelocatedUnits = 0;
    std::uint64_t gcErasedBlocks = 0;
    /** Total block erases (endurance proxy; Section V motivation). */
    std::uint64_t totalErases = 0;
    /** Flash bytes programmed per host byte written (1.0 ideal). */
    double writeAmplification = 0.0;
    /** Worst per-pool erase-count spread (wear balance). */
    std::uint32_t wearSpread = 0;
    std::uint64_t powerWakeups = 0;
    std::uint64_t packedCommands = 0;
    double bufferReadHitRate = 0.0;

    /** @name Flash-operation breakdown (the case-study columns).
     * @{ */
    std::uint64_t pageReads = 0;    ///< array page reads, all pools
    std::uint64_t pagePrograms = 0; ///< array page programs, all pools
    std::uint64_t programs4kPool = 0; ///< programs into 4KB-page pools
    std::uint64_t programs8kPool = 0; ///< programs into 8KB-page pools
    /** @} */

    /** @name Reliability columns (all zero with fault injection off).
     * @{ */
    double p99ResponseMs = 0.0; ///< response-time tail
    std::uint64_t correctedReads = 0;      ///< retry ladder recovered
    std::uint64_t uncorrectableReads = 0;  ///< data lost
    std::uint64_t readRetryRounds = 0;     ///< extra sensing rounds
    std::uint64_t programFailures = 0;
    std::uint64_t eraseFailures = 0;
    std::uint64_t relocatedPrograms = 0;
    std::uint64_t retiredBlocks = 0; ///< grown bad blocks
    std::uint64_t hostRetries = 0;   ///< host-side resubmissions
    std::uint64_t hostFailedRequests = 0;
    double hostRetryPenaltyMs = 0.0;
    bool deviceReadOnly = false; ///< degraded before the replay ended
    /** @} */

    /** @name Robustness columns (zero unless SPO was scheduled).
     * @{ */
    std::uint64_t spoEvents = 0;        ///< power cuts executed
    std::uint64_t spoTornPages = 0;     ///< host pages torn by cuts
    std::uint64_t spoLostDirtyUnits = 0; ///< RAM-buffer data lost
    std::uint64_t reissuedRequests = 0; ///< re-sent after power-up
    double recoveryTimeMs = 0.0;        ///< total power-up recovery
    std::uint64_t journalPagesFlushed = 0;
    std::uint64_t journalCheckpoints = 0;
    /** @} */

    /**
     * Snapshot image (empty unless snapshotAt was set). Hand it to
     * resumeCase() — or write it to disk for the CLI's restore
     * subcommand — to continue the run elsewhere.
     */
    std::string snapshotImage;

    /** Replayed trace (timestamps filled) for further analysis. */
    trace::Trace replayed;

    /** Observability artifacts (value-only; the device is gone). */
    struct ObsArtifacts
    {
        /** True when any ObsRequest field was set. */
        bool enabled = false;
        /** End-of-run metric values (metrics / sampleWindow modes). */
        obs::MetricsSnapshot metrics;
        /** Windowed series (empty unless sampleWindow > 0). */
        obs::SeriesSet series;
        /** Chrome trace_event JSON (traceSpans mode). */
        std::string chromeTrace;
        /** emmctrace text with BIOtracer timestamps (traceSpans). */
        std::string biotracerTrace;
        /** Latency attribution (attribution mode). */
        obs::AttributionSummary attribution;
    };
    ObsArtifacts obs;

    /**
     * Invariant-audit outcome (empty unless auditEveryEvents was
     * set); the final audit always runs once after the replay.
     */
    check::AuditReport audit;
};

/** Replay @p t on a fresh device of @p kind. */
CaseResult runCase(const trace::Trace &t, SchemeKind kind,
                   const ExperimentOptions &opts = {});

/**
 * Replay a streaming source on a fresh device of @p kind without
 * materializing the trace (multi-GB inputs replay in bounded memory).
 * Device-side columns and observability artifacts are identical to
 * runCase() on the same records; differences: replayed stays empty,
 * p99ResponseMs is histogram-estimated rather than exact, and
 * opts.spo / opts.snapshotAt must be unset.
 */
CaseResult runCaseStream(trace::TraceSource &src, SchemeKind kind,
                         const ExperimentOptions &opts = {});

/**
 * Continue a run captured by runCase() with snapshotAt set. @p opts
 * must match the capturing run (the device is rebuilt from the same
 * scheme + options; mismatched geometry fails the image load), except
 * spo / snapshotAt which must be unset. The returned CaseResult is
 * byte-for-byte the one the uninterrupted run produces.
 */
CaseResult resumeCase(const trace::Trace &t, SchemeKind kind,
                      const std::string &image,
                      const ExperimentOptions &opts = {});

/** Apply @p opts to a scheme configuration. */
emmc::EmmcConfig applyOptions(emmc::EmmcConfig cfg,
                              const ExperimentOptions &opts);

} // namespace emmcsim::core

#endif // EMMCSIM_CORE_EXPERIMENT_HH
