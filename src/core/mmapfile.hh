/**
 * @file
 * MappedFile: a read-only memory mapping of a whole file.
 *
 * The binary trace reader wants to decode blocks straight out of the
 * page cache instead of copying every block through an ifstream
 * buffer (DESIGN.md §15). POSIX mmap gives exactly that; platforms
 * without it (or files that refuse to map — pipes, zero-length
 * files) simply get an invalid mapping and callers fall back to
 * streaming. Mapping never becomes a correctness requirement.
 *
 * The mapping is advised MADV_SEQUENTIAL: trace replay is one
 * front-to-back pass, so aggressive readahead is the right hint.
 */

#ifndef EMMCSIM_CORE_MMAPFILE_HH
#define EMMCSIM_CORE_MMAPFILE_HH

#include <cstddef>
#include <string>
#include <string_view>

namespace emmcsim::core {

/** Move-only owner of one read-only file mapping; see file comment. */
class MappedFile
{
  public:
    MappedFile() = default;
    ~MappedFile() { unmap(); }

    MappedFile(MappedFile &&other) noexcept
        : addr_(other.addr_), len_(other.len_)
    {
        other.addr_ = nullptr;
        other.len_ = 0;
    }

    MappedFile &
    operator=(MappedFile &&other) noexcept
    {
        if (this != &other) {
            unmap();
            addr_ = other.addr_;
            len_ = other.len_;
            other.addr_ = nullptr;
            other.len_ = 0;
        }
        return *this;
    }

    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    /**
     * Map @p path read-only. Returns an invalid MappedFile on any
     * failure (missing file, unmappable object, unsupported
     * platform) — callers must be prepared to stream instead.
     */
    static MappedFile open(const std::string &path);

    /** Does the build have a real mmap implementation at all? */
    static bool supported();

    bool valid() const { return addr_ != nullptr; }

    /** The whole file; empty when !valid(). */
    std::string_view
    bytes() const
    {
        return valid()
                   ? std::string_view(static_cast<const char *>(addr_),
                                      len_)
                   : std::string_view{};
    }

  private:
    void unmap();

    void *addr_ = nullptr;
    std::size_t len_ = 0;
};

} // namespace emmcsim::core

#endif // EMMCSIM_CORE_MMAPFILE_HH
