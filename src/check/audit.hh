/**
 * @file
 * Audit subsystem: pluggable invariant checkers run from the
 * simulator's and device's debug hooks.
 *
 * An Auditor owns an ordered set of named checkers (see
 * check/invariants.hh) and accumulates their outcomes into an
 * AuditReport across passes. DeviceAuditor wires a full set of
 * checkers for one (simulator, device) pair into the runtime hooks:
 * every N executed events, at command completion, or after every FTL
 * mutation, plus on-demand full audits. The CLI's --audit flag and
 * the tests/check suite are its two consumers.
 */

#ifndef EMMCSIM_CHECK_AUDIT_HH
#define EMMCSIM_CHECK_AUDIT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "check/invariants.hh"
#include "sim/simulator.hh"

namespace emmcsim::emmc {
class EmmcDevice;
}

namespace emmcsim::check {

/** Accumulated outcome of one checker across audit passes. */
struct CheckerSummary
{
    std::string name;
    std::uint64_t checksRun = 0;
    std::uint64_t failures = 0;
    /** First recorded failure details (capped per checker). */
    std::vector<std::string> violations;
};

/** Aggregated outcome of every audit pass so far. */
struct AuditReport
{
    /** Audit passes executed (each runs every registered checker). */
    std::uint64_t passes = 0;
    std::vector<CheckerSummary> checkers;

    /** Predicates evaluated across all passes and checkers. */
    std::uint64_t totalChecks() const;

    /** Predicates failed across all passes and checkers. */
    std::uint64_t totalViolations() const;

    /** @return true when no checker ever failed. */
    bool clean() const { return totalViolations() == 0; }
};

/** An ordered collection of named invariant checkers. */
class Auditor
{
  public:
    /** A checker body: evaluate predicates into the context. */
    using Checker = std::function<void(CheckContext &)>;

    /** Register @p fn under @p name (runs in registration order). */
    void addChecker(std::string name, Checker fn);

    std::size_t checkerCount() const { return checkers_.size(); }

    /**
     * Run every registered checker once and fold the outcomes into
     * the report.
     * @return number of predicates that failed during this pass.
     */
    std::uint64_t runAll();

    const AuditReport &report() const { return report_; }

  private:
    struct Named
    {
        std::string name;
        Checker fn;
    };
    std::vector<Named> checkers_;
    AuditReport report_;
};

/**
 * Register the standard cross-layer checkers for @p device: FTL
 * mapping bijection, valid-unit conservation, per-pool free-space
 * accounting, and request-lifecycle bookkeeping. The device reference
 * is captured and must outlive the auditor.
 */
void registerDeviceCheckers(Auditor &auditor,
                            const emmc::EmmcDevice &device);

/**
 * Register the simulator-kernel checkers: event-queue integrity and
 * clock monotonicity. The simulator reference is captured and must
 * outlive the auditor.
 */
void registerSimulatorCheckers(Auditor &auditor,
                               const sim::Simulator &simulator);

/** When DeviceAuditor triggers audits beyond explicit calls. */
struct AuditOptions
{
    /** Full audit every N executed events (0 disables). */
    std::uint64_t everyEvents = 0;
    /** Full audit at every command completion. */
    bool onCommandFinish = false;
    /**
     * Full audit after every FTL mutation (write, trim, GC step).
     * Exhaustive but slow; meant for small test devices.
     */
    bool onFtlMutation = false;
};

/**
 * Drives periodic audits of one (simulator, device) pair through the
 * debug hooks. Installs its hooks on construction and removes them on
 * destruction or detach(); at most one DeviceAuditor may watch a
 * given simulator/device at a time (the hooks are single-slot).
 */
class DeviceAuditor
{
  public:
    DeviceAuditor(sim::Simulator &simulator, emmc::EmmcDevice &device,
                  const AuditOptions &opts = {});
    ~DeviceAuditor();

    DeviceAuditor(const DeviceAuditor &) = delete;
    DeviceAuditor &operator=(const DeviceAuditor &) = delete;

    /**
     * Run one full audit pass immediately (also used as the final
     * audit after a replay drains).
     * @return number of predicates that failed during this pass.
     */
    std::uint64_t runFullAudit() { return auditor_.runAll(); }

    const AuditReport &report() const { return auditor_.report(); }

    /** Remove the installed hooks (idempotent). */
    void detach();

  private:
    sim::Simulator &sim_;
    emmc::EmmcDevice &device_;
    Auditor auditor_;
    /** Simulator hook handle; 0 when not attached. */
    sim::Simulator::HookId simHook_ = 0;
    bool attachedDevice_ = false;
    bool attachedFtl_ = false;
};

/**
 * One-shot convenience: audit @p device and @p simulator once with
 * the standard checkers and return the report.
 */
AuditReport auditNow(const sim::Simulator &simulator,
                     const emmc::EmmcDevice &device);

} // namespace emmcsim::check

#endif // EMMCSIM_CHECK_AUDIT_HH
