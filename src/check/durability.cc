#include "check/durability.hh"

#include "ftl/ftl.hh"
#include "ftl/mapping.hh"
#include "sim/logging.hh"

namespace emmcsim::check {

WriteDurabilityLedger::WriteDurabilityLedger(std::uint64_t logical_units,
                                             bool write_through)
    : writeThrough_(write_through), state_(logical_units, 0)
{
}

void
WriteDurabilityLedger::noteAcked(flash::Lpn first, std::uint32_t n)
{
    for (std::uint32_t i = 0; i < n; ++i) {
        const auto u = static_cast<std::uint64_t>((first + i).value());
        EMMCSIM_ASSERT(u < state_.size(),
                       "acked write beyond the ledger's capacity");
        state_[u] |= writeThrough_ ? kRequired : kPending;
    }
}

void
WriteDurabilityLedger::noteFlush()
{
    for (std::uint8_t &s : state_) {
        if (s & kPending)
            s = kRequired;
    }
}

void
WriteDurabilityLedger::notePowerLoss()
{
    for (std::uint8_t &s : state_)
        s &= static_cast<std::uint8_t>(~kPending);
}

std::uint64_t
WriteDurabilityLedger::requiredCount() const
{
    std::uint64_t n = 0;
    for (std::uint8_t s : state_) {
        if (s & kRequired)
            ++n;
    }
    return n;
}

void
WriteDurabilityLedger::verify(const ftl::Ftl &ftl,
                              CheckContext &ctx) const
{
    const ftl::PageMap &map = ftl.map();
    EMMCSIM_ASSERT(map.logicalUnits() == state_.size(),
                   "ledger sized for a different device");
    for (std::uint64_t u = 0; u < state_.size(); ++u) {
        if (!(state_[u] & kRequired))
            continue;
        const flash::Lpn lpn{static_cast<std::int64_t>(u)};
        if (map.lookup(lpn).mapped())
            ctx.pass();
        else
            ctx.fail("acknowledged durable write to lpn " +
                     std::to_string(u) +
                     " is unmapped after recovery (lost write)");
    }
}

} // namespace emmcsim::check
