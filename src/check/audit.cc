#include "check/audit.hh"

#include <utility>

#include "emmc/device.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

namespace emmcsim::check {

std::uint64_t
AuditReport::totalChecks() const
{
    std::uint64_t n = 0;
    for (const CheckerSummary &c : checkers)
        n += c.checksRun;
    return n;
}

std::uint64_t
AuditReport::totalViolations() const
{
    std::uint64_t n = 0;
    for (const CheckerSummary &c : checkers)
        n += c.failures;
    return n;
}

void
Auditor::addChecker(std::string name, Checker fn)
{
    EMMCSIM_ASSERT(fn != nullptr, "null checker registered");
    CheckerSummary summary;
    summary.name = name;
    report_.checkers.push_back(std::move(summary));
    checkers_.push_back(Named{std::move(name), std::move(fn)});
}

std::uint64_t
Auditor::runAll()
{
    std::uint64_t failed = 0;
    for (std::size_t i = 0; i < checkers_.size(); ++i) {
        CheckContext ctx(checkers_[i].name);
        checkers_[i].fn(ctx);

        CheckerSummary &summary = report_.checkers[i];
        summary.checksRun += ctx.checksRun();
        summary.failures += ctx.failures();
        for (const std::string &v : ctx.violations()) {
            if (summary.violations.size() >= CheckContext::kMaxRecorded)
                break;
            summary.violations.push_back(v);
        }
        failed += ctx.failures();
    }
    ++report_.passes;
    return failed;
}

void
registerDeviceCheckers(Auditor &auditor, const emmc::EmmcDevice &device)
{
    auditor.addChecker("ftl.mapping-bijection",
                       [&device](CheckContext &ctx) {
                           checkMappingBijection(device.ftl(), ctx);
                       });
    auditor.addChecker("ftl.unit-conservation",
                       [&device](CheckContext &ctx) {
                           checkUnitConservation(device.ftl(), ctx);
                       });
    auditor.addChecker("flash.pool-accounting",
                       [&device](CheckContext &ctx) {
                           checkArrayAccounting(device.array(), ctx);
                       });
    auditor.addChecker("emmc.request-lifecycle",
                       [&device](CheckContext &ctx) {
                           checkDeviceLifecycle(device, ctx);
                       });
    auditor.addChecker("emmc.phase-conservation",
                       [&device](CheckContext &ctx) {
                           checkPhaseConservation(device, ctx);
                       });
    auditor.addChecker("flash.retired-blocks",
                       [&device](CheckContext &ctx) {
                           checkRetiredBlocks(device.ftl(), ctx);
                       });
    auditor.addChecker("ftl.spare-accounting",
                       [&device](CheckContext &ctx) {
                           checkSpareAccounting(device.ftl(), ctx);
                       });
    auditor.addChecker("ftl.journal-accounting",
                       [&device](CheckContext &ctx) {
                           checkJournalAccounting(device.ftl(), ctx);
                       });
    auditor.addChecker("ftl.pageseq-consistency",
                       [&device](CheckContext &ctx) {
                           checkPageSeqConsistency(device.ftl(), ctx);
                       });
}

void
registerSimulatorCheckers(Auditor &auditor,
                          const sim::Simulator &simulator)
{
    auditor.addChecker("sim.event-queue",
                       [&simulator](CheckContext &ctx) {
                           checkEventQueue(simulator, ctx);
                       });
}

DeviceAuditor::DeviceAuditor(sim::Simulator &simulator,
                             emmc::EmmcDevice &device,
                             const AuditOptions &opts)
    : sim_(simulator), device_(device)
{
    registerSimulatorCheckers(auditor_, sim_);
    registerDeviceCheckers(auditor_, device_);

    if (opts.everyEvents > 0) {
        simHook_ = sim_.addPostEventHook(
            [this](const sim::Simulator &) { auditor_.runAll(); },
            opts.everyEvents);
    }
    if (opts.onCommandFinish) {
        device_.setAuditHook(
            [this](const emmc::EmmcDevice &) { auditor_.runAll(); });
        attachedDevice_ = true;
    }
    if (opts.onFtlMutation) {
        device_.ftl().setAuditHook(
            [this](const ftl::Ftl &) { auditor_.runAll(); });
        attachedFtl_ = true;
    }
}

DeviceAuditor::~DeviceAuditor()
{
    detach();
}

void
DeviceAuditor::detach()
{
    if (simHook_ != 0) {
        sim_.removePostEventHook(simHook_);
        simHook_ = 0;
    }
    if (attachedDevice_) {
        device_.setAuditHook(nullptr);
        attachedDevice_ = false;
    }
    if (attachedFtl_) {
        device_.ftl().setAuditHook(nullptr);
        attachedFtl_ = false;
    }
}

AuditReport
auditNow(const sim::Simulator &simulator, const emmc::EmmcDevice &device)
{
    Auditor auditor;
    registerSimulatorCheckers(auditor, simulator);
    registerDeviceCheckers(auditor, device);
    auditor.runAll();
    return auditor.report();
}

} // namespace emmcsim::check
