#include "check/invariants.hh"

#include <utility>

#include "emmc/device.hh"
#include "flash/array.hh"
#include "flash/pool.hh"
#include "ftl/ftl.hh"
#include "ftl/mapping.hh"
#include "sim/simulator.hh"
#include "trace/trace.hh"

namespace emmcsim::check {

CheckContext::CheckContext(std::string checker)
    : checker_(std::move(checker))
{
}

void
CheckContext::check(bool ok, const std::string &detail)
{
    if (ok)
        pass();
    else
        fail(detail);
}

void
CheckContext::fail(const std::string &detail)
{
    ++checksRun_;
    ++failures_;
    if (violations_.size() < kMaxRecorded)
        violations_.push_back(detail);
}

void
checkMappingBijection(const ftl::Ftl &ftl, CheckContext &ctx)
{
    const ftl::PageMap &map = ftl.map();
    const flash::FlashArray &array = ftl.array();
    const flash::Geometry &geom = array.geometry();
    const auto planes = geom.planeCount();
    const auto pool_count = static_cast<std::uint32_t>(geom.pools.size());

    const auto units =
        static_cast<std::int64_t>(map.logicalUnits());
    for (flash::Lpn lpn{0}; lpn.value() < units; ++lpn) {
        const ftl::MapEntry &e = map.lookup(lpn);
        if (!e.mapped()) {
            ctx.pass();
            continue;
        }
        const auto plane = static_cast<std::uint32_t>(e.planeLinear);
        if (plane >= planes || e.pool >= pool_count) {
            ctx.fail("lpn " + std::to_string(lpn.value()) +
                     " maps outside the array (plane " +
                     std::to_string(plane) + ", pool " +
                     std::to_string(e.pool) + ")");
            continue;
        }
        const flash::BlockPool &pool = array.plane(plane).pool(e.pool);
        if (e.ppn.value() >= pool.pageCount() ||
            e.unit >= pool.unitsPerPage()) {
            ctx.fail("lpn " + std::to_string(lpn.value()) +
                     " maps outside its pool (ppn " +
                     std::to_string(e.ppn.value()) + ", unit " +
                     std::to_string(e.unit) + ")");
            continue;
        }
        if (!pool.unitValid(e.ppn, e.unit)) {
            ctx.fail("lpn " + std::to_string(lpn.value()) +
                     " maps to a stale unit (plane " +
                     std::to_string(plane) + ", pool " +
                     std::to_string(e.pool) + ", ppn " +
                     std::to_string(e.ppn.value()) + ", unit " +
                     std::to_string(e.unit) + ")");
            continue;
        }
        const flash::Lpn stored = pool.lpnAt(e.ppn, e.unit);
        if (stored != static_cast<flash::Lpn>(lpn)) {
            ctx.fail("lpn " + std::to_string(lpn.value()) +
                     " maps to a unit holding lpn " +
                     std::to_string(stored.value()));
            continue;
        }
        ctx.pass();
    }
}

void
checkUnitConservation(const ftl::Ftl &ftl, CheckContext &ctx)
{
    const flash::FlashArray &array = ftl.array();
    const flash::Geometry &geom = array.geometry();

    std::uint64_t valid_units = 0;
    for (std::uint32_t pl = 0; pl < geom.planeCount(); ++pl) {
        for (std::size_t k = 0; k < geom.pools.size(); ++k)
            valid_units += array.plane(pl).pool(k).validUnitCount();
    }
    ctx.check(valid_units == ftl.map().mappedCount(),
              "unit conservation: " + std::to_string(valid_units) +
                  " valid physical units vs " +
                  std::to_string(ftl.map().mappedCount()) +
                  " mapped logical units");
}

void
checkPoolAccounting(const flash::BlockPool &pool,
                    const std::string &label, CheckContext &ctx)
{
    const std::uint32_t ppb = pool.pagesPerBlock();
    const std::uint32_t upp = pool.unitsPerPage();
    const std::int32_t active = pool.activeBlock();

    std::uint32_t free_flags = 0;
    std::uint64_t valid_sum = 0;
    for (std::uint32_t b = 0; b < pool.blockCount(); ++b) {
        const flash::BlockId bid{b};
        const bool is_free = pool.blockFree(bid);
        if (is_free)
            ++free_flags;
        const std::uint32_t wp = pool.writtenPages(bid);
        if (wp > ppb)
            ctx.fail(label + ": block " + std::to_string(b) +
                     " write pointer " + std::to_string(wp) +
                     " beyond pages-per-block");
        else
            ctx.pass();

        const std::uint32_t block_valid = pool.validUnitsInBlock(bid);
        valid_sum += block_valid;
        if (is_free && (wp != 0 || block_valid != 0)) {
            ctx.fail(label + ": free block " + std::to_string(b) +
                     " still holds data (" + std::to_string(wp) +
                     " written pages, " + std::to_string(block_valid) +
                     " valid units)");
        } else {
            ctx.pass();
        }

        // Re-derive the block's valid-unit count from per-page state.
        std::uint32_t derived = 0;
        bool beyond_wp = false;
        bool lpn_bad = false;
        for (std::uint32_t p = 0; p < ppb; ++p) {
            const flash::Ppn ppn = units::blockFirstPage(bid, ppb) + p;
            const std::uint32_t v = pool.validUnitsInPage(ppn);
            derived += v;
            if (p >= wp && v != 0)
                beyond_wp = true;
            if (p < wp || v != 0) {
                for (std::uint32_t u = 0; u < upp; ++u) {
                    if (pool.unitValid(ppn, u) &&
                        pool.lpnAt(ppn, u).value() < 0)
                        lpn_bad = true;
                }
            }
        }
        if (derived != block_valid)
            ctx.fail(label + ": block " + std::to_string(b) +
                     " counter says " + std::to_string(block_valid) +
                     " valid units but pages hold " +
                     std::to_string(derived));
        else
            ctx.pass();
        if (beyond_wp)
            ctx.fail(label + ": block " + std::to_string(b) +
                     " has valid units beyond its write pointer");
        else
            ctx.pass();
        if (lpn_bad)
            ctx.fail(label + ": block " + std::to_string(b) +
                     " has a valid unit without a stored lpn");
        else
            ctx.pass();
    }

    ctx.check(free_flags == pool.freeBlockCount(),
              label + ": free-block counter " +
                  std::to_string(pool.freeBlockCount()) +
                  " disagrees with " + std::to_string(free_flags) +
                  " free flags");
    ctx.check(valid_sum == pool.validUnitCount(),
              label + ": pool valid-unit counter " +
                  std::to_string(pool.validUnitCount()) +
                  " disagrees with per-block sum " +
                  std::to_string(valid_sum));

    if (active >= 0) {
        const auto b = static_cast<std::uint32_t>(active);
        ctx.check(b < pool.blockCount(),
                  label + ": active block out of range");
        if (b < pool.blockCount())
            ctx.check(!pool.blockFree(flash::BlockId{b}),
                      label + ": active block sits on the free list");
    }
    std::uint64_t expect_free =
        static_cast<std::uint64_t>(pool.freeBlockCount()) * ppb;
    if (active >= 0 &&
        static_cast<std::uint32_t>(active) < pool.blockCount()) {
        expect_free += ppb - pool.writtenPages(flash::BlockId{
                                 static_cast<std::uint32_t>(active)});
    }
    ctx.check(pool.freePageCount() == expect_free,
              label + ": freePageCount " +
                  std::to_string(pool.freePageCount()) +
                  " disagrees with derived " +
                  std::to_string(expect_free));
}

void
checkArrayAccounting(const flash::FlashArray &array, CheckContext &ctx)
{
    const flash::Geometry &geom = array.geometry();
    for (std::uint32_t pl = 0; pl < geom.planeCount(); ++pl) {
        for (std::size_t k = 0; k < geom.pools.size(); ++k) {
            checkPoolAccounting(array.plane(pl).pool(k),
                                "plane " + std::to_string(pl) +
                                    " pool " + std::to_string(k),
                                ctx);
        }
    }
}

void
checkEventQueue(const sim::Simulator &simulator, CheckContext &ctx)
{
    const sim::EventQueue &q = simulator.events();

    std::vector<std::string> violations;
    const std::uint64_t run = q.auditInvariants(violations);
    // auditInvariants counts every predicate; re-split into pass/fail.
    ctx.pass(run - violations.size());
    for (const std::string &v : violations)
        ctx.fail(v);

    const sim::Time next = q.nextTime();
    ctx.check(next == sim::kTimeNever || next >= simulator.now(),
              "simulator clock passed the next pending event");
    ctx.check(simulator.executedCount() + q.size() <=
                  q.scheduledCount(),
              "executed + pending events exceed ever-scheduled count");

    // Generation-ledger arena accounting: every slot is live, free,
    // or the one currently firing (audits may run inside an action);
    // the high-water mark bounds the arena, and the arena is bounded
    // by peak-live events (slot recycling), not lifetime events.
    ctx.check(q.size() + q.freeSlots() + q.inFlightSlots() ==
                  q.arenaSlots(),
              "event arena: live + free slots do not cover the arena");
    ctx.check(q.arenaHighWater() <= q.arenaSlots(),
              "event arena: high-water mark exceeds the arena");
    ctx.check(q.arenaSlots() <= q.scheduledCount(),
              "event arena: more slots than events ever scheduled");

    // Two-tier coverage: every live event holds exactly one pending
    // entry somewhere — wheel buckets, overflow heap, the staged
    // sorted run, or the unfired tail of an in-flight dispatch
    // batch — and the only extra entries are the lazily deleted dead
    // ones. (auditInvariants walks the tiers entry by entry; this is
    // the cheap closed-form cross-check over the public counters.)
    ctx.check(q.wheelOccupancy() + q.overflowSize() +
                      q.stagedRunEntries() + q.batchTailEntries() ==
                  q.size() + q.deadHeapEntries(),
              "event queue: tier occupancy does not cover live + "
              "dead entries");
    ctx.check(q.wheelTuned() || q.wheelOccupancy() == 0,
              "event queue: untuned wheel holds entries");
    ctx.check(q.wheelScheduled() + q.overflowScheduled() <=
                  q.scheduledCount(),
              "event queue: tier schedule counters exceed the "
              "ever-scheduled count");
    ctx.check(q.batchedEvents() <= simulator.executedCount(),
              "event queue: more batched events than were executed");
}

void
checkDeviceLifecycle(const emmc::EmmcDevice &device, CheckContext &ctx)
{
    const emmc::DeviceStats &st = device.stats();

    ctx.check(st.readRequests + st.writeRequests == st.requests,
              "read + write request counters do not sum to total");
    ctx.check(st.noWaitRequests <= st.requests,
              "more NoWait requests than requests");
    ctx.check(st.responseMs.count() <= st.requests,
              "more completions than submissions");
    ctx.check(st.serviceMs.count() == st.responseMs.count() &&
                  st.waitMs.count() == st.responseMs.count(),
              "per-request latency series diverged in length");
    ctx.check(st.queueDepthAtArrival.count() == st.requests,
              "queue-depth series missed an arrival");
    ctx.check(st.busyTime >= 0, "negative device busy time");
    ctx.check(device.busy() || device.queueDepth() == 0,
              "idle device holds queued requests");
}

void
checkPhaseConservation(const emmc::EmmcDevice &device, CheckContext &ctx)
{
    const emmc::DeviceStats &st = device.stats();
    ctx.check(st.ledgerViolations == 0,
              std::to_string(st.ledgerViolations) +
                  " completed request(s) whose phase ledger does not "
                  "sum to finish - arrival");
}

void
checkRetiredBlocks(const ftl::Ftl &ftl, CheckContext &ctx)
{
    const flash::FlashArray &array = ftl.array();
    const flash::Geometry &geom = array.geometry();
    for (std::uint32_t pl = 0; pl < geom.planeCount(); ++pl) {
        for (std::size_t k = 0; k < geom.pools.size(); ++k) {
            const flash::BlockPool &pool = array.plane(pl).pool(k);
            const std::string label = "plane " + std::to_string(pl) +
                                      " pool " + std::to_string(k);
            std::uint32_t flagged = 0;
            for (std::uint32_t b = 0; b < pool.blockCount(); ++b) {
                const flash::BlockId bid{b};
                if (!pool.blockRetired(bid)) {
                    ctx.pass();
                    continue;
                }
                ++flagged;
                const std::string where =
                    label + ": retired block " + std::to_string(b);
                ctx.check(!pool.blockFree(bid),
                          where + " sits on the free list");
                ctx.check(pool.activeBlock() !=
                              static_cast<std::int32_t>(b),
                          where + " is the active block");
                ctx.check(pool.writtenPages(bid) ==
                              pool.pagesPerBlock(),
                          where + " is not sealed (allocatable pages "
                                  "remain)");
                ctx.check(pool.validUnitsInBlock(bid) == 0,
                          where + " still holds valid data");
                ctx.check(!pool.blockSuspect(bid),
                          where + " is still flagged suspect");
            }
            ctx.check(flagged == pool.retiredBlockCount(),
                      label + ": retired counter " +
                          std::to_string(pool.retiredBlockCount()) +
                          " disagrees with " + std::to_string(flagged) +
                          " retired flags");
        }
    }
}

void
checkSpareAccounting(const ftl::Ftl &ftl, CheckContext &ctx)
{
    const ftl::BadBlockManager &bbm = ftl.badBlocks();
    const flash::FlashArray &array = ftl.array();
    const flash::Geometry &geom = array.geometry();

    std::uint64_t pool_total = 0;
    bool any_exhausted = false;
    for (std::uint32_t pl = 0; pl < geom.planeCount(); ++pl) {
        for (std::uint32_t k = 0;
             k < static_cast<std::uint32_t>(geom.pools.size()); ++k) {
            const std::uint32_t in_pool =
                array.plane(pl).pool(k).retiredBlockCount();
            const std::uint32_t in_bbm = bbm.retiredCount(pl, k);
            pool_total += in_pool;
            ctx.check(in_pool == in_bbm,
                      "plane " + std::to_string(pl) + " pool " +
                          std::to_string(k) + ": pool retired " +
                          std::to_string(in_pool) +
                          " blocks but the bad-block table recorded " +
                          std::to_string(in_bbm));
            if (in_bbm >= bbm.config().spareBlocksPerPlanePool)
                any_exhausted = true;
        }
    }

    ctx.check(bbm.totalRetired() == pool_total,
              "bad-block table length " +
                  std::to_string(bbm.totalRetired()) +
                  " disagrees with " + std::to_string(pool_total) +
                  " retired blocks across the pools");

    for (const ftl::BadBlockEntry &e : bbm.table()) {
        const bool in_range =
            e.planeLinear < geom.planeCount() &&
            e.pool < geom.pools.size() &&
            e.block <
                array.plane(e.planeLinear).pool(e.pool).blockCount();
        if (!in_range) {
            ctx.fail("bad-block table entry outside the array (plane " +
                     std::to_string(e.planeLinear) + ", pool " +
                     std::to_string(e.pool) + ", block " +
                     std::to_string(e.block) + ")");
            continue;
        }
        ctx.check(array.plane(e.planeLinear)
                      .pool(e.pool)
                      .blockRetired(flash::BlockId{e.block}),
                  "bad-block table names block " +
                      std::to_string(e.block) + " of plane " +
                      std::to_string(e.planeLinear) + " pool " +
                      std::to_string(e.pool) +
                      " which is not retired");
    }

    // Spare exhaustion must imply read-only; the converse holds unless
    // the FTL separately declared space exhaustion.
    if (any_exhausted)
        ctx.check(bbm.readOnly(),
                  "a plane-pool exhausted its spares but the device "
                  "still accepts writes");
    else
        ctx.pass();
    if (bbm.readOnlyCause() == ftl::ReadOnlyCause::SpareExhaustion)
        ctx.check(any_exhausted,
                  "device is read-only for spare exhaustion but no "
                  "plane-pool spent its budget");
    else
        ctx.pass();
}

void
checkJournalAccounting(const ftl::Ftl &ftl, CheckContext &ctx)
{
    const ftl::MetaJournal &j = ftl.journal();
    const ftl::JournalStats &st = j.stats();

    const std::uint64_t records = st.writeRecords + st.relocRecords +
                                  st.trimRecords + st.eraseRecords +
                                  st.retireRecords;
    ctx.check(records == j.seq(),
              "journal: record counters sum to " +
                  std::to_string(records) + " but the sequence is " +
                  std::to_string(j.seq()));
    ctx.check(j.durableSeq() <= j.seq(),
              "journal: durable sequence leads the issued sequence");
    ctx.check(j.seq() - j.durableSeq() == j.openPageRecords(),
              "journal: durable lag " +
                  std::to_string(j.seq() - j.durableSeq()) +
                  " records disagrees with the open page holding " +
                  std::to_string(j.openPageRecords()));
    ctx.check(j.openPageRecords() < j.config().recordsPerPage,
              "journal: open page holds a full page of records "
              "without flushing");

    const std::uint64_t upr = j.config().recordsPerPage;
    const std::uint64_t expect_ckpt =
        (ftl.map().logicalUnits() + upr - 1) / upr;
    ctx.check(j.checkpointPages() == expect_ckpt,
              "journal: checkpoint spans " +
                  std::to_string(j.checkpointPages()) +
                  " pages but the mapping table needs " +
                  std::to_string(expect_ckpt));
}

void
checkPageSeqConsistency(const ftl::Ftl &ftl, CheckContext &ctx)
{
    const ftl::MetaJournal &j = ftl.journal();
    const flash::FlashArray &array = ftl.array();
    const flash::Geometry &geom = array.geometry();

    for (std::uint32_t pl = 0; pl < geom.planeCount(); ++pl) {
        for (std::size_t k = 0; k < geom.pools.size(); ++k) {
            const flash::BlockPool &pool = array.plane(pl).pool(k);
            const std::string label = "plane " + std::to_string(pl) +
                                      " pool " + std::to_string(k);
            const std::uint32_t ppb = pool.pagesPerBlock();
            for (std::uint64_t p = 0; p < pool.pageCount(); ++p) {
                const flash::Ppn ppn{p};
                const std::uint64_t seq = pool.pageSeq(ppn);
                const std::string where =
                    label + ": page " + std::to_string(p);
                if (seq > j.seq()) {
                    ctx.fail(where + " stamped with sequence " +
                             std::to_string(seq) +
                             " beyond the journal's " +
                             std::to_string(j.seq()));
                    continue;
                }
                if (pool.validUnitsInPage(ppn) > 0 && seq == 0) {
                    ctx.fail(where + " holds valid units but was "
                                     "never journaled");
                    continue;
                }
                if (seq != 0) {
                    const flash::BlockId bid =
                        units::pageToBlock(ppn, ppb);
                    if (units::pageIndexInBlock(ppn, ppb) >=
                        pool.writtenPages(bid)) {
                        ctx.fail(where + " is stamped beyond its "
                                         "block's write pointer");
                        continue;
                    }
                }
                ctx.pass();
            }
        }
    }
}

void
checkTrace(const trace::Trace &trace, std::uint64_t logical_units,
           CheckContext &ctx)
{
    sim::Time prev_arrival = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const trace::TraceRecord &r = trace[i];
        const std::string where =
            "record " + std::to_string(i) + " of \"" + trace.name() +
            "\"";

        if (r.arrival < prev_arrival)
            ctx.fail(where + ": arrival went backwards");
        else
            ctx.pass();
        prev_arrival = r.arrival;

        if (r.sizeBytes.value() == 0 ||
            !units::isUnitAligned(r.sizeBytes))
            ctx.fail(where + ": size is not a positive 4KB multiple");
        else
            ctx.pass();

        if (!units::isUnitAligned(r.lbaSector))
            ctx.fail(where + ": LBA is not 4KB-aligned");
        else
            ctx.pass();

        if (logical_units != 0) {
            const auto first =
                static_cast<std::uint64_t>(r.firstUnit().value());
            if (first + r.sizeUnits() > logical_units)
                ctx.fail(where + ": request past logical capacity");
            else
                ctx.pass();
        }

        if (r.serviceStart != sim::kTimeNever ||
            r.finish != sim::kTimeNever) {
            if (!r.replayed())
                ctx.fail(where + ": half-filled replay timestamps");
            else if (r.arrival > r.serviceStart ||
                     r.serviceStart > r.finish)
                ctx.fail(where + ": BIOtracer timestamps out of order "
                                 "(arrival <= service <= finish)");
            else
                ctx.pass();
        }
    }
}

} // namespace emmcsim::check
