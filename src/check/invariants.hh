/**
 * @file
 * Invariant checkers: cross-layer consistency predicates over the
 * simulator's bookkeeping.
 *
 * Every figure the repo reproduces rests on counters no single module
 * can validate alone: the FTL map and the flash pools must agree on
 * which physical unit holds which logical page, free-space accounting
 * must survive thousands of GC rounds, and the event queue must never
 * run time backwards. Each checker here re-derives one such invariant
 * from first principles (raw per-unit state, not the cached counters)
 * and reports every disagreement. Checkers are pure observers: they
 * never mutate the structures they inspect.
 */

#ifndef EMMCSIM_CHECK_INVARIANTS_HH
#define EMMCSIM_CHECK_INVARIANTS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace emmcsim::sim {
class Simulator;
}
namespace emmcsim::flash {
class BlockPool;
class FlashArray;
}
namespace emmcsim::ftl {
class Ftl;
}
namespace emmcsim::emmc {
class EmmcDevice;
}
namespace emmcsim::trace {
class Trace;
}

namespace emmcsim::check {

/**
 * Collects the outcome of one checker run: how many predicates were
 * evaluated and which failed. Violation descriptions are capped (the
 * counter keeps counting) so a badly corrupted structure cannot flood
 * memory with millions of identical messages.
 */
class CheckContext
{
  public:
    /** @param checker Name of the checker filling this context. */
    explicit CheckContext(std::string checker);

    /** Record one evaluated predicate; keep @p detail when it fails. */
    void check(bool ok, const std::string &detail);

    /**
     * Cheap success path for hot loops: count @p n passed predicates
     * without building any message.
     */
    void pass(std::uint64_t n = 1) { checksRun_ += n; }

    /** Record one failed predicate (counts as run). */
    void fail(const std::string &detail);

    const std::string &checker() const { return checker_; }

    /** Predicates evaluated so far. */
    std::uint64_t checksRun() const { return checksRun_; }

    /** Predicates that failed (may exceed violations().size()). */
    std::uint64_t failures() const { return failures_; }

    /** Recorded failure descriptions (first kMaxRecorded). */
    const std::vector<std::string> &violations() const
    {
        return violations_;
    }

    /** Cap on recorded violation descriptions per context. */
    static constexpr std::size_t kMaxRecorded = 16;

  private:
    std::string checker_;
    std::uint64_t checksRun_ = 0;
    std::uint64_t failures_ = 0;
    std::vector<std::string> violations_;
};

/**
 * LPN -> PPN bijection. Forward: every mapped logical unit must point
 * at a pool unit that is valid and stores exactly that LPN. Reverse
 * (with checkUnitConservation): the number of valid physical units
 * equals the number of mapped logical units, so the forward-checked
 * map is onto and no orphaned valid unit exists.
 */
void checkMappingBijection(const ftl::Ftl &ftl, CheckContext &ctx);

/**
 * Valid/invalid unit-count conservation: the sum of per-pool valid
 * unit counters across the array equals the page map's mapped count.
 * A mismatch means an overwrite or GC relocation lost or duplicated a
 * unit's validity.
 */
void checkUnitConservation(const ftl::Ftl &ftl, CheckContext &ctx);

/**
 * Pool free-page and validity accounting, recomputed from raw
 * per-block state: free-list flags vs the free counter, the derived
 * freePageCount formula, per-block valid sums vs per-page bitmask
 * popcounts vs the pool-wide counter, write pointers in range, no
 * valid unit beyond a block's write pointer, and free blocks holding
 * no data.
 *
 * @param label Prefix for violation messages (e.g. "plane 3 pool 1").
 */
void checkPoolAccounting(const flash::BlockPool &pool,
                         const std::string &label, CheckContext &ctx);

/** checkPoolAccounting over every plane-pool of @p array. */
void checkArrayAccounting(const flash::FlashArray &array,
                          CheckContext &ctx);

/**
 * Event-queue integrity: time monotonicity (nothing pending may fire
 * before the last popped event, the clock never passes the next
 * pending event), live-count conservation against the issued-id
 * ledger, and no stale handles (retired events holding actions).
 */
void checkEventQueue(const sim::Simulator &simulator, CheckContext &ctx);

/**
 * Device request bookkeeping: read/write splits summing to the
 * request counter, completion statistics never exceeding submissions,
 * an idle device holding no queued requests, and non-negative busy
 * time.
 */
void checkDeviceLifecycle(const emmc::EmmcDevice &device,
                          CheckContext &ctx);

/**
 * Latency-attribution conservation: the device increments
 * DeviceStats::ledgerViolations whenever a completed request's phase
 * ledger (emmc/phases.hh) does not sum exactly to finish − arrival.
 * The counter must stay zero — the attribution report and
 * `emmcsim_cli explain` are only trustworthy if every nanosecond of
 * every response time is accounted to exactly one phase.
 */
void checkPhaseConservation(const emmc::EmmcDevice &device,
                            CheckContext &ctx);

/**
 * Retired-block hygiene: every block the pools flag retired is off the
 * free list, not the active block, fully sealed (write pointer at the
 * block end, so the allocator can never hand out a page in it) and
 * holds no valid unit; conversely the pools' retired counters match
 * the per-block flags. Together with the mapping bijection this proves
 * relocation moved every live unit out before retirement.
 */
void checkRetiredBlocks(const ftl::Ftl &ftl, CheckContext &ctx);

/**
 * Spare-pool conservation: the bad-block manager's per-plane-pool
 * retirement counters equal the pools' retired-block counts, the
 * grown-bad-block table length equals the total, every table entry
 * names a block that really is retired, and the read-only transition
 * fires exactly when some plane-pool exhausted its spare budget (or
 * space exhaustion was declared).
 */
void checkSpareAccounting(const ftl::Ftl &ftl, CheckContext &ctx);

/**
 * Metadata-journal accounting (DESIGN.md §13): record counters sum to
 * the sequence number, the durable sequence never leads the issued
 * one and trails it by exactly the open-page record count, the open
 * page never holds a full page's worth of records, and the checkpoint
 * size matches the mapping-table footprint. These hold at every
 * instant — including immediately after power-up recovery, which must
 * leave the journal freshly checkpointed.
 */
void checkJournalAccounting(const ftl::Ftl &ftl, CheckContext &ctx);

/**
 * Out-of-band page-sequence consistency: every page holding a valid
 * unit carries a nonzero program-sequence stamp (it passed through
 * the journal gateway), no stamp exceeds the journal's issued
 * sequence, and stamped pages lie below their block's write pointer.
 * Recovery's winner election depends on exactly these properties.
 */
void checkPageSeqConsistency(const ftl::Ftl &ftl, CheckContext &ctx);

/**
 * Trace record validation: monotone non-decreasing arrivals, nonzero
 * 4KB-multiple sizes, unit-aligned LBAs (in range of the device when
 * @p logical_units is nonzero), and — for replayed records — the
 * BIOtracer step ordering arrival <= serviceStart <= finish.
 *
 * @param logical_units Device capacity in 4KB units; 0 skips the
 *        range check (traces may legitimately exceed one device and
 *        get folded by the replayer).
 */
void checkTrace(const trace::Trace &trace, std::uint64_t logical_units,
                CheckContext &ctx);

} // namespace emmcsim::check

#endif // EMMCSIM_CHECK_INVARIANTS_HH
