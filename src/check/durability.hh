/**
 * @file
 * WriteDurabilityLedger: host-side model of which writes must survive
 * a sudden power-off (DESIGN.md §13).
 *
 * The ledger shadows the acknowledgment stream the device emits. On a
 * write-through device (no RAM buffer) an acknowledgment implies the
 * data reached flash, so every acked write is immediately *required*:
 * after any crash and recovery, the logical page must still be
 * mapped. With a write-back RAM buffer an acknowledgment only means
 * the data reached RAM; such writes stay *pending* until a cache
 * flush promotes them, and a power cut legally forgets them (the gap
 * the paper's flush barriers exist to close) — unless an earlier
 * flushed write left durable data under the same LPN, which recovery
 * must still resurface.
 *
 * The SPO torture test replays with crashes injected, then calls
 * verify() against the recovered FTL: any required LPN that recovery
 * left unmapped is an acknowledged-write loss, the exact failure the
 * journal/OOB-scan protocol exists to rule out.
 */

#ifndef EMMCSIM_CHECK_DURABILITY_HH
#define EMMCSIM_CHECK_DURABILITY_HH

#include <cstdint>
#include <vector>

#include "check/invariants.hh"
#include "flash/pool.hh"

namespace emmcsim::check {

/** Tracks acknowledged writes and the durability owed to each. */
class WriteDurabilityLedger
{
  public:
    /**
     * @param logical_units Device capacity in 4KB units.
     * @param write_through True when the device has no RAM buffer, so
     *        acknowledgment implies flash durability.
     */
    WriteDurabilityLedger(std::uint64_t logical_units,
                          bool write_through);

    /** Record an acknowledged write of @p n units at @p first. */
    void noteAcked(flash::Lpn first, std::uint32_t n);

    /** A cache-flush barrier completed: pending writes become owed. */
    void noteFlush();

    /**
     * Power was cut: pending (RAM-only) acknowledgments are forgiven.
     * LPNs with an earlier flushed write stay required — the old
     * durable copy must win recovery's scan.
     */
    void notePowerLoss();

    /** LPNs currently owed durability. */
    std::uint64_t requiredCount() const;

    /**
     * Check every owed LPN is mapped by @p ftl (post-recovery): one
     * predicate per required LPN, failing with the LPN on loss.
     */
    void verify(const ftl::Ftl &ftl, CheckContext &ctx) const;

  private:
    enum : std::uint8_t
    {
        kPending = 1,  ///< acked into volatile RAM only
        kRequired = 2, ///< acked and durable; must survive any crash
    };
    bool writeThrough_;
    std::vector<std::uint8_t> state_; ///< flag set per LPN
};

} // namespace emmcsim::check

#endif // EMMCSIM_CHECK_DURABILITY_HH
