/**
 * @file
 * Latency-attribution phase taxonomy and the per-request phase ledger.
 *
 * Every completed request carries an exact decomposition of its
 * response time (finish − arrival) into the named phases below. The
 * decomposition follows the request's *critical chain*: the sequence
 * of waits and operations whose completion determined the request's
 * finish time. Work that overlapped the chain but did not extend it
 * (e.g. the faster page reads of a multi-page request) is not charged,
 * so the ledger obeys a conservation invariant the audit subsystem
 * enforces per request:
 *
 *     sum over phases == finish − arrival        (exact, integer ns)
 *
 * Requests sharing a packed command each carry the full shared
 * interval (elapsed-time semantics, matching responseMs); the
 * co-request alignment slack is its own phase (PackAlign) so the sum
 * still closes. Filling the ledger is always on — pure integer adds
 * on state the dispatch path already computes, no allocation, no
 * output change — while aggregation and export are opt-in through the
 * observability layer (DESIGN.md §14).
 */

#ifndef EMMCSIM_EMMC_PHASES_HH
#define EMMCSIM_EMMC_PHASES_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "sim/types.hh"

namespace emmcsim::emmc {

/**
 * Response-time phases, in canonical (reporting) order.
 *
 * NandErase and Journal are structurally zero on the host data path
 * in the current model: erases happen inside garbage collection
 * (charged wholesale as GcWait/GcStall) or at mount time (surfaced
 * through the mount attribution section), and the metadata journal
 * piggybacks on data pages without charging extra flash time
 * (DESIGN.md §13.2). They stay in the taxonomy so the schema is
 * stable when either acquires a cost of its own.
 */
enum class Phase : std::uint8_t
{
    /** Waiting behind earlier commands (arrival → dispatch). */
    QueueWait = 0,
    /** Dispatch held by power-up recovery (mount) occupancy. */
    MountStall,
    /** Dispatch held by idle-GC flash occupancy. */
    GcWait,
    /** Low-power exit warm-up charged to this command. */
    Wakeup,
    /** Fixed per-command protocol overhead. */
    CmdOverhead,
    /** Blocking garbage collection inside the command (free-page). */
    GcStall,
    /** Channel contention before the data/command transfer. */
    BusWait,
    /** Channel occupancy: command cycles + data transfer. */
    BusXfer,
    /** Array-unit (die/plane) contention before the cell op. */
    NandWait,
    /** Cell sensing time of the deciding page read (base sense). */
    NandRead,
    /** Cell program time of the deciding page program. */
    NandProgram,
    /** Cell erase time (zero on the host data path; see above). */
    NandErase,
    /** Extra sensing charged by the read-retry ladder. */
    Retry,
    /** Program-failure relocation re-issues on the critical chain. */
    Reloc,
    /** RAM-buffer eviction/flush write-back (charged wholesale). */
    BufferFlush,
    /** Journal/checkpoint overhead (zero by design; see above). */
    Journal,
    /** Waiting for packed co-requests after own flash work finished. */
    PackAlign,
};

/** Number of phases in the taxonomy (== highest enumerator + 1). */
inline constexpr std::size_t kPhaseCount = 17;

/** Stable snake_case phase name used across reports and traces. */
inline const char *
phaseName(Phase p)
{
    static constexpr const char *names[kPhaseCount] = {
        "queue_wait", "mount_stall", "gc_wait",      "wakeup",
        "cmd_overhead", "gc_stall",  "bus_wait",     "bus_xfer",
        "nand_wait",  "nand_read",   "nand_program", "nand_erase",
        "retry",      "reloc",       "buffer_flush", "journal",
        "pack_align",
    };
    return names[static_cast<std::size_t>(p)];
}

/** Fixed-size per-request phase account (integer nanoseconds). */
struct PhaseLedger
{
    std::array<sim::Time, kPhaseCount> ns{};

    void
    add(Phase p, sim::Time t)
    {
        ns[static_cast<std::size_t>(p)] += t;
    }

    sim::Time
    get(Phase p) const
    {
        return ns[static_cast<std::size_t>(p)];
    }

    /** Sum of all phases; conservation demands == finish − arrival. */
    sim::Time
    total() const
    {
        sim::Time sum = 0;
        for (sim::Time t : ns)
            sum += t;
        return sum;
    }
};

static_assert(std::is_trivially_copyable_v<PhaseLedger>,
              "the ledger rides the completion event by value");

/**
 * Phases in the temporal order they occur on the service side of a
 * @p write request's critical chain (reads sense before transferring,
 * writes transfer before programming). Used by the Chrome-trace
 * exporter to tile [serviceStart, finish] with phase sub-spans; the
 * queue side [arrival, serviceStart] is always QueueWait, MountStall,
 * GcWait in that order.
 */
inline const std::array<Phase, 14> &
serviceChainOrder(bool write)
{
    static constexpr std::array<Phase, 14> write_order = {
        Phase::Wakeup,   Phase::CmdOverhead, Phase::GcStall,
        Phase::BusWait,  Phase::BusXfer,     Phase::NandWait,
        Phase::NandProgram, Phase::NandErase, Phase::NandRead,
        Phase::Retry,    Phase::Reloc,       Phase::BufferFlush,
        Phase::Journal,  Phase::PackAlign,
    };
    static constexpr std::array<Phase, 14> read_order = {
        Phase::Wakeup,   Phase::CmdOverhead, Phase::GcStall,
        Phase::NandWait, Phase::NandRead,    Phase::Retry,
        Phase::NandErase, Phase::NandProgram, Phase::BusWait,
        Phase::BusXfer,  Phase::Reloc,       Phase::BufferFlush,
        Phase::Journal,  Phase::PackAlign,
    };
    return write ? write_order : read_order;
}

} // namespace emmcsim::emmc

#endif // EMMCSIM_EMMC_PHASES_HH
