#include "emmc/ram_buffer.hh"

#include <algorithm>
#include <iterator>

#include "sim/logging.hh"

namespace emmcsim::emmc {

RamBuffer::RamBuffer(const BufferConfig &cfg) : cfg_(cfg)
{
    if (cfg_.enabled)
        EMMCSIM_ASSERT(cfg_.capacityUnits > 0, "zero-capacity buffer");
}

void
RamBuffer::touch(flash::Lpn lpn, bool dirty, std::vector<flash::Lpn> &out)
{
    auto it = map_.find(lpn);
    if (it != map_.end()) {
        it->second->dirty = it->second->dirty || dirty;
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    lru_.push_front(Entry{lpn, dirty});
    map_[lpn] = lru_.begin();
    while (map_.size() > cfg_.capacityUnits) {
        Entry victim = lru_.back();
        lru_.pop_back();
        map_.erase(victim.lpn);
        if (victim.dirty) {
            out.push_back(victim.lpn);
            ++stats_.evictedDirty;
        }
    }
}

void
RamBuffer::runsFromUnits(std::vector<flash::Lpn> &units,
                         std::vector<UnitRun> &runs)
{
    if (units.empty())
        return;
    std::sort(units.begin(), units.end());
    UnitRun cur{units.front(), 1};
    for (std::size_t i = 1; i < units.size(); ++i) {
        if (units[i] == cur.first + cur.count) {
            ++cur.count;
        } else {
            runs.push_back(cur);
            cur = UnitRun{units[i], 1};
        }
    }
    runs.push_back(cur);
}

void
RamBuffer::write(flash::Lpn first, std::uint32_t n,
                 std::vector<UnitRun> &evicted)
{
    EMMCSIM_ASSERT(cfg_.enabled, "write to disabled buffer");
    std::vector<flash::Lpn> out;
    for (std::uint32_t i = 0; i < n; ++i) {
        ++stats_.writeLookups;
        if (map_.count(first + i))
            ++stats_.writeHits;
        touch(first + i, true, out);
    }
    runsFromUnits(out, evicted);
}

std::uint32_t
RamBuffer::read(flash::Lpn first, std::uint32_t n,
                std::vector<UnitRun> &misses,
                std::vector<UnitRun> &evicted)
{
    EMMCSIM_ASSERT(cfg_.enabled, "read from disabled buffer");
    std::vector<flash::Lpn> miss_units;
    std::uint32_t hits = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
        ++stats_.readLookups;
        auto it = map_.find(first + i);
        if (it != map_.end()) {
            ++stats_.readHits;
            ++hits;
            lru_.splice(lru_.begin(), lru_, it->second);
        } else {
            miss_units.push_back(first + i);
        }
    }
    runsFromUnits(miss_units, misses);
    if (cfg_.readAllocate) {
        std::vector<flash::Lpn> out;
        for (flash::Lpn lpn : miss_units)
            touch(lpn, false, out);
        runsFromUnits(out, evicted);
    }
    return hits;
}

void
RamBuffer::flushAll(std::vector<UnitRun> &evicted)
{
    std::vector<flash::Lpn> dirty;
    for (const Entry &e : lru_) {
        if (e.dirty)
            dirty.push_back(e.lpn);
    }
    lru_.clear();
    map_.clear();
    runsFromUnits(dirty, evicted);
}

std::uint64_t
RamBuffer::discardAll()
{
    std::uint64_t lost = 0;
    for (const Entry &e : lru_) {
        if (e.dirty)
            ++lost;
    }
    lru_.clear();
    map_.clear();
    return lost;
}

void
RamBuffer::save(core::BinWriter &w) const
{
    w.pod(stats_);
    w.u64(lru_.size());
    for (const Entry &e : lru_) {
        w.pod(e.lpn);
        w.b(e.dirty);
    }
}

void
RamBuffer::load(core::BinReader &r)
{
    r.pod(stats_);
    lru_.clear();
    map_.clear();
    const std::uint64_t n = r.u64();
    if (n > cfg_.capacityUnits || n > r.remaining()) {
        r.fail();
        return;
    }
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
        Entry e{};
        r.pod(e.lpn);
        e.dirty = r.b();
        lru_.push_back(e);
        map_[e.lpn] = std::prev(lru_.end());
    }
}

} // namespace emmcsim::emmc
