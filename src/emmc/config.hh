/**
 * @file
 * EmmcConfig: the full configuration of a simulated eMMC device, plus
 * the Table V geometry/timing presets shared by the 4PS, 8PS and HPS
 * schemes.
 *
 * Table V (all three devices, 32 GB raw):
 *   - channel x chip x die x plane = 2 x 1 x 2 x 2, 1024 pages/block
 *   - 4PS: 1024 4KB-page blocks per plane (160us read / 1385us program)
 *   - 8PS:  512 8KB-page blocks per plane (244us read / 1491us program)
 *   - HPS:  512 4KB-page blocks + 256 8KB-page blocks per plane
 *   - erase 3800us everywhere
 */

#ifndef EMMCSIM_EMMC_CONFIG_HH
#define EMMCSIM_EMMC_CONFIG_HH

#include <string>

#include "emmc/packing.hh"
#include "emmc/power.hh"
#include "emmc/ram_buffer.hh"
#include "fault/injector.hh"
#include "flash/geometry.hh"
#include "flash/timing.hh"
#include "ftl/ftl.hh"

namespace emmcsim::emmc {

/** Everything needed to instantiate an EmmcDevice. */
struct EmmcConfig
{
    /** Scheme label for reports ("4PS", "8PS", "HPS"). */
    std::string name = "4PS";

    flash::Geometry geometry;
    flash::Timing timing;
    ftl::FtlConfig ftl;
    PackingConfig packing;
    PowerConfig power;
    BufferConfig buffer;
    /** NAND fault injection (disabled by default: zero-overhead). */
    fault::FaultConfig fault;

    /**
     * Fixed per-command overhead: driver submission, controller
     * firmware, command/response cycles on the eMMC interface. Paid
     * once per (possibly packed) command.
     */
    sim::Time commandOverhead = sim::microseconds(100);

    /**
     * Plane-level array parallelism (multi-plane commands). Off by
     * default: a cost-constrained eMMC serializes array operations per
     * die (Implication 1: sub-requests of a large request cannot all
     * proceed in parallel); enabling it is the A5 ablation.
     */
    bool multiplane = false;

    /** Run garbage collection during idle gaps (Implication 2). */
    bool idleGcEnabled = false;
    /** Idle time before idle GC starts. */
    sim::Time idleGcDelay = sim::milliseconds(50);
    /**
     * Gap between consecutive incremental idle-GC steps. Each step is
     * a few page relocations; spacing the steps keeps the device
     * responsive to arrivals while it reclaims in the background.
     */
    sim::Time idleGcStepGap = sim::milliseconds(2);
};

/** @name Table V presets. @{ */

/** Pure 4KB-page device (Table V column 1). */
EmmcConfig make4psConfig();

/** Pure 8KB-page device (Table V column 2). */
EmmcConfig make8psConfig();

/**
 * Hybrid-page-size device (Table V column 3): pool 0 holds the 4KB
 * blocks, pool 1 the 8KB blocks of every plane (Fig 10).
 */
EmmcConfig makeHpsConfig();

/**
 * HPS with the 4KB pool operated in SLC mode (Implication 5): the
 * same silicon as HPS, but the 512 4KB-page blocks of each plane use
 * only their fast pages — SLC-like latencies for the dominant small
 * requests, at the cost of half that pool's capacity (the device
 * shrinks from 32 GB to 24 GB).
 */
EmmcConfig makeHpsSlcConfig();
/** @} */

/** Pool index of the 4KB blocks in the HPS layout. */
constexpr std::uint32_t kHps4kPool = 0;
/** Pool index of the 8KB blocks in the HPS layout. */
constexpr std::uint32_t kHps8kPool = 1;

} // namespace emmcsim::emmc

#endif // EMMCSIM_EMMC_CONFIG_HH
