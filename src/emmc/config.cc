#include "emmc/config.hh"

namespace emmcsim::emmc {

namespace {

/** The hierarchy shared by every Table V device. */
flash::Geometry
baseGeometry()
{
    flash::Geometry g;
    g.channels = 2;
    g.chipsPerChannel = 1;
    g.diesPerChip = 2;
    g.planesPerDie = 2;
    g.pagesPerBlock = 1024;
    return g;
}

} // namespace

EmmcConfig
make4psConfig()
{
    EmmcConfig c;
    c.name = "4PS";
    c.geometry = baseGeometry();
    c.geometry.pools = {flash::PoolConfig{4096, 1024}};
    c.timing.pools = {flash::Timing::page4k()};
    return c;
}

EmmcConfig
make8psConfig()
{
    EmmcConfig c;
    c.name = "8PS";
    c.geometry = baseGeometry();
    c.geometry.pools = {flash::PoolConfig{8192, 512}};
    c.timing.pools = {flash::Timing::page8k()};
    return c;
}

EmmcConfig
makeHpsConfig()
{
    EmmcConfig c;
    c.name = "HPS";
    c.geometry = baseGeometry();
    c.geometry.pools = {flash::PoolConfig{4096, 512},
                        flash::PoolConfig{8192, 256}};
    c.timing.pools = {flash::Timing::page4k(), flash::Timing::page8k()};
    // Unmapped reads are timed against the 4KB pool by default.
    c.ftl.defaultReadPool = kHps4kPool;
    return c;
}

EmmcConfig
makeHpsSlcConfig()
{
    EmmcConfig c = makeHpsConfig();
    c.name = "HSLC";
    // Same blocks as HPS, but the 4KB pool runs in SLC mode: half the
    // pages per block, SLC latencies.
    c.geometry.pools[kHps4kPool].pagesPerBlockOverride =
        c.geometry.pagesPerBlock / 2;
    c.timing.pools[kHps4kPool] = flash::Timing::page4kSlcMode();
    return c;
}

} // namespace emmcsim::emmc
