#include "emmc/device.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace emmcsim::emmc {

EmmcDevice::EmmcDevice(sim::Simulator &simulator, const EmmcConfig &cfg,
                       std::unique_ptr<ftl::RequestDistributor> distributor)
    : sim_(simulator),
      cfg_(cfg),
      dist_(std::move(distributor)),
      injector_(cfg_.fault),
      array_(cfg_.geometry, cfg_.timing, cfg_.multiplane),
      ftl_(array_, cfg_.ftl),
      packer_(cfg_.packing),
      power_(cfg_.power),
      buffer_(cfg_.buffer)
{
    EMMCSIM_ASSERT(dist_ != nullptr, "device needs a distributor");
    // Size the simulator's calendar-wheel tier from this device's
    // fixed NAND latencies: completions cluster at the pool
    // read/program times and the erase time, so the wheel's bucket
    // width tracks the shortest of them and its window covers the
    // longest (DESIGN §16). Pure perf tuning — pop order (and replay
    // output) is identical to the untuned heap.
    sim::Time shortest = cfg_.timing.eraseLatency;
    sim::Time longest = cfg_.timing.eraseLatency;
    for (const flash::PageTiming &pt : cfg_.timing.pools) {
        shortest = std::min({shortest, pt.readLatency,
                             pt.programLatency});
        longest = std::max({longest, pt.readLatency,
                            pt.programLatency});
    }
    if (shortest > 0 && longest >= shortest)
        sim_.tuneEventHorizon(shortest, longest);
    // Unmapped reads are timed as if the scheme's own split had laid
    // the data out (see Ftl::readUnits).
    ftl_.setPseudoReadDistributor(dist_.get());
    // Only an enabled injector is attached, so a default-configured
    // device runs the exact pre-fault code path (dormant neutrality).
    if (injector_.enabled())
        array_.attachFaultInjector(&injector_);
}

void
EmmcDevice::submit(const IoRequest &request)
{
    EMMCSIM_ASSERT(request.sizeBytes.value() > 0 &&
                       units::isUnitAligned(request.sizeBytes),
                   "request size must be a positive 4KB multiple");
    EMMCSIM_ASSERT(units::isUnitAligned(request.lbaSector),
                   "request LBA must be 4KB-aligned");
    EMMCSIM_ASSERT(request.arrival == sim_.now(),
                   "submit must run at the request's arrival time");
    EMMCSIM_ASSERT(!poweredOff_,
                   "submit to a powered-off device (the host must "
                   "defer arrivals until powerOn)");

    ++stats_.requests;
    if (request.write) {
        ++stats_.writeRequests;
        stats_.bytesWritten += request.sizeBytes.value();
    } else {
        ++stats_.readRequests;
        stats_.bytesRead += request.sizeBytes.value();
    }

    bool waited = busy_;
    if (!waited)
        ++stats_.noWaitRequests;
    stats_.queueDepthAtArrival.add(
        static_cast<double>(queue_.size() + (busy_ ? 1 : 0)));

    queue_.push_back(Queued{request, waited});
    if (!busy_)
        startNext();
}

void
EmmcDevice::startNext()
{
    EMMCSIM_ASSERT(!queue_.empty(), "startNext with empty queue");
    busy_ = true;
    const sim::Time now = sim_.now();

    // Decide how many head requests ride this command (packed writes).
    // Scratch containers are members so a long replay reuses their
    // storage instead of reallocating per command.
    scratchHead_.clear();
    for (const Queued &q : queue_)
        scratchHead_.push_back(q.request);
    std::size_t count = packer_.packCount(scratchHead_);

    std::vector<CompletedRequest> cmd = std::move(scratchCmd_);
    cmd.clear();
    cmd.reserve(count);
    inflight_.clear();
    for (std::size_t i = 0; i < count; ++i) {
        CompletedRequest c;
        c.request = queue_.front().request;
        c.waited = queue_.front().waited;
        c.packed = count > 1;
        queue_.pop_front();
        inflight_.push_back(c.request);
        cmd.push_back(c);
    }

    // Wake from low power if the idle gap crossed the threshold. The
    // warm-up is part of *service* time (BIOtracer's step 2 fires when
    // the command is issued, before the device is warm), which is why
    // the paper's low-rate apps show long mean service times.
    const sim::Time busy_until = std::max(gcBusyUntil_, mountBusyUntil_);
    const sim::Time service_start = std::max(now, busy_until);
    sim::Time penalty = 0;
    if (idle_) {
        penalty = power_.wakePenalty(service_start);
        idle_ = false;
    }
    const sim::Time begin =
        service_start + penalty + cfg_.commandOverhead;

    // Attribution (DESIGN.md §14): split the pre-dispatch interval.
    // Recovery occupancy is charged before idle-GC occupancy when both
    // hold the flash (mount_part covers [now, mountBusyUntil_], GC the
    // remainder); the queue share is the wait behind earlier commands.
    const sim::Time stall = service_start - now;
    const sim::Time mount_part = std::min(
        stall, std::max<sim::Time>(0, mountBusyUntil_ - now));

    sim::Time done = begin;
    for (CompletedRequest &c : cmd) {
        c.serviceStart = service_start;
        c.phases.add(Phase::QueueWait, now - c.request.arrival);
        c.phases.add(Phase::MountStall, mount_part);
        c.phases.add(Phase::GcWait, stall - mount_part);
        c.phases.add(Phase::Wakeup, penalty);
        c.phases.add(Phase::CmdOverhead, cfg_.commandOverhead);
        sim::Time t =
            c.request.write
                ? serveWrite(c.request, begin, c.status, c.phases)
                : serveRead(c.request, begin, c.status, c.phases);
        // Park the request's own flash-done time in `finish` so the
        // alignment pass below can charge the packed-batch slack.
        c.finish = t;
        done = std::max(done, t);
    }
    for (CompletedRequest &c : cmd) {
        c.phases.add(Phase::PackAlign, done - c.finish);
        c.finish = done;
    }

    ++stats_.commands;
    stats_.busyTime += done - service_start;

    // Completion closure: {this, vector} = 32 bytes, comfortably
    // inside the event arena's inline budget (no per-event heap
    // allocation on the command path).
    auto fire = [this, cmd = std::move(cmd)]() mutable {
        finishCommand(std::move(cmd));
    };
    static_assert(sim::InlineAction::fits<decltype(fire)>(),
                  "command-completion capture must stay inline");
    // The handle lets powerFail() cancel the acknowledgment: a cut
    // before `done` means these requests were never completed.
    pendingCompletion_ = sim_.schedule(done, std::move(fire));
    hasPendingCompletion_ = true;
}

namespace {

/**
 * Charge an FTL critical-chain breakdown (covering done − begin of
 * the call it came from) to a request's phase ledger. @p cell_phase
 * names the cell time: NandRead for read chains, NandProgram for
 * write chains.
 */
void
chargeChain(PhaseLedger &phases, const ftl::FlashBreakdown &chain,
            Phase cell_phase)
{
    phases.add(Phase::GcStall, chain.gcStall);
    phases.add(Phase::BusWait, chain.busWait);
    phases.add(Phase::BusXfer, chain.busXfer);
    phases.add(Phase::NandWait, chain.nandWait);
    phases.add(cell_phase, chain.nandCell);
    phases.add(Phase::Retry, chain.retry);
    phases.add(Phase::Reloc, chain.reloc);
}

} // namespace

sim::Time
EmmcDevice::serveRead(const IoRequest &r, sim::Time begin,
                      RequestStatus &status, PhaseLedger &phases)
{
    const flash::Lpn first = r.firstUnit();
    const std::uint32_t n = r.sizeUnits();
    std::uint32_t lost = 0;
    sim::Time done = begin;
    if (!buffer_.enabled()) {
        ftl::ReadResult res = ftl_.readUnits(first, n, begin);
        lost = res.uncorrectablePages;
        done = res.done;
        chargeChain(phases, res.chain, Phase::NandRead);
    } else {
        std::vector<UnitRun> misses;
        std::vector<UnitRun> evicted;
        buffer_.read(first, n, misses, evicted);
        // Attribution: the miss run finishing last carries the chain;
        // if the eviction write-back outlasts every miss, the whole
        // flash interval is buffer-flush time instead.
        ftl::FlashBreakdown chain;
        sim::Time read_done = begin;
        for (const UnitRun &m : misses) {
            ftl::ReadResult res = ftl_.readUnits(m.first, m.count, begin);
            lost += res.uncorrectablePages;
            if (res.done > read_done) {
                read_done = res.done;
                chain = res.chain;
            }
        }
        // Eviction write-backs piggyback on the read; their rejection
        // (read-only device) is reported on the evicted writes' own
        // requests, not on this read.
        bool accepted = true;
        sim::Time flush_done = flushRuns(evicted, begin, accepted);
        done = std::max(read_done, flush_done);
        if (flush_done > read_done)
            phases.add(Phase::BufferFlush, flush_done - begin);
        else
            chargeChain(phases, chain, Phase::NandRead);
    }
    if (lost > 0) {
        status = RequestStatus::ReadError;
        ++stats_.readErrorRequests;
    }
    return done;
}

sim::Time
EmmcDevice::serveWrite(const IoRequest &r, sim::Time begin,
                       RequestStatus &status, PhaseLedger &phases)
{
    const flash::Lpn first = r.firstUnit();
    const std::uint32_t n = r.sizeUnits();
    bool accepted = true;
    sim::Time done = begin;
    if (!buffer_.enabled()) {
        // Attribution: the page group finishing last is the critical
        // chain; the others overlapped it on other planes/channels.
        ftl::FlashBreakdown chain;
        scratchGroups_.clear();
        dist_->splitWrite(first, n, scratchGroups_);
        for (const ftl::PageGroup &g : scratchGroups_) {
            ftl::WriteResult w = ftl_.writeGroup(g.pool, g.lpns, begin);
            accepted = accepted && w.accepted;
            if (w.done > done) {
                done = w.done;
                chain = w.chain;
            }
        }
        chargeChain(phases, chain, Phase::NandProgram);
    } else if (ftl_.readOnly()) {
        // Refuse to buffer data that can never reach flash.
        accepted = false;
    } else {
        // Buffered writes land in RAM instantly; any flash time is
        // eviction write-back, charged wholesale as buffer flush.
        std::vector<UnitRun> evicted;
        buffer_.write(first, n, evicted);
        done = flushRuns(evicted, begin, accepted);
        phases.add(Phase::BufferFlush, done - begin);
    }
    if (!accepted) {
        status = RequestStatus::WriteRejected;
        ++stats_.writeRejectedRequests;
    }
    return done;
}

sim::Time
EmmcDevice::flushRuns(const std::vector<UnitRun> &runs, sim::Time begin,
                      bool &accepted)
{
    sim::Time done = begin;
    for (const UnitRun &run : runs) {
        scratchGroups_.clear();
        dist_->splitWrite(run.first, run.count, scratchGroups_);
        for (const ftl::PageGroup &g : scratchGroups_) {
            ftl::WriteResult w = ftl_.writeGroup(g.pool, g.lpns, begin);
            accepted = accepted && w.accepted;
            done = std::max(done, w.done);
        }
    }
    return done;
}

void
EmmcDevice::finishCommand(std::vector<CompletedRequest> done)
{
    hasPendingCompletion_ = false;
    inflight_.clear();
    for (const CompletedRequest &c : done) {
        // BIOtracer step ordering: arrival (1) <= service start (2)
        // <= finish (3). A violation means the dispatch path mis-
        // computed a timestamp and every latency statistic is suspect.
        EMMCSIM_DCHECK(c.request.arrival <= c.serviceStart,
                       "request served before it arrived");
        EMMCSIM_DCHECK(c.serviceStart <= c.finish,
                       "request finished before service started");
        double resp = sim::toMilliseconds(c.finish - c.request.arrival);
        double serv = sim::toMilliseconds(c.finish - c.serviceStart);
        double wait =
            sim::toMilliseconds(c.serviceStart - c.request.arrival);
        stats_.responseMs.add(resp);
        stats_.serviceMs.add(serv);
        stats_.waitMs.add(wait);
        // Attribution conservation (DESIGN.md §14): the phase ledger
        // must decompose the response time exactly. Counted (not just
        // asserted) so the release-build audit checker sees breakage.
        if (c.phases.total() != c.finish - c.request.arrival)
            ++stats_.ledgerViolations;
        EMMCSIM_DCHECK(c.phases.total() == c.finish - c.request.arrival,
                       "phase ledger does not conserve response time");
        if (traceHook_)
            traceHook_(c);
        if (onComplete_)
            onComplete_(c);
    }

    // Hand the batch storage back to the scratch pool before the next
    // dispatch (startNext reuses it), closing the allocation cycle:
    // scratchCmd_ -> event capture -> finishCommand -> scratchCmd_.
    scratchCmd_ = std::move(done);
    scratchCmd_.clear();

    busy_ = false;
    if (!queue_.empty()) {
        startNext();
    } else {
        idle_ = true;
        power_.onIdle(sim_.now());
        if (cfg_.idleGcEnabled) {
            pendingIdleTicks_.push_back(sim_.now() + cfg_.idleGcDelay);
            sim_.scheduleAfter(cfg_.idleGcDelay,
                               [this] { idleGcTick(); });
        }
    }
    // Audit after the queue settled: the device is either busy with
    // the next command or idle with an empty queue.
    if (auditHook_)
        auditHook_(*this);
}

void
EmmcDevice::idleGcTick()
{
    // Each tick event carries one mirror entry; consume it whether or
    // not the tick does work, keeping the mirror equal to the set of
    // still-scheduled tick events (the snapshot re-arm list).
    auto it = std::find(pendingIdleTicks_.begin(),
                        pendingIdleTicks_.end(), sim_.now());
    if (it != pendingIdleTicks_.end())
        pendingIdleTicks_.erase(it);
    if (poweredOff_ || busy_ || !idle_)
        return; // power cut, or a request arrived before the window
    const sim::Time now = sim_.now();
    bool did_work = false;
    sim::Time done = ftl_.idleGcStep(now, did_work);
    if (did_work) {
        gcBusyUntil_ = std::max(gcBusyUntil_, done);
        // More reclamation may remain; step again after a short gap
        // so arriving requests interleave freely.
        pendingIdleTicks_.push_back(done + cfg_.idleGcStepGap);
        sim_.schedule(done + cfg_.idleGcStepGap,
                      [this] { idleGcTick(); });
    }
}

void
EmmcDevice::powerFail(sim::Time now, std::vector<IoRequest> &dropped)
{
    EMMCSIM_ASSERT(!poweredOff_, "powerFail on an already-dead device");
    ++spoStats_.powerCuts;
    poweredOff_ = true;
    crashTime_ = now;

    // The in-flight command never completes: cancel its completion
    // event (the acknowledgment) and hand its requests — plus the
    // whole queue — back for host-side re-issue after power-up.
    if (hasPendingCompletion_) {
        sim_.cancel(pendingCompletion_);
        hasPendingCompletion_ = false;
    }
    spoStats_.droppedInFlight += inflight_.size();
    for (const IoRequest &r : inflight_)
        dropped.push_back(r);
    inflight_.clear();
    spoStats_.droppedQueued += queue_.size();
    for (const Queued &q : queue_)
        dropped.push_back(q.request);
    queue_.clear();

    // Volatile RAM vanishes with the rail; dirty units in it were
    // acknowledged data the host will not re-send (the durability gap
    // the paper's flush barriers exist to close).
    spoStats_.lostDirtyUnits += buffer_.discardAll();

    busy_ = false;
    idle_ = true;
}

void
EmmcDevice::powerOffNotify(sim::Time now)
{
    EMMCSIM_ASSERT(!poweredOff_, "notify after the power cut");
    ++spoStats_.notifiedCuts;
    flushCache(now);
    ftl_.journal().checkpoint();
    ftl_.markProgramsSettled();
}

ftl::RecoveryReport
EmmcDevice::powerOn(sim::Time now)
{
    EMMCSIM_ASSERT(poweredOff_, "powerOn without a preceding powerFail");
    ftl::RecoveryReport rep = ftl_.powerFailAndRecover(crashTime_);
    spoStats_.tornPages += rep.tornPages;
    spoStats_.recoveryTime += rep.totalTime;
    spoStats_.recoveryCheckpointLoad += rep.checkpointReadTime;
    spoStats_.recoveryJournalReplay += rep.journalReplayTime;
    spoStats_.recoveryScan += rep.scanTime;
    spoStats_.recoveryReErase += rep.reEraseTime;
    spoStats_.recoveryCheckpointWrite += rep.checkpointWriteTime;
    // Recovery occupies the flash backend exactly like blocking GC:
    // the first post-power-up command waits out the checkpoint load,
    // journal replay and open-block scan. Tracked apart from
    // gcBusyUntil_ so the stall attributes to MountStall, not GcWait.
    mountBusyUntil_ = std::max(mountBusyUntil_, now + rep.totalTime);
    poweredOff_ = false;
    busy_ = false;
    idle_ = true;
    power_.onIdle(now);
    return rep;
}

sim::Time
EmmcDevice::flushCache(sim::Time now)
{
    sim::Time done = now;
    if (buffer_.enabled()) {
        std::vector<UnitRun> evicted;
        buffer_.flushAll(evicted);
        // Rejection only happens on a read-only device, which has no
        // dirty data to lose; the barrier still completes.
        bool accepted = true;
        done = std::max(done, flushRuns(evicted, now, accepted));
    }
    ftl_.flushBarrier();
    return done;
}

void
EmmcDevice::save(core::BinWriter &w) const
{
    EMMCSIM_ASSERT(!busy_ && queue_.empty() && !hasPendingCompletion_ &&
                       !poweredOff_,
                   "snapshots are quiescent-point only");
    injector_.save(w);
    array_.save(w);
    ftl_.save(w);
    packer_.save(w);
    power_.save(w);
    buffer_.save(w);
    w.b(idle_);
    w.i64(gcBusyUntil_);
    w.i64(mountBusyUntil_);
    w.pod(stats_);
    w.pod(spoStats_);
    w.podVec(pendingIdleTicks_);
}

void
EmmcDevice::load(core::BinReader &r)
{
    injector_.load(r);
    array_.load(r);
    ftl_.load(r);
    packer_.load(r);
    power_.load(r);
    buffer_.load(r);
    idle_ = r.b();
    gcBusyUntil_ = r.i64();
    mountBusyUntil_ = r.i64();
    r.pod(stats_);
    r.pod(spoStats_);
    r.podVec(pendingIdleTicks_);
    busy_ = false;
    poweredOff_ = false;
    hasPendingCompletion_ = false;
    queue_.clear();
    inflight_.clear();
    if (!r.ok())
        return;
    // Re-arm the idle-GC ticks that were pending at capture time; the
    // caller restored the clock before loading, so the mirror entries
    // are all in the future.
    for (sim::Time t : pendingIdleTicks_) {
        EMMCSIM_ASSERT(t >= sim_.now(), "stale idle tick in snapshot");
        sim_.schedule(t, [this] { idleGcTick(); });
    }
}

double
EmmcDevice::utilization(sim::Time now) const
{
    if (now <= 0)
        return 0.0;
    return static_cast<double>(stats_.busyTime) /
           static_cast<double>(now);
}

double
EmmcDevice::spaceUtilization() const
{
    const ftl::FtlStats &fs = ftl_.stats();
    if (fs.hostBytesConsumed == 0)
        return 1.0;
    return static_cast<double>(fs.hostUnitsWritten * sim::kUnitBytes) /
           static_cast<double>(fs.hostBytesConsumed);
}

} // namespace emmcsim::emmc
