#include "emmc/packing.hh"

#include "sim/logging.hh"

namespace emmcsim::emmc {

std::size_t
WritePacker::packCount(const std::deque<IoRequest> &queue)
{
    EMMCSIM_ASSERT(!queue.empty(), "packCount on empty queue");
    if (!cfg_.enabled || !queue.front().write)
        return 1;

    std::size_t count = 0;
    units::Bytes bytes{0};
    for (const IoRequest &r : queue) {
        if (!r.write)
            break;
        if (count >= cfg_.maxRequests)
            break;
        if (count > 0 && bytes + r.sizeBytes > cfg_.maxBytes)
            break;
        bytes += r.sizeBytes;
        ++count;
    }
    if (count == 0)
        count = 1;
    if (count > 1) {
        ++stats_.packedCommands;
        stats_.packedRequests += count;
    }
    return count;
}

} // namespace emmcsim::emmc
