#include "emmc/power.hh"

namespace emmcsim::emmc {

bool
PowerManager::inLowPower(sim::Time now) const
{
    return cfg_.enabled && now - idleSince_ >= cfg_.idleThreshold;
}

sim::Time
PowerManager::wakePenalty(sim::Time now)
{
    if (!cfg_.enabled)
        return 0;
    sim::Time idle = now - idleSince_;
    if (idle >= cfg_.idleThreshold) {
        // Active until the threshold expired, low power afterwards.
        stats_.activeTime += cfg_.idleThreshold;
        stats_.lowPowerTime += idle - cfg_.idleThreshold;
        ++stats_.wakeups;
        return cfg_.wakeLatency;
    }
    stats_.activeTime += idle;
    return 0;
}

double
PowerManager::energyMj() const
{
    double active_s = sim::toSeconds(stats_.activeTime);
    double low_s = sim::toSeconds(stats_.lowPowerTime);
    return active_s * cfg_.activeMw + low_s * cfg_.lowPowerMw;
}

} // namespace emmcsim::emmc
