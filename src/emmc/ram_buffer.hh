/**
 * @file
 * RamBuffer: the controller's RAM cache (Implication 3).
 *
 * The paper argues that weak spatial/temporal locality makes a large
 * RAM buffer inside an eMMC device unprofitable. This LRU unit cache
 * lets the ablation benches measure exactly that: hit rate versus
 * buffer size under the observed localities. The case-study replays
 * disable it, as the paper does.
 *
 * The cache tracks 4KB units. Writes insert dirty units; reads probe
 * for hits. Capacity overflow evicts least-recently-used units; dirty
 * evictions are returned to the caller as contiguous runs so the
 * device can time their flush to flash.
 */

#ifndef EMMCSIM_EMMC_RAM_BUFFER_HH
#define EMMCSIM_EMMC_RAM_BUFFER_HH

#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/binio.hh"
#include "flash/pool.hh"

namespace emmcsim::emmc {

/** RAM buffer configuration. */
struct BufferConfig
{
    bool enabled = false;
    /** Capacity in 4KB units (e.g. 256 units == 1MB). */
    std::uint64_t capacityUnits = 256;
    /** Insert read misses (clean) so re-reads can hit. */
    bool readAllocate = true;
};

/** Hit/miss counters. */
struct BufferStats
{
    std::uint64_t readLookups = 0;
    std::uint64_t readHits = 0;
    std::uint64_t writeLookups = 0;
    std::uint64_t writeHits = 0; ///< overwrite of a cached unit
    std::uint64_t evictedDirty = 0;

    double readHitRate() const
    {
        return readLookups
                   ? static_cast<double>(readHits) /
                         static_cast<double>(readLookups)
                   : 0.0;
    }
};

/** A contiguous run of logical units. */
struct UnitRun
{
    flash::Lpn first{0};
    std::uint32_t count = 0;
};

/** LRU write-back cache of 4KB units. */
class RamBuffer
{
  public:
    explicit RamBuffer(const BufferConfig &cfg);

    bool enabled() const { return cfg_.enabled; }

    /**
     * Insert @p n units at @p first as dirty.
     * @param evicted Receives contiguous runs of dirty units evicted
     *        to make room; the caller must flush them to flash.
     */
    void write(flash::Lpn first, std::uint32_t n,
               std::vector<UnitRun> &evicted);

    /**
     * Probe @p n units at @p first.
     * @param misses  Receives contiguous runs that must be read from
     *        flash. Hits refresh LRU position. With readAllocate the
     *        missed units are inserted clean.
     * @param evicted Receives dirty runs displaced by read allocation.
     * @return Number of units that hit.
     */
    std::uint32_t read(flash::Lpn first, std::uint32_t n,
                       std::vector<UnitRun> &misses,
                       std::vector<UnitRun> &evicted);

    /**
     * Evict everything; dirty units are returned as runs.
     */
    void flushAll(std::vector<UnitRun> &evicted);

    /**
     * Drop every cached unit with no write-back: RAM contents vanish
     * with the power rail on a sudden power-off.
     * @return Number of dirty units lost (acknowledged data that never
     *         reached flash — the cost of running write-back caching
     *         without a flush barrier).
     */
    std::uint64_t discardAll();

    /** @name Snapshot (full LRU contents, most-recent first). @{ */
    void save(core::BinWriter &w) const;
    void load(core::BinReader &r);
    /** @} */

    std::size_t residentUnits() const { return map_.size(); }
    const BufferStats &stats() const { return stats_; }

  private:
    struct Entry
    {
        flash::Lpn lpn;
        bool dirty;
    };
    using LruList = std::list<Entry>;

    /** Insert or refresh one unit. Appends dirty evictions. */
    void touch(flash::Lpn lpn, bool dirty, std::vector<flash::Lpn> &out);

    /** Coalesce sorted unit list into contiguous runs. */
    static void runsFromUnits(std::vector<flash::Lpn> &units,
                              std::vector<UnitRun> &runs);

    BufferConfig cfg_;
    BufferStats stats_;
    LruList lru_; ///< front = most recent
    std::unordered_map<flash::Lpn, LruList::iterator> map_;
};

} // namespace emmcsim::emmc

#endif // EMMCSIM_EMMC_RAM_BUFFER_HH
