/**
 * @file
 * EmmcDevice: the simulated eMMC controller.
 *
 * The device serializes commands at its interface — eMMC 4.51 has no
 * command queueing, which is what gives the paper's NoWait semantics:
 * a request waits if and only if another request is being served.
 * Inside one command, page operations stripe across channels, dies and
 * planes through the FTL and flash-array timelines.
 *
 * Dispatch path per command: optional wake-up from low-power mode,
 * fixed command overhead, optional packed-write merging, then either a
 * mapping-driven read or distributor-split page programs (with any
 * blocking GC inline). Completion fires a simulator event, records the
 * BIOtracer step-2/step-3 timestamps, and starts the next command.
 */

#ifndef EMMCSIM_EMMC_DEVICE_HH
#define EMMCSIM_EMMC_DEVICE_HH

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "core/binio.hh"
#include "emmc/config.hh"
#include "ftl/distributor.hh"
#include "emmc/packing.hh"
#include "emmc/power.hh"
#include "emmc/ram_buffer.hh"
#include "emmc/request.hh"
#include "flash/array.hh"
#include "ftl/ftl.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"

namespace emmcsim::emmc {

/** Aggregate device counters. */
struct DeviceStats
{
    std::uint64_t requests = 0;
    std::uint64_t readRequests = 0;
    std::uint64_t writeRequests = 0;
    std::uint64_t bytesRead = 0;
    std::uint64_t bytesWritten = 0;
    /** Requests that found the device idle on arrival. */
    std::uint64_t noWaitRequests = 0;
    /** Reads completed with at least one uncorrectable page. */
    std::uint64_t readErrorRequests = 0;
    /** Writes refused because the device degraded to read-only. */
    std::uint64_t writeRejectedRequests = 0;
    /** Commands issued to the flash backend (packing merges). */
    std::uint64_t commands = 0;
    /** Total device busy time (sum of command service intervals). */
    sim::Time busyTime = 0;
    /**
     * Completed requests whose phase ledger did not sum exactly to
     * finish − arrival. Always zero unless the attribution
     * decomposition (emmc/phases.hh) is broken; the phase-conservation
     * audit checker fails on any non-zero value.
     */
    std::uint64_t ledgerViolations = 0;

    sim::OnlineStats responseMs; ///< per-request response times (ms)
    sim::OnlineStats serviceMs;  ///< per-request service times (ms)
    sim::OnlineStats waitMs;     ///< per-request queue wait times (ms)
    /** Outstanding requests (incl. in-flight) seen by each arrival. */
    sim::OnlineStats queueDepthAtArrival;

    double
    noWaitRatio() const
    {
        return requests ? static_cast<double>(noWaitRequests) /
                              static_cast<double>(requests)
                        : 0.0;
    }
};

/** Sudden-power-off counters (device side; DESIGN.md §13). */
struct SpoStats
{
    std::uint64_t powerCuts = 0;     ///< powerFail() invocations
    std::uint64_t notifiedCuts = 0;  ///< cuts preceded by notification
    /** Requests dropped mid-command (never acknowledged). */
    std::uint64_t droppedInFlight = 0;
    /** Requests dropped while still queued. */
    std::uint64_t droppedQueued = 0;
    /** Dirty RAM-buffer units lost with the power rail. */
    std::uint64_t lostDirtyUnits = 0;
    /** Host pages torn by the cuts (at most one per cut). */
    std::uint64_t tornPages = 0;
    /** Total simulated power-up recovery time across all cuts. */
    sim::Time recoveryTime = 0;

    /**
     * @name Mount-time phase totals
     * recoveryTime split along the RecoveryReport cost model, summed
     * across all power cuts; surfaced through the attribution report
     * schema so mount cost shows up in `emmcsim_cli explain`.
     * @{
     */
    sim::Time recoveryCheckpointLoad = 0;  ///< checkpoint page reads
    sim::Time recoveryJournalReplay = 0;   ///< journal tail replay
    sim::Time recoveryScan = 0;            ///< open-block OOB scan
    sim::Time recoveryReErase = 0;         ///< interrupted-erase redo
    sim::Time recoveryCheckpointWrite = 0; ///< fresh checkpoint write
    /** @} */
};

/** The simulated eMMC device. */
class EmmcDevice
{
  public:
    /** Callback fired once per completed request. */
    using CompletionCallback =
        std::function<void(const CompletedRequest &)>;

    /**
     * @param simulator   Event loop the device schedules on.
     * @param cfg         Full device configuration.
     * @param distributor Scheme-specific write splitter.
     */
    EmmcDevice(sim::Simulator &simulator, const EmmcConfig &cfg,
               std::unique_ptr<ftl::RequestDistributor> distributor);

    /** Register the completion callback (single consumer). */
    void setCompletionCallback(CompletionCallback cb)
    {
        onComplete_ = std::move(cb);
    }

    /** Hook invoked after each completed command (audit support). */
    using AuditHook = std::function<void(const EmmcDevice &)>;

    /**
     * Install a debug hook fired at every command completion, after
     * the per-request lifecycle checks. The audit subsystem uses it to
     * revalidate queue and statistics bookkeeping at command
     * granularity; a null @p hook uninstalls. The hook must not
     * mutate the device.
     */
    void setAuditHook(AuditHook hook) { auditHook_ = std::move(hook); }

    /** Observer fired once per completed request (obs support). */
    using TraceHook = std::function<void(const CompletedRequest &)>;

    /**
     * Install an observability hook fired for every completed request,
     * independently of the completion callback (which the replayer
     * owns). The obs::RequestTracer and latency recorders subscribe
     * here; a null @p hook uninstalls. The hook must not mutate the
     * device — with none installed the dispatch path is unchanged.
     */
    void setTraceHook(TraceHook hook) { traceHook_ = std::move(hook); }

    /** Installed trace hook (null without an observer); the resume
     * path re-feeds it with pre-capture completions. */
    const TraceHook &traceHook() const { return traceHook_; }

    /**
     * Submit a request. Must be called at simulator time equal to
     * request.arrival (the replayer schedules arrivals as events).
     */
    void submit(const IoRequest &request);

    /** @return true while a command is in flight. */
    bool busy() const { return busy_; }

    /** @return true between powerFail() and powerOn(). */
    bool poweredOff() const { return poweredOff_; }

    /**
     * Cut device power at @p now (DESIGN.md §13). The in-flight
     * command's completion event is cancelled — those requests were
     * never acknowledged — and together with everything still queued
     * they are appended to @p dropped for host-side re-issue after
     * power-up. The RAM buffer's contents (including acknowledged
     * dirty data not yet flushed) are discarded. The device accepts
     * no submissions until powerOn().
     */
    void powerFail(sim::Time now, std::vector<IoRequest> &dropped);

    /**
     * POWER_OFF_NOTIFICATION: the host warns the device before the
     * cut. Flushes the RAM buffer, forces a journal flush barrier and
     * checkpoint, and settles the open flash page, so the powerFail()
     * that follows tears nothing and recovery replays no journal
     * tail. Queued commands are still dropped (the notification
     * covers cached data and metadata, not the queue).
     */
    void powerOffNotify(sim::Time now);

    /**
     * Restore power at @p now: run FTL power-up recovery (checkpoint
     * load, journal replay, open-block scan) and charge its simulated
     * cost like blocking GC — the first post-recovery command waits it
     * out.
     */
    ftl::RecoveryReport powerOn(sim::Time now);

    /**
     * Cache-flush barrier (eMMC CACHE_FLUSH): write back all dirty
     * RAM-buffer units and force journalled metadata durable. After
     * the returned completion time, every acknowledged write survives
     * a sudden power-off.
     */
    sim::Time flushCache(sim::Time now);

    const SpoStats &spoStats() const { return spoStats_; }

    /**
     * @name Snapshot
     * Serialize the full mutable device state. Only legal at a
     * quiescent point: queue empty, no command in flight, powered on.
     * load() additionally re-arms pending idle-GC ticks on the
     * simulator, so the clock must already be restored.
     * @{
     */
    void save(core::BinWriter &w) const;
    void load(core::BinReader &r);
    /** @} */

    /** Requests waiting behind the in-flight command. */
    std::size_t queueDepth() const { return queue_.size(); }

    /**
     * Space utilization: host bytes written / flash bytes consumed for
     * them (the paper's lifetime proxy, Fig 9). 1.0 when nothing was
     * written.
     */
    double spaceUtilization() const;

    /**
     * Fraction of wall-clock time the device spent serving commands
     * up to @p now; 0 when @p now is 0.
     */
    double utilization(sim::Time now) const;

    const EmmcConfig &config() const { return cfg_; }
    const DeviceStats &stats() const { return stats_; }
    const PackingStats &packingStats() const { return packer_.stats(); }
    const PowerStats &powerStats() const { return power_.stats(); }
    const PowerManager &power() const { return power_; }
    const BufferStats &bufferStats() const { return buffer_.stats(); }
    const ftl::RequestDistributor &distributor() const { return *dist_; }
    /** NAND fault injector (inert unless cfg.fault.enabled). */
    fault::FaultInjector &faultInjector() { return injector_; }
    const fault::FaultInjector &faultInjector() const
    {
        return injector_;
    }

    ftl::Ftl &ftl() { return ftl_; }
    const ftl::Ftl &ftl() const { return ftl_; }
    flash::FlashArray &array() { return array_; }
    const flash::FlashArray &array() const { return array_; }

    /**
     * Test backdoor: skew the ledger-violation counter without a real
     * conservation break, so the phase-conservation audit checker can
     * be proven to fire (see tests/check/invariants_test.cc).
     */
    void corruptLedgerViolationsForTest(std::uint64_t n)
    {
        stats_.ledgerViolations += n;
    }

  private:
    /** Dispatch the next command from the queue head. */
    void startNext();

    /** Completion handler for the in-flight command. */
    void finishCommand(std::vector<CompletedRequest> done);

    /**
     * Serve one read request; returns its flash completion time and
     * reports ReadError through @p status when any page stayed
     * uncorrectable after the retry ladder. Charges the flash phases
     * of the request's critical chain to @p phases.
     */
    sim::Time serveRead(const IoRequest &r, sim::Time begin,
                        RequestStatus &status, PhaseLedger &phases);

    /**
     * Serve one write request; returns its flash completion time and
     * reports WriteRejected through @p status when the device is
     * read-only. Charges the flash phases of the request's critical
     * chain to @p phases.
     */
    sim::Time serveWrite(const IoRequest &r, sim::Time begin,
                         RequestStatus &status, PhaseLedger &phases);

    /**
     * Flush a run of dirty buffer units to flash. Clears @p accepted
     * when any group was rejected (read-only device).
     */
    sim::Time flushRuns(const std::vector<UnitRun> &runs,
                        sim::Time begin, bool &accepted);

    /** Idle-GC event body. */
    void idleGcTick();

    sim::Simulator &sim_;
    EmmcConfig cfg_;
    std::unique_ptr<ftl::RequestDistributor> dist_;

    fault::FaultInjector injector_; ///< attached to array_ when enabled
    flash::FlashArray array_;
    ftl::Ftl ftl_;
    WritePacker packer_;
    PowerManager power_;
    RamBuffer buffer_;

    struct Queued
    {
        IoRequest request;
        bool waited;
    };
    std::deque<Queued> queue_;
    bool busy_ = false;
    bool idle_ = true;           ///< device has been idle since last work
    sim::Time gcBusyUntil_ = 0;  ///< idle GC occupies flash until here
    /**
     * Power-up recovery occupies flash until here. Kept separate from
     * gcBusyUntil_ (dispatch waits for the max of both, so timing is
     * unchanged) so the attribution ledger can split a post-power-up
     * dispatch stall into MountStall vs GcWait.
     */
    sim::Time mountBusyUntil_ = 0;

    /**
     * Power-loss bookkeeping. The in-flight command's requests are
     * mirrored in inflight_ because the completion event owns the only
     * other copy — cancelling it on a power cut would lose them.
     * pendingIdleTicks_ mirrors every scheduled idle-GC tick (one
     * entry per event, consumed as the event fires) so a snapshot can
     * re-arm them on restore.
     */
    bool poweredOff_ = false;
    sim::Time crashTime_ = 0;           ///< valid while poweredOff_
    sim::EventId pendingCompletion_;    ///< in-flight completion event
    bool hasPendingCompletion_ = false;
    std::vector<IoRequest> inflight_;
    std::vector<sim::Time> pendingIdleTicks_;
    SpoStats spoStats_;

    DeviceStats stats_;
    CompletionCallback onComplete_;
    AuditHook auditHook_;
    TraceHook traceHook_;

    std::vector<ftl::PageGroup> scratchGroups_;
    std::deque<IoRequest> scratchHead_;   ///< packCount argument reuse
    std::vector<CompletedRequest> scratchCmd_; ///< command batch reuse
};

} // namespace emmcsim::emmc

#endif // EMMCSIM_EMMC_DEVICE_HH
