/**
 * @file
 * Block-level request types exchanged between host and eMMC device.
 */

#ifndef EMMCSIM_EMMC_REQUEST_HH
#define EMMCSIM_EMMC_REQUEST_HH

#include <cstdint>

#include "core/units.hh"
#include "emmc/phases.hh"
#include "sim/types.hh"

namespace emmcsim::emmc {

/** One block request as submitted by the host block layer. */
struct IoRequest
{
    /** Host-assigned identifier (trace record index in replays). */
    std::uint64_t id = 0;
    /** Arrival time at the device queue. */
    sim::Time arrival = 0;
    /** Starting address in 512-byte sectors (4KB-aligned). */
    units::Lba lbaSector{0};
    /** Size in bytes (multiple of 4KB). */
    units::Bytes sizeBytes{0};
    /** True for writes. */
    bool write = false;

    /** First logical 4KB unit (submit() enforced 4KB alignment). */
    units::UnitAddr
    firstUnit() const
    {
        return units::lbaToUnit(lbaSector);
    }

    /** Size in logical 4KB units. */
    std::uint32_t
    sizeUnits() const
    {
        return static_cast<std::uint32_t>(
            units::bytesToUnitsCeil(sizeBytes));
    }
};

/** Device-reported outcome of one request. */
enum class RequestStatus : std::uint8_t
{
    Ok = 0,
    /** Some page of the read was uncorrectable (data lost). */
    ReadError,
    /** Write refused: the device degraded to read-only mode. */
    WriteRejected,
};

/** Completion report for one request (BIOtracer steps 2 and 3). */
struct CompletedRequest
{
    IoRequest request;
    /** When the device actually began serving it (step 2). */
    sim::Time serviceStart = 0;
    /** When the device completed it (step 3). */
    sim::Time finish = 0;
    /** True when the request found the device busy on arrival. */
    bool waited = false;
    /** True when served as part of a packed write command. */
    bool packed = false;
    /** Outcome (Ok unless fault injection is active). */
    RequestStatus status = RequestStatus::Ok;
    /**
     * Latency attribution: exact decomposition of finish − arrival
     * into named phases (emmc/phases.hh). Always filled by the
     * dispatch path; phases.total() == finish − arrival is the
     * conservation invariant the audit subsystem enforces.
     */
    PhaseLedger phases;

    bool ok() const { return status == RequestStatus::Ok; }
};

} // namespace emmcsim::emmc

#endif // EMMCSIM_EMMC_REQUEST_HH
