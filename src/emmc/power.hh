/**
 * @file
 * PowerManager: the eMMC low-power state machine (Characteristic 4).
 *
 * The paper observes that an eMMC device drops into a low-power mode
 * when no request arrives within its power-saving threshold, and that
 * a newly arriving request then pays a warm-up latency — which is why
 * low-rate applications (Idle, CallIn, CallOut, YouTube) show *higher*
 * mean service times than busy ones.
 *
 * The manager is timestamp-driven: the device reports when it goes
 * idle and asks, at the next service start, what wake penalty applies.
 */

#ifndef EMMCSIM_EMMC_POWER_HH
#define EMMCSIM_EMMC_POWER_HH

#include <cstdint>

#include "core/binio.hh"
#include "sim/types.hh"

namespace emmcsim::emmc {

/** Power-management configuration. */
struct PowerConfig
{
    /** Master switch; disabled for the Fig 8 device comparison. */
    bool enabled = false;
    /** Idle time after which the device enters low-power mode. */
    sim::Time idleThreshold = sim::milliseconds(200);
    /** Warm-up latency paid by the request that wakes the device. */
    sim::Time wakeLatency = sim::milliseconds(5);
    /** Active-state power draw in milliwatts (for energy estimates). */
    double activeMw = 200.0;
    /** Low-power-state draw in milliwatts. */
    double lowPowerMw = 1.0;
};

/** Counters exposed by the power manager. */
struct PowerStats
{
    std::uint64_t wakeups = 0;        ///< low-power -> active transitions
    sim::Time lowPowerTime = 0;       ///< total time spent in low power
    sim::Time activeTime = 0;         ///< total time spent active
};

/** Two-state (active / low-power) device power model. */
class PowerManager
{
  public:
    explicit PowerManager(const PowerConfig &cfg) : cfg_(cfg) {}

    /**
     * Wake penalty for a request starting service at @p now, given the
     * device has been idle since the last completion. Also accounts
     * state-residency time. Returns 0 when disabled or still warm.
     */
    sim::Time wakePenalty(sim::Time now);

    /** Report that the device finished all work at @p now. */
    void onIdle(sim::Time now) { idleSince_ = now; }

    /** @return true when the device would be in low power at @p now. */
    bool inLowPower(sim::Time now) const;

    /** Estimated energy in millijoules over the accounted intervals. */
    double energyMj() const;

    const PowerConfig &config() const { return cfg_; }
    const PowerStats &stats() const { return stats_; }

    /** @name Snapshot (counters plus the idle timestamp). @{ */
    void
    save(core::BinWriter &w) const
    {
        w.pod(stats_);
        w.i64(idleSince_);
    }
    void
    load(core::BinReader &r)
    {
        r.pod(stats_);
        idleSince_ = r.i64();
    }
    /** @} */

  private:
    PowerConfig cfg_;
    PowerStats stats_;
    sim::Time idleSince_ = 0;
};

} // namespace emmcsim::emmc

#endif // EMMCSIM_EMMC_POWER_HH
