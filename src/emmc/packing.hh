/**
 * @file
 * WritePacker: eMMC 4.5 packed-command policy.
 *
 * The eMMC driver's packing function "merges multiple write requests
 * into a large one if possible" (Fig 2). Packing amortizes the fixed
 * per-command cost, which is why Fig 3's write throughput keeps
 * climbing out to 16MB requests even though the Linux block layer caps
 * a single request at 512KB.
 */

#ifndef EMMCSIM_EMMC_PACKING_HH
#define EMMCSIM_EMMC_PACKING_HH

#include <cstdint>
#include <deque>

#include "core/binio.hh"
#include "emmc/request.hh"

namespace emmcsim::emmc {

/** Packed-command policy knobs. */
struct PackingConfig
{
    bool enabled = true;
    /** Max write requests merged into one packed command. */
    std::uint32_t maxRequests = 32;
    /** Max total size of one packed command. */
    units::Bytes maxBytes{16 * sim::kMiB};
};

/** Packing counters. */
struct PackingStats
{
    std::uint64_t packedCommands = 0; ///< commands carrying >1 request
    std::uint64_t packedRequests = 0; ///< requests riding packed cmds
};

/** Decides how many queued writes merge into the next command. */
class WritePacker
{
  public:
    explicit WritePacker(const PackingConfig &cfg) : cfg_(cfg) {}

    /**
     * Number of head-of-queue requests to serve as one command.
     *
     * Packs the maximal run of write requests at the head subject to
     * the request/byte caps; a read at the head is never packed.
     *
     * @param queue Device queue; must be non-empty.
     * @return Count >= 1 of head requests to dispatch together.
     */
    std::size_t packCount(const std::deque<IoRequest> &queue);

    const PackingConfig &config() const { return cfg_; }
    const PackingStats &stats() const { return stats_; }

    /** @name Snapshot (policy is config; only counters persist). @{ */
    void save(core::BinWriter &w) const { w.pod(stats_); }
    void load(core::BinReader &r) { r.pod(stats_); }
    /** @} */

  private:
    PackingConfig cfg_;
    PackingStats stats_;
};

} // namespace emmcsim::emmc

#endif // EMMCSIM_EMMC_PACKING_HH
