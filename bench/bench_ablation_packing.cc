/**
 * @file
 * Ablation A4 (Implication 1 / Fig 3): packed write commands and
 * multi-plane parallelism versus large-request throughput.
 */

#include <iostream>

#include "analysis/throughput.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "host/replayer.hh"
#include "workload/fixed.hh"

using namespace emmcsim;

namespace {

double
throughput(std::uint64_t req_bytes, bool packing, bool multiplane)
{
    sim::Simulator s;
    emmc::EmmcConfig cfg = core::schemeConfig(core::SchemeKind::PS4);
    cfg.packing.enabled = packing;
    cfg.multiplane = multiplane;
    auto dev = core::makeDevice(s, core::SchemeKind::PS4, cfg);

    workload::FixedStreamSpec spec;
    spec.write = true;
    spec.sizeBytes = req_bytes;
    spec.count = std::max<std::uint64_t>(8, (32 * sim::kMiB) / req_bytes);
    spec.gap = 0;
    host::Replayer rep(s, *dev);
    trace::Trace out = rep.replay(workload::makeFixedStream(spec));
    return analysis::sustainedThroughputMBps(out);
}

} // namespace

int
main()
{
    std::cout << "== Ablation A4: packing and multi-plane commands vs "
                 "write throughput (Implication 1 / Fig 3) ==\n\n";

    core::TablePrinter table({"Req size", "base MB/s", "+packing",
                              "+multiplane", "+both"});
    for (std::uint64_t kb : {4, 16, 64, 256, 1024}) {
        std::uint64_t bytes = kb * sim::kKiB;
        table.addRow({core::fmt(std::uint64_t{kb}) + "KB",
                      core::fmt(throughput(bytes, false, false)),
                      core::fmt(throughput(bytes, true, false)),
                      core::fmt(throughput(bytes, false, true)),
                      core::fmt(throughput(bytes, true, true))});
    }
    table.print(std::cout);

    std::cout << "\nExpected: packing amortizes per-command overhead "
                 "(largest effect on small bursty writes); multi-plane "
                 "commands raise array-side parallelism. The paper's "
                 "eMMC supports packing but little parallelism "
                 "(Implication 1: requests split into more than ~2 "
                 "sub-requests cannot proceed fully in parallel).\n";
    return 0;
}
