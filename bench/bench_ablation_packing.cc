/**
 * @file
 * Ablation A4 (Implication 1 / Fig 3): packed write commands and
 * multi-plane parallelism versus large-request throughput.
 */

#include <iostream>

#include "analysis/throughput.hh"
#include "bench_util.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "core/sweep.hh"
#include "host/replayer.hh"
#include "workload/fixed.hh"

using namespace emmcsim;

namespace {

double
throughput(std::uint64_t req_bytes, bool packing, bool multiplane)
{
    sim::Simulator s;
    emmc::EmmcConfig cfg = core::schemeConfig(core::SchemeKind::PS4);
    cfg.packing.enabled = packing;
    cfg.multiplane = multiplane;
    auto dev = core::makeDevice(s, core::SchemeKind::PS4, cfg);

    workload::FixedStreamSpec spec;
    spec.write = true;
    spec.sizeBytes = req_bytes;
    spec.count = std::max<std::uint64_t>(8, (32 * sim::kMiB) / req_bytes);
    spec.gap = 0;
    host::Replayer rep(s, *dev);
    trace::Trace out = rep.replay(workload::makeFixedStream(spec));
    return analysis::sustainedThroughputMBps(out);
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    std::cout << "== Ablation A4: packing and multi-plane commands vs "
                 "write throughput (Implication 1 / Fig 3) ==\n\n";

    // Each table cell is an independent fixed-stream replay; fan the
    // 5x4 matrix out over the sweep pool and print in cell order.
    const std::vector<std::uint64_t> sizes_kb = {4, 16, 64, 256, 1024};
    const std::vector<std::pair<bool, bool>> modes = {
        {false, false}, {true, false}, {false, true}, {true, true}};
    const std::size_t cells = sizes_kb.size() * modes.size();
    const std::vector<double> tp = core::runOrdered(
        cells, args.jobs, [&](std::size_t i) {
            const std::uint64_t bytes =
                sizes_kb[i / modes.size()] * sim::kKiB;
            const auto &[packing, multiplane] = modes[i % modes.size()];
            return throughput(bytes, packing, multiplane);
        });

    core::TablePrinter table({"Req size", "base MB/s", "+packing",
                              "+multiplane", "+both"});
    for (std::size_t r = 0; r < sizes_kb.size(); ++r) {
        const std::size_t base = r * modes.size();
        table.addRow({core::fmt(std::uint64_t{sizes_kb[r]}) + "KB",
                      core::fmt(tp[base]), core::fmt(tp[base + 1]),
                      core::fmt(tp[base + 2]), core::fmt(tp[base + 3])});
    }
    table.print(std::cout);

    std::cout << "\nExpected: packing amortizes per-command overhead "
                 "(largest effect on small bursty writes); multi-plane "
                 "commands raise array-side parallelism. The paper's "
                 "eMMC supports packing but little parallelism "
                 "(Implication 1: requests split into more than ~2 "
                 "sub-requests cannot proceed fully in parallel).\n";
    return 0;
}
