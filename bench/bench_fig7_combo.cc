/**
 * @file
 * Fig 7 reproduction: I/O patterns of the 7 combo traces —
 * (a) request-size distributions, (b) response-time distributions on
 * the conventional device, (c) inter-arrival distributions.
 */

#include <iostream>

#include "analysis/distributions.hh"
#include "analysis/timing_stats.hh"
#include "bench_util.hh"
#include "core/experiment.hh"
#include "core/report.hh"

using namespace emmcsim;

int
main(int argc, char **argv)
{
    const double scale = bench::parseScale(argc, argv);
    std::cout << "== Fig 7: I/O patterns of the 7 combo traces (scale "
              << scale << ") ==\n";

    core::ExperimentOptions opts;
    opts.powerMode = true;

    // (a) request size distributions
    {
        std::cout << "\n-- Fig 7a: request size distributions (%) --\n\n";
        std::vector<std::string> headers = {"Combo"};
        for (const std::string &label : analysis::sizeBucketLabels())
            headers.push_back(label);
        core::TablePrinter table(std::move(headers));
        for (const workload::AppProfile &p : workload::comboProfiles()) {
            trace::Trace t = bench::makeAppTrace(p.name, scale);
            sim::Histogram h = analysis::sizeDistribution(t);
            std::vector<std::string> row = {p.name};
            for (std::size_t i = 0; i < h.bucketCount(); ++i)
                row.push_back(core::fmt(100.0 * h.fractionAt(i), 1));
            table.addRow(std::move(row));
        }
        table.print(std::cout);
        std::cout << "(paper: Music-included combos show more 4KB "
                     "requests than Radio-included ones)\n";
    }

    // (b) response time distributions + (c) inter-arrival
    std::vector<std::string> resp_headers = {"Combo"};
    for (const std::string &label : analysis::responseBucketLabels())
        resp_headers.push_back(label);
    resp_headers.push_back("MRT (ms)");
    core::TablePrinter resp_table(std::move(resp_headers));

    std::vector<std::string> gap_headers = {"Combo"};
    for (const std::string &label :
         analysis::interArrivalBucketLabels())
        gap_headers.push_back(label);
    gap_headers.push_back("Mean gap (ms)");
    core::TablePrinter gap_table(std::move(gap_headers));

    for (const workload::AppProfile &p : workload::comboProfiles()) {
        trace::Trace t = bench::makeAppTrace(p.name, scale);
        core::CaseResult res =
            core::runCase(t, core::SchemeKind::PS4, opts);
        sim::Histogram rh = analysis::responseDistribution(res.replayed);
        std::vector<std::string> row = {p.name};
        for (std::size_t i = 0; i < rh.bucketCount(); ++i)
            row.push_back(core::fmt(100.0 * rh.fractionAt(i), 1));
        row.push_back(core::fmt(res.meanResponseMs, 2));
        resp_table.addRow(std::move(row));

        sim::Histogram gh = analysis::interArrivalDistribution(t);
        analysis::TimingStats s = analysis::computeTimingStats(t);
        std::vector<std::string> grow = {p.name};
        for (std::size_t i = 0; i < gh.bucketCount(); ++i)
            grow.push_back(core::fmt(100.0 * gh.fractionAt(i), 1));
        grow.push_back(core::fmt(s.meanInterArrivalMs, 1));
        gap_table.addRow(std::move(grow));
    }

    std::cout << "\n-- Fig 7b: response time distributions (%) --\n\n";
    resp_table.print(std::cout);
    std::cout << "(paper: combo response times do not obviously "
                 "increase over the individual apps)\n";

    std::cout << "\n-- Fig 7c: inter-arrival time distributions (%) "
                 "--\n\n";
    gap_table.print(std::cout);
    std::cout << "(paper: combo mean inter-arrivals range 44.8-164 "
                 "ms)\n";
    return 0;
}
