/**
 * @file
 * Ablation A6: GC victim selection — greedy versus cost-benefit — on
 * an aged device under workloads with different temporal localities.
 *
 * Greedy minimizes relocation work per round; cost-benefit ages out
 * cold data and avoids re-relocating hot blocks under skew. The
 * smartphone workloads have moderate temporal locality
 * (Characteristic 5), so the gap is visible but not dramatic — part
 * of why a simple FTL suffices (Implication 4).
 */

#include <iostream>

#include "bench_util.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "core/sweep.hh"

using namespace emmcsim;

int
main(int argc, char **argv)
{
    const bench::BenchArgs args =
        bench::parseBenchArgs(argc, argv, 0.25);
    const double scale = args.scale;
    std::cout << "== Ablation A6: GC victim policy on an aged device "
                 "(scale " << scale << ") ==\n\n";

    core::TablePrinter table({"Workload", "Victim policy", "MRT (ms)",
                              "GC rounds", "Relocated units",
                              "Erased blocks"});

    const std::vector<std::string> apps = {"CameraVideo",
                                           "Installing"};
    std::vector<trace::Trace> traces;
    traces.reserve(apps.size());
    for (const std::string &app : apps)
        traces.push_back(bench::makeAppTrace(app, scale));

    std::vector<core::SweepCase> cases;
    for (std::size_t ti = 0; ti < traces.size(); ++ti) {
        for (ftl::GcVictimPolicy policy :
             {ftl::GcVictimPolicy::Greedy,
              ftl::GcVictimPolicy::CostBenefit}) {
            core::SweepCase c;
            c.label = apps[ti];
            c.trace = &traces[ti];
            c.kind = core::SchemeKind::PS4;
            c.opts.capacityScale = 1.0 / 64.0;
            c.opts.prefill = 0.70;
            c.opts.gcVictimPolicy = policy;
            cases.push_back(std::move(c));
        }
    }
    const std::vector<core::CaseResult> results =
        core::runCases(cases, args.jobs);

    for (std::size_t i = 0; i < results.size(); ++i) {
        const core::CaseResult &res = results[i];
        const char *name =
            cases[i].opts.gcVictimPolicy == ftl::GcVictimPolicy::Greedy
                ? "greedy"
                : "cost-benefit";
        table.addRow({cases[i].label, name,
                      core::fmt(res.meanResponseMs),
                      core::fmt(res.gcBlockingRounds),
                      core::fmt(res.gcRelocatedUnits),
                      core::fmt(res.gcErasedBlocks)});
    }
    table.print(std::cout);

    std::cout << "\nExpected: on these mostly-uniform overwrite "
                 "patterns greedy is near-optimal; cost-benefit pays "
                 "a little extra relocation for age-sorting, which "
                 "only wins under strong hot/cold skew. Either way "
                 "the simple policy suffices (Implication 4).\n";
    return 0;
}
