/**
 * @file
 * Ablation A6: GC victim selection — greedy versus cost-benefit — on
 * an aged device under workloads with different temporal localities.
 *
 * Greedy minimizes relocation work per round; cost-benefit ages out
 * cold data and avoids re-relocating hot blocks under skew. The
 * smartphone workloads have moderate temporal locality
 * (Characteristic 5), so the gap is visible but not dramatic — part
 * of why a simple FTL suffices (Implication 4).
 */

#include <iostream>

#include "bench_util.hh"
#include "core/experiment.hh"
#include "core/report.hh"

using namespace emmcsim;

int
main(int argc, char **argv)
{
    const double scale = bench::parseScale(argc, argv, 0.25);
    std::cout << "== Ablation A6: GC victim policy on an aged device "
                 "(scale " << scale << ") ==\n\n";

    core::TablePrinter table({"Workload", "Victim policy", "MRT (ms)",
                              "GC rounds", "Relocated units",
                              "Erased blocks"});

    for (const char *app : {"CameraVideo", "Installing"}) {
        trace::Trace t = bench::makeAppTrace(app, scale);
        for (ftl::GcVictimPolicy policy :
             {ftl::GcVictimPolicy::Greedy,
              ftl::GcVictimPolicy::CostBenefit}) {
            core::ExperimentOptions opts;
            opts.capacityScale = 1.0 / 64.0;
            opts.prefill = 0.70;
            opts.gcVictimPolicy = policy;
            core::CaseResult res =
                core::runCase(t, core::SchemeKind::PS4, opts);
            const char *name =
                policy == ftl::GcVictimPolicy::Greedy ? "greedy"
                                                      : "cost-benefit";
            table.addRow({app, name, core::fmt(res.meanResponseMs),
                          core::fmt(res.gcBlockingRounds),
                          core::fmt(res.gcRelocatedUnits),
                          core::fmt(res.gcErasedBlocks)});
        }
    }
    table.print(std::cout);

    std::cout << "\nExpected: on these mostly-uniform overwrite "
                 "patterns greedy is near-optimal; cost-benefit pays "
                 "a little extra relocation for age-sorting, which "
                 "only wins under strong hot/cold skew. Either way "
                 "the simple policy suffices (Implication 4).\n";
    return 0;
}
