/**
 * @file
 * Table IV reproduction: timing-related statistics of the 25 traces.
 *
 * Arrival-side columns come from the generated streams; service /
 * response / NoWait columns come from replaying each trace on the
 * conventional (4PS) device with the power-mode emulation enabled,
 * standing in for the paper's measurements on the real Nexus 5 eMMC.
 */

#include <iostream>

#include "analysis/timing_stats.hh"
#include "bench_util.hh"
#include "core/experiment.hh"
#include "core/report.hh"

using namespace emmcsim;

int
main(int argc, char **argv)
{
    const double scale = bench::parseScale(argc, argv);
    std::cout << "== Table IV: timing-related statistics of the 25 "
                 "traces (scale " << scale << ") ==\n\n";

    core::ExperimentOptions opts;
    opts.powerMode = true; // the real device sleeps between requests

    core::TablePrinter table(
        {"Application", "Recording Duration (s)", "Arrival Rate (Reqs/s)",
         "Access Rate (KB/s)", "NoWait Req. Ratio (%)",
         "Mean Serv. (ms)", "Mean Resp. (ms)", "Spatial Locality (%)",
         "Temporal Locality (%)"});

    for (const workload::AppProfile &p : workload::allProfiles()) {
        trace::Trace t = bench::makeAppTrace(p.name, scale);
        core::CaseResult res =
            core::runCase(t, core::SchemeKind::PS4, opts);
        analysis::TimingStats s =
            analysis::computeTimingStats(res.replayed);
        table.addRow({s.name, core::fmt(s.durationSec, 0),
                      core::fmt(s.arrivalRate, 2),
                      core::fmt(s.accessRateKbps, 2),
                      core::fmt(s.noWaitPct, 0),
                      core::fmt(s.meanServiceMs, 2),
                      core::fmt(s.meanResponseMs, 2),
                      core::fmt(s.spatialPct, 2),
                      core::fmt(s.temporalPct, 2)});
    }
    table.print(std::cout);

    std::cout << "\nCharacteristic 3 check: most requests are served "
                 "immediately (paper: >=63% NoWait in 15 of 18, >80% "
                 "in 10 of 18).\n";
    std::cout << "Characteristic 5 check: spatial localities below "
                 "48% everywhere, temporal generally higher.\n";
    return 0;
}
