/**
 * @file
 * Ablation A2 (Implication 3): RAM-buffer hit rate versus buffer
 * size under the observed weak localities.
 *
 * The paper argues a large RAM buffer is unprofitable because
 * localities are weak. We sweep the buffer size on several apps and
 * report the read hit rate and MRT.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "core/sweep.hh"

using namespace emmcsim;

int
main(int argc, char **argv)
{
    const bench::BenchArgs args =
        bench::parseBenchArgs(argc, argv, 0.5);
    const double scale = args.scale;
    std::cout << "== Ablation A2: RAM buffer size vs hit rate "
                 "(Implication 3; scale " << scale << ") ==\n\n";

    core::TablePrinter table({"Workload", "Buffer", "Read hit rate (%)",
                              "MRT (ms)"});

    const std::vector<std::string> apps = {"Twitter", "Facebook",
                                           "Movie"};
    const std::vector<std::uint64_t> sizes_mb = {0, 1, 4, 16, 64};
    std::vector<trace::Trace> traces;
    traces.reserve(apps.size());
    for (const std::string &app : apps)
        traces.push_back(bench::makeAppTrace(app, scale));

    std::vector<core::SweepCase> cases;
    for (std::size_t ti = 0; ti < traces.size(); ++ti) {
        for (std::uint64_t mb : sizes_mb) {
            core::SweepCase c;
            c.label = apps[ti];
            c.trace = &traces[ti];
            c.kind = core::SchemeKind::PS4;
            if (mb > 0) {
                c.opts.ramBuffer = true;
                c.opts.ramBufferUnits = mb * sim::kMiB / sim::kUnitBytes;
            }
            cases.push_back(std::move(c));
        }
    }
    const std::vector<core::CaseResult> results =
        core::runCases(cases, args.jobs);

    for (std::size_t i = 0; i < results.size(); ++i) {
        const core::CaseResult &res = results[i];
        const std::uint64_t mb = sizes_mb[i % sizes_mb.size()];
        if (mb == 0) {
            table.addRow({cases[i].label, "off", "-",
                          core::fmt(res.meanResponseMs)});
        } else {
            table.addRow({cases[i].label, core::fmt(mb) + "MB",
                          core::fmt(100.0 * res.bufferReadHitRate, 1),
                          core::fmt(res.meanResponseMs)});
        }
    }
    table.print(std::cout);

    std::cout << "\nExpected: hit rates stay low even for large "
                 "buffers because spatial/temporal localities are "
                 "weak (Characteristic 5) — the paper's argument "
                 "against spending BOM on a large RAM buffer.\n";
    return 0;
}
