/**
 * @file
 * Ablation A2 (Implication 3): RAM-buffer hit rate versus buffer
 * size under the observed weak localities.
 *
 * The paper argues a large RAM buffer is unprofitable because
 * localities are weak. We sweep the buffer size on several apps and
 * report the read hit rate and MRT.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/experiment.hh"
#include "core/report.hh"

using namespace emmcsim;

int
main(int argc, char **argv)
{
    const double scale = bench::parseScale(argc, argv, 0.5);
    std::cout << "== Ablation A2: RAM buffer size vs hit rate "
                 "(Implication 3; scale " << scale << ") ==\n\n";

    core::TablePrinter table({"Workload", "Buffer", "Read hit rate (%)",
                              "MRT (ms)"});

    for (const char *app : {"Twitter", "Facebook", "Movie"}) {
        trace::Trace t = bench::makeAppTrace(app, scale);
        core::ExperimentOptions base;
        core::CaseResult off = core::runCase(t, core::SchemeKind::PS4,
                                             base);
        table.addRow({app, "off", "-", core::fmt(off.meanResponseMs)});
        for (std::uint64_t mb : {1, 4, 16, 64}) {
            core::ExperimentOptions opts;
            opts.ramBuffer = true;
            opts.ramBufferUnits = mb * sim::kMiB / sim::kUnitBytes;
            core::CaseResult res =
                core::runCase(t, core::SchemeKind::PS4, opts);
            table.addRow({app, core::fmt(mb) + "MB",
                          core::fmt(100.0 * res.bufferReadHitRate, 1),
                          core::fmt(res.meanResponseMs)});
        }
    }
    table.print(std::cout);

    std::cout << "\nExpected: hit rates stay low even for large "
                 "buffers because spatial/temporal localities are "
                 "weak (Characteristic 5) — the paper's argument "
                 "against spending BOM on a large RAM buffer.\n";
    return 0;
}
