/**
 * @file
 * Table V + Fig 10 reproduction: the configurations of the three
 * simulated eMMC devices and the structure of an HPS die.
 */

#include <iostream>

#include "core/report.hh"
#include "core/scheme.hh"

using namespace emmcsim;

namespace {

std::string
describePools(const flash::Geometry &g)
{
    std::string out;
    for (std::size_t i = 0; i < g.pools.size(); ++i) {
        if (i > 0)
            out += " + ";
        out += core::fmt(std::uint64_t{g.pools[i].blocksPerPlane}) +
               "x" +
               core::fmt(std::uint64_t{g.pools[i].pageBytes / 1024}) +
               "KB-page blks";
    }
    return out;
}

} // namespace

int
main()
{
    std::cout << "== Table V: configurations of the three eMMC "
                 "devices ==\n\n";
    core::TablePrinter table({"Parameter", "4PS", "8PS", "HPS"});

    auto c4 = core::schemeConfig(core::SchemeKind::PS4);
    auto c8 = core::schemeConfig(core::SchemeKind::PS8);
    auto ch = core::schemeConfig(core::SchemeKind::HPS);

    auto us = [](sim::Time t) { return core::fmt(sim::toMicroseconds(t), 0); };

    table.addRow({"Page read latency (us)",
                  us(c4.timing.pools[0].readLatency),
                  us(c8.timing.pools[0].readLatency),
                  us(ch.timing.pools[0].readLatency) + " / " +
                      us(ch.timing.pools[1].readLatency)});
    table.addRow({"Page write latency (us)",
                  us(c4.timing.pools[0].programLatency),
                  us(c8.timing.pools[0].programLatency),
                  us(ch.timing.pools[0].programLatency) + " / " +
                      us(ch.timing.pools[1].programLatency)});
    table.addRow({"Block erase latency (us)", us(c4.timing.eraseLatency),
                  us(c8.timing.eraseLatency),
                  us(ch.timing.eraseLatency)});
    auto hier = [](const flash::Geometry &g) {
        return core::fmt(std::uint64_t{g.channels}) + "x" +
               core::fmt(std::uint64_t{g.chipsPerChannel}) + "x" +
               core::fmt(std::uint64_t{g.diesPerChip}) + "x" +
               core::fmt(std::uint64_t{g.planesPerDie});
    };
    table.addRow({"Channel x chip x die x plane", hier(c4.geometry),
                  hier(c8.geometry), hier(ch.geometry)});
    table.addRow({"Blocks per plane", describePools(c4.geometry),
                  describePools(c8.geometry),
                  describePools(ch.geometry)});
    table.addRow({"Pages per block",
                  core::fmt(std::uint64_t{c4.geometry.pagesPerBlock}),
                  core::fmt(std::uint64_t{c8.geometry.pagesPerBlock}),
                  core::fmt(std::uint64_t{ch.geometry.pagesPerBlock})});
    auto cap = [](const flash::Geometry &g) {
        return core::fmt(g.capacityBytes().value() / sim::kGiB) +
               " GB";
    };
    table.addRow({"Total capacity", cap(c4.geometry), cap(c8.geometry),
                  cap(ch.geometry)});
    table.print(std::cout);

    std::cout << "\n== Fig 10: the structure of an HPS die ==\n\n";
    const auto &g = ch.geometry;
    for (std::uint32_t plane = 0; plane < g.planesPerDie; ++plane) {
        std::cout << "  Plane " << plane << ":\n";
        for (std::size_t i = 0; i < g.pools.size(); ++i) {
            std::cout << "    pool " << i << ": "
                      << g.pools[i].blocksPerPlane << " blocks of "
                      << g.pagesPerBlock << " x "
                      << g.pools[i].pageBytes / 1024 << "KB pages ("
                      << g.blockBytes(i) * g.pools[i].blocksPerPlane /
                             sim::kMiB
                      << " MB)\n";
        }
    }
    std::cout << "\nAll three devices expose identical hierarchy and "
                 "raw capacity, so internal parallelism affects the "
                 "schemes equally (paper, Section V-A).\n";
    return 0;
}
