/**
 * @file
 * Fig 5 reproduction: response-time distributions of the 18
 * individual traces, replayed on the conventional device with power
 * mode enabled.
 */

#include <iostream>

#include "analysis/correlation.hh"
#include "analysis/distributions.hh"
#include "bench_util.hh"
#include "core/experiment.hh"
#include "core/report.hh"

using namespace emmcsim;

int
main(int argc, char **argv)
{
    const double scale = bench::parseScale(argc, argv);
    std::cout << "== Fig 5: request response time distributions (% of "
                 "requests, scale " << scale << ") ==\n\n";

    core::ExperimentOptions opts;
    opts.powerMode = true;

    std::vector<std::string> headers = {"Application"};
    for (const std::string &label : analysis::responseBucketLabels())
        headers.push_back(label);
    headers.push_back("corr(size,resp)");
    core::TablePrinter table(std::move(headers));

    for (const workload::AppProfile &p :
         workload::individualProfiles()) {
        trace::Trace t = bench::makeAppTrace(p.name, scale);
        core::CaseResult res =
            core::runCase(t, core::SchemeKind::PS4, opts);
        sim::Histogram h = analysis::responseDistribution(res.replayed);
        std::vector<std::string> row = {p.name};
        for (std::size_t i = 0; i < h.bucketCount(); ++i)
            row.push_back(core::fmt(100.0 * h.fractionAt(i), 1));
        row.push_back(core::fmt(
            analysis::sizeResponseCorrelation(res.replayed), 2));
        table.addRow(std::move(row));
    }
    table.print(std::cout);

    std::cout << "\nPaper: most requests complete within 2 ms, the "
                 "vast majority within 16 ms, and long (>128 ms) "
                 "responses are rare; response shape tracks the "
                 "request-size shape (Fig 4), which the size/response "
                 "correlation column quantifies.\n";
    return 0;
}
