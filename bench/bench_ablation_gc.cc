/**
 * @file
 * Ablation A1 (Implication 2): threshold-triggered GC versus
 * idle-time GC under smartphone inter-arrival gaps.
 *
 * The paper argues that because 13 of 18 apps leave >=200 ms between
 * requests — longer than a GC round — reclamation should run in those
 * gaps instead of blocking writes when the free-block pool drains.
 * We age a shrunken device and replay a write-heavy app under both
 * policies.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/experiment.hh"
#include "core/report.hh"

using namespace emmcsim;

int
main(int argc, char **argv)
{
    const double scale = bench::parseScale(argc, argv, 0.25);
    std::cout << "== Ablation A1: blocking GC vs idle-time GC "
                 "(Implication 2; scale " << scale << ") ==\n\n";

    core::TablePrinter table({"Workload", "Policy", "MRT (ms)",
                              "Blocking GC rounds", "Idle GC steps"});

    for (const char *app : {"Messaging", "Twitter", "Installing"}) {
        trace::Trace t = bench::makeAppTrace(app, scale);
        for (bool idle_gc : {false, true}) {
            core::ExperimentOptions opts;
            opts.capacityScale = 1.0 / 64.0; // ~512MB device
            opts.prefill = 0.70;             // aged: GC pressure exists
            opts.idleGc = idle_gc;
            core::CaseResult res =
                core::runCase(t, core::SchemeKind::PS4, opts);
            table.addRow(
                {app, idle_gc ? "idle-time GC" : "threshold GC",
                 core::fmt(res.meanResponseMs),
                 core::fmt(res.gcBlockingRounds),
                 core::fmt(res.gcIdleRounds)});
        }
    }
    table.print(std::cout);

    std::cout << "\nReading the table: when the aged device is under "
                 "real GC pressure (Twitter, Installing), idle-time "
                 "reclamation empties the write path — blocking rounds "
                 "drop to ~0 and MRT falls sharply, the paper's "
                 "Implication 2. When there is no pressure (Messaging "
                 "writes fit in the headroom), background compaction "
                 "is pure overhead — idle GC should stay "
                 "threshold-gated in practice.\n";
    return 0;
}
