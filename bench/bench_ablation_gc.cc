/**
 * @file
 * Ablation A1 (Implication 2): threshold-triggered GC versus
 * idle-time GC under smartphone inter-arrival gaps.
 *
 * The paper argues that because 13 of 18 apps leave >=200 ms between
 * requests — longer than a GC round — reclamation should run in those
 * gaps instead of blocking writes when the free-block pool drains.
 * We age a shrunken device and replay a write-heavy app under both
 * policies.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "core/sweep.hh"

using namespace emmcsim;

int
main(int argc, char **argv)
{
    const bench::BenchArgs args =
        bench::parseBenchArgs(argc, argv, 0.25);
    const double scale = args.scale;
    std::cout << "== Ablation A1: blocking GC vs idle-time GC "
                 "(Implication 2; scale " << scale << ") ==\n\n";

    core::TablePrinter table({"Workload", "Policy", "MRT (ms)",
                              "Blocking GC rounds", "Idle GC steps"});

    const std::vector<std::string> apps = {"Messaging", "Twitter",
                                           "Installing"};
    std::vector<trace::Trace> traces;
    traces.reserve(apps.size());
    for (const std::string &app : apps)
        traces.push_back(bench::makeAppTrace(app, scale));

    std::vector<core::SweepCase> cases;
    for (std::size_t ti = 0; ti < traces.size(); ++ti) {
        for (bool idle_gc : {false, true}) {
            core::SweepCase c;
            c.label = apps[ti];
            c.trace = &traces[ti];
            c.kind = core::SchemeKind::PS4;
            c.opts.capacityScale = 1.0 / 64.0; // ~512MB device
            c.opts.prefill = 0.70; // aged: GC pressure exists
            c.opts.idleGc = idle_gc;
            cases.push_back(std::move(c));
        }
    }
    const std::vector<core::CaseResult> results =
        core::runCases(cases, args.jobs);

    for (std::size_t i = 0; i < results.size(); ++i) {
        const core::CaseResult &res = results[i];
        table.addRow({cases[i].label,
                      cases[i].opts.idleGc ? "idle-time GC"
                                           : "threshold GC",
                      core::fmt(res.meanResponseMs),
                      core::fmt(res.gcBlockingRounds),
                      core::fmt(res.gcIdleRounds)});
    }
    table.print(std::cout);

    std::cout << "\nReading the table: when the aged device is under "
                 "real GC pressure (Twitter, Installing), idle-time "
                 "reclamation empties the write path — blocking rounds "
                 "drop to ~0 and MRT falls sharply, the paper's "
                 "Implication 2. When there is no pressure (Messaging "
                 "writes fit in the headroom), background compaction "
                 "is pure overhead — idle GC should stay "
                 "threshold-gated in practice.\n";
    return 0;
}
