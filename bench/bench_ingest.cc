/**
 * @file
 * Ingestion-pipeline benchmarks (DESIGN.md §15): text-format parse
 * rate vs emmctrace-bin decode rate (records/s through a streaming
 * TraceSource), binary encode throughput, and a foreign-format
 * importer pass. The text/binary pair quantifies what the columnar
 * format buys on multi-GB replays.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/mmapfile.hh"
#include "trace/binfmt.hh"
#include "trace/ingest/ingest.hh"
#include "trace/source.hh"
#include "trace/trace.hh"

using namespace emmcsim;

namespace {

constexpr std::size_t kRecords = 200'000;

/** Deterministic mixed trace (no wall clock, no RNG). */
const trace::Trace &
benchTrace()
{
    static const trace::Trace t = [] {
        trace::Trace out("bench");
        out.reserve(kRecords);
        for (std::size_t i = 0; i < kRecords; ++i) {
            trace::TraceRecord r;
            r.arrival = static_cast<sim::Time>(i) * 12'345;
            r.lbaSector = units::Lba{
                ((i * 7919) % 100'000) *
                static_cast<std::uint64_t>(sim::kSectorsPerUnit)};
            r.sizeBytes = units::Bytes{(1 + i % 8) * sim::kUnitBytes};
            r.op = i % 3 == 0 ? trace::OpType::Read
                              : trace::OpType::Write;
            out.push(r);
        }
        return out;
    }();
    return t;
}

/** Lazily materialized on-disk copies of the bench trace. */
const std::string &
textPath()
{
    static const std::string path = [] {
        std::string p = "bench_ingest.trace";
        benchTrace().saveFile(p);
        return p;
    }();
    return path;
}

const std::string &
binPath()
{
    static const std::string path = [] {
        std::string p = "bench_ingest.bin";
        trace::saveBinTraceFile(benchTrace(), p);
        return p;
    }();
    return path;
}

/** Drain a source; returns records seen (must equal kRecords). */
std::uint64_t
drainSource(trace::TraceSource &src)
{
    trace::TraceRecord buf[4096];
    std::uint64_t n = 0;
    std::uint64_t sink = 0;
    while (true) {
        const std::size_t got = src.next(buf, 4096);
        if (got == 0)
            break;
        n += got;
        sink += buf[got - 1].sizeBytes.value();
    }
    benchmark::DoNotOptimize(sink);
    return n;
}

void
BM_TextStreamParse(benchmark::State &state)
{
    const std::string &path = textPath();
    for (auto _ : state) {
        trace::TextTraceSource src(path);
        if (drainSource(src) != kRecords || src.failed())
            state.SkipWithError("text stream parse failed");
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(kRecords) *
                            state.iterations());
}
BENCHMARK(BM_TextStreamParse)->Unit(benchmark::kMillisecond);

void
BM_BinStreamDecode(benchmark::State &state)
{
    const std::string &path = binPath();
    for (auto _ : state) {
        trace::BinTraceSource src(
            path, trace::BinTraceSource::Backing::Streamed);
        if (drainSource(src) != kRecords || src.failed())
            state.SkipWithError("binary stream decode failed");
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(kRecords) *
                            state.iterations());
    std::ifstream is(path, std::ios::binary | std::ios::ate);
    state.counters["bytes_per_record"] =
        static_cast<double>(is.tellg()) / kRecords;
}
BENCHMARK(BM_BinStreamDecode)->Unit(benchmark::kMillisecond);

/** Same decode, block bodies served from an mmap of the file — the
 *  streamed-vs-mapped delta is the per-block read()+copy cost. */
void
BM_BinMmapDecode(benchmark::State &state)
{
    if (!core::MappedFile::supported()) {
        state.SkipWithError("mmap not supported on this platform");
        return;
    }
    const std::string &path = binPath();
    for (auto _ : state) {
        trace::BinTraceSource src(
            path, trace::BinTraceSource::Backing::Mapped);
        if (drainSource(src) != kRecords || src.failed())
            state.SkipWithError("binary mmap decode failed");
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(kRecords) *
                            state.iterations());
}
BENCHMARK(BM_BinMmapDecode)->Unit(benchmark::kMillisecond);

void
BM_BinEncode(benchmark::State &state)
{
    const trace::Trace &t = benchTrace();
    const std::string path = "bench_ingest_enc.bin";
    for (auto _ : state) {
        trace::saveBinTraceFile(t, path);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(kRecords) *
                            state.iterations());
    std::remove(path.c_str());
}
BENCHMARK(BM_BinEncode)->Unit(benchmark::kMillisecond);

void
BM_IngestAlibabaCsv(benchmark::State &state)
{
    // Synthesize a CSV once; the benchmark measures the full ingest
    // pipeline: parse, filter, align, sort, rebase, build.
    const std::string path = "bench_ingest.csv";
    {
        std::ofstream os(path, std::ios::trunc);
        for (std::size_t i = 0; i < kRecords; ++i) {
            os << (i % 7) << (i % 3 == 0 ? ",R," : ",W,")
               << ((i * 7919) % 100'000) * sim::kUnitBytes << ','
               << (1 + i % 8) * sim::kUnitBytes << ',' << i * 100
               << '\n';
        }
    }
    for (auto _ : state) {
        trace::Trace out;
        trace::ingest::IngestStats stats;
        std::string error;
        if (!trace::ingest::ingestFile(trace::ingest::Format::Alibaba,
                                       path, {}, out, stats, error) ||
            out.size() != kRecords)
            state.SkipWithError("alibaba ingest failed");
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(kRecords) *
                            state.iterations());
    std::remove(path.c_str());
}
BENCHMARK(BM_IngestAlibabaCsv)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
