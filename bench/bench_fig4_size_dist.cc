/**
 * @file
 * Fig 4 reproduction: request-size distributions of the 18 individual
 * application traces over the paper's size buckets.
 */

#include <iostream>

#include "analysis/distributions.hh"
#include "bench_util.hh"
#include "core/report.hh"

using namespace emmcsim;

int
main(int argc, char **argv)
{
    const double scale = bench::parseScale(argc, argv);
    std::cout << "== Fig 4: request size distributions (% of "
                 "requests, scale " << scale << ") ==\n\n";

    std::vector<std::string> headers = {"Application"};
    for (const std::string &label : analysis::sizeBucketLabels())
        headers.push_back(label);
    core::TablePrinter table(std::move(headers));

    for (const workload::AppProfile &p :
         workload::individualProfiles()) {
        trace::Trace t = bench::makeAppTrace(p.name, scale);
        sim::Histogram h = analysis::sizeDistribution(t);
        std::vector<std::string> row = {p.name};
        for (std::size_t i = 0; i < h.bucketCount(); ++i)
            row.push_back(core::fmt(100.0 * h.fractionAt(i), 1));
        table.addRow(std::move(row));
    }
    table.print(std::cout);

    std::cout << "\nCharacteristic 2 check: in 15 of 18 traces the "
                 "<=4KB bucket should hold the plurality (paper: "
                 "44.9%-57.4%); Movie and Booting are the "
                 "exceptions.\n";
    return 0;
}
