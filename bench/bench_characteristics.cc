/**
 * @file
 * Section III summary: evaluate the paper's six characteristics over
 * the full replayed trace set and print the support counts next to
 * the paper's claims.
 */

#include <iostream>
#include <vector>

#include "analysis/characteristics.hh"
#include "bench_util.hh"
#include "core/experiment.hh"
#include "core/report.hh"

using namespace emmcsim;

int
main(int argc, char **argv)
{
    const double scale = bench::parseScale(argc, argv);
    std::cout << "== Characteristics 1-6 over the 18 individual "
                 "traces (scale " << scale << ") ==\n\n";

    core::ExperimentOptions opts;
    opts.powerMode = true;

    std::vector<trace::Trace> replayed;
    replayed.reserve(18);
    for (const workload::AppProfile &p :
         workload::individualProfiles()) {
        trace::Trace t = bench::makeAppTrace(p.name, scale);
        replayed.push_back(
            core::runCase(t, core::SchemeKind::PS4, opts).replayed);
    }

    analysis::CharacteristicsReport rep =
        analysis::evaluateCharacteristics(replayed);
    std::cout << analysis::describeCharacteristics(rep);

    std::cout << "\nPaper's claims for comparison:\n"
                 "  C1: 15/18 write-dominant, 6 above 90%\n"
                 "  C2: 15/18 with a small-request majority\n"
                 "  C3: >=63% NoWait in 15/18, >80% in 10/18\n"
                 "  C4: mode switching raises response times "
                 "(see bench_ablation_power)\n"
                 "  C5: spatial <48% in all, temporal generally "
                 "higher\n"
                 "  C6: 13/18 with mean gap >= 200 ms, 10/18 with "
                 ">20% of gaps above 16 ms\n";
    return 0;
}
