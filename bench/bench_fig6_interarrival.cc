/**
 * @file
 * Fig 6 reproduction: inter-arrival time distributions of the 18
 * individual traces.
 */

#include <iostream>

#include "analysis/distributions.hh"
#include "analysis/timing_stats.hh"
#include "bench_util.hh"
#include "core/report.hh"

using namespace emmcsim;

int
main(int argc, char **argv)
{
    const double scale = bench::parseScale(argc, argv);
    std::cout << "== Fig 6: request inter-arrival time distributions "
                 "(% of gaps, scale " << scale << ") ==\n\n";

    std::vector<std::string> headers = {"Application"};
    for (const std::string &label :
         analysis::interArrivalBucketLabels())
        headers.push_back(label);
    headers.push_back("Mean gap (ms)");
    core::TablePrinter table(std::move(headers));

    std::size_t long_mean = 0;
    std::size_t heavy_tail = 0;
    for (const workload::AppProfile &p :
         workload::individualProfiles()) {
        trace::Trace t = bench::makeAppTrace(p.name, scale);
        sim::Histogram h = analysis::interArrivalDistribution(t);
        analysis::TimingStats s = analysis::computeTimingStats(t);
        std::vector<std::string> row = {p.name};
        for (std::size_t i = 0; i < h.bucketCount(); ++i)
            row.push_back(core::fmt(100.0 * h.fractionAt(i), 1));
        row.push_back(core::fmt(s.meanInterArrivalMs, 1));
        table.addRow(std::move(row));
        if (s.meanInterArrivalMs >= 200.0)
            ++long_mean;
        if (analysis::interArrivalTailFraction(t, 16.0) > 0.20)
            ++heavy_tail;
    }
    table.print(std::cout);

    std::cout << "\nCharacteristic 6 check: " << long_mean
              << "/18 traces have a mean inter-arrival >= 200 ms "
                 "(paper: 13/18); "
              << heavy_tail
              << "/18 have >20% of gaps above 16 ms (paper: 10/18).\n";
    return 0;
}
