/**
 * @file
 * Extension E3: performance under NAND faults.
 *
 * The paper's Table V devices assume a perfect medium; real eMMC parts
 * spend latency on ECC read retries and firmware-level relocation as
 * the raw bit-error rate (RBER) climbs with wear and retention. This
 * bench replays the same workload on 4PS / 8PS / HPS under a seeded
 * fault injector while sweeping the base RBER, and reports how the
 * mean response time and the p99 tail degrade — plus the recovery
 * work (retry rounds, corrected reads, host retries) that buys the
 * graceful part of the degradation.
 *
 * A second sweep raises the program-failure probability to show the
 * relocation / bad-block-retirement path: data survives, blocks
 * retire, and only spare exhaustion turns the device read-only.
 *
 * Usage: bench_ext_reliability [trace-scale]
 */

#include <iostream>

#include "core/experiment.hh"
#include "core/report.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

using namespace emmcsim;

namespace {

core::ExperimentOptions
baseOptions()
{
    core::ExperimentOptions opts;
    opts.capacityScale = 0.05; // ~1.6GB devices; replay stays quick
    return opts;
}

} // namespace

int
main(int argc, char **argv)
{
    double scale = argc > 1 ? std::atof(argv[1]) : 0.05;
    if (scale <= 0.0)
        scale = 0.05;

    const workload::AppProfile *profile =
        workload::findProfile("Booting");
    if (profile == nullptr) {
        std::cerr << "profile lookup failed\n";
        return 1;
    }
    workload::TraceGenerator gen(*profile, /*seed=*/29);
    trace::Trace t = gen.generate(scale);

    std::cout << "== Extension E3: response time under NAND faults ("
              << t.size() << " requests, seeded injector) ==\n\n";

    // --- Sweep 1: read-path degradation vs base RBER. -------------
    // The ECC threshold is 2e-4: the first point is fault-free, the
    // second is comfortably correctable, the later ones push reads
    // into the retry ladder with increasing frequency.
    const double rbers[] = {0.0, 1e-4, 3e-4, 6e-4, 1.2e-3};

    core::TablePrinter read_table(
        {"Scheme", "Base RBER", "MRT (ms)", "p99 (ms)", "Retry rounds",
         "Corrected", "Uncorrectable", "Host retries", "Failed"});
    for (core::SchemeKind kind : core::allSchemes()) {
        for (double rber : rbers) {
            core::ExperimentOptions opts = baseOptions();
            if (rber > 0.0) {
                opts.fault.enabled = true;
                opts.fault.seed = 5;
                opts.fault.baseRber = rber;
            }
            core::CaseResult res = core::runCase(t, kind, opts);
            read_table.addRow(
                {res.scheme, core::fmt(rber, 5),
                 core::fmt(res.meanResponseMs),
                 core::fmt(res.p99ResponseMs),
                 core::fmt(res.readRetryRounds),
                 core::fmt(res.correctedReads),
                 core::fmt(res.uncorrectableReads),
                 core::fmt(res.hostRetries),
                 core::fmt(res.hostFailedRequests)});
        }
    }
    read_table.print(std::cout);

    std::cout << "\nReading the table: every retry round is a full "
                 "page re-sense, so MRT and the p99 tail climb "
                 "monotonically with RBER; 8PS pays the most per "
                 "retry (its 244us page reads are the largest unit "
                 "of repeated work). Below the 2e-4 ECC threshold "
                 "the fault machinery is latency-neutral.\n\n";

    // --- Sweep 2: program failures, relocation, retirement. -------
    const double pfails[] = {1e-4, 1e-3, 5e-3};

    core::TablePrinter write_table(
        {"Scheme", "P(program fail)", "MRT (ms)", "Program fails",
         "Relocated", "Retired blocks", "Erase fails", "Read-only"});
    for (core::SchemeKind kind : core::allSchemes()) {
        for (double pfail : pfails) {
            core::ExperimentOptions opts = baseOptions();
            opts.fault.enabled = true;
            opts.fault.seed = 5;
            opts.fault.programFailProb = pfail;
            opts.fault.eraseFailProb = pfail / 10.0;
            core::CaseResult res = core::runCase(t, kind, opts);
            write_table.addRow(
                {res.scheme, core::fmt(pfail, 4),
                 core::fmt(res.meanResponseMs),
                 core::fmt(res.programFailures),
                 core::fmt(res.relocatedPrograms),
                 core::fmt(res.retiredBlocks),
                 core::fmt(res.eraseFailures),
                 res.deviceReadOnly ? "yes" : "no"});
        }
    }
    write_table.print(std::cout);

    std::cout << "\nReading the table: every program failure re-issues "
                 "its page to a fresh block (no data loss) and marks "
                 "the old one suspect; GC drains suspects into the "
                 "grown-bad-block table. Retirement consumes the "
                 "spare budget — only when a plane-pool exhausts it "
                 "does the device degrade to read-only, and even then "
                 "reads keep being served.\n";
    return 0;
}
