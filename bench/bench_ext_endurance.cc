/**
 * @file
 * Extension E2: the endurance side of the Section V argument.
 *
 * "When the two eMMC devices have the same total capacity the
 * 8KB-page-size eMMC has a much fewer number of pages ... it will
 * have more garbage collection operations after its limited number of
 * free pages are quickly consumed by the small random write requests.
 * More GC operations further lowers the performance and shrinks the
 * lifetime of the device."
 *
 * We stream random single-page (4KB) writes — the paper's dominant
 * request class — through a shrunken device of each scheme until the
 * volume written is several times the raw capacity, and report the
 * erase counts, write amplification, and wear spread.
 */

#include <iostream>

#include "core/experiment.hh"
#include "core/report.hh"
#include "sim/random.hh"
#include "workload/fixed.hh"

using namespace emmcsim;

int
main(int argc, char **argv)
{
    double volume_x = argc > 1 ? std::atof(argv[1]) : 2.0;
    if (volume_x <= 0.0)
        volume_x = 2.0;
    std::cout << "== Extension E2: GC and endurance under small random "
                 "writes (" << volume_x
              << "x raw capacity written) ==\n\n";

    // ~512MB devices; the write footprint fits every pool. The
    // stream mixes 4KB and 8KB random writes 2:1 (equal bytes in each
    // size class, matching the HPS pools' 50/50 capacity split).
    const double cap_scale = 1.0 / 64.0;
    const std::uint64_t raw_bytes =
        static_cast<std::uint64_t>(32.0 * cap_scale * 1024.0) *
        sim::kMiB;
    const auto total_units = static_cast<std::uint64_t>(
        volume_x * static_cast<double>(raw_bytes) / 4096.0);

    sim::Rng rng(7);
    trace::Trace t("rand-small-write");
    const std::int64_t kRegionUnits = 12 * 1024; // 48MB per class
    sim::Time now = 0;
    std::uint64_t written_units = 0;
    for (std::uint64_t i = 0; written_units < total_units; ++i) {
        trace::TraceRecord r;
        r.arrival = now;
        r.op = trace::OpType::Write;
        if (i % 3 != 2) { // two 4KB writes ...
            r.sizeBytes = units::Bytes{sim::kib(4)};
            r.lbaSector = units::unitToLba(units::UnitAddr{
                rng.uniformInt(0, kRegionUnits - 1)});
            written_units += 1;
        } else { // ... then one aligned 8KB write
            r.sizeBytes = units::Bytes{sim::kib(8)};
            r.lbaSector = units::unitToLba(units::UnitAddr{
                kRegionUnits +
                2 * rng.uniformInt(0, kRegionUnits / 2 - 1)});
            written_units += 2;
        }
        t.push(r);
        now += sim::microseconds(500);
    }

    core::TablePrinter table({"Scheme", "Host writes", "Block erases",
                              "Write amplification", "Wear spread",
                              "GC rounds", "MRT (ms)"});
    for (core::SchemeKind kind : core::allSchemes()) {
        core::ExperimentOptions opts;
        opts.capacityScale = cap_scale;
        core::CaseResult res = core::runCase(t, kind, opts);
        table.addRow({res.scheme, core::fmt(res.requests),
                      core::fmt(res.totalErases),
                      core::fmt(res.writeAmplification, 2),
                      core::fmt(std::uint64_t{res.wearSpread}),
                      core::fmt(res.gcBlockingRounds),
                      core::fmt(res.meanResponseMs)});
    }
    table.print(std::cout);

    std::cout << "\nReading the table: 8PS pads every 4KB write into "
                 "an 8KB page (write amplification ~1.5x on this mix), "
                 "so its free pages drain faster and it erases more "
                 "blocks than 4PS for the same host volume — the "
                 "lifetime cost the paper charges against a pure "
                 "large-page design. HPS is best of all: no padding, "
                 "and its 8KB blocks reclaim twice the data per "
                 "erase. The tiny wear spread everywhere is the "
                 "simple min-erase wear leveler (Implication 4) "
                 "sufficing.\n";
    return 0;
}
