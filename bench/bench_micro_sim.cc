/**
 * @file
 * A5: google-benchmark microbenchmarks of the simulator substrate —
 * event-queue throughput, trace generation, and full replay speed.
 */

#include <benchmark/benchmark.h>

#include "core/experiment.hh"
#include "host/replayer.hh"
#include "sim/simulator.hh"
#include "workload/fixed.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

using namespace emmcsim;

namespace {

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const auto n = static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        sim::Simulator s;
        std::uint64_t sink = 0;
        for (std::uint64_t i = 0; i < n; ++i)
            s.schedule(static_cast<sim::Time>((i * 7919) % 100000),
                       [&sink] { ++sink; });
        s.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                            state.iterations());
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1 << 10)->Arg(1 << 14);

void
BM_TraceGeneration(benchmark::State &state)
{
    const workload::AppProfile *p = workload::findProfile("Twitter");
    for (auto _ : state) {
        workload::TraceGenerator gen(*p, 1);
        trace::Trace t = gen.generate(0.5);
        benchmark::DoNotOptimize(t.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(p->requestCount / 2) *
        state.iterations());
}
BENCHMARK(BM_TraceGeneration);

void
BM_DeviceConstruction(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulator s;
        auto dev = core::makeDevice(s, core::SchemeKind::HPS);
        benchmark::DoNotOptimize(dev->ftl().logicalUnits());
    }
}
BENCHMARK(BM_DeviceConstruction)->Unit(benchmark::kMillisecond);

void
BM_ReplayFixedStream(benchmark::State &state)
{
    workload::FixedStreamSpec spec;
    spec.write = true;
    spec.sizeBytes = sim::kib(16);
    spec.count = 2000;
    spec.gap = sim::microseconds(500);
    trace::Trace t = workload::makeFixedStream(spec);
    for (auto _ : state) {
        sim::Simulator s;
        auto dev = core::makeDevice(s, core::SchemeKind::PS4);
        host::Replayer rep(s, *dev);
        trace::Trace out = rep.replay(t);
        benchmark::DoNotOptimize(out.size());
    }
    state.SetItemsProcessed(2000 * state.iterations());
    state.SetLabel("requests/iter=2000");
}
BENCHMARK(BM_ReplayFixedStream)->Unit(benchmark::kMillisecond);

void
BM_RunCaseTwitterScaled(benchmark::State &state)
{
    const workload::AppProfile *p = workload::findProfile("Twitter");
    workload::TraceGenerator gen(*p, 1);
    trace::Trace t = gen.generate(0.1);
    for (auto _ : state) {
        core::CaseResult res = core::runCase(t, core::SchemeKind::HPS);
        benchmark::DoNotOptimize(res.meanResponseMs);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(t.size()) *
                            state.iterations());
}
BENCHMARK(BM_RunCaseTwitterScaled)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
