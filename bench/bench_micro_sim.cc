/**
 * @file
 * A5: google-benchmark microbenchmarks of the simulator substrate —
 * event-queue throughput, trace generation, and full replay speed.
 */

#include <benchmark/benchmark.h>

#include <functional>

#include "core/experiment.hh"
#include "host/replayer.hh"
#include "sim/simulator.hh"
#include "workload/fixed.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

using namespace emmcsim;

namespace {

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const auto n = static_cast<std::uint64_t>(state.range(0));
    std::size_t high_water = 0;
    for (auto _ : state) {
        sim::Simulator s;
        std::uint64_t sink = 0;
        for (std::uint64_t i = 0; i < n; ++i)
            s.schedule(static_cast<sim::Time>((i * 7919) % 100000),
                       [&sink] { ++sink; });
        s.run();
        benchmark::DoNotOptimize(sink);
        high_water = s.events().arenaHighWater();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                            state.iterations());
    state.counters["arena_high_water"] =
        static_cast<double>(high_water);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1 << 10)->Arg(1 << 14);

void
BM_EventQueueScheduleRunClustered(benchmark::State &state)
{
    // Device-shaped load on the tuned calendar wheel: completions
    // arrive in same-tick ties of 8 (multi-plane completions), on
    // four fixed NAND latencies, and each handler reschedules a
    // follow-up — the shape the two-tier queue and batched dispatch
    // are built for. Compare against BM_EventQueueScheduleRun to see
    // the wheel + batch win; scripts/run_benchmarks.sh gates this
    // against the committed baseline.
    static constexpr sim::Time kLat[4] = {160'000, 244'000, 1'385'000,
                                          3'800'000};
    const auto n = static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        sim::Simulator s;
        s.tuneEventHorizon(kLat[0], kLat[3]);
        std::uint64_t fired = 0;
        std::uint64_t budget = 4 * n;
        std::function<void()> tick = [&] {
            ++fired;
            if (budget > 0) {
                --budget;
                const sim::Time now = s.now();
                s.schedule(now + kLat[(now >> 10) & 3], tick);
            }
        };
        for (std::uint64_t i = 0; i < n; ++i)
            s.schedule(kLat[(i / 8) & 3] +
                           static_cast<sim::Time>(i / 8) * 257,
                       tick);
        s.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(5 * n) *
                            state.iterations());
}
BENCHMARK(BM_EventQueueScheduleRunClustered)
    ->Arg(1 << 12)
    ->Arg(1 << 14);

void
BM_EventArenaSteadyState(benchmark::State &state)
{
    // Slot-recycling steady state: one long-lived queue, repeatedly
    // filled and drained. The arena must stay at one batch of slots
    // (peak live), and the schedule/pop cycle must not allocate.
    const auto n = static_cast<std::uint64_t>(state.range(0));
    sim::EventQueue q;
    std::uint64_t sink = 0;
    sim::Time base = 0;

    auto fill_drain = [&] {
        for (std::uint64_t i = 0; i < n; ++i)
            q.schedule(base + static_cast<sim::Time>(i),
                       [&sink] { ++sink; });
        sim::Time t;
        sim::EventAction a;
        while (q.pop(t, a))
            a();
        base += static_cast<sim::Time>(n);
    };

    fill_drain(); // warm the arena / heap storage
    for (auto _ : state)
        fill_drain();
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                            state.iterations());
    state.counters["arena_slots"] =
        static_cast<double>(q.arenaSlots());
    state.counters["arena_high_water"] =
        static_cast<double>(q.arenaHighWater());
    state.counters["lifetime_events"] =
        static_cast<double>(q.scheduledCount());
}
BENCHMARK(BM_EventArenaSteadyState)->Arg(1 << 10)->Arg(1 << 14);

void
BM_EventQueueCancelChurn(benchmark::State &state)
{
    // Timer/retry-heavy workloads cancel most of what they schedule;
    // this exercises lazy delete plus wholesale heap compaction.
    const auto n = static_cast<std::uint64_t>(state.range(0));
    sim::EventQueue q;
    std::vector<sim::EventId> ids(n);
    sim::Time base = 0;

    for (auto _ : state) {
        for (std::uint64_t i = 0; i < n; ++i)
            ids[i] = q.schedule(base + static_cast<sim::Time>(i), [] {});
        for (std::uint64_t i = 0; i < n; ++i) {
            if (i % 4 != 0)
                q.cancel(ids[i]);
        }
        sim::Time t;
        sim::EventAction a;
        while (q.pop(t, a))
            a();
        base += static_cast<sim::Time>(n);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                            state.iterations());
    state.counters["heap_compactions"] =
        static_cast<double>(q.heapCompactions());
    state.counters["arena_slots"] =
        static_cast<double>(q.arenaSlots());
}
BENCHMARK(BM_EventQueueCancelChurn)->Arg(1 << 12);

void
BM_TraceGeneration(benchmark::State &state)
{
    const workload::AppProfile *p = workload::findProfile("Twitter");
    for (auto _ : state) {
        workload::TraceGenerator gen(*p, 1);
        trace::Trace t = gen.generate(0.5);
        benchmark::DoNotOptimize(t.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(p->requestCount / 2) *
        state.iterations());
}
BENCHMARK(BM_TraceGeneration);

void
BM_DeviceConstruction(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulator s;
        auto dev = core::makeDevice(s, core::SchemeKind::HPS);
        benchmark::DoNotOptimize(dev->ftl().logicalUnits());
    }
}
BENCHMARK(BM_DeviceConstruction)->Unit(benchmark::kMillisecond);

void
BM_ReplayFixedStream(benchmark::State &state)
{
    workload::FixedStreamSpec spec;
    spec.write = true;
    spec.sizeBytes = sim::kib(16);
    spec.count = 2000;
    spec.gap = sim::microseconds(500);
    trace::Trace t = workload::makeFixedStream(spec);
    for (auto _ : state) {
        sim::Simulator s;
        auto dev = core::makeDevice(s, core::SchemeKind::PS4);
        host::Replayer rep(s, *dev);
        trace::Trace out = rep.replay(t);
        benchmark::DoNotOptimize(out.size());
    }
    state.SetItemsProcessed(2000 * state.iterations());
    state.SetLabel("requests/iter=2000");
}
BENCHMARK(BM_ReplayFixedStream)->Unit(benchmark::kMillisecond);

void
BM_RunCaseTwitterScaled(benchmark::State &state)
{
    const workload::AppProfile *p = workload::findProfile("Twitter");
    workload::TraceGenerator gen(*p, 1);
    trace::Trace t = gen.generate(0.1);
    for (auto _ : state) {
        core::CaseResult res = core::runCase(t, core::SchemeKind::HPS);
        benchmark::DoNotOptimize(res.meanResponseMs);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(t.size()) *
                            state.iterations());
}
BENCHMARK(BM_RunCaseTwitterScaled)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
