/**
 * @file
 * Extension E1 (Implication 5): HPS with an SLC-mode 4KB pool (HSLC).
 *
 * "One feasible way to better serve these small requests is to use
 * SLC flash ... an MLC flash cell can work in the SLC mode by
 * selectively using its fast pages, and thus obtains an SLC-like
 * performance. The performance gain is achieved at the cost of 50%
 * capacity loss." We quantify exactly that trade on the small-request-
 * dominated applications.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/experiment.hh"
#include "core/report.hh"

using namespace emmcsim;

int
main(int argc, char **argv)
{
    const double scale = bench::parseScale(argc, argv, 0.5);
    std::cout << "== Extension E1: SLC-mode 4KB pool (Implication 5; "
                 "scale " << scale << ") ==\n\n";

    auto cap_gb = [](core::SchemeKind kind) {
        return core::schemeConfig(kind).geometry.capacityBytes() /
               sim::kGiB;
    };
    std::cout << "Device capacity: HPS "
              << cap_gb(core::SchemeKind::HPS) << " GB vs HSLC "
              << cap_gb(core::SchemeKind::HSLC)
              << " GB (the 50% density cost of SLC mode on the 4KB "
                 "pool).\n\n";

    core::TablePrinter table({"Application", "HPS MRT (ms)",
                              "HSLC MRT (ms)", "Improvement (%)",
                              "HSLC space util"});
    for (const char *app : {"Messaging", "Twitter", "GoogleMaps",
                            "Facebook", "Email", "Music", "Booting"}) {
        trace::Trace t = bench::makeAppTrace(app, scale);
        core::CaseResult hps = core::runCase(t, core::SchemeKind::HPS);
        core::CaseResult slc = core::runCase(t, core::SchemeKind::HSLC);
        table.addRow(
            {app, core::fmt(hps.meanResponseMs),
             core::fmt(slc.meanResponseMs),
             core::fmt(100.0 *
                           (hps.meanResponseMs - slc.meanResponseMs) /
                           hps.meanResponseMs,
                       1),
             core::fmt(slc.spaceUtilization, 3)});
    }
    table.print(std::cout);

    std::cout << "\nExpected: apps dominated by 4KB requests "
                 "(Characteristic 2) gain most — their odd-sized "
                 "writes and single-page reads land in the SLC-mode "
                 "pool (400us programs instead of 1385us) — while "
                 "space utilization stays at 1.0 because the split "
                 "still pads nothing.\n";
    return 0;
}
