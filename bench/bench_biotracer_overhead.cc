/**
 * @file
 * Section II-C reproduction: BIOtracer's measurement overhead.
 *
 * The paper argues the tracer perturbs its own measurements by only
 * ~2%: a 32KB record buffer flushes every ~300 requests at a cost of
 * ~6 extra I/O operations. We instrument several generated traces and
 * replay both versions to measure the actual slowdown on the device
 * model.
 *
 * Each replay runs under an obs::DeviceObserver, and the injected-op
 * count is cross-checked against the observability layer: the delta of
 * the "emmc.requests" counter between the traced and bare replays must
 * equal the instrumenter's own tally. Mean response times are read
 * back from the "emmc.response_ms" registry summary, so the numbers
 * printed here are the same ones any --metrics-json consumer sees.
 *
 * Accepts --metrics-json=FILE to dump every replay's full snapshot as
 * one emmcsim-run-report-v1 document (two runs per application).
 */

#include <iostream>

#include "bench_util.hh"
#include "core/report.hh"
#include "core/scheme.hh"
#include "host/biotracer.hh"
#include "host/replayer.hh"
#include "obs/observer.hh"
#include "obs/report.hh"

using namespace emmcsim;

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv, 0.5);
    std::cout << "== BIOtracer overhead (Section II-C; scale "
              << args.scale << ") ==\n\n";

    core::TablePrinter table({"Application", "Requests",
                              "Injected ops", "Op overhead (%)",
                              "Bare MRT (ms)", "Traced MRT (ms)",
                              "MRT penalty (%)"});

    obs::RunReport report;
    bool cross_check_ok = true;

    for (const char *app : {"Twitter", "GoogleMaps", "Radio",
                            "Messaging"}) {
        trace::Trace bare = bench::makeAppTrace(app, args.scale);
        host::BioTracerStats stats;
        trace::Trace traced = host::instrumentTrace(bare, {}, &stats);

        auto replay_case = [&](const trace::Trace &t,
                               const std::string &run_name) {
            sim::Simulator s;
            auto dev = core::makeDevice(s, core::SchemeKind::PS4);
            host::Replayer rep(s, *dev);
            obs::ObserverOptions obs_opts;
            obs_opts.metrics = true;
            obs_opts.replayStats = &rep.stats();
            obs::DeviceObserver observer(s, *dev, obs_opts);
            rep.replay(t);
            observer.finish();
            if (!args.metricsJson.empty())
                report.addRun(run_name, observer.snapshot());
            return observer.snapshot();
        };
        const obs::MetricsSnapshot bare_snap =
            replay_case(bare, std::string(app) + "_bare");
        const obs::MetricsSnapshot traced_snap =
            replay_case(traced, std::string(app) + "_traced");

        // Cross-check: the device-side request counter must account
        // for exactly the tracer's injected flush writes.
        const std::uint64_t obs_injected =
            traced_snap.counterValue("emmc.requests") -
            bare_snap.counterValue("emmc.requests");
        if (obs_injected != stats.injectedOps) {
            std::cerr << "CROSS-CHECK FAILED for " << app
                      << ": instrumenter says " << stats.injectedOps
                      << " injected ops, obs counters say "
                      << obs_injected << "\n";
            cross_check_ok = false;
        }

        const auto *bare_mrt =
            bare_snap.findSummary("emmc.response_ms");
        const auto *traced_mrt =
            traced_snap.findSummary("emmc.response_ms");
        const double bare_ms = bare_mrt ? bare_mrt->mean : 0.0;
        const double traced_ms = traced_mrt ? traced_mrt->mean : 0.0;

        table.addRow(
            {app, core::fmt(stats.tracedRequests),
             core::fmt(obs_injected),
             core::fmt(100.0 * stats.overheadRatio(), 2),
             core::fmt(bare_ms), core::fmt(traced_ms),
             core::fmt(100.0 * (traced_ms - bare_ms) /
                           std::max(bare_ms, 1e-9),
                       2)});
    }
    table.print(std::cout);

    std::cout << "\nPaper: ~6 extra operations per 300 requests = 2% "
                 "op overhead; the perturbation of the measured "
                 "response times is expected to stay in the same "
                 "low-single-digit band.\n";

    if (!args.metricsJson.empty()) {
        report.setMeta("tool", "bench_biotracer_overhead");
        report.setMeta("scale", args.scale);
        report.writeJsonFile(args.metricsJson);
        std::cout << "\nwrote metrics report (" << report.runCount()
                  << " runs) to " << args.metricsJson << "\n";
    }

    if (!cross_check_ok) {
        std::cerr << "\nobs cross-check failed\n";
        return 1;
    }
    return 0;
}
