/**
 * @file
 * Section II-C reproduction: BIOtracer's measurement overhead.
 *
 * The paper argues the tracer perturbs its own measurements by only
 * ~2%: a 32KB record buffer flushes every ~300 requests at a cost of
 * ~6 extra I/O operations. We instrument several generated traces and
 * replay both versions to measure the actual slowdown on the device
 * model.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/report.hh"
#include "core/scheme.hh"
#include "host/biotracer.hh"
#include "host/replayer.hh"

using namespace emmcsim;

int
main(int argc, char **argv)
{
    const double scale = bench::parseScale(argc, argv, 0.5);
    std::cout << "== BIOtracer overhead (Section II-C; scale " << scale
              << ") ==\n\n";

    core::TablePrinter table({"Application", "Requests",
                              "Injected ops", "Op overhead (%)",
                              "Bare MRT (ms)", "Traced MRT (ms)",
                              "MRT penalty (%)"});

    for (const char *app : {"Twitter", "GoogleMaps", "Radio",
                            "Messaging"}) {
        trace::Trace bare = bench::makeAppTrace(app, scale);
        host::BioTracerStats stats;
        trace::Trace traced = host::instrumentTrace(bare, {}, &stats);

        auto replay_mrt = [](const trace::Trace &t) {
            sim::Simulator s;
            auto dev = core::makeDevice(s, core::SchemeKind::PS4);
            host::Replayer rep(s, *dev);
            rep.replay(t);
            return dev->stats().responseMs.mean();
        };
        double bare_mrt = replay_mrt(bare);
        double traced_mrt = replay_mrt(traced);

        table.addRow(
            {app, core::fmt(stats.tracedRequests),
             core::fmt(stats.injectedOps),
             core::fmt(100.0 * stats.overheadRatio(), 2),
             core::fmt(bare_mrt), core::fmt(traced_mrt),
             core::fmt(100.0 * (traced_mrt - bare_mrt) /
                           std::max(bare_mrt, 1e-9),
                       2)});
    }
    table.print(std::cout);

    std::cout << "\nPaper: ~6 extra operations per 300 requests = 2% "
                 "op overhead; the perturbation of the measured "
                 "response times is expected to stay in the same "
                 "low-single-digit band.\n";
    return 0;
}
