/**
 * @file
 * Section II-C reproduction: BIOtracer's measurement overhead.
 *
 * The paper argues the tracer perturbs its own measurements by only
 * ~2%: a 32KB record buffer flushes every ~300 requests at a cost of
 * ~6 extra I/O operations. We instrument several generated traces and
 * replay both versions to measure the actual slowdown on the device
 * model.
 *
 * Each replay runs under an obs::DeviceObserver, and the injected-op
 * count is cross-checked against the observability layer: the delta of
 * the "emmc.requests" counter between the traced and bare replays must
 * equal the instrumenter's own tally. Mean response times are read
 * back from the "emmc.response_ms" registry summary, so the numbers
 * printed here are the same ones any --metrics-json consumer sees.
 *
 * Accepts --metrics-json=FILE to dump every replay's full snapshot as
 * one emmcsim-run-report-v1 document (two runs per application).
 *
 * A second section measures the latency-attribution recorder the same
 * way: replay with and without --attribution, report the wall-clock
 * overhead, and prove the simulated result is bit-identical (the
 * ledger arithmetic is always on; only the recorder is opt-in).
 * --bench-json=FILE writes those numbers as a google-benchmark-format
 * JSON part for scripts/run_benchmarks.sh to merge into
 * BENCH_simcore.json.
 */

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "core/report.hh"
#include "core/scheme.hh"
#include "host/biotracer.hh"
#include "host/replayer.hh"
#include "obs/json.hh"
#include "obs/observer.hh"
#include "obs/report.hh"

using namespace emmcsim;

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv, 0.5);
    std::cout << "== BIOtracer overhead (Section II-C; scale "
              << args.scale << ") ==\n\n";

    core::TablePrinter table({"Application", "Requests",
                              "Injected ops", "Op overhead (%)",
                              "Bare MRT (ms)", "Traced MRT (ms)",
                              "MRT penalty (%)"});

    obs::RunReport report;
    bool cross_check_ok = true;

    for (const char *app : {"Twitter", "GoogleMaps", "Radio",
                            "Messaging"}) {
        trace::Trace bare = bench::makeAppTrace(app, args.scale);
        host::BioTracerStats stats;
        trace::Trace traced = host::instrumentTrace(bare, {}, &stats);

        auto replay_case = [&](const trace::Trace &t,
                               const std::string &run_name) {
            sim::Simulator s;
            auto dev = core::makeDevice(s, core::SchemeKind::PS4);
            host::Replayer rep(s, *dev);
            obs::ObserverOptions obs_opts;
            obs_opts.metrics = true;
            obs_opts.replayStats = &rep.stats();
            obs::DeviceObserver observer(s, *dev, obs_opts);
            rep.replay(t);
            observer.finish();
            if (!args.metricsJson.empty())
                report.addRun(run_name, observer.snapshot());
            return observer.snapshot();
        };
        const obs::MetricsSnapshot bare_snap =
            replay_case(bare, std::string(app) + "_bare");
        const obs::MetricsSnapshot traced_snap =
            replay_case(traced, std::string(app) + "_traced");

        // Cross-check: the device-side request counter must account
        // for exactly the tracer's injected flush writes.
        const std::uint64_t obs_injected =
            traced_snap.counterValue("emmc.requests") -
            bare_snap.counterValue("emmc.requests");
        if (obs_injected != stats.injectedOps) {
            std::cerr << "CROSS-CHECK FAILED for " << app
                      << ": instrumenter says " << stats.injectedOps
                      << " injected ops, obs counters say "
                      << obs_injected << "\n";
            cross_check_ok = false;
        }

        const auto *bare_mrt =
            bare_snap.findSummary("emmc.response_ms");
        const auto *traced_mrt =
            traced_snap.findSummary("emmc.response_ms");
        const double bare_ms = bare_mrt ? bare_mrt->mean : 0.0;
        const double traced_ms = traced_mrt ? traced_mrt->mean : 0.0;

        table.addRow(
            {app, core::fmt(stats.tracedRequests),
             core::fmt(obs_injected),
             core::fmt(100.0 * stats.overheadRatio(), 2),
             core::fmt(bare_ms), core::fmt(traced_ms),
             core::fmt(100.0 * (traced_ms - bare_ms) /
                           std::max(bare_ms, 1e-9),
                       2)});
    }
    table.print(std::cout);

    std::cout << "\nPaper: ~6 extra operations per 300 requests = 2% "
                 "op overhead; the perturbation of the measured "
                 "response times is expected to stay in the same "
                 "low-single-digit band.\n";

    // Attribution overhead: the phase-ledger arithmetic always runs;
    // the opt-in part is the recorder (one vector push per request)
    // and the end-of-run summary. Wall-clock both configurations
    // (min-of-3 to shed scheduler noise) and require the simulated
    // MRT to be bit-identical — attribution must observe, not perturb.
    struct AttrRow
    {
        std::string app;
        double bareNs = 0.0; ///< replay wall-clock, attribution off
        double attrNs = 0.0; ///< replay wall-clock, attribution on
        double mrtMs = 0.0;  ///< attributed MRT (== bare MRT)
    };
    std::vector<AttrRow> attr_rows;
    bool attr_identical = true;

    for (const char *app : {"Twitter", "Messaging"}) {
        const trace::Trace t = bench::makeAppTrace(app, args.scale);
        auto run_once = [&](bool attribution, double &mrt_ms) {
            sim::Simulator s;
            auto dev = core::makeDevice(s, core::SchemeKind::PS4);
            host::Replayer rep(s, *dev);
            obs::ObserverOptions obs_opts;
            obs_opts.metrics = true;
            obs_opts.attribution = attribution;
            obs_opts.replayStats = &rep.stats();
            obs::DeviceObserver observer(s, *dev, obs_opts);
            const auto t0 = std::chrono::steady_clock::now();
            rep.replay(t);
            const auto t1 = std::chrono::steady_clock::now();
            observer.finish();
            const auto *mrt =
                observer.snapshot().findSummary("emmc.response_ms");
            mrt_ms = mrt ? mrt->mean : 0.0;
            if (attribution &&
                observer.attribution().ledgerViolations != 0) {
                std::cerr << "LEDGER VIOLATIONS for " << app << "\n";
                attr_identical = false;
            }
            return std::chrono::duration<double, std::nano>(t1 - t0)
                .count();
        };
        AttrRow row;
        row.app = app;
        double mrt_off = 0.0;
        double mrt_on = 0.0;
        row.bareNs = row.attrNs = 1e300;
        for (int i = 0; i < 3; ++i) {
            row.bareNs = std::min(row.bareNs, run_once(false, mrt_off));
            row.attrNs = std::min(row.attrNs, run_once(true, mrt_on));
        }
        if (mrt_off != mrt_on) {
            std::cerr << "ATTRIBUTION PERTURBED THE RUN for " << app
                      << ": MRT " << mrt_off << " vs " << mrt_on
                      << "\n";
            attr_identical = false;
        }
        row.mrtMs = mrt_on;
        attr_rows.push_back(std::move(row));
    }

    core::TablePrinter attr_table({"Application", "Replay (ms)",
                                   "With attribution (ms)",
                                   "Overhead (%)", "MRT identical"});
    for (const AttrRow &r : attr_rows) {
        attr_table.addRow(
            {r.app, core::fmt(r.bareNs / 1e6, 1),
             core::fmt(r.attrNs / 1e6, 1),
             core::fmt(100.0 * (r.attrNs - r.bareNs) /
                           std::max(r.bareNs, 1.0),
                       2),
             attr_identical ? "yes" : "NO"});
    }
    std::cout << "\n== Attribution recorder overhead ==\n\n";
    attr_table.print(std::cout);

    if (!args.benchJson.empty()) {
        std::ofstream os(args.benchJson);
        if (!os) {
            std::cerr << "error: cannot write " << args.benchJson
                      << "\n";
            return 1;
        }
        obs::JsonWriter w(os);
        w.beginObject();
        w.key("context").beginObject();
        w.field("executable", "bench_biotracer_overhead");
        w.field("scale", args.scale);
        w.endObject();
        w.key("benchmarks").beginArray();
        for (const AttrRow &r : attr_rows) {
            w.beginObject();
            w.field("name", "attribution_overhead/" + r.app);
            w.field("run_name", "attribution_overhead/" + r.app);
            w.field("run_type", "iteration");
            w.field("repetitions", std::uint64_t{3});
            w.field("iterations", std::uint64_t{1});
            w.field("real_time", r.attrNs);
            w.field("cpu_time", r.attrNs);
            w.field("time_unit", "ns");
            w.field("bare_real_time", r.bareNs);
            w.field("attribution_overhead_pct",
                    100.0 * (r.attrNs - r.bareNs) /
                        std::max(r.bareNs, 1.0));
            w.field("attributed_mrt_ms", r.mrtMs);
            w.endObject();
        }
        w.endArray();
        w.endObject();
        os << "\n";
        std::cout << "\nwrote bench JSON part to " << args.benchJson
                  << "\n";
    }

    if (!args.metricsJson.empty()) {
        report.setMeta("tool", "bench_biotracer_overhead");
        report.setMeta("scale", args.scale);
        report.writeJsonFile(args.metricsJson);
        std::cout << "\nwrote metrics report (" << report.runCount()
                  << " runs) to " << args.metricsJson << "\n";
    }

    if (!cross_check_ok) {
        std::cerr << "\nobs cross-check failed\n";
        return 1;
    }
    if (!attr_identical) {
        std::cerr << "\nattribution overhead check failed\n";
        return 1;
    }
    return 0;
}
