/**
 * @file
 * Ablation A3 (Characteristic 4): power-saving threshold versus mean
 * response time and energy.
 *
 * Sparse workloads (YouTube, Idle-like) keep waking the device from
 * low-power mode; an aggressive threshold saves energy but inflates
 * service times. This sweep quantifies the trade-off.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "core/scheme.hh"
#include "host/replayer.hh"

using namespace emmcsim;

int
main(int argc, char **argv)
{
    const double scale = bench::parseScale(argc, argv, 0.5);
    std::cout << "== Ablation A3: power-saving threshold sweep "
                 "(Characteristic 4; scale " << scale << ") ==\n\n";

    core::TablePrinter table({"Workload", "Threshold (ms)", "MRT (ms)",
                              "Wakeups", "Low-power residency (%)"});

    for (const char *app : {"YouTube", "WebBrowsing", "Twitter"}) {
        trace::Trace t = bench::makeAppTrace(app, scale);
        for (sim::Time threshold :
             {sim::milliseconds(50), sim::milliseconds(200),
              sim::milliseconds(1000), sim::milliseconds(5000)}) {
            sim::Simulator s;
            emmc::EmmcConfig cfg =
                core::schemeConfig(core::SchemeKind::PS4);
            cfg.power.enabled = true;
            cfg.power.idleThreshold = threshold;
            auto dev = core::makeDevice(s, core::SchemeKind::PS4, cfg);
            host::Replayer rep(s, *dev);
            rep.replay(t);

            const emmc::PowerStats &ps = dev->powerStats();
            double resid =
                ps.lowPowerTime + ps.activeTime > 0
                    ? 100.0 * static_cast<double>(ps.lowPowerTime) /
                          static_cast<double>(ps.lowPowerTime +
                                              ps.activeTime)
                    : 0.0;
            table.addRow({app,
                          core::fmt(sim::toMilliseconds(threshold), 0),
                          core::fmt(dev->stats().responseMs.mean()),
                          core::fmt(ps.wakeups),
                          core::fmt(resid, 1)});
        }
    }
    table.print(std::cout);

    std::cout << "\nExpected: shorter thresholds raise low-power "
                 "residency (energy savings) but add wake-up latency "
                 "to more requests, inflating MRT for sparse apps — "
                 "the mode-switching cost the paper observes.\n";
    return 0;
}
