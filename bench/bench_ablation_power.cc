/**
 * @file
 * Ablation A3 (Characteristic 4): power-saving threshold versus mean
 * response time and energy.
 *
 * Sparse workloads (YouTube, Idle-like) keep waking the device from
 * low-power mode; an aggressive threshold saves energy but inflates
 * service times. This sweep quantifies the trade-off.
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "core/scheme.hh"
#include "core/sweep.hh"
#include "host/replayer.hh"

using namespace emmcsim;

namespace {

/** One table cell: a replay with one power threshold. */
struct PowerCell
{
    double mrtMs = 0.0;
    std::uint64_t wakeups = 0;
    double lowPowerPct = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchArgs args =
        bench::parseBenchArgs(argc, argv, 0.5);
    const double scale = args.scale;
    std::cout << "== Ablation A3: power-saving threshold sweep "
                 "(Characteristic 4; scale " << scale << ") ==\n\n";

    const std::vector<std::string> apps = {"YouTube", "WebBrowsing",
                                           "Twitter"};
    const std::vector<sim::Time> thresholds = {
        sim::milliseconds(50), sim::milliseconds(200),
        sim::milliseconds(1000), sim::milliseconds(5000)};

    std::vector<trace::Trace> traces;
    traces.reserve(apps.size());
    for (const std::string &app : apps)
        traces.push_back(bench::makeAppTrace(app, scale));

    // CaseResult does not carry power stats, so the cells go through
    // runOrdered directly with a purpose-built row struct.
    const std::size_t cells = apps.size() * thresholds.size();
    const std::vector<PowerCell> rows = core::runOrdered(
        cells, args.jobs, [&](std::size_t i) {
            const trace::Trace &t = traces[i / thresholds.size()];
            const sim::Time threshold =
                thresholds[i % thresholds.size()];
            sim::Simulator s;
            emmc::EmmcConfig cfg =
                core::schemeConfig(core::SchemeKind::PS4);
            cfg.power.enabled = true;
            cfg.power.idleThreshold = threshold;
            auto dev = core::makeDevice(s, core::SchemeKind::PS4, cfg);
            host::Replayer rep(s, *dev);
            rep.replay(t);

            const emmc::PowerStats &ps = dev->powerStats();
            PowerCell cell;
            cell.mrtMs = dev->stats().responseMs.mean();
            cell.wakeups = ps.wakeups;
            cell.lowPowerPct =
                ps.lowPowerTime + ps.activeTime > 0
                    ? 100.0 * static_cast<double>(ps.lowPowerTime) /
                          static_cast<double>(ps.lowPowerTime +
                                              ps.activeTime)
                    : 0.0;
            return cell;
        });

    core::TablePrinter table({"Workload", "Threshold (ms)", "MRT (ms)",
                              "Wakeups", "Low-power residency (%)"});
    for (std::size_t i = 0; i < rows.size(); ++i) {
        table.addRow(
            {apps[i / thresholds.size()],
             core::fmt(
                 sim::toMilliseconds(thresholds[i % thresholds.size()]),
                 0),
             core::fmt(rows[i].mrtMs), core::fmt(rows[i].wakeups),
             core::fmt(rows[i].lowPowerPct, 1)});
    }
    table.print(std::cout);

    std::cout << "\nExpected: shorter thresholds raise low-power "
                 "residency (energy savings) but add wake-up latency "
                 "to more requests, inflating MRT for sparse apps — "
                 "the mode-switching cost the paper observes.\n";
    return 0;
}
