/**
 * @file
 * Fig 3 reproduction: eMMC throughput versus request size.
 *
 * Sequential fixed-size streams are replayed back-to-back on the 4PS
 * device (the conventional eMMC), with packing enabled as on the
 * paper's Nexus 5. Reads stop at 256KB — the largest read the paper
 * observed — while writes sweep to 16MB, where packed commands keep
 * throughput climbing.
 */

#include <iostream>
#include <vector>

#include "analysis/throughput.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "emmc/device.hh"
#include "host/replayer.hh"
#include "workload/fixed.hh"

using namespace emmcsim;

namespace {

/**
 * Replay one fixed-size stream and return the mean per-request
 * throughput (size / service time), which is how Fig 3 defines "the
 * average access rate of requests with that size". Arrivals are
 * spaced so each request's service time is queue-free; requests
 * larger than the 512KB Linux limit model already-packed commands.
 */
double
measure(std::uint64_t size_bytes, bool write)
{
    sim::Simulator s;
    auto dev = core::makeDevice(s, core::SchemeKind::PS4);

    workload::FixedStreamSpec spec;
    spec.name = write ? "seq-write" : "seq-read";
    spec.write = write;
    spec.sizeBytes = size_bytes;
    // Fixed volume (64MB) per point, queue-free spacing.
    spec.count = std::max<std::uint64_t>(4, (64 * sim::kMiB) / size_bytes);
    spec.gap = sim::seconds(4);
    trace::Trace t = workload::makeFixedStream(spec);

    host::Replayer rep(s, *dev);
    trace::Trace out = rep.replay(t);
    return analysis::meanRequestThroughputMBps(out, write);
}

} // namespace

int
main()
{
    std::cout << "== Fig 3: the impact of request size on throughput "
                 "==\n\n";
    std::cout << "(sequential streams on the 4PS device, packing on; "
                 "paper: read 13.94->99.65 MB/s, write 5.18->56.15 "
                 "MB/s over 4KB..16MB)\n\n";

    core::TablePrinter table(
        {"Req size", "Read MB/s", "Write MB/s"});
    const std::uint64_t kMaxRead = 256 * sim::kKiB;
    for (std::uint64_t size = 4 * sim::kKiB; size <= 16 * sim::kMiB;
         size *= 2) {
        double rd = size <= kMaxRead ? measure(size, false) : 0.0;
        double wr = measure(size, true);
        std::string label =
            size < sim::kMiB
                ? core::fmt(static_cast<std::uint64_t>(size / sim::kKiB)) +
                      "KB"
                : core::fmt(static_cast<std::uint64_t>(size / sim::kMiB)) +
                      "MB";
        table.addRow({label, rd > 0.0 ? core::fmt(rd) : "-",
                      core::fmt(wr)});
    }
    table.print(std::cout);
    std::cout << "\n(read column ends at 256KB: the largest read "
                 "request observed in the traces)\n";
    return 0;
}
