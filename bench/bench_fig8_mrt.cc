/**
 * @file
 * Fig 8 reproduction: mean response time of the three schemes over
 * the 18 application traces, replayed on brand-new devices with the
 * RAM buffer disabled (Section V-B setup). Fig 8a covers the 14
 * ordinary traces; Fig 8b the four data-intensive ones whose MRTs are
 * an order of magnitude higher.
 */

#include <iostream>
#include <set>

#include "bench_util.hh"
#include "core/experiment.hh"
#include "core/report.hh"

using namespace emmcsim;

int
main(int argc, char **argv)
{
    const double scale = bench::parseScale(argc, argv);
    std::cout << "== Fig 8: performance comparison among 4PS / 8PS / "
                 "HPS (MRT in ms, scale " << scale << ") ==\n\n";

    const std::set<std::string> heavy = {"Booting", "CameraVideo",
                                         "Amazon", "Installing"};

    core::TablePrinter light({"Application", "4PS", "8PS", "HPS",
                              "HPS vs 4PS (%)"});
    core::TablePrinter big({"Application", "4PS", "8PS", "HPS",
                            "HPS vs 4PS (%)"});

    double worst_gain = 1e9;
    double best_gain = 0.0;
    double sum_gain = 0.0;
    std::size_t count = 0;

    for (const workload::AppProfile &p :
         workload::individualProfiles()) {
        trace::Trace t = bench::makeAppTrace(p.name, scale);
        double mrt[3];
        int i = 0;
        for (core::SchemeKind kind : core::allSchemes())
            mrt[i++] = core::runCase(t, kind).meanResponseMs;

        double gain = 100.0 * (mrt[0] - mrt[2]) / mrt[0];
        worst_gain = std::min(worst_gain, gain);
        best_gain = std::max(best_gain, gain);
        sum_gain += gain;
        ++count;

        std::vector<std::string> row = {
            p.name, core::fmt(mrt[0]), core::fmt(mrt[1]),
            core::fmt(mrt[2]), core::fmt(gain, 1)};
        if (heavy.count(p.name)) {
            big.addRow(std::move(row));
        } else {
            light.addRow(std::move(row));
        }
    }

    std::cout << "-- Fig 8a: the 14 ordinary traces --\n\n";
    light.print(std::cout);
    std::cout << "\n-- Fig 8b: the 4 data-intensive traces (paper "
                 "plots these on a log scale) --\n\n";
    big.print(std::cout);

    std::cout << "\nHPS vs 4PS MRT reduction: best "
              << core::fmt(best_gain, 1) << "%, worst "
              << core::fmt(worst_gain, 1) << "%, average "
              << core::fmt(sum_gain / static_cast<double>(count), 1)
              << "% (paper: best 86% on Booting, worst 24% on Movie, "
                 "average 61.9%; 8PS tracks HPS closely).\n";
    return 0;
}
