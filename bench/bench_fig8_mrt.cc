/**
 * @file
 * Fig 8 reproduction: mean response time of the three schemes over
 * the 18 application traces, replayed on brand-new devices with the
 * RAM buffer disabled (Section V-B setup). Fig 8a covers the 14
 * ordinary traces; Fig 8b the four data-intensive ones whose MRTs are
 * an order of magnitude higher.
 */

#include <iostream>
#include <set>

#include "bench_util.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "core/sweep.hh"

using namespace emmcsim;

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    const double scale = args.scale;
    std::cout << "== Fig 8: performance comparison among 4PS / 8PS / "
                 "HPS (MRT in ms, scale " << scale << ") ==\n\n";

    const std::set<std::string> heavy = {"Booting", "CameraVideo",
                                         "Amazon", "Installing"};

    core::TablePrinter light({"Application", "4PS", "8PS", "HPS",
                              "HPS vs 4PS (%)"});
    core::TablePrinter big({"Application", "4PS", "8PS", "HPS",
                            "HPS vs 4PS (%)"});

    double worst_gain = 1e9;
    double best_gain = 0.0;
    double sum_gain = 0.0;
    std::size_t count = 0;

    // One sweep job per (app, scheme); traces are generated up front
    // and shared read-only, results come back in submission order.
    std::vector<trace::Trace> traces;
    const auto &profiles = workload::individualProfiles();
    traces.reserve(profiles.size());
    for (const workload::AppProfile &p : profiles)
        traces.push_back(bench::makeAppTrace(p.name, scale));

    std::vector<core::SweepCase> cases;
    for (std::size_t ti = 0; ti < traces.size(); ++ti) {
        for (core::SchemeKind kind : core::allSchemes()) {
            core::SweepCase c;
            c.label = profiles[ti].name + "/" + core::schemeName(kind);
            c.trace = &traces[ti];
            c.kind = kind;
            cases.push_back(std::move(c));
        }
    }
    const std::vector<core::CaseResult> results =
        core::runCases(cases, args.jobs);

    for (std::size_t ti = 0; ti < profiles.size(); ++ti) {
        const workload::AppProfile &p = profiles[ti];
        double mrt[3];
        for (std::size_t k = 0; k < 3; ++k)
            mrt[k] = results[ti * 3 + k].meanResponseMs;

        double gain = 100.0 * (mrt[0] - mrt[2]) / mrt[0];
        worst_gain = std::min(worst_gain, gain);
        best_gain = std::max(best_gain, gain);
        sum_gain += gain;
        ++count;

        std::vector<std::string> row = {
            p.name, core::fmt(mrt[0]), core::fmt(mrt[1]),
            core::fmt(mrt[2]), core::fmt(gain, 1)};
        if (heavy.count(p.name)) {
            big.addRow(std::move(row));
        } else {
            light.addRow(std::move(row));
        }
    }

    std::cout << "-- Fig 8a: the 14 ordinary traces --\n\n";
    light.print(std::cout);
    std::cout << "\n-- Fig 8b: the 4 data-intensive traces (paper "
                 "plots these on a log scale) --\n\n";
    big.print(std::cout);

    std::cout << "\nHPS vs 4PS MRT reduction: best "
              << core::fmt(best_gain, 1) << "%, worst "
              << core::fmt(worst_gain, 1) << "%, average "
              << core::fmt(sum_gain / static_cast<double>(count), 1)
              << "% (paper: best 86% on Booting, worst 24% on Movie, "
                 "average 61.9%; 8PS tracks HPS closely).\n";
    return 0;
}
