/**
 * @file
 * Fig 9 reproduction: space utilization of 8PS and HPS, normalized to
 * 4PS, over the 18 application traces. HPS always matches 4PS (no
 * padding on 4KB-aligned streams); 8PS pays ceil-to-8KB padding on
 * every odd-sized write.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/experiment.hh"
#include "core/report.hh"

using namespace emmcsim;

int
main(int argc, char **argv)
{
    const double scale = bench::parseScale(argc, argv);
    std::cout << "== Fig 9: space utilization normalized to 4PS "
                 "(scale " << scale << ") ==\n\n";

    core::TablePrinter table({"Application", "4PS", "8PS", "HPS",
                              "HPS vs 8PS (%)"});
    double best = 0.0;
    double sum = 0.0;
    std::string best_app;
    std::size_t count = 0;

    for (const workload::AppProfile &p :
         workload::individualProfiles()) {
        trace::Trace t = bench::makeAppTrace(p.name, scale);
        double util[3];
        int i = 0;
        for (core::SchemeKind kind : core::allSchemes())
            util[i++] = core::runCase(t, kind).spaceUtilization;

        double norm8 = util[1] / util[0];
        double normh = util[2] / util[0];
        double gain = 100.0 * (normh - norm8) / norm8;
        if (gain > best) {
            best = gain;
            best_app = p.name;
        }
        sum += gain;
        ++count;
        table.addRow({p.name, "1.000", core::fmt(norm8, 3),
                      core::fmt(normh, 3), core::fmt(gain, 1)});
    }
    table.print(std::cout);

    std::cout << "\nHPS vs 8PS space utilization: best +"
              << core::fmt(best, 1) << "% on " << best_app
              << ", average +"
              << core::fmt(sum / static_cast<double>(count), 1)
              << "% (paper: best +24.2% on Music, average +13.1%).\n";
    return 0;
}
