/**
 * @file
 * Fig 9 reproduction: space utilization of 8PS and HPS, normalized to
 * 4PS, over the 18 application traces. HPS always matches 4PS (no
 * padding on 4KB-aligned streams); 8PS pays ceil-to-8KB padding on
 * every odd-sized write.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "core/sweep.hh"

using namespace emmcsim;

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    const double scale = args.scale;
    std::cout << "== Fig 9: space utilization normalized to 4PS "
                 "(scale " << scale << ") ==\n\n";

    core::TablePrinter table({"Application", "4PS", "8PS", "HPS",
                              "HPS vs 8PS (%)"});
    double best = 0.0;
    double sum = 0.0;
    std::string best_app;
    std::size_t count = 0;

    // (app, scheme) cases fan out over the sweep pool; the ordered
    // results keep the table byte-identical for any --jobs value.
    std::vector<trace::Trace> traces;
    const auto &profiles = workload::individualProfiles();
    traces.reserve(profiles.size());
    for (const workload::AppProfile &p : profiles)
        traces.push_back(bench::makeAppTrace(p.name, scale));

    std::vector<core::SweepCase> cases;
    for (std::size_t ti = 0; ti < traces.size(); ++ti) {
        for (core::SchemeKind kind : core::allSchemes()) {
            core::SweepCase c;
            c.label = profiles[ti].name + "/" + core::schemeName(kind);
            c.trace = &traces[ti];
            c.kind = kind;
            cases.push_back(std::move(c));
        }
    }
    const std::vector<core::CaseResult> results =
        core::runCases(cases, args.jobs);

    for (std::size_t ti = 0; ti < profiles.size(); ++ti) {
        const workload::AppProfile &p = profiles[ti];
        double util[3];
        for (std::size_t k = 0; k < 3; ++k)
            util[k] = results[ti * 3 + k].spaceUtilization;

        double norm8 = util[1] / util[0];
        double normh = util[2] / util[0];
        double gain = 100.0 * (normh - norm8) / norm8;
        if (gain > best) {
            best = gain;
            best_app = p.name;
        }
        sum += gain;
        ++count;
        table.addRow({p.name, "1.000", core::fmt(norm8, 3),
                      core::fmt(normh, 3), core::fmt(gain, 1)});
    }
    table.print(std::cout);

    std::cout << "\nHPS vs 8PS space utilization: best +"
              << core::fmt(best, 1) << "% on " << best_app
              << ", average +"
              << core::fmt(sum / static_cast<double>(count), 1)
              << "% (paper: best +24.2% on Music, average +13.1%).\n";
    return 0;
}
