/**
 * @file
 * Power-up recovery and snapshot microbenchmarks (DESIGN.md §13).
 *
 * Reports, per dirty-state size:
 *   - wall time of Ftl::powerFailAndRecover (the OOB scan dominates)
 *   - sim_recovery_ms: the *simulated* recovery cost the model
 *     charges (checkpoint read + journal replay + open-block scan +
 *     re-erase + checkpoint write)
 *   - scanned_pages / journal_pages_read for the cost breakdown
 * plus the save/load throughput and image size of a full device
 * snapshot. Runs with the micro suite into BENCH_simcore.json.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "core/binio.hh"
#include "emmc/device.hh"
#include "ftl/ftl.hh"
#include "host/replayer.hh"
#include "sim/simulator.hh"
#include "workload/fixed.hh"

using namespace emmcsim;

namespace {

/** Geometry big enough for the largest dirty-unit argument. */
flash::Geometry
benchGeom()
{
    flash::Geometry g;
    g.channels = 1;
    g.chipsPerChannel = 1;
    g.diesPerChip = 1;
    g.planesPerDie = 4;
    g.pagesPerBlock = 64;
    g.pools = {{4096, 256}}; // 65536 pages -> 49152 logical units
    return g;
}

flash::Timing
benchTiming()
{
    flash::Timing t;
    t.pools = {flash::Timing::page4k()};
    return t;
}

void
BM_FtlPowerFailRecover(benchmark::State &state)
{
    const auto dirty = static_cast<std::int64_t>(state.range(0));
    const flash::Geometry geom = benchGeom();
    const flash::Timing timing = benchTiming();
    ftl::FtlConfig cfg;
    cfg.opRatio = 0.25;

    ftl::RecoveryReport rep;
    for (auto _ : state) {
        state.PauseTiming();
        flash::FlashArray array(geom, timing, true);
        ftl::Ftl ftl(array, cfg);
        sim::Time t = 0;
        for (std::int64_t l = 0; l < dirty; ++l)
            t = ftl.writeGroup(0, {flash::Lpn{l}}, t).done;
        state.ResumeTiming();

        rep = ftl.powerFailAndRecover(t + 1);
        benchmark::DoNotOptimize(rep.recoveredUnits);
    }

    state.SetItemsProcessed(dirty * state.iterations());
    state.counters["sim_recovery_ms"] =
        sim::toMilliseconds(rep.totalTime);
    state.counters["scanned_pages"] =
        static_cast<double>(rep.scannedPages);
    state.counters["journal_pages_read"] =
        static_cast<double>(rep.journalPagesRead);
    state.counters["checkpoint_pages_read"] =
        static_cast<double>(rep.checkpointPagesRead);
}
BENCHMARK(BM_FtlPowerFailRecover)
    ->Arg(1 << 10)
    ->Arg(1 << 13)
    ->Arg(1 << 15)
    ->Unit(benchmark::kMillisecond);

/** One replayed device at a quiescent point, ready to snapshot. */
std::unique_ptr<emmc::EmmcDevice>
replayedDevice(sim::Simulator &s)
{
    emmc::EmmcConfig cfg;
    cfg.geometry = benchGeom();
    cfg.timing = benchTiming();
    cfg.ftl.opRatio = 0.25;
    auto dev = std::make_unique<emmc::EmmcDevice>(
        s, cfg, std::make_unique<ftl::SinglePoolDistributor>(0, 1,
                                                             "4PS"));
    workload::FixedStreamSpec spec;
    spec.write = true;
    spec.sizeBytes = sim::kib(16);
    spec.count = 2000;
    spec.gap = sim::microseconds(500);
    host::Replayer rep(s, *dev);
    rep.replay(workload::makeFixedStream(spec));
    return dev;
}

void
BM_DeviceSnapshotSave(benchmark::State &state)
{
    sim::Simulator s;
    auto dev = replayedDevice(s);
    std::size_t bytes = 0;
    for (auto _ : state) {
        core::BinWriter w;
        dev->save(w);
        bytes = w.data().size();
        benchmark::DoNotOptimize(bytes);
    }
    state.counters["image_bytes"] = static_cast<double>(bytes);
    state.SetBytesProcessed(static_cast<std::int64_t>(bytes) *
                            state.iterations());
}
BENCHMARK(BM_DeviceSnapshotSave)->Unit(benchmark::kMillisecond);

void
BM_DeviceSnapshotLoad(benchmark::State &state)
{
    std::string image;
    sim::Time capture = 0;
    {
        sim::Simulator s;
        auto dev = replayedDevice(s);
        core::BinWriter w;
        dev->save(w);
        image = w.take();
        capture = s.now();
    }
    emmc::EmmcConfig cfg;
    cfg.geometry = benchGeom();
    cfg.timing = benchTiming();
    cfg.ftl.opRatio = 0.25;
    for (auto _ : state) {
        sim::Simulator s;
        s.restoreClock(capture);
        emmc::EmmcDevice dev(
            s, cfg, std::make_unique<ftl::SinglePoolDistributor>(
                        0, 1, "4PS"));
        core::BinReader r(image);
        dev.load(r);
        benchmark::DoNotOptimize(dev.ftl().logicalUnits());
    }
    state.counters["image_bytes"] = static_cast<double>(image.size());
    state.SetBytesProcessed(
        static_cast<std::int64_t>(image.size()) * state.iterations());
}
BENCHMARK(BM_DeviceSnapshotLoad)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
