/**
 * @file
 * Tables I & II reproduction: the application inventory and the
 * collection protocol each profile models.
 */

#include <iostream>

#include "core/report.hh"
#include "workload/profile.hh"

using namespace emmcsim;

int
main()
{
    std::cout << "== Table I/II: selected applications and recording "
                 "parameters ==\n\n";
    core::TablePrinter table({"Application", "Definition",
                              "Duration (s)", "Requests",
                              "Write Reqs %"});
    for (const workload::AppProfile &p : workload::individualProfiles()) {
        table.addRow({p.name, p.description,
                      core::fmt(sim::toSeconds(p.duration), 0),
                      core::fmt(p.requestCount),
                      core::fmt(100.0 * p.writeFraction, 2)});
    }
    table.print(std::cout);

    std::cout << "\n== Combo traces (Section III-D) ==\n\n";
    core::TablePrinter combos({"Combo", "Definition", "Duration (s)",
                               "Requests"});
    for (const workload::AppProfile &p : workload::comboProfiles()) {
        combos.addRow({p.name, p.description,
                       core::fmt(sim::toSeconds(p.duration), 0),
                       core::fmt(p.requestCount)});
    }
    combos.print(std::cout);
    return 0;
}
