/**
 * @file
 * Table III reproduction: size-related characteristics of the 25
 * generated traces, in the paper's column layout.
 */

#include <iostream>

#include "analysis/size_stats.hh"
#include "bench_util.hh"
#include "core/report.hh"

using namespace emmcsim;

int
main(int argc, char **argv)
{
    const double scale = bench::parseScale(argc, argv);
    std::cout << "== Table III: request size-related statistics of "
                 "the 25 traces (scale " << scale << ") ==\n\n";

    core::TablePrinter table({"Application", "Data Size (KB)",
                              "Number of Reqs.", "Max Size (KB)",
                              "Ave. Size (KB)", "Ave. R Size (KB)",
                              "Ave. W Size (KB)", "Write Reqs. Pct.(%)",
                              "Write Size Pct.(%)"});
    for (const workload::AppProfile &p : workload::allProfiles()) {
        trace::Trace t = bench::makeAppTrace(p.name, scale);
        analysis::SizeStats s = analysis::computeSizeStats(t);
        table.addRow({s.name, core::fmt(s.dataSizeKb, 0),
                      core::fmt(s.requests), core::fmt(s.maxSizeKb, 0),
                      core::fmt(s.aveSizeKb, 1),
                      core::fmt(s.aveReadKb, 1),
                      core::fmt(s.aveWriteKb, 1),
                      core::fmt(s.writeReqPct, 2),
                      core::fmt(s.writeSizePct, 2)});
    }
    table.print(std::cout);

    std::cout << "\nCharacteristic 1 check: write-request percentages "
                 "in the individual traces should be majority-write in "
                 "15 of 18, with 6 above 90% (paper).\n";
    return 0;
}
