/**
 * @file
 * Ablation A7: write-placement policy — dynamic round-robin versus
 * SSDsim-style static (LPN-determined) allocation.
 *
 * Static allocation pins each LPN to a plane, so a burst of writes to
 * nearby addresses can pile onto one die; dynamic placement load-
 * balances every program. The gap is the cost of the simpler policy.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/experiment.hh"
#include "core/report.hh"

using namespace emmcsim;

int
main(int argc, char **argv)
{
    const double scale = bench::parseScale(argc, argv, 0.5);
    std::cout << "== Ablation A7: dynamic vs static write allocation "
                 "(scale " << scale << ") ==\n\n";

    core::TablePrinter table({"Workload", "Allocation", "MRT (ms)",
                              "Mean serv (ms)"});

    for (const char *app :
         {"CameraVideo", "Installing", "Booting", "Twitter"}) {
        trace::Trace t = bench::makeAppTrace(app, scale);
        for (ftl::AllocPolicy policy :
             {ftl::AllocPolicy::RoundRobin, ftl::AllocPolicy::StaticLpn}) {
            core::ExperimentOptions opts;
            opts.allocPolicy = policy;
            core::CaseResult res =
                core::runCase(t, core::SchemeKind::PS4, opts);
            table.addRow({app,
                          policy == ftl::AllocPolicy::RoundRobin
                              ? "dynamic (round-robin)"
                              : "static (lpn % planes)",
                          core::fmt(res.meanResponseMs),
                          core::fmt(res.meanServiceMs)});
        }
    }
    table.print(std::cout);

    std::cout << "\nExpected: dynamic placement serves write-heavy "
                 "sequential streams faster because consecutive page "
                 "programs always land on distinct dies; static "
                 "placement can serialize when the stream's stride "
                 "maps to few planes.\n";
    return 0;
}
