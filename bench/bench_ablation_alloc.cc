/**
 * @file
 * Ablation A7: write-placement policy — dynamic round-robin versus
 * SSDsim-style static (LPN-determined) allocation.
 *
 * Static allocation pins each LPN to a plane, so a burst of writes to
 * nearby addresses can pile onto one die; dynamic placement load-
 * balances every program. The gap is the cost of the simpler policy.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "core/sweep.hh"

using namespace emmcsim;

int
main(int argc, char **argv)
{
    const bench::BenchArgs args =
        bench::parseBenchArgs(argc, argv, 0.5);
    const double scale = args.scale;
    std::cout << "== Ablation A7: dynamic vs static write allocation "
                 "(scale " << scale << ") ==\n\n";

    core::TablePrinter table({"Workload", "Allocation", "MRT (ms)",
                              "Mean serv (ms)"});

    const std::vector<std::string> apps = {"CameraVideo", "Installing",
                                           "Booting", "Twitter"};
    std::vector<trace::Trace> traces;
    traces.reserve(apps.size());
    for (const std::string &app : apps)
        traces.push_back(bench::makeAppTrace(app, scale));

    std::vector<core::SweepCase> cases;
    for (std::size_t ti = 0; ti < traces.size(); ++ti) {
        for (ftl::AllocPolicy policy :
             {ftl::AllocPolicy::RoundRobin,
              ftl::AllocPolicy::StaticLpn}) {
            core::SweepCase c;
            c.label = apps[ti];
            c.trace = &traces[ti];
            c.kind = core::SchemeKind::PS4;
            c.opts.allocPolicy = policy;
            cases.push_back(std::move(c));
        }
    }
    const std::vector<core::CaseResult> results =
        core::runCases(cases, args.jobs);

    for (std::size_t i = 0; i < results.size(); ++i) {
        const core::CaseResult &res = results[i];
        table.addRow(
            {cases[i].label,
             cases[i].opts.allocPolicy == ftl::AllocPolicy::RoundRobin
                 ? "dynamic (round-robin)"
                 : "static (lpn % planes)",
             core::fmt(res.meanResponseMs),
             core::fmt(res.meanServiceMs)});
    }
    table.print(std::cout);

    std::cout << "\nExpected: dynamic placement serves write-heavy "
                 "sequential streams faster because consecutive page "
                 "programs always land on distinct dies; static "
                 "placement can serialize when the stream's stride "
                 "maps to few planes.\n";
    return 0;
}
