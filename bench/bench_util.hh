/**
 * @file
 * Shared helpers for the table/figure reproduction benches.
 *
 * Every bench accepts an optional first argument: the trace scale
 * factor (default 1.0 = the paper's request counts). Smaller scales
 * give quick sanity runs with the same distributions.
 */

#ifndef EMMCSIM_BENCH_BENCH_UTIL_HH
#define EMMCSIM_BENCH_BENCH_UTIL_HH

#include <string>

#include "core/cli_util.hh"
#include "core/sweep.hh"
#include "sim/logging.hh"
#include "trace/trace.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

namespace emmcsim::bench {

/** Fixed seed so every bench run reproduces the same traces. */
constexpr std::uint64_t kBenchSeed = 2015; // IISWC 2015

/** Parsed bench command line: positional scale + shared flags. */
struct BenchArgs
{
    /** Trace scale factor (positional, default per bench). */
    double scale = 1.0;
    /** Sweep worker threads (--jobs=N; 0 = hardware concurrency).
     * Output is byte-identical for every value. */
    unsigned jobs = 0;
    /** Run-report JSON output (--metrics-json=FILE; empty = off). */
    std::string metricsJson;
    /** Chrome trace output (--trace-out=FILE; empty = off). */
    std::string traceOut;
    /**
     * google-benchmark-format JSON part (--bench-json=FILE; empty =
     * off) for scripts/run_benchmarks.sh to merge into
     * BENCH_simcore.json alongside the real google-benchmark binaries.
     */
    std::string benchJson;
};

/**
 * Parse the bench command line: an optional positional scale plus the
 * shared flags. Unknown flags and malformed values abort with
 * sim::fatal so a typo doesn't silently run the default
 * configuration. The scale uses the strict core::parseF64 contract —
 * "0.5x" or "+1" are errors, not silently-accepted prefixes.
 */
inline BenchArgs
parseBenchArgs(int argc, char **argv, double fallback_scale = 1.0)
{
    BenchArgs args;
    args.scale = fallback_scale;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a.rfind("--metrics-json=", 0) == 0) {
            args.metricsJson = a.substr(15);
            if (args.metricsJson.empty())
                sim::fatal("--metrics-json needs a file");
        } else if (a.rfind("--trace-out=", 0) == 0) {
            args.traceOut = a.substr(12);
            if (args.traceOut.empty())
                sim::fatal("--trace-out needs a file");
        } else if (a.rfind("--bench-json=", 0) == 0) {
            args.benchJson = a.substr(13);
            if (args.benchJson.empty())
                sim::fatal("--bench-json needs a file");
        } else if (a.rfind("--jobs=", 0) == 0) {
            if (!core::parseJobs(a.substr(7), args.jobs))
                sim::fatal("bad --jobs: " + a.substr(7));
        } else if (a.rfind("--", 0) == 0) {
            sim::fatal("unknown bench flag: " + a);
        } else {
            if (!core::parseF64(a, args.scale) || args.scale <= 0.0)
                sim::fatal("bad bench scale: " + a);
        }
    }
    return args;
}

/** Parse the optional scale argument (argv[1], default 1.0). */
inline double
parseScale(int argc, char **argv, double fallback = 1.0)
{
    return parseBenchArgs(argc, argv, fallback).scale;
}

/** Generate the named application trace at the given scale. */
inline trace::Trace
makeAppTrace(const std::string &name, double scale,
             std::uint64_t seed = kBenchSeed)
{
    const workload::AppProfile *p = workload::findProfile(name);
    if (p == nullptr)
        sim::fatal("unknown application profile: " + name);
    workload::TraceGenerator gen(*p, seed);
    return gen.generate(scale);
}

} // namespace emmcsim::bench

#endif // EMMCSIM_BENCH_BENCH_UTIL_HH
