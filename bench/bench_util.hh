/**
 * @file
 * Shared helpers for the table/figure reproduction benches.
 *
 * Every bench accepts an optional first argument: the trace scale
 * factor (default 1.0 = the paper's request counts). Smaller scales
 * give quick sanity runs with the same distributions.
 */

#ifndef EMMCSIM_BENCH_BENCH_UTIL_HH
#define EMMCSIM_BENCH_BENCH_UTIL_HH

#include <cstdlib>
#include <string>

#include "sim/logging.hh"
#include "trace/trace.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

namespace emmcsim::bench {

/** Fixed seed so every bench run reproduces the same traces. */
constexpr std::uint64_t kBenchSeed = 2015; // IISWC 2015

/** Parse the optional scale argument (argv[1], default 1.0). */
inline double
parseScale(int argc, char **argv, double fallback = 1.0)
{
    if (argc > 1) {
        double s = std::atof(argv[1]);
        if (s > 0.0)
            return s;
    }
    return fallback;
}

/** Generate the named application trace at the given scale. */
inline trace::Trace
makeAppTrace(const std::string &name, double scale,
             std::uint64_t seed = kBenchSeed)
{
    const workload::AppProfile *p = workload::findProfile(name);
    if (p == nullptr)
        sim::fatal("unknown application profile: " + name);
    workload::TraceGenerator gen(*p, seed);
    return gen.generate(scale);
}

} // namespace emmcsim::bench

#endif // EMMCSIM_BENCH_BENCH_UTIL_HH
