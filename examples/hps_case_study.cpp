/**
 * @file
 * The paper's Section V case study on one workload: build the three
 * Table V devices, replay the same trace on each, and report mean
 * response time (Fig 8) and space utilization (Fig 9), plus the
 * flash-operation breakdown that explains the difference.
 *
 * Usage: hps_case_study [app-name] [scale] [--audit]
 *                       [--fault-rber=X] [--fault-seed=N]
 *                       [--fault-program-fail=X] [--fault-erase-fail=X]
 *                       [--metrics-json=FILE] [--trace-out=FILE]
 *
 * --metrics-json writes one emmcsim-run-report-v1 JSON file holding a
 * full metrics snapshot per scheme (one "runs" entry each), so the
 * Fig 8/9 numbers and every counter behind them are machine-readable.
 * --trace-out writes the HPS replay's spans as Chrome trace JSON.
 *
 * --audit runs the check/ invariant auditor during each replay
 * (periodic full audits plus a final one) and fails the run when any
 * violation is found — the regression gate for the simulator's
 * bookkeeping. The --fault-* flags turn on seeded NAND fault
 * injection, exercising the read-retry / relocation / retirement
 * paths under the same audits.
 */

#include <cerrno>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include <fstream>

#include "check/audit.hh"
#include "core/experiment.hh"
#include "core/scheme.hh"
#include "core/report.hh"
#include "host/replayer.hh"
#include "obs/observer.hh"
#include "obs/report.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

using namespace emmcsim;

namespace {

int
usage()
{
    std::cerr << "usage: hps_case_study [app-name] [scale] [--audit]\n"
                 "         [--fault-rber=X] [--fault-seed=N]\n"
                 "         [--fault-program-fail=X] "
                 "[--fault-erase-fail=X]\n"
                 "         [--metrics-json=FILE] [--trace-out=FILE]\n";
    return 2;
}

int
usageError(const std::string &what)
{
    std::cerr << "error: " << what << "\n";
    return usage();
}

bool
parseU64(const std::string &s, std::uint64_t &v)
{
    if (s.empty() ||
        s.find_first_not_of("0123456789") != std::string::npos)
        return false;
    errno = 0;
    char *end = nullptr;
    v = std::strtoull(s.c_str(), &end, 10);
    return errno == 0 && end != nullptr && *end == '\0';
}

bool
parseF64(const std::string &s, double &v)
{
    if (s.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    v = std::strtod(s.c_str(), &end);
    return errno == 0 && end != nullptr && *end == '\0';
}

} // namespace

int
main(int argc, char **argv)
{
    bool audit = false;
    fault::FaultConfig fault_cfg;
    std::string metrics_json;
    std::string trace_out;
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        const std::string a(argv[i]);
        if (a.rfind("--", 0) != 0) {
            args.push_back(a);
            continue;
        }
        std::string name = a;
        std::string value;
        const std::size_t eq = a.find('=');
        if (eq != std::string::npos) {
            name = a.substr(0, eq);
            value = a.substr(eq + 1);
        }
        if (name == "--audit") {
            if (eq != std::string::npos)
                return usageError("--audit takes no value");
            audit = true;
        } else if (name == "--fault-rber") {
            fault_cfg.enabled = true;
            if (!parseF64(value, fault_cfg.baseRber) ||
                fault_cfg.baseRber < 0)
                return usageError("bad --fault-rber: " + value);
        } else if (name == "--fault-seed") {
            fault_cfg.enabled = true;
            if (!parseU64(value, fault_cfg.seed))
                return usageError("bad --fault-seed: " + value);
        } else if (name == "--fault-program-fail") {
            fault_cfg.enabled = true;
            if (!parseF64(value, fault_cfg.programFailProb) ||
                fault_cfg.programFailProb < 0 ||
                fault_cfg.programFailProb > 1)
                return usageError("bad --fault-program-fail: " + value);
        } else if (name == "--fault-erase-fail") {
            fault_cfg.enabled = true;
            if (!parseF64(value, fault_cfg.eraseFailProb) ||
                fault_cfg.eraseFailProb < 0 ||
                fault_cfg.eraseFailProb > 1)
                return usageError("bad --fault-erase-fail: " + value);
        } else if (name == "--metrics-json") {
            if (value.empty())
                return usageError("--metrics-json needs a file");
            metrics_json = value;
        } else if (name == "--trace-out") {
            if (value.empty())
                return usageError("--trace-out needs a file");
            trace_out = value;
        } else {
            return usageError("unknown flag: " + name);
        }
    }
    if (args.size() > 2)
        return usageError("too many positional arguments");
    const std::string app = !args.empty() ? args[0] : "Booting";
    double scale = 0.5;
    if (args.size() > 1 && (!parseF64(args[1], scale) || scale <= 0))
        return usageError("bad scale: " + args[1]);

    const workload::AppProfile *profile = workload::findProfile(app);
    if (profile == nullptr) {
        std::cerr << "unknown application: " << app << "\n";
        return 1;
    }
    workload::TraceGenerator gen(*profile, /*seed=*/11);
    trace::Trace t = gen.generate(scale);

    std::cout << "HPS case study on \"" << app << "\" (" << t.size()
              << " requests, "
              << core::fmt(static_cast<double>(t.totalBytes()) /
                               static_cast<double>(sim::kMiB), 1)
              << " MB accessed)\n\n";

    core::TablePrinter table({"Scheme", "MRT (ms)", "Mean serv (ms)",
                              "Space util", "Page reads",
                              "Page programs", "4KB-pool programs",
                              "8KB-pool programs"});

    double mrt4 = 0.0;
    std::uint64_t audit_violations = 0;
    obs::RunReport obs_report;
    for (core::SchemeKind kind : core::allSchemes()) {
        sim::Simulator s;
        emmc::EmmcConfig cfg = core::schemeConfig(kind);
        cfg.fault = fault_cfg;
        auto dev = core::makeDevice(s, kind, cfg);

        std::unique_ptr<check::DeviceAuditor> auditor;
        if (audit) {
            check::AuditOptions audit_opts;
            audit_opts.everyEvents = 5000;
            auditor = std::make_unique<check::DeviceAuditor>(s, *dev,
                                                             audit_opts);
        }

        host::Replayer rep(s, *dev);

        // One observer per scheme: each run snapshots into its own
        // report entry; HPS additionally records spans for --trace-out.
        const bool trace_this =
            !trace_out.empty() && kind == core::SchemeKind::HPS;
        std::unique_ptr<obs::DeviceObserver> observer;
        if (!metrics_json.empty() || trace_this) {
            obs::ObserverOptions obs_opts;
            obs_opts.metrics = !metrics_json.empty();
            obs_opts.trace = trace_this;
            obs_opts.replayStats = &rep.stats();
            observer = std::make_unique<obs::DeviceObserver>(s, *dev,
                                                             obs_opts);
        }

        rep.replay(t);

        if (observer) {
            observer->finish();
            if (!metrics_json.empty())
                obs_report.addRun(core::schemeName(kind),
                                  observer->snapshot());
            if (trace_this) {
                std::ofstream os(trace_out);
                if (os)
                    observer->tracer().exportChromeTrace(os);
                if (!os) {
                    std::cerr << "error: cannot write " << trace_out
                              << "\n";
                    return 1;
                }
                std::cout << "wrote Chrome trace of the HPS replay to "
                          << trace_out << "\n\n";
            }
        }

        if (auditor) {
            auditor->runFullAudit();
            auditor->detach();
            std::cout << "Invariant audit (" << core::schemeName(kind)
                      << "):\n";
            core::printAuditReport(std::cout, auditor->report());
            std::cout << "\n";
            audit_violations += auditor->report().totalViolations();
        }

        const auto &geom = dev->array().geometry();
        std::uint64_t programs_4k = 0;
        std::uint64_t programs_8k = 0;
        for (std::size_t pool = 0; pool < geom.pools.size(); ++pool) {
            const flash::ArrayStats &st = dev->array().stats(pool);
            if (geom.pools[pool].pageBytes == 4096) {
                programs_4k += st.programs;
            } else {
                programs_8k += st.programs;
            }
        }
        const flash::ArrayStats total = dev->array().totalStats();
        double mrt = dev->stats().responseMs.mean();
        if (kind == core::SchemeKind::PS4)
            mrt4 = mrt;

        table.addRow({core::schemeName(kind), core::fmt(mrt),
                      core::fmt(dev->stats().serviceMs.mean()),
                      core::fmt(dev->spaceUtilization(), 3),
                      core::fmt(total.reads), core::fmt(total.programs),
                      core::fmt(programs_4k), core::fmt(programs_8k)});

        if (fault_cfg.enabled) {
            const fault::FaultStats &fs = dev->faultInjector().stats();
            std::cout << core::schemeName(kind)
                      << " fault path: " << fs.correctedReads
                      << " corrected reads, " << fs.uncorrectableReads
                      << " uncorrectable, " << fs.programFailures
                      << " program fails, " << fs.eraseFailures
                      << " erase fails, "
                      << dev->ftl().badBlocks().totalRetired()
                      << " retired blocks, "
                      << rep.stats().retriesScheduled
                      << " host retries"
                      << (dev->ftl().readOnly() ? " (read-only)" : "")
                      << "\n\n";
        }

        if (kind == core::SchemeKind::HPS) {
            std::cout << "HPS reduces MRT by "
                      << core::fmt(100.0 * (mrt4 - mrt) / mrt4, 1)
                      << "% vs 4PS (paper: up to 86%).\n\n";
        }
    }
    table.print(std::cout);

    std::cout << "\nReading the table: HPS needs roughly half the "
                 "page operations of 4PS for multi-page requests "
                 "(they ride 8KB pages) while its 4KB pool absorbs "
                 "odd tails, so it keeps 4PS's perfect space "
                 "utilization — the padding an 8KB-only device "
                 "cannot avoid.\n";

    if (!metrics_json.empty()) {
        obs_report.setMeta("tool", "hps_case_study");
        obs_report.setMeta("app", app);
        obs_report.setMeta("scale", scale);
        obs_report.setMeta("trace", t.name());
        obs_report.setMeta("requests",
                           static_cast<std::uint64_t>(t.size()));
        obs_report.writeJsonFile(metrics_json);
        std::cout << "\nwrote metrics report (" << obs_report.runCount()
                  << " runs) to " << metrics_json << "\n";
    }

    if (audit && audit_violations > 0) {
        std::cerr << "\nAUDIT FAILED: " << audit_violations
                  << " invariant violation(s) detected.\n";
        return 4;
    }
    return 0;
}
