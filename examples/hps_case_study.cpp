/**
 * @file
 * The paper's Section V case study on one workload: build the three
 * Table V devices, replay the same trace on each, and report mean
 * response time (Fig 8) and space utilization (Fig 9), plus the
 * flash-operation breakdown that explains the difference.
 *
 * Usage: hps_case_study [app-name] [scale] [--audit] [--jobs=N]
 *                       [--fault-rber=X] [--fault-seed=N]
 *                       [--fault-program-fail=X] [--fault-erase-fail=X]
 *                       [--metrics-json=FILE] [--trace-out=FILE]
 *
 * The three scheme replays are independent, so they run on a
 * core::Sweep worker pool (--jobs=N, default one worker per hardware
 * thread). Results are collected in scheme order and all output is
 * printed afterwards, so stdout and every artifact are byte-identical
 * whatever the worker count.
 *
 * --metrics-json writes one emmcsim-run-report-v1 JSON file holding a
 * full metrics snapshot per scheme (one "runs" entry each), so the
 * Fig 8/9 numbers and every counter behind them are machine-readable.
 * --trace-out writes the HPS replay's spans as Chrome trace JSON.
 *
 * --audit runs the check/ invariant auditor during each replay
 * (periodic full audits plus a final one) and fails the run when any
 * violation is found — the regression gate for the simulator's
 * bookkeeping. The --fault-* flags turn on seeded NAND fault
 * injection, exercising the read-retry / relocation / retirement
 * paths under the same audits.
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/cli_util.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "core/scheme.hh"
#include "core/sweep.hh"
#include "obs/report.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

using namespace emmcsim;

namespace {

int
usage()
{
    std::cerr << "usage: hps_case_study [app-name] [scale] [--audit]\n"
                 "         [--jobs=N] [--fault-rber=X] [--fault-seed=N]\n"
                 "         [--fault-program-fail=X] "
                 "[--fault-erase-fail=X]\n"
                 "         [--metrics-json=FILE] [--trace-out=FILE]\n";
    return 2;
}

int
usageError(const std::string &what)
{
    std::cerr << "error: " << what << "\n";
    return usage();
}

} // namespace

int
main(int argc, char **argv)
{
    bool audit = false;
    unsigned jobs = 0; // 0 = one worker per hardware thread
    fault::FaultConfig fault_cfg;
    std::string metrics_json;
    std::string trace_out;
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        const std::string a(argv[i]);
        if (a.rfind("--", 0) != 0) {
            args.push_back(a);
            continue;
        }
        std::string name = a;
        std::string value;
        const std::size_t eq = a.find('=');
        if (eq != std::string::npos) {
            name = a.substr(0, eq);
            value = a.substr(eq + 1);
        }
        if (name == "--audit") {
            if (eq != std::string::npos)
                return usageError("--audit takes no value");
            audit = true;
        } else if (name == "--jobs") {
            if (!core::parseJobs(value, jobs))
                return usageError("bad --jobs: " + value);
        } else if (name == "--fault-rber") {
            fault_cfg.enabled = true;
            if (!core::parseF64(value, fault_cfg.baseRber) ||
                fault_cfg.baseRber < 0)
                return usageError("bad --fault-rber: " + value);
        } else if (name == "--fault-seed") {
            fault_cfg.enabled = true;
            if (!core::parseU64(value, fault_cfg.seed))
                return usageError("bad --fault-seed: " + value);
        } else if (name == "--fault-program-fail") {
            fault_cfg.enabled = true;
            if (!core::parseF64(value, fault_cfg.programFailProb) ||
                fault_cfg.programFailProb < 0 ||
                fault_cfg.programFailProb > 1)
                return usageError("bad --fault-program-fail: " + value);
        } else if (name == "--fault-erase-fail") {
            fault_cfg.enabled = true;
            if (!core::parseF64(value, fault_cfg.eraseFailProb) ||
                fault_cfg.eraseFailProb < 0 ||
                fault_cfg.eraseFailProb > 1)
                return usageError("bad --fault-erase-fail: " + value);
        } else if (name == "--metrics-json") {
            if (value.empty())
                return usageError("--metrics-json needs a file");
            metrics_json = value;
        } else if (name == "--trace-out") {
            if (value.empty())
                return usageError("--trace-out needs a file");
            trace_out = value;
        } else {
            return usageError("unknown flag: " + name);
        }
    }
    if (args.size() > 2)
        return usageError("too many positional arguments");
    const std::string app = !args.empty() ? args[0] : "Booting";
    double scale = 0.5;
    if (args.size() > 1 &&
        (!core::parseF64(args[1], scale) || scale <= 0))
        return usageError("bad scale: " + args[1]);

    const workload::AppProfile *profile = workload::findProfile(app);
    if (profile == nullptr) {
        std::cerr << "unknown application: " << app << "\n";
        return 1;
    }
    workload::TraceGenerator gen(*profile, /*seed=*/11);
    trace::Trace t = gen.generate(scale);

    std::cout << "HPS case study on \"" << app << "\" (" << t.size()
              << " requests, "
              << core::fmt(static_cast<double>(t.totalBytes().value()) /
                               static_cast<double>(sim::kMiB), 1)
              << " MB accessed)\n\n";

    // One sweep job per Table V scheme; the trace is shared read-only.
    std::vector<core::SweepCase> cases;
    for (core::SchemeKind kind : core::allSchemes()) {
        core::SweepCase c;
        c.label = core::schemeName(kind);
        c.trace = &t;
        c.kind = kind;
        if (audit)
            c.opts.auditEveryEvents = 5000;
        c.opts.fault = fault_cfg;
        c.opts.obs.metrics = !metrics_json.empty();
        // The HPS replay additionally records spans for --trace-out.
        c.opts.obs.traceSpans =
            !trace_out.empty() && kind == core::SchemeKind::HPS;
        cases.push_back(std::move(c));
    }
    const std::vector<core::CaseResult> results =
        core::runCases(cases, jobs);

    core::TablePrinter table({"Scheme", "MRT (ms)", "Mean serv (ms)",
                              "Space util", "Page reads",
                              "Page programs", "4KB-pool programs",
                              "8KB-pool programs"});

    double mrt4 = 0.0;
    std::uint64_t audit_violations = 0;
    obs::RunReport obs_report;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const core::CaseResult &res = results[i];
        const core::SchemeKind kind = cases[i].kind;

        if (cases[i].opts.obs.traceSpans) {
            std::ofstream os(trace_out);
            if (os)
                os << res.obs.chromeTrace;
            if (!os) {
                std::cerr << "error: cannot write " << trace_out
                          << "\n";
                return 1;
            }
            std::cout << "wrote Chrome trace of the HPS replay to "
                      << trace_out << "\n\n";
        }
        if (!metrics_json.empty())
            obs_report.addRun(res.scheme, res.obs.metrics);

        if (audit) {
            std::cout << "Invariant audit (" << res.scheme << "):\n";
            core::printAuditReport(std::cout, res.audit);
            std::cout << "\n";
            audit_violations += res.audit.totalViolations();
        }

        const double mrt = res.meanResponseMs;
        if (kind == core::SchemeKind::PS4)
            mrt4 = mrt;

        table.addRow({res.scheme, core::fmt(mrt),
                      core::fmt(res.meanServiceMs),
                      core::fmt(res.spaceUtilization, 3),
                      core::fmt(res.pageReads),
                      core::fmt(res.pagePrograms),
                      core::fmt(res.programs4kPool),
                      core::fmt(res.programs8kPool)});

        if (fault_cfg.enabled) {
            std::cout << res.scheme
                      << " fault path: " << res.correctedReads
                      << " corrected reads, " << res.uncorrectableReads
                      << " uncorrectable, " << res.programFailures
                      << " program fails, " << res.eraseFailures
                      << " erase fails, " << res.retiredBlocks
                      << " retired blocks, " << res.hostRetries
                      << " host retries"
                      << (res.deviceReadOnly ? " (read-only)" : "")
                      << "\n\n";
        }

        if (kind == core::SchemeKind::HPS) {
            std::cout << "HPS reduces MRT by "
                      << core::fmt(100.0 * (mrt4 - mrt) / mrt4, 1)
                      << "% vs 4PS (paper: up to 86%).\n\n";
        }
    }
    table.print(std::cout);

    std::cout << "\nReading the table: HPS needs roughly half the "
                 "page operations of 4PS for multi-page requests "
                 "(they ride 8KB pages) while its 4KB pool absorbs "
                 "odd tails, so it keeps 4PS's perfect space "
                 "utilization — the padding an 8KB-only device "
                 "cannot avoid.\n";

    if (!metrics_json.empty()) {
        obs_report.setMeta("tool", "hps_case_study");
        obs_report.setMeta("app", app);
        obs_report.setMeta("scale", scale);
        obs_report.setMeta("trace", t.name());
        obs_report.setMeta("requests",
                           static_cast<std::uint64_t>(t.size()));
        obs_report.writeJsonFile(metrics_json);
        std::cout << "\nwrote metrics report (" << obs_report.runCount()
                  << " runs) to " << metrics_json << "\n";
    }

    if (audit && audit_violations > 0) {
        std::cerr << "\nAUDIT FAILED: " << audit_violations
                  << " invariant violation(s) detected.\n";
        return 4;
    }
    return 0;
}
