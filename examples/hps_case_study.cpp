/**
 * @file
 * The paper's Section V case study on one workload: build the three
 * Table V devices, replay the same trace on each, and report mean
 * response time (Fig 8) and space utilization (Fig 9), plus the
 * flash-operation breakdown that explains the difference.
 *
 * Usage: hps_case_study [app-name] [scale]
 */

#include <cstdlib>
#include <iostream>

#include "core/scheme.hh"
#include "core/report.hh"
#include "host/replayer.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

using namespace emmcsim;

int
main(int argc, char **argv)
{
    const std::string app = argc > 1 ? argv[1] : "Booting";
    const double scale = argc > 2 ? std::atof(argv[2]) : 0.5;

    const workload::AppProfile *profile = workload::findProfile(app);
    if (profile == nullptr) {
        std::cerr << "unknown application: " << app << "\n";
        return 1;
    }
    workload::TraceGenerator gen(*profile, /*seed=*/11);
    trace::Trace t = gen.generate(scale);

    std::cout << "HPS case study on \"" << app << "\" (" << t.size()
              << " requests, "
              << core::fmt(static_cast<double>(t.totalBytes()) /
                               static_cast<double>(sim::kMiB), 1)
              << " MB accessed)\n\n";

    core::TablePrinter table({"Scheme", "MRT (ms)", "Mean serv (ms)",
                              "Space util", "Page reads",
                              "Page programs", "4KB-pool programs",
                              "8KB-pool programs"});

    double mrt4 = 0.0;
    for (core::SchemeKind kind : core::allSchemes()) {
        sim::Simulator s;
        auto dev = core::makeDevice(s, kind);
        host::Replayer rep(s, *dev);
        rep.replay(t);

        const auto &geom = dev->array().geometry();
        std::uint64_t programs_4k = 0;
        std::uint64_t programs_8k = 0;
        for (std::size_t pool = 0; pool < geom.pools.size(); ++pool) {
            const flash::ArrayStats &st = dev->array().stats(pool);
            if (geom.pools[pool].pageBytes == 4096) {
                programs_4k += st.programs;
            } else {
                programs_8k += st.programs;
            }
        }
        const flash::ArrayStats total = dev->array().totalStats();
        double mrt = dev->stats().responseMs.mean();
        if (kind == core::SchemeKind::PS4)
            mrt4 = mrt;

        table.addRow({core::schemeName(kind), core::fmt(mrt),
                      core::fmt(dev->stats().serviceMs.mean()),
                      core::fmt(dev->spaceUtilization(), 3),
                      core::fmt(total.reads), core::fmt(total.programs),
                      core::fmt(programs_4k), core::fmt(programs_8k)});

        if (kind == core::SchemeKind::HPS) {
            std::cout << "HPS reduces MRT by "
                      << core::fmt(100.0 * (mrt4 - mrt) / mrt4, 1)
                      << "% vs 4PS (paper: up to 86%).\n\n";
        }
    }
    table.print(std::cout);

    std::cout << "\nReading the table: HPS needs roughly half the "
                 "page operations of 4PS for multi-page requests "
                 "(they ride 8KB pages) while its 4KB pool absorbs "
                 "odd tails, so it keeps 4PS's perfect space "
                 "utilization — the padding an 8KB-only device "
                 "cannot avoid.\n";
    return 0;
}
