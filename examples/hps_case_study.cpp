/**
 * @file
 * The paper's Section V case study on one workload: build the three
 * Table V devices, replay the same trace on each, and report mean
 * response time (Fig 8) and space utilization (Fig 9), plus the
 * flash-operation breakdown that explains the difference.
 *
 * Usage: hps_case_study [app-name] [scale] [--audit]
 *
 * --audit runs the check/ invariant auditor during each replay
 * (periodic full audits plus a final one) and fails the run when any
 * violation is found — the regression gate for the simulator's
 * bookkeeping.
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "check/audit.hh"
#include "core/scheme.hh"
#include "core/report.hh"
#include "host/replayer.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

using namespace emmcsim;

int
main(int argc, char **argv)
{
    bool audit = false;
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--audit")
            audit = true;
        else
            args.emplace_back(argv[i]);
    }
    const std::string app = !args.empty() ? args[0] : "Booting";
    const double scale =
        args.size() > 1 ? std::atof(args[1].c_str()) : 0.5;

    const workload::AppProfile *profile = workload::findProfile(app);
    if (profile == nullptr) {
        std::cerr << "unknown application: " << app << "\n";
        return 1;
    }
    workload::TraceGenerator gen(*profile, /*seed=*/11);
    trace::Trace t = gen.generate(scale);

    std::cout << "HPS case study on \"" << app << "\" (" << t.size()
              << " requests, "
              << core::fmt(static_cast<double>(t.totalBytes()) /
                               static_cast<double>(sim::kMiB), 1)
              << " MB accessed)\n\n";

    core::TablePrinter table({"Scheme", "MRT (ms)", "Mean serv (ms)",
                              "Space util", "Page reads",
                              "Page programs", "4KB-pool programs",
                              "8KB-pool programs"});

    double mrt4 = 0.0;
    std::uint64_t audit_violations = 0;
    for (core::SchemeKind kind : core::allSchemes()) {
        sim::Simulator s;
        auto dev = core::makeDevice(s, kind);

        std::unique_ptr<check::DeviceAuditor> auditor;
        if (audit) {
            check::AuditOptions audit_opts;
            audit_opts.everyEvents = 5000;
            auditor = std::make_unique<check::DeviceAuditor>(s, *dev,
                                                             audit_opts);
        }

        host::Replayer rep(s, *dev);
        rep.replay(t);

        if (auditor) {
            auditor->runFullAudit();
            auditor->detach();
            std::cout << "Invariant audit (" << core::schemeName(kind)
                      << "):\n";
            core::printAuditReport(std::cout, auditor->report());
            std::cout << "\n";
            audit_violations += auditor->report().totalViolations();
        }

        const auto &geom = dev->array().geometry();
        std::uint64_t programs_4k = 0;
        std::uint64_t programs_8k = 0;
        for (std::size_t pool = 0; pool < geom.pools.size(); ++pool) {
            const flash::ArrayStats &st = dev->array().stats(pool);
            if (geom.pools[pool].pageBytes == 4096) {
                programs_4k += st.programs;
            } else {
                programs_8k += st.programs;
            }
        }
        const flash::ArrayStats total = dev->array().totalStats();
        double mrt = dev->stats().responseMs.mean();
        if (kind == core::SchemeKind::PS4)
            mrt4 = mrt;

        table.addRow({core::schemeName(kind), core::fmt(mrt),
                      core::fmt(dev->stats().serviceMs.mean()),
                      core::fmt(dev->spaceUtilization(), 3),
                      core::fmt(total.reads), core::fmt(total.programs),
                      core::fmt(programs_4k), core::fmt(programs_8k)});

        if (kind == core::SchemeKind::HPS) {
            std::cout << "HPS reduces MRT by "
                      << core::fmt(100.0 * (mrt4 - mrt) / mrt4, 1)
                      << "% vs 4PS (paper: up to 86%).\n\n";
        }
    }
    table.print(std::cout);

    std::cout << "\nReading the table: HPS needs roughly half the "
                 "page operations of 4PS for multi-page requests "
                 "(they ride 8KB pages) while its 4KB pool absorbs "
                 "odd tails, so it keeps 4PS's perfect space "
                 "utilization — the padding an 8KB-only device "
                 "cannot avoid.\n";

    if (audit && audit_violations > 0) {
        std::cerr << "\nAUDIT FAILED: " << audit_violations
                  << " invariant violation(s) detected.\n";
        return 4;
    }
    return 0;
}
