/**
 * @file
 * Characteristic 4 in action: the same sparse workload replayed with
 * the eMMC power manager off and on, showing how low-power mode
 * trades wake-up latency (higher mean service time) for low-power
 * residency (energy).
 *
 * Usage: power_study [app-name] [scale]
 */

#include <cstdlib>
#include <iostream>

#include "core/report.hh"
#include "core/scheme.hh"
#include "host/replayer.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

using namespace emmcsim;

int
main(int argc, char **argv)
{
    const std::string app = argc > 1 ? argv[1] : "YouTube";
    const double scale = argc > 2 ? std::atof(argv[2]) : 1.0;

    const workload::AppProfile *profile = workload::findProfile(app);
    if (profile == nullptr) {
        std::cerr << "unknown application: " << app << "\n";
        return 1;
    }
    workload::TraceGenerator gen(*profile, /*seed=*/5);
    trace::Trace t = gen.generate(scale);

    std::cout << "Power-mode study on \"" << app << "\" ("
              << core::fmt(
                     static_cast<double>(t.size()) /
                         sim::toSeconds(t.duration()), 2)
              << " requests/s)\n\n";

    core::TablePrinter table({"Power mode", "Mean serv (ms)",
                              "MRT (ms)", "Wakeups",
                              "Low-power residency (%)",
                              "Energy (mJ, idle intervals)"});

    for (bool enabled : {false, true}) {
        sim::Simulator s;
        emmc::EmmcConfig cfg = core::schemeConfig(core::SchemeKind::PS4);
        cfg.power.enabled = enabled;
        auto dev = core::makeDevice(s, core::SchemeKind::PS4, cfg);
        host::Replayer rep(s, *dev);
        rep.replay(t);

        const emmc::PowerStats &ps = dev->powerStats();
        sim::Time accounted = ps.activeTime + ps.lowPowerTime;
        double residency =
            accounted > 0 ? 100.0 *
                                static_cast<double>(ps.lowPowerTime) /
                                static_cast<double>(accounted)
                          : 0.0;
        table.addRow({enabled ? "on" : "off",
                      core::fmt(dev->stats().serviceMs.mean()),
                      core::fmt(dev->stats().responseMs.mean()),
                      core::fmt(ps.wakeups), core::fmt(residency, 1),
                      core::fmt(dev->power().energyMj(), 1)});
    }
    table.print(std::cout);

    std::cout << "\nThe paper observed exactly this on the Nexus 5: "
                 "low-rate apps (Idle, CallIn, CallOut, YouTube) show "
                 "elevated mean service times because the eMMC keeps "
                 "dropping into its power-saving mode between their "
                 "requests.\n";
    return 0;
}
