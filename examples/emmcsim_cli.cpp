/**
 * @file
 * emmcsim_cli: command-line front end to the library.
 *
 * Subcommands:
 *   list                               show the 25 built-in profiles
 *   generate <app> <out> [scale] [seed]  write a trace file
 *   analyze <trace-file>               Table III/IV-style report
 *   replay <trace-file> [scheme] [--audit [N]]
 *                                      replay on 4PS/8PS/HPS/HSLC,
 *                                      print the measured metrics;
 *                                      --audit runs full invariant
 *                                      audits every N events (default
 *                                      10000) and reports the outcome
 *   compare <app> [scale]              run the Fig 8/9 comparison
 */

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/distributions.hh"
#include "check/audit.hh"
#include "sim/logging.hh"
#include "analysis/size_stats.hh"
#include "analysis/timing_stats.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "host/replayer.hh"
#include "obs/report.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

using namespace emmcsim;

namespace {

int
cmdList()
{
    core::TablePrinter table(
        {"Name", "Requests", "Duration (s)", "Write %", "Description"});
    for (const workload::AppProfile &p : workload::allProfiles()) {
        table.addRow({p.name, core::fmt(p.requestCount),
                      core::fmt(sim::toSeconds(p.duration), 0),
                      core::fmt(100.0 * p.writeFraction, 1),
                      p.description});
    }
    table.print(std::cout);
    return 0;
}

int
cmdGenerate(const std::string &app, const std::string &out,
            double scale, std::uint64_t seed)
{
    const workload::AppProfile *p = workload::findProfile(app);
    if (p == nullptr) {
        std::cerr << "unknown application: " << app << "\n";
        return 1;
    }
    workload::TraceGenerator gen(*p, seed);
    trace::Trace t = gen.generate(scale);
    t.saveFile(out);
    std::cout << "wrote " << t.size() << " requests ("
              << t.totalBytes() / 1024 << " KB) to " << out << "\n";
    return 0;
}

void
printStats(const trace::Trace &t)
{
    analysis::SizeStats ss = analysis::computeSizeStats(t);
    analysis::TimingStats ts = analysis::computeTimingStats(t);
    core::TablePrinter table({"Metric", "Value"});
    table.addRow({"Requests", core::fmt(ss.requests)});
    table.addRow({"Data size (KB)", core::fmt(ss.dataSizeKb, 0)});
    table.addRow({"Ave size (KB)", core::fmt(ss.aveSizeKb, 1)});
    table.addRow({"Write requests (%)", core::fmt(ss.writeReqPct, 2)});
    table.addRow({"Duration (s)", core::fmt(ts.durationSec, 1)});
    table.addRow({"Arrival rate (req/s)", core::fmt(ts.arrivalRate, 2)});
    table.addRow({"Spatial locality (%)", core::fmt(ts.spatialPct, 2)});
    table.addRow(
        {"Temporal locality (%)", core::fmt(ts.temporalPct, 2)});
    if (ts.replayed) {
        table.addRow({"NoWait ratio (%)", core::fmt(ts.noWaitPct, 1)});
        table.addRow(
            {"Mean service (ms)", core::fmt(ts.meanServiceMs, 2)});
        table.addRow(
            {"Mean response (ms)", core::fmt(ts.meanResponseMs, 2)});
    }
    table.print(std::cout);
}

/**
 * Load a trace through the structured-error API: malformed input or an
 * unopenable file prints the offending line and reason instead of
 * aborting the process.
 * @retval true on success.
 */
bool
loadTraceOrReport(const std::string &path, trace::Trace &t)
{
    trace::TraceLoadError err;
    if (!trace::Trace::tryLoadFile(path, t, err)) {
        std::cerr << "error: cannot load trace " << path << ": "
                  << err.message() << "\n";
        return false;
    }
    return true;
}

int
cmdAnalyze(const std::string &path)
{
    trace::Trace t;
    if (!loadTraceOrReport(path, t))
        return 1;
    std::string problem = t.validate();
    if (!problem.empty()) {
        std::cerr << "invalid trace: " << problem << "\n";
        return 1;
    }
    std::cout << "Trace \"" << t.name() << "\" (" << path << ")\n\n";
    printStats(t);
    return 0;
}

bool
parseScheme(const std::string &name, core::SchemeKind &kind)
{
    for (core::SchemeKind k : core::extendedSchemes()) {
        if (core::schemeName(k) == name) {
            kind = k;
            return true;
        }
    }
    return false;
}

/** Observability output files requested on the command line. */
struct ObsOutputs
{
    std::string metricsJson; ///< run-report JSON (--metrics-json)
    std::string chromeTrace; ///< Chrome trace_event JSON (--trace-out)
    std::string biotracerCsv; ///< emmctrace text (--trace-csv)
};

/** Write @p content to @p path; prints an error on failure. */
bool
writeFileOrReport(const std::string &path, const std::string &content)
{
    std::ofstream os(path);
    if (os)
        os << content;
    if (!os) {
        std::cerr << "error: cannot write " << path << "\n";
        return false;
    }
    return true;
}

int
cmdReplay(const std::string &path, const std::string &scheme,
          const core::ExperimentOptions &opts, const ObsOutputs &outs)
{
    trace::Trace t;
    if (!loadTraceOrReport(path, t))
        return 1;
    core::SchemeKind kind = core::SchemeKind::HPS;
    if (!parseScheme(scheme, kind)) {
        std::cerr << "error: unknown scheme (use 4PS, 8PS, HPS, or "
                     "HSLC): "
                  << scheme << "\n";
        return 2;
    }
    core::CaseResult res = core::runCase(t, kind, opts);
    std::cout << "Replayed \"" << t.name() << "\" on " << res.scheme
              << "\n\n";
    printStats(res.replayed);
    std::cout << "\nSpace utilization: "
              << core::fmt(res.spaceUtilization, 3) << "\n";
    if (opts.fault.enabled) {
        core::TablePrinter table({"Reliability metric", "Value"});
        table.addRow({"p99 response (ms)",
                      core::fmt(res.p99ResponseMs, 2)});
        table.addRow({"Corrected reads", core::fmt(res.correctedReads)});
        table.addRow(
            {"Uncorrectable reads", core::fmt(res.uncorrectableReads)});
        table.addRow(
            {"Read-retry rounds", core::fmt(res.readRetryRounds)});
        table.addRow(
            {"Program failures", core::fmt(res.programFailures)});
        table.addRow({"Erase failures", core::fmt(res.eraseFailures)});
        table.addRow(
            {"Relocated programs", core::fmt(res.relocatedPrograms)});
        table.addRow({"Retired blocks", core::fmt(res.retiredBlocks)});
        table.addRow({"Host retries", core::fmt(res.hostRetries)});
        table.addRow(
            {"Host failed requests", core::fmt(res.hostFailedRequests)});
        table.addRow({"Host retry penalty (ms)",
                      core::fmt(res.hostRetryPenaltyMs, 2)});
        table.addRow(
            {"Device read-only", res.deviceReadOnly ? "yes" : "no"});
        std::cout << "\n";
        table.print(std::cout);
    }
    if (opts.auditEveryEvents > 0) {
        std::cout << "\n";
        core::printAuditReport(std::cout, res.audit);
        if (!res.audit.clean())
            return 3;
    }

    if (!outs.metricsJson.empty()) {
        obs::RunReport report;
        report.setMeta("tool", "emmcsim_cli");
        report.setMeta("command", "replay");
        report.setMeta("trace", t.name());
        report.setMeta("trace_file", path);
        report.setMeta("scheme", res.scheme);
        report.setMeta("requests", res.requests);
        report.addRun("replay", res.obs.metrics, res.obs.series);
        report.writeJsonFile(outs.metricsJson);
        std::cout << "\nwrote metrics report to " << outs.metricsJson
                  << "\n";
    }
    if (!outs.chromeTrace.empty()) {
        if (!writeFileOrReport(outs.chromeTrace, res.obs.chromeTrace))
            return 1;
        std::cout << "wrote Chrome trace to " << outs.chromeTrace
                  << "\n";
    }
    if (!outs.biotracerCsv.empty()) {
        if (!writeFileOrReport(outs.biotracerCsv, res.obs.biotracerTrace))
            return 1;
        std::cout << "wrote replayed trace to " << outs.biotracerCsv
                  << "\n";
    }
    return 0;
}

int
cmdCompare(const std::string &app, double scale)
{
    const workload::AppProfile *p = workload::findProfile(app);
    if (p == nullptr) {
        std::cerr << "unknown application: " << app << "\n";
        return 1;
    }
    workload::TraceGenerator gen(*p, 1);
    trace::Trace t = gen.generate(scale);
    core::TablePrinter table(
        {"Scheme", "MRT (ms)", "Mean serv (ms)", "Space util"});
    for (core::SchemeKind kind : core::extendedSchemes()) {
        core::CaseResult res = core::runCase(t, kind);
        table.addRow({res.scheme, core::fmt(res.meanResponseMs),
                      core::fmt(res.meanServiceMs),
                      core::fmt(res.spaceUtilization, 3)});
    }
    table.print(std::cout);
    return 0;
}

int
usage()
{
    std::cerr
        << "usage:\n"
           "  emmcsim_cli list\n"
           "  emmcsim_cli generate <app> <out> [scale] [seed]\n"
           "  emmcsim_cli analyze <trace-file>\n"
           "  emmcsim_cli replay <trace-file> [4PS|8PS|HPS|HSLC]\n"
           "      [--audit[=N]]           full invariant audits every N "
           "events (default 10000)\n"
           "      [--fault-rber=X]        enable NAND fault injection "
           "at base RBER X\n"
           "      [--fault-seed=N]        fault-injection RNG seed "
           "(default 1)\n"
           "      [--fault-program-fail=X] program-status failure "
           "probability\n"
           "      [--fault-erase-fail=X]  erase failure probability\n"
           "      [--retries=N]           host retry budget per failed "
           "request (default 3)\n"
           "      [--metrics-json=FILE]   write the run-report JSON "
           "(all registry metrics)\n"
           "      [--trace-out=FILE]      record request/flash spans, "
           "write Chrome trace JSON\n"
           "      [--trace-csv=FILE]      write the replayed trace in "
           "emmctrace text format\n"
           "      [--sample-window-ms=N]  record windowed metric "
           "series every N ms\n"
           "  emmcsim_cli compare <app> [scale]\n"
           "\n"
           "  EMMCSIM_LOG=[level][,comp=level...] controls logging "
           "(debug|info|warn), e.g. EMMCSIM_LOG=warn,gc=debug\n";
    return 2;
}

int
usageError(const std::string &what)
{
    std::cerr << "error: " << what << "\n\n";
    return usage();
}

/** Strict unsigned parse: the whole string must be digits. */
bool
parseU64(const std::string &s, std::uint64_t &v)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    const std::uint64_t n = std::strtoull(s.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0' ||
        s.find_first_not_of("0123456789") != std::string::npos)
        return false;
    v = n;
    return true;
}

/** Strict double parse: the whole string must be consumed. */
bool
parseF64(const std::string &s, double &v)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    const double x = std::strtod(s.c_str(), &end);
    if (errno != 0 || end == nullptr || *end != '\0')
        return false;
    v = x;
    return true;
}

/**
 * Split @p args into positional arguments and "--name[=value]" flags.
 * Flags listed in @p value_flags may also take their value as the next
 * token ("--flag value"). Unknown flags are a usage error.
 * @retval true on success.
 */
bool
splitArgs(const std::vector<std::string> &args,
          const std::vector<std::string> &known_flags,
          const std::vector<std::string> &value_flags,
          std::vector<std::string> &positionals,
          std::vector<std::pair<std::string, std::string>> &flags,
          std::string &problem)
{
    auto contains = [](const std::vector<std::string> &v,
                       const std::string &s) {
        return std::find(v.begin(), v.end(), s) != v.end();
    };
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        if (a.rfind("--", 0) != 0) {
            positionals.push_back(a);
            continue;
        }
        std::string name = a;
        std::string value;
        bool has_value = false;
        const std::size_t eq = a.find('=');
        if (eq != std::string::npos) {
            name = a.substr(0, eq);
            value = a.substr(eq + 1);
            has_value = true;
        }
        if (!contains(known_flags, name)) {
            problem = "unknown flag: " + name;
            return false;
        }
        if (!has_value && contains(value_flags, name) &&
            i + 1 < args.size() &&
            args[i + 1].rfind("--", 0) != 0) {
            value = args[++i];
            has_value = true;
        }
        flags.emplace_back(name, has_value ? value : std::string());
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::vector<std::string> raw(argv + 1, argv + argc);
    if (raw.empty())
        return usage();
    const std::string cmd = raw[0];
    const std::vector<std::string> rest(raw.begin() + 1, raw.end());

    // Per-subcommand flag tables; anything else is a usage error.
    std::vector<std::string> known;
    std::vector<std::string> valued;
    if (cmd == "replay") {
        known = {"--audit", "--fault-rber", "--fault-seed",
                 "--fault-program-fail", "--fault-erase-fail",
                 "--retries", "--metrics-json", "--trace-out",
                 "--trace-csv", "--sample-window-ms"};
        valued = known;
    }
    std::vector<std::string> pos;
    std::vector<std::pair<std::string, std::string>> flags;
    std::string problem;
    if (!splitArgs(rest, known, valued, pos, flags, problem))
        return usageError(problem);

    if (cmd == "list") {
        if (!pos.empty())
            return usageError("list takes no arguments");
        return cmdList();
    }
    if (cmd == "generate") {
        if (pos.size() < 2 || pos.size() > 4)
            return usageError(
                "generate needs <app> <out> [scale] [seed]");
        double scale = 1.0;
        std::uint64_t seed = 1;
        if (pos.size() > 2 && (!parseF64(pos[2], scale) || scale <= 0))
            return usageError("bad scale: " + pos[2]);
        if (pos.size() > 3 && !parseU64(pos[3], seed))
            return usageError("bad seed: " + pos[3]);
        return cmdGenerate(pos[0], pos[1], scale, seed);
    }
    if (cmd == "analyze") {
        if (pos.size() != 1)
            return usageError("analyze needs exactly <trace-file>");
        return cmdAnalyze(pos[0]);
    }
    if (cmd == "replay") {
        if (pos.empty() || pos.size() > 2)
            return usageError(
                "replay needs <trace-file> [4PS|8PS|HPS|HSLC]");
        core::ExperimentOptions opts;
        ObsOutputs outs;
        for (const auto &[name, value] : flags) {
            if (name == "--audit") {
                opts.auditEveryEvents = 10000;
                if (!value.empty() &&
                    (!parseU64(value, opts.auditEveryEvents) ||
                     opts.auditEveryEvents == 0))
                    return usageError("bad --audit interval: " + value);
            } else if (name == "--fault-rber") {
                opts.fault.enabled = true;
                if (!parseF64(value, opts.fault.baseRber) ||
                    opts.fault.baseRber < 0)
                    return usageError("bad --fault-rber: " + value);
            } else if (name == "--fault-seed") {
                opts.fault.enabled = true;
                if (!parseU64(value, opts.fault.seed))
                    return usageError("bad --fault-seed: " + value);
            } else if (name == "--fault-program-fail") {
                opts.fault.enabled = true;
                if (!parseF64(value, opts.fault.programFailProb) ||
                    opts.fault.programFailProb < 0 ||
                    opts.fault.programFailProb > 1)
                    return usageError("bad --fault-program-fail: " +
                                      value);
            } else if (name == "--fault-erase-fail") {
                opts.fault.enabled = true;
                if (!parseF64(value, opts.fault.eraseFailProb) ||
                    opts.fault.eraseFailProb < 0 ||
                    opts.fault.eraseFailProb > 1)
                    return usageError("bad --fault-erase-fail: " +
                                      value);
            } else if (name == "--retries") {
                std::uint64_t n = 0;
                if (!parseU64(value, n) || n > 1000)
                    return usageError("bad --retries: " + value);
                opts.hostMaxRetries = static_cast<std::uint32_t>(n);
            } else if (name == "--metrics-json") {
                if (value.empty())
                    return usageError("--metrics-json needs a file");
                outs.metricsJson = value;
                opts.obs.metrics = true;
            } else if (name == "--trace-out") {
                if (value.empty())
                    return usageError("--trace-out needs a file");
                outs.chromeTrace = value;
                opts.obs.traceSpans = true;
            } else if (name == "--trace-csv") {
                if (value.empty())
                    return usageError("--trace-csv needs a file");
                outs.biotracerCsv = value;
                opts.obs.traceSpans = true;
            } else if (name == "--sample-window-ms") {
                std::uint64_t ms = 0;
                if (!parseU64(value, ms) || ms == 0)
                    return usageError("bad --sample-window-ms: " +
                                      value);
                opts.obs.sampleWindow =
                    sim::milliseconds(static_cast<std::int64_t>(ms));
            }
        }
        if (opts.obs.sampleWindow > 0 && outs.metricsJson.empty())
            return usageError(
                "--sample-window-ms requires --metrics-json");
        return cmdReplay(pos[0], pos.size() > 1 ? pos[1] : "HPS", opts,
                         outs);
    }
    if (cmd == "compare") {
        if (pos.empty() || pos.size() > 2)
            return usageError("compare needs <app> [scale]");
        double scale = 0.5;
        if (pos.size() > 1 && (!parseF64(pos[1], scale) || scale <= 0))
            return usageError("bad scale: " + pos[1]);
        return cmdCompare(pos[0], scale);
    }
    return usageError("unknown command: " + cmd);
}
