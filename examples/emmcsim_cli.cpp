/**
 * @file
 * emmcsim_cli: command-line front end to the library.
 *
 * Subcommands:
 *   list                               show the 25 built-in profiles
 *   generate <app> <out> [scale] [seed]  write a trace file
 *   analyze <trace-file>               Table III/IV-style report
 *   replay <trace-file> [scheme]       replay on 4PS/8PS/HPS/HSLC,
 *                                      print the measured metrics
 *   compare <app> [scale]              run the Fig 8/9 comparison
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "analysis/distributions.hh"
#include "sim/logging.hh"
#include "analysis/size_stats.hh"
#include "analysis/timing_stats.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "host/replayer.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

using namespace emmcsim;

namespace {

int
cmdList()
{
    core::TablePrinter table(
        {"Name", "Requests", "Duration (s)", "Write %", "Description"});
    for (const workload::AppProfile &p : workload::allProfiles()) {
        table.addRow({p.name, core::fmt(p.requestCount),
                      core::fmt(sim::toSeconds(p.duration), 0),
                      core::fmt(100.0 * p.writeFraction, 1),
                      p.description});
    }
    table.print(std::cout);
    return 0;
}

int
cmdGenerate(const std::string &app, const std::string &out,
            double scale, std::uint64_t seed)
{
    const workload::AppProfile *p = workload::findProfile(app);
    if (p == nullptr) {
        std::cerr << "unknown application: " << app << "\n";
        return 1;
    }
    workload::TraceGenerator gen(*p, seed);
    trace::Trace t = gen.generate(scale);
    t.saveFile(out);
    std::cout << "wrote " << t.size() << " requests ("
              << t.totalBytes() / 1024 << " KB) to " << out << "\n";
    return 0;
}

void
printStats(const trace::Trace &t)
{
    analysis::SizeStats ss = analysis::computeSizeStats(t);
    analysis::TimingStats ts = analysis::computeTimingStats(t);
    core::TablePrinter table({"Metric", "Value"});
    table.addRow({"Requests", core::fmt(ss.requests)});
    table.addRow({"Data size (KB)", core::fmt(ss.dataSizeKb, 0)});
    table.addRow({"Ave size (KB)", core::fmt(ss.aveSizeKb, 1)});
    table.addRow({"Write requests (%)", core::fmt(ss.writeReqPct, 2)});
    table.addRow({"Duration (s)", core::fmt(ts.durationSec, 1)});
    table.addRow({"Arrival rate (req/s)", core::fmt(ts.arrivalRate, 2)});
    table.addRow({"Spatial locality (%)", core::fmt(ts.spatialPct, 2)});
    table.addRow(
        {"Temporal locality (%)", core::fmt(ts.temporalPct, 2)});
    if (ts.replayed) {
        table.addRow({"NoWait ratio (%)", core::fmt(ts.noWaitPct, 1)});
        table.addRow(
            {"Mean service (ms)", core::fmt(ts.meanServiceMs, 2)});
        table.addRow(
            {"Mean response (ms)", core::fmt(ts.meanResponseMs, 2)});
    }
    table.print(std::cout);
}

int
cmdAnalyze(const std::string &path)
{
    trace::Trace t = trace::Trace::loadFile(path);
    std::string problem = t.validate();
    if (!problem.empty()) {
        std::cerr << "invalid trace: " << problem << "\n";
        return 1;
    }
    std::cout << "Trace \"" << t.name() << "\" (" << path << ")\n\n";
    printStats(t);
    return 0;
}

core::SchemeKind
parseScheme(const std::string &name)
{
    for (core::SchemeKind kind : core::extendedSchemes()) {
        if (core::schemeName(kind) == name)
            return kind;
    }
    sim::fatal("unknown scheme (use 4PS, 8PS, HPS, or HSLC): " + name);
}

int
cmdReplay(const std::string &path, const std::string &scheme)
{
    trace::Trace t = trace::Trace::loadFile(path);
    core::SchemeKind kind = parseScheme(scheme);
    core::CaseResult res = core::runCase(t, kind);
    std::cout << "Replayed \"" << t.name() << "\" on " << res.scheme
              << "\n\n";
    printStats(res.replayed);
    std::cout << "\nSpace utilization: "
              << core::fmt(res.spaceUtilization, 3) << "\n";
    return 0;
}

int
cmdCompare(const std::string &app, double scale)
{
    const workload::AppProfile *p = workload::findProfile(app);
    if (p == nullptr) {
        std::cerr << "unknown application: " << app << "\n";
        return 1;
    }
    workload::TraceGenerator gen(*p, 1);
    trace::Trace t = gen.generate(scale);
    core::TablePrinter table(
        {"Scheme", "MRT (ms)", "Mean serv (ms)", "Space util"});
    for (core::SchemeKind kind : core::extendedSchemes()) {
        core::CaseResult res = core::runCase(t, kind);
        table.addRow({res.scheme, core::fmt(res.meanResponseMs),
                      core::fmt(res.meanServiceMs),
                      core::fmt(res.spaceUtilization, 3)});
    }
    table.print(std::cout);
    return 0;
}

int
usage()
{
    std::cerr << "usage:\n"
                 "  emmcsim_cli list\n"
                 "  emmcsim_cli generate <app> <out> [scale] [seed]\n"
                 "  emmcsim_cli analyze <trace-file>\n"
                 "  emmcsim_cli replay <trace-file> [4PS|8PS|HPS|HSLC]\n"
                 "  emmcsim_cli compare <app> [scale]\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    if (cmd == "list")
        return cmdList();
    if (cmd == "generate" && argc >= 4) {
        return cmdGenerate(argv[2], argv[3],
                           argc > 4 ? std::atof(argv[4]) : 1.0,
                           argc > 5 ? std::strtoull(argv[5], nullptr, 10)
                                    : 1);
    }
    if (cmd == "analyze" && argc >= 3)
        return cmdAnalyze(argv[2]);
    if (cmd == "replay" && argc >= 3)
        return cmdReplay(argv[2], argc > 3 ? argv[3] : "HPS");
    if (cmd == "compare" && argc >= 3)
        return cmdCompare(argv[2], argc > 3 ? std::atof(argv[3]) : 0.5);
    return usage();
}
